// E3 — section 3.1's auto-routing strategy claim:
//
//   "Another possibility that would potentially be faster is to define a
//    set of unique and predefined templates ... If all of them fail then
//    the router could fall back on a maze algorithm. The benefit of
//    defining the template would be to reduce the search space."
//
// Sweeps point-to-point distance on an XCV300 and routes the same seeded
// workload twice: template-first (with maze fallback) vs pure maze.
// Reports per-distance wall time, template hit rate, and search effort.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

namespace {

struct RunResult {
  double ms = 0;
  uint64_t hits = 0;
  uint64_t visits = 0;  // template + maze node visits
  int failed = 0;
};

RunResult runAll(jrbench::Device& dev, const std::vector<workload::P2P>& nets,
                 bool templateFirst) {
  dev.fabric.clear();
  RouterOptions opts;
  opts.templateFirst = templateFirst;
  // This experiment measures templates at EVERY distance (it is the
  // ablation that justifies the router's default distance bound).
  opts.templateMaxDistance = 1 << 20;
  Router router(dev.fabric, opts);
  RunResult r;
  r.ms = 1e3 * jrbench::secondsOf([&] {
    for (const auto& net : nets) {
      try {
        router.route(EndPoint(net.src), EndPoint(net.sink));
      } catch (const UnroutableError&) {
        ++r.failed;
      }
    }
  });
  r.hits = router.stats().templateHits;
  r.visits = router.stats().templateVisits + router.stats().mazeVisits;
  return r;
}

}  // namespace

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  constexpr int kNets = 60;

  std::printf("E3: predefined templates vs maze (XCV300, %d nets/row)\n\n",
              kNets);
  std::printf("%8s | %12s %8s %12s | %12s %12s | %8s\n", "dist",
              "tmpl_ms", "hit%", "visits", "maze_ms", "visits", "speedup");
  for (const int d : {1, 2, 4, 6, 8, 12, 16, 24, 32, 48}) {
    const auto nets = workload::makeP2P(xcv300(), kNets, d, d,
                                        /*seed=*/1000 + d);
    const RunResult tf = runAll(dev, nets, /*templateFirst=*/true);
    const RunResult mz = runAll(dev, nets, /*templateFirst=*/false);
    std::printf("%8d | %12.2f %7.0f%% %12llu | %12.2f %12llu | %7.1fx\n", d,
                tf.ms, 100.0 * static_cast<double>(tf.hits) / kNets,
                static_cast<unsigned long long>(tf.visits), mz.ms,
                static_cast<unsigned long long>(mz.visits),
                mz.ms / (tf.ms > 0 ? tf.ms : 1e-9));
    jrbench::JsonWriter j;
    j.kv("bench", std::string("e3_template_vs_maze"))
        .kv("nets", static_cast<uint64_t>(kNets))
        .kv("distance", static_cast<uint64_t>(d))
        .kv("template_ms", tf.ms)
        .kv("template_hits", tf.hits)
        .kv("template_visits", tf.visits)
        .kv("maze_ms", mz.ms)
        .kv("maze_visits", mz.visits)
        .kv("speedup", mz.ms / (tf.ms > 0 ? tf.ms : 1e-9));
    jrbench::appendRunRecord(j);
  }
  std::printf("\nclaim check: templates win decisively up to ~16 tiles and "
              "lose beyond it (failed long templates thrash while the "
              "weighted maze is cheap) — hence the router's default "
              "templateMaxDistance of 16.\n");
  return 0;
}
