// E8 — section 6's future-work ablation, implemented:
//
//   "Currently long lines are not supported; only hexes and singles are
//    used. Using long lines would improve the routing of nets with large
//    bounding boxes."
//
// Our maze router does support long lines, so we can measure the claim
// directly: route large-displacement nets with long lines enabled vs
// disabled (the paper's initial implementation), comparing wires used,
// net delay, and search effort.
#include <cstdio>

#include "bench/bench_util.h"
#include "fabric/timing.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

namespace {

struct Run {
  double ms = 0;
  double wiresPerNet = 0;
  double delayNs = 0;
  uint64_t visits = 0;
  int failed = 0;
};

Run runAll(jrbench::Device& dev, const std::vector<workload::P2P>& nets,
           bool useLongs) {
  dev.fabric.clear();
  RouterOptions opts;
  opts.useLongLines = useLongs;
  opts.templateFirst = false;  // isolate the maze's resource choice
  Router router(dev.fabric, opts);
  Run run;
  run.ms = 1e3 * jrbench::secondsOf([&] {
    for (const auto& net : nets) {
      try {
        router.route(EndPoint(net.src), EndPoint(net.sink));
      } catch (const UnroutableError&) {
        ++run.failed;
      }
    }
  });
  size_t wires = 0;
  DelayPs delay = 0;
  for (const auto& net : nets) {
    const auto srcNode = dev.graph.nodeAt(net.src.rc, net.src.wire);
    if (!dev.fabric.isUsed(srcNode)) continue;
    wires += dev.fabric.netSize(dev.fabric.netOf(srcNode));
    delay += computeNetTiming(dev.fabric, srcNode).maxDelay;
  }
  const int ok = static_cast<int>(nets.size()) - run.failed;
  run.wiresPerNet = static_cast<double>(wires) / (ok > 0 ? ok : 1);
  run.delayNs = static_cast<double>(delay) / 1e3 / (ok > 0 ? ok : 1);
  run.visits = router.stats().mazeVisits;
  return run;
}

}  // namespace

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  constexpr int kNets = 40;
  std::printf("E8: long-line ablation on large-bounding-box nets (XCV300, "
              "%d nets/row, maze only)\n\n",
              kNets);
  std::printf("%10s | %10s %10s %10s %10s | %10s %10s %10s %10s\n",
              "dist", "long ms", "wires", "delay ns", "visits", "nolng ms",
              "wires", "delay ns", "visits");
  for (const int d : {12, 24, 36, 48, 64}) {
    const auto nets =
        workload::makeP2P(xcv300(), kNets, d, d + 4, /*seed=*/800 + d);
    const Run on = runAll(dev, nets, true);
    const Run off = runAll(dev, nets, false);
    std::printf("%10d | %10.1f %10.1f %10.2f %10llu | %10.1f %10.1f %10.2f "
                "%10llu\n",
                d, on.ms, on.wiresPerNet, on.delayNs,
                static_cast<unsigned long long>(on.visits), off.ms,
                off.wiresPerNet, off.delayNs,
                static_cast<unsigned long long>(off.visits));
  }
  std::printf("\nclaim check: long lines cut wires-per-net and delay for "
              "large bounding boxes, confirming the paper's expectation.\n");
  return 0;
}
