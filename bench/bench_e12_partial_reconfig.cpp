// E12 — the quantitative case for run-time partial reconfiguration, the
// premise behind the paper's whole program:
//
//   "RTR systems are different from traditional design flows in that
//    circuit customization and routing are performed at run-time."
//   "...cores to be removed or replaced at run-time without having to
//    reconfigure the entire design." (section 7)
//
// Measures the configuration traffic (frames, bytes) for three ways of
// changing one core inside a populated XCV300 design: (a) full bitstream
// reload (the traditional flow), (b) structural core replace through the
// RTR manager (partial frames), (c) LUT-only parameter update. Also times
// the software side of each.
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "bitstream/bitfile.h"
#include "cores/const_adder.h"
#include "cores/kcm.h"
#include "rtr/manager.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  dev.fabric.clear();
  Router router(dev.fabric);
  RtrManager mgr(router);

  // A populated design: 8 multiplier/adder pairs spread over the device.
  std::vector<std::unique_ptr<Kcm>> mults;
  std::vector<std::unique_ptr<ConstAdder>> adders;
  for (int i = 0; i < 8; ++i) {
    mults.push_back(std::make_unique<Kcm>(8, 3u + static_cast<uint32_t>(i)));
    adders.push_back(std::make_unique<ConstAdder>(8, 1));
    const int16_t row = static_cast<int16_t>(4 + (i / 4) * 14);
    const int16_t col = static_cast<int16_t>(4 + (i % 4) * 11);
    mgr.install(*mults.back(), {row, col});
    mgr.install(*adders.back(), {row, static_cast<int16_t>(col + 5)});
    mgr.connect(*mults.back(), Kcm::kOutGroup, *adders.back(),
                ConstAdder::kInGroup);
  }
  std::printf("E12: configuration traffic to change one core of a "
              "16-core XCV300 design\n\n");
  std::printf("design: %zu PIPs on, %zu nets\n\n", dev.fabric.onEdgeCount(),
              dev.fabric.liveNetCount());

  // (a) Traditional flow: ship a whole new bitstream.
  std::ostringstream full;
  const double fullMs = 1e3 * jrbench::secondsOf([&] {
    writeBitfile(full, dev.fabric.jbits().bitstream(), "full");
  });
  const size_t fullBytes = full.str().size();
  const size_t totalFrames =
      static_cast<size_t>(dev.fabric.jbits().bitstream().numFrames());

  // (b) RTR structural replace of one multiplier.
  dev.fabric.jbits().bitstream().clearDirty();
  const double replaceMs = 1e3 * jrbench::secondsOf([&] {
    mults[3]->setConstant(router, 99);
    mgr.reconfigure(*mults[3]);
  });
  const auto replacePackets = dirtyPackets(dev.fabric.jbits().bitstream());
  std::ostringstream partial;
  writePartialBitfile(partial, dev.graph.device(), replacePackets, "delta");
  const size_t replaceBytes = partial.str().size();

  // (c) LUT-only constant update.
  dev.fabric.jbits().bitstream().clearDirty();
  const double lutMs = 1e3 * jrbench::secondsOf(
      [&] { mults[3]->setConstant(router, 123); });
  const auto lutPackets = dirtyPackets(dev.fabric.jbits().bitstream());

  std::printf("%-28s %10s %12s %10s\n", "method", "frames", "bytes",
              "time ms");
  std::printf("%-28s %10zu %12zu %10.2f\n", "full bitstream reload",
              totalFrames, fullBytes, fullMs);
  std::printf("%-28s %10zu %12zu %10.2f\n", "RTR core replace (partial)",
              replacePackets.size(), replaceBytes, replaceMs);
  std::printf("%-28s %10zu %12s %10.2f\n", "LUT-only parameter update",
              lutPackets.size(), "-", lutMs);
  std::printf("\nclaim check: replacing one core touches ~%.1f%% of the "
              "frames a full reload ships — the factor that makes run-time "
              "reconfiguration viable.\n",
              100.0 * static_cast<double>(replacePackets.size()) /
                  static_cast<double>(totalFrames));
  return 0;
}
