// E4 — section 3.1's fanout-routing claim:
//
//   "This call should be used instead of connecting each sink
//    individually, since it minimizes the routing resources used. Each
//    sink gets routed in order of increasing distance from the source.
//    For each sink, the router attempts to reuse the previous paths as
//    much as possible."
//
// Sweeps fanout k and compares the multi-sink call's resource usage
// against the sum of k independent point-to-point routes of the same
// sinks (each measured alone on a scratch fabric — the cost a router
// without tree reuse would pay).
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  constexpr int kNetsPerRow = 8;

  std::printf("E4: fanout call vs individual sink routing (XCV300, %d "
              "nets/row, bbox radius 8)\n\n",
              kNetsPerRow);
  std::printf("%6s | %14s %12s | %14s | %8s\n", "fanout", "tree wires",
              "call ms", "indep wires", "saving");
  for (const int k : {2, 4, 8, 16, 32}) {
    const auto nets =
        workload::makeFanout(xcv300(), kNetsPerRow, k, 8, /*seed=*/40 + k);

    // (a) The fanout call: route all sinks of each net in one call.
    dev.fabric.clear();
    Router router(dev.fabric);
    size_t treeWires = 0;
    double callMs = 0;
    for (const auto& net : nets) {
      std::vector<EndPoint> sinks;
      for (const Pin& p : net.sinks) sinks.push_back(EndPoint(p));
      callMs += 1e3 * jrbench::secondsOf([&] {
        router.route(EndPoint(net.src), std::span<const EndPoint>(sinks));
      });
      const auto srcNode = dev.graph.nodeAt(net.src.rc, net.src.wire);
      treeWires += dev.fabric.netSize(dev.fabric.netOf(srcNode));
    }

    // (b) Each sink routed alone on a blank fabric: the resource bill
    //     without any reuse.
    size_t indepWires = 0;
    for (const auto& net : nets) {
      for (const Pin& sink : net.sinks) {
        dev.fabric.clear();
        Router solo(dev.fabric);
        solo.route(EndPoint(net.src), EndPoint(sink));
        const auto srcNode = dev.graph.nodeAt(net.src.rc, net.src.wire);
        indepWires += dev.fabric.netSize(dev.fabric.netOf(srcNode)) - 1;
      }
    }
    indepWires += kNetsPerRow;  // count each source once, like the tree

    std::printf("%6d | %14zu %12.2f | %14zu | %7.2fx\n", k, treeWires,
                callMs, indepWires,
                static_cast<double>(indepWires) /
                    static_cast<double>(treeWires));
  }
  std::printf("\nclaim check: the saving factor grows with fanout — the "
              "shared tree amortizes the trunk.\n");
  return 0;
}
