// E6 — the paper's central positioning claim (section 3.1):
//
//   "Each of the auto-routing calls described above use greedy routing
//    algorithms. This was chosen because of the designs that are
//    targeted. Structured and regular designs often have simple and
//    regular routing. Also, in an RTR environment, global routing
//    followed by detailed routing would not be efficient. ... In an RTR
//    environment traditional routing algorithms require too much time."
//
// Routes the same seeded net list with JRoute's greedy one-pass router
// and with the PathFinder-style negotiated-congestion baseline (the
// traditional quality-driven approach of reference [6]). Expected shape:
// greedy is one to two orders of magnitude faster; PathFinder wins on
// wirelength because it optimizes globally across iterations.
#include <cstdio>

#include "bench/bench_util.h"
#include "baseline/pathfinder.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  std::printf("E6: JRoute greedy vs PathFinder baseline (XCV300, mixed "
              "p2p + fanout-4 workload)\n\n");
  std::printf("%6s | %10s %8s %10s | %10s %6s %10s | %8s %8s\n", "nets",
              "jr_ms", "fail", "jr_wires", "pf_ms", "iters", "pf_wires",
              "speedup", "wl_cost");
  for (const int n : {25, 50, 100, 200}) {
    const int nFan = n / 3;
    const int nP2p = n - nFan;
    const auto mixed = workload::makeMixed(xcv300(), nP2p, nFan, 4, 24,
                                           /*seed=*/600 + n);
    const auto& p2p = mixed.p2p;
    const auto& fan = mixed.fanout;

    // --- JRoute greedy: route in arrival order, no rip-up.
    dev.fabric.clear();
    Router router(dev.fabric);
    int failed = 0;
    const double jrMs = 1e3 * jrbench::secondsOf([&] {
      for (const auto& net : p2p) {
        try {
          router.route(EndPoint(net.src), EndPoint(net.sink));
        } catch (const xcvsim::JRouteError&) {
          ++failed;
        }
      }
      for (const auto& net : fan) {
        std::vector<EndPoint> sinks;
        for (const Pin& p : net.sinks) sinks.push_back(EndPoint(p));
        try {
          router.route(EndPoint(net.src), std::span<const EndPoint>(sinks));
        } catch (const xcvsim::JRouteError&) {
          ++failed;
        }
      }
    });
    const size_t jrWires = dev.fabric.usedNodeCount();

    // --- PathFinder: batch negotiated congestion over the same nets.
    auto pfNets = workload::toPfNets(dev.graph, std::span(p2p));
    const auto pfFan = workload::toPfNets(dev.graph, std::span(fan));
    pfNets.insert(pfNets.end(), pfFan.begin(), pfFan.end());
    baseline::PathFinderRouter pf(dev.graph);
    baseline::PathFinderResult pfRes;
    const double pfMs =
        1e3 * jrbench::secondsOf([&] { pfRes = pf.routeAll(pfNets); });

    std::printf("%6d | %10.1f %8d %10zu | %10.1f %6d %10zu | %7.1fx %7.2fx\n",
                n, jrMs, failed, jrWires, pfMs, pfRes.iterations,
                pfRes.wirelength, pfMs / (jrMs > 0 ? jrMs : 1e-9),
                static_cast<double>(jrWires) /
                    static_cast<double>(pfRes.wirelength ? pfRes.wirelength
                                                         : 1));
    jrbench::JsonWriter j;
    j.kv("bench", std::string("e6_greedy_vs_pathfinder"))
        .kv("nets", static_cast<uint64_t>(n))
        .kv("jroute_ms", jrMs)
        .kv("jroute_failed", static_cast<uint64_t>(failed))
        .kv("jroute_wires", static_cast<uint64_t>(jrWires))
        .kv("pathfinder_ms", pfMs)
        .kv("pathfinder_iters", static_cast<uint64_t>(pfRes.iterations))
        .kv("pathfinder_wires", static_cast<uint64_t>(pfRes.wirelength))
        .kv("speedup", pfMs / (jrMs > 0 ? jrMs : 1e-9));
    jrbench::appendRunRecord(j);
  }
  std::printf("\nclaim check: greedy run-time routing is dramatically "
              "faster; the quality gap (wl_cost > 1) is the price, which "
              "the paper accepts for non-critical nets.\n");
  return 0;
}
