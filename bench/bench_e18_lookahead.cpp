// E18 — the router lookahead subsystem (src/lookahead, DESIGN.md §14).
//
// Three claims on the largest shipped device (XCV1000):
//   1. End-to-end, the strategy-selected router (template / long-line
//      composition / A*-pruned maze, all lookahead-driven) is at least as
//      fast as the plain legacy maze at every E3 distance.
//   2. At weight 1.0 the lookahead keeps the maze delay-optimal while
//      visiting far fewer nodes than exact Dijkstra — and the routes stay
//      wire-count-identical.
//   3. The per-device cost map builds in milliseconds and stays small
//      enough to share read-only across engine threads.
#include <cstdio>

#include "bench/bench_util.h"
#include "lookahead/lookahead.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

namespace {

struct RunResult {
  double ms = 0;
  uint64_t visits = 0;
  uint64_t selTemplate = 0;
  uint64_t selLongLine = 0;
  uint64_t selMaze = 0;
  uint64_t templateHits = 0;
  uint64_t longTemplateHits = 0;
  int failed = 0;
};

RunResult runOnce(jrbench::Device& dev, const std::vector<workload::P2P>& nets,
                  bool lookahead) {
  dev.fabric.clear();
  RouterOptions opts;
  opts.useLookahead = lookahead;
  if (!lookahead) opts.templateFirst = false;  // the plain legacy maze
  Router router(dev.fabric, opts);
  RunResult r;
  r.ms = 1e3 * jrbench::secondsOf([&] {
    for (const auto& net : nets) {
      try {
        router.route(EndPoint(net.src), EndPoint(net.sink));
      } catch (const UnroutableError&) {
        ++r.failed;
      }
    }
  });
  const RouteStats& s = router.stats();
  r.visits = s.templateVisits + s.mazeVisits;
  r.selTemplate = s.selTemplate;
  r.selLongLine = s.selLongLine;
  r.selMaze = s.selMaze;
  r.templateHits = s.templateHits;
  r.longTemplateHits = s.longTemplateHits;
  return r;
}

/// Best-of-3 wall time (counters are deterministic across reps). A single
/// 40-net batch runs a few ms; one scheduler hiccup swings it 40%, so the
/// min over repetitions is the honest per-config number.
RunResult runAll(jrbench::Device& dev, const std::vector<workload::P2P>& nets,
                 bool lookahead) {
  RunResult best = runOnce(dev, nets, lookahead);
  for (int rep = 1; rep < 3; ++rep) {
    const RunResult r = runOnce(dev, nets, lookahead);
    if (r.ms < best.ms) best.ms = r.ms;
  }
  return best;
}

}  // namespace

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv1000());
  const jrla::Lookahead& la = jrla::Lookahead::forGraph(dev.graph);
  constexpr int kNets = 40;

  // --- 3: build cost (already paid by forGraph above; stats remember it).
  const jrla::Lookahead::Stats& ls = la.stats();
  std::printf("E18: router lookahead (XCV1000)\n\n");
  std::printf("cost map: %.1f ms build, %zu moves, %zu states, %zu KiB\n\n",
              ls.buildMs, ls.moveCount, ls.states, ls.tableBytes / 1024);
  {
    jrbench::JsonWriter j;
    j.kv("bench", std::string("e18_lookahead_build"))
        .kv("device", std::string("XCV1000"))
        .kv("build_ms", ls.buildMs)
        .kv("moves", static_cast<uint64_t>(ls.moveCount))
        .kv("states", static_cast<uint64_t>(ls.states))
        .kv("table_bytes", static_cast<uint64_t>(ls.tableBytes));
    jrbench::appendRunRecord(j);
  }

  // --- 1: selected strategies vs the plain legacy maze, per distance.
  std::printf("%6s | %10s %6s %6s %6s | %10s | %8s\n", "dist", "sel_ms",
              "tmpl", "long", "maze", "maze_ms", "speedup");
  for (const int d : {8, 12, 16, 24, 32, 48}) {
    const auto nets = workload::makeP2P(xcv1000(), kNets, d, d,
                                        /*seed=*/1800u + static_cast<unsigned>(d));
    const RunResult sel = runAll(dev, nets, /*lookahead=*/true);
    const RunResult mz = runAll(dev, nets, /*lookahead=*/false);
    const double speedup = mz.ms / (sel.ms > 0 ? sel.ms : 1e-9);
    std::printf("%6d | %10.2f %6llu %6llu %6llu | %10.2f | %7.1fx\n", d,
                sel.ms, static_cast<unsigned long long>(sel.selTemplate),
                static_cast<unsigned long long>(sel.selLongLine),
                static_cast<unsigned long long>(sel.selMaze), mz.ms, speedup);
    jrbench::JsonWriter j;
    j.kv("bench", std::string("e18_lookahead"))
        .kv("nets", static_cast<uint64_t>(kNets))
        .kv("distance", static_cast<uint64_t>(d))
        .kv("selected_ms", sel.ms)
        .kv("sel_template", sel.selTemplate)
        .kv("sel_long_line", sel.selLongLine)
        .kv("sel_maze", sel.selMaze)
        .kv("template_hits", sel.templateHits)
        .kv("long_template_hits", sel.longTemplateHits)
        .kv("selected_visits", sel.visits)
        .kv("maze_ms", mz.ms)
        .kv("maze_visits", mz.visits)
        .kv("speedup", speedup);
    jrbench::appendRunRecord(j);
  }

  // --- 2: admissible (weight 1.0) pruned maze vs exact Dijkstra.
  std::printf("\n%6s | %12s %12s %8s | %10s %10s\n", "dist", "dij_visits",
              "la_visits", "ratio", "dij_wires", "la_wires");
  MazeRouter maze(dev.graph);
  for (const int d : {24, 48}) {
    dev.fabric.clear();
    uint64_t dijVisits = 0, laVisits = 0, dijWires = 0, laWires = 0;
    for (const auto& net : workload::makeP2P(
             xcv1000(), 4, d, d, /*seed=*/1900u + static_cast<unsigned>(d))) {
      const NodeId src = dev.graph.nodeAt(net.src.rc, net.src.wire);
      const NodeId sink = dev.graph.nodeAt(net.sink.rc, net.sink.wire);
      const NetId n = dev.fabric.createNet(src, dev.graph.nodeName(src));
      const NodeId starts[] = {src};
      RouterOptions dij;
      dij.useLookahead = false;
      dij.heuristicWeight = 0.0;
      const auto a = maze.route(dev.fabric, n, starts, sink, dij);
      RouterOptions adm;
      adm.useLookahead = true;
      adm.lookahead = &la;
      adm.lookaheadWeight = 1.0;
      const auto b = maze.route(dev.fabric, n, starts, sink, adm);
      dijVisits += a.visited;
      laVisits += b.visited;
      dijWires += a.edges.size();
      laWires += b.edges.size();
    }
    std::printf("%6d | %12llu %12llu %7.1fx | %10llu %10llu\n", d,
                static_cast<unsigned long long>(dijVisits),
                static_cast<unsigned long long>(laVisits),
                static_cast<double>(dijVisits) /
                    static_cast<double>(laVisits ? laVisits : 1),
                static_cast<unsigned long long>(dijWires),
                static_cast<unsigned long long>(laWires));
    jrbench::JsonWriter j;
    j.kv("bench", std::string("e18_lookahead_prune"))
        .kv("distance", static_cast<uint64_t>(d))
        .kv("dijkstra_visits", dijVisits)
        .kv("lookahead_visits", laVisits)
        .kv("dijkstra_wires", dijWires)
        .kv("lookahead_wires", laWires);
    jrbench::appendRunRecord(j);
  }

  std::printf("\nclaim check: the selector never loses to the plain maze "
              "(templates win near, long-line compositions and the pruned "
              "maze win far), and the admissible pruned maze matches "
              "Dijkstra's wire counts at a fraction of the visits.\n");
  return 0;
}
