// Shared helpers for the experiment harnesses (E1..E10).
//
// Each bench binary regenerates one experiment from EXPERIMENTS.md and
// prints a self-contained table; the rows are stable across runs because
// every workload is seeded.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "bitstream/pip_table.h"
#include "core/router.h"
#include "rrg/graph.h"

namespace jrbench {

/// Wall-clock seconds of one call.
inline double secondsOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// A fully built simulated device: graph + PIP database + blank fabric.
struct Device {
  explicit Device(const xcvsim::DeviceSpec& spec)
      : graph(spec), arch(spec), table(arch), fabric(graph, table) {}

  xcvsim::Graph graph;
  xcvsim::ArchDb arch;
  xcvsim::PipTable table;
  xcvsim::Fabric fabric;
};

/// Device instances are expensive; share one per device name per process.
inline Device& sharedDevice(const xcvsim::DeviceSpec& spec) {
  static std::unique_ptr<Device> dev;
  static std::string name;
  if (!dev || name != spec.name) {
    dev = std::make_unique<Device>(spec);
    name = std::string(spec.name);
  }
  return *dev;
}

}  // namespace jrbench
