// Shared helpers for the experiment harnesses (E1..E10).
//
// Each bench binary regenerates one experiment from EXPERIMENTS.md and
// prints a self-contained table; the rows are stable across runs because
// every workload is seeded.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bitstream/pip_table.h"
#include "core/router.h"
#include "rrg/graph.h"

namespace jrbench {

/// Wall-clock seconds of one call.
inline double secondsOf(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// A fully built simulated device: graph + PIP database + blank fabric.
struct Device {
  explicit Device(const xcvsim::DeviceSpec& spec)
      : graph(spec), arch(spec), table(arch), fabric(graph, table) {}

  xcvsim::Graph graph;
  xcvsim::ArchDb arch;
  xcvsim::PipTable table;
  xcvsim::Fabric fabric;
};

/// Device instances are expensive; share one per device name per process.
inline Device& sharedDevice(const xcvsim::DeviceSpec& spec) {
  static std::unique_ptr<Device> dev;
  static std::string name;
  if (!dev || name != spec.name) {
    dev = std::make_unique<Device>(spec);
    name = std::string(spec.name);
  }
  return *dev;
}

/// Minimal single-line JSON object writer, so bench results can be scraped
/// by scripts as well as read as tables. Usage:
///   JsonWriter j; j.kv("mode", "service").kv("reqs", 42.0); puts(j.str());
class JsonWriter {
 public:
  JsonWriter& kv(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return raw(key, buf);
  }
  JsonWriter& kv(const char* key, uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(value));
    return raw(key, buf);
  }
  JsonWriter& kv(const char* key, const std::string& value) {
    return raw(key, "\"" + value + "\"");  // callers pass plain identifiers
  }
  const char* str() {
    out_ = "{" + body_ + "}";
    return out_.c_str();
  }

 private:
  JsonWriter& raw(const char* key, const std::string& v) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + std::string(key) + "\": " + v;
    return *this;
  }
  std::string body_, out_;
};

/// UTC wall-clock time, ISO 8601 (2026-08-06T12:34:56Z).
inline std::string isoTimestamp() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Append one finished JsonWriter as a run record to the shared bench
/// log — JSONL, one record per line, BENCH_service.json in the current
/// directory by default. $JROUTE_BENCH_RECORD overrides the path; setting
/// it empty disables recording (scripts/bench_record.sh sets it to the
/// repo-root file). A timestamp is appended to every record.
inline void appendRunRecord(JsonWriter& j) {
  const char* env = std::getenv("JROUTE_BENCH_RECORD");
  const std::string path = env != nullptr ? env : "BENCH_service.json";
  if (path.empty()) return;
  j.kv("timestamp", isoTimestamp());
  std::ofstream os(path, std::ios::app);
  if (os) os << j.str() << "\n";
}

/// p-th percentile (0..100) of an unsorted sample, by nearest rank.
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace jrbench
