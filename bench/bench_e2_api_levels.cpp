// E2 — section 3.1's levels-of-control trade-off.
//
// "This can be useful in cases where there is a real time constraint on
//  the amount of time spent configuring the device." (single connections)
// "The cost is longer execution time, and there is no guarantee that an
//  unused path even exists." (templates)
//
// Measures one connect+disconnect cycle of the same logical connection
// (S1_YQ of (5,7) to an input of (6,8)) at every API level. Expected
// shape: direct PIPs < path < predefined/user template < maze.
#include <benchmark/benchmark.h>

#include "arch/patterns.h"
#include "bench/bench_util.h"

using namespace jroute;
using namespace xcvsim;

namespace {

jrbench::Device& dev() { return jrbench::sharedDevice(xcv50()); }

const int kTurn = singleTurn(Dir::West, Dir::North, 1)[0];
const int kPin = clbInFromSingle(kTurn)[0];

void BM_Level1_DirectPips(benchmark::State& state) {
  Router router(dev().fabric);
  for (auto _ : state) {
    router.route(5, 7, S1_YQ, omux(1));
    router.route(5, 7, omux(1), single(Dir::East, 1));
    router.route(5, 8, single(Dir::West, 1), single(Dir::North, kTurn));
    router.route(6, 8, single(Dir::South, kTurn), clbIn(kPin));
    router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  }
  state.SetLabel("4 PIPs, user-chosen wires");
}
BENCHMARK(BM_Level1_DirectPips);

void BM_Level2_Path(benchmark::State& state) {
  Router router(dev().fabric);
  const Path path(5, 7, {S1_YQ, omux(1), single(Dir::East, 1),
                         single(Dir::North, kTurn), clbIn(kPin)});
  for (auto _ : state) {
    router.route(path);
    router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  }
  state.SetLabel("explicit path, router finds PIPs");
}
BENCHMARK(BM_Level2_Path);

void BM_Level3_UserTemplate(benchmark::State& state) {
  Router router(dev().fabric);
  const Template tmpl{TemplateValue::OUTMUX, TemplateValue::EAST1,
                      TemplateValue::NORTH1, TemplateValue::CLBIN};
  for (auto _ : state) {
    router.route(Pin(5, 7, S1_YQ), S0F3, tmpl);
    router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  }
  state.SetLabel("router picks wires along template");
}
BENCHMARK(BM_Level3_UserTemplate);

void BM_Level4_AutoTemplateFirst(benchmark::State& state) {
  Router router(dev().fabric);
  for (auto _ : state) {
    router.route(EndPoint(Pin(5, 7, S1_YQ)), EndPoint(Pin(6, 8, S0F3)));
    router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  }
  state.SetLabel("auto p2p, predefined templates");
}
BENCHMARK(BM_Level4_AutoTemplateFirst);

void BM_Level4_AutoMazeOnly(benchmark::State& state) {
  RouterOptions opts;
  opts.templateFirst = false;
  Router router(dev().fabric, opts);
  for (auto _ : state) {
    router.route(EndPoint(Pin(5, 7, S1_YQ)), EndPoint(Pin(6, 8, S0F3)));
    router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  }
  state.SetLabel("auto p2p, maze fallback forced");
}
BENCHMARK(BM_Level4_AutoMazeOnly);

void BM_Level5_Fanout4(benchmark::State& state) {
  Router router(dev().fabric);
  const std::vector<EndPoint> sinks{
      EndPoint(Pin(6, 8, S0F3)), EndPoint(Pin(5, 10, S0F1)),
      EndPoint(Pin(9, 9, S0G1)), EndPoint(Pin(3, 12, S1F2))};
  for (auto _ : state) {
    router.route(EndPoint(Pin(5, 7, S1_YQ)),
                 std::span<const EndPoint>(sinks));
    router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  }
  state.SetLabel("auto fanout, 4 sinks, tree reuse");
}
BENCHMARK(BM_Level5_Fanout4);

}  // namespace

BENCHMARK_MAIN();
