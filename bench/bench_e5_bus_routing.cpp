// E5 — section 3.1's bus call and its regularity claim:
//
//   "As a convenience, the user does not need to write a Java loop to
//    connect each one. ... Using a template can also take advantage of
//    regularity which would occur, for example, when connecting each
//    output bit of an adder to an input of another core."
//
// Sweeps bus width and routes the same aligned stage-to-stage bus two
// ways: the bus call (which reuses the previous bit's shape as a
// template) and a per-bit loop of independent auto routes. Reports wall
// time and search effort.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  std::printf("E5: bus call (shape reuse) vs per-bit loop (XCV300, stage "
              "span 7 columns)\n\n");
  std::printf("%6s | %10s %12s %9s %5s | %10s %12s %9s %5s\n", "width",
              "bus ms", "visits", "attempts", "fail", "loop ms", "visits",
              "attempts", "fail");
  for (const int w : {4, 8, 16, 32, 64}) {
    const workload::Bus bus = workload::makeBus(xcv300(), w, 7, 500 + w);

    std::vector<EndPoint> srcs, sinks;
    for (const Pin& p : bus.srcs) srcs.push_back(EndPoint(p));
    for (const Pin& p : bus.sinks) sinks.push_back(EndPoint(p));

    // (a) one lenient bus call with shape reuse across bits.
    dev.fabric.clear();
    Router busRouter(dev.fabric);
    int busFailed = 0;
    const double busMs = 1e3 * jrbench::secondsOf([&] {
      busFailed = busRouter.tryRouteBus(std::span<const EndPoint>(srcs),
                                        std::span<const EndPoint>(sinks));
    });
    const uint64_t busVisits =
        busRouter.stats().templateVisits + busRouter.stats().mazeVisits;
    const uint64_t busAttempts = busRouter.stats().templateAttempts;

    // (b) a user-written per-bit loop of plain auto routes.
    dev.fabric.clear();
    Router loopRouter(dev.fabric);
    int loopFailed = 0;
    const double loopMs = 1e3 * jrbench::secondsOf([&] {
      for (int i = 0; i < w; ++i) {
        try {
          loopRouter.route(srcs[static_cast<size_t>(i)],
                           sinks[static_cast<size_t>(i)]);
        } catch (const xcvsim::JRouteError&) {
          ++loopFailed;
        }
      }
    });
    const uint64_t loopVisits =
        loopRouter.stats().templateVisits + loopRouter.stats().mazeVisits;
    const uint64_t loopAttempts = loopRouter.stats().templateAttempts;

    std::printf("%6d | %10.2f %12llu %9llu %5d | %10.2f %12llu %9llu %5d\n",
                w, busMs, static_cast<unsigned long long>(busVisits),
                static_cast<unsigned long long>(busAttempts), busFailed,
                loopMs, static_cast<unsigned long long>(loopVisits),
                static_cast<unsigned long long>(loopAttempts), loopFailed);
  }
  std::printf("\nclaim check: one bus call replaces the hand-written "
              "per-bit loop at equal cost, reusing the previous bit's "
              "shape wherever the fabric stays regular.\n");
  return 0;
}
