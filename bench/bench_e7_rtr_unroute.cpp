// E7 — section 3.3: the unrouter and run-time core replacement.
//
//   "Run-time reconfiguration requires an unrouter. ... The core can be
//    removed, unrouted, and replaced with a new constant multiplier
//    without having to specify connections again."
//
// Measures the constant-multiplier swap cycle (full structural replace vs
// LUT-only update, with partial-reconfiguration frame counts), then the
// cost of unroute (whole net) and reverseUnroute (single branch) as a
// function of fanout.
#include <cstdio>

#include "bench/bench_util.h"
#include "bitstream/packets.h"
#include "cores/const_adder.h"
#include "cores/kcm.h"
#include "rtr/manager.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv50());
  std::printf("E7: RTR unroute / replace costs (XCV50)\n\n");

  // --- The constant-multiplier swap scenario.
  dev.fabric.clear();
  Router router(dev.fabric);
  RtrManager mgr(router);
  Kcm mult(8, 3);
  ConstAdder adder(8, 1);
  const double setupMs = 1e3 * jrbench::secondsOf([&] {
    mgr.install(mult, {4, 4});
    mgr.install(adder, {4, 10});
    mgr.connect(mult, Kcm::kOutGroup, adder, ConstAdder::kInGroup);
  });
  std::printf("system bring-up (2 cores + 8-bit bus): %.2f ms, %zu PIPs\n",
              setupMs, dev.fabric.onEdgeCount());

  dev.fabric.jbits().bitstream().clearDirty();
  const double replaceMs = 1e3 * jrbench::secondsOf([&] {
    mult.setConstant(router, 7);
    mgr.reconfigure(mult);
  });
  const size_t replaceFrames = dev.fabric.jbits().bitstream().dirtyFrames().size();

  dev.fabric.jbits().bitstream().clearDirty();
  const double lutMs =
      1e3 * jrbench::secondsOf([&] { mult.setConstant(router, 11); });
  const size_t lutFrames = dev.fabric.jbits().bitstream().dirtyFrames().size();

  std::printf("constant swap, full replace : %8.2f ms, %3zu frames\n",
              replaceMs, replaceFrames);
  std::printf("constant swap, LUT-only     : %8.2f ms, %3zu frames "
              "(%.0fx fewer)\n",
              lutMs, lutFrames,
              static_cast<double>(replaceFrames) /
                  static_cast<double>(lutFrames ? lutFrames : 1));

  // --- Unroute scaling with fanout.
  std::printf("\n%6s | %12s %12s | %14s\n", "fanout", "unroute us",
              "route us", "revUnroute us");
  for (const int k : {2, 4, 8, 16, 32}) {
    const auto nets = workload::makeFanout(xcv50(), 4, k, 6, 900 + k);
    double routeUs = 0, unrouteUs = 0, revUs = 0;
    for (const auto& net : nets) {
      dev.fabric.clear();
      Router r(dev.fabric);
      std::vector<EndPoint> sinks;
      for (const Pin& p : net.sinks) sinks.push_back(EndPoint(p));
      routeUs += 1e6 * jrbench::secondsOf([&] {
        r.route(EndPoint(net.src), std::span<const EndPoint>(sinks));
      });
      // Reverse-unroute one branch, then forward-unroute the rest.
      revUs += 1e6 * jrbench::secondsOf(
          [&] { r.reverseUnroute(EndPoint(net.sinks.back())); });
      unrouteUs +=
          1e6 * jrbench::secondsOf([&] { r.unroute(EndPoint(net.src)); });
    }
    std::printf("%6d | %12.1f %12.1f | %14.1f\n", k, unrouteUs / 4,
                routeUs / 4, revUs / 4);
  }
  std::printf("\nclaim check: unrouting is far cheaper than routing, and "
              "reverseUnroute touches only one branch.\n");
  return 0;
}
