// E9 — section 3.4: contention protection and its cost.
//
//   "The router makes sure that this situation does not occur, and
//    therefore protects the device. An exception is thrown in cases where
//    the user tries to make connections that create contention. In the
//    auto-routing calls, the router checks to see if a wire is already
//    used, which avoids contention."
//
// Microbenchmarks of the protection machinery: the isOn() query, the
// validated PIP toggle (every turnOn re-checks ownership and drivers),
// and the cost of a rejected contention attempt including the exception.
#include <benchmark/benchmark.h>

#include "arch/patterns.h"
#include "bench/bench_util.h"

using namespace jroute;
using namespace xcvsim;

namespace {

jrbench::Device& dev() { return jrbench::sharedDevice(xcv50()); }

void BM_IsOnQuery(benchmark::State& state) {
  Router router(dev().fabric);
  router.route(5, 7, S1_YQ, omux(1));
  int on = 0;
  for (auto _ : state) {
    on += router.isOn(5, 7, omux(1)) ? 1 : 0;
    on += router.isOn(5, 7, omux(2)) ? 1 : 0;
    benchmark::DoNotOptimize(on);
  }
  router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  state.SetLabel("2 queries per iteration");
}
BENCHMARK(BM_IsOnQuery);

void BM_ValidatedPipToggle(benchmark::State& state) {
  auto& fabric = dev().fabric;
  const auto& g = fabric.graph();
  const auto u = g.nodeAt({5, 7}, S1_YQ);
  const auto v = g.nodeAt({5, 7}, omux(1));
  const auto e = g.findEdge(u, v, {5, 7});
  const auto net = fabric.createNet(u, "bench");
  for (auto _ : state) {
    fabric.turnOn(e, net);   // full ownership + driver + contention checks
    fabric.turnOff(e);
  }
  fabric.removeNet(net);
  state.SetLabel("checked turnOn + turnOff, incl. bitstream write-through");
}
BENCHMARK(BM_ValidatedPipToggle);

void BM_ContentionRejected(benchmark::State& state) {
  auto& fabric = dev().fabric;
  const auto& g = fabric.graph();
  // Net A drives a single track; net B holds the straight-through PIP
  // into the same track and keeps retrying it.
  Router router(fabric);
  router.route(5, 7, S1_YQ, omux(1));
  router.route(5, 7, omux(1), single(Dir::East, 1));
  const auto track = g.nodeAt({5, 7}, single(Dir::East, 1));

  Router other(fabric);
  other.route(5, 9, S1_YQ, omux(1));
  other.route(5, 9, omux(1), single(Dir::West, 1));
  const auto bTrack = g.nodeAt({5, 9}, single(Dir::West, 1));
  const auto hazard = g.findEdge(bTrack, track, {5, 8});
  const auto net = fabric.netOf(bTrack);

  size_t caught = 0;
  for (auto _ : state) {
    try {
      fabric.turnOn(hazard, net);
    } catch (const ContentionError&) {
      ++caught;
    }
  }
  benchmark::DoNotOptimize(caught);
  router.unroute(EndPoint(Pin(5, 7, S1_YQ)));
  other.unroute(EndPoint(Pin(5, 9, S1_YQ)));
  state.SetLabel("detect + throw + catch per iteration");
}
BENCHMARK(BM_ContentionRejected);

void BM_AutoRouteWithUsedChecks(benchmark::State& state) {
  // End-to-end auto route whose inner loops run the in-use checks on
  // every candidate wire — the protection cost in its natural habitat.
  Router router(dev().fabric);
  for (auto _ : state) {
    router.route(EndPoint(Pin(8, 8, S1_YQ)), EndPoint(Pin(10, 11, S0F3)));
    router.unroute(EndPoint(Pin(8, 8, S1_YQ)));
  }
  state.SetLabel("auto p2p route+unroute cycle");
}
BENCHMARK(BM_AutoRouteWithUsedChecks);

}  // namespace

BENCHMARK_MAIN();
