// E13 — ablation of the maze router's weighted-A* design choice
// (DESIGN.md section 4 / RouterOptions::heuristicWeight).
//
// A run-time router wants bounded-suboptimality search: the admissible
// delay bound per tile of progress is so loose (a chip-spanning long line
// moves ~13 ps/tile) that exact A* devolves toward Dijkstra. This bench
// sweeps the weight and reports search effort vs route quality, justifying
// the shipped default.
#include <cstdio>

#include "bench/bench_util.h"
#include "fabric/timing.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  constexpr int kNets = 60;
  const auto nets = workload::makeP2P(xcv300(), kNets, 8, 40, /*seed=*/1300);

  std::printf("E13: weighted-A* ablation (XCV300, %d nets, maze only)\n\n",
              kNets);
  std::printf("%8s | %10s %12s | %12s %12s | %6s\n", "weight", "ms",
              "visits", "wires/net", "delay ns", "fail");
  for (const double w : {1.0, 1.5, 2.0, 3.0, 5.0}) {
    dev.fabric.clear();
    RouterOptions opts;
    opts.templateFirst = false;
    opts.heuristicWeight = w;
    // This experiment ablates the *legacy* manhattan heuristic; with the
    // lookahead on, heuristicWeight is never consulted (see E18 for the
    // lookahead's own ablation).
    opts.useLookahead = false;
    Router router(dev.fabric, opts);
    int failed = 0;
    const double ms = 1e3 * jrbench::secondsOf([&] {
      for (const auto& net : nets) {
        try {
          router.route(EndPoint(net.src), EndPoint(net.sink));
        } catch (const UnroutableError&) {
          ++failed;
        }
      }
    });
    size_t wires = 0;
    DelayPs delay = 0;
    int ok = 0;
    for (const auto& net : nets) {
      const auto srcNode = dev.graph.nodeAt(net.src.rc, net.src.wire);
      if (!dev.fabric.isUsed(srcNode)) continue;
      ++ok;
      wires += dev.fabric.netSize(dev.fabric.netOf(srcNode));
      delay += computeNetTiming(dev.fabric, srcNode).maxDelay;
    }
    std::printf("%8.1f | %10.1f %12llu | %12.2f %12.2f | %6d\n", w, ms,
                static_cast<unsigned long long>(router.stats().mazeVisits),
                static_cast<double>(wires) / (ok ? ok : 1),
                static_cast<double>(delay) / 1e3 / (ok ? ok : 1), failed);
  }
  std::printf("\nclaim check: weight 2.0 cuts search effort by an order of "
              "magnitude versus admissible A* while route delay moves only "
              "a few percent — the right trade for a run-time router.\n");
  return 0;
}
