// Routing-service throughput: batched concurrent engine vs serialized
// baseline.
//
// Workload: round-trip waves over tile-disjoint point-to-point pairs on
// XCV300 — the case the service's parallel planning phase is built for.
// Each wave routes every pair, settles, then unroutes every pair, so a
// request total far beyond the fabric's concurrent-net capacity can be
// driven through the engine (the old fixed 42-request workload measured
// little more than startup). The serialized baseline is the raw
// single-threaded Router issuing the same waves in order; the service
// run has P producer threads, each owning the pairs congruent to its
// index, submitting async requests into the batched engine and settling
// between the route and unroute halves of a wave (an unroute must never
// share a batch with the route that created its net). Reported per
// mode: requests/second and p50/p99 submit-to-resolve latency, as a
// table and as one JSON line per mode.
//
// With JROUTE_DRC_PARANOID=1 in the environment both modes run the static
// analyzer as they go — the service after every engine batch (its
// ServiceOptions default picks the env var up), the serialized baseline
// after every operation (the per-txn analogue, bitstream decode skipped
// just like the txn hook) — so the delta against a plain run is the price
// of the oracle. The mode is echoed in the table header and JSON.
//
//   ./bench_service_throughput [producers] [reps] [--requests N]
#include <cstring>
#include <future>
#include <thread>

#include "analysis/drc.h"
#include "arch/wires.h"
#include "bench/bench_util.h"
#include "check/lockcheck.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "service/service.h"

using namespace xcvsim;
using jrbench::JsonWriter;
using jroute::EndPoint;
using jroute::Pin;

namespace {

struct Req {
  Pin src;
  Pin sink;
};

/// Tile-disjoint p2p pairs: one per cell of a coarse grid, spaced so
/// that margin-expanded bounding boxes never overlap.
std::vector<Req> makeDisjointWork(const Graph& g) {
  const DeviceSpec& dev = g.device();
  std::vector<Req> work;
  for (int r = 2; r + 1 < dev.rows - 1; r += 5) {
    for (int c = 4; c + 2 < dev.cols - 1; c += 6) {
      work.push_back({Pin(r, c, S1_YQ), Pin(r + 1, c + 2, clbIn(2))});
    }
  }
  return work;
}

struct RunResult {
  double seconds = 0;
  std::vector<double> latenciesMs;
  uint64_t accepted = 0;
  uint64_t parallel = 0;
  uint64_t certifiedPlanned = 0;
  uint64_t certifiedFallbacks = 0;
};

/// Both modes route maze-only: with templates on, a short p2p route costs
/// microseconds and queue/handoff overhead dominates; the maze makes each
/// request expensive enough that the parallel planning phase is what's
/// being measured (and it is the engine both modes share).
jroute::RouterOptions mazeOnly() {
  jroute::RouterOptions r;
  r.templateFirst = false;
  return r;
}

RunResult runSerialized(Fabric& fabric, const std::vector<Req>& work,
                        uint64_t waves) {
  fabric.clear();
  jroute::Router router(fabric, mazeOnly());
  const bool paranoid = jrdrc::paranoidEnabled();
  auto check = [&](const char* what) {
    jrdrc::DrcInput in;
    in.fabric = &fabric;
    in.router = &router;
    in.checkBitstream = false;  // same policy as the per-txn hook
    jrdrc::enforce(in, what);
  };
  RunResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t w = 0; w < waves; ++w) {
    for (const Req& rq : work) {
      const auto s0 = std::chrono::steady_clock::now();
      router.route(EndPoint(rq.src), EndPoint(rq.sink));
      if (paranoid) check("serialized route");
      const auto s1 = std::chrono::steady_clock::now();
      res.latenciesMs.push_back(
          std::chrono::duration<double, std::milli>(s1 - s0).count());
      ++res.accepted;
    }
    for (const Req& rq : work) {
      const auto s0 = std::chrono::steady_clock::now();
      router.unroute(EndPoint(rq.src));
      if (paranoid) check("serialized unroute");
      const auto s1 = std::chrono::steady_clock::now();
      res.latenciesMs.push_back(
          std::chrono::duration<double, std::milli>(s1 - s0).count());
      ++res.accepted;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  return res;
}

RunResult runService(Fabric& fabric, const std::vector<Req>& work,
                     uint64_t waves, unsigned producers, bool certify) {
  fabric.clear();
  jrsvc::ServiceOptions opts;
  opts.batchSize = 64;
  opts.router = mazeOnly();
  opts.certify = certify;
  jrsvc::RoutingService svc(fabric, opts);
  std::vector<jrsvc::Session> sessions;
  for (unsigned p = 0; p < producers; ++p) {
    sessions.push_back(svc.openSession());
  }

  struct Pending {
    std::future<jrsvc::RouteResult> fut;
    std::chrono::steady_clock::time_point submitted;
  };
  std::vector<RunResult> lanes(producers);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Producer p owns the pairs congruent to p. Each wave routes them
      // all, settles, unroutes them all, settles — the settle keeps an
      // unroute out of the batch still carrying its net's route, and the
      // per-future .get() timestamps give a tight per-request
      // submit-to-resolve upper bound.
      RunResult& lane = lanes[p];
      std::vector<Pending> pending;
      auto settle = [&] {
        for (Pending& item : pending) {
          const jrsvc::RouteResult r = item.fut.get();
          if (r.ok()) {
            ++lane.accepted;
            if (r.routedInParallel) ++lane.parallel;
          }
          lane.latenciesMs.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - item.submitted)
                  .count());
        }
        pending.clear();
      };
      for (uint64_t w = 0; w < waves; ++w) {
        for (size_t i = p; i < work.size(); i += producers) {
          Pending item;
          item.submitted = std::chrono::steady_clock::now();
          item.fut = sessions[p].routeAsync(EndPoint(work[i].src),
                                            EndPoint(work[i].sink));
          pending.push_back(std::move(item));
        }
        settle();
        for (size_t i = p; i < work.size(); i += producers) {
          Pending item;
          item.submitted = std::chrono::steady_clock::now();
          item.fut = sessions[p].unrouteAsync(EndPoint(work[i].src));
          pending.push_back(std::move(item));
        }
        settle();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult res;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  for (RunResult& lane : lanes) {
    res.accepted += lane.accepted;
    res.parallel += lane.parallel;
    res.latenciesMs.insert(res.latenciesMs.end(), lane.latenciesMs.begin(),
                           lane.latenciesMs.end());
  }
  svc.stop();
  const jrsvc::ServiceStats stats = svc.stats();
  res.certifiedPlanned = stats.certifiedPlanned;
  res.certifiedFallbacks = stats.certifiedFallbacks;
  return res;
}

void report(const char* mode, const RunResult& r, size_t reqs,
            unsigned producers, bool certify) {
  const double reqPerSec = static_cast<double>(reqs) / r.seconds;
  std::printf("%-12s %8.3fs  %9.1f req/s  p50 %7.3fms  p99 %7.3fms"
              "  accepted %zu/%zu  parallel %llu\n",
              mode, r.seconds, reqPerSec,
              jrbench::percentile(r.latenciesMs, 50),
              jrbench::percentile(r.latenciesMs, 99),
              static_cast<size_t>(r.accepted), reqs,
              static_cast<unsigned long long>(r.parallel));
  JsonWriter j;
  j.kv("bench", std::string("service_throughput"))
      .kv("mode", std::string(mode))
      .kv("workload", std::string("roundtrip"))
      .kv("producers", static_cast<uint64_t>(producers))
      .kv("requests", static_cast<uint64_t>(reqs))
      .kv("seconds", r.seconds)
      .kv("req_per_sec", reqPerSec)
      .kv("p50_ms", jrbench::percentile(r.latenciesMs, 50))
      .kv("p99_ms", jrbench::percentile(r.latenciesMs, 99))
      .kv("accepted", r.accepted)
      .kv("parallel_planned", r.parallel)
      // E21's paired certify 0/1 records measure how much skipping claim
      // arbitration under no-conflict certificates buys on an identical
      // workload.
      .kv("certify", static_cast<uint64_t>(certify ? 1 : 0))
      .kv("certified_planned", r.certifiedPlanned)
      .kv("certified_fallbacks", r.certifiedFallbacks)
      .kv("drc_paranoid", static_cast<uint64_t>(jrdrc::paranoidEnabled()))
      // Armed vs disarmed records measure the lock-order checker's
      // overhead on the same workload (budget: <3% disarmed).
      .kv("lockcheck",
          static_cast<uint64_t>(jrcheck::activeChecker().armed() ? 1 : 0))
      // E20's paired records measure the profiler the same way (budget:
      // <1% disarmed, <5% armed).
      .kv("prof", static_cast<uint64_t>(jrprof::armed() ? 1 : 0))
      // E16 compares this build against -DJROUTE_NO_TELEMETRY: the flag
      // tells the two record populations apart in BENCH_service.json.
      .kv("telemetry", static_cast<uint64_t>(jrobs::compiledIn() ? 1 : 0));
  // Enqueue-to-resolve percentiles from the engine's own histogram
  // (cumulative over the service reps; absent for the serialized
  // baseline and under JROUTE_NO_TELEMETRY).
  const jrobs::MetricsSnapshot snap = jrobs::registry().snapshot();
  if (const jrobs::MetricSample* h = snap.find("service.request.latency_us");
      std::string(mode) == "service" && h != nullptr && h->count > 0) {
    j.kv("hist_p50_us", h->p50).kv("hist_p95_us", h->p95).kv("hist_p99_us",
                                                             h->p99);
  }
  std::printf("%s\n", j.str());
  jrbench::appendRunRecord(j);
}

}  // namespace

int main(int argc, char** argv) {
  // Honors JROUTE_LOCKCHECK / JROUTE_PROF so bench_record.sh can measure
  // checker-armed and profiler-armed vs disarmed throughput on the
  // identical workload.
  jrcheck::maybeArmFromEnv();
  jrprof::maybeArmFromEnv();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned producers = std::min(4u, hw);
  int reps = 3;
  uint64_t requests = 10000;
  bool certify = false;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--certify") == 0) {
      certify = true;
    } else if (positional == 0) {
      producers = static_cast<unsigned>(std::atoi(argv[i]));
      ++positional;
    } else if (positional == 1) {
      reps = std::atoi(argv[i]);
      ++positional;
    } else {
      std::fprintf(stderr,
                   "usage: bench_service_throughput [producers] [reps] "
                   "[--requests N] [--certify]\n");
      return 2;
    }
  }
  if (producers == 0) producers = 1;
  if (reps < 1) reps = 1;
  if (requests < 1) requests = 1;

  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  const std::vector<Req> work = makeDisjointWork(dev.graph);
  // Waves of route-all + unroute-all, rounded up to cover the request
  // budget; both modes issue exactly the same operation sequence.
  const uint64_t perWave = 2 * static_cast<uint64_t>(work.size());
  const uint64_t waves = std::max<uint64_t>(1, (requests + perWave - 1) / perWave);
  const uint64_t totalReqs = waves * perWave;
  std::printf("service throughput: %llu round-trip requests (%llu waves x "
              "%zu disjoint p2p pairs) on %s, %u producer(s), %u core(s), "
              "certify %s, DRC paranoid %s, lockcheck %s, prof %s\n\n",
              static_cast<unsigned long long>(totalReqs),
              static_cast<unsigned long long>(waves), work.size(),
              std::string(xcv300().name).c_str(), producers, hw,
              certify ? "on" : "off",
              jrdrc::paranoidEnabled() ? "on" : "off",
              jrcheck::activeChecker().armed() ? "armed" : "off",
              jrprof::armed() ? "armed" : "off");

  RunResult bestSerial, bestSvc;
  for (int rep = 0; rep < reps; ++rep) {
    RunResult s = runSerialized(dev.fabric, work, waves);
    if (rep == 0 || s.seconds < bestSerial.seconds) bestSerial = std::move(s);
    RunResult v = runService(dev.fabric, work, waves, producers, certify);
    if (rep == 0 || v.seconds < bestSvc.seconds) bestSvc = std::move(v);
  }

  report("serialized", bestSerial, static_cast<size_t>(totalReqs), 1,
         /*certify=*/false);
  report("service", bestSvc, static_cast<size_t>(totalReqs), producers,
         certify);
  std::printf("\nspeedup: %.2fx\n", bestSerial.seconds / bestSvc.seconds);
  return 0;
}
