// Routing-service throughput: batched concurrent engine vs serialized
// baseline.
//
// Workload: tile-disjoint point-to-point routes on XCV300 — the case the
// service's parallel planning phase is built for. The serialized baseline
// is the raw single-threaded Router issuing the same routes in order; the
// service run has P producer threads submitting async requests into the
// batched engine. Reported per mode: requests/second and p50/p99
// submit-to-resolve latency, as a table and as one JSON line per mode.
//
// With JROUTE_DRC_PARANOID=1 in the environment both modes run the static
// analyzer as they go — the service after every engine batch (its
// ServiceOptions default picks the env var up), the serialized baseline
// after every route (the per-txn analogue, bitstream decode skipped just
// like the txn hook) — so the delta against a plain run is the price of
// the oracle. The mode is echoed in the table header and JSON.
//
//   ./bench_service_throughput [producers] [reps]
#include <future>
#include <thread>

#include "analysis/drc.h"
#include "arch/wires.h"
#include "bench/bench_util.h"
#include "check/lockcheck.h"
#include "obs/metrics.h"
#include "service/service.h"

using namespace xcvsim;
using jrbench::JsonWriter;
using jroute::EndPoint;
using jroute::Pin;

namespace {

struct Req {
  Pin src;
  Pin sink;
};

/// Tile-disjoint p2p requests: one per cell of a coarse grid, spaced so
/// that margin-expanded bounding boxes never overlap.
std::vector<Req> makeDisjointWork(const Graph& g) {
  const DeviceSpec& dev = g.device();
  std::vector<Req> work;
  for (int r = 2; r + 1 < dev.rows - 1; r += 5) {
    for (int c = 4; c + 2 < dev.cols - 1; c += 6) {
      work.push_back({Pin(r, c, S1_YQ), Pin(r + 1, c + 2, clbIn(2))});
    }
  }
  return work;
}

struct RunResult {
  double seconds = 0;
  std::vector<double> latenciesMs;
  uint64_t accepted = 0;
  uint64_t parallel = 0;
};

/// Both modes route maze-only: with templates on, a short p2p route costs
/// microseconds and queue/handoff overhead dominates; the maze makes each
/// request expensive enough that the parallel planning phase is what's
/// being measured (and it is the engine both modes share).
jroute::RouterOptions mazeOnly() {
  jroute::RouterOptions r;
  r.templateFirst = false;
  return r;
}

RunResult runSerialized(Fabric& fabric, const std::vector<Req>& work) {
  fabric.clear();
  jroute::Router router(fabric, mazeOnly());
  const bool paranoid = jrdrc::paranoidEnabled();
  RunResult res;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Req& rq : work) {
    const auto s0 = std::chrono::steady_clock::now();
    router.route(EndPoint(rq.src), EndPoint(rq.sink));
    if (paranoid) {
      jrdrc::DrcInput in;
      in.fabric = &fabric;
      in.router = &router;
      in.checkBitstream = false;  // same policy as the per-txn hook
      jrdrc::enforce(in, "serialized route");
    }
    const auto s1 = std::chrono::steady_clock::now();
    res.latenciesMs.push_back(
        std::chrono::duration<double, std::milli>(s1 - s0).count());
    ++res.accepted;
  }
  const auto t1 = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  return res;
}

RunResult runService(Fabric& fabric, const std::vector<Req>& work,
                     unsigned producers) {
  fabric.clear();
  jrsvc::ServiceOptions opts;
  opts.batchSize = 64;
  opts.router = mazeOnly();
  jrsvc::RoutingService svc(fabric, opts);
  std::vector<jrsvc::Session> sessions;
  for (unsigned p = 0; p < producers; ++p) {
    sessions.push_back(svc.openSession());
  }

  struct Pending {
    std::future<jrsvc::RouteResult> fut;
    std::chrono::steady_clock::time_point submitted;
  };
  std::vector<std::vector<Pending>> pending(producers);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      // Producer p submits every p-th request, then awaits its futures.
      for (size_t i = p; i < work.size(); i += producers) {
        Pending item;
        item.submitted = std::chrono::steady_clock::now();
        item.fut = sessions[p].routeAsync(EndPoint(work[i].src),
                                          EndPoint(work[i].sink));
        pending[p].push_back(std::move(item));
      }
      for (Pending& item : pending[p]) item.fut.wait();
    });
  }
  for (std::thread& th : threads) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult res;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  const auto end = std::chrono::steady_clock::now();
  for (auto& lane : pending) {
    for (Pending& item : lane) {
      const jrsvc::RouteResult r = item.fut.get();
      if (r.ok()) {
        ++res.accepted;
        if (r.routedInParallel) ++res.parallel;
      }
      res.latenciesMs.push_back(
          std::chrono::duration<double, std::milli>(end - item.submitted)
              .count());
    }
  }
  // Upper bound on per-request latency (resolve times are not individually
  // observable through std::future); the wall-clock and req/s numbers are
  // exact.
  svc.stop();
  return res;
}

void report(const char* mode, const RunResult& r, size_t reqs,
            unsigned producers) {
  const double reqPerSec = static_cast<double>(reqs) / r.seconds;
  std::printf("%-12s %8.3fs  %9.1f req/s  p50 %7.3fms  p99 %7.3fms"
              "  accepted %zu/%zu  parallel %llu\n",
              mode, r.seconds, reqPerSec,
              jrbench::percentile(r.latenciesMs, 50),
              jrbench::percentile(r.latenciesMs, 99),
              static_cast<size_t>(r.accepted), reqs,
              static_cast<unsigned long long>(r.parallel));
  JsonWriter j;
  j.kv("bench", std::string("service_throughput"))
      .kv("mode", std::string(mode))
      .kv("producers", static_cast<uint64_t>(producers))
      .kv("requests", static_cast<uint64_t>(reqs))
      .kv("seconds", r.seconds)
      .kv("req_per_sec", reqPerSec)
      .kv("p50_ms", jrbench::percentile(r.latenciesMs, 50))
      .kv("p99_ms", jrbench::percentile(r.latenciesMs, 99))
      .kv("accepted", r.accepted)
      .kv("parallel_planned", r.parallel)
      .kv("drc_paranoid", static_cast<uint64_t>(jrdrc::paranoidEnabled()))
      // Armed vs disarmed records measure the lock-order checker's
      // overhead on the same workload (budget: <3% disarmed).
      .kv("lockcheck",
          static_cast<uint64_t>(jrcheck::activeChecker().armed() ? 1 : 0))
      // E16 compares this build against -DJROUTE_NO_TELEMETRY: the flag
      // tells the two record populations apart in BENCH_service.json.
      .kv("telemetry", static_cast<uint64_t>(jrobs::compiledIn() ? 1 : 0));
  // Enqueue-to-resolve percentiles from the engine's own histogram
  // (cumulative over the service reps; absent for the serialized
  // baseline and under JROUTE_NO_TELEMETRY).
  const jrobs::MetricsSnapshot snap = jrobs::registry().snapshot();
  if (const jrobs::MetricSample* h = snap.find("service.request.latency_us");
      std::string(mode) == "service" && h != nullptr && h->count > 0) {
    j.kv("hist_p50_us", h->p50).kv("hist_p95_us", h->p95).kv("hist_p99_us",
                                                             h->p99);
  }
  std::printf("%s\n", j.str());
  jrbench::appendRunRecord(j);
}

}  // namespace

int main(int argc, char** argv) {
  // Honors JROUTE_LOCKCHECK so bench_record.sh can measure checker-armed
  // vs disarmed throughput on the identical workload.
  jrcheck::maybeArmFromEnv();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned producers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1]))
                                : std::min(4u, hw);
  if (producers == 0) producers = 1;
  const int reps = argc > 2 ? std::atoi(argv[2]) : 3;

  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  const std::vector<Req> work = makeDisjointWork(dev.graph);
  std::printf("service throughput: %zu tile-disjoint p2p routes on %s, "
              "%u producer(s), %u core(s), DRC paranoid %s, lockcheck %s\n\n",
              work.size(), std::string(xcv300().name).c_str(), producers, hw,
              jrdrc::paranoidEnabled() ? "on" : "off",
              jrcheck::activeChecker().armed() ? "armed" : "off");

  RunResult bestSerial, bestSvc;
  for (int rep = 0; rep < reps; ++rep) {
    RunResult s = runSerialized(dev.fabric, work);
    if (rep == 0 || s.seconds < bestSerial.seconds) bestSerial = std::move(s);
    RunResult v = runService(dev.fabric, work, producers);
    if (rep == 0 || v.seconds < bestSvc.seconds) bestSvc = std::move(v);
  }

  report("serialized", bestSerial, work.size(), 1);
  report("service", bestSvc, work.size(), producers);
  std::printf("\nspeedup: %.2fx\n", bestSerial.seconds / bestSvc.seconds);
  return 0;
}
