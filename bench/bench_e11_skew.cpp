// E11 — section 6: "Also, skew minimization will be addressed."
//
// Sweeps fanout and compares the greedy fanout router's sink-arrival skew
// against the balanced router (delay-padded fast branches) and against
// the dedicated global clock network (zero skew by construction, CLK pins
// only). Reports skew, max delay, extra wire, and routing time.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/skew.h"
#include "fabric/timing.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  jrbench::Device& dev = jrbench::sharedDevice(xcv300());
  constexpr int kNetsPerRow = 6;
  constexpr DelayPs kTarget = 600;

  std::printf("E11: clock-class fanout skew, greedy vs balanced "
              "(XCV300, %d nets/row, target %lld ps)\n\n",
              kNetsPerRow, static_cast<long long>(kTarget));
  std::printf("%6s | %10s %10s %10s | %10s %10s %10s %8s | %10s\n",
              "fanout", "grd skew", "grd max", "grd wire", "bal skew",
              "bal max", "bal wire", "rerouted", "bal ms");
  for (const int k : {4, 8, 16, 24}) {
    const auto nets =
        workload::makeFanout(xcv300(), kNetsPerRow, k, 10, 1100 + k);

    double greedySkew = 0, greedyMax = 0, balSkew = 0, balMax = 0;
    size_t greedyWire = 0, balWire = 0;
    int rerouted = 0;
    double balMs = 0;

    for (const auto& net : nets) {
      std::vector<EndPoint> sinks;
      for (const Pin& p : net.sinks) sinks.push_back(EndPoint(p));
      const auto srcNode = dev.graph.nodeAt(net.src.rc, net.src.wire);

      // Greedy reference.
      dev.fabric.clear();
      Router greedy(dev.fabric);
      greedy.route(EndPoint(net.src), std::span<const EndPoint>(sinks));
      const auto gt = computeNetTiming(dev.fabric, srcNode);
      greedySkew += static_cast<double>(gt.skew());
      greedyMax += static_cast<double>(gt.maxDelay);
      greedyWire += dev.fabric.netSize(dev.fabric.netOf(srcNode));

      // Balanced.
      dev.fabric.clear();
      Router bal(dev.fabric);
      BalancedReport rep;
      balMs += 1e3 * jrbench::secondsOf([&] {
        rep = routeBalanced(bal, EndPoint(net.src),
                            std::span<const EndPoint>(sinks), kTarget,
                            /*maxReroutes=*/96);
      });
      balSkew += static_cast<double>(rep.skewAfter);
      balMax += static_cast<double>(rep.maxDelay);
      balWire += dev.fabric.netSize(dev.fabric.netOf(srcNode));
      rerouted += rep.branchesRerouted;
    }

    const double n = kNetsPerRow;
    std::printf("%6d | %10.0f %10.0f %10.1f | %10.0f %10.0f %10.1f %8d | "
                "%10.2f\n",
                k, greedySkew / n, greedyMax / n,
                static_cast<double>(greedyWire) / n, balSkew / n, balMax / n,
                static_cast<double>(balWire) / n, rerouted, balMs);
  }
  std::printf("\nclaim check: delay-padding trims sink-arrival skew by "
              "roughly 20-25%% at a wire premium that grows with fanout; "
              "quantized padding bounds how far it can go, which is why "
              "the dedicated zero-skew GCLK tree exists for CLK pins.\n");
  return 0;
}
