// E1 — Fig. 1 / section 2: the Virtex routing fabric inventory, and the
// section 5 family range (16x24 .. 64x96).
//
// Regenerates the architecture figure as numbers: per-CLB resource counts
// exactly as the paper states them, then the whole device family with
// routing-graph size, build time, and memory — the data a run-time router
// has to stand up before it can touch a single PIP.
#include <cstdio>

#include "arch/patterns.h"
#include "bench/bench_util.h"

using namespace xcvsim;

int main() {
  std::printf("E1: Virtex fabric inventory (paper section 2 / figure 1)\n\n");

  // Per-tile constants, as stated in the paper.
  std::printf("per-CLB routing resources (paper's claim -> model):\n");
  std::printf("  single lines per direction      24 -> %d\n",
              kSinglesPerChannel);
  std::printf("  hex lines drivable per direction 12 -> %d\n", kHexTracks);
  std::printf("  hex span (tiles)                  6 -> %d\n", kHexSpan);
  std::printf("  long lines per row/column        12 -> %d\n", kLongTracks);
  std::printf("  long-line access period           6 -> %d\n",
              kLongAccessPeriod);
  std::printf("  dedicated global clock nets       4 -> %d\n", kGlobalNets);
  std::printf("  (future work, implemented) IOBs per boundary tile: %d; "
              "BRAM columns: %d, %d ports/edge tile, %d bits/block\n",
              kIobsPerTile, kBramColumns, kBramPinsPerTile,
              kBramBitsPerBlock);

  // Verify the driver rules hold at an interior tile by classification.
  ArchDb db(xcv300());
  int byKind[8][8] = {};
  db.forEachTilePip({16, 24}, [&](LocalWire f, LocalWire t) {
    byKind[static_cast<int>(wireKind(f))][static_cast<int>(wireKind(t))]++;
  });
  std::printf("\ninterior-tile PIP census (XCV300 R16C24):\n");
  const char* names[] = {"SliceOut", "Omux", "ClbIn", "Single",
                         "Hex",      "Long", "Gclk"};
  for (int f = 0; f < 7; ++f) {
    for (int t = 0; t < 7; ++t) {
      if (byKind[f][t]) {
        std::printf("  %-8s -> %-8s : %4d PIPs\n", names[f], names[t],
                    byKind[f][t]);
      }
    }
  }

  // The family sweep: graph size, build time, memory.
  std::printf("\ndevice family (paper section 5: 16x24 .. 64x96):\n");
  std::printf("%-9s %5s %5s %12s %12s %10s %10s\n", "device", "rows",
              "cols", "wires", "PIPs", "build(s)", "mem(MB)");
  for (const DeviceSpec& spec : deviceFamily()) {
    std::unique_ptr<Graph> g;
    const double secs =
        jrbench::secondsOf([&] { g = std::make_unique<Graph>(spec); });
    std::printf("%-9s %5d %5d %12u %12u %10.2f %10.1f\n",
                std::string(spec.name).c_str(), spec.rows, spec.cols,
                g->numNodes(), g->numEdges(), secs,
                static_cast<double>(g->memoryBytes()) / (1 << 20));
  }
  return 0;
}
