// E10 — section 5: portability across the device family.
//
//   "Currently, JRoute only supports Virtex devices. However, it can be
//    extended ... The API would not need to change. However, the
//    architecture description class would need to be created for the new
//    architecture. ... The path-based router and template-based router
//    have no knowledge of the architecture outside of what the
//    architecture class provides."
//
// Runs the identical API-level workload on every family member, from
// bring-up (graph + PIP database) to routing, showing that per-net cost
// is essentially device-size independent while bring-up scales with the
// fabric.
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/generators.h"

using namespace jroute;
using namespace xcvsim;

int main() {
  constexpr int kNets = 40;
  std::printf("E10: one workload, every device (%d nets, distance 2..14)\n\n",
              kNets);
  std::printf("%-9s | %12s | %10s %10s %8s | %12s\n", "device",
              "bringup s", "route ms", "us/net", "fail", "maze visits");
  for (const DeviceSpec& spec :
       {deviceByName("XCV50"), deviceByName("XCV100"),
        deviceByName("XCV300"), deviceByName("XCV600"),
        deviceByName("XCV1000")}) {
    std::unique_ptr<jrbench::Device> dev;
    const double bringup = jrbench::secondsOf(
        [&] { dev = std::make_unique<jrbench::Device>(spec); });

    const auto nets = workload::makeP2P(spec, kNets, 2, 14, /*seed=*/4242);
    Router router(dev->fabric);
    int failed = 0;
    const double routeMs = 1e3 * jrbench::secondsOf([&] {
      for (const auto& net : nets) {
        try {
          router.route(EndPoint(net.src), EndPoint(net.sink));
        } catch (const UnroutableError&) {
          ++failed;
        }
      }
    });
    std::printf("%-9s | %12.2f | %10.2f %10.1f %8d | %12llu\n",
                std::string(spec.name).c_str(), bringup, routeMs,
                1e3 * routeMs / kNets, failed,
                static_cast<unsigned long long>(router.stats().mazeVisits));
  }
  std::printf("\nclaim check: the same calls run unchanged on every family "
              "member; routing cost stays flat while bring-up grows with "
              "the device.\n");
  return 0;
}
