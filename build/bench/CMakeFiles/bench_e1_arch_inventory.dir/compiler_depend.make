# Empty compiler generated dependencies file for bench_e1_arch_inventory.
# This may be replaced when dependencies are built.
