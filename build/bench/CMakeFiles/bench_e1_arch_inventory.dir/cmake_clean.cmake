file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_arch_inventory.dir/bench_e1_arch_inventory.cpp.o"
  "CMakeFiles/bench_e1_arch_inventory.dir/bench_e1_arch_inventory.cpp.o.d"
  "bench_e1_arch_inventory"
  "bench_e1_arch_inventory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_arch_inventory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
