file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_skew.dir/bench_e11_skew.cpp.o"
  "CMakeFiles/bench_e11_skew.dir/bench_e11_skew.cpp.o.d"
  "bench_e11_skew"
  "bench_e11_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
