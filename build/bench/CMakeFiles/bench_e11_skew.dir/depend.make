# Empty dependencies file for bench_e11_skew.
# This may be replaced when dependencies are built.
