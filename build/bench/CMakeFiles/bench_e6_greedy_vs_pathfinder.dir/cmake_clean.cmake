file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_greedy_vs_pathfinder.dir/bench_e6_greedy_vs_pathfinder.cpp.o"
  "CMakeFiles/bench_e6_greedy_vs_pathfinder.dir/bench_e6_greedy_vs_pathfinder.cpp.o.d"
  "bench_e6_greedy_vs_pathfinder"
  "bench_e6_greedy_vs_pathfinder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_greedy_vs_pathfinder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
