# Empty dependencies file for bench_e6_greedy_vs_pathfinder.
# This may be replaced when dependencies are built.
