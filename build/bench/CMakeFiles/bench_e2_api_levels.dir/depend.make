# Empty dependencies file for bench_e2_api_levels.
# This may be replaced when dependencies are built.
