# Empty dependencies file for bench_e12_partial_reconfig.
# This may be replaced when dependencies are built.
