file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_partial_reconfig.dir/bench_e12_partial_reconfig.cpp.o"
  "CMakeFiles/bench_e12_partial_reconfig.dir/bench_e12_partial_reconfig.cpp.o.d"
  "bench_e12_partial_reconfig"
  "bench_e12_partial_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_partial_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
