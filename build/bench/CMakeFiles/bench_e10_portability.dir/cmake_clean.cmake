file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_portability.dir/bench_e10_portability.cpp.o"
  "CMakeFiles/bench_e10_portability.dir/bench_e10_portability.cpp.o.d"
  "bench_e10_portability"
  "bench_e10_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
