# Empty dependencies file for bench_e10_portability.
# This may be replaced when dependencies are built.
