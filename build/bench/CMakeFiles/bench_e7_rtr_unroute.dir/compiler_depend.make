# Empty compiler generated dependencies file for bench_e7_rtr_unroute.
# This may be replaced when dependencies are built.
