file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_rtr_unroute.dir/bench_e7_rtr_unroute.cpp.o"
  "CMakeFiles/bench_e7_rtr_unroute.dir/bench_e7_rtr_unroute.cpp.o.d"
  "bench_e7_rtr_unroute"
  "bench_e7_rtr_unroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_rtr_unroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
