# Empty compiler generated dependencies file for bench_e13_heuristic_ablation.
# This may be replaced when dependencies are built.
