# Empty dependencies file for bench_e4_fanout_reuse.
# This may be replaced when dependencies are built.
