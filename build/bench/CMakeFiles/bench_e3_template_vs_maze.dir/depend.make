# Empty dependencies file for bench_e3_template_vs_maze.
# This may be replaced when dependencies are built.
