file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_template_vs_maze.dir/bench_e3_template_vs_maze.cpp.o"
  "CMakeFiles/bench_e3_template_vs_maze.dir/bench_e3_template_vs_maze.cpp.o.d"
  "bench_e3_template_vs_maze"
  "bench_e3_template_vs_maze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_template_vs_maze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
