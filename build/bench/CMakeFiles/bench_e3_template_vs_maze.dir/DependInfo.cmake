
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e3_template_vs_maze.cpp" "bench/CMakeFiles/bench_e3_template_vs_maze.dir/bench_e3_template_vs_maze.cpp.o" "gcc" "bench/CMakeFiles/bench_e3_template_vs_maze.dir/bench_e3_template_vs_maze.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtr/CMakeFiles/jr_rtr.dir/DependInfo.cmake"
  "/root/repo/build/src/cores/CMakeFiles/jr_cores.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jr_jroute.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/jr_router.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/jr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/jr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/jr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/rrg/CMakeFiles/jr_rrg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/jr_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
