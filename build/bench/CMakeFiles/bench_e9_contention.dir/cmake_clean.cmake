file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_contention.dir/bench_e9_contention.cpp.o"
  "CMakeFiles/bench_e9_contention.dir/bench_e9_contention.cpp.o.d"
  "bench_e9_contention"
  "bench_e9_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
