file(REMOVE_RECURSE
  "libjr_baseline.a"
)
