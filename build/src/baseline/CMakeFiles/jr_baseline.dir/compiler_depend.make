# Empty compiler generated dependencies file for jr_baseline.
# This may be replaced when dependencies are built.
