file(REMOVE_RECURSE
  "CMakeFiles/jr_baseline.dir/pathfinder.cpp.o"
  "CMakeFiles/jr_baseline.dir/pathfinder.cpp.o.d"
  "libjr_baseline.a"
  "libjr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
