
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rrg/graph.cpp" "src/rrg/CMakeFiles/jr_rrg.dir/graph.cpp.o" "gcc" "src/rrg/CMakeFiles/jr_rrg.dir/graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/jr_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
