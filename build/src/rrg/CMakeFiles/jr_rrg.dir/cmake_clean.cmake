file(REMOVE_RECURSE
  "CMakeFiles/jr_rrg.dir/graph.cpp.o"
  "CMakeFiles/jr_rrg.dir/graph.cpp.o.d"
  "libjr_rrg.a"
  "libjr_rrg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_rrg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
