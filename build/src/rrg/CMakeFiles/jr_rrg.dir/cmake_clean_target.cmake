file(REMOVE_RECURSE
  "libjr_rrg.a"
)
