# Empty dependencies file for jr_rrg.
# This may be replaced when dependencies are built.
