# Empty dependencies file for jr_fabric.
# This may be replaced when dependencies are built.
