file(REMOVE_RECURSE
  "libjr_fabric.a"
)
