file(REMOVE_RECURSE
  "CMakeFiles/jr_fabric.dir/fabric.cpp.o"
  "CMakeFiles/jr_fabric.dir/fabric.cpp.o.d"
  "CMakeFiles/jr_fabric.dir/timing.cpp.o"
  "CMakeFiles/jr_fabric.dir/timing.cpp.o.d"
  "CMakeFiles/jr_fabric.dir/trace.cpp.o"
  "CMakeFiles/jr_fabric.dir/trace.cpp.o.d"
  "libjr_fabric.a"
  "libjr_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
