file(REMOVE_RECURSE
  "libjr_rtr.a"
)
