
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtr/boardscope.cpp" "src/rtr/CMakeFiles/jr_rtr.dir/boardscope.cpp.o" "gcc" "src/rtr/CMakeFiles/jr_rtr.dir/boardscope.cpp.o.d"
  "/root/repo/src/rtr/manager.cpp" "src/rtr/CMakeFiles/jr_rtr.dir/manager.cpp.o" "gcc" "src/rtr/CMakeFiles/jr_rtr.dir/manager.cpp.o.d"
  "/root/repo/src/rtr/netlist.cpp" "src/rtr/CMakeFiles/jr_rtr.dir/netlist.cpp.o" "gcc" "src/rtr/CMakeFiles/jr_rtr.dir/netlist.cpp.o.d"
  "/root/repo/src/rtr/report.cpp" "src/rtr/CMakeFiles/jr_rtr.dir/report.cpp.o" "gcc" "src/rtr/CMakeFiles/jr_rtr.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cores/CMakeFiles/jr_cores.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jr_jroute.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/jr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/jr_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/jr_router.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/jr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/rrg/CMakeFiles/jr_rrg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
