file(REMOVE_RECURSE
  "CMakeFiles/jr_rtr.dir/boardscope.cpp.o"
  "CMakeFiles/jr_rtr.dir/boardscope.cpp.o.d"
  "CMakeFiles/jr_rtr.dir/manager.cpp.o"
  "CMakeFiles/jr_rtr.dir/manager.cpp.o.d"
  "CMakeFiles/jr_rtr.dir/netlist.cpp.o"
  "CMakeFiles/jr_rtr.dir/netlist.cpp.o.d"
  "CMakeFiles/jr_rtr.dir/report.cpp.o"
  "CMakeFiles/jr_rtr.dir/report.cpp.o.d"
  "libjr_rtr.a"
  "libjr_rtr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_rtr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
