# Empty dependencies file for jr_rtr.
# This may be replaced when dependencies are built.
