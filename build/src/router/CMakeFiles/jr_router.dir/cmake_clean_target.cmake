file(REMOVE_RECURSE
  "libjr_router.a"
)
