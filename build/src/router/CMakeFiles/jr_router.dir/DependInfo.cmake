
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/router/path_engine.cpp" "src/router/CMakeFiles/jr_router.dir/path_engine.cpp.o" "gcc" "src/router/CMakeFiles/jr_router.dir/path_engine.cpp.o.d"
  "/root/repo/src/router/search.cpp" "src/router/CMakeFiles/jr_router.dir/search.cpp.o" "gcc" "src/router/CMakeFiles/jr_router.dir/search.cpp.o.d"
  "/root/repo/src/router/template_engine.cpp" "src/router/CMakeFiles/jr_router.dir/template_engine.cpp.o" "gcc" "src/router/CMakeFiles/jr_router.dir/template_engine.cpp.o.d"
  "/root/repo/src/router/template_lib.cpp" "src/router/CMakeFiles/jr_router.dir/template_lib.cpp.o" "gcc" "src/router/CMakeFiles/jr_router.dir/template_lib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/jr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/rrg/CMakeFiles/jr_rrg.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/jr_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/jr_bitstream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
