# Empty dependencies file for jr_router.
# This may be replaced when dependencies are built.
