file(REMOVE_RECURSE
  "CMakeFiles/jr_router.dir/path_engine.cpp.o"
  "CMakeFiles/jr_router.dir/path_engine.cpp.o.d"
  "CMakeFiles/jr_router.dir/search.cpp.o"
  "CMakeFiles/jr_router.dir/search.cpp.o.d"
  "CMakeFiles/jr_router.dir/template_engine.cpp.o"
  "CMakeFiles/jr_router.dir/template_engine.cpp.o.d"
  "CMakeFiles/jr_router.dir/template_lib.cpp.o"
  "CMakeFiles/jr_router.dir/template_lib.cpp.o.d"
  "libjr_router.a"
  "libjr_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
