file(REMOVE_RECURSE
  "CMakeFiles/jr_jroute.dir/path.cpp.o"
  "CMakeFiles/jr_jroute.dir/path.cpp.o.d"
  "CMakeFiles/jr_jroute.dir/port.cpp.o"
  "CMakeFiles/jr_jroute.dir/port.cpp.o.d"
  "CMakeFiles/jr_jroute.dir/router.cpp.o"
  "CMakeFiles/jr_jroute.dir/router.cpp.o.d"
  "CMakeFiles/jr_jroute.dir/skew.cpp.o"
  "CMakeFiles/jr_jroute.dir/skew.cpp.o.d"
  "libjr_jroute.a"
  "libjr_jroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_jroute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
