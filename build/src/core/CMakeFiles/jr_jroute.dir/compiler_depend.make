# Empty compiler generated dependencies file for jr_jroute.
# This may be replaced when dependencies are built.
