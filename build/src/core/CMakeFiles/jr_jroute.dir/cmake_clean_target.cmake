file(REMOVE_RECURSE
  "libjr_jroute.a"
)
