file(REMOVE_RECURSE
  "CMakeFiles/jr_arch.dir/arch_db.cpp.o"
  "CMakeFiles/jr_arch.dir/arch_db.cpp.o.d"
  "CMakeFiles/jr_arch.dir/device.cpp.o"
  "CMakeFiles/jr_arch.dir/device.cpp.o.d"
  "CMakeFiles/jr_arch.dir/patterns.cpp.o"
  "CMakeFiles/jr_arch.dir/patterns.cpp.o.d"
  "CMakeFiles/jr_arch.dir/wires.cpp.o"
  "CMakeFiles/jr_arch.dir/wires.cpp.o.d"
  "libjr_arch.a"
  "libjr_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
