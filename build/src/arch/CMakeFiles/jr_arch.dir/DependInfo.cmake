
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arch_db.cpp" "src/arch/CMakeFiles/jr_arch.dir/arch_db.cpp.o" "gcc" "src/arch/CMakeFiles/jr_arch.dir/arch_db.cpp.o.d"
  "/root/repo/src/arch/device.cpp" "src/arch/CMakeFiles/jr_arch.dir/device.cpp.o" "gcc" "src/arch/CMakeFiles/jr_arch.dir/device.cpp.o.d"
  "/root/repo/src/arch/patterns.cpp" "src/arch/CMakeFiles/jr_arch.dir/patterns.cpp.o" "gcc" "src/arch/CMakeFiles/jr_arch.dir/patterns.cpp.o.d"
  "/root/repo/src/arch/wires.cpp" "src/arch/CMakeFiles/jr_arch.dir/wires.cpp.o" "gcc" "src/arch/CMakeFiles/jr_arch.dir/wires.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
