file(REMOVE_RECURSE
  "libjr_arch.a"
)
