# Empty dependencies file for jr_arch.
# This may be replaced when dependencies are built.
