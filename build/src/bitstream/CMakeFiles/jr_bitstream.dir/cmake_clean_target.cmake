file(REMOVE_RECURSE
  "libjr_bitstream.a"
)
