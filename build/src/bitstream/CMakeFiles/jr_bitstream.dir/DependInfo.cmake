
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitstream/bitfile.cpp" "src/bitstream/CMakeFiles/jr_bitstream.dir/bitfile.cpp.o" "gcc" "src/bitstream/CMakeFiles/jr_bitstream.dir/bitfile.cpp.o.d"
  "/root/repo/src/bitstream/bitstream.cpp" "src/bitstream/CMakeFiles/jr_bitstream.dir/bitstream.cpp.o" "gcc" "src/bitstream/CMakeFiles/jr_bitstream.dir/bitstream.cpp.o.d"
  "/root/repo/src/bitstream/crc32.cpp" "src/bitstream/CMakeFiles/jr_bitstream.dir/crc32.cpp.o" "gcc" "src/bitstream/CMakeFiles/jr_bitstream.dir/crc32.cpp.o.d"
  "/root/repo/src/bitstream/decoder.cpp" "src/bitstream/CMakeFiles/jr_bitstream.dir/decoder.cpp.o" "gcc" "src/bitstream/CMakeFiles/jr_bitstream.dir/decoder.cpp.o.d"
  "/root/repo/src/bitstream/jbits.cpp" "src/bitstream/CMakeFiles/jr_bitstream.dir/jbits.cpp.o" "gcc" "src/bitstream/CMakeFiles/jr_bitstream.dir/jbits.cpp.o.d"
  "/root/repo/src/bitstream/packets.cpp" "src/bitstream/CMakeFiles/jr_bitstream.dir/packets.cpp.o" "gcc" "src/bitstream/CMakeFiles/jr_bitstream.dir/packets.cpp.o.d"
  "/root/repo/src/bitstream/pip_table.cpp" "src/bitstream/CMakeFiles/jr_bitstream.dir/pip_table.cpp.o" "gcc" "src/bitstream/CMakeFiles/jr_bitstream.dir/pip_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/jr_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
