file(REMOVE_RECURSE
  "CMakeFiles/jr_bitstream.dir/bitfile.cpp.o"
  "CMakeFiles/jr_bitstream.dir/bitfile.cpp.o.d"
  "CMakeFiles/jr_bitstream.dir/bitstream.cpp.o"
  "CMakeFiles/jr_bitstream.dir/bitstream.cpp.o.d"
  "CMakeFiles/jr_bitstream.dir/crc32.cpp.o"
  "CMakeFiles/jr_bitstream.dir/crc32.cpp.o.d"
  "CMakeFiles/jr_bitstream.dir/decoder.cpp.o"
  "CMakeFiles/jr_bitstream.dir/decoder.cpp.o.d"
  "CMakeFiles/jr_bitstream.dir/jbits.cpp.o"
  "CMakeFiles/jr_bitstream.dir/jbits.cpp.o.d"
  "CMakeFiles/jr_bitstream.dir/packets.cpp.o"
  "CMakeFiles/jr_bitstream.dir/packets.cpp.o.d"
  "CMakeFiles/jr_bitstream.dir/pip_table.cpp.o"
  "CMakeFiles/jr_bitstream.dir/pip_table.cpp.o.d"
  "libjr_bitstream.a"
  "libjr_bitstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_bitstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
