# Empty dependencies file for jr_bitstream.
# This may be replaced when dependencies are built.
