file(REMOVE_RECURSE
  "CMakeFiles/jr_cores.dir/adder_tree.cpp.o"
  "CMakeFiles/jr_cores.dir/adder_tree.cpp.o.d"
  "CMakeFiles/jr_cores.dir/block_ram.cpp.o"
  "CMakeFiles/jr_cores.dir/block_ram.cpp.o.d"
  "CMakeFiles/jr_cores.dir/comparator.cpp.o"
  "CMakeFiles/jr_cores.dir/comparator.cpp.o.d"
  "CMakeFiles/jr_cores.dir/const_adder.cpp.o"
  "CMakeFiles/jr_cores.dir/const_adder.cpp.o.d"
  "CMakeFiles/jr_cores.dir/counter.cpp.o"
  "CMakeFiles/jr_cores.dir/counter.cpp.o.d"
  "CMakeFiles/jr_cores.dir/kcm.cpp.o"
  "CMakeFiles/jr_cores.dir/kcm.cpp.o.d"
  "CMakeFiles/jr_cores.dir/lfsr.cpp.o"
  "CMakeFiles/jr_cores.dir/lfsr.cpp.o.d"
  "CMakeFiles/jr_cores.dir/register_bank.cpp.o"
  "CMakeFiles/jr_cores.dir/register_bank.cpp.o.d"
  "CMakeFiles/jr_cores.dir/rom.cpp.o"
  "CMakeFiles/jr_cores.dir/rom.cpp.o.d"
  "CMakeFiles/jr_cores.dir/rtp_core.cpp.o"
  "CMakeFiles/jr_cores.dir/rtp_core.cpp.o.d"
  "CMakeFiles/jr_cores.dir/shift_reg.cpp.o"
  "CMakeFiles/jr_cores.dir/shift_reg.cpp.o.d"
  "libjr_cores.a"
  "libjr_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
