
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cores/adder_tree.cpp" "src/cores/CMakeFiles/jr_cores.dir/adder_tree.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/adder_tree.cpp.o.d"
  "/root/repo/src/cores/block_ram.cpp" "src/cores/CMakeFiles/jr_cores.dir/block_ram.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/block_ram.cpp.o.d"
  "/root/repo/src/cores/comparator.cpp" "src/cores/CMakeFiles/jr_cores.dir/comparator.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/comparator.cpp.o.d"
  "/root/repo/src/cores/const_adder.cpp" "src/cores/CMakeFiles/jr_cores.dir/const_adder.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/const_adder.cpp.o.d"
  "/root/repo/src/cores/counter.cpp" "src/cores/CMakeFiles/jr_cores.dir/counter.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/counter.cpp.o.d"
  "/root/repo/src/cores/kcm.cpp" "src/cores/CMakeFiles/jr_cores.dir/kcm.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/kcm.cpp.o.d"
  "/root/repo/src/cores/lfsr.cpp" "src/cores/CMakeFiles/jr_cores.dir/lfsr.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/lfsr.cpp.o.d"
  "/root/repo/src/cores/register_bank.cpp" "src/cores/CMakeFiles/jr_cores.dir/register_bank.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/register_bank.cpp.o.d"
  "/root/repo/src/cores/rom.cpp" "src/cores/CMakeFiles/jr_cores.dir/rom.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/rom.cpp.o.d"
  "/root/repo/src/cores/rtp_core.cpp" "src/cores/CMakeFiles/jr_cores.dir/rtp_core.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/rtp_core.cpp.o.d"
  "/root/repo/src/cores/shift_reg.cpp" "src/cores/CMakeFiles/jr_cores.dir/shift_reg.cpp.o" "gcc" "src/cores/CMakeFiles/jr_cores.dir/shift_reg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jr_jroute.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/jr_router.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/jr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/jr_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/jr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/rrg/CMakeFiles/jr_rrg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
