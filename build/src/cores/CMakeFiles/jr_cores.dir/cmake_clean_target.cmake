file(REMOVE_RECURSE
  "libjr_cores.a"
)
