# Empty compiler generated dependencies file for jr_cores.
# This may be replaced when dependencies are built.
