file(REMOVE_RECURSE
  "CMakeFiles/jr_workload.dir/generators.cpp.o"
  "CMakeFiles/jr_workload.dir/generators.cpp.o.d"
  "libjr_workload.a"
  "libjr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
