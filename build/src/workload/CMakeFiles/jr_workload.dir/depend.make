# Empty dependencies file for jr_workload.
# This may be replaced when dependencies are built.
