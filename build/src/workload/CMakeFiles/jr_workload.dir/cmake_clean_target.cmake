file(REMOVE_RECURSE
  "libjr_workload.a"
)
