file(REMOVE_RECURSE
  "libjr_common.a"
)
