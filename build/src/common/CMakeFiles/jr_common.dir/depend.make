# Empty dependencies file for jr_common.
# This may be replaced when dependencies are built.
