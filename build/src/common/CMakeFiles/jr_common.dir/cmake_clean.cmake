file(REMOVE_RECURSE
  "CMakeFiles/jr_common.dir/error.cpp.o"
  "CMakeFiles/jr_common.dir/error.cpp.o.d"
  "CMakeFiles/jr_common.dir/rng.cpp.o"
  "CMakeFiles/jr_common.dir/rng.cpp.o.d"
  "libjr_common.a"
  "libjr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
