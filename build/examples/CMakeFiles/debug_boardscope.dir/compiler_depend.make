# Empty compiler generated dependencies file for debug_boardscope.
# This may be replaced when dependencies are built.
