file(REMOVE_RECURSE
  "CMakeFiles/debug_boardscope.dir/debug_boardscope.cpp.o"
  "CMakeFiles/debug_boardscope.dir/debug_boardscope.cpp.o.d"
  "debug_boardscope"
  "debug_boardscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_boardscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
