file(REMOVE_RECURSE
  "CMakeFiles/counter_from_adder.dir/counter_from_adder.cpp.o"
  "CMakeFiles/counter_from_adder.dir/counter_from_adder.cpp.o.d"
  "counter_from_adder"
  "counter_from_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counter_from_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
