# Empty compiler generated dependencies file for counter_from_adder.
# This may be replaced when dependencies are built.
