file(REMOVE_RECURSE
  "CMakeFiles/jrsh.dir/jrsh.cpp.o"
  "CMakeFiles/jrsh.dir/jrsh.cpp.o.d"
  "jrsh"
  "jrsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jrsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
