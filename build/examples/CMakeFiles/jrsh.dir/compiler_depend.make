# Empty compiler generated dependencies file for jrsh.
# This may be replaced when dependencies are built.
