# Empty dependencies file for jrsh.
# This may be replaced when dependencies are built.
