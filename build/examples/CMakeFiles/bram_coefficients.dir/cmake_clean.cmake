file(REMOVE_RECURSE
  "CMakeFiles/bram_coefficients.dir/bram_coefficients.cpp.o"
  "CMakeFiles/bram_coefficients.dir/bram_coefficients.cpp.o.d"
  "bram_coefficients"
  "bram_coefficients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bram_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
