# Empty compiler generated dependencies file for bram_coefficients.
# This may be replaced when dependencies are built.
