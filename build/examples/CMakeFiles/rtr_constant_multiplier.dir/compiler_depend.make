# Empty compiler generated dependencies file for rtr_constant_multiplier.
# This may be replaced when dependencies are built.
