file(REMOVE_RECURSE
  "CMakeFiles/rtr_constant_multiplier.dir/rtr_constant_multiplier.cpp.o"
  "CMakeFiles/rtr_constant_multiplier.dir/rtr_constant_multiplier.cpp.o.d"
  "rtr_constant_multiplier"
  "rtr_constant_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtr_constant_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
