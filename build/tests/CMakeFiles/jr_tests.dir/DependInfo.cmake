
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch_test.cpp" "tests/CMakeFiles/jr_tests.dir/arch_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/arch_test.cpp.o.d"
  "/root/repo/tests/baseline_test.cpp" "tests/CMakeFiles/jr_tests.dir/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/baseline_test.cpp.o.d"
  "/root/repo/tests/bitstream_test.cpp" "tests/CMakeFiles/jr_tests.dir/bitstream_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/bitstream_test.cpp.o.d"
  "/root/repo/tests/bram_test.cpp" "tests/CMakeFiles/jr_tests.dir/bram_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/bram_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/jr_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/cores2_test.cpp" "tests/CMakeFiles/jr_tests.dir/cores2_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/cores2_test.cpp.o.d"
  "/root/repo/tests/cores_test.cpp" "tests/CMakeFiles/jr_tests.dir/cores_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/cores_test.cpp.o.d"
  "/root/repo/tests/fabric_test.cpp" "tests/CMakeFiles/jr_tests.dir/fabric_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/fabric_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/jr_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/iob_test.cpp" "tests/CMakeFiles/jr_tests.dir/iob_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/iob_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/jr_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/router_engines_test.cpp" "tests/CMakeFiles/jr_tests.dir/router_engines_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/router_engines_test.cpp.o.d"
  "/root/repo/tests/router_test.cpp" "tests/CMakeFiles/jr_tests.dir/router_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/router_test.cpp.o.d"
  "/root/repo/tests/rrg_test.cpp" "tests/CMakeFiles/jr_tests.dir/rrg_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/rrg_test.cpp.o.d"
  "/root/repo/tests/rtr_test.cpp" "tests/CMakeFiles/jr_tests.dir/rtr_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/rtr_test.cpp.o.d"
  "/root/repo/tests/serialization_test.cpp" "tests/CMakeFiles/jr_tests.dir/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/serialization_test.cpp.o.d"
  "/root/repo/tests/skew_test.cpp" "tests/CMakeFiles/jr_tests.dir/skew_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/skew_test.cpp.o.d"
  "/root/repo/tests/timing_test.cpp" "tests/CMakeFiles/jr_tests.dir/timing_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/timing_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/jr_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/jr_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/jr_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/rrg/CMakeFiles/jr_rrg.dir/DependInfo.cmake"
  "/root/repo/build/src/bitstream/CMakeFiles/jr_bitstream.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/jr_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/router/CMakeFiles/jr_router.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jr_jroute.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/jr_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/cores/CMakeFiles/jr_cores.dir/DependInfo.cmake"
  "/root/repo/build/src/rtr/CMakeFiles/jr_rtr.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/jr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
