# Empty compiler generated dependencies file for jr_tests.
# This may be replaced when dependencies are built.
