#!/usr/bin/env bash
# Static lint over the concurrency-bearing and model-bearing layers
# (src/service, the core router, the DRC analyzer, the telemetry
# subsystem, the architecture model, the routing-resource graph, and the
# jrverify model verifier) using the checks pinned in .clang-tidy, plus a
# clang -Wthread-safety pass over every .cpp under src/ — the annotated
# lock protocols (JR_GUARDED_BY and friends in common/types.h,
# jrsync::Mutex in common/sync.h) plus any new TU, so nothing can skip
# the analysis by not being listed. The globs pick up new files
# automatically; jrcheck (src/check) covers lock *ordering* at run time,
# which this static pass cannot see.
#
#   scripts/lint.sh [jobs]
#
# Uses the compile database from the regular build tree (the top-level
# CMakeLists.txt always exports compile_commands.json). When clang-tidy /
# clang++ is not installed — the minimal gcc-only container — each pass
# says so and is skipped, and the script exits 0, so tier-1 automation
# can call it unconditionally.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

# -- pass 1: clang thread-safety analysis over the annotated TUs ----------
# The annotations compile to nothing under gcc, so only clang can check
# them. -Werror promotes any lock-protocol violation to a hard failure.
CLANGXX="$(command -v clang++ || true)"
if [[ -z "$CLANGXX" ]]; then
  echo "lint: clang++ not installed; skipping thread-safety analysis"
else
  echo "== lint: clang -Wthread-safety over all of src/ =="
  # Every TU, not a curated list: a newly added file that takes locks
  # must not be able to silently skip the analysis. Unannotated files
  # are cheap no-ops for the checker.
  TS_FILES=$(find src -name '*.cpp' | sort)
  FAIL=0
  for f in $TS_FILES; do
    echo "-- $f"
    "$CLANGXX" -std=c++20 -Isrc -fsyntax-only \
      -Wthread-safety -Werror=thread-safety-analysis "$f" || FAIL=1
  done
  if [[ "$FAIL" -ne 0 ]]; then
    echo "lint: FAILED (thread-safety)"
    exit 1
  fi
fi

# -- pass 2: clang-tidy with the pinned profile ---------------------------
TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "lint: clang-tidy not installed; skipping (checks are pinned in .clang-tidy)"
  exit 0
fi

if [[ ! -f build/compile_commands.json ]]; then
  echo "== lint: generating compile database =="
  cmake -B build -S . >/dev/null
fi

FILES=$(ls src/service/*.cpp src/core/router.cpp src/analysis/*.cpp \
           src/obs/*.cpp src/verify/*.cpp src/plan/*.cpp src/arch/*.cpp \
           src/rrg/*.cpp src/lookahead/*.cpp src/workload/*.cpp \
           src/check/*.cpp)

echo "== lint: clang-tidy over service + router + analysis + obs + verify + plan + arch + rrg + lookahead + workload + check =="
FAIL=0
for f in $FILES; do
  echo "-- $f"
  "$TIDY" -p build --quiet "$f" || FAIL=1
done

if [[ "$FAIL" -ne 0 ]]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
