#!/usr/bin/env bash
# Static lint over the concurrency-bearing layers (src/service, the core
# router, the DRC analyzer including the congestion heatmap source, and
# the telemetry subsystem including provenance, heatmap grid, and flight
# recorder) using the checks pinned in .clang-tidy. The src/obs and
# src/analysis globs below pick up new .cpp files automatically.
#
#   scripts/lint.sh [jobs]
#
# Uses the compile database from the regular build tree (the top-level
# CMakeLists.txt always exports compile_commands.json). When clang-tidy is
# not installed — the minimal gcc-only container — the script says so and
# exits 0, so tier-1 automation can call it unconditionally.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "lint: clang-tidy not installed; skipping (checks are pinned in .clang-tidy)"
  exit 0
fi

if [[ ! -f build/compile_commands.json ]]; then
  echo "== lint: generating compile database =="
  cmake -B build -S . >/dev/null
fi

FILES=$(ls src/service/*.cpp src/core/router.cpp src/analysis/*.cpp \
           src/obs/*.cpp)

echo "== lint: clang-tidy over service + router + analysis + obs =="
FAIL=0
for f in $FILES; do
  echo "-- $f"
  "$TIDY" -p build --quiet "$f" || FAIL=1
done

if [[ "$FAIL" -ne 0 ]]; then
  echo "lint: FAILED"
  exit 1
fi
echo "lint: OK"
