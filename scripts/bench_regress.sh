#!/usr/bin/env bash
# Bench regression sentinel: compares the newest record of every
# configuration group in BENCH_service.json against the median of up to
# three prior records of the same group, and prints a warn line for any
# throughput drop or p99 latency rise beyond the threshold (default
# 20%). A group is (bench, mode) plus every perf-relevant config field
# present in the record — producers, requests, workload, device, armed
# checkers, build mode — so an armed run is never compared against a
# disarmed one, nor a 10^4-request workload against the old 42-request
# one (which lacks the "workload" field entirely).
#
#   scripts/bench_regress.sh [jsonl-file]
#
# Warn-level by design: benchmarks on shared CI hosts are noisy, so the
# sentinel always exits 0 and leaves the red/green decision to a human
# reading the report. tier1.sh runs it (non-fatally) after the bench
# smoke has appended fresh records.
set -euo pipefail
cd "$(dirname "$0")/.."

JSONL="${1:-BENCH_service.json}"
THRESHOLD_PCT="${BENCH_REGRESS_THRESHOLD:-20}"

if [[ ! -f "$JSONL" ]]; then
  echo "bench_regress: $JSONL not found; nothing to compare"
  exit 0
fi
if ! command -v python3 >/dev/null; then
  echo "bench_regress: python3 not installed; skipping"
  exit 0
fi

python3 - "$JSONL" "$THRESHOLD_PCT" <<'EOF'
import json
import sys
from statistics import median

path, threshold = sys.argv[1], float(sys.argv[2])

# Fields that define a comparable configuration. Anything not listed
# (timestamps, measured results) must not split groups.
KEY_FIELDS = [
    "bench", "mode", "workload", "device", "producers", "requests",
    "sessions", "slots", "threads", "seed", "batch", "linger_us",
    "certify", "drc_paranoid", "lockcheck", "prof", "telemetry",
    "slo_enabled",
]

groups = {}
skipped = 0
with open(path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if "bench" not in rec or "req_per_sec" not in rec:
            skipped += 1
            continue
        key = tuple((k, rec.get(k)) for k in KEY_FIELDS)
        groups.setdefault(key, []).append(rec)

def p99_of(rec):
    for field in ("p99_ms", "hist_p99_us"):
        if field in rec:
            return field, float(rec[field])
    return None, None

warnings = 0
compared = 0
# Sort by stringified key: tuples mixing None and values don't compare.
for key, recs in sorted(groups.items(), key=lambda kv: str(kv[0])):
    if len(recs) < 2:
        continue
    newest, prior = recs[-1], recs[-4:-1]
    compared += 1
    label = " ".join(f"{k}={v}" for k, v in key if v is not None)

    base_rps = median(float(r["req_per_sec"]) for r in prior)
    new_rps = float(newest["req_per_sec"])
    if base_rps > 0:
        drop = 100.0 * (base_rps - new_rps) / base_rps
        if drop > threshold:
            warnings += 1
            print(f"WARN: throughput -{drop:.1f}% "
                  f"({base_rps:.0f} -> {new_rps:.0f} req/s, "
                  f"median of {len(prior)} prior) [{label}]")

    field, new_p99 = p99_of(newest)
    if field is not None:
        prior_p99 = [p99_of(r)[1] for r in prior if p99_of(r)[0] == field]
        if prior_p99:
            base_p99 = median(prior_p99)
            if base_p99 > 0:
                rise = 100.0 * (new_p99 - base_p99) / base_p99
                if rise > threshold:
                    warnings += 1
                    print(f"WARN: {field} +{rise:.1f}% "
                          f"({base_p99:.3f} -> {new_p99:.3f}, "
                          f"median of {len(prior_p99)} prior) [{label}]")

note = f", {skipped} record(s) skipped" if skipped else ""
if warnings:
    print(f"bench_regress: {warnings} warning(s) over {compared} "
          f"comparable group(s) at >{threshold:.0f}%{note}")
else:
    print(f"bench_regress: no regressions beyond {threshold:.0f}% in "
          f"{compared} comparable group(s){note}")
EOF
exit 0
