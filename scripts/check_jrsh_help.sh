#!/usr/bin/env bash
# Regression guard: the jrsh command reference in README.md must stay in
# sync with the shell's actual dispatch table. README.md carries the
# verbatim output of `jrsh help` between the jrsh-help-begin/end markers;
# this script re-runs `help` against the built binary and diffs. Any
# command added, removed, or reworded in examples/jrsh.cpp without
# updating the README (or vice versa) fails the build.
#
#   scripts/check_jrsh_help.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
JRSH="$BUILD/examples/jrsh"
if [[ ! -x "$JRSH" ]]; then
  echo "check_jrsh_help: $JRSH not built" >&2
  exit 1
fi

ACTUAL=$(printf 'help\nquit\n' | "$JRSH")

# Extract the fenced block between the markers, dropping the ``` fences.
DOCUMENTED=$(awk '/<!-- jrsh-help-begin -->/{f=1; next}
                  /<!-- jrsh-help-end -->/{f=0}
                  f && !/^```/' README.md)

if [[ -z "$DOCUMENTED" ]]; then
  echo "check_jrsh_help: no jrsh-help-begin/end block in README.md" >&2
  exit 1
fi

if ! diff <(echo "$DOCUMENTED") <(echo "$ACTUAL") >/tmp/jrsh_help.diff; then
  echo "check_jrsh_help: README.md command reference is out of sync with 'jrsh help':" >&2
  cat /tmp/jrsh_help.diff >&2
  echo "update the block between <!-- jrsh-help-begin --> and <!-- jrsh-help-end --> in README.md" >&2
  exit 1
fi
echo "jrsh help/README sync OK ($(echo "$ACTUAL" | wc -l) commands)"
