#!/usr/bin/env bash
# Run the record-producing benches and append their run records to
# BENCH_service.json at the repo root (JSONL: one record per line, each
# with an ISO-8601 timestamp — see jrbench::appendRunRecord).
#
#   scripts/bench_record.sh [build-dir]
#
# The build dir defaults to ./build and must already be configured and
# built (scripts/tier1.sh does both).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found — build first (scripts/tier1.sh)" >&2
  exit 1
fi

export JROUTE_BENCH_RECORD="$PWD/BENCH_service.json"
echo "recording to $JROUTE_BENCH_RECORD"

"$BUILD/bench/bench_service_throughput" "${BENCH_PRODUCERS:-4}" "${BENCH_REPS:-3}" \
  --requests "${BENCH_REQUESTS:-10000}"
# Same workload with the jrcheck lock-order checker armed: the paired
# records in BENCH_service.json (kv "lockcheck" 0 vs 1) measure the
# checker's overhead, and the run doubles as a deadlock-freedom gate —
# the bench exits non-zero if the armed run reports any finding.
JROUTE_LOCKCHECK=1 \
  "$BUILD/bench/bench_service_throughput" "${BENCH_PRODUCERS:-4}" "${BENCH_REPS:-3}" \
  --requests "${BENCH_REQUESTS:-10000}"
# And with the jrprof profiler armed: the paired records (kv "prof" 0
# vs 1) are the EXPERIMENTS.md E20 overhead evidence (budget: <1%
# disarmed — the first record above — and <5% armed).
JROUTE_PROF=1 \
  "$BUILD/bench/bench_service_throughput" "${BENCH_PRODUCERS:-4}" "${BENCH_REPS:-3}" \
  --requests "${BENCH_REQUESTS:-10000}"
# And with jrplan certified planning: the paired records (kv "certify"
# 0 vs 1) are the EXPERIMENTS.md E21 evidence for what skipping claim
# arbitration under no-conflict certificates buys on the same workload.
"$BUILD/bench/bench_service_throughput" "${BENCH_PRODUCERS:-4}" "${BENCH_REPS:-3}" \
  --requests "${BENCH_REQUESTS:-10000}" --certify
"$BUILD/bench/bench_e3_template_vs_maze"
"$BUILD/bench/bench_e6_greedy_vs_pathfinder"
"$BUILD/bench/bench_e18_lookahead"

# jrload mixed-workload records, paired with adaptive batch linger off
# and on: the span_batch_linger_share / hist_p99_us fields across the
# two records are the measured evidence for the latency-vs-batching
# trade (EXPERIMENTS.md E19).
if [[ -x "$BUILD/examples/jrload" ]]; then
  "$BUILD/examples/jrload" --device "${JRLOAD_DEVICE:-XCV300}" \
    --sessions 50 --requests "${JRLOAD_REQUESTS:-20000}" \
    --slo "latency_us=5000,target=0.999,burn=8"
  "$BUILD/examples/jrload" --device "${JRLOAD_DEVICE:-XCV300}" \
    --sessions 50 --requests "${JRLOAD_REQUESTS:-20000}" --linger-us 300 \
    --slo "latency_us=5000,target=0.999,burn=8"
  # Certified-planning pair for the first record (kv "certify" 0 vs 1,
  # EXPERIMENTS.md E21): same mixed workload, batches planned as jrplan
  # no-conflict waves with arbitration skipped.
  "$BUILD/examples/jrload" --device "${JRLOAD_DEVICE:-XCV300}" \
    --sessions 50 --requests "${JRLOAD_REQUESTS:-20000}" --certify \
    --slo "latency_us=5000,target=0.999,burn=8"
else
  echo "bench_record: $BUILD/examples/jrload not built; skipping jrload records"
fi

echo "done: $(wc -l < "$JROUTE_BENCH_RECORD") record(s) in BENCH_service.json"
