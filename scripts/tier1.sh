#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# pass over the concurrent routing service and the telemetry subsystem,
# then an ASan+UBSan pass over the service, DRC analyzer, and telemetry
# tests, then a telemetry-compiled-out build (-DJROUTE_NO_TELEMETRY) to
# prove the zero-overhead configuration still builds and passes.
#
#   scripts/tier1.sh [jobs]
#
# The sanitizer and no-telemetry builds live in build-tsan/, build-asan/,
# and build-notelem/ so they never pollute the regular build tree; the
# sanitizer passes run only the concurrency-bearing tests (the rest of
# the suite is single-threaded and already covered by the first pass).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== tier 1: ThreadSanitizer pass (routing service + telemetry) =="
cmake -B build-tsan -S . -DJROUTE_TSAN=ON -DJROUTE_BUILD_BENCH=OFF \
  -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS" --target jr_tests
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'Service|Obs'

echo
echo "== tier 1: ASan+UBSan pass (service + DRC analyzer + telemetry) =="
cmake -B build-asan -S . -DJROUTE_ASAN=ON -DJROUTE_UBSAN=ON \
  -DJROUTE_BUILD_BENCH=OFF -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS" --target jr_tests
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'Service|Drc|Obs'

echo
echo "== tier 1: telemetry-compiled-out build (JROUTE_NO_TELEMETRY) =="
cmake -B build-notelem -S . -DJROUTE_NO_TELEMETRY=ON \
  -DJROUTE_BUILD_BENCH=OFF -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-notelem -j "$JOBS" --target jr_tests
ctest --test-dir build-notelem --output-on-failure -j "$JOBS" \
  -R 'Service|Drc|Obs'

echo
echo "== tier 1: lint =="
scripts/lint.sh "$JOBS"

echo
echo "tier 1: OK"
