#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a ThreadSanitizer
# pass over the concurrent routing service, then an ASan+UBSan pass over
# the service and DRC analyzer tests.
#
#   scripts/tier1.sh [jobs]
#
# The sanitizer builds live in build-tsan/ and build-asan/ so they never
# pollute the regular build tree; they run only the service/concurrency
# and DRC tests (the rest of the suite is single-threaded and already
# covered by the first pass).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== tier 1: ThreadSanitizer pass (routing service) =="
cmake -B build-tsan -S . -DJROUTE_TSAN=ON -DJROUTE_BUILD_BENCH=OFF \
  -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS" --target jr_tests
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'Service'

echo
echo "== tier 1: ASan+UBSan pass (routing service + DRC analyzer) =="
cmake -B build-asan -S . -DJROUTE_ASAN=ON -DJROUTE_UBSAN=ON \
  -DJROUTE_BUILD_BENCH=OFF -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS" --target jr_tests
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'Service|Drc'

echo
echo "tier 1: OK"
