#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then a certified-planning
# paranoid pass (JROUTE_PLAN_PARANOID=1) re-arbitrating every jrplan
# no-conflict wave, then the jrplan workload-lint gate (the anomaly smoke
# script must lint clean, a malformed script must fail), then a bench
# smoke that appends run records to BENCH_service.json and re-validates
# the JSONL, then a certified jrload run asserting zero claim retries
# and zero paranoid disagreements on no-conflict waves,
# then a forced-anomaly smoke that schema-checks a flight-recorder dump,
# then a lockcheck-armed pass (JROUTE_LOCKCHECK=1) over the service and
# lockcheck tests asserting an empty potential-deadlock report,
# then a ThreadSanitizer pass over the concurrent routing service and
# the telemetry subsystem with seeded schedule perturbation
# (JROUTE_LOCKCHECK=perturb), then an ASan+UBSan pass over the service, DRC
# analyzer, model-verifier, and telemetry tests, then a telemetry-compiled-out build
# (-DJROUTE_NO_TELEMETRY) to prove the zero-overhead configuration still
# builds and passes.
#
#   scripts/tier1.sh [jobs]
#
# The sanitizer and no-telemetry builds live in build-tsan/, build-asan/,
# and build-notelem/ so they never pollute the regular build tree; the
# sanitizer passes run only the concurrency-bearing tests (the rest of
# the suite is single-threaded and already covered by the first pass).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "== tier 1: lock-order gate (jrcheck armed over service tests) =="
# JROUTE_LOCKCHECK=1 arms the run-time lock-order checker in every test
# process and installs an exit hook that fails the process on any
# finding — so a lock inversion anywhere in the service/queue/obs
# protocols fails tier 1 here even though no deadlock fired.
JROUTE_LOCKCHECK=1 ctest --test-dir build --output-on-failure -j "$JOBS" \
  -R 'Service|Lockcheck|Prof'

echo
echo "== tier 1: certified-planning paranoid pass (JROUTE_PLAN_PARANOID=1) =="
# Re-runs the planning and service tests with the jrplan paranoid
# cross-check armed: every certified wave is re-arbitrated before commit
# and any certificate/arbitration disagreement throws — a lying
# no-conflict certificate fails tier 1 here.
JROUTE_PLAN_PARANOID=1 ctest --test-dir build --output-on-failure \
  -j "$JOBS" -R 'Plan|Service'

echo
echo "== tier 1: static model verification (jrverify over every device) =="
# The model verifier's exit code is its finding count: any architecture,
# graph, template-library, or slot-table inconsistency on any shipped
# device fails tier 1 here, before a router ever runs on the broken model.
build/examples/jrverify

echo
echo "== tier 1: jrplan workload lint gate =="
# The static linter must pass the documented anomaly-smoke script (its
# deliberate same-session double-claim is a warning, not an error), and
# must fail a malformed workload with a non-zero exit before it ever
# reaches an engine.
build/examples/jrplan lint scripts/anomaly_smoke.jr
printf 'auto 1 1 NO_SUCH_WIRE 2 2 S0F1\nunroute 9 9 S1_YQ\n' \
  > build/plan-bad.jr
if build/examples/jrplan lint build/plan-bad.jr >/dev/null; then
  echo "jrplan: malformed workload script did not fail the lint" >&2
  exit 1
fi
echo "jrplan lint gate OK (clean smoke accepted, malformed rejected)"

echo
echo "== tier 1: jrsh help / README sync =="
scripts/check_jrsh_help.sh build

echo
echo "== tier 1: bench smoke + run record =="
# Every verified build leaves a record trail: the cheap bench configuration
# appends one JSONL line per mode to BENCH_service.json, and the RFC 8259
# validator in tests/obs_test.cpp then re-reads the whole file, so a
# malformed record fails the build that wrote it.
BENCH_PRODUCERS="${BENCH_PRODUCERS:-2}" BENCH_REPS="${BENCH_REPS:-1}" \
  scripts/bench_record.sh build
JROUTE_BENCH_JSONL="$PWD/BENCH_service.json" \
  ctest --test-dir build --output-on-failure -R 'ObsBenchRecord'

echo
echo "== tier 1: jrload mixed-workload smoke + SLO record =="
# A malformed --slo spec must fail fast with a parse error (exit 2), not
# silently measure against a default objective.
if build/examples/jrload --slo "bogus" >/dev/null 2>&1; then
  echo "jrload: malformed --slo spec did not fail" >&2
  exit 1
fi
# 10^5 mixed requests (p2p / fanout / bus / unroute / reconnect) across
# 100 concurrent sessions on the XCV1000, with a live SLO objective and
# the jrprof profiler armed (JROUTE_PROF=1): the run doubles as the
# profiler smoke — the top-contenders report must be non-empty, its JSON
# dump must parse, and the documented root of the lock hierarchy
# (service.fabric) must appear in it. The SLO-tagged p50/p99 record
# appends to BENCH_service.json and the JSONL validator then re-reads
# the whole file including it.
# Lint the exact seeded stream the run below will replay, before it
# costs a 10^5-request execution: the stream generator is deterministic,
# so jrplan vets the very same requests jrload is about to submit.
build/examples/jrplan stream --device XCV1000 --sessions 100 \
  --requests "${JRLOAD_REQUESTS:-100000}"
PROF_JSON=build/jrload-prof.json
JROUTE_BENCH_RECORD="$PWD/BENCH_service.json" JROUTE_PROF=1 \
  build/examples/jrload --device XCV1000 --sessions 100 \
  --requests "${JRLOAD_REQUESTS:-100000}" \
  --slo "latency_us=5000,target=0.999,burn=8" \
  --prof-json "$PROF_JSON"
if [[ ! -s "$PROF_JSON" ]]; then
  echo "jrload prof smoke: expected profiler JSON at $PROF_JSON" >&2
  exit 1
fi
if command -v python3 >/dev/null; then
  python3 - "$PROF_JSON" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
locks = d["prof"]["locks"]
assert locks, "prof report: empty top-contenders lock list"
names = [l["name"] for l in locks]
assert "service.fabric" in names, f"prof report: service.fabric missing from {names}"
print(f"prof smoke OK: {len(locks)} lock(s) profiled, service.fabric present")
EOF
else
  grep -q '"service.fabric"' "$PROF_JSON"
  echo "prof smoke OK (python3 absent; grep-only check)"
fi
JROUTE_BENCH_JSONL="$PWD/BENCH_service.json" \
  ctest --test-dir build --output-on-failure -R 'ObsBenchRecord'

echo
echo "== tier 1: certified jrload run (no-conflict waves, paranoid) =="
# The same mixed workload planned as jrplan certified waves with the
# paranoid cross-check armed: a certificate/arbitration disagreement
# aborts the run (non-zero exit), and because certified planning never
# races a CAS, the run must finish with zero claim retries — both are
# asserted on the printed stats line.
CERT_OUT=build/jrload-certify.out
JROUTE_PLAN_PARANOID=1 \
  build/examples/jrload --device XCV1000 --sessions 100 \
  --requests "${JRLOAD_CERT_REQUESTS:-10000}" --certify | tee "$CERT_OUT"
grep -q ' 0 claim retries on certified plans' "$CERT_OUT"
grep -q ' 0 paranoid disagreement(s)' "$CERT_OUT"
echo "certified jrload OK (zero claim retries, zero disagreements)"

echo
echo "== tier 1: anomaly flight-recorder smoke =="
# One synthetic contention through jrsh must dump a self-contained JSON
# bundle (scripts/anomaly_smoke.jr documents the scenario). The gtest
# suite validates bundle contents in-process; this pass proves the same
# thing end to end through the shell binary and an external JSON parser.
rm -rf build/flightrec-smoke && mkdir -p build/flightrec-smoke
build/examples/jrsh scripts/anomaly_smoke.jr >/dev/null
BUNDLE=build/flightrec-smoke/flightrec-1-contention.json
if [[ ! -f "$BUNDLE" ]]; then
  echo "anomaly smoke: expected bundle at $BUNDLE" >&2
  exit 1
fi
if command -v python3 >/dev/null; then
  python3 -m json.tool "$BUNDLE" >/dev/null
fi
grep -q '"kind":"contention"' "$BUNDLE"
grep -q '"events":\[' "$BUNDLE"
grep -q '"metrics":{' "$BUNDLE"
echo "anomaly bundle OK: $BUNDLE"

echo
echo "== tier 1: ThreadSanitizer pass (routing service + telemetry) =="
cmake -B build-tsan -S . -DJROUTE_TSAN=ON -DJROUTE_BUILD_BENCH=OFF \
  -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j "$JOBS" --target jr_tests
# Perturb mode: jrcheck injects seeded yields/sleeps at instrumented
# lock points, so TSAN explores interleavings the host scheduler would
# never produce. Any failure is replayable from the printed seed.
JROUTE_LOCKCHECK=perturb JROUTE_LOCKCHECK_SEED=1 \
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'Service|Obs|Lookahead|Lockcheck|Prof|Plan'

echo
echo "== tier 1: ASan+UBSan pass (service + DRC analyzer + telemetry) =="
cmake -B build-asan -S . -DJROUTE_ASAN=ON -DJROUTE_UBSAN=ON \
  -DJROUTE_BUILD_BENCH=OFF -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-asan -j "$JOBS" --target jr_tests
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'Service|Drc|Obs|Verify|Lookahead|Lockcheck|Prof|Plan'

echo
echo "== tier 1: telemetry-compiled-out build (JROUTE_NO_TELEMETRY) =="
cmake -B build-notelem -S . -DJROUTE_NO_TELEMETRY=ON \
  -DJROUTE_BUILD_BENCH=OFF -DJROUTE_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-notelem -j "$JOBS" --target jr_tests
ctest --test-dir build-notelem --output-on-failure -j "$JOBS" \
  -R 'Service|Drc|Obs|Verify|Lookahead|Lockcheck|Prof|Plan'

echo
echo "== tier 1: lint =="
scripts/lint.sh "$JOBS"

echo
echo "== tier 1: bench regression sentinel (non-fatal) =="
# Warn-level only: compares the newest record per bench/mode group in
# BENCH_service.json against the median of its recent predecessors and
# prints anything slower than the threshold. Perf noise must not make
# the build red, so the sentinel's exit code is ignored by design.
scripts/bench_regress.sh || true

echo
echo "tier 1: OK"
