// The routing-resource graph (RRG): canonical physical wire segments and
// the programmable interconnect points (PIPs) between them.
//
// Every physical segment is ONE node, however many tiles it is visible
// from: the single track between (5,7) and (5,8) is a single node that the
// per-tile namespace addresses as SingleEast[5]@(5,7) and
// SingleWest[5]@(5,8). Edges are directed PIPs; a bidirectional track
// simply has incoming edges at both of its end GRMs. Each edge remembers
// the tile whose switch box implements it, which (a) gives the bitstream a
// frame address and (b) lets the template engine compute the direction of
// travel.
//
// Node id layout (contiguous ranges, O(1) in both directions):
//   logic pins        tile-major; local ids 0..41 coincide with arch ids
//   horiz singles     (row, chanCol in [0,W-1), track)
//   vert singles      (chanRow in [0,H-1), col, track)
//   hexes E/W/N/S     (row/col, origin along axis, track); not clamped at
//                     device edges, so origins keep the full 6-tile span
//   long lines        (row, track) and (col, track)
//   global nets       4 chip-wide nodes + 4 pad driver nodes
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/arch_db.h"
#include "arch/template_value.h"
#include "common/types.h"

namespace xcvsim {

/// Physical classification of an RRG node.
enum class NodeKind : uint8_t {
  Logic,    // slice output, OMUX line, or CLB input pin of one tile
  SingleH,  // horizontal single-length track
  SingleV,  // vertical single-length track
  HexE,     // hex with origin driving east
  HexW,
  HexN,
  HexS,
  LongH,    // horizontal long line (full row)
  LongV,    // vertical long line (full column)
  Gclk,     // dedicated global clock net (chip-wide)
  GclkPad,  // driver pad of one global clock net
  IobIn,    // I/O block pad input buffer (drives the fabric)
  IobOut,   // I/O block pad output buffer (driven by the fabric)
  BramOut,  // block-RAM data output (drives the fabric)
  BramIn,   // block-RAM data/address input (driven by the fabric)
};

/// Decoded identity of a node.
struct NodeInfo {
  NodeKind kind;
  RowCol tile;       // logic: owning tile; segments: origin/anchor tile
  int track = 0;     // track / pin index
  LocalWire local = kInvalidLocalWire;  // logic nodes: the arch local id
};

/// One directed PIP.
struct Edge {
  NodeId to;
  uint16_t tileRow;   // tile whose switch box implements this PIP
  uint16_t tileCol;
  LocalWire fromLocal;  // alias of the source node at that tile
  LocalWire toLocal;    // alias of the target node at that tile
};

class Graph {
 public:
  /// Build the full RRG for a device. The ArchDb is the only source of PIP
  /// existence, so graph and description cannot diverge.
  explicit Graph(const DeviceSpec& dev);

  const DeviceSpec& device() const { return dev_; }
  const ArchDb& arch() const { return arch_; }

  NodeId numNodes() const { return numNodes_; }
  EdgeId numEdges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Resolve a (tile, local wire) address to its canonical node, or
  /// kInvalidNode when the name does not exist at that tile.
  NodeId nodeAt(RowCol rc, LocalWire w) const;

  /// Decode a node id.
  NodeInfo info(NodeId n) const;

  /// Local alias of node `n` at tile `rc`, or kInvalidLocalWire when the
  /// node is not addressable there.
  LocalWire aliasAt(NodeId n, RowCol rc) const;

  /// Tiles at which node `n` is addressable (tap points). Logic nodes have
  /// one; singles two; hexes three; long lines every access tile; globals
  /// every tile (reported as the empty span, query aliasAt directly).
  std::vector<RowCol> tapsOf(NodeId n) const;

  /// Representative tile for distance heuristics (segment midpoint).
  RowCol positionOf(NodeId n) const;

  /// Outgoing PIPs of `n`.
  std::span<const Edge> out(NodeId n) const {
    return {edges_.data() + outOff_[n], outOff_[n + 1] - outOff_[n]};
  }

  /// Incoming PIP ids of `n` (indices into the edge array).
  std::span<const EdgeId> in(NodeId n) const {
    return {inIds_.data() + inOff_[n], inOff_[n + 1] - inOff_[n]};
  }

  /// The edge record for an edge id.
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Source node of an edge (recovered from the reverse index).
  NodeId edgeSource(EdgeId e) const { return edgeSrc_[e]; }

  /// Find an edge from -> to implemented at tile rc; kInvalidEdge if none.
  EdgeId findEdge(NodeId from, NodeId to, RowCol rc) const;

  /// Find any edge from -> to; kInvalidEdge if none.
  EdgeId findEdge(NodeId from, NodeId to) const;

  /// Edge id of the PIP record `e` within out(edgeSource).
  EdgeId edgeIdOf(NodeId from, const Edge& e) const {
    return static_cast<EdgeId>(&e - edges_.data() + 0 * from);
  }

  /// Direction a signal travels on segment `n` when driven from tile
  /// `fromTile`. Only meaningful for singles and hexes.
  Dir travelDir(NodeId n, RowCol fromTile) const;

  /// Template value of node `n` when entered through edge `e` (the
  /// paper's direction-x-resource classification, direction of travel
  /// resolved for bidirectional resources).
  TemplateValue templateValueOf(NodeId n, const Edge& e) const;

  /// Debug name, e.g. "R5C7.SingleEast[5]" (canonical alias).
  std::string nodeName(NodeId n) const;

  /// Intrinsic signal delay of a node (fabric timing model).
  DelayPs nodeDelay(NodeId n) const;

  /// Approximate memory footprint of the graph in bytes.
  size_t memoryBytes() const;

  // Range bases, exposed for white-box tests.
  NodeId logicBase() const { return 0; }
  NodeId hSingleBase() const { return hSingleBase_; }
  NodeId vSingleBase() const { return vSingleBase_; }
  NodeId gclkBase() const { return gclkBase_; }
  NodeId gclkPadBase() const { return gclkPadBase_; }

  /// The pad node driving global net k.
  NodeId gclkPad(int k) const { return gclkPadBase_ + static_cast<NodeId>(k); }
  /// The chip-wide global net node k.
  NodeId gclkNet(int k) const { return gclkBase_ + static_cast<NodeId>(k); }

  /// Perimeter index of a boundary tile (0 .. numBoundaryTiles), used to
  /// number the I/O ring; -1 for interior tiles.
  int perimeterIndex(RowCol rc) const;
  /// Number of tiles carrying I/O blocks.
  int numBoundaryTiles() const;

 private:
  void assignRanges();
  void buildEdges();

  DeviceSpec dev_;
  ArchDb arch_;

  // Range bases (see header comment).
  NodeId hSingleBase_ = 0, vSingleBase_ = 0;
  NodeId hexEBase_ = 0, hexWBase_ = 0, hexNBase_ = 0, hexSBase_ = 0;
  NodeId longHBase_ = 0, longVBase_ = 0;
  NodeId gclkBase_ = 0, gclkPadBase_ = 0;
  NodeId iobInBase_ = 0, iobOutBase_ = 0;
  NodeId bramOutBase_ = 0, bramInBase_ = 0;
  NodeId numNodes_ = 0;

  std::vector<Edge> edges_;       // grouped by source node (CSR payload)
  std::vector<uint32_t> outOff_;  // numNodes_+1 offsets into edges_
  std::vector<EdgeId> inIds_;     // edge ids grouped by target node
  std::vector<uint32_t> inOff_;   // numNodes_+1 offsets into inIds_
  std::vector<NodeId> edgeSrc_;   // source node per edge id
};

}  // namespace xcvsim
