#include "rrg/graph.h"

#include <algorithm>

#include "arch/patterns.h"
#include "common/error.h"

namespace xcvsim {
namespace {

constexpr NodeId kLogicPerTile = kSingleBase;  // locals [0,42) are logic
constexpr int kTracks1 = kSinglesPerChannel;
constexpr int kTracks6 = kHexTracks;

int tapOffsetOf(HexTap tap) {
  switch (tap) {
    case HexTap::Beg: return 0;
    case HexTap::Mid: return kHexMid;
    case HexTap::End: return kHexSpan;
  }
  return 0;
}

}  // namespace

Graph::Graph(const DeviceSpec& dev) : dev_(dev), arch_(dev) {
  if (dev.rows <= kHexSpan || dev.cols <= kHexSpan) {
    throw ArgumentError("device too small for hex lines");
  }
  assignRanges();
  buildEdges();
}

void Graph::assignRanges() {
  const NodeId H = static_cast<NodeId>(dev_.rows);
  const NodeId W = static_cast<NodeId>(dev_.cols);
  NodeId n = H * W * kLogicPerTile;
  hSingleBase_ = n;
  n += H * (W - 1) * kTracks1;
  vSingleBase_ = n;
  n += (H - 1) * W * kTracks1;
  hexEBase_ = n;
  n += H * (W - kHexSpan) * kTracks6;
  hexWBase_ = n;
  n += H * (W - kHexSpan) * kTracks6;
  hexNBase_ = n;
  n += (H - kHexSpan) * W * kTracks6;
  hexSBase_ = n;
  n += (H - kHexSpan) * W * kTracks6;
  longHBase_ = n;
  n += H * kLongTracks;
  longVBase_ = n;
  n += W * kLongTracks;
  gclkBase_ = n;
  n += kGlobalNets;
  gclkPadBase_ = n;
  n += kGlobalNets;
  iobInBase_ = n;
  n += static_cast<NodeId>(numBoundaryTiles() * kIobsPerTile);
  iobOutBase_ = n;
  n += static_cast<NodeId>(numBoundaryTiles() * kIobsPerTile);
  // BRAM port pins: 2 edge columns x H tiles x (DO: 4) and (DI+AD: 8).
  bramOutBase_ = n;
  n += static_cast<NodeId>(kBramColumns * dev_.rows * kBramPinsPerTile);
  bramInBase_ = n;
  n += static_cast<NodeId>(kBramColumns * dev_.rows * 2 * kBramPinsPerTile);
  numNodes_ = n;
}

int Graph::numBoundaryTiles() const {
  return 2 * dev_.cols + 2 * (dev_.rows - 2);
}

int Graph::perimeterIndex(RowCol rc) const {
  const int H = dev_.rows, W = dev_.cols;
  if (!dev_.contains(rc)) return -1;
  if (rc.row == 0) return rc.col;
  if (rc.row == H - 1) return W + rc.col;
  if (rc.col == 0) return 2 * W + (rc.row - 1);
  if (rc.col == W - 1) return 2 * W + (H - 2) + (rc.row - 1);
  return -1;
}

NodeId Graph::nodeAt(RowCol rc, LocalWire w) const {
  const int H = dev_.rows, W = dev_.cols;
  const int r = rc.row, c = rc.col;
  if (r < 0 || r >= H || c < 0 || c >= W || !isValidWire(w)) {
    return kInvalidNode;
  }
  if (w < kLogicPerTile) {
    return static_cast<NodeId>(r * W + c) * kLogicPerTile + w;
  }
  switch (wireKind(w)) {
    case WireKind::Single: {
      const int t = wireIndex(w);
      switch (wireDir(w)) {
        case Dir::East:
          if (c + 1 >= W) return kInvalidNode;
          return hSingleBase_ +
                 static_cast<NodeId>((r * (W - 1) + c) * kTracks1 + t);
        case Dir::West:
          if (c - 1 < 0) return kInvalidNode;
          return hSingleBase_ +
                 static_cast<NodeId>((r * (W - 1) + c - 1) * kTracks1 + t);
        case Dir::North:
          if (r + 1 >= H) return kInvalidNode;
          return vSingleBase_ +
                 static_cast<NodeId>((r * W + c) * kTracks1 + t);
        case Dir::South:
          if (r - 1 < 0) return kInvalidNode;
          return vSingleBase_ +
                 static_cast<NodeId>(((r - 1) * W + c) * kTracks1 + t);
      }
      return kInvalidNode;
    }
    case WireKind::Hex: {
      const int t = wireIndex(w);
      const Dir d = wireDir(w);
      const int off = tapOffsetOf(wireHexTap(w));
      const int orow = r - off * dirDRow(d);
      const int ocol = c - off * dirDCol(d);
      const int erow = orow + kHexSpan * dirDRow(d);
      const int ecol = ocol + kHexSpan * dirDCol(d);
      if (orow < 0 || orow >= H || ocol < 0 || ocol >= W || erow < 0 ||
          erow >= H || ecol < 0 || ecol >= W) {
        return kInvalidNode;
      }
      switch (d) {
        case Dir::East:
          return hexEBase_ + static_cast<NodeId>(
                                 (orow * (W - kHexSpan) + ocol) * kTracks6 + t);
        case Dir::West:
          return hexWBase_ +
                 static_cast<NodeId>(
                     (orow * (W - kHexSpan) + (ocol - kHexSpan)) * kTracks6 +
                     t);
        case Dir::North:
          return hexNBase_ +
                 static_cast<NodeId>((orow * W + ocol) * kTracks6 + t);
        case Dir::South:
          return hexSBase_ + static_cast<NodeId>(
                                 ((orow - kHexSpan) * W + ocol) * kTracks6 + t);
      }
      return kInvalidNode;
    }
    case WireKind::Long: {
      const int t = wireIndex(w);
      if (w < kLongVBase) {
        if (!longAccessibleAt(t, c)) return kInvalidNode;
        return longHBase_ + static_cast<NodeId>(r * kLongTracks + t);
      }
      if (!longAccessibleAt(t, r)) return kInvalidNode;
      return longVBase_ + static_cast<NodeId>(c * kLongTracks + t);
    }
    case WireKind::Gclk:
      return gclkBase_ + static_cast<NodeId>(wireIndex(w));
    case WireKind::IobIn:
    case WireKind::IobOut: {
      const int p = perimeterIndex(rc);
      if (p < 0) return kInvalidNode;
      const NodeId base =
          wireKind(w) == WireKind::IobIn ? iobInBase_ : iobOutBase_;
      return base + static_cast<NodeId>(p * kIobsPerTile + wireIndex(w));
    }
    case WireKind::BramOut: {
      if (!isBramTile(dev_, rc)) return kInvalidNode;
      const int side = rc.col == 0 ? 0 : 1;
      return bramOutBase_ +
             static_cast<NodeId>((side * H + r) * kBramPinsPerTile +
                                 wireIndex(w));
    }
    case WireKind::BramIn: {
      if (!isBramTile(dev_, rc)) return kInvalidNode;
      const int side = rc.col == 0 ? 0 : 1;
      return bramInBase_ +
             static_cast<NodeId>((side * H + r) * 2 * kBramPinsPerTile +
                                 wireIndex(w));
    }
    default:
      return kInvalidNode;
  }
}

NodeInfo Graph::info(NodeId n) const {
  const int W = dev_.cols;
  NodeInfo inf{};
  if (n < hSingleBase_) {
    const NodeId tile = n / kLogicPerTile;
    inf.kind = NodeKind::Logic;
    inf.local = static_cast<LocalWire>(n % kLogicPerTile);
    inf.tile = {static_cast<int16_t>(tile / static_cast<NodeId>(W)),
                static_cast<int16_t>(tile % static_cast<NodeId>(W))};
    inf.track = inf.local;
    return inf;
  }
  if (n < vSingleBase_) {
    const NodeId i = n - hSingleBase_;
    inf.kind = NodeKind::SingleH;
    inf.track = static_cast<int>(i % kTracks1);
    const NodeId chan = i / kTracks1;
    inf.tile = {static_cast<int16_t>(chan / static_cast<NodeId>(W - 1)),
                static_cast<int16_t>(chan % static_cast<NodeId>(W - 1))};
    return inf;
  }
  if (n < hexEBase_) {
    const NodeId i = n - vSingleBase_;
    inf.kind = NodeKind::SingleV;
    inf.track = static_cast<int>(i % kTracks1);
    const NodeId chan = i / kTracks1;
    inf.tile = {static_cast<int16_t>(chan / static_cast<NodeId>(W)),
                static_cast<int16_t>(chan % static_cast<NodeId>(W))};
    return inf;
  }
  const auto decodeHexH = [&](NodeId base, NodeKind kind, int originShift) {
    const NodeId i = n - base;
    inf.kind = kind;
    inf.track = static_cast<int>(i % kTracks6);
    const NodeId cell = i / kTracks6;
    inf.tile = {
        static_cast<int16_t>(cell / static_cast<NodeId>(W - kHexSpan)),
        static_cast<int16_t>(cell % static_cast<NodeId>(W - kHexSpan) +
                             static_cast<NodeId>(originShift))};
  };
  const auto decodeHexV = [&](NodeId base, NodeKind kind, int originShift) {
    const NodeId i = n - base;
    inf.kind = kind;
    inf.track = static_cast<int>(i % kTracks6);
    const NodeId cell = i / kTracks6;
    inf.tile = {static_cast<int16_t>(cell / static_cast<NodeId>(W) +
                                     static_cast<NodeId>(originShift)),
                static_cast<int16_t>(cell % static_cast<NodeId>(W))};
  };
  if (n < hexWBase_) {
    decodeHexH(hexEBase_, NodeKind::HexE, 0);
    return inf;
  }
  if (n < hexNBase_) {
    decodeHexH(hexWBase_, NodeKind::HexW, kHexSpan);
    return inf;
  }
  if (n < hexSBase_) {
    decodeHexV(hexNBase_, NodeKind::HexN, 0);
    return inf;
  }
  if (n < longHBase_) {
    decodeHexV(hexSBase_, NodeKind::HexS, kHexSpan);
    return inf;
  }
  if (n < longVBase_) {
    const NodeId i = n - longHBase_;
    inf.kind = NodeKind::LongH;
    inf.track = static_cast<int>(i % kLongTracks);
    inf.tile = {static_cast<int16_t>(i / kLongTracks), 0};
    return inf;
  }
  if (n < gclkBase_) {
    const NodeId i = n - longVBase_;
    inf.kind = NodeKind::LongV;
    inf.track = static_cast<int>(i % kLongTracks);
    inf.tile = {0, static_cast<int16_t>(i / kLongTracks)};
    return inf;
  }
  if (n < gclkPadBase_) {
    inf.kind = NodeKind::Gclk;
    inf.track = static_cast<int>(n - gclkBase_);
    inf.tile = {0, 0};
    return inf;
  }
  if (n < iobInBase_) {
    inf.kind = NodeKind::GclkPad;
    inf.track = static_cast<int>(n - gclkPadBase_);
    inf.tile = {0, 0};
    return inf;
  }
  if (n < bramOutBase_) {
    const bool isIn = n < iobOutBase_;
    const NodeId i = n - (isIn ? iobInBase_ : iobOutBase_);
    inf.kind = isIn ? NodeKind::IobIn : NodeKind::IobOut;
    inf.track = static_cast<int>(i % kIobsPerTile);
    // Invert the perimeter numbering back to the boundary tile.
    const int H = dev_.rows;
    const int p = static_cast<int>(i / kIobsPerTile);
    if (p < W) {
      inf.tile = {0, static_cast<int16_t>(p)};
    } else if (p < 2 * W) {
      inf.tile = {static_cast<int16_t>(H - 1), static_cast<int16_t>(p - W)};
    } else if (p < 2 * W + (H - 2)) {
      inf.tile = {static_cast<int16_t>(p - 2 * W + 1), 0};
    } else {
      inf.tile = {static_cast<int16_t>(p - 2 * W - (H - 2) + 1),
                  static_cast<int16_t>(W - 1)};
    }
    return inf;
  }
  if (n < numNodes_) {
    const bool isOut = n < bramInBase_;
    const NodeId i = n - (isOut ? bramOutBase_ : bramInBase_);
    const int per = isOut ? kBramPinsPerTile : 2 * kBramPinsPerTile;
    inf.kind = isOut ? NodeKind::BramOut : NodeKind::BramIn;
    inf.track = static_cast<int>(i) % per;
    const int cell = static_cast<int>(i) / per;
    const int side = cell / dev_.rows;
    inf.tile = {static_cast<int16_t>(cell % dev_.rows),
                static_cast<int16_t>(side == 0 ? 0 : W - 1)};
    return inf;
  }
  throw ArgumentError("node id out of range: " + std::to_string(n));
}

LocalWire Graph::aliasAt(NodeId n, RowCol rc) const {
  const NodeInfo inf = info(n);
  switch (inf.kind) {
    case NodeKind::Logic:
      return rc == inf.tile ? inf.local : kInvalidLocalWire;
    case NodeKind::SingleH:
      if (rc == inf.tile) return single(Dir::East, inf.track);
      if (rc.row == inf.tile.row && rc.col == inf.tile.col + 1) {
        return single(Dir::West, inf.track);
      }
      return kInvalidLocalWire;
    case NodeKind::SingleV:
      if (rc == inf.tile) return single(Dir::North, inf.track);
      if (rc.col == inf.tile.col && rc.row == inf.tile.row + 1) {
        return single(Dir::South, inf.track);
      }
      return kInvalidLocalWire;
    case NodeKind::HexE:
    case NodeKind::HexW:
    case NodeKind::HexN:
    case NodeKind::HexS: {
      const Dir d = inf.kind == NodeKind::HexE   ? Dir::East
                    : inf.kind == NodeKind::HexW ? Dir::West
                    : inf.kind == NodeKind::HexN ? Dir::North
                                                 : Dir::South;
      const int dr = rc.row - inf.tile.row;
      const int dc = rc.col - inf.tile.col;
      const int along = dr * dirDRow(d) + dc * dirDCol(d);
      const int cross = dr * dirDCol(d) + dc * dirDRow(d);
      if (cross != 0) return kInvalidLocalWire;
      if (along == 0) return hex(d, HexTap::Beg, inf.track);
      if (along == kHexMid) return hex(d, HexTap::Mid, inf.track);
      if (along == kHexSpan) return hex(d, HexTap::End, inf.track);
      return kInvalidLocalWire;
    }
    case NodeKind::LongH:
      if (rc.row == inf.tile.row && longAccessibleAt(inf.track, rc.col)) {
        return longH(inf.track);
      }
      return kInvalidLocalWire;
    case NodeKind::LongV:
      if (rc.col == inf.tile.col && longAccessibleAt(inf.track, rc.row)) {
        return longV(inf.track);
      }
      return kInvalidLocalWire;
    case NodeKind::Gclk:
      return dev_.contains(rc) ? gclk(inf.track) : kInvalidLocalWire;
    case NodeKind::GclkPad:
      return kInvalidLocalWire;
    case NodeKind::IobIn:
      return rc == inf.tile ? iobIn(inf.track) : kInvalidLocalWire;
    case NodeKind::IobOut:
      return rc == inf.tile ? iobOut(inf.track) : kInvalidLocalWire;
    case NodeKind::BramOut:
      return rc == inf.tile ? bramDo(inf.track) : kInvalidLocalWire;
    case NodeKind::BramIn:
      if (rc != inf.tile) return kInvalidLocalWire;
      return inf.track < kBramPinsPerTile
                 ? bramDi(inf.track)
                 : bramAd(inf.track - kBramPinsPerTile);
  }
  return kInvalidLocalWire;
}

std::vector<RowCol> Graph::tapsOf(NodeId n) const {
  const NodeInfo inf = info(n);
  std::vector<RowCol> taps;
  switch (inf.kind) {
    case NodeKind::Logic:
      taps.push_back(inf.tile);
      break;
    case NodeKind::SingleH:
      taps.push_back(inf.tile);
      taps.push_back({inf.tile.row, static_cast<int16_t>(inf.tile.col + 1)});
      break;
    case NodeKind::SingleV:
      taps.push_back(inf.tile);
      taps.push_back({static_cast<int16_t>(inf.tile.row + 1), inf.tile.col});
      break;
    case NodeKind::HexE:
    case NodeKind::HexW:
    case NodeKind::HexN:
    case NodeKind::HexS: {
      const Dir d = inf.kind == NodeKind::HexE   ? Dir::East
                    : inf.kind == NodeKind::HexW ? Dir::West
                    : inf.kind == NodeKind::HexN ? Dir::North
                                                 : Dir::South;
      for (int off : {0, kHexMid, kHexSpan}) {
        taps.push_back({static_cast<int16_t>(inf.tile.row + off * dirDRow(d)),
                        static_cast<int16_t>(inf.tile.col + off * dirDCol(d))});
      }
      break;
    }
    case NodeKind::LongH:
      for (int c = 0; c < dev_.cols; ++c) {
        if (longAccessibleAt(inf.track, c)) {
          taps.push_back({inf.tile.row, static_cast<int16_t>(c)});
        }
      }
      break;
    case NodeKind::LongV:
      for (int r = 0; r < dev_.rows; ++r) {
        if (longAccessibleAt(inf.track, r)) {
          taps.push_back({static_cast<int16_t>(r), inf.tile.col});
        }
      }
      break;
    case NodeKind::Gclk:
    case NodeKind::GclkPad:
      break;  // addressable everywhere / nowhere
    case NodeKind::IobIn:
    case NodeKind::IobOut:
    case NodeKind::BramOut:
    case NodeKind::BramIn:
      taps.push_back(inf.tile);
      break;
  }
  return taps;
}

RowCol Graph::positionOf(NodeId n) const {
  const NodeInfo inf = info(n);
  switch (inf.kind) {
    case NodeKind::SingleH:
    case NodeKind::SingleV:
      return inf.tile;
    case NodeKind::HexE:
      return {inf.tile.row, static_cast<int16_t>(inf.tile.col + kHexMid)};
    case NodeKind::HexW:
      return {inf.tile.row, static_cast<int16_t>(inf.tile.col - kHexMid)};
    case NodeKind::HexN:
      return {static_cast<int16_t>(inf.tile.row + kHexMid), inf.tile.col};
    case NodeKind::HexS:
      return {static_cast<int16_t>(inf.tile.row - kHexMid), inf.tile.col};
    case NodeKind::LongH:
      return {inf.tile.row, static_cast<int16_t>(dev_.cols / 2)};
    case NodeKind::LongV:
      return {static_cast<int16_t>(dev_.rows / 2), inf.tile.col};
    default:
      return inf.tile;
  }
}

void Graph::buildEdges() {
  outOff_.assign(numNodes_ + 1, 0);

  // Pass 1: out-degree per node.
  const auto forAllPips = [&](auto&& cb) {
    for (int16_t r = 0; r < dev_.rows; ++r) {
      for (int16_t c = 0; c < dev_.cols; ++c) {
        const RowCol rc{r, c};
        arch_.forEachTilePip(rc, [&](LocalWire f, LocalWire t) {
          cb(nodeAt(rc, f), nodeAt(rc, t), rc, f, t);
        });
        arch_.forEachDirectConnect(
            rc, [&](LocalWire f, RowCol dst, LocalWire t) {
              cb(nodeAt(rc, f), nodeAt(dst, t), rc, f, t);
            });
      }
    }
    for (int k = 0; k < kGlobalNets; ++k) {
      cb(gclkPad(k), gclkNet(k), RowCol{0, 0}, kInvalidLocalWire, gclk(k));
    }
  };

  forAllPips([&](NodeId from, NodeId to, RowCol, LocalWire, LocalWire) {
    if (from == kInvalidNode || to == kInvalidNode) {
      throw JRouteError("PIP enumeration produced an unresolvable alias");
    }
    ++outOff_[from + 1];
  });

  for (NodeId i = 0; i < numNodes_; ++i) outOff_[i + 1] += outOff_[i];
  const EdgeId numE = outOff_[numNodes_];
  edges_.resize(numE);
  edgeSrc_.resize(numE);

  // Pass 2: fill, using a moving cursor per node.
  std::vector<uint32_t> cursor(outOff_.begin(), outOff_.end() - 1);
  forAllPips([&](NodeId from, NodeId to, RowCol rc, LocalWire f, LocalWire t) {
    const uint32_t slot = cursor[from]++;
    edges_[slot] = Edge{to, static_cast<uint16_t>(rc.row),
                        static_cast<uint16_t>(rc.col), f, t};
    edgeSrc_[slot] = from;
  });

  // Reverse index: edge ids grouped by target.
  inOff_.assign(numNodes_ + 1, 0);
  for (const Edge& e : edges_) ++inOff_[e.to + 1];
  for (NodeId i = 0; i < numNodes_; ++i) inOff_[i + 1] += inOff_[i];
  inIds_.resize(numE);
  std::vector<uint32_t> rcursor(inOff_.begin(), inOff_.end() - 1);
  for (EdgeId e = 0; e < numE; ++e) {
    inIds_[rcursor[edges_[e].to]++] = e;
  }
}

EdgeId Graph::findEdge(NodeId from, NodeId to, RowCol rc) const {
  const auto o = out(from);
  for (const Edge& e : o) {
    if (e.to == to && e.tileRow == static_cast<uint16_t>(rc.row) &&
        e.tileCol == static_cast<uint16_t>(rc.col)) {
      return static_cast<EdgeId>(&e - edges_.data());
    }
  }
  return kInvalidEdge;
}

EdgeId Graph::findEdge(NodeId from, NodeId to) const {
  for (const Edge& e : out(from)) {
    if (e.to == to) return static_cast<EdgeId>(&e - edges_.data());
  }
  return kInvalidEdge;
}

Dir Graph::travelDir(NodeId n, RowCol fromTile) const {
  const NodeInfo inf = info(n);
  switch (inf.kind) {
    case NodeKind::SingleH:
      return fromTile == inf.tile ? Dir::East : Dir::West;
    case NodeKind::SingleV:
      return fromTile == inf.tile ? Dir::North : Dir::South;
    case NodeKind::HexE:
      return fromTile == inf.tile ? Dir::East : Dir::West;
    case NodeKind::HexW:
      return fromTile == inf.tile ? Dir::West : Dir::East;
    case NodeKind::HexN:
      return fromTile == inf.tile ? Dir::North : Dir::South;
    case NodeKind::HexS:
      return fromTile == inf.tile ? Dir::South : Dir::North;
    default:
      throw ArgumentError("travelDir: node has no direction of travel");
  }
}

TemplateValue Graph::templateValueOf(NodeId n, const Edge& e) const {
  const NodeInfo inf = info(n);
  const RowCol entry{static_cast<int16_t>(e.tileRow),
                     static_cast<int16_t>(e.tileCol)};
  switch (inf.kind) {
    case NodeKind::Logic:
      if (inf.local >= kOmuxBase && inf.local < kClbInBase) {
        return TemplateValue::OUTMUX;
      }
      return TemplateValue::CLBIN;
    case NodeKind::SingleH:
    case NodeKind::SingleV:
      return singleValue(travelDir(n, entry));
    case NodeKind::HexE:
    case NodeKind::HexW:
    case NodeKind::HexN:
    case NodeKind::HexS:
      return hexValue(travelDir(n, entry));
    case NodeKind::LongH:
      return TemplateValue::LONGH;
    case NodeKind::LongV:
      return TemplateValue::LONGV;
    case NodeKind::Gclk:
    case NodeKind::GclkPad:
      return TemplateValue::GCLKNET;
    case NodeKind::IobIn:
    case NodeKind::IobOut:
      return TemplateValue::IOPAD;
    case NodeKind::BramOut:
    case NodeKind::BramIn:
      return TemplateValue::BRAMPORT;
  }
  return TemplateValue::CLBIN;
}

std::string Graph::nodeName(NodeId n) const {
  const NodeInfo inf = info(n);
  const std::string loc = "R" + std::to_string(inf.tile.row) + "C" +
                          std::to_string(inf.tile.col) + ".";
  switch (inf.kind) {
    case NodeKind::Logic:
      return loc + wireName(inf.local);
    case NodeKind::SingleH:
      return loc + wireName(single(Dir::East, inf.track));
    case NodeKind::SingleV:
      return loc + wireName(single(Dir::North, inf.track));
    case NodeKind::HexE:
      return loc + wireName(hex(Dir::East, HexTap::Beg, inf.track));
    case NodeKind::HexW:
      return loc + wireName(hex(Dir::West, HexTap::Beg, inf.track));
    case NodeKind::HexN:
      return loc + wireName(hex(Dir::North, HexTap::Beg, inf.track));
    case NodeKind::HexS:
      return loc + wireName(hex(Dir::South, HexTap::Beg, inf.track));
    case NodeKind::LongH:
      return "R" + std::to_string(inf.tile.row) + "." +
             wireName(longH(inf.track));
    case NodeKind::LongV:
      return "C" + std::to_string(inf.tile.col) + "." +
             wireName(longV(inf.track));
    case NodeKind::Gclk:
      return wireName(gclk(inf.track));
    case NodeKind::GclkPad:
      return "GCLKPAD[" + std::to_string(inf.track) + "]";
    case NodeKind::IobIn:
      return loc + wireName(iobIn(inf.track));
    case NodeKind::IobOut:
      return loc + wireName(iobOut(inf.track));
    case NodeKind::BramOut:
      return loc + wireName(bramDo(inf.track));
    case NodeKind::BramIn:
      return loc + wireName(inf.track < kBramPinsPerTile
                                ? bramDi(inf.track)
                                : bramAd(inf.track - kBramPinsPerTile));
  }
  return "?";
}

DelayPs Graph::nodeDelay(NodeId n) const {
  // Nominal Virtex-class interconnect delays; the timing model only needs
  // relative magnitudes (single < hex < long) to be realistic.
  switch (info(n).kind) {
    case NodeKind::Logic: return 80;
    case NodeKind::SingleH:
    case NodeKind::SingleV: return 350;
    case NodeKind::HexE:
    case NodeKind::HexW:
    case NodeKind::HexN:
    case NodeKind::HexS: return 700;
    case NodeKind::LongH:
    case NodeKind::LongV: return 1200;
    case NodeKind::Gclk: return 900;
    case NodeKind::GclkPad: return 0;
    case NodeKind::IobIn:
    case NodeKind::IobOut: return 600;  // pad buffer
    case NodeKind::BramOut:
    case NodeKind::BramIn: return 800;  // block-RAM port register
  }
  return 0;
}

size_t Graph::memoryBytes() const {
  return edges_.size() * sizeof(Edge) + edgeSrc_.size() * sizeof(NodeId) +
         inIds_.size() * sizeof(EdgeId) +
         (outOff_.size() + inOff_.size()) * sizeof(uint32_t);
}

}  // namespace xcvsim
