#include "core/path.h"

namespace jroute {

RowCol Template::displacement() const {
  int dr = 0, dc = 0;
  for (TemplateValue v : values_) {
    dr += xcvsim::templateDRow(v);
    dc += xcvsim::templateDCol(v);
  }
  return {static_cast<int16_t>(dr), static_cast<int16_t>(dc)};
}

}  // namespace jroute
