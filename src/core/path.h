// Path and Template — user-specified routes at the two middle levels of
// control (section 3.1).
#pragma once

#include <initializer_list>
#include <vector>

#include "arch/template_value.h"
#include "common/types.h"

namespace jroute {

using xcvsim::LocalWire;
using xcvsim::RowCol;
using xcvsim::TemplateValue;

/// "A path is an array of specific resources, for example HexNorth[4],
/// that are to be connected. The path also requires a starting location,
/// defined by a row and column."
class Path {
 public:
  Path(int row, int col, std::vector<LocalWire> wires)
      : start_{static_cast<int16_t>(row), static_cast<int16_t>(col)},
        wires_(std::move(wires)) {}
  Path(RowCol start, std::vector<LocalWire> wires)
      : start_(start), wires_(std::move(wires)) {}

  RowCol start() const { return start_; }
  const std::vector<LocalWire>& wires() const { return wires_; }

 private:
  RowCol start_;
  std::vector<LocalWire> wires_;
};

/// "A template is defined as an array of template values" — a direction/
/// resource pattern the router follows while choosing concrete wires.
class Template {
 public:
  Template() = default;
  explicit Template(std::vector<TemplateValue> values)
      : values_(std::move(values)) {}
  Template(std::initializer_list<TemplateValue> values) : values_(values) {}

  const std::vector<TemplateValue>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Net tile displacement when every element is traversed end to end.
  RowCol displacement() const;

 private:
  std::vector<TemplateValue> values_;
};

}  // namespace jroute
