#include "core/endpoint.h"

// Port and EndPoint are header-only value types; this TU anchors the
// module so the archive always has a member for it.

namespace jroute {
static_assert(sizeof(EndPoint) <= 16, "EndPoint stays a small value type");
}  // namespace jroute
