// Skew-minimizing fanout routing — the paper's section 6 item
// "Also, skew minimization will be addressed", addressed.
//
// A greedily routed fanout net delivers near sinks much earlier than far
// ones. routeBalanced() first routes the net normally, then iteratively
// rips up the fastest branch (reverseUnroute — the section 3.3 primitive
// built for exactly this) and re-routes it through delay-padding detours:
// rectangular single-wire loops whose template value sequence nets zero
// displacement but adds a calibrated ~1.6 ns per loop. The result trades
// a little wire for bounded skew, without touching the slow branches.
//
// (The zero-skew alternative the fabric offers is the dedicated global
// clock network — see RegisterBank::clockFrom — but it only reaches CLK
// pins; routeBalanced works for arbitrary fanout nets.)
#pragma once

#include "core/router.h"

namespace jroute {

struct BalancedReport {
  xcvsim::DelayPs skewBefore = 0;
  xcvsim::DelayPs skewAfter = 0;
  xcvsim::DelayPs maxDelay = 0;
  int branchesRerouted = 0;
};

/// Approximate delay added by one padding loop (4 singles + 4 PIPs).
inline constexpr xcvsim::DelayPs kPadLoopDelayPs = 4 * (350 + 60);

/// Route source -> sinks, then equalize sink arrival times to within
/// `skewTarget` by re-routing fast branches through padding loops.
/// Branches whose padded re-route fails keep their original (fast) path.
BalancedReport routeBalanced(Router& router, const EndPoint& source,
                             std::span<const EndPoint> sinks,
                             xcvsim::DelayPs skewTarget,
                             int maxReroutes = 32);

}  // namespace jroute
