#include "core/skew.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <unordered_set>

#include "fabric/timing.h"
#include "fabric/trace.h"
#include "router/search.h"
#include "router/template_engine.h"
#include "router/template_lib.h"

namespace jroute {

using xcvsim::DelayPs;
using xcvsim::kInvalidLocalWire;
using xcvsim::kInvalidNode;
using xcvsim::NodeInfo;
using xcvsim::NodeKind;
using xcvsim::TemplateValue;

namespace {

/// Recover the addressable Pin of a sink node (logic pin or pad output).
Pin pinOf(const xcvsim::Graph& g, NodeId node) {
  const NodeInfo inf = g.info(node);
  return Pin(inf.tile, g.aliasAt(node, inf.tile));
}

/// A zero-displacement rectangle of singles ending with a move in
/// direction `endDir`, so the element that follows can continue in that
/// direction without the forbidden same-channel U-turn.
std::array<TemplateValue, 4> padLoopEndingWith(xcvsim::Dir endDir) {
  using xcvsim::Dir;
  const auto sv = [](Dir d) { return xcvsim::singleValue(d); };
  switch (endDir) {
    case Dir::East: return {sv(Dir::North), sv(Dir::West), sv(Dir::South),
                            sv(Dir::East)};
    case Dir::West: return {sv(Dir::South), sv(Dir::East), sv(Dir::North),
                            sv(Dir::West)};
    case Dir::North: return {sv(Dir::West), sv(Dir::South), sv(Dir::East),
                             sv(Dir::North)};
    case Dir::South: return {sv(Dir::East), sv(Dir::North), sv(Dir::West),
                             sv(Dir::South)};
  }
  return {};
}

/// Direction of travel a template value implies (East for the
/// direction-free values, which never follow a padding loop anyway).
xcvsim::Dir dirOfValue(TemplateValue v) {
  if (xcvsim::templateDRow(v) > 0) return xcvsim::Dir::North;
  if (xcvsim::templateDRow(v) < 0) return xcvsim::Dir::South;
  if (xcvsim::templateDCol(v) < 0) return xcvsim::Dir::West;
  return xcvsim::Dir::East;
}

/// Insert `loops` zero-displacement detours after the OUTMUX element of
/// each candidate template, oriented to flow into the base path.
std::vector<std::vector<TemplateValue>> paddedTemplates(
    const xcvsim::Graph& g, const Pin& srcPin, const Pin& sinkPin,
    int loops) {
  const bool srcIsOut =
      xcvsim::wireKind(srcPin.wire) == xcvsim::WireKind::SliceOut;
  const bool dstIsIn =
      xcvsim::wireKind(sinkPin.wire) == xcvsim::WireKind::ClbIn;
  auto base =
      templatesFor(g.device(), srcPin.rc, sinkPin.rc, srcIsOut, dstIsIn);
  std::vector<std::vector<TemplateValue>> out;
  for (auto& t : base) {
    std::vector<TemplateValue> padded;
    size_t insertAt = 0;
    if (!t.empty() && t[0] == TemplateValue::OUTMUX) {
      padded.push_back(t[0]);
      insertAt = 1;
    }
    if (loops > 0) {
      // Zero-length bodies ({CLBIN} via feedback/direct PIPs) cannot be
      // padded: the dedicated PIP leaves no room for detours.
      if (insertAt >= t.size() ||
          t[insertAt] == TemplateValue::CLBIN) {
        continue;
      }
      const auto loop = padLoopEndingWith(dirOfValue(t[insertAt]));
      for (int i = 0; i < loops; ++i) {
        padded.insert(padded.end(), loop.begin(), loop.end());
      }
    }
    padded.insert(padded.end(), t.begin() + static_cast<long>(insertAt),
                  t.end());
    out.push_back(std::move(padded));
  }
  return out;
}

/// Maze-based padding fallback for congested neighbourhoods where no
/// template fits: route source -> (a free single near a perpendicular
/// waypoint) -> sink. The two-leg shape adds roughly `deficit` of wire
/// delay while staying as flexible as the maze itself.
bool detourViaWaypoint(Router& router, xcvsim::NetId net, NodeId srcNode,
                       const Pin& srcPin, const Pin& sinkPin,
                       DelayPs maxDelay) {
  auto& fabric = router.fabric();
  const auto& g = fabric.graph();
  const auto& dev = g.device();
  const NodeId sinkNode = g.nodeAt(sinkPin.rc, sinkPin.wire);

  // Both legs run on singles (~410 ps per tile), so size the waypoint
  // offset from the slowest sink's total budget: the whole detour path
  // should arrive just under maxDelay.
  constexpr DelayPs kTile = 350 + xcvsim::kPipDelayPs;
  const int baseTiles = manhattan(srcPin.rc, sinkPin.rc);
  const int budgetTiles = static_cast<int>(maxDelay / kTile);
  const int k = std::clamp((budgetTiles - baseTiles) / 2 - 1, 1, 8);
  int wpRow = sinkPin.rc.row + k;
  if (wpRow >= dev.rows) wpRow = sinkPin.rc.row - k;
  if (wpRow < 0) return false;

  // A free single track in the waypoint tile's east (or west) channel.
  NodeId way = kInvalidNode;
  for (const xcvsim::Dir d : {xcvsim::Dir::East, xcvsim::Dir::West}) {
    for (int t = 0; t < xcvsim::kSinglesPerChannel && way == kInvalidNode;
         ++t) {
      const NodeId cand = g.nodeAt(
          {static_cast<int16_t>(wpRow), sinkPin.rc.col}, xcvsim::single(d, t));
      if (cand != kInvalidNode && !fabric.isUsed(cand)) way = cand;
    }
    if (way != kInvalidNode) break;
  }
  if (way == kInvalidNode) return false;

  MazeRouter maze(g);
  RouterOptions opts = router.options();
  opts.mazeSinglesOnly = true;  // calibrated ~410 ps per tile of detour
  const NodeId leg1Starts[] = {srcNode};
  const SearchResult leg1 = maze.route(fabric, net, leg1Starts, way, opts);
  if (!leg1.found) return false;
  std::vector<NodeId> leg2Starts{srcNode};
  for (const xcvsim::EdgeId e : leg1.edges) {
    fabric.turnOn(e, net);
    leg2Starts.push_back(g.edge(e).to);
  }
  // Leg 2 grows from the detour only (not the whole tree) so the added
  // wire stays in series with the branch.
  std::vector<NodeId> fromDetour{way};
  const SearchResult leg2 =
      maze.route(fabric, net, fromDetour, sinkNode, opts);
  if (!leg2.found) {
    // Undo leg 1 and report failure; caller restores plain connectivity.
    for (auto it = leg1.edges.rbegin(); it != leg1.edges.rend(); ++it) {
      fabric.turnOff(*it);
    }
    return false;
  }
  for (const xcvsim::EdgeId e : leg2.edges) fabric.turnOn(e, net);
  // The detour must not become the new critical path: revert on overshoot.
  if (arrivalAt(fabric, sinkNode) > maxDelay) {
    for (auto it = leg2.edges.rbegin(); it != leg2.edges.rend(); ++it) {
      fabric.turnOff(*it);
    }
    for (auto it = leg1.edges.rbegin(); it != leg1.edges.rend(); ++it) {
      fabric.turnOff(*it);
    }
    return false;
  }
  return true;
}

}  // namespace

BalancedReport routeBalanced(Router& router, const EndPoint& source,
                             std::span<const EndPoint> sinks,
                             DelayPs skewTarget, int maxReroutes) {
  auto& fabric = router.fabric();
  const auto& g = fabric.graph();

  // Phase 1: ordinary greedy fanout route.
  router.route(source, sinks);

  const Pin srcPin = source.isPin() ? source.pin() : source.port().pins()[0];
  const NodeId srcNode = g.nodeAt(srcPin.rc, srcPin.wire);
  const xcvsim::NetId net = fabric.netOf(srcNode);

  BalancedReport report;
  xcvsim::NetTiming timing = computeNetTiming(fabric, srcNode);
  report.skewBefore = timing.skew();
  report.skewAfter = report.skewBefore;
  report.maxDelay = timing.maxDelay;

  // Delay of a candidate chain starting at the net source.
  const auto chainDelay = [&](const std::vector<xcvsim::EdgeId>& edges) {
    DelayPs d = g.nodeDelay(srcNode);
    for (const xcvsim::EdgeId e : edges) {
      d += xcvsim::kPipDelayPs + g.nodeDelay(g.edge(e).to);
    }
    return d;
  };

  // Phase 2: equalize by padding the fastest branches. For each branch we
  // measure replacement paths at growing padding depths and keep the
  // slowest chain that does not pass the slowest sink. A branch may be
  // revisited (padding is quantized), but only a few times.
  std::unordered_map<NodeId, int> attempts;
  RouterOptions opts = router.options();
  while (report.branchesRerouted < maxReroutes &&
         timing.skew() > skewTarget) {
    // Fastest sink that still has attempts left.
    const xcvsim::SinkDelay* fastest = nullptr;
    for (const auto& sd : timing.sinks) {
      if (attempts[sd.sink] >= 3) continue;
      if (!fastest || sd.delay < fastest->delay) fastest = &sd;
    }
    if (!fastest) break;  // every branch processed; skew is what it is
    ++attempts[fastest->sink];
    if (timing.maxDelay - fastest->delay <= skewTarget) continue;

    const Pin sinkPin = pinOf(g, fastest->sink);
    router.reverseUnroute(EndPoint(sinkPin));

    // Candidate replacement chains: every template decomposition (they
    // have naturally different delays — all-singles runs ~3x slower per
    // tile than hexes) at every padding depth. Keep the slowest chain
    // that still arrives no later than the slowest sink.
    std::vector<xcvsim::EdgeId> best;
    DelayPs bestDelay = -1;
    for (int loops = 0; loops <= 6; ++loops) {
      bool anyFit = false;
      for (const auto& tmpl :
           paddedTemplates(g, srcPin, sinkPin, loops)) {
        const TemplateResult res =
            followTemplate(fabric, srcNode, tmpl, fastest->sink,
                           kInvalidLocalWire, opts);
        if (!res.found) continue;
        anyFit = true;
        const DelayPs d = chainDelay(res.edges);
        if (d <= timing.maxDelay && d > bestDelay) {
          bestDelay = d;
          best = res.edges;
        }
      }
      // Stop adding loops once nothing fits or we are close enough.
      if (!anyFit && loops > 0) break;
      if (bestDelay >= 0 && timing.maxDelay - bestDelay <= skewTarget / 2) {
        break;
      }
    }
    if (!best.empty()) {
      for (const xcvsim::EdgeId e : best) fabric.turnOn(e, net);
      ++report.branchesRerouted;
    } else if (detourViaWaypoint(router, net, srcNode, srcPin, sinkPin,
                                 timing.maxDelay)) {
      ++report.branchesRerouted;
    } else {
      // Nothing fits here; restore plain connectivity and move on.
      router.route(source, EndPoint(sinkPin));
    }
    timing = computeNetTiming(fabric, srcNode);
  }

  report.skewAfter = timing.skew();
  report.maxDelay = timing.maxDelay;
  return report;
}

}  // namespace jroute
