#include "core/router.h"

#include <algorithm>
#include <string>

#include "arch/wires.h"
#include "common/error.h"
#include "lookahead/lookahead.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/path_engine.h"
#include "router/template_engine.h"
#include "router/template_lib.h"

namespace jroute {

using xcvsim::ArgumentError;
using xcvsim::ContentionError;
using xcvsim::Edge;
using xcvsim::EdgeId;
using xcvsim::Graph;
using xcvsim::kInvalidEdge;
using xcvsim::kInvalidLocalWire;
using xcvsim::kInvalidNode;
using xcvsim::NodeInfo;
using xcvsim::NodeKind;
using xcvsim::TemplateValue;
using xcvsim::TraceHop;
using xcvsim::UnroutableError;
using xcvsim::WireKind;
using xcvsim::wireKind;

namespace {

std::string pinName(const Pin& p) {
  return "R" + std::to_string(p.rc.row) + "C" + std::to_string(p.rc.col) +
         "." + xcvsim::wireName(p.wire);
}

Pin sourcePinOf(const EndPoint& ep) {
  if (ep.isPin()) return ep.pin();
  const auto& pins = ep.port().pins();
  if (pins.empty()) {
    throw ArgumentError("port '" + ep.port().name() + "' has no bound pins");
  }
  return pins.front();
}

/// Which API level resolved each call (the paper's six route levels plus
/// the unrouter), and how each auto-routed sink was satisfied. The
/// per-sink counters are the template-hit vs maze-fallback split that
/// E3 measures offline, live.
struct RouterMetrics {
  jrobs::Counter& apiPip = jrobs::registry().counter("router.api.pip");
  jrobs::Counter& apiPath = jrobs::registry().counter("router.api.path");
  jrobs::Counter& apiTemplate =
      jrobs::registry().counter("router.api.template");
  jrobs::Counter& apiP2p = jrobs::registry().counter("router.api.p2p");
  jrobs::Counter& apiFanout = jrobs::registry().counter("router.api.fanout");
  jrobs::Counter& apiBus = jrobs::registry().counter("router.api.bus");
  jrobs::Counter& apiCommitChain =
      jrobs::registry().counter("router.api.commit_chain");
  jrobs::Counter& apiUnroute =
      jrobs::registry().counter("router.api.unroute");
  jrobs::Counter& apiReverseUnroute =
      jrobs::registry().counter("router.api.reverse_unroute");
  jrobs::Counter& sinkReuse = jrobs::registry().counter("router.sink.reuse");
  jrobs::Counter& sinkTemplate =
      jrobs::registry().counter("router.sink.lib_template");
  jrobs::Counter& sinkMaze = jrobs::registry().counter("router.sink.maze");
  jrobs::Counter& shapeReuseHits =
      jrobs::registry().counter("router.bus.shape_reuse_hits");
  jrobs::Counter& failed = jrobs::registry().counter("router.routes.failed");
};

RouterMetrics& metrics() {
  static RouterMetrics m;
  return m;
}

}  // namespace

bool canDriveNet(const Graph& g, NodeId n) {
  const NodeInfo inf = g.info(n);
  if (inf.kind == NodeKind::GclkPad || inf.kind == NodeKind::Gclk ||
      inf.kind == NodeKind::IobIn || inf.kind == NodeKind::BramOut) {
    return true;
  }
  return inf.kind == NodeKind::Logic && inf.local < xcvsim::kOmuxBase;
}

Router::Router(Fabric& fabric, RouterOptions opts)
    : fabric_(&fabric), opts_(opts), maze_(fabric.graph()) {
  // Resolve the shared per-device lookahead once; every search and every
  // selector decision then reads the same immutable table.
  if (opts_.useLookahead && opts_.lookahead == nullptr) {
    opts_.lookahead = &jrla::Lookahead::forGraph(fabric.graph());
  }
}

NodeId Router::pinNode(const Pin& pin) const {
  const NodeId n = fabric_->graph().nodeAt(pin.rc, pin.wire);
  if (n == kInvalidNode) {
    throw ArgumentError("no such wire: " + pinName(pin));
  }
  return n;
}

NetId Router::netFor(NodeId srcNode) {
  if (fabric_->isUsed(srcNode)) return fabric_->netOf(srcNode);
  if (!canDriveNet(fabric_->graph(), srcNode)) {
    throw ArgumentError("wire " + fabric_->graph().nodeName(srcNode) +
                        " is not routed and cannot drive a new net");
  }
  const NetId net = fabric_->createNet(
      srcNode, "net@" + fabric_->graph().nodeName(srcNode));
  if (observer_) observer_->netCreated(net, srcNode);
  return net;
}

NetId Router::ensureNet(const EndPoint& source, std::string name) {
  const NodeId srcNode = pinNode(sourcePinOf(source));
  if (fabric_->isUsed(srcNode)) return fabric_->netOf(srcNode);
  if (!canDriveNet(fabric_->graph(), srcNode)) {
    throw ArgumentError("wire " + fabric_->graph().nodeName(srcNode) +
                        " cannot drive a net");
  }
  if (name.empty()) name = "net@" + fabric_->graph().nodeName(srcNode);
  const NetId net = fabric_->createNet(srcNode, std::move(name));
  if (observer_) observer_->netCreated(net, srcNode);
  return net;
}

void Router::turnOnChain(std::span<const EdgeId> chain, NetId net) {
  // Track which edges this call actually switched: a chain may reuse an
  // already-on edge of its own net (idempotent template reuse), and that
  // edge must survive a rollback and stay out of the journal.
  std::vector<bool> fresh(chain.size(), false);
  size_t done = 0;
  try {
    for (const EdgeId e : chain) {
      fresh[done] = !fabric_->edgeOn(e);
      fabric_->turnOn(e, net);
      ++done;
      ++stats_.pipsTurnedOn;
    }
  } catch (...) {
    // Roll back the partial chain so a failed call leaves no debris.
    while (done > 0) {
      --done;
      if (!fresh[done]) continue;
      fabric_->turnOff(chain[done]);
      ++stats_.pipsTurnedOff;
    }
    throw;
  }
  // Only a fully applied chain is durable; report it to the journal.
  if (observer_) {
    for (size_t i = 0; i < chain.size(); ++i) {
      if (fresh[i]) observer_->pipTurnedOn(chain[i], net);
    }
  }
}

void Router::commitChain(std::span<const EdgeId> chain, NetId net) {
  turnOnChain(chain, net);
  ++stats_.routesCompleted;
  metrics().apiCommitChain.add();
}

// --- Level 1: single connections ---------------------------------------------

void Router::route(int row, int col, LocalWire from, LocalWire to) {
  const Pin f(row, col, from), t(row, col, to);
  routePip(f, t);
  stats_.lastMethod = RouteMethod::DirectPip;
}

void Router::routePip(const Pin& from, const Pin& to) {
  const Graph& g = fabric_->graph();
  const NodeId u = pinNode(from);
  const NodeId v = pinNode(to);
  // The PIP lives in the switch box of a tile both wires are visible from;
  // for same-tile calls that is the named tile, for direct connects the
  // source pin's tile.
  EdgeId e = g.findEdge(u, v, from.rc);
  if (e == kInvalidEdge) e = g.findEdge(u, v);
  if (e == kInvalidEdge) {
    throw ArgumentError("no PIP connects " + pinName(from) + " to " +
                        pinName(to));
  }
  const NetId net = netFor(u);
  const bool wasOn = fabric_->edgeOn(e);
  fabric_->turnOn(e, net);
  ++stats_.pipsTurnedOn;
  ++stats_.routesCompleted;
  stats_.lastMethod = RouteMethod::DirectPip;
  metrics().apiPip.add();
  if (observer_ && !wasOn) observer_->pipTurnedOn(e, net);
}

// --- Level 2: explicit path ---------------------------------------------------

void Router::route(const Path& path) {
  const auto chain = resolvePath(fabric_->graph(), path.start(), path.wires());
  const NodeId first = fabric_->graph().edgeSource(chain.front());
  turnOnChain(chain, netFor(first));
  ++stats_.routesCompleted;
  stats_.lastMethod = RouteMethod::Path;
  metrics().apiPath.add();
}

// --- Level 3: user template ----------------------------------------------------

void Router::route(const Pin& start, LocalWire endWire, const Template& tmpl) {
  const NodeId startNode = pinNode(start);
  const NetId net = netFor(startNode);
  ++stats_.templateAttempts;
  const TemplateResult res =
      followTemplate(*fabric_, startNode, tmpl.values(), kInvalidNode,
                     endWire, opts_);
  stats_.templateVisits += res.visited;
  if (!res.found) {
    ++stats_.routesFailed;
    metrics().failed.add();
    throw UnroutableError(
        "no unused resource combination follows the template from " +
        pinName(start) + " to " + xcvsim::wireName(endWire));
  }
  ++stats_.templateHits;
  turnOnChain(res.edges, net);
  ++stats_.routesCompleted;
  stats_.lastMethod = RouteMethod::UserTemplate;
  metrics().apiTemplate.add();
}

// --- Levels 4-6: auto routing ----------------------------------------------------

std::vector<NodeId> Router::treeOf(NetId net) const {
  std::vector<NodeId> nodes{fabric_->netSource(net)};
  for (const TraceHop& hop : traceForward(*fabric_, nodes.front())) {
    nodes.push_back(hop.to);
  }
  return nodes;
}

void Router::routeSink(NetId net, NodeId srcNode, const Pin& srcPin,
                       const Pin& sinkPin, std::vector<NodeId>& treeNodes,
                       bool tryTemplates,
                       const std::vector<TemplateValue>* hint,
                       std::vector<TemplateValue>* shapeOut) {
  const Graph& g = fabric_->graph();
  const NodeId sinkNode = pinNode(sinkPin);
  if (fabric_->isUsed(sinkNode)) {
    if (fabric_->netOf(sinkNode) == net) {
      stats_.lastMethod = RouteMethod::Reuse;  // already connected
      ++stats_.routesCompleted;
      metrics().sinkReuse.add();
      return;
    }
    throw ContentionError("sink " + pinName(sinkPin) +
                              " is already in use by another net",
                          sinkNode);
  }

  const auto commit = [&](std::span<const EdgeId> chain, RouteMethod m) {
    turnOnChain(chain, net);
    for (const EdgeId e : chain) treeNodes.push_back(g.edge(e).to);
    if (shapeOut) {
      // Template-shaped routes make good hints for the next bus bit;
      // maze paths meander around congestion and rarely refit, so they
      // are not propagated.
      shapeOut->clear();
      if (m != RouteMethod::Maze) {
        for (const EdgeId e : chain) {
          shapeOut->push_back(g.templateValueOf(g.edge(e).to, g.edge(e)));
        }
      }
    }
    stats_.lastMethod = m;
    ++stats_.routesCompleted;
    (m == RouteMethod::Maze ? metrics().sinkMaze : metrics().sinkTemplate)
        .add();
  };

  // Bus regularity: try the previous bit's shape first.
  if (hint && !hint->empty()) {
    ++stats_.templateAttempts;
    const TemplateResult res = followTemplate(*fabric_, srcNode, *hint,
                                              sinkNode, kInvalidLocalWire,
                                              opts_);
    stats_.templateVisits += res.visited;
    if (res.found) {
      ++stats_.templateHits;
      ++stats_.shapeReuseHits;
      metrics().shapeReuseHits.add();
      commit(res.edges, RouteMethod::LibTemplate);
      return;
    }
  }

  if (tryTemplates) {
    // Strategy selection replaces the old fixed template-then-maze
    // ordering: the lookahead's cost bounds pick the mechanism that fits
    // the request before any search runs (legacy ordering when no
    // lookahead is resolved).
    const StrategyChoice choice =
        selectStrategy(g, srcNode, sinkNode, opts_);
    const bool srcIsOutput = wireKind(srcPin.wire) == WireKind::SliceOut;
    const bool dstIsInput = wireKind(sinkPin.wire) == WireKind::ClbIn;
    const auto tryBodies =
        [&](const std::vector<std::vector<TemplateValue>>& tmpls,
            bool longLine) {
          for (const auto& tmpl : tmpls) {
            ++stats_.templateAttempts;
            const TemplateResult res = followTemplate(
                *fabric_, srcNode, tmpl, sinkNode, kInvalidLocalWire, opts_);
            stats_.templateVisits += res.visited;
            if (res.found) {
              ++stats_.templateHits;
              if (longLine) ++stats_.longTemplateHits;
              commit(res.edges, RouteMethod::LibTemplate);
              return true;
            }
          }
          return false;
        };
    switch (choice.strategy) {
      case Strategy::kTemplate:
        ++stats_.selTemplate;
        if (tryBodies(templatesFor(g.device(), srcPin.rc, sinkPin.rc,
                                   srcIsOutput, dstIsInput),
                      /*longLine=*/false)) {
          return;
        }
        break;
      case Strategy::kLongLine:
        ++stats_.selLongLine;
        if (tryBodies(longTemplatesFor(g.device(), srcPin.rc, sinkPin.rc,
                                       srcIsOutput, dstIsInput),
                      /*longLine=*/true)) {
          return;
        }
        break;
      case Strategy::kMaze:
        ++stats_.selMaze;
        break;
    }
  }

  ++stats_.mazeRuns;
  const SearchResult res =
      maze_.route(*fabric_, net, treeNodes, sinkNode, opts_);
  stats_.mazeVisits += res.visited;
  if (!res.found) {
    ++stats_.routesFailed;
    metrics().failed.add();
    throw UnroutableError("auto route failed: " + pinName(srcPin) + " -> " +
                          pinName(sinkPin));
  }
  commit(res.edges, RouteMethod::Maze);
}

void Router::recordConnection(const EndPoint& source,
                              std::span<const EndPoint> sinks) {
  if (!recording_) return;
  bool hasPort = source.isPort();
  for (const EndPoint& s : sinks) hasPort = hasPort || s.isPort();
  if (!hasPort) return;
  connections_.push_back({source, {sinks.begin(), sinks.end()}});
}

void Router::route(const EndPoint& source, const EndPoint& sink) {
  JR_TRACE_SCOPE("router", "p2p");
  metrics().apiP2p.add();
  routeAuto(source, std::span<const EndPoint>(&sink, 1));
}

void Router::route(const EndPoint& source, std::span<const EndPoint> sinks) {
  JR_TRACE_SCOPE("router", "fanout");
  metrics().apiFanout.add();
  routeAuto(source, sinks);
}

void Router::routeAuto(const EndPoint& source,
                       std::span<const EndPoint> sinks) {
  const Pin srcPin = sourcePinOf(source);
  const NodeId srcNode = pinNode(srcPin);
  const NetId net = netFor(srcNode);

  // Expand ports into pins, then route in order of increasing distance
  // from the source, reusing the growing tree ("Each sink gets routed in
  // order of increasing distance from the source. For each sink, the
  // router attempts to reuse the previous paths as much as possible.")
  std::vector<Pin> sinkPins;
  for (const EndPoint& ep : sinks) {
    for (const Pin& p : ep.resolve()) sinkPins.push_back(p);
  }
  if (sinkPins.empty()) {
    throw ArgumentError("route: no sink pins to route to");
  }
  std::stable_sort(sinkPins.begin(), sinkPins.end(),
                   [&](const Pin& a, const Pin& b) {
                     return manhattan(srcPin.rc, a.rc) <
                            manhattan(srcPin.rc, b.rc);
                   });

  std::vector<NodeId> treeNodes = treeOf(net);
  bool first = treeNodes.size() == 1;
  for (const Pin& sp : sinkPins) {
    // Templates shine on fresh point-to-point connections; once a tree
    // exists, tree-reusing maze search is the better (and cheaper) tool.
    routeSink(net, srcNode, srcPin, sp, treeNodes, first, nullptr, nullptr);
    first = false;
  }
  recordConnection(source, sinks);
}

void Router::route(std::span<const EndPoint> sources,
                   std::span<const EndPoint> sinks) {
  routeBusImpl(sources, sinks, /*lenient=*/false);
}

int Router::tryRouteBus(std::span<const EndPoint> sources,
                        std::span<const EndPoint> sinks) {
  return routeBusImpl(sources, sinks, /*lenient=*/true);
}

int Router::routeBusImpl(std::span<const EndPoint> sources,
                         std::span<const EndPoint> sinks, bool lenient) {
  JR_TRACE_SCOPE("router", "bus");
  metrics().apiBus.add();
  if (sources.size() != sinks.size()) {
    throw ArgumentError("bus route: " + std::to_string(sources.size()) +
                        " sources vs " + std::to_string(sinks.size()) +
                        " sinks");
  }
  int failed = 0;
  std::vector<TemplateValue> shape, nextShape;
  for (size_t i = 0; i < sources.size(); ++i) {
    const Pin srcPin = sourcePinOf(sources[i]);
    const NodeId srcNode = pinNode(srcPin);
    const NetId net = netFor(srcNode);
    std::vector<NodeId> treeNodes = treeOf(net);
    const auto sinkPins = sinks[i].resolve();
    if (sinkPins.empty()) {
      throw ArgumentError("bus route: sink " + std::to_string(i) +
                          " has no pins");
    }
    bool first = treeNodes.size() == 1;
    bool bitOk = true;
    for (const Pin& sp : sinkPins) {
      try {
        routeSink(net, srcNode, srcPin, sp, treeNodes, first,
                  shape.empty() ? nullptr : &shape,
                  first ? &nextShape : nullptr);
      } catch (const UnroutableError&) {
        if (!lenient) throw;
        bitOk = false;
        ++failed;
        break;
      }
      first = false;
    }
    if (bitOk) {
      shape = nextShape;  // regularity: reuse this bit's shape for the next
      recordConnection(sources[i], sinks.subspan(i, 1));
    }
  }
  return failed;
}

// --- Unrouter -------------------------------------------------------------------

void Router::unroute(const EndPoint& source) {
  metrics().apiUnroute.add();
  const Pin srcPin = sourcePinOf(source);
  const NodeId node = pinNode(srcPin);
  if (!fabric_->isUsed(node)) {
    throw ArgumentError("unroute: " + pinName(srcPin) + " is not routed");
  }
  const NetId net = fabric_->netOf(node);
  const auto hops = traceForward(*fabric_, node);
  // Leaf-side first keeps the fabric consistent at every step.
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    fabric_->turnOff(it->edge);
    ++stats_.pipsTurnedOff;
  }
  if (fabric_->netSource(net) == node) {
    fabric_->removeNet(net);
  }
}

void Router::reverseUnroute(const EndPoint& sink) {
  metrics().apiReverseUnroute.add();
  const Pin sinkPin = sourcePinOf(sink);
  NodeId node = pinNode(sinkPin);
  if (!fabric_->isUsed(node)) {
    throw ArgumentError("reverseUnroute: " + pinName(sinkPin) +
                        " is not routed");
  }
  if (fabric_->onOutCount(node) != 0) {
    throw ArgumentError("reverseUnroute: " + pinName(sinkPin) +
                        " is not a sink (it drives other wires)");
  }
  const NetId net = fabric_->netOf(node);
  while (true) {
    const EdgeId e = fabric_->driverOf(node);
    if (e == kInvalidEdge) break;  // reached the net source
    const NodeId up = fabric_->graph().edgeSource(e);
    fabric_->turnOff(e);
    ++stats_.pipsTurnedOff;
    // "It stops there because only the branch to the given sink is to be
    // unrouted": stop at the first segment still driving other branches
    // and at the source.
    if (up == fabric_->netSource(net) || fabric_->onOutCount(up) != 0) break;
    node = up;
  }
}

// --- Contention -------------------------------------------------------------------

bool Router::isOn(int row, int col, LocalWire wire) const {
  return fabric_->isUsed(pinNode(Pin(row, col, wire)));
}

// --- Debug ------------------------------------------------------------------------

NetTrace Router::trace(const EndPoint& source) const {
  const NodeId node = pinNode(sourcePinOf(source));
  NetTrace t;
  t.source = node;
  t.hops = traceForward(*fabric_, node);
  t.sinks = netSinks(*fabric_, node);
  return t;
}

std::vector<TraceHop> Router::reverseTrace(const EndPoint& sink) const {
  return traceBack(*fabric_, pinNode(sourcePinOf(sink)));
}

// --- RTR reconnection ----------------------------------------------------------------

void Router::rerouteConnectionsOf(const Port& port) {
  const auto touches = [&](const Connection& c) {
    if (c.source.isPort() && &c.source.port() == &port) return true;
    for (const EndPoint& s : c.sinks) {
      if (s.isPort() && &s.port() == &port) return true;
    }
    return false;
  };
  recording_ = false;
  try {
    for (const Connection& c : connections_) {
      if (touches(c)) route(c.source, std::span<const EndPoint>(c.sinks));
    }
  } catch (...) {
    recording_ = true;
    throw;
  }
  recording_ = true;
}

}  // namespace jroute
