// Pins, Ports, and EndPoints — the addressing vocabulary of the JRoute API.
//
// "An EndPoint is either a Pin, defined by a row, column, and wire, or a
// Port... To the user there is no distinction between a physical pin,
// defined as location and wire, and a logical port as they are both
// derived from the EndPoint class." (sections 3.1-3.2)
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace jroute {

using xcvsim::LocalWire;
using xcvsim::RowCol;

/// A physical pin: a wire at a specific row and column.
struct Pin {
  RowCol rc;
  LocalWire wire = xcvsim::kInvalidLocalWire;

  Pin() = default;
  Pin(int row, int col, LocalWire w)
      : rc{static_cast<int16_t>(row), static_cast<int16_t>(col)}, wire(w) {}
  Pin(RowCol loc, LocalWire w) : rc(loc), wire(w) {}

  friend bool operator==(const Pin&, const Pin&) = default;
};

/// Whether a port is a signal producer or consumer for its core.
enum class PortDir : uint8_t { Output, Input };

/// A port: a virtual pin providing an input or output point to a core.
/// Cores bind ports to their internal physical pins; the router translates
/// a port to its pin list when it encounters one. Ports carry their group
/// name (every port must be in a group, section 3.2).
class Port {
 public:
  Port(std::string name, PortDir dir, std::string group)
      : name_(std::move(name)), dir_(dir), group_(std::move(group)) {}

  const std::string& name() const { return name_; }
  PortDir dir() const { return dir_; }
  const std::string& group() const { return group_; }

  /// Bind an internal pin. Output ports bind exactly one driving pin;
  /// input ports may bind several sinks.
  void bindPin(Pin pin) { pins_.push_back(pin); }
  void clearPins() { pins_.clear(); }
  const std::vector<Pin>& pins() const { return pins_; }

  /// Relocate all bound pins by a tile offset (core relocation support).
  void relocate(int dRow, int dCol) {
    for (Pin& p : pins_) {
      p.rc.row = static_cast<int16_t>(p.rc.row + dRow);
      p.rc.col = static_cast<int16_t>(p.rc.col + dCol);
    }
  }

 private:
  std::string name_;
  PortDir dir_;
  std::string group_;
  std::vector<Pin> pins_;
};

/// Either a Pin or a Port. Ports are referenced, not owned: the core that
/// defined the port keeps it alive for as long as routes mention it.
class EndPoint {
 public:
  EndPoint() = default;
  EndPoint(Pin pin) : pin_(pin) {}  // NOLINT: implicit by design, like the paper
  EndPoint(Port& port) : port_(&port) {}  // NOLINT

  bool isPin() const { return port_ == nullptr; }
  bool isPort() const { return port_ != nullptr; }

  const Pin& pin() const { return pin_; }
  Port& port() const { return *port_; }

  /// The physical pins this endpoint stands for: itself for a Pin, the
  /// bound pin list for a Port.
  std::vector<Pin> resolve() const {
    if (isPin()) return {pin_};
    return port_->pins();
  }

  friend bool operator==(const EndPoint& a, const EndPoint& b) {
    return a.port_ == b.port_ && (a.port_ != nullptr || a.pin_ == b.pin_);
  }

 private:
  Pin pin_{};
  Port* port_ = nullptr;
};

}  // namespace jroute
