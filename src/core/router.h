// The JRoute API.
//
// All six routing calls of section 3.1 (single PIP, explicit path,
// template-guided, auto point-to-point, auto fanout, bus), the unrouter of
// section 3.3 (forward and reverse), the contention query of section 3.4
// (isOn), and the debug traces of section 3.5. Ports (section 3.2) are
// accepted anywhere an EndPoint is: the router translates them to their
// bound pin lists and remembers every port-involving connection so cores
// can be replaced at run time and reconnected automatically.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/endpoint.h"
#include "core/path.h"
#include "fabric/fabric.h"
#include "fabric/trace.h"
#include "router/options.h"
#include "router/search.h"

namespace jroute {

using xcvsim::Fabric;
using xcvsim::NetId;
using xcvsim::NodeId;

/// Result of trace(): the entire net reachable from a source.
struct NetTrace {
  NodeId source = xcvsim::kInvalidNode;
  std::vector<xcvsim::TraceHop> hops;
  std::vector<NodeId> sinks;
};

class Router {
 public:
  explicit Router(Fabric& fabric, RouterOptions opts = {});

  // --- Levels of control (section 3.1) --------------------------------------

  /// Turn on the connection between `from` and `to` in CLB (row, col).
  void route(int row, int col, LocalWire from, LocalWire to);

  /// Single PIP between two pins; also covers the dedicated direct
  /// connects, whose endpoints live in adjacent tiles.
  void routePip(const Pin& from, const Pin& to);

  /// Turn on all connections named by an explicit path.
  void route(const Path& path);

  /// Follow a template from `start`; the walk must end on a wire named
  /// `endWire` (at whatever tile the template reaches).
  void route(const Pin& start, LocalWire endWire, const Template& tmpl);

  /// Auto-route source to sink (predefined templates first, maze
  /// fallback). Ports resolve to their pin lists.
  void route(const EndPoint& source, const EndPoint& sink);

  /// Auto-route a source to several sinks, nearest first, reusing the
  /// already-routed tree for each subsequent sink.
  void route(const EndPoint& source, std::span<const EndPoint> sinks);

  /// Bus routing: sources[i] -> sinks[i], reusing the successful shape of
  /// the previous bit as a template for the next (regular designs route
  /// regularly). Throws on the first unroutable bit; bits already routed
  /// stay routed.
  void route(std::span<const EndPoint> sources,
             std::span<const EndPoint> sinks);

  /// Lenient bus routing: unroutable bits are skipped instead of throwing.
  /// Returns the number of bits that could not be routed.
  int tryRouteBus(std::span<const EndPoint> sources,
                  std::span<const EndPoint> sinks);

  // --- Unrouter (section 3.3) ------------------------------------------------

  /// Forward unroute: free the entire net driven from `source`.
  void unroute(const EndPoint& source);

  /// Reverse unroute: free only the branch feeding `sink`, stopping at the
  /// first segment that still drives other branches.
  void reverseUnroute(const EndPoint& sink);

  // --- Contention (section 3.4) ----------------------------------------------

  /// Is the wire in CLB (row, col) currently in use?
  bool isOn(int row, int col, LocalWire wire) const;

  // --- Debug (section 3.5) ----------------------------------------------------

  /// Trace a source to all of its sinks; the entire net is returned.
  NetTrace trace(const EndPoint& source) const;

  /// Trace a sink back to its source; only that branch is returned.
  std::vector<xcvsim::TraceHop> reverseTrace(const EndPoint& sink) const;

  // --- Port-connection memory (sections 3.2-3.3) -------------------------------

  struct Connection {
    EndPoint source;
    std::vector<EndPoint> sinks;
  };

  /// Every port-involving connection made through this router.
  const std::vector<Connection>& connections() const { return connections_; }

  /// Re-execute every remembered connection that touches `port` (after a
  /// core replace/relocate has re-bound the port's pins).
  void rerouteConnectionsOf(const Port& port);

  // --- Infrastructure -----------------------------------------------------------

  Fabric& fabric() { return *fabric_; }
  const Fabric& fabric() const { return *fabric_; }
  RouterOptions& options() { return opts_; }
  const RouteStats& stats() const { return stats_; }
  void resetStats() { stats_ = RouteStats{}; }

 private:
  /// Resolve a pin to its RRG node; throws ArgumentError for bad names.
  NodeId pinNode(const Pin& pin) const;
  /// Net owning `srcNode`, created on first use for driver-capable pins.
  NetId netFor(NodeId srcNode);
  void turnOnChain(std::span<const EdgeId> chain, NetId net);
  /// Route one sink of a net; `treeNodes` is the current net tree.
  void routeSink(NetId net, NodeId srcNode, const Pin& srcPin,
                 const Pin& sinkPin, std::vector<NodeId>& treeNodes,
                 bool tryTemplates,
                 const std::vector<xcvsim::TemplateValue>* hint,
                 std::vector<xcvsim::TemplateValue>* shapeOut);
  void recordConnection(const EndPoint& source,
                        std::span<const EndPoint> sinks);
  std::vector<NodeId> treeOf(NetId net) const;
  int routeBusImpl(std::span<const EndPoint> sources,
                   std::span<const EndPoint> sinks, bool lenient);

  Fabric* fabric_;
  RouterOptions opts_;
  MazeRouter maze_;
  RouteStats stats_;
  std::vector<Connection> connections_;
  bool recording_ = true;
};

}  // namespace jroute
