// The JRoute API.
//
// All six routing calls of section 3.1 (single PIP, explicit path,
// template-guided, auto point-to-point, auto fanout, bus), the unrouter of
// section 3.3 (forward and reverse), the contention query of section 3.4
// (isOn), and the debug traces of section 3.5. Ports (section 3.2) are
// accepted anywhere an EndPoint is: the router translates them to their
// bound pin lists and remembers every port-involving connection so cores
// can be replaced at run time and reconnected automatically.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/endpoint.h"
#include "core/path.h"
#include "fabric/fabric.h"
#include "fabric/trace.h"
#include "router/options.h"
#include "router/search.h"

namespace jroute {

using xcvsim::Fabric;
using xcvsim::NetId;
using xcvsim::NodeId;

/// Result of trace(): the entire net reachable from a source.
struct NetTrace {
  NodeId source = xcvsim::kInvalidNode;
  std::vector<xcvsim::TraceHop> hops;
  std::vector<NodeId> sinks;
};

/// Journal of the net effects a Router applies to the fabric. The
/// transactional layer (service/txn.h) installs one to capture everything
/// a staged route did, so a failed multi-sink call can be rolled back to a
/// bit-identical fabric. Only *durable* effects are reported: a partial
/// chain that the router itself rolled back mid-call never reaches the
/// observer.
class RouteObserver {
 public:
  virtual ~RouteObserver() = default;
  /// A net was created on behalf of a routing call.
  virtual void netCreated(NetId net, NodeId source) = 0;
  /// A PIP was durably turned on as part of `net`.
  virtual void pipTurnedOn(xcvsim::EdgeId e, NetId net) = 0;
};

/// May this node originate a net (slice output, global clock source, I/O
/// pad input buffer, or BRAM data output)? Shared by the router's netFor
/// and the service planner's plan-time validation.
bool canDriveNet(const xcvsim::Graph& g, NodeId n);

class Router {
 public:
  explicit Router(Fabric& fabric, RouterOptions opts = {});

  // --- Levels of control (section 3.1) --------------------------------------

  /// Turn on the connection between `from` and `to` in CLB (row, col).
  void route(int row, int col, LocalWire from, LocalWire to);

  /// Single PIP between two pins; also covers the dedicated direct
  /// connects, whose endpoints live in adjacent tiles.
  void routePip(const Pin& from, const Pin& to);

  /// Turn on all connections named by an explicit path.
  void route(const Path& path);

  /// Follow a template from `start`; the walk must end on a wire named
  /// `endWire` (at whatever tile the template reaches).
  void route(const Pin& start, LocalWire endWire, const Template& tmpl);

  /// Auto-route source to sink (predefined templates first, maze
  /// fallback). Ports resolve to their pin lists.
  void route(const EndPoint& source, const EndPoint& sink);

  /// Auto-route a source to several sinks, nearest first, reusing the
  /// already-routed tree for each subsequent sink.
  void route(const EndPoint& source, std::span<const EndPoint> sinks);

  /// Bus routing: sources[i] -> sinks[i], reusing the successful shape of
  /// the previous bit as a template for the next (regular designs route
  /// regularly). Throws on the first unroutable bit; bits already routed
  /// stay routed.
  void route(std::span<const EndPoint> sources,
             std::span<const EndPoint> sinks);

  /// Lenient bus routing: unroutable bits are skipped instead of throwing.
  /// Returns the number of bits that could not be routed.
  int tryRouteBus(std::span<const EndPoint> sources,
                  std::span<const EndPoint> sinks);

  /// Turn on a pre-planned edge chain as part of `net`, with the same
  /// rollback-on-failure and journaling as the built-in engines. This is
  /// the commit path of the routing service: plans computed concurrently
  /// against a frozen fabric are applied here, serially.
  void commitChain(std::span<const EdgeId> chain, NetId net);

  // --- Unrouter (section 3.3) ------------------------------------------------

  /// Forward unroute: free the entire net driven from `source`.
  void unroute(const EndPoint& source);

  /// Reverse unroute: free only the branch feeding `sink`, stopping at the
  /// first segment that still drives other branches.
  void reverseUnroute(const EndPoint& sink);

  // --- Contention (section 3.4) ----------------------------------------------

  /// Is the wire in CLB (row, col) currently in use?
  bool isOn(int row, int col, LocalWire wire) const;

  // --- Debug (section 3.5) ----------------------------------------------------

  /// Trace a source to all of its sinks; the entire net is returned.
  NetTrace trace(const EndPoint& source) const;

  /// Trace a sink back to its source; only that branch is returned.
  std::vector<xcvsim::TraceHop> reverseTrace(const EndPoint& sink) const;

  // --- Port-connection memory (sections 3.2-3.3) -------------------------------

  struct Connection {
    EndPoint source;
    std::vector<EndPoint> sinks;
  };

  /// Every port-involving connection made through this router.
  const std::vector<Connection>& connections() const { return connections_; }
  size_t connectionCount() const { return connections_.size(); }

  /// Drop every connection remembered after `mark` (a prior
  /// connectionCount()). The transactional layer journals the count at
  /// txn open and restores it on rollback, so a rolled-back port route
  /// leaves no remembered connection behind. No-op when `mark` is not
  /// smaller than the current count.
  void truncateConnections(size_t mark) {
    if (mark < connections_.size()) connections_.resize(mark);
  }

  /// Re-execute every remembered connection that touches `port` (after a
  /// core replace/relocate has re-bound the port's pins).
  void rerouteConnectionsOf(const Port& port);

  /// Remember a port connection that was routed outside this router (e.g.
  /// through a routing-service session) so reconfigure/relocate can
  /// restore it. No-op unless an endpoint involves a port.
  void rememberConnection(const EndPoint& source, const EndPoint& sink) {
    recordConnection(source, std::span<const EndPoint>(&sink, 1));
  }

  // --- Infrastructure -----------------------------------------------------------

  /// Net driving `source`, created (and reported to the observer) when the
  /// source is not routed yet. Lets callers supply the net id and name
  /// externally — the routing service tags nets with their owning session.
  NetId ensureNet(const EndPoint& source, std::string name = {});

  /// Install a journaling observer; returns the previous one (restore it
  /// when done). Pass nullptr to detach.
  RouteObserver* setObserver(RouteObserver* obs) {
    RouteObserver* prev = observer_;
    observer_ = obs;
    return prev;
  }

  Fabric& fabric() { return *fabric_; }
  const Fabric& fabric() const { return *fabric_; }
  RouterOptions& options() { return opts_; }
  const RouteStats& stats() const { return stats_; }
  void resetStats() { stats_ = RouteStats{}; }

 private:
  /// Resolve a pin to its RRG node; throws ArgumentError for bad names.
  NodeId pinNode(const Pin& pin) const;
  /// Net owning `srcNode`, created on first use for driver-capable pins.
  NetId netFor(NodeId srcNode);
  void turnOnChain(std::span<const EdgeId> chain, NetId net);
  /// Route one sink of a net; `treeNodes` is the current net tree.
  void routeSink(NetId net, NodeId srcNode, const Pin& srcPin,
                 const Pin& sinkPin, std::vector<NodeId>& treeNodes,
                 bool tryTemplates,
                 const std::vector<xcvsim::TemplateValue>* hint,
                 std::vector<xcvsim::TemplateValue>* shapeOut);
  void recordConnection(const EndPoint& source,
                        std::span<const EndPoint> sinks);
  /// Shared body of the auto p2p and fanout calls (levels 4-5); the
  /// public overloads only differ in which API-level telemetry counter
  /// they bump.
  void routeAuto(const EndPoint& source, std::span<const EndPoint> sinks);
  std::vector<NodeId> treeOf(NetId net) const;
  int routeBusImpl(std::span<const EndPoint> sources,
                   std::span<const EndPoint> sinks, bool lenient);

  Fabric* fabric_;
  RouterOptions opts_;
  MazeRouter maze_;
  RouteStats stats_;
  std::vector<Connection> connections_;
  RouteObserver* observer_ = nullptr;
  bool recording_ = true;
};

}  // namespace jroute
