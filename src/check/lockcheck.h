// jrcheck: a run-time concurrency checker for the annotated lock layer.
//
// The clang -Wthread-safety pass (scripts/lint.sh) proves *which* mutex
// guards which data, but it says nothing about lock *ordering*: two
// protocols that are each internally consistent can still deadlock when
// composed, and the inversion only fires under a scheduler unlucky enough
// to interleave the two acquisition chains. This module closes that gap
// the way jrverify closed the model gap: mechanically, and without
// needing the failure to occur. Every jrsync::Mutex is a named,
// registry-backed lock; when the checker is armed it records the
// per-thread acquisition-order graph (an edge u -> v whenever a thread
// holding u blocks on v) and reports any cycle as a potential deadlock —
// a deterministic Finding{rule, thread, cycle, stacks-lite} — even if the
// two halves of the inversion were observed minutes apart on different
// threads. Two cheaper liveness rules ride along: re-acquiring a held
// non-recursive mutex, and releasing a mutex the thread does not hold.
//
// The checker doubles as a schedule perturbator: armed with
// `Options{perturb = true}`, it injects PCT-style randomized yields and
// short sleeps at acquisition points, driven by a per-thread
// xcvsim-deterministic RNG derived from one seed, so the TSAN tier-1 pass
// explores interleavings the host scheduler would never produce — and any
// failure names the seed for replay.
//
// Arming: programmatic (arm()/ScopedChecker for tests) or via the
// environment (JROUTE_LOCKCHECK=1 or =perturb, JROUTE_LOCKCHECK_SEED=n;
// picked up by maybeArmFromEnv(), which the routing service, jrsh, and
// the benches call at startup). Env-armed processes install an exit hook
// that fails the process if any finding was recorded, which is what the
// tier-1 lockcheck gate leans on. Disarmed, the whole subsystem costs
// one relaxed load per lock operation (see common/sync.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace jrcheck {

/// One potential-deadlock (or lock-misuse) observation. Deterministic for
/// a deterministic event sequence; deduplicated by rule + cycle.
struct Finding {
  std::string rule;    ///< id of the rule that fired
  uint32_t thread = 0; ///< small per-thread tag of the observing thread
  /// Lock names walking the cycle, first repeated last for the order
  /// rule ("a -> b -> a"); the single lock involved otherwise.
  std::vector<std::string> cycle;
  /// Stacks-lite: one "thread T held [..] acquiring X" line per edge
  /// witness in the cycle (the order rule), or for the offending op.
  std::vector<std::string> stacks;
  std::string message;
};

/// Catalogue entry; tests/lockcheck_test.cpp proves every rule can fire.
struct RuleInfo {
  const char* id;
  const char* description;
};

/// The rule catalogue, in report order.
const std::vector<RuleInfo>& allRules();

/// Cheap counters for telemetry (service.lockcheck.* gauges).
struct CheckStats {
  uint64_t acquires = 0;       ///< instrumented acquisitions observed
  uint64_t orderEdges = 0;     ///< distinct acquisition-order edges
  uint64_t perturbations = 0;  ///< yields + sleeps injected
  uint64_t findings = 0;
  uint64_t locksRegistered = 0;  ///< process-wide named-lock registry size
};

/// Deterministic result of one checking session.
struct LockCheckReport {
  bool armed = false;
  bool perturb = false;
  uint64_t seed = 0;
  CheckStats stats;
  std::vector<std::string> locks;  ///< registered lock names, slot order
  /// Observed acquisition-order edges as (held, acquired) name pairs,
  /// deduplicated and sorted.
  std::vector<std::pair<std::string, std::string>> order;
  std::vector<Finding> findings;  ///< sorted by (rule, cycle, thread)

  bool clean() const { return findings.empty(); }
  bool firedRule(std::string_view id) const;

  /// Human-readable multi-line report (jrsh `lockcheck`).
  std::string summary() const;
  /// Machine-readable single-object JSON (jrsh `lockcheck json`).
  std::string json() const;
};

struct Options {
  uint64_t seed = 1;     ///< perturbation seed; echoed in every report
  bool perturb = false;  ///< inject randomized yields/sleeps at lock points
};

/// What the perturbator decided at an acquisition point. The hook layer
/// performs the action *outside* the checker's own lock.
enum class PerturbAction : uint8_t { kNone, kYield, kSleep };

/// One checking session: the acquisition-order graph, per-thread held
/// stacks, findings. Instrumentation feeds the active checker (see
/// activeChecker()); liveness tests drive the note* API directly with
/// synthetic thread tags and registry slots.
class Checker {
 public:
  Checker();
  ~Checker();
  Checker(const Checker&) = delete;
  Checker& operator=(const Checker&) = delete;

  void arm(Options opts = {});
  void disarm();
  bool armed() const;
  Options options() const;

  /// Thread `thread` is about to block on `slot`. Records wait-for edges
  /// from every lock the thread holds, runs the cycle check, and returns
  /// the perturbation decision for this point.
  PerturbAction noteAcquiring(uint32_t thread, uint32_t slot);
  /// Thread `thread` now holds `slot`.
  void noteAcquired(uint32_t thread, uint32_t slot);
  /// Thread `thread` released `slot`.
  void noteReleased(uint32_t thread, uint32_t slot);

  LockCheckReport report() const;
  CheckStats statsSnapshot() const;
  /// Drop findings, edges, and held stacks (not the arming state).
  void clear();

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global checker (what env arming and jrsh drive).
Checker& globalChecker();

/// The checker instrumentation currently reports into; the global one
/// unless a ScopedChecker is installed.
Checker& activeChecker();

/// RAII redirect of all instrumentation into a private, armed checker —
/// the mutation harness (tests) seeds inversions without polluting the
/// global report the tier-1 gate asserts on.
class ScopedChecker {
 public:
  explicit ScopedChecker(Options opts = {});
  ~ScopedChecker();
  ScopedChecker(const ScopedChecker&) = delete;
  ScopedChecker& operator=(const ScopedChecker&) = delete;

  Checker& checker() { return mine_; }

 private:
  Checker mine_;
  Checker* prev_;
};

/// Arm the global checker (and refresh the fast-path flag).
void arm(Options opts = {});
void disarm();

/// Arm from JROUTE_LOCKCHECK (=1 plain, =perturb with schedule
/// perturbation) and JROUTE_LOCKCHECK_SEED. Idempotent; installs an exit
/// hook that prints the report and fails the process on any finding, so
/// `JROUTE_LOCKCHECK=1 ctest -R Service` *is* the deadlock-freedom gate.
void maybeArmFromEnv();

/// Small dense tag for the calling thread (stable for its lifetime).
uint32_t currentThreadTag();

/// Register a synthetic named lock and return its slot (tests; real
/// mutexes self-register on first armed acquisition).
uint32_t registerLock(const char* name);

/// Name behind a registry slot ("?" when out of range).
std::string lockName(uint32_t slot);

/// Registry slot of a mutex, assigning one on first sight. The registry
/// is shared by every armed consumer of the named-lock layer — jrcheck
/// itself and the jrprof contention profiler (src/obs/prof.h) — so a
/// mutex keeps one identity across checker and profiler reports.
uint32_t slotOf(jrsync::Mutex& mu);

/// Number of registered named locks (highest assigned slot).
uint32_t lockCount();

}  // namespace jrcheck
