#include "check/lockcheck.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace jrcheck {

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

/// Process-wide named-lock registry. Leaked on purpose: instrumented
/// threads may lock during static destruction and their slots must keep
/// resolving to names. Slot 0 is reserved for "unregistered".
struct Registry {
  std::mutex mu;
  std::vector<std::string> names{"<none>"};
};

Registry& lockRegistry() {
  static Registry* r = new Registry();
  return *r;
}

/// Resolve (and on first sight assign) the registry slot of a mutex.
uint32_t slotFor(jrsync::Mutex& mu) {
  uint32_t s = mu.checkSlot().load(std::memory_order_acquire);
  if (s != 0) return s;
  Registry& reg = lockRegistry();
  std::lock_guard lk(reg.mu);
  s = mu.checkSlot().load(std::memory_order_relaxed);
  if (s == 0) {
    reg.names.emplace_back(mu.name());
    s = static_cast<uint32_t>(reg.names.size() - 1);
    mu.checkSlot().store(s, std::memory_order_release);
  }
  return s;
}

size_t registrySize() {
  Registry& reg = lockRegistry();
  std::lock_guard lk(reg.mu);
  return reg.names.size() - 1;  // slot 0 is the reserved sentinel
}

std::vector<std::string> registryNames() {
  Registry& reg = lockRegistry();
  std::lock_guard lk(reg.mu);
  return {reg.names.begin() + 1, reg.names.end()};
}

}  // namespace

const std::vector<RuleInfo>& allRules() {
  static const std::vector<RuleInfo> kRules = {
      {"lock-order-inversion",
       "two locks are acquired in opposite orders on some pair of "
       "observations (a cycle in the acquisition-order graph): a potential "
       "deadlock, reported without one having to fire"},
      {"lock-recursion",
       "a thread re-acquires a non-recursive mutex it already holds "
       "(guaranteed self-deadlock or UB)"},
      {"release-not-held",
       "a mutex is released by a thread that does not hold it (UB on "
       "std::mutex)"},
  };
  return kRules;
}

uint32_t registerLock(const char* name) {
  Registry& reg = lockRegistry();
  std::lock_guard lk(reg.mu);
  reg.names.emplace_back(name);
  return static_cast<uint32_t>(reg.names.size() - 1);
}

std::string lockName(uint32_t slot) {
  Registry& reg = lockRegistry();
  std::lock_guard lk(reg.mu);
  if (slot >= reg.names.size()) return "?";
  return reg.names[slot];
}

uint32_t slotOf(jrsync::Mutex& mu) { return slotFor(mu); }

uint32_t lockCount() { return static_cast<uint32_t>(registrySize()); }

uint32_t currentThreadTag() {
  static std::atomic<uint32_t> nextTag{1};
  thread_local uint32_t tag = nextTag.fetch_add(1);
  return tag;
}

// --- Checker ---------------------------------------------------------------------

struct Checker::Impl {
  /// One wait-for edge `held -> acquired` with the observation that
  /// created it. The checker's own lock is a raw std::mutex — it must
  /// never feed the instrumentation it implements.
  struct Witness {
    uint32_t thread = 0;
    std::string stack;  // "thread 3 held [a, b] acquiring c"
  };
  struct ThreadState {
    std::vector<uint32_t> held;
    xcvsim::Rng rng{0};
    bool rngInit = false;
  };

  mutable std::mutex mu;
  bool armed = false;
  Options opts;
  std::map<uint32_t, ThreadState> threads;
  std::map<std::pair<uint32_t, uint32_t>, Witness> edges;
  std::vector<Finding> findings;
  std::set<std::string> findingKeys;
  uint64_t acquires = 0;
  uint64_t perturbs = 0;

  std::string describe(uint32_t thread, const std::vector<uint32_t>& held,
                       uint32_t acquiring) const {
    std::string s = "thread " + std::to_string(thread) + " held [";
    for (size_t i = 0; i < held.size(); ++i) {
      if (i > 0) s += ", ";
      s += lockName(held[i]);
    }
    s += "] acquiring " + lockName(acquiring);
    return s;
  }

  /// DFS: is `goal` reachable from `from` over recorded edges? Fills
  /// `path` with the slot sequence from .. goal when it is.
  bool reaches(uint32_t from, uint32_t goal, std::set<uint32_t>& seen,
               std::vector<uint32_t>& path) const {
    path.push_back(from);
    if (from == goal) return true;
    seen.insert(from);
    for (const auto& [edge, w] : edges) {
      if (edge.first != from || seen.count(edge.second) != 0) continue;
      if (reaches(edge.second, goal, seen, path)) return true;
    }
    path.pop_back();
    return false;
  }

  void addFinding(Finding f, const std::string& key) {
    if (!findingKeys.insert(key).second) return;
    findings.push_back(std::move(f));
  }

  /// New edge u -> v just landed; a path v ->* u closes a cycle.
  void checkCycle(uint32_t thread, uint32_t u, uint32_t v) {
    std::set<uint32_t> seen;
    std::vector<uint32_t> path;
    if (!reaches(v, u, seen, path)) return;
    // Cycle as slots: u, v, ..., u (path runs v..u).
    std::vector<uint32_t> cycle;
    cycle.push_back(u);
    cycle.insert(cycle.end(), path.begin(), path.end());
    // Canonical key: rotate the body (without the closing repeat) so the
    // smallest slot leads — the same cycle found from any entry point
    // dedupes to one finding.
    std::vector<uint32_t> body(cycle.begin(), cycle.end() - 1);
    const auto minIt = std::min_element(body.begin(), body.end());
    std::rotate(body.begin(), minIt, body.end());
    std::string key = "cycle:";
    for (const uint32_t s : body) key += std::to_string(s) + ",";

    Finding f;
    f.rule = "lock-order-inversion";
    f.thread = thread;
    for (const uint32_t s : cycle) f.cycle.push_back(lockName(s));
    for (size_t i = 0; i + 1 < cycle.size(); ++i) {
      const auto it = edges.find({cycle[i], cycle[i + 1]});
      if (it != edges.end()) f.stacks.push_back(it->second.stack);
    }
    f.message = "locks are acquired in inconsistent order: ";
    for (size_t i = 0; i < f.cycle.size(); ++i) {
      if (i > 0) f.message += " -> ";
      f.message += f.cycle[i];
    }
    addFinding(std::move(f), key);
  }
};

Checker::Checker() : impl_(new Impl) {}
Checker::~Checker() { delete impl_; }

void Checker::arm(Options opts) {
  std::lock_guard lk(impl_->mu);
  impl_->armed = true;
  impl_->opts = opts;
}

void Checker::disarm() {
  std::lock_guard lk(impl_->mu);
  impl_->armed = false;
}

bool Checker::armed() const {
  std::lock_guard lk(impl_->mu);
  return impl_->armed;
}

Options Checker::options() const {
  std::lock_guard lk(impl_->mu);
  return impl_->opts;
}

PerturbAction Checker::noteAcquiring(uint32_t thread, uint32_t slot) {
  std::lock_guard lk(impl_->mu);
  Impl::ThreadState& ts = impl_->threads[thread];

  if (std::find(ts.held.begin(), ts.held.end(), slot) != ts.held.end()) {
    Finding f;
    f.rule = "lock-recursion";
    f.thread = thread;
    f.cycle = {lockName(slot)};
    f.stacks = {impl_->describe(thread, ts.held, slot)};
    f.message = "thread " + std::to_string(thread) + " re-acquires " +
                lockName(slot) + " it already holds";
    impl_->addFinding(std::move(f),
                      "recursion:" + std::to_string(slot));
    return PerturbAction::kNone;
  }

  for (const uint32_t held : ts.held) {
    const auto key = std::make_pair(held, slot);
    if (impl_->edges.count(key) != 0) continue;
    Impl::Witness w;
    w.thread = thread;
    w.stack = impl_->describe(thread, ts.held, slot);
    impl_->edges.emplace(key, std::move(w));
    impl_->checkCycle(thread, held, slot);
  }

  if (!impl_->opts.perturb) return PerturbAction::kNone;
  if (!ts.rngInit) {
    // Per-thread deterministic stream derived from the one seed; the
    // golden-ratio multiplier decorrelates adjacent tags before the
    // Rng's own splitmix scrambling.
    ts.rng = xcvsim::Rng(impl_->opts.seed +
                         0x9E3779B97F4A7C15ull * (thread + 1));
    ts.rngInit = true;
  }
  const uint64_t draw = ts.rng.below(128);
  if (draw == 0) {
    ++impl_->perturbs;
    return PerturbAction::kSleep;
  }
  if (draw <= 8) {
    ++impl_->perturbs;
    return PerturbAction::kYield;
  }
  return PerturbAction::kNone;
}

void Checker::noteAcquired(uint32_t thread, uint32_t slot) {
  std::lock_guard lk(impl_->mu);
  ++impl_->acquires;
  impl_->threads[thread].held.push_back(slot);
}

void Checker::noteReleased(uint32_t thread, uint32_t slot) {
  std::lock_guard lk(impl_->mu);
  Impl::ThreadState& ts = impl_->threads[thread];
  const auto it = std::find(ts.held.rbegin(), ts.held.rend(), slot);
  if (it == ts.held.rend()) {
    Finding f;
    f.rule = "release-not-held";
    f.thread = thread;
    f.cycle = {lockName(slot)};
    f.stacks = {impl_->describe(thread, ts.held, slot)};
    f.message = "thread " + std::to_string(thread) + " releases " +
                lockName(slot) + " without holding it";
    impl_->addFinding(std::move(f),
                      "release:" + std::to_string(slot) + ":" +
                          std::to_string(thread));
    return;
  }
  ts.held.erase(std::next(it).base());
}

CheckStats Checker::statsSnapshot() const {
  CheckStats s;
  {
    std::lock_guard lk(impl_->mu);
    s.acquires = impl_->acquires;
    s.orderEdges = impl_->edges.size();
    s.perturbations = impl_->perturbs;
    s.findings = impl_->findings.size();
  }
  s.locksRegistered = registrySize();
  return s;
}

LockCheckReport Checker::report() const {
  LockCheckReport rep;
  rep.stats = statsSnapshot();
  rep.locks = registryNames();
  std::lock_guard lk(impl_->mu);
  rep.armed = impl_->armed;
  rep.perturb = impl_->opts.perturb;
  rep.seed = impl_->opts.seed;
  std::set<std::pair<std::string, std::string>> namePairs;
  for (const auto& [edge, w] : impl_->edges) {
    namePairs.insert({lockName(edge.first), lockName(edge.second)});
  }
  rep.order.assign(namePairs.begin(), namePairs.end());
  rep.findings = impl_->findings;
  std::stable_sort(rep.findings.begin(), rep.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.rule != b.rule) return a.rule < b.rule;
                     if (a.cycle != b.cycle) return a.cycle < b.cycle;
                     return a.thread < b.thread;
                   });
  return rep;
}

void Checker::clear() {
  std::lock_guard lk(impl_->mu);
  impl_->threads.clear();
  impl_->edges.clear();
  impl_->findings.clear();
  impl_->findingKeys.clear();
  impl_->acquires = 0;
  impl_->perturbs = 0;
}

// --- Report rendering -------------------------------------------------------------

bool LockCheckReport::firedRule(std::string_view id) const {
  for (const Finding& f : findings) {
    if (f.rule == id) return true;
  }
  return false;
}

std::string LockCheckReport::summary() const {
  std::ostringstream os;
  os << "lock check: " << (armed ? "armed" : "disarmed") << " (seed " << seed
     << ", perturb " << (perturb ? "on" : "off") << ")\n";
  os << "  locks: " << stats.locksRegistered << " registered, "
     << stats.acquires << " acquisitions, " << stats.orderEdges
     << " order edges, " << stats.perturbations << " perturbations\n";
  for (const auto& [from, to] : order) {
    os << "  order: " << from << " -> " << to << "\n";
  }
  if (findings.empty()) {
    os << "  findings: none\n";
    return os.str();
  }
  os << "  findings: " << findings.size() << "\n";
  for (const Finding& f : findings) {
    os << "  finding " << f.rule << ": " << f.message << "\n";
    for (const std::string& s : f.stacks) os << "    " << s << "\n";
  }
  return os.str();
}

std::string LockCheckReport::json() const {
  std::ostringstream os;
  os << "{\"lockcheck\":{\"armed\":" << (armed ? "true" : "false")
     << ",\"perturb\":" << (perturb ? "true" : "false") << ",\"seed\":" << seed
     << ",\"stats\":{\"acquires\":" << stats.acquires
     << ",\"order_edges\":" << stats.orderEdges
     << ",\"perturbations\":" << stats.perturbations
     << ",\"locks_registered\":" << stats.locksRegistered << "}";
  os << ",\"locks\":[";
  for (size_t i = 0; i < locks.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << jsonEscape(locks[i]) << '"';
  }
  os << "],\"order\":[";
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) os << ',';
    os << "[\"" << jsonEscape(order[i].first) << "\",\""
       << jsonEscape(order[i].second) << "\"]";
  }
  os << "],\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) os << ',';
    os << "{\"rule\":\"" << jsonEscape(f.rule)
       << "\",\"thread\":" << f.thread << ",\"cycle\":[";
    for (size_t j = 0; j < f.cycle.size(); ++j) {
      if (j > 0) os << ',';
      os << '"' << jsonEscape(f.cycle[j]) << '"';
    }
    os << "],\"stacks\":[";
    for (size_t j = 0; j < f.stacks.size(); ++j) {
      if (j > 0) os << ',';
      os << '"' << jsonEscape(f.stacks[j]) << '"';
    }
    os << "],\"message\":\"" << jsonEscape(f.message) << "\"}";
  }
  os << "]}}";
  return os.str();
}

// --- Active-checker routing and arming ---------------------------------------------

namespace {

/// Null means "the global checker": avoids any static-init ordering
/// between this pointer and the globalChecker() singleton.
std::atomic<Checker*> g_active{nullptr};

void refreshArmedFlag() {
  detail::armedFlag.store(activeChecker().armed() ? 1 : 0,
                          std::memory_order_relaxed);
}

}  // namespace

Checker& globalChecker() {
  // Leaked on purpose: instrumented threads may lock during static
  // destruction, and the active checker must stay valid to the end.
  static Checker* c = new Checker();
  return *c;
}

Checker& activeChecker() {
  Checker* c = g_active.load(std::memory_order_acquire);
  return c != nullptr ? *c : globalChecker();
}

ScopedChecker::ScopedChecker(Options opts) {
  mine_.arm(opts);
  prev_ = g_active.exchange(&mine_, std::memory_order_acq_rel);
  detail::armedFlag.store(1, std::memory_order_relaxed);
}

ScopedChecker::~ScopedChecker() {
  g_active.store(prev_, std::memory_order_release);
  refreshArmedFlag();
}

void arm(Options opts) {
  globalChecker().arm(opts);
  refreshArmedFlag();
}

void disarm() {
  globalChecker().disarm();
  refreshArmedFlag();
}

void maybeArmFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* mode = std::getenv("JROUTE_LOCKCHECK");
    if (mode == nullptr || mode[0] == '\0' || mode == std::string("0")) {
      return;
    }
    Options opts;
    opts.perturb = std::string(mode) == "perturb";
    if (const char* seed = std::getenv("JROUTE_LOCKCHECK_SEED")) {
      opts.seed = std::strtoull(seed, nullptr, 10);
    }
    arm(opts);
    // Env arming is the tier-1 gate: a finding anywhere in the process
    // fails it at exit, with the seed named for deterministic replay.
    std::atexit([] {
      const LockCheckReport rep = globalChecker().report();
      if (rep.clean()) return;
      std::fprintf(stderr, "%s", rep.summary().c_str());
      std::fprintf(stderr,
                   "jrcheck: FAILED — %zu finding(s); replay with "
                   "JROUTE_LOCKCHECK_SEED=%llu\n",
                   rep.findings.size(),
                   static_cast<unsigned long long>(rep.seed));
      std::_Exit(66);
    });
  });
}

// --- Instrumentation hooks (common/sync.h) ----------------------------------------

namespace detail {

std::atomic<uint32_t> armedFlag{0};

namespace {

/// Reentrancy guard: the checker's bookkeeping must never observe itself
/// (it uses raw std::mutex precisely so this stays a belt-and-braces
/// check rather than a correctness requirement).
thread_local bool inHook = false;

}  // namespace

void acquiring(jrsync::Mutex& mu) {
  if (inHook) return;
  inHook = true;
  const PerturbAction act =
      activeChecker().noteAcquiring(currentThreadTag(), slotFor(mu));
  inHook = false;
  // Perturb outside the checker's lock so injected delays overlap.
  if (act == PerturbAction::kYield) {
    std::this_thread::yield();
  } else if (act == PerturbAction::kSleep) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

void acquired(jrsync::Mutex& mu) {
  if (inHook) return;
  inHook = true;
  activeChecker().noteAcquired(currentThreadTag(), slotFor(mu));
  inHook = false;
}

void released(jrsync::Mutex& mu) {
  if (inHook) return;
  inHook = true;
  activeChecker().noteReleased(currentThreadTag(), slotFor(mu));
  inHook = false;
}

}  // namespace detail

}  // namespace jrcheck
