#include "obs/slo.h"

#include <cstdio>
#include <cstdlib>

#include "obs/flightrec.h"
#include "obs/jsonutil.h"
#include "obs/metrics.h"
#include "obs/spans.h"

#ifndef JROUTE_NO_TELEMETRY
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#endif

namespace jrobs {

namespace {

std::string u64s(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string dbl(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

bool SloConfig::parse(const std::string& spec, SloConfig* out,
                      std::string* error) {
  SloConfig cfg;
  bool sawLatency = false;
  if (spec.empty()) {
    if (error != nullptr) *error = "empty SLO spec";
    return false;
  }
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string item =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() : comma + 1;
    const size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= item.size()) {
      if (error != nullptr) *error = "expected key=value, got '" + item + "'";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    char* end = nullptr;
    if (key == "latency_us") {
      const unsigned long long v = std::strtoull(val.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0) {
        if (error != nullptr) *error = "latency_us wants a positive integer";
        return false;
      }
      cfg.latencyUs = v;
      sawLatency = true;
    } else if (key == "target") {
      const double v = std::strtod(val.c_str(), &end);
      if (end == nullptr || *end != '\0' || v <= 0.0 || v >= 1.0) {
        if (error != nullptr) *error = "target wants a fraction in (0,1)";
        return false;
      }
      cfg.target = v;
    } else if (key == "burn") {
      const double v = std::strtod(val.c_str(), &end);
      if (end == nullptr || *end != '\0' || v <= 0.0) {
        if (error != nullptr) *error = "burn wants a positive threshold";
        return false;
      }
      cfg.burnAlert = v;
    } else {
      if (error != nullptr) *error = "unknown SLO key '" + key + "'";
      return false;
    }
  }
  if (!sawLatency) {
    if (error != nullptr) *error = "SLO spec needs latency_us=<N>";
    return false;
  }
  cfg.enabled = true;
  *out = cfg;
  return true;
}

std::string SloConfig::describe() const {
  if (!enabled) return "disabled";
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "%.4g%% of requests good within %lluus (alert at burn %.3g)",
                target * 100.0, static_cast<unsigned long long>(latencyUs),
                burnAlert);
  return buf;
}

std::string SloReport::text() const {
  std::string out = "slo: " + config.describe() + "\n";
  if (!config.enabled) return out;
  char line[128];
  std::snprintf(line, sizeof line,
                "  observed %llu  good %llu  breaches %llu\n",
                static_cast<unsigned long long>(observed),
                static_cast<unsigned long long>(good),
                static_cast<unsigned long long>(breaches));
  out += line;
  for (const SloWindow& w : windows) {
    std::snprintf(line, sizeof line,
                  "  %3ds window: %llu/%llu good, burn %.3f\n", w.seconds,
                  static_cast<unsigned long long>(w.good),
                  static_cast<unsigned long long>(w.total), w.burn);
    out += line;
  }
  return out;
}

std::string SloReport::json() const {
  std::string out = "{\"slo\":{";
  out += std::string("\"enabled\":") + (config.enabled ? "true" : "false");
  out += ",\"latency_objective_us\":" + u64s(config.latencyUs);
  out += ",\"target\":" + dbl(config.target);
  out += ",\"burn_alert\":" + dbl(config.burnAlert);
  out += ",\"observed\":" + u64s(observed);
  out += ",\"good\":" + u64s(good);
  out += ",\"breaches\":" + u64s(breaches);
  out += ",\"windows\":[";
  for (size_t i = 0; i < windows.size(); ++i) {
    const SloWindow& w = windows[i];
    if (i != 0) out += ",";
    out += "{\"seconds\":" + u64s(static_cast<uint64_t>(w.seconds));
    out += ",\"good\":" + u64s(w.good);
    out += ",\"total\":" + u64s(w.total);
    out += ",\"burn\":" + dbl(w.burn) + "}";
  }
  out += "]}}";
  return out;
}

#ifndef JROUTE_NO_TELEMETRY

struct SloMonitor::Impl {
  /// Ring of second-tagged buckets. 128 > the widest window (60s), so a
  /// tag can only be recycled by a second at least two windows away.
  static constexpr size_t kBuckets = 128;
  struct Bucket {
    std::atomic<int64_t> sec{-1};
    std::atomic<uint64_t> good{0};
    std::atomic<uint64_t> total{0};
  };
  std::array<Bucket, kBuckets> ring;

  // The objective, flattened to atomics so observe() reads it without a
  // lock. configure() is the only writer.
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> latencyUs{0};
  std::atomic<uint64_t> targetPpm{0};    // target * 1e6
  std::atomic<uint64_t> burnMilli{0};    // burnAlert * 1e3

  std::atomic<uint64_t> observed{0};
  std::atomic<uint64_t> good{0};
  std::atomic<uint64_t> breaches{0};
  std::atomic<int64_t> lastEvalSec{-1};
  std::atomic<bool> inBreach{false};

  const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  int64_t nowSec() const {
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
  }

  double budget() const {
    const double t =
        static_cast<double>(targetPpm.load(std::memory_order_relaxed)) / 1e6;
    return std::max(1e-9, 1.0 - t);
  }

  void window(int windowSec, int64_t atSec, uint64_t* goodOut,
              uint64_t* totalOut) const {
    uint64_t g = 0, t = 0;
    for (int i = 0; i < windowSec; ++i) {
      const int64_t sec = atSec - i;
      if (sec < 0) break;
      const Bucket& b = ring[static_cast<size_t>(sec) % kBuckets];
      if (b.sec.load(std::memory_order_acquire) != sec) continue;  // stale
      g += b.good.load(std::memory_order_relaxed);
      t += b.total.load(std::memory_order_relaxed);
    }
    *goodOut = g;
    *totalOut = t;
  }

  double burn(int windowSec, int64_t atSec) const {
    uint64_t g = 0, t = 0;
    window(windowSec, atSec, &g, &t);
    if (t == 0) return 0.0;
    const double badFrac =
        static_cast<double>(t - g) / static_cast<double>(t);
    return badFrac / budget();
  }

  void resetWindows() {
    for (Bucket& b : ring) {
      b.sec.store(-1, std::memory_order_relaxed);
      b.good.store(0, std::memory_order_relaxed);
      b.total.store(0, std::memory_order_relaxed);
    }
    observed.store(0, std::memory_order_relaxed);
    good.store(0, std::memory_order_relaxed);
    breaches.store(0, std::memory_order_relaxed);
    lastEvalSec.store(-1, std::memory_order_relaxed);
    inBreach.store(false, std::memory_order_relaxed);
  }
};

SloMonitor::SloMonitor() : impl_(new Impl) {}

SloMonitor& SloMonitor::instance() {
  static SloMonitor* mon = new SloMonitor();  // leaked on purpose
  return *mon;
}

void SloMonitor::configure(const SloConfig& cfg) {
  impl_->resetWindows();
  impl_->latencyUs.store(cfg.latencyUs, std::memory_order_relaxed);
  impl_->targetPpm.store(static_cast<uint64_t>(cfg.target * 1e6),
                         std::memory_order_relaxed);
  impl_->burnMilli.store(static_cast<uint64_t>(cfg.burnAlert * 1e3),
                         std::memory_order_relaxed);
  impl_->enabled.store(cfg.enabled, std::memory_order_release);
}

SloConfig SloMonitor::config() const {
  SloConfig cfg;
  cfg.enabled = impl_->enabled.load(std::memory_order_acquire);
  cfg.latencyUs = impl_->latencyUs.load(std::memory_order_relaxed);
  cfg.target =
      static_cast<double>(impl_->targetPpm.load(std::memory_order_relaxed)) /
      1e6;
  cfg.burnAlert =
      static_cast<double>(impl_->burnMilli.load(std::memory_order_relaxed)) /
      1e3;
  return cfg;
}

void SloMonitor::observe(uint64_t latencyUs, bool accepted, int64_t atSec) {
  if (!impl_->enabled.load(std::memory_order_relaxed)) return;
  const int64_t sec = atSec >= 0 ? atSec : impl_->nowSec();
  const bool isGood =
      accepted &&
      latencyUs <= impl_->latencyUs.load(std::memory_order_relaxed);

  Impl::Bucket& b = impl_->ring[static_cast<size_t>(sec) %
                                Impl::kBuckets];
  int64_t tag = b.sec.load(std::memory_order_acquire);
  if (tag != sec) {
    // Recycle the bucket for this second. A sample racing the winner's
    // zeroing can be dropped at the boundary; burn rates tolerate that.
    if (b.sec.compare_exchange_strong(tag, sec, std::memory_order_acq_rel)) {
      b.good.store(0, std::memory_order_relaxed);
      b.total.store(0, std::memory_order_relaxed);
    } else if (tag != sec) {
      return;  // recycled for a different second already; drop
    }
  }
  b.total.fetch_add(1, std::memory_order_relaxed);
  if (isGood) b.good.fetch_add(1, std::memory_order_relaxed);
  impl_->observed.fetch_add(1, std::memory_order_relaxed);
  if (isGood) impl_->good.fetch_add(1, std::memory_order_relaxed);

  // Evaluate once per distinct second (plus the very first sample):
  // breach on the rising edge of both windows over the threshold, clear
  // when the slow window recovers.
  if (impl_->lastEvalSec.exchange(sec, std::memory_order_relaxed) == sec) {
    return;
  }
  const double alert =
      static_cast<double>(impl_->burnMilli.load(std::memory_order_relaxed)) /
      1e3;
  const double burnFast = impl_->burn(1, sec);
  const double burnSlow = impl_->burn(10, sec);
  if (burnFast >= alert && burnSlow >= alert) {
    if (!impl_->inBreach.exchange(true, std::memory_order_relaxed)) {
      impl_->breaches.fetch_add(1, std::memory_order_relaxed);
      registry().counter("service.slo.breaches_fired").add();
      // The bundle answers the page: the objective's state plus the
      // worst recent requests' per-segment latency breakdown.
      std::string extra = "{\"slo\":" + report(sec).json() + ",\"worst\":[";
      const std::vector<SpanRecord> worst = spanAggregator().recentWorst(3);
      for (size_t i = 0; i < worst.size(); ++i) {
        if (i != 0) extra += ",";
        extra += worst[i].json();
      }
      extra += "]}";
      char detail[96];
      std::snprintf(detail, sizeof detail,
                    "burn rate %.2f (1s) / %.2f (10s) over alert %.2f",
                    burnFast, burnSlow, alert);
      flightRecorder().anomaly(kSloBreach, detail, extra);
    }
  } else if (burnSlow < alert) {
    impl_->inBreach.store(false, std::memory_order_relaxed);
  }
}

double SloMonitor::burnRate(int windowSec, int64_t atSec) const {
  if (!impl_->enabled.load(std::memory_order_relaxed)) return 0.0;
  return impl_->burn(windowSec, atSec >= 0 ? atSec : impl_->nowSec());
}

SloReport SloMonitor::report(int64_t atSec) const {
  SloReport rep;
  rep.config = config();
  if (!rep.config.enabled) return rep;
  const int64_t sec = atSec >= 0 ? atSec : impl_->nowSec();
  rep.observed = impl_->observed.load(std::memory_order_relaxed);
  rep.good = impl_->good.load(std::memory_order_relaxed);
  rep.breaches = impl_->breaches.load(std::memory_order_relaxed);
  for (const int w : kWindowsSec) {
    SloWindow win;
    win.seconds = w;
    impl_->window(w, sec, &win.good, &win.total);
    win.burn = impl_->burn(w, sec);
    rep.windows.push_back(win);
  }
  return rep;
}

uint64_t SloMonitor::breachCount() const {
  return impl_->breaches.load(std::memory_order_relaxed);
}

void SloMonitor::reset() { impl_->resetWindows(); }

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

struct SloMonitor::Impl {};

SloMonitor::SloMonitor() : impl_(nullptr) {}

SloMonitor& SloMonitor::instance() {
  static SloMonitor* mon = new SloMonitor();  // leaked on purpose
  return *mon;
}

void SloMonitor::configure(const SloConfig&) {}
SloConfig SloMonitor::config() const { return {}; }
void SloMonitor::observe(uint64_t, bool, int64_t) {}
double SloMonitor::burnRate(int, int64_t) const { return 0.0; }
SloReport SloMonitor::report(int64_t) const { return {}; }
uint64_t SloMonitor::breachCount() const { return 0; }
void SloMonitor::reset() {}

#endif  // JROUTE_NO_TELEMETRY

SloMonitor& sloMonitor() { return SloMonitor::instance(); }

}  // namespace jrobs
