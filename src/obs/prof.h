// jrprof: lock-contention & batch critical-path profiler.
//
// Spans (obs/spans.h) attribute one request's milliseconds to engine
// stages; the metrics registry counts events. Neither answers the
// question the ROADMAP's scaling item actually asks: when the parallel
// path loses to the serialized one, *which mutex* is the engine waiting
// on, and how much of a batch's wall time is genuinely parallel work?
// jrprof is the evidence layer for that tuning: three coordinated views
// over the same run, armable together and disarmed to a single relaxed
// load per lock operation (the same fast-path discipline as jrcheck).
//
//   1. Lock contention. Every jrsync::Mutex is already a named,
//      registry-backed lock (common/sync.h, shared with jrcheck via
//      jrcheck::slotOf). Armed, the lock() hook classifies each
//      acquisition exactly — a speculative try_lock that succeeds is
//      uncontended; one that fails times the blocking wait — and the
//      unlock() hook closes the hold interval through a per-thread held
//      stack. Per-name counters and log-bucket histograms are published
//      as sync.<name>.{acquires,contended,wait_us,hold_us} and summed
//      into the top-contenders report (jrsh `prof top`).
//
//   2. Batch critical path. The service engine feeds each completed
//      batch's folded spans into profileBatch(), a pure function
//      computing plan work, the critical path (longest parallel plan +
//      the serialized tail), parallel efficiency
//      (Σ plan work ÷ (batch wall × plan threads)) and the
//      arbitration-serialization share; recordBatch() publishes
//      service.batch.* histograms and the engine raises a
//      kLowEfficiency flight-recorder anomaly when a batch sets a new
//      efficiency low under the threshold.
//
//   3. Stage sampling. Engine and worker threads publish a one-byte
//      atomic stage beacon (idle/queue/plan/arbitrate/commit); arming
//      starts a ~1 kHz sampler thread that accumulates per-stage wall
//      attribution — a cooperative profiler needing no signals or
//      unwinding — and mirrors the counts into Chrome-trace counter
//      events ("C" phase) when the tracer is capturing.
//
// Arming: jrsh `prof arm`, programmatic arm()/disarm(), or
// JROUTE_PROF=1 via maybeArmFromEnv() (picked up by the service, jrsh,
// jrload, and the benches at startup). reset() — wired into jrsh
// `stats reset` — zeroes lock stats, batch aggregates, and sampler
// counts without touching the arming state.
//
// With JROUTE_NO_TELEMETRY the hooks still link (common/sync.h calls
// them unconditionally when armed) but arm() is a no-op, so the armed
// paths are unreachable and reports render empty; call sites never
// #ifdef.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/spans.h"

namespace jrprof {

// ---------------------------------------------------------------------------
// Arming

/// Arm all three views (lock hooks, batch recording, stage sampler).
/// Idempotent. No-op under JROUTE_NO_TELEMETRY.
void arm();

/// Disarm and stop the sampler thread (joins it). Accumulated data stays
/// reportable until reset().
void disarm();

/// Arm from JROUTE_PROF=1. Idempotent; called by the routing service,
/// jrsh, jrload, and the benches at startup.
void maybeArmFromEnv();

/// Zero lock stats, batch aggregates, and sampler counts (jrsh `stats
/// reset`). The sync.* / service.batch.* registry metrics live in the
/// metrics registry and are reset with it; arming state is untouched.
void resetAll();

// ---------------------------------------------------------------------------
// View 1: lock contention

/// Aggregated stats for one lock *name* (same-named mutexes — e.g. two
/// services' "service.fabric" — merge, matching the registry metrics).
struct LockStat {
  std::string name;
  uint64_t acquires = 0;
  uint64_t contended = 0;
  uint64_t waitUs = 0;  ///< summed blocking wait (exact, from ns)
  uint64_t holdUs = 0;  ///< summed hold time (exact, from ns)
  uint64_t waitMaxUs = 0;
  double contendedShare = 0.0;  ///< contended / acquires
};

/// The top-contenders view: every profiled lock, sorted by total wait
/// time descending (the order the ROADMAP work should attack them in).
struct LockContentionReport {
  bool armed = false;
  std::vector<LockStat> locks;

  /// Aligned table of the top `k` contenders (jrsh `prof top`).
  std::string text(size_t k = 10) const;
  /// {"locks":[{...},...]} fragment used by ProfReport::json().
  std::string json() const;
};

/// Test seams: drive the per-slot accumulation with an injected clock.
/// `slot` is a jrcheck registry slot (jrcheck::registerLock for
/// synthetic ones). These bypass the per-thread held stack.
void noteAcquire(uint32_t slot, uint64_t waitNs, bool contended);
void noteRelease(uint32_t slot, uint64_t holdNs);

LockContentionReport lockReport();

// ---------------------------------------------------------------------------
// View 2: batch critical path

/// One resolved request's contribution to its batch, in microseconds
/// (the folded span segments; see sampleFromSpan).
struct BatchRequestSample {
  uint64_t planUs = 0;
  uint64_t arbitrationUs = 0;
  uint64_t commitUs = 0;
  bool parallel = false;  ///< resolved on the parallel plan path
};

/// Telescope a stamped span into a batch sample with the same monotone
/// clamp SpanAggregator::fold applies, so batch arithmetic and the span
/// report agree to the microsecond.
BatchRequestSample sampleFromSpan(const jrobs::RequestSpan& span,
                                  bool parallel);

/// One batch's computed profile. All times in microseconds.
struct BatchProfile {
  uint64_t requests = 0;
  unsigned planThreads = 1;
  uint64_t wallUs = 0;        ///< batch close -> last resolve
  uint64_t planWorkUs = 0;    ///< Σ plan segments, parallel and serial
  uint64_t maxPlanUs = 0;     ///< longest parallel plan
  uint64_t commitUs = 0;      ///< Σ commit segments (always serialized)
  uint64_t serialWorkUs = 0;  ///< Σ plan segments of serialized requests
  /// maxPlanUs + commitUs + serialWorkUs: the model's shortest possible
  /// batch wall time with infinite planners.
  uint64_t criticalPathUs = 0;
  /// planWorkUs / (wallUs * planThreads); 1.0 = every planner busy for
  /// the whole batch.
  double efficiency = 0.0;
  /// (commitUs + serialWorkUs) / wallUs, clamped to [0,1]: the share of
  /// the batch the engine spent in its serialized tail.
  double serialShare = 0.0;

  std::string json() const;
};

/// Pure computation — the telescoping test drives this directly.
BatchProfile profileBatch(const std::vector<BatchRequestSample>& reqs,
                          uint64_t wallUs, unsigned planThreads);

/// Publish a batch profile into the service.batch.* histograms and the
/// profiler's batch aggregate. Returns true when this batch sets a new
/// efficiency minimum below kLowEfficiencyThreshold with at least
/// kLowEfficiencyMinRequests requests — the engine's cue to raise the
/// kLowEfficiency flight-recorder anomaly for *this* batch.
bool recordBatch(const BatchProfile& p);

/// Flight-recorder anomaly kind for a new-worst low-efficiency batch.
inline constexpr const char* kLowEfficiency = "low-efficiency";
/// recordBatch flags batches under this efficiency...
inline constexpr double kLowEfficiencyThreshold = 0.25;
/// ...but only once they are big enough for efficiency to mean anything.
inline constexpr uint64_t kLowEfficiencyMinRequests = 8;

// ---------------------------------------------------------------------------
// View 3: cooperative stage sampler

/// What an engine thread is doing right now, published via its beacon.
/// kIdle doubles as "no beacon" for threads that never set one.
enum class Stage : uint8_t {
  kIdle = 0,
  kQueue,      // draining / lingering on the MPSC queue
  kPlan,       // parallel plan phase (engine and workers)
  kArbitrate,  // batch classification & claim arbitration
  kCommit,     // serialized tail: commit loop, serial path, batch DRC
};

inline constexpr size_t kNumStages = 5;
const char* stageName(size_t i);

/// One thread's published stage: a single relaxed byte store to set.
class StageBeacon {
 public:
  void set(Stage s) {
    v_.store(static_cast<uint8_t>(s), std::memory_order_relaxed);
  }
  Stage get() const {
    return static_cast<Stage>(v_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint8_t> v_{0};
};

/// The calling thread's beacon, registered with the sampler on first
/// use (leaked at thread exit, like the tracer's rings — the sampler
/// may still read it). Threads that exit mid-run are expected to leave
/// their beacon at kIdle.
StageBeacon& threadBeacon();

/// RAII stage publication, armed-gated: disarmed it is one relaxed load
/// and a never-taken branch, armed it sets the stage and restores the
/// previous one on scope exit.
class StageScope {
 public:
  explicit StageScope(Stage s) {
    if (!armed()) return;
    b_ = &threadBeacon();
    prev_ = b_->get();
    b_->set(s);
  }
  ~StageScope() {
    if (b_ != nullptr) b_->set(prev_);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StageBeacon* b_ = nullptr;
  Stage prev_ = Stage::kIdle;
};

/// Per-stage wall attribution accumulated by the sampler.
struct StageReport {
  uint64_t samples = 0;    ///< total beacon observations
  uint64_t ticks = 0;      ///< sampler wakeups
  uint64_t periodUs = 0;   ///< nominal sampling period
  uint64_t perStage[kNumStages] = {};  ///< observations per stage

  /// Share of non-idle observations attributed to stage `i`.
  double share(size_t i) const;
  std::string text() const;
  std::string json() const;
};

/// The armable ~1 kHz sampler. One instance per process.
class StageSampler {
 public:
  static StageSampler& instance();

  /// Walk every registered beacon once, accumulating one observation
  /// per beacon (and a tick). The sampler thread calls this ~1000x/s;
  /// tests call it directly for deterministic attribution.
  void sampleOnce();

  StageReport report() const;
  void reset();

  /// Nominal sampling period (1 kHz).
  static constexpr uint64_t kPeriodUs = 1000;

 private:
  StageSampler();
  ~StageSampler() = delete;  // process-lifetime singleton

  struct Impl;
  Impl* impl_;

  friend void arm();
  friend void disarm();
  friend StageBeacon& threadBeacon();
  void startThread();
  void stopThread();
};

// ---------------------------------------------------------------------------
// Combined report (jrsh `prof`)

struct ProfReport {
  bool armed = false;
  LockContentionReport locks;
  StageReport stages;
  uint64_t batches = 0;  ///< batches profiled since arm/reset

  /// Full human-readable report (jrsh `prof`).
  std::string text() const;
  /// Top-contenders table only (jrsh `prof top`).
  std::string topText() const;
  /// Single JSON object (jrsh `prof json`, jrload --prof-json).
  std::string json() const;
};

ProfReport report();

}  // namespace jrprof
