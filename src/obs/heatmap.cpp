#include "obs/heatmap.h"

#include <cinttypes>
#include <cstdio>

#include "obs/jsonutil.h"

#ifndef JROUTE_NO_TELEMETRY
#include <atomic>
#include <memory>
#include <vector>

#include "common/sync.h"
#endif

namespace jrobs {

namespace {

std::string u64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

// Darkest-last shade ramp; index scaled by cell/max.
constexpr char kShades[] = " .:-=+*#%@";
constexpr int kNumShades = 10;

}  // namespace

uint64_t Heatmap::maxValue() const {
  uint64_t m = 0;
  for (const uint64_t v : values)
    if (v > m) m = v;
  return m;
}

uint64_t Heatmap::total() const {
  uint64_t t = 0;
  for (const uint64_t v : values) t += v;
  return t;
}

std::string Heatmap::ascii() const {
  std::string out = title + " (" + u64(static_cast<uint64_t>(gridRows)) + "x" +
                    u64(static_cast<uint64_t>(gridCols)) + " cells of " +
                    u64(static_cast<uint64_t>(cellRows)) + "x" +
                    u64(static_cast<uint64_t>(cellCols)) +
                    " tiles, max=" + u64(maxValue()) +
                    ", total=" + u64(total()) + ")\n";
  const uint64_t max = maxValue();
  for (int r = 0; r < gridRows; ++r) {
    out += "  ";
    for (int c = 0; c < gridCols; ++c) {
      const uint64_t v = at(r, c);
      int shade = 0;
      if (v > 0 && max > 0) {
        // Nonzero cells never render as blank: floor at shade 1.
        shade = 1 + static_cast<int>((v - 1) * (kNumShades - 1) / max);
        if (shade >= kNumShades) shade = kNumShades - 1;
      }
      out += kShades[shade];
    }
    out += "\n";
  }
  out += "  legend: ' '=0";
  if (max > 0) out += " '" + std::string(1, kShades[kNumShades - 1]) +
                      "'<=" + u64(max);
  out += "\n";
  return out;
}

std::string Heatmap::json() const {
  std::string out = "{\"heatmap\":{";
  out += jsonKv("title", title) + ",";
  out += "\"grid_rows\":" + u64(static_cast<uint64_t>(gridRows)) + ",";
  out += "\"grid_cols\":" + u64(static_cast<uint64_t>(gridCols)) + ",";
  out += "\"cell_rows\":" + u64(static_cast<uint64_t>(cellRows)) + ",";
  out += "\"cell_cols\":" + u64(static_cast<uint64_t>(cellCols)) + ",";
  out += "\"max\":" + u64(maxValue()) + ",";
  out += "\"total\":" + u64(total()) + ",";
  out += "\"cells\":[";
  for (int r = 0; r < gridRows; ++r) {
    if (r > 0) out += ",";
    out += "[";
    for (int c = 0; c < gridCols; ++c) {
      if (c > 0) out += ",";
      out += u64(at(r, c));
    }
    out += "]";
  }
  out += "]}}";
  return out;
}

#ifndef JROUTE_NO_TELEMETRY

struct CongestionGrid::Impl {
  struct Cells {
    int fabricRows = 0, fabricCols = 0;
    int cellRows = 1, cellCols = 1;
    int gridRows = 0, gridCols = 0;
    std::unique_ptr<std::atomic<uint64_t>[]> v;
  };

  // configure/reset/snapshot; add() is lock-free
  mutable jrsync::Mutex mu{"obs.heatmap"};
  std::atomic<Cells*> cells{nullptr};
  // Arrays replaced by a geometry change; concurrent add()ers may still
  // hold their pointers, so they stay alive until the grid is destroyed.
  std::vector<Cells*> retired JR_GUARDED_BY(mu);
};

CongestionGrid::CongestionGrid() : impl_(new Impl) {}

CongestionGrid::~CongestionGrid() {
  // No add() can be in flight once the destructor runs, so the retired
  // arrays are finally safe to free.
  {
    jrsync::MutexLock lock(impl_->mu);
    for (Impl::Cells* c : impl_->retired) delete c;
  }
  delete impl_->cells.load(std::memory_order_acquire);
  delete impl_;
}

void CongestionGrid::configure(int fabricRows, int fabricCols, int cellRows,
                               int cellCols) {
  if (fabricRows <= 0 || fabricCols <= 0) return;
  if (cellRows <= 0) cellRows = 1;
  if (cellCols <= 0) cellCols = 1;
  jrsync::MutexLock lock(impl_->mu);
  Impl::Cells* cur = impl_->cells.load(std::memory_order_acquire);
  if (cur && cur->fabricRows == fabricRows && cur->fabricCols == fabricCols &&
      cur->cellRows == cellRows && cur->cellCols == cellCols) {
    const size_t n =
        static_cast<size_t>(cur->gridRows) * static_cast<size_t>(cur->gridCols);
    for (size_t i = 0; i < n; ++i)
      cur->v[i].store(0, std::memory_order_relaxed);
    return;
  }
  auto* fresh = new Impl::Cells;
  fresh->fabricRows = fabricRows;
  fresh->fabricCols = fabricCols;
  fresh->cellRows = cellRows;
  fresh->cellCols = cellCols;
  fresh->gridRows = (fabricRows + cellRows - 1) / cellRows;
  fresh->gridCols = (fabricCols + cellCols - 1) / cellCols;
  const size_t n = static_cast<size_t>(fresh->gridRows) *
                   static_cast<size_t>(fresh->gridCols);
  fresh->v = std::make_unique<std::atomic<uint64_t>[]>(n);
  for (size_t i = 0; i < n; ++i) fresh->v[i].store(0);
  // Swap, retiring (not freeing) the old array: concurrent add()ers may
  // still hold the old pointer, and a device-geometry change is rare
  // enough that keeping a few hundred bytes alive until destruction
  // beats any reclamation scheme.
  if (cur) impl_->retired.push_back(cur);
  impl_->cells.store(fresh, std::memory_order_release);
}

bool CongestionGrid::configured() const {
  return impl_->cells.load(std::memory_order_acquire) != nullptr;
}

void CongestionGrid::add(int row, int col, uint64_t n) {
  Impl::Cells* c = impl_->cells.load(std::memory_order_acquire);
  if (!c) return;
  if (row < 0 || col < 0 || row >= c->fabricRows || col >= c->fabricCols)
    return;
  const int gr = row / c->cellRows;
  const int gc = col / c->cellCols;
  c->v[static_cast<size_t>(gr) * static_cast<size_t>(c->gridCols) +
       static_cast<size_t>(gc)]
      .fetch_add(n, std::memory_order_relaxed);
}

void CongestionGrid::reset() {
  jrsync::MutexLock lock(impl_->mu);
  Impl::Cells* c = impl_->cells.load(std::memory_order_acquire);
  if (!c) return;
  const size_t n =
      static_cast<size_t>(c->gridRows) * static_cast<size_t>(c->gridCols);
  for (size_t i = 0; i < n; ++i) c->v[i].store(0, std::memory_order_relaxed);
}

Heatmap CongestionGrid::snapshot(const std::string& title) const {
  Heatmap h;
  h.title = title;
  jrsync::MutexLock lock(impl_->mu);
  Impl::Cells* c = impl_->cells.load(std::memory_order_acquire);
  if (!c) return h;
  h.gridRows = c->gridRows;
  h.gridCols = c->gridCols;
  h.cellRows = c->cellRows;
  h.cellCols = c->cellCols;
  const size_t n =
      static_cast<size_t>(c->gridRows) * static_cast<size_t>(c->gridCols);
  h.values.resize(n);
  for (size_t i = 0; i < n; ++i)
    h.values[i] = c->v[i].load(std::memory_order_relaxed);
  return h;
}

#endif  // JROUTE_NO_TELEMETRY

CongestionGrid& claimConflictGrid() {
  static CongestionGrid* grid = new CongestionGrid();  // leaked on purpose
  return *grid;
}

}  // namespace jrobs
