#include "obs/trace.h"

#include <fstream>

#ifndef JROUTE_NO_TELEMETRY
#include <array>
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "common/sync.h"
#endif

namespace jrobs {

#ifndef JROUTE_NO_TELEMETRY

/// Single-writer ring. The owning thread writes a slot, then publishes
/// it with a release store of head; readers acquire head and only touch
/// slots below it, so every read is ordered after the write it observes.
struct Tracer::Ring {
  std::array<TraceEvent, Tracer::kRingCapacity> events;
  std::atomic<uint64_t> head{0};  // total events ever written
};

struct Tracer::Impl {
  // Ring registration and export only — never on record.
  mutable jrsync::Mutex mu{"obs.trace"};
  std::vector<std::unique_ptr<Ring>> rings JR_GUARDED_BY(mu);
};

Tracer::Tracer() : impl_(new Impl) {
  epoch_ = std::chrono::steady_clock::now();
}

Tracer& Tracer::instance() {
  // Leaked on purpose: emitting threads may outlive static destruction,
  // and their rings must stay valid to the last instruction.
  static Tracer* t = new Tracer();
  return *t;
}

Tracer::Ring& Tracer::localRing() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>();
    ring = owned.get();
    jrsync::MutexLock lk(impl_->mu);
    impl_->rings.push_back(std::move(owned));
  }
  return *ring;
}

void Tracer::start() {
  jrsync::MutexLock lk(impl_->mu);
  for (auto& r : impl_->rings) r->head.store(0, std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  jrsync::MutexLock lk(impl_->mu);
  for (auto& r : impl_->rings) r->head.store(0, std::memory_order_release);
}

void Tracer::record(const char* cat, const char* name, uint64_t tsNs,
                    uint64_t durNs) {
  if (!enabled()) return;
  Ring& r = localRing();
  const uint64_t h = r.head.load(std::memory_order_relaxed);
  TraceEvent& e = r.events[h % kRingCapacity];
  e.cat = cat;
  e.name = name;
  e.tsNs = tsNs;
  e.durNs = durNs;
  e.phase = TraceEvent::Phase::kDuration;
  r.head.store(h + 1, std::memory_order_release);
}

void Tracer::instant(const char* cat, const char* name) {
  if (!enabled()) return;
  const uint64_t now = nowNs();
  Ring& r = localRing();
  const uint64_t h = r.head.load(std::memory_order_relaxed);
  TraceEvent& e = r.events[h % kRingCapacity];
  e.cat = cat;
  e.name = name;
  e.tsNs = now;
  e.durNs = 0;
  e.phase = TraceEvent::Phase::kInstant;
  r.head.store(h + 1, std::memory_order_release);
}

void Tracer::counter(const char* cat, const char* name, uint64_t value) {
  if (!enabled()) return;
  const uint64_t now = nowNs();
  Ring& r = localRing();
  const uint64_t h = r.head.load(std::memory_order_relaxed);
  TraceEvent& e = r.events[h % kRingCapacity];
  e.cat = cat;
  e.name = name;
  e.tsNs = now;
  e.durNs = value;
  e.phase = TraceEvent::Phase::kCounter;
  r.head.store(h + 1, std::memory_order_release);
}

size_t Tracer::eventCount() const {
  jrsync::MutexLock lk(impl_->mu);
  size_t n = 0;
  for (const auto& r : impl_->rings) {
    n += static_cast<size_t>(
        std::min<uint64_t>(r->head.load(std::memory_order_acquire),
                           kRingCapacity));
  }
  return n;
}

size_t Tracer::droppedCount() const {
  jrsync::MutexLock lk(impl_->mu);
  size_t n = 0;
  for (const auto& r : impl_->rings) {
    const uint64_t h = r->head.load(std::memory_order_acquire);
    if (h > kRingCapacity) n += static_cast<size_t>(h - kRingCapacity);
  }
  return n;
}

std::string Tracer::exportJson() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  jrsync::MutexLock lk(impl_->mu);
  bool first = true;
  char buf[64];
  uint64_t dropped = 0;
  for (size_t t = 0; t < impl_->rings.size(); ++t) {
    const Ring& r = *impl_->rings[t];
    const uint64_t h = r.head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(h, kRingCapacity);
    dropped += h - n;
    for (uint64_t seq = h - n; seq < h; ++seq) {
      const TraceEvent& e = r.events[seq % kRingCapacity];
      if (!first) os << ',';
      first = false;
      const char ph = e.phase == TraceEvent::Phase::kInstant   ? 'i'
                      : e.phase == TraceEvent::Phase::kCounter ? 'C'
                                                               : 'X';
      os << "{\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name
         << "\",\"ph\":\"" << ph << '"';
      if (e.phase == TraceEvent::Phase::kInstant) os << ",\"s\":\"t\"";
      std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                    static_cast<double>(e.tsNs) / 1000.0);
      os << buf;
      if (e.phase == TraceEvent::Phase::kDuration) {
        std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                      static_cast<double>(e.durNs) / 1000.0);
        os << buf;
      } else if (e.phase == TraceEvent::Phase::kCounter) {
        os << ",\"args\":{\"value\":" << e.durNs << '}';
      }
      os << ",\"pid\":1,\"tid\":" << t + 1 << '}';
    }
  }
  os << "],\"otherData\":{\"droppedEvents\":" << dropped << "}}";
  return os.str();
}

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

#endif  // JROUTE_NO_TELEMETRY

bool dumpTrace(const std::string& path, std::string* error) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  os << Tracer::instance().exportJson() << '\n';
  if (!os) {
    if (error != nullptr) *error = "write failed: " + path;
    return false;
  }
  return true;
}

}  // namespace jrobs
