// Low-overhead routing telemetry: counters, gauges, latency histograms.
//
// The paper's only visibility story is trace/reverseTrace over nets; a
// concurrent routing service needs to answer *why was this slow* — which
// API level resolved the route, how much search it cost, where claim
// contention burns time. This module is the measurement substrate: every
// hot-path increment is one relaxed atomic op, histograms are fixed
// log-bucketed arrays (no allocation on record), and a process-global
// MetricsRegistry renders everything as text or JSON for jrsh `stats`
// and RoutingService::snapshotMetrics().
//
// Compile-out: building with -DJROUTE_NO_TELEMETRY turns every recording
// call into an empty inline and the registry into a stub, so latency-
// critical deployments pay literally nothing. The API is identical in
// both modes; call sites never need #ifdefs.
//
// Naming scheme (see DESIGN.md §11): dotted lowercase
// `<layer>.<component>.<metric>[_<unit>]`, e.g. `router.maze.visits`,
// `service.request.latency_us`. Units are spelled in the name so a
// reader of `stats` output never guesses.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef JROUTE_NO_TELEMETRY
#include <array>
#include <atomic>
#endif

namespace jrobs {

/// True when the library was built with telemetry compiled in.
constexpr bool compiledIn() {
#ifdef JROUTE_NO_TELEMETRY
  return false;
#else
  return true;
#endif
}

#ifndef JROUTE_NO_TELEMETRY

/// Monotonic event count. One relaxed fetch_add per record.
class Counter {
 public:
  void add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Instantaneous level (queue depth, live sessions).
class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-bucketed histogram over uint64 samples (typically microseconds or
/// node counts). 16 sub-buckets per power of two keeps relative bucket
/// error under ~6%, which is plenty for p50/p95/p99 reporting, in a flat
/// 7.7 KB array recorded into with a single relaxed add — no allocation,
/// no locks, safe from any thread.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSub = 1u << kSubBits;  // 16
  static constexpr uint32_t kNumBuckets = (64 - kSubBits) * kSub + kSub;

  void record(uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// p-th percentile (0..100) by rank over the bucket counts, linearly
  /// interpolated inside the winning bucket. Concurrent records may skew
  /// a live read by a sample or two; snapshots taken at quiescence are
  /// exact to bucket resolution.
  double percentile(double p) const;

  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  static uint32_t bucketOf(uint64_t v) {
    if (v < kSub) return static_cast<uint32_t>(v);
    const uint32_t msb = 63u - static_cast<uint32_t>(std::countl_zero(v));
    const uint32_t top = msb - kSubBits;
    return (top + 1) * kSub +
           static_cast<uint32_t>((v >> top) & (kSub - 1));
  }

  /// Smallest sample value that lands in bucket `i`.
  static uint64_t bucketLowerBound(uint32_t i) {
    if (i < kSub) return i;
    const uint32_t top = i / kSub - 1;
    return static_cast<uint64_t>(kSub + i % kSub) << top;
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

class Counter {
 public:
  void add(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(int64_t) {}
  void add(int64_t = 1) {}
  void sub(int64_t = 1) {}
  int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSub = 1u << kSubBits;
  static constexpr uint32_t kNumBuckets = (64 - kSubBits) * kSub + kSub;

  void record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  double mean() const { return 0.0; }
  double percentile(double) const { return 0.0; }
  void reset() {}

  // The bucket mapping is pure math; keeping it in the stub keeps the
  // API identical across build modes.
  static uint32_t bucketOf(uint64_t v) {
    if (v < kSub) return static_cast<uint32_t>(v);
    const uint32_t msb = 63u - static_cast<uint32_t>(std::countl_zero(v));
    const uint32_t top = msb - kSubBits;
    return (top + 1) * kSub +
           static_cast<uint32_t>((v >> top) & (kSub - 1));
  }
  static uint64_t bucketLowerBound(uint32_t i) {
    if (i < kSub) return i;
    const uint32_t top = i / kSub - 1;
    return static_cast<uint64_t>(kSub + i % kSub) << top;
  }
};

#endif  // JROUTE_NO_TELEMETRY

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

const char* metricKindName(MetricKind k);

/// One metric's value frozen at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  int64_t value = 0;    // counter/gauge reading
  uint64_t count = 0;   // histogram sample count
  uint64_t sum = 0;     // histogram sample sum
  double mean = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Point-in-time copy of a registry, detached from the live atomics —
/// safe to serialize, diff, or ship across threads.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // registration order

  const MetricSample* find(std::string_view name) const;
  /// Counter/gauge value (or histogram count) by name; 0 when absent.
  int64_t value(std::string_view name) const;

  /// Aligned `name kind value [p50/p95/p99]` lines, one per metric.
  std::string text() const;
  /// Single JSON object: {"metrics":[{...},...]}.
  std::string json() const;
};

/// Named metric registry. Registration (first lookup of a name) takes a
/// mutex; the returned reference is stable for the registry's lifetime,
/// so hot paths cache it in a function-local static and never touch the
/// lock again. With JROUTE_NO_TELEMETRY every lookup returns a shared
/// stub and snapshots are empty.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;
  std::string renderText() const { return snapshot().text(); }
  std::string renderJson() const { return snapshot().json(); }

  /// Zero every registered metric (names stay registered). jrsh `stats
  /// reset` and tests use this to scope measurements.
  void reset();

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global registry every instrumented layer records into.
MetricsRegistry& registry();

}  // namespace jrobs
