#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>

#include "common/sync.h"

namespace jrobs {

const char* metricKindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// --- Snapshot rendering (both build modes) -----------------------------------

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

int64_t MetricsSnapshot::value(std::string_view name) const {
  const MetricSample* s = find(name);
  if (s == nullptr) return 0;
  return s->kind == MetricKind::kHistogram ? static_cast<int64_t>(s->count)
                                           : s->value;
}

std::string MetricsSnapshot::text() const {
  if (samples.empty()) {
    return compiledIn() ? std::string("(no metrics recorded)\n")
                        : std::string("(telemetry compiled out)\n");
  }
  size_t width = 0;
  for (const MetricSample& s : samples) width = std::max(width, s.name.size());
  std::ostringstream os;
  char buf[160];
  for (const MetricSample& s : samples) {
    if (s.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof buf,
                    "%-*s  count %llu  mean %.1f  p50 %.1f  p95 %.1f  "
                    "p99 %.1f\n",
                    static_cast<int>(width), s.name.c_str(),
                    static_cast<unsigned long long>(s.count), s.mean, s.p50,
                    s.p95, s.p99);
    } else {
      std::snprintf(buf, sizeof buf, "%-*s  %lld\n", static_cast<int>(width),
                    s.name.c_str(), static_cast<long long>(s.value));
    }
    os << buf;
  }
  return os.str();
}

std::string MetricsSnapshot::json() const {
  std::ostringstream os;
  os << "{\"telemetry\":" << (compiledIn() ? "true" : "false")
     << ",\"metrics\":[";
  char buf[96];
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i > 0) os << ',';
    os << "{\"name\":\"" << s.name << "\",\"kind\":\""
       << metricKindName(s.kind) << '"';
    if (s.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof buf,
                    ",\"count\":%llu,\"sum\":%llu,\"mean\":%.6g,"
                    "\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g",
                    static_cast<unsigned long long>(s.count),
                    static_cast<unsigned long long>(s.sum), s.mean, s.p50,
                    s.p95, s.p99);
      os << buf;
    } else {
      os << ",\"value\":" << s.value;
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

#ifndef JROUTE_NO_TELEMETRY

// --- Histogram percentile ----------------------------------------------------

double Histogram::percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank with interpolation inside the winning bucket.
  const double rank = p / 100.0 * static_cast<double>(n);
  uint64_t cum = 0;
  for (uint32_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (static_cast<double>(cum + c) >= rank) {
      const double lo = static_cast<double>(bucketLowerBound(i));
      const double hi =
          i + 1 < kNumBuckets ? static_cast<double>(bucketLowerBound(i + 1))
                              : lo;
      const double frac =
          std::clamp((rank - static_cast<double>(cum)) /
                         static_cast<double>(c),
                     0.0, 1.0);
      return lo + (hi - lo) * frac;
    }
    cum += c;
  }
  return static_cast<double>(bucketLowerBound(kNumBuckets - 1));
}

// --- Registry ----------------------------------------------------------------

struct MetricsRegistry::Impl {
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    size_t order = 0;  // registration order, for stable output
  };
  mutable jrsync::Mutex mu{"obs.metrics"};
  std::map<std::string, Entry, std::less<>> entries JR_GUARDED_BY(mu);
  size_t nextOrder JR_GUARDED_BY(mu) = 0;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter& MetricsRegistry::counter(std::string_view name) {
  jrsync::MutexLock lk(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Impl::Entry e;
    e.kind = MetricKind::kCounter;
    e.counter = std::make_unique<Counter>();
    e.order = impl_->nextOrder++;
    it = impl_->entries.emplace(std::string(name), std::move(e)).first;
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  jrsync::MutexLock lk(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Impl::Entry e;
    e.kind = MetricKind::kGauge;
    e.gauge = std::make_unique<Gauge>();
    e.order = impl_->nextOrder++;
    it = impl_->entries.emplace(std::string(name), std::move(e)).first;
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  jrsync::MutexLock lk(impl_->mu);
  auto it = impl_->entries.find(name);
  if (it == impl_->entries.end()) {
    Impl::Entry e;
    e.kind = MetricKind::kHistogram;
    e.histogram = std::make_unique<Histogram>();
    e.order = impl_->nextOrder++;
    it = impl_->entries.emplace(std::string(name), std::move(e)).first;
  }
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  jrsync::MutexLock lk(impl_->mu);
  snap.samples.resize(impl_->entries.size());
  for (const auto& [name, e] : impl_->entries) {
    MetricSample& s = snap.samples[e.order];
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = static_cast<int64_t>(e.counter->value());
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.count = e.histogram->count();
        s.sum = e.histogram->sum();
        s.mean = e.histogram->mean();
        s.p50 = e.histogram->percentile(50);
        s.p95 = e.histogram->percentile(95);
        s.p99 = e.histogram->percentile(99);
        break;
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  jrsync::MutexLock lk(impl_->mu);
  for (auto& [name, e] : impl_->entries) {
    switch (e.kind) {
      case MetricKind::kCounter: e.counter->reset(); break;
      case MetricKind::kGauge: e.gauge->reset(); break;
      case MetricKind::kHistogram: e.histogram->reset(); break;
    }
  }
}

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

// The stub registry hands out shared no-op instruments and reports no
// metrics, so `stats` surfaces say "compiled out" instead of lying with
// zeros.
struct MetricsRegistry::Impl {
  Counter counter;
  Gauge gauge;
  Histogram histogram;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}
MetricsRegistry::~MetricsRegistry() { delete impl_; }

Counter& MetricsRegistry::counter(std::string_view) { return impl_->counter; }
Gauge& MetricsRegistry::gauge(std::string_view) { return impl_->gauge; }
Histogram& MetricsRegistry::histogram(std::string_view) {
  return impl_->histogram;
}
MetricsSnapshot MetricsRegistry::snapshot() const { return {}; }
void MetricsRegistry::reset() {}

#endif  // JROUTE_NO_TELEMETRY

MetricsRegistry& registry() {
  static MetricsRegistry reg;
  return reg;
}

}  // namespace jrobs
