// Request-lifecycle spans: where did my milliseconds go?
//
// Counters say how many requests the service resolved; the latency
// histogram says how long they took end to end. Neither answers the
// question that steers the engine's tuning knobs: of those milliseconds,
// how many were queue wait vs batch linger vs planning vs claim
// arbitration vs commit? Every Request carries a RequestSpan — seven
// fixed timestamp slots stamped as the request crosses each engine
// stage — and when the request resolves, the engine folds the span into
// a per-thread aggregator: per-segment sums, log-bucket registry
// histograms (service.span.*), and a small ring of recent per-request
// records. Stamping is one steady-clock read into a plain array slot;
// folding is relaxed atomics plus a single-writer ring publish — the
// same release/acquire protocol as the tracer and flight recorder — so
// the hot path never takes a lock (the "obs.spans" mutex guards only
// per-thread registration and report-time merges).
//
// The attribution report (jrsh `spans [json]`) telescopes exactly: the
// six segments of one request sum to its reply-minus-enqueue latency by
// construction (missing or reordered stamps clamp to zero-length
// segments, never negative ones). Recent records feed the flight
// recorder's SLO-breach bundles (obs/slo.h) so a burn-rate page carries
// the worst offenders' per-segment breakdown.
//
// With JROUTE_NO_TELEMETRY the span is an empty struct, stamp() is a
// no-op, and the aggregator reports zeros; call sites never #ifdef.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#ifndef JROUTE_NO_TELEMETRY
#include <chrono>
#endif

namespace jrobs {

/// The stamped points of a request's life, in engine order. Each
/// adjacent pair bounds one attribution segment (spanSegmentName).
enum class SpanStage : uint8_t {
  kEnqueue = 0,     // RoutingService::submit pushed the request
  kBatchClose,      // the engine drained it out of the MPSC queue
  kPlanStart,       // a planner (parallel or serialized) picked it up
  kPlanEnd,         // the plan/search finished
  kArbitration,     // the commit loop reached it (claims arbitrated)
  kCommit,          // its transaction committed or rolled back
  kReply,           // finish() resolved the promise
};

inline constexpr size_t kNumSpanStages = 7;
inline constexpr size_t kNumSpanSegments = kNumSpanStages - 1;

/// Segment `i` spans stage `i` -> stage `i+1`: queue_wait, batch_linger,
/// plan, arbitration, commit, reply.
const char* spanSegmentName(size_t i);

#ifndef JROUTE_NO_TELEMETRY

/// Per-request timestamp record, embedded by value in jrsvc::Request.
/// Slots are nanoseconds on the steady clock; zero means "never
/// stamped". Stamping twice overwrites (the serialized retry after a
/// parallel fallback re-stamps plan/commit with its own, later times).
struct RequestSpan {
  std::array<uint64_t, kNumSpanStages> ns{};

  void stamp(SpanStage s) {
    ns[static_cast<size_t>(s)] = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  uint64_t at(SpanStage s) const { return ns[static_cast<size_t>(s)]; }
};

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

struct RequestSpan {
  void stamp(SpanStage) {}
  uint64_t at(SpanStage) const { return 0; }
};

#endif  // JROUTE_NO_TELEMETRY

/// One resolved request's folded span: the telescoped segments (they sum
/// to e2eUs exactly) plus enough identity to make a breach bundle or a
/// report line self-explanatory. op/result are string literals
/// (opName/rejectName), mirroring the tracer's literal-pointer contract.
struct SpanRecord {
  uint64_t requestId = 0;
  uint64_t sessionId = 0;
  const char* op = "";
  const char* result = "";
  bool parallel = false;
  std::array<uint64_t, kNumSpanSegments> segUs{};
  uint64_t e2eUs = 0;

  std::string json() const;
};

/// The "where did my milliseconds go" answer at one point in time.
struct SpanAttribution {
  struct Segment {
    const char* name = "";
    uint64_t totalUs = 0;
    double share = 0.0;  // of the summed end-to-end time
    double p50Us = 0.0, p95Us = 0.0, p99Us = 0.0;
  };
  uint64_t requests = 0;
  uint64_t e2eTotalUs = 0;
  double e2eP50Us = 0.0, e2eP95Us = 0.0, e2eP99Us = 0.0;
  std::array<Segment, kNumSpanSegments> segments{};

  /// Aligned table for jrsh `spans`.
  std::string text() const;
  /// {"spans":{...}} for jrsh `spans json` and breach bundles.
  std::string json() const;
};

/// Process-global span aggregator. fold() is called by the engine once
/// per resolved request; everything else is report-time.
class SpanAggregator {
 public:
  static SpanAggregator& instance();

  /// Telescope the span into segments, accumulate them into the calling
  /// thread's aggregate and the service.span.* registry histograms, and
  /// retain the record in the thread's recent-ring. Returns the folded
  /// record so the caller can embed it (flight-recorder bundles).
  SpanRecord fold(const RequestSpan& span, uint64_t requestId,
                  uint64_t sessionId, const char* op, const char* result,
                  bool parallel);

  /// Requests folded since start/reset, summed across threads.
  uint64_t count() const;

  SpanAttribution report() const;

  /// Every record still retained in the per-thread rings (newest last
  /// per thread; cross-thread order unspecified).
  std::vector<SpanRecord> recentRecords() const;
  /// The k retained records with the largest end-to-end latency.
  std::vector<SpanRecord> recentWorst(size_t k) const;

  /// Zero sums, counts, and rings (jrsh `stats reset`, jrload). The
  /// service.span.* histograms live in the registry and are reset with
  /// it. Thread registrations persist.
  void reset();

  /// Per-thread recent-record ring capacity.
  static constexpr size_t kRecentCapacity = 256;

 private:
  SpanAggregator();
  ~SpanAggregator() = delete;  // process-lifetime singleton

  struct Impl;
  Impl* impl_;
};

/// Shorthand for SpanAggregator::instance().
SpanAggregator& spanAggregator();

}  // namespace jrobs
