// Fabric congestion observability: tile-region heatmaps.
//
// Parallel routers live or die by hotspots — a handful of switch-box
// regions absorb most of the claim contention, and aggregate counters
// can't say *where*. This module gives congestion a spatial axis:
//
//  - Heatmap: a plain grid-of-values with ASCII and JSON renderers,
//    produced either from live fabric occupancy (see
//    jrdrc::occupancyHeatmap in analysis/congestion.h) or from the
//    claim-conflict accumulator below. Works in both build modes — it is
//    just data plus rendering.
//  - CongestionGrid: a fixed array of relaxed atomics the planner bumps
//    when a claim race is lost, bucketing fabric tiles into cells of
//    cellRows x cellCols. One relaxed add per conflict; conflicts are
//    already the slow path. The service publishes per-region gauges
//    (`service.claim.region.rXcY.conflicts`) from it at snapshot time.
//
// With JROUTE_NO_TELEMETRY the grid is a stub (adds vanish, snapshots
// are empty) while Heatmap itself keeps working so jrsh `heatmap` — a
// read of fabric state, not telemetry — stays available.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jrobs {

/// A rendered-or-renderable grid of per-region values, row-major.
/// gridRows x gridCols cells, each covering cellRows x cellCols fabric
/// tiles (the last row/column of cells may cover a partial span).
struct Heatmap {
  std::string title;
  int gridRows = 0;
  int gridCols = 0;
  int cellRows = 1;
  int cellCols = 1;
  std::vector<uint64_t> values;

  uint64_t at(int r, int c) const {
    return values[static_cast<size_t>(r) * static_cast<size_t>(gridCols) +
                  static_cast<size_t>(c)];
  }
  uint64_t maxValue() const;
  uint64_t total() const;

  /// Shade-character rendering (` .:-=+*#%@` scaled to the max cell),
  /// with a legend line. Deterministic for a given grid.
  std::string ascii() const;
  /// {"heatmap":{"title":...,"grid_rows":...,"cells":[[...],...]}}
  std::string json() const;
};

#ifndef JROUTE_NO_TELEMETRY

/// Thread-safe spatial accumulator over fabric tiles. configure() maps
/// a device's rows x cols onto a coarse cell grid; add() is a relaxed
/// atomic increment on the cell containing a tile. Reconfiguring with
/// the same geometry just zeroes the cells; a new geometry swaps in a
/// fresh cell array and retires the old one until the grid's destructor
/// runs, so concurrent adders never touch freed memory.
class CongestionGrid {
 public:
  CongestionGrid();
  ~CongestionGrid();
  CongestionGrid(const CongestionGrid&) = delete;
  CongestionGrid& operator=(const CongestionGrid&) = delete;

  void configure(int fabricRows, int fabricCols, int cellRows = 4,
                 int cellCols = 4);
  bool configured() const;

  /// Bump the cell containing fabric tile (row, col). No-op before
  /// configure() or for out-of-range tiles.
  void add(int row, int col, uint64_t n = 1);

  void reset();

  /// Detached copy for rendering/publishing. Empty before configure().
  Heatmap snapshot(const std::string& title) const;

 private:
  struct Impl;
  Impl* impl_;
};

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

class CongestionGrid {
 public:
  CongestionGrid() {}
  ~CongestionGrid() {}
  CongestionGrid(const CongestionGrid&) = delete;
  CongestionGrid& operator=(const CongestionGrid&) = delete;

  void configure(int, int, int = 4, int = 4) {}
  bool configured() const { return false; }
  void add(int, int, uint64_t = 1) {}
  void reset() {}
  Heatmap snapshot(const std::string& title) const {
    Heatmap h;
    h.title = title;
    return h;
  }
};

#endif  // JROUTE_NO_TELEMETRY

/// The process-global claim-conflict accumulator the planner bumps and
/// the routing service configures/publishes.
CongestionGrid& claimConflictGrid();

}  // namespace jrobs
