// Latency/error SLO monitor with multi-window burn rates.
//
// The service's histograms say what latency *was*; an operator of a
// run-time routing service needs to know whether it is currently
// violating its objective fast enough to matter. This module implements
// the standard multi-window burn-rate scheme: an objective ("99.9% of
// requests resolve within 5ms, successfully") defines an error budget
// of 1-target; the burn rate over a window is the window's bad-request
// fraction divided by that budget (1.0 = spending the budget exactly on
// schedule, 10 = ten times too fast). Rates are computed over rolling
// 1s/10s/60s windows kept in a ring of second-tagged atomic buckets —
// observe() is a handful of relaxed atomic ops, no locks, no allocation
// — and a breach (burn over threshold on both the 1s and 10s windows,
// rising edge only) fires the flight recorder's kSloBreach anomaly with
// the span attribution of the worst recent offenders embedded, so the
// page carries its own "where did the milliseconds go" answer.
//
// Window buckets are tagged with their absolute second and lazily
// recycled; a bucket whose tag lost the rollover race can drop a few
// boundary samples, which is well inside alerting tolerance. Tests
// inject absolute seconds through the atSec parameters, so the window
// arithmetic is exercised deterministically, no sleeps.
//
// With JROUTE_NO_TELEMETRY the monitor is a stub: configure/observe are
// no-ops and reports are empty. SloConfig parsing stays live in both
// modes (jrload fails fast on a bad --slo spec regardless of build).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace jrobs {

/// Flight-recorder anomaly kind for burn-rate breaches.
inline constexpr const char* kSloBreach = "slo-breach";

struct SloConfig {
  bool enabled = false;
  /// A request is "good" iff it was accepted AND resolved within this.
  uint64_t latencyUs = 5000;
  /// Objective good-fraction, in (0,1): 0.999 = three nines.
  double target = 0.999;
  /// Breach when the 1s AND 10s burn rates both reach this.
  double burnAlert = 8.0;

  /// Parse "latency_us=5000,target=0.999,burn=8" (any subset of keys;
  /// latency_us is required). False + *error on malformed input.
  static bool parse(const std::string& spec, SloConfig* out,
                    std::string* error);
  /// One-line human form of the objective.
  std::string describe() const;
};

struct SloWindow {
  int seconds = 0;
  uint64_t good = 0;
  uint64_t total = 0;
  double burn = 0.0;
};

struct SloReport {
  SloConfig config;
  uint64_t observed = 0;  // since configure/reset
  uint64_t good = 0;
  uint64_t breaches = 0;
  std::vector<SloWindow> windows;  // 1s, 10s, 60s

  std::string text() const;
  /// {"slo":{...}} for jrsh `slo json` and breach bundles.
  std::string json() const;
};

/// Process-global monitor fed by RoutingService::finish.
class SloMonitor {
 public:
  static SloMonitor& instance();

  /// Install an objective (also resets the windows). A config with
  /// enabled=false turns the monitor off.
  void configure(const SloConfig& cfg);
  SloConfig config() const;

  /// Record one resolved request. `atSec` overrides the wall second for
  /// deterministic tests; -1 = now. Disabled monitors return after one
  /// relaxed load. May fire the kSloBreach anomaly (at most once per
  /// excursion above the threshold).
  void observe(uint64_t latencyUs, bool accepted, int64_t atSec = -1);

  /// Burn rate over the trailing `windowSec` seconds ending at `atSec`
  /// (inclusive). 0 when no samples landed in the window.
  double burnRate(int windowSec, int64_t atSec = -1) const;

  SloReport report(int64_t atSec = -1) const;
  uint64_t breachCount() const;

  /// Zero windows, totals, and breach state; the objective stays
  /// installed (jrsh `stats reset`, jrload).
  void reset();

  /// The rolling windows evaluated by observe() and report().
  static constexpr int kWindowsSec[3] = {1, 10, 60};

 private:
  SloMonitor();
  ~SloMonitor() = delete;  // process-lifetime singleton

  struct Impl;
  Impl* impl_;
};

/// Shorthand for SloMonitor::instance().
SloMonitor& sloMonitor();

}  // namespace jrobs
