#include "obs/spans.h"

#include "obs/jsonutil.h"
#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#ifndef JROUTE_NO_TELEMETRY
#include <algorithm>
#include <atomic>
#include <memory>

#include "common/sync.h"
#endif

namespace jrobs {

const char* spanSegmentName(size_t i) {
  switch (i) {
    case 0: return "queue_wait";    // enqueue -> drained from the queue
    case 1: return "batch_linger";  // in the open batch until planning
    case 2: return "plan";          // template/maze search
    case 3: return "arbitration";   // waiting for the commit loop / claims
    case 4: return "commit";        // transaction apply (or unroute)
    case 5: return "reply";         // finish() bookkeeping to promise-set
  }
  return "?";
}

namespace {

std::string u64s(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string dbl(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string SpanRecord::json() const {
  std::string out = "{";
  out += "\"request_id\":" + u64s(requestId) + ",";
  out += "\"session_id\":" + u64s(sessionId) + ",";
  out += jsonKv("op", op) + ",";
  out += jsonKv("result", result) + ",";
  out += std::string("\"parallel\":") + (parallel ? "true" : "false") + ",";
  out += "\"segments_us\":{";
  for (size_t i = 0; i < kNumSpanSegments; ++i) {
    if (i != 0) out += ",";
    out += "\"" + std::string(spanSegmentName(i)) + "\":" + u64s(segUs[i]);
  }
  out += "},\"e2e_us\":" + u64s(e2eUs) + "}";
  return out;
}

std::string SpanAttribution::text() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "span attribution: %" PRIu64 " request(s), e2e p50 %.0fus"
                "  p95 %.0fus  p99 %.0fus\n",
                requests, e2eP50Us, e2eP95Us, e2eP99Us);
  out += line;
  if (requests == 0) return out;
  std::snprintf(line, sizeof line, "  %-14s %7s %14s %10s %10s %10s\n",
                "segment", "share", "total_ms", "p50_us", "p95_us", "p99_us");
  out += line;
  for (const Segment& s : segments) {
    std::snprintf(line, sizeof line,
                  "  %-14s %6.1f%% %14.3f %10.0f %10.0f %10.0f\n", s.name,
                  s.share * 100.0, static_cast<double>(s.totalUs) / 1000.0,
                  s.p50Us, s.p95Us, s.p99Us);
    out += line;
  }
  return out;
}

std::string SpanAttribution::json() const {
  std::string out = "{\"spans\":{";
  out += "\"requests\":" + u64s(requests) + ",";
  out += "\"e2e_total_us\":" + u64s(e2eTotalUs) + ",";
  out += "\"e2e_p50_us\":" + dbl(e2eP50Us) + ",";
  out += "\"e2e_p95_us\":" + dbl(e2eP95Us) + ",";
  out += "\"e2e_p99_us\":" + dbl(e2eP99Us) + ",";
  out += "\"segments\":[";
  for (size_t i = 0; i < segments.size(); ++i) {
    const Segment& s = segments[i];
    if (i != 0) out += ",";
    out += "{" + jsonKv("name", s.name) + ",";
    out += "\"total_us\":" + u64s(s.totalUs) + ",";
    out += "\"share\":" + dbl(s.share) + ",";
    out += "\"p50_us\":" + dbl(s.p50Us) + ",";
    out += "\"p95_us\":" + dbl(s.p95Us) + ",";
    out += "\"p99_us\":" + dbl(s.p99Us) + "}";
  }
  out += "]}}";
  return out;
}

#ifndef JROUTE_NO_TELEMETRY

namespace {

/// Registry mirrors, resolved once per process (the registration lock is
/// never touched again afterwards — same pattern as the engine metrics).
struct SpanMetrics {
  std::array<Histogram*, kNumSpanSegments> seg{};
  Histogram& e2e = registry().histogram("service.span.e2e_us");
  SpanMetrics() {
    for (size_t i = 0; i < kNumSpanSegments; ++i) {
      seg[i] = &registry().histogram("service.span." +
                                     std::string(spanSegmentName(i)) + "_us");
    }
  }
};

SpanMetrics& spanMetrics() {
  static SpanMetrics m;
  return m;
}

}  // namespace

struct SpanAggregator::Impl {
  /// One thread's aggregate: relaxed-atomic sums plus a single-writer
  /// ring of recent records published with a release store of head —
  /// the flight recorder's protocol, so fold() never takes a lock after
  /// the thread's first registration.
  struct Agg {
    std::array<std::atomic<uint64_t>, kNumSpanSegments> sumUs{};
    std::atomic<uint64_t> e2eSumUs{0};
    std::atomic<uint64_t> count{0};
    std::array<SpanRecord, kRecentCapacity> recent;
    std::atomic<uint64_t> head{0};
  };

  /// Registration and report-time merges only — never on the fold path.
  mutable jrsync::Mutex mu{"obs.spans"};
  std::vector<std::unique_ptr<Agg>> aggs JR_GUARDED_BY(mu);

  Agg& localAgg() {
    thread_local Agg* agg = nullptr;
    if (agg == nullptr) {
      auto owned = std::make_unique<Agg>();
      agg = owned.get();
      jrsync::MutexLock lock(mu);
      aggs.push_back(std::move(owned));
    }
    return *agg;
  }
};

SpanAggregator::SpanAggregator() : impl_(new Impl) {}

SpanAggregator& SpanAggregator::instance() {
  static SpanAggregator* agg = new SpanAggregator();  // leaked on purpose
  return *agg;
}

SpanRecord SpanAggregator::fold(const RequestSpan& span, uint64_t requestId,
                                uint64_t sessionId, const char* op,
                                const char* result, bool parallel) {
  SpanRecord rec;
  rec.requestId = requestId;
  rec.sessionId = sessionId;
  rec.op = op;
  rec.result = result;
  rec.parallel = parallel;

  // Telescope the stamps into segments with a monotone running clock:
  // a missing stamp (stage skipped — unroutes never plan) or one that
  // reads earlier than its predecessor (serialized retry overwrote a
  // later stage first) clamps to a zero-length segment. The invariant
  // the tests lean on falls out by construction: sum(segments) ==
  // reply - enqueue, exactly, whenever both ends were stamped.
  const uint64_t t0 = span.at(SpanStage::kEnqueue);
  uint64_t prevNs = t0;
  for (size_t i = 1; i < kNumSpanStages; ++i) {
    const uint64_t raw = span.ns[i];
    const uint64_t t = std::max(raw == 0 ? prevNs : raw, prevNs);
    rec.segUs[i - 1] = (t - prevNs) / 1000;
    prevNs = t;
  }
  if (t0 == 0) return rec;  // never entered the service; nothing to fold
  // Derive e2e from the microsecond segments, not the raw nanoseconds,
  // so the telescoping identity holds after truncation too.
  rec.e2eUs = 0;
  for (const uint64_t s : rec.segUs) rec.e2eUs += s;

  Impl::Agg& a = impl_->localAgg();
  for (size_t i = 0; i < kNumSpanSegments; ++i) {
    a.sumUs[i].fetch_add(rec.segUs[i], std::memory_order_relaxed);
  }
  a.e2eSumUs.fetch_add(rec.e2eUs, std::memory_order_relaxed);
  a.count.fetch_add(1, std::memory_order_relaxed);
  const uint64_t h = a.head.load(std::memory_order_relaxed);
  a.recent[h % kRecentCapacity] = rec;
  a.head.store(h + 1, std::memory_order_release);

  SpanMetrics& m = spanMetrics();
  for (size_t i = 0; i < kNumSpanSegments; ++i) {
    m.seg[i]->record(rec.segUs[i]);
  }
  m.e2e.record(rec.e2eUs);
  return rec;
}

uint64_t SpanAggregator::count() const {
  jrsync::MutexLock lock(impl_->mu);
  uint64_t n = 0;
  for (const auto& a : impl_->aggs) {
    n += a->count.load(std::memory_order_relaxed);
  }
  return n;
}

SpanAttribution SpanAggregator::report() const {
  SpanAttribution rep;
  {
    jrsync::MutexLock lock(impl_->mu);
    for (const auto& a : impl_->aggs) {
      rep.requests += a->count.load(std::memory_order_relaxed);
      rep.e2eTotalUs += a->e2eSumUs.load(std::memory_order_relaxed);
      for (size_t i = 0; i < kNumSpanSegments; ++i) {
        rep.segments[i].totalUs +=
            a->sumUs[i].load(std::memory_order_relaxed);
      }
    }
  }
  for (size_t i = 0; i < kNumSpanSegments; ++i) {
    rep.segments[i].name = spanSegmentName(i);
    rep.segments[i].share =
        rep.e2eTotalUs == 0
            ? 0.0
            : static_cast<double>(rep.segments[i].totalUs) /
                  static_cast<double>(rep.e2eTotalUs);
  }
  // Percentiles come from the registry histograms fold() co-records
  // into — the sums answer "where did the total go", the histograms
  // answer "how bad is the tail of each segment".
  const MetricsSnapshot snap = registry().snapshot();
  for (size_t i = 0; i < kNumSpanSegments; ++i) {
    if (const MetricSample* h = snap.find(
            "service.span." + std::string(spanSegmentName(i)) + "_us")) {
      rep.segments[i].p50Us = h->p50;
      rep.segments[i].p95Us = h->p95;
      rep.segments[i].p99Us = h->p99;
    }
  }
  if (const MetricSample* h = snap.find("service.span.e2e_us")) {
    rep.e2eP50Us = h->p50;
    rep.e2eP95Us = h->p95;
    rep.e2eP99Us = h->p99;
  }
  return rep;
}

std::vector<SpanRecord> SpanAggregator::recentRecords() const {
  jrsync::MutexLock lock(impl_->mu);
  std::vector<SpanRecord> all;
  for (const auto& a : impl_->aggs) {
    const uint64_t h = a->head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(h, kRecentCapacity);
    for (uint64_t seq = h - n; seq < h; ++seq) {
      all.push_back(a->recent[seq % kRecentCapacity]);
    }
  }
  return all;
}

std::vector<SpanRecord> SpanAggregator::recentWorst(size_t k) const {
  std::vector<SpanRecord> all = recentRecords();
  const size_t n = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(n),
                    all.end(), [](const SpanRecord& a, const SpanRecord& b) {
                      return a.e2eUs > b.e2eUs;
                    });
  all.resize(n);
  return all;
}

void SpanAggregator::reset() {
  jrsync::MutexLock lock(impl_->mu);
  for (auto& a : impl_->aggs) {
    for (auto& s : a->sumUs) s.store(0, std::memory_order_relaxed);
    a->e2eSumUs.store(0, std::memory_order_relaxed);
    a->count.store(0, std::memory_order_relaxed);
    a->head.store(0, std::memory_order_release);
  }
}

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

struct SpanAggregator::Impl {};

SpanAggregator::SpanAggregator() : impl_(nullptr) {}

SpanAggregator& SpanAggregator::instance() {
  static SpanAggregator* agg = new SpanAggregator();  // leaked on purpose
  return *agg;
}

SpanRecord SpanAggregator::fold(const RequestSpan&, uint64_t requestId,
                                uint64_t sessionId, const char* op,
                                const char* result, bool parallel) {
  SpanRecord rec;
  rec.requestId = requestId;
  rec.sessionId = sessionId;
  rec.op = op;
  rec.result = result;
  rec.parallel = parallel;
  return rec;
}

uint64_t SpanAggregator::count() const { return 0; }
SpanAttribution SpanAggregator::report() const { return {}; }
std::vector<SpanRecord> SpanAggregator::recentRecords() const { return {}; }
std::vector<SpanRecord> SpanAggregator::recentWorst(size_t) const {
  return {};
}
void SpanAggregator::reset() {}

#endif  // JROUTE_NO_TELEMETRY

SpanAggregator& spanAggregator() { return SpanAggregator::instance(); }

}  // namespace jrobs
