#include "obs/provenance.h"

#include <cinttypes>
#include <cstdio>

#include "obs/jsonutil.h"

#ifndef JROUTE_NO_TELEMETRY
#include <map>

#include "common/sync.h"
#endif

namespace jrobs {

namespace {

std::string u64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

}  // namespace

std::string NetProvenance::text() const {
  std::string out;
  out += "net " + (netName.empty() ? ("node#" + u64(netSource)) : netName) +
         " (source node " + u64(netSource) + ")\n";
  out += "  request   #" + u64(requestId) + " session " + u64(sessionId) +
         " op " + op + "\n";
  out += "  algorithm " + algorithm +
         (certified ? " (certified plan)"
                    : (parallel ? " (parallel plan)" : " (serialized)")) +
         ", selector " +
         selector + "\n";
  out += "  effort    " + u64(searchVisits) + " nodes visited, " +
         u64(claimRetries) + " claim retries\n";
  out += "  result    " + u64(pips) + " pips across " + u64(sinks) +
         " sink(s), latency " + u64(latencyUs) + " us\n";
  out += "  outcome   txn " + txn + ", drc " + drc;
  if (updates > 0) out += ", updated " + u64(updates) + "x";
  out += " (seq " + u64(seq) + ")\n";
  return out;
}

std::string NetProvenance::json() const {
  std::string out = "{";
  out += "\"net_source\":" + u64(netSource) + ",";
  out += jsonKv("net_name", netName) + ",";
  out += "\"request_id\":" + u64(requestId) + ",";
  out += "\"session_id\":" + u64(sessionId) + ",";
  out += jsonKv("op", op) + ",";
  out += jsonKv("algorithm", algorithm) + ",";
  out += jsonKv("selector", selector) + ",";
  out += std::string("\"parallel\":") + (parallel ? "true" : "false") + ",";
  out += std::string("\"certified\":") + (certified ? "true" : "false") + ",";
  out += "\"pips\":" + u64(pips) + ",";
  out += "\"sinks\":" + u64(sinks) + ",";
  out += "\"search_visits\":" + u64(searchVisits) + ",";
  out += "\"claim_retries\":" + u64(claimRetries) + ",";
  out += "\"latency_us\":" + u64(latencyUs) + ",";
  out += jsonKv("txn", txn) + ",";
  out += jsonKv("drc", drc) + ",";
  out += "\"updates\":" + u64(updates) + ",";
  out += "\"seq\":" + u64(seq);
  out += "}";
  return out;
}

const char* classifyAlgorithm(uint64_t templateHits, uint64_t mazeRuns,
                              uint64_t shapeReuseHits) {
  if (mazeRuns > 0 && (templateHits > 0 || shapeReuseHits > 0)) return "mixed";
  if (mazeRuns > 0) return "maze";
  if (shapeReuseHits > 0) return "shape-hint";
  if (templateHits > 0) return "template";
  return "reuse";
}

const char* classifySelector(uint64_t selTemplate, uint64_t selLongLine,
                             uint64_t selMaze) {
  const int kinds = (selTemplate > 0 ? 1 : 0) + (selLongLine > 0 ? 1 : 0) +
                    (selMaze > 0 ? 1 : 0);
  if (kinds > 1) return "mixed";
  if (selTemplate > 0) return "template";
  if (selLongLine > 0) return "long-line";
  if (selMaze > 0) return "maze";
  return "off";
}

#ifndef JROUTE_NO_TELEMETRY

struct ProvenanceStore::Impl {
  mutable jrsync::Mutex mu{"obs.provenance"};
  size_t capacity JR_GUARDED_BY(mu) = 0;
  uint64_t nextSeq JR_GUARDED_BY(mu) = 1;
  // Keyed by net source: the "exactly one record per net" invariant is
  // the map key, not a scan. seqIndex orders eviction and `last()`.
  std::map<uint64_t, NetProvenance> bySource JR_GUARDED_BY(mu);
  std::map<uint64_t, uint64_t> seqIndex JR_GUARDED_BY(mu);  // seq -> source
};

ProvenanceStore::ProvenanceStore(size_t capacity) : impl_(new Impl) {
  jrsync::MutexLock lock(impl_->mu);
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

ProvenanceStore::~ProvenanceStore() { delete impl_; }

void ProvenanceStore::record(NetProvenance rec) {
  jrsync::MutexLock lock(impl_->mu);
  auto it = impl_->bySource.find(rec.netSource);
  if (it != impl_->bySource.end()) {
    // The net was extended by a later request: the new record supersedes
    // the old one, keeping a count of how many requests touched the net.
    rec.updates = it->second.updates + 1;
    impl_->seqIndex.erase(it->second.seq);
  } else if (impl_->bySource.size() >= impl_->capacity) {
    auto oldest = impl_->seqIndex.begin();
    impl_->bySource.erase(oldest->second);
    impl_->seqIndex.erase(oldest);
  }
  rec.seq = impl_->nextSeq++;
  impl_->seqIndex[rec.seq] = rec.netSource;
  impl_->bySource[rec.netSource] = std::move(rec);
}

std::optional<NetProvenance> ProvenanceStore::find(uint64_t netSource) const {
  jrsync::MutexLock lock(impl_->mu);
  auto it = impl_->bySource.find(netSource);
  if (it == impl_->bySource.end()) return std::nullopt;
  return it->second;
}

std::optional<NetProvenance> ProvenanceStore::last() const {
  jrsync::MutexLock lock(impl_->mu);
  if (impl_->seqIndex.empty()) return std::nullopt;
  return impl_->bySource.at(impl_->seqIndex.rbegin()->second);
}

void ProvenanceStore::forget(uint64_t netSource) {
  jrsync::MutexLock lock(impl_->mu);
  auto it = impl_->bySource.find(netSource);
  if (it == impl_->bySource.end()) return;
  impl_->seqIndex.erase(it->second.seq);
  impl_->bySource.erase(it);
}

size_t ProvenanceStore::size() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->bySource.size();
}

void ProvenanceStore::clear() {
  jrsync::MutexLock lock(impl_->mu);
  impl_->bySource.clear();
  impl_->seqIndex.clear();
}

std::string ProvenanceStore::json() const {
  jrsync::MutexLock lock(impl_->mu);
  std::string out = "{\"provenance\":[";
  bool first = true;
  for (const auto& [seq, source] : impl_->seqIndex) {
    (void)seq;
    if (!first) out += ",";
    first = false;
    out += impl_->bySource.at(source).json();
  }
  out += "]}";
  return out;
}

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

struct ProvenanceStore::Impl {};

ProvenanceStore::ProvenanceStore(size_t) : impl_(nullptr) {}
ProvenanceStore::~ProvenanceStore() {}
void ProvenanceStore::record(NetProvenance) {}
std::optional<NetProvenance> ProvenanceStore::find(uint64_t) const {
  return std::nullopt;
}
std::optional<NetProvenance> ProvenanceStore::last() const {
  return std::nullopt;
}
void ProvenanceStore::forget(uint64_t) {}
size_t ProvenanceStore::size() const { return 0; }
void ProvenanceStore::clear() {}
std::string ProvenanceStore::json() const { return "{\"provenance\":[]}"; }

#endif  // JROUTE_NO_TELEMETRY

ProvenanceStore& provenance() {
  static ProvenanceStore* store = new ProvenanceStore();  // leaked on purpose
  return *store;
}

}  // namespace jrobs
