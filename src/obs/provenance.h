// Per-net provenance: why does this net look the way it does?
//
// The paper's debug story (trace/reverseTrace, the BoardScope use case)
// explains a routed design *structurally* — which wires a net occupies.
// The telemetry registry (obs/metrics.h) answers *aggregate* questions —
// how many maze runs, p99 latency. Neither can answer the question a
// debugging user actually asks: "why does net N look like this?" This
// module is that layer: every net committed through the routing service
// leaves one structured record — who requested it, which API level, which
// engine satisfied it (template hit / bus shape-hint reuse / maze /
// mixed), how much search it cost, how many PIPs it holds, its
// enqueue-to-commit latency, and its txn/DRC outcome. jrsh surfaces the
// store as `why <net>` and `explain last`; the flight recorder embeds the
// offending net's record in its anomaly bundles.
//
// Concurrency: records are assembled by the engine thread at commit time
// (never on the search hot path), so the store uses a plain mutex. The
// store is bounded — oldest records are evicted FIFO by commit sequence —
// and keyed by the net's source node, so a net has at most one record at
// any time (a later request extending the net overwrites the record and
// bumps `updates`); unrouting the net forgets it.
//
// With JROUTE_NO_TELEMETRY the store is a stub: record() drops the
// record, lookups return nothing, and the JSON export is an empty list.
// NetProvenance itself (a plain struct with renderers) works in both
// modes, so call sites never #ifdef.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace jrobs {

/// One committed net's routing history.
struct NetProvenance {
  uint64_t netSource = 0;  ///< RRG node id of the net's source wire.
  std::string netName;
  uint64_t requestId = 0;  ///< 0 = routed outside the service.
  uint64_t sessionId = 0;
  std::string op;         ///< API level: "p2p", "fanout", "bus", "unroute".
  std::string algorithm;  ///< "template" | "shape-hint" | "maze" | "mixed" | "reuse".
  /// Lookahead strategy-selector verdict for the request's sinks:
  /// "template" | "long-line" | "maze" | "mixed" | "off" (selector not
  /// consulted — lookahead disabled or no sink reached selection).
  std::string selector = "off";
  bool parallel = false;  ///< Planned in the batch's parallel phase?
  bool certified = false;  ///< Committed from a certified no-conflict wave?
  uint64_t pips = 0;      ///< PIPs durably turned on for this net.
  uint64_t sinks = 0;     ///< Sink pins routed by the committing request.
  uint64_t searchVisits = 0;   ///< Template + maze nodes visited.
  uint64_t claimRetries = 0;   ///< Searches re-run after lost claim races.
  uint64_t latencyUs = 0;      ///< Enqueue-to-commit.
  std::string txn = "committed";   ///< Records only exist for commits.
  std::string drc = "unchecked";   ///< "pass" when the paranoid DRC ran clean.
  uint64_t updates = 0;  ///< Times a later request extended this net.
  uint64_t seq = 0;      ///< Commit sequence, stamped by the store.

  /// Multi-line human rendering (jrsh `why <net>`).
  std::string text() const;
  /// Single JSON object (flight-recorder bundles, jrsh `why ... json`).
  std::string json() const;
};

/// Which engine satisfied a route, from per-request search counters.
/// Precedence: any maze involvement beside template work is "mixed";
/// pure maze is "maze"; a bus shape-hint refit is "shape-hint"; library
/// or user templates are "template"; no search at all is "reuse" (every
/// sink was already on the net).
const char* classifyAlgorithm(uint64_t templateHits, uint64_t mazeRuns,
                              uint64_t shapeReuseHits);

/// What the lookahead strategy selector decided for a request, from the
/// per-request selector counters. One decision kind across every sink
/// names it; several kinds is "mixed"; no decisions at all is "off".
const char* classifySelector(uint64_t selTemplate, uint64_t selLongLine,
                             uint64_t selMaze);

/// Bounded provenance store keyed by net source node.
class ProvenanceStore {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit ProvenanceStore(size_t capacity = kDefaultCapacity);
  ~ProvenanceStore();
  ProvenanceStore(const ProvenanceStore&) = delete;
  ProvenanceStore& operator=(const ProvenanceStore&) = delete;

  /// Insert (or merge into) the record for `rec.netSource`. A record that
  /// already exists for the source is overwritten with the new request's
  /// view and its `updates` count carried forward + 1. Stamps `seq`.
  void record(NetProvenance rec);

  /// Record for the net driven from `netSource`, if retained.
  std::optional<NetProvenance> find(uint64_t netSource) const;

  /// Most recently committed record (jrsh `explain last`).
  std::optional<NetProvenance> last() const;

  /// Forget the record for an unrouted net. No-op when absent.
  void forget(uint64_t netSource);

  size_t size() const;
  void clear();

  /// {"provenance":[{...},...]} in commit order, oldest first.
  std::string json() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global store the routing service records into.
ProvenanceStore& provenance();

}  // namespace jrobs
