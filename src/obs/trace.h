// Lock-free event tracing with Chrome trace_event JSON export.
//
// Each thread that emits events owns a fixed-size ring buffer it alone
// writes (registered once under a mutex, then wait-free): recording an
// event is a clock read, a slot write, and one release store — cheap
// enough to leave the scopes compiled into the hot paths and gate them
// on a single atomic flag. When tracing is off (the default) a scope
// costs one relaxed load and a branch.
//
// Export renders the rings as Chrome's trace_event JSON (the
// `{"traceEvents":[...]}` array format), which chrome://tracing and
// Perfetto load directly — ts/dur in microseconds, one tid per ring.
// Rings overwrite their oldest events when full; the export reports how
// many were dropped per thread so a truncated trace is never mistaken
// for a complete one.
//
// With JROUTE_NO_TELEMETRY the tracer is a stub (never enabled, empty
// export) and JR_TRACE_SCOPE expands to nothing.
#pragma once

#include <cstdint>
#include <string>

#ifndef JROUTE_NO_TELEMETRY
#include <atomic>
#include <chrono>
#endif

namespace jrobs {

#ifndef JROUTE_NO_TELEMETRY

/// One duration ("X"), instant ("i"), or counter ("C") event.
/// Name/category must be string literals (or otherwise outlive the
/// tracer): rings store the pointers, never copies.
struct TraceEvent {
  enum class Phase : uint8_t { kDuration, kInstant, kCounter };

  const char* cat = nullptr;
  const char* name = nullptr;
  uint64_t tsNs = 0;   // since tracer epoch
  uint64_t durNs = 0;  // duration events; counter value for counters
  Phase phase = Phase::kDuration;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Start a fresh capture: clears every ring, then enables recording.
  void start();
  /// Stop recording. Events already captured stay exportable.
  void stop();
  /// Drop every captured event without touching the enabled flag. jrsh
  /// `stats reset` uses this so a reset scopes traces the same way it
  /// scopes counters. Call at quiescence (or accept that in-flight
  /// spans may land in the cleared rings).
  void clear();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record a completed span. No-op unless enabled.
  void record(const char* cat, const char* name, uint64_t tsNs,
              uint64_t durNs);
  /// Record a point-in-time event. No-op unless enabled.
  void instant(const char* cat, const char* name);
  /// Record a counter sample ("C" phase: Perfetto renders each name as
  /// a value track). The jrprof stage sampler emits one per stage per
  /// tick. No-op unless enabled.
  void counter(const char* cat, const char* name, uint64_t value);

  /// Nanoseconds since the tracer epoch (first use in the process).
  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Chrome trace_event JSON of everything captured. Call after stop()
  /// (or at a point where emitting threads are quiescent): single-writer
  /// rings are safe to read then, and the export is a consistent cut.
  std::string exportJson() const;

  /// Events currently held across all rings (capped by ring capacity).
  size_t eventCount() const;
  /// Events overwritten because a ring wrapped.
  size_t droppedCount() const;

  static constexpr size_t kRingCapacity = 1u << 14;  // events per thread

 private:
  Tracer();
  ~Tracer() = delete;  // process-lifetime singleton; rings stay valid

  struct Ring;
  Ring& localRing();

  struct Impl;
  Impl* impl_;
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII duration span. Records on destruction when tracing was enabled
/// at construction AND still is at destruction (a stop() in between
/// drops the span instead of writing into a ring being exported).
class TraceScope {
 public:
  TraceScope(const char* cat, const char* name)
      : cat_(cat), name_(name) {
    Tracer& t = Tracer::instance();
    live_ = t.enabled();
    if (live_) t0_ = t.nowNs();
  }
  ~TraceScope() {
    if (!live_) return;
    Tracer& t = Tracer::instance();
    const uint64_t t1 = t.nowNs();
    t.record(cat_, name_, t0_, t1 - t0_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* cat_;
  const char* name_;
  uint64_t t0_ = 0;
  bool live_ = false;
};

#define JR_TRACE_CONCAT2(a, b) a##b
#define JR_TRACE_CONCAT(a, b) JR_TRACE_CONCAT2(a, b)
/// Scoped duration event: JR_TRACE_SCOPE("service", "plan.parallel");
#define JR_TRACE_SCOPE(cat, name) \
  ::jrobs::TraceScope JR_TRACE_CONCAT(jrTraceScope_, __LINE__)(cat, name)
/// Point event: JR_TRACE_INSTANT("service", "claim.conflict");
#define JR_TRACE_INSTANT(cat, name) \
  ::jrobs::Tracer::instance().instant(cat, name)

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

class Tracer {
 public:
  static Tracer& instance();
  void start() {}
  void stop() {}
  void clear() {}
  bool enabled() const { return false; }
  void record(const char*, const char*, uint64_t, uint64_t) {}
  void instant(const char*, const char*) {}
  void counter(const char*, const char*, uint64_t) {}
  uint64_t nowNs() const { return 0; }
  std::string exportJson() const { return "{\"traceEvents\":[]}"; }
  size_t eventCount() const { return 0; }
  size_t droppedCount() const { return 0; }

  static constexpr size_t kRingCapacity = 1u << 14;  // mirrors the real tracer
};

#define JR_TRACE_SCOPE(cat, name) \
  do {                            \
  } while (false)
#define JR_TRACE_INSTANT(cat, name) \
  do {                              \
  } while (false)

#endif  // JROUTE_NO_TELEMETRY

/// Write exportJson() to `path`. Returns false (and sets `error`) on I/O
/// failure. Available in both build modes (writes an empty trace when
/// compiled out).
bool dumpTrace(const std::string& path, std::string* error = nullptr);

}  // namespace jrobs
