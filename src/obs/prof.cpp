#include "obs/prof.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "check/lockcheck.h"
#include "obs/jsonutil.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jrprof {

namespace detail {

std::atomic<uint32_t> armedFlag{0};

}  // namespace detail

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Lock-contention accumulation
//
// One stats block per jrcheck registry slot, created lazily under a raw
// std::mutex (never a jrsync::Mutex: the profiler's own locks must not
// feed the instrumentation they implement — same rule as jrcheck). The
// hot path is an acquire load of the slot pointer plus relaxed adds.

constexpr uint32_t kMaxSlots = 512;

struct SlotStats {
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> contended{0};
  std::atomic<uint64_t> waitNs{0};
  std::atomic<uint64_t> holdNs{0};
  std::atomic<uint64_t> waitMaxNs{0};
  jrobs::Counter* acqCtr = nullptr;
  jrobs::Counter* contCtr = nullptr;
  jrobs::Histogram* waitHist = nullptr;
  jrobs::Histogram* holdHist = nullptr;
};

std::atomic<SlotStats*> g_slots[kMaxSlots] = {};

/// Locks held while armed in a previous arming session must not close
/// hold intervals into the current one; entries are tagged with the
/// generation they were pushed under.
std::atomic<uint32_t> g_armGen{0};

// Registering a slot's metrics takes the registry mutex — itself a
// jrsync::Mutex — so the hooks must be reentrancy-guarded exactly like
// jrcheck's, or first-sight registration would recurse into itself.
thread_local bool t_inHook = false;

/// The one mutex whose sync.* metrics can never be registry-backed: its
/// locked() hook fires while the thread holds it, and registration would
/// re-lock it (non-recursive) — instant self-deadlock. Its stats live in
/// the slot atomics only, which is all the contenders report reads.
constexpr const char* kRegistryLockName = "obs.metrics";

SlotStats* statsFor(uint32_t slot) {
  if (slot == 0 || slot >= kMaxSlots) return nullptr;
  SlotStats* s = g_slots[slot].load(std::memory_order_acquire);
  if (s != nullptr) return s;
  // Lock-free creation: a guard mutex here would close an ABBA cycle
  // with the registry lock (another thread inside the registry running
  // its own first-sight hook). Concurrent losers re-register the same
  // metric names — the registry dedups by name — and delete their block.
  auto* fresh = new SlotStats();
  const std::string name = jrcheck::lockName(slot);
  if (name != kRegistryLockName) {
    jrobs::MetricsRegistry& reg = jrobs::registry();
    fresh->acqCtr = &reg.counter("sync." + name + ".acquires");
    fresh->contCtr = &reg.counter("sync." + name + ".contended");
    fresh->waitHist = &reg.histogram("sync." + name + ".wait_us");
    fresh->holdHist = &reg.histogram("sync." + name + ".hold_us");
  }
  SlotStats* expected = nullptr;
  if (!g_slots[slot].compare_exchange_strong(expected, fresh,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
    delete fresh;
    return expected;
  }
  return fresh;
}

void recordAcquire(SlotStats& s, uint64_t waitNs, bool contended) {
  s.acquires.fetch_add(1, std::memory_order_relaxed);
  if (s.acqCtr != nullptr) s.acqCtr->add(1);
  if (!contended) return;
  s.contended.fetch_add(1, std::memory_order_relaxed);
  s.waitNs.fetch_add(waitNs, std::memory_order_relaxed);
  uint64_t cur = s.waitMaxNs.load(std::memory_order_relaxed);
  while (waitNs > cur && !s.waitMaxNs.compare_exchange_weak(
                             cur, waitNs, std::memory_order_relaxed)) {
  }
  if (s.contCtr != nullptr) s.contCtr->add(1);
  if (s.waitHist != nullptr) s.waitHist->record(waitNs / 1000);
}

void recordRelease(SlotStats& s, uint64_t holdNs) {
  s.holdNs.fetch_add(holdNs, std::memory_order_relaxed);
  if (s.holdHist != nullptr) s.holdHist->record(holdNs / 1000);
}

// Per-thread held stack for hold-time attribution. Fixed storage: the
// hooks may run under any lock in the process and must never allocate.
struct HeldEntry {
  uint32_t slot = 0;
  uint32_t gen = 0;
  uint64_t tAcqNs = 0;
  SlotStats* stats = nullptr;
};
constexpr int kMaxHeld = 32;
thread_local HeldEntry t_held[kMaxHeld];
thread_local int t_heldDepth = 0;

// ---------------------------------------------------------------------------
// Batch aggregate

std::atomic<uint64_t> g_batches{0};
std::atomic<uint64_t> g_minEffPct{UINT64_MAX};

struct BatchMetrics {
  jrobs::Histogram& wallUs;
  jrobs::Histogram& planWorkUs;
  jrobs::Histogram& criticalPathUs;
  jrobs::Histogram& efficiencyPct;
  jrobs::Histogram& serialSharePct;
};

BatchMetrics& batchMetrics() {
  static BatchMetrics m{
      jrobs::registry().histogram("service.batch.wall_us"),
      jrobs::registry().histogram("service.batch.plan_work_us"),
      jrobs::registry().histogram("service.batch.critical_path_us"),
      jrobs::registry().histogram("service.batch.efficiency_pct"),
      jrobs::registry().histogram("service.batch.serial_share_pct"),
  };
  return m;
}

std::string fmtDouble(double v, const char* fmt = "%.4f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Hooks (called from common/sync.h when armed)

namespace detail {

void locked(jrsync::Mutex& mu, uint64_t waitNs, bool contended) {
  if (t_inHook) return;
  t_inHook = true;
  const uint32_t slot = jrcheck::slotOf(mu);
  SlotStats* s = statsFor(slot);
  if (s != nullptr) {
    recordAcquire(*s, waitNs, contended);
    if (t_heldDepth < kMaxHeld) {
      t_held[t_heldDepth++] = {slot,
                               g_armGen.load(std::memory_order_relaxed),
                               nowNs(), s};
    }
  }
  t_inHook = false;
}

void unlocking(jrsync::Mutex& mu) {
  if (t_inHook) return;
  t_inHook = true;
  // Read the slot without registering: a mutex first seen at unlock was
  // locked while disarmed and has no open hold interval anyway.
  const uint32_t slot = mu.checkSlot().load(std::memory_order_acquire);
  if (slot != 0) {
    const uint32_t gen = g_armGen.load(std::memory_order_relaxed);
    for (int i = t_heldDepth - 1; i >= 0; --i) {
      if (t_held[i].slot != slot) continue;
      if (t_held[i].gen == gen && t_held[i].stats != nullptr) {
        recordRelease(*t_held[i].stats, nowNs() - t_held[i].tAcqNs);
      }
      for (int j = i; j + 1 < t_heldDepth; ++j) t_held[j] = t_held[j + 1];
      --t_heldDepth;
      break;
    }
  }
  t_inHook = false;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Test seams

void noteAcquire(uint32_t slot, uint64_t waitNs, bool contended) {
  SlotStats* s = statsFor(slot);
  if (s != nullptr) recordAcquire(*s, waitNs, contended);
}

void noteRelease(uint32_t slot, uint64_t holdNs) {
  SlotStats* s = statsFor(slot);
  if (s != nullptr) recordRelease(*s, holdNs);
}

// ---------------------------------------------------------------------------
// Lock-contention report

LockContentionReport lockReport() {
  LockContentionReport rep;
  rep.armed = armed();
  std::map<std::string, LockStat> byName;
  const uint32_t count = std::min(jrcheck::lockCount(), kMaxSlots - 1);
  for (uint32_t slot = 1; slot <= count; ++slot) {
    SlotStats* s = g_slots[slot].load(std::memory_order_acquire);
    if (s == nullptr) continue;
    const uint64_t acquires = s->acquires.load(std::memory_order_relaxed);
    const uint64_t holdNs = s->holdNs.load(std::memory_order_relaxed);
    if (acquires == 0 && holdNs == 0) continue;
    const std::string name = jrcheck::lockName(slot);
    LockStat& ls = byName[name];
    ls.name = name;
    ls.acquires += acquires;
    ls.contended += s->contended.load(std::memory_order_relaxed);
    ls.waitUs += s->waitNs.load(std::memory_order_relaxed) / 1000;
    ls.holdUs += holdNs / 1000;
    ls.waitMaxUs = std::max(
        ls.waitMaxUs, s->waitMaxNs.load(std::memory_order_relaxed) / 1000);
  }
  for (auto& [name, ls] : byName) {
    ls.contendedShare =
        ls.acquires == 0
            ? 0.0
            : static_cast<double>(ls.contended) /
                  static_cast<double>(ls.acquires);
    rep.locks.push_back(ls);
  }
  std::sort(rep.locks.begin(), rep.locks.end(),
            [](const LockStat& a, const LockStat& b) {
              if (a.waitUs != b.waitUs) return a.waitUs > b.waitUs;
              if (a.contended != b.contended) return a.contended > b.contended;
              return a.name < b.name;
            });
  return rep;
}

std::string LockContentionReport::text(size_t k) const {
  std::string out = "lock contention — top contenders by total wait";
  out += armed ? " (armed)\n" : " (disarmed)\n";
  if (locks.empty()) {
    out += "  no contended acquisitions observed; arm with `prof arm` (or "
           "JROUTE_PROF=1) and drive load\n";
    return out;
  }
  char line[256];
  std::snprintf(line, sizeof line, "  %-24s %10s %10s %7s %12s %12s %12s\n",
                "lock", "acquires", "contended", "cont%", "wait_us",
                "max_wait_us", "hold_us");
  out += line;
  const size_t n = std::min(k, locks.size());
  for (size_t i = 0; i < n; ++i) {
    const LockStat& ls = locks[i];
    std::snprintf(line, sizeof line,
                  "  %-24s %10llu %10llu %6.1f%% %12llu %12llu %12llu\n",
                  ls.name.c_str(),
                  static_cast<unsigned long long>(ls.acquires),
                  static_cast<unsigned long long>(ls.contended),
                  ls.contendedShare * 100.0,
                  static_cast<unsigned long long>(ls.waitUs),
                  static_cast<unsigned long long>(ls.waitMaxUs),
                  static_cast<unsigned long long>(ls.holdUs));
    out += line;
  }
  if (locks.size() > n) {
    out += "  (" + std::to_string(locks.size() - n) + " more; see `prof json`)\n";
  }
  return out;
}

std::string LockContentionReport::json() const {
  std::string out = "[";
  for (size_t i = 0; i < locks.size(); ++i) {
    const LockStat& ls = locks[i];
    if (i > 0) out += ",";
    out += "{" + jrobs::jsonKv("name", ls.name) +
           ",\"acquires\":" + std::to_string(ls.acquires) +
           ",\"contended\":" + std::to_string(ls.contended) +
           ",\"contended_share\":" + fmtDouble(ls.contendedShare) +
           ",\"wait_us\":" + std::to_string(ls.waitUs) +
           ",\"wait_max_us\":" + std::to_string(ls.waitMaxUs) +
           ",\"hold_us\":" + std::to_string(ls.holdUs) + "}";
  }
  out += "]";
  return out;
}

// ---------------------------------------------------------------------------
// Batch critical path

BatchRequestSample sampleFromSpan(const jrobs::RequestSpan& span,
                                  bool parallel) {
  // Mirror SpanAggregator::fold's monotone clamp so batch arithmetic and
  // the span report agree to the microsecond.
  BatchRequestSample out;
  out.parallel = parallel;
  uint64_t segUs[jrobs::kNumSpanSegments] = {};
  uint64_t prev = span.at(jrobs::SpanStage::kEnqueue);
  for (size_t i = 1; i < jrobs::kNumSpanStages; ++i) {
    const uint64_t raw = span.at(static_cast<jrobs::SpanStage>(i));
    const uint64_t t = std::max(raw == 0 ? prev : raw, prev);
    segUs[i - 1] = (t - prev) / 1000;
    prev = t;
  }
  out.planUs = segUs[2];         // kPlanStart -> kPlanEnd
  out.arbitrationUs = segUs[3];  // kPlanEnd -> kArbitration
  out.commitUs = segUs[4];       // kArbitration -> kCommit
  return out;
}

BatchProfile profileBatch(const std::vector<BatchRequestSample>& reqs,
                          uint64_t wallUs, unsigned planThreads) {
  BatchProfile p;
  p.requests = reqs.size();
  p.planThreads = planThreads == 0 ? 1 : planThreads;
  p.wallUs = wallUs;
  for (const BatchRequestSample& r : reqs) {
    p.planWorkUs += r.planUs;
    p.commitUs += r.commitUs;
    if (r.parallel) {
      p.maxPlanUs = std::max(p.maxPlanUs, r.planUs);
    } else {
      p.serialWorkUs += r.planUs;
    }
  }
  p.criticalPathUs = p.maxPlanUs + p.commitUs + p.serialWorkUs;
  if (wallUs > 0) {
    p.efficiency = static_cast<double>(p.planWorkUs) /
                   (static_cast<double>(wallUs) *
                    static_cast<double>(p.planThreads));
    p.serialShare = std::min(
        1.0, static_cast<double>(p.commitUs + p.serialWorkUs) /
                 static_cast<double>(wallUs));
  }
  return p;
}

std::string BatchProfile::json() const {
  return "{\"requests\":" + std::to_string(requests) +
         ",\"plan_threads\":" + std::to_string(planThreads) +
         ",\"wall_us\":" + std::to_string(wallUs) +
         ",\"plan_work_us\":" + std::to_string(planWorkUs) +
         ",\"max_plan_us\":" + std::to_string(maxPlanUs) +
         ",\"commit_us\":" + std::to_string(commitUs) +
         ",\"serial_work_us\":" + std::to_string(serialWorkUs) +
         ",\"critical_path_us\":" + std::to_string(criticalPathUs) +
         ",\"efficiency\":" + fmtDouble(efficiency) +
         ",\"serial_share\":" + fmtDouble(serialShare) + "}";
}

bool recordBatch(const BatchProfile& p) {
  BatchMetrics& m = batchMetrics();
  m.wallUs.record(p.wallUs);
  m.planWorkUs.record(p.planWorkUs);
  m.criticalPathUs.record(p.criticalPathUs);
  const auto effPct =
      static_cast<uint64_t>(std::llround(p.efficiency * 100.0));
  m.efficiencyPct.record(effPct);
  m.serialSharePct.record(
      static_cast<uint64_t>(std::llround(p.serialShare * 100.0)));
  g_batches.fetch_add(1, std::memory_order_relaxed);

  if (p.requests < kLowEfficiencyMinRequests ||
      p.efficiency >= kLowEfficiencyThreshold) {
    return false;
  }
  uint64_t cur = g_minEffPct.load(std::memory_order_relaxed);
  while (effPct < cur) {
    if (g_minEffPct.compare_exchange_weak(cur, effPct,
                                          std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Stage sampler

const char* stageName(size_t i) {
  static const char* const kNames[kNumStages] = {"idle", "queue", "plan",
                                                 "arbitrate", "commit"};
  return i < kNumStages ? kNames[i] : "?";
}

struct StageSampler::Impl {
  // Raw std::mutex on purpose: guards beacon registration and the
  // sampler thread's lifecycle, never hot.
  std::mutex mu;
  std::vector<StageBeacon*> beacons;
  std::atomic<uint64_t> perStage[kNumStages] = {};
  std::atomic<uint64_t> samples{0};
  std::atomic<uint64_t> ticks{0};
  std::atomic<bool> running{false};
  std::thread thread;
};

StageSampler::StageSampler() : impl_(new Impl()) {}

StageSampler& StageSampler::instance() {
  static StageSampler* s = new StageSampler();
  return *s;
}

StageBeacon& threadBeacon() {
  thread_local StageBeacon* beacon = [] {
    auto* b = new StageBeacon();  // leaked: the sampler may outlive us
    StageSampler::Impl& impl = *StageSampler::instance().impl_;
    std::lock_guard lk(impl.mu);
    impl.beacons.push_back(b);
    return b;
  }();
  return *beacon;
}

void StageSampler::sampleOnce() {
  uint64_t counts[kNumStages] = {};
  {
    std::lock_guard lk(impl_->mu);
    for (const StageBeacon* b : impl_->beacons) {
      size_t s = static_cast<size_t>(b->get());
      if (s >= kNumStages) s = 0;
      ++counts[s];
    }
  }
  uint64_t total = 0;
  for (size_t i = 0; i < kNumStages; ++i) {
    impl_->perStage[i].fetch_add(counts[i], std::memory_order_relaxed);
    total += counts[i];
  }
  impl_->samples.fetch_add(total, std::memory_order_relaxed);
  impl_->ticks.fetch_add(1, std::memory_order_relaxed);

  jrobs::Tracer& tracer = jrobs::Tracer::instance();
  if (tracer.enabled()) {
    // One counter track per stage: the number of engine threads observed
    // in it this tick. Perfetto renders these as stacked area charts
    // alongside the duration events.
    for (size_t i = 0; i < kNumStages; ++i) {
      tracer.counter("prof", stageName(i), counts[i]);
    }
  }
}

StageReport StageSampler::report() const {
  StageReport r;
  r.samples = impl_->samples.load(std::memory_order_relaxed);
  r.ticks = impl_->ticks.load(std::memory_order_relaxed);
  r.periodUs = kPeriodUs;
  for (size_t i = 0; i < kNumStages; ++i) {
    r.perStage[i] = impl_->perStage[i].load(std::memory_order_relaxed);
  }
  return r;
}

void StageSampler::reset() {
  for (auto& s : impl_->perStage) s.store(0, std::memory_order_relaxed);
  impl_->samples.store(0, std::memory_order_relaxed);
  impl_->ticks.store(0, std::memory_order_relaxed);
}

void StageSampler::startThread() {
  std::lock_guard lk(impl_->mu);
  if (impl_->running.load(std::memory_order_relaxed)) return;
  impl_->running.store(true, std::memory_order_relaxed);
  impl_->thread = std::thread([this] {
    while (impl_->running.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::microseconds(kPeriodUs));
      sampleOnce();
    }
  });
}

void StageSampler::stopThread() {
  std::thread toJoin;
  {
    std::lock_guard lk(impl_->mu);
    if (!impl_->running.load(std::memory_order_relaxed)) return;
    impl_->running.store(false, std::memory_order_relaxed);
    toJoin = std::move(impl_->thread);
  }
  if (toJoin.joinable()) toJoin.join();
}

double StageReport::share(size_t i) const {
  if (i >= kNumStages) return 0.0;
  uint64_t busy = 0;
  for (size_t s = 1; s < kNumStages; ++s) busy += perStage[s];
  if (i == 0 || busy == 0) {
    return samples == 0 ? 0.0
                        : static_cast<double>(perStage[i]) /
                              static_cast<double>(samples);
  }
  return static_cast<double>(perStage[i]) / static_cast<double>(busy);
}

std::string StageReport::text() const {
  std::string out = "stage sampling — " + std::to_string(ticks) +
                    " ticks @ " + std::to_string(periodUs) + " us, " +
                    std::to_string(samples) + " thread-samples\n";
  if (samples == 0) {
    out += "  no samples; the sampler runs only while prof is armed\n";
    return out;
  }
  char line[160];
  std::snprintf(line, sizeof line, "  %-10s %10s %8s %12s\n", "stage",
                "samples", "share", "est_wall_ms");
  out += line;
  for (size_t i = 0; i < kNumStages; ++i) {
    std::snprintf(line, sizeof line, "  %-10s %10llu %7.1f%% %12.1f\n",
                  stageName(i),
                  static_cast<unsigned long long>(perStage[i]),
                  share(i) * 100.0,
                  static_cast<double>(perStage[i] * periodUs) / 1000.0);
    out += line;
  }
  out += "  (share is of non-idle samples; idle's is of all samples)\n";
  return out;
}

std::string StageReport::json() const {
  std::string out = "{\"ticks\":" + std::to_string(ticks) +
                    ",\"period_us\":" + std::to_string(periodUs) +
                    ",\"samples\":" + std::to_string(samples) +
                    ",\"stages\":[";
  for (size_t i = 0; i < kNumStages; ++i) {
    if (i > 0) out += ",";
    out += "{" + jrobs::jsonKv("name", stageName(i)) +
           ",\"samples\":" + std::to_string(perStage[i]) +
           ",\"share\":" + fmtDouble(share(i)) + "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// Arming & combined report

void arm() {
#ifndef JROUTE_NO_TELEMETRY
  if (armed()) return;
  g_armGen.fetch_add(1, std::memory_order_relaxed);
  detail::armedFlag.store(1, std::memory_order_relaxed);
  StageSampler::instance().startThread();
#endif
}

void disarm() {
  if (!armed()) return;
  detail::armedFlag.store(0, std::memory_order_relaxed);
  StageSampler::instance().stopThread();
}

void maybeArmFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("JROUTE_PROF");
    if (env != nullptr && env[0] != '\0' && env[0] != '0') arm();
  });
}

void resetAll() {
  const uint32_t count = std::min(jrcheck::lockCount(), kMaxSlots - 1);
  for (uint32_t slot = 1; slot <= count; ++slot) {
    SlotStats* s = g_slots[slot].load(std::memory_order_acquire);
    if (s == nullptr) continue;
    s->acquires.store(0, std::memory_order_relaxed);
    s->contended.store(0, std::memory_order_relaxed);
    s->waitNs.store(0, std::memory_order_relaxed);
    s->holdNs.store(0, std::memory_order_relaxed);
    s->waitMaxNs.store(0, std::memory_order_relaxed);
  }
  g_batches.store(0, std::memory_order_relaxed);
  g_minEffPct.store(UINT64_MAX, std::memory_order_relaxed);
  StageSampler::instance().reset();
}

ProfReport report() {
  ProfReport r;
  r.armed = armed();
  r.locks = lockReport();
  r.stages = StageSampler::instance().report();
  r.batches = g_batches.load(std::memory_order_relaxed);
  return r;
}

std::string ProfReport::text() const {
  std::string out = "jrprof — ";
  out += armed ? "armed" : "disarmed";
  out += ", " + std::to_string(batches) + " batches profiled\n\n";
  out += locks.text(10);
  out += "\n";
  out += stages.text();
  out += "\nbatch critical path: service.batch.* histograms (see `stats`)\n";
  return out;
}

std::string ProfReport::topText() const { return locks.text(10); }

std::string ProfReport::json() const {
  std::string out = "{\"prof\":{\"armed\":";
  out += armed ? "true" : "false";
  out += ",\"batches\":" + std::to_string(batches);
  out += ",\"locks\":" + locks.json();
  out += ",\"stages\":" + stages.json();
  out += "}}";
  return out;
}

}  // namespace jrprof
