// Tiny JSON string escaper shared by the obs renderers (provenance,
// flight recorder, heatmap). Everything src/obs emits is consumed by
// machines — Chrome tracing, the test suite's RFC-8259 validator,
// post-mortem scripts — so any string that came from an exception
// message or a net name must be escaped, not trusted to be clean.
// Header-only and build-mode independent (rendering is never hot-path).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace jrobs {

/// RFC 8259 string escape (without the surrounding quotes).
inline std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// `"key":"escaped"` fragment, the common case in the obs renderers.
inline std::string jsonKv(std::string_view key, std::string_view value) {
  return "\"" + std::string(key) + "\":\"" + jsonEscape(value) + "\"";
}

}  // namespace jrobs
