#include "obs/flightrec.h"

#include "obs/jsonutil.h"
#include "obs/metrics.h"

#ifndef JROUTE_NO_TELEMETRY
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/sync.h"
#endif

namespace jrobs {

#ifndef JROUTE_NO_TELEMETRY

namespace {

std::string u64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

struct FlightMetrics {
  Counter& anomalies = registry().counter("obs.flightrec.anomalies");
  Counter& bundles = registry().counter("obs.flightrec.bundles_written");
  Counter& notes = registry().counter("obs.flightrec.notes");
};

FlightMetrics& flightMetrics() {
  static FlightMetrics m;
  return m;
}

}  // namespace

struct FlightRecorder::Impl {
  /// One thread's single-writer ring, same publish protocol as the
  /// tracer: the owning thread writes a slot, then publishes it with a
  /// release store of head (total events ever written); readers acquire
  /// head and only touch slots below it.
  struct Ring {
    std::array<FlightEvent, kRingCapacity> events;
    std::atomic<uint64_t> head{0};
  };

  mutable jrsync::Mutex mu{"obs.flightrec"};
  /// Ring registration and merge only — never taken on the note() path.
  std::vector<std::unique_ptr<Ring>> rings JR_GUARDED_BY(mu);
  bool armed JR_GUARDED_BY(mu) = false;
  std::string dir JR_GUARDED_BY(mu);
  uint64_t nextSeq JR_GUARDED_BY(mu) = 1;
  uint64_t anomalies JR_GUARDED_BY(mu) = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  }

  Ring& localRing() {
    thread_local Ring* ring = nullptr;
    if (ring == nullptr) {
      auto owned = std::make_unique<Ring>();
      ring = owned.get();
      jrsync::MutexLock lock(mu);
      rings.push_back(std::move(owned));
    }
    return *ring;
  }

  /// Merge every thread's retained events, oldest first across threads
  /// (per-ring order is already chronological; the cross-ring merge sorts
  /// by timestamp, mirroring how the tracer's viewer orders its export).
  std::vector<FlightEvent> mergedEvents() const JR_REQUIRES(mu) {
    std::vector<FlightEvent> all;
    for (const auto& r : rings) {
      const uint64_t h = r->head.load(std::memory_order_acquire);
      const uint64_t n = std::min<uint64_t>(h, kRingCapacity);
      for (uint64_t seq = h - n; seq < h; ++seq) {
        all.push_back(r->events[seq % kRingCapacity]);
      }
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const FlightEvent& a, const FlightEvent& b) {
                       return a.tsNs < b.tsNs;
                     });
    return all;
  }

  std::string eventsJson() const JR_REQUIRES(mu) {
    std::string out = "[";
    bool first = true;
    for (const FlightEvent& e : mergedEvents()) {
      if (!first) out += ",";
      first = false;
      out += "{\"ts_ns\":" + u64(e.tsNs) + "," +
             jsonKv("cat", e.cat ? e.cat : "") + "," +
             jsonKv("name", e.name ? e.name : "") + ",\"a\":" + u64(e.a) +
             ",\"b\":" + u64(e.b) + "}";
    }
    out += "]";
    return out;
  }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {
  if (const char* dir = std::getenv("JROUTE_FLIGHT_DIR")) {
    if (dir[0] != '\0') {
      jrsync::MutexLock lock(impl_->mu);
      impl_->armed = true;
      impl_->dir = dir;
    }
  }
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked on purpose
  return *recorder;
}

void FlightRecorder::note(const char* cat, const char* name, uint64_t a,
                          uint64_t b) {
  flightMetrics().notes.add();
  Impl::Ring& r = impl_->localRing();
  const uint64_t h = r.head.load(std::memory_order_relaxed);
  FlightEvent& slot = r.events[h % kRingCapacity];
  slot.tsNs = impl_->nowNs();
  slot.cat = cat;
  slot.name = name;
  slot.a = a;
  slot.b = b;
  r.head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::arm(const std::string& dir) {
  jrsync::MutexLock lock(impl_->mu);
  impl_->armed = true;
  impl_->dir = dir;
}

void FlightRecorder::disarm() {
  jrsync::MutexLock lock(impl_->mu);
  impl_->armed = false;
  impl_->dir.clear();
}

bool FlightRecorder::armed() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->armed;
}

std::string FlightRecorder::dir() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->dir;
}

std::string FlightRecorder::anomaly(const std::string& kind,
                                    const std::string& detail,
                                    const std::string& extraJson) {
  flightMetrics().anomalies.add();
  registry().counter("obs.flightrec.anomaly." + kind).add();

  {
    jrsync::MutexLock lock(impl_->mu);
    ++impl_->anomalies;
    if (!impl_->armed) return "";
  }

  // Snapshot the registry *outside* the ring lock: snapshot() takes the
  // registry mutex, and metric registration can happen on any thread.
  // Only when armed — disarmed anomalies must stay counter-cheap.
  const std::string metricsJson = registry().renderJson();

  std::string bundle;
  std::string path;
  {
    jrsync::MutexLock lock(impl_->mu);
    if (!impl_->armed) return "";  // disarmed between the checks
    const uint64_t seq = impl_->nextSeq++;
    path = impl_->dir + "/flightrec-" + u64(seq) + "-" + kind + ".json";
    bundle = "{\"flightrec\":{";
    bundle += jsonKv("kind", kind) + ",";
    bundle += jsonKv("detail", detail) + ",";
    bundle += "\"seq\":" + u64(seq) + ",";
    bundle += "\"ts_ns\":" + u64(impl_->nowNs()) + ",";
    bundle += "\"events\":" + impl_->eventsJson() + ",";
    bundle += "\"extra\":" + (extraJson.empty() ? "null" : extraJson) + ",";
    bundle += "\"metrics\":" + metricsJson;
    bundle += "}}";
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return "";
  const size_t wrote = std::fwrite(bundle.data(), 1, bundle.size(), f);
  std::fclose(f);
  if (wrote != bundle.size()) return "";
  flightMetrics().bundles.add();
  return path;
}

size_t FlightRecorder::eventCount() const {
  jrsync::MutexLock lock(impl_->mu);
  size_t n = 0;
  for (const auto& r : impl_->rings) {
    n += static_cast<size_t>(std::min<uint64_t>(
        r->head.load(std::memory_order_acquire), kRingCapacity));
  }
  return n;
}

uint64_t FlightRecorder::anomalyCount() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->anomalies;
}

void FlightRecorder::clear() {
  // Reset heads rather than unregister: a writer thread may hold a
  // pointer to its ring, so rings live for the process lifetime.
  jrsync::MutexLock lock(impl_->mu);
  for (auto& r : impl_->rings) r->head.store(0, std::memory_order_release);
}

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

struct FlightRecorder::Impl {};

FlightRecorder::FlightRecorder() : impl_(nullptr) {}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked on purpose
  return *recorder;
}

void FlightRecorder::note(const char*, const char*, uint64_t, uint64_t) {}
void FlightRecorder::arm(const std::string&) {}
void FlightRecorder::disarm() {}
bool FlightRecorder::armed() const { return false; }
std::string FlightRecorder::dir() const { return ""; }
std::string FlightRecorder::anomaly(const std::string&, const std::string&,
                                    const std::string&) {
  return "";
}
size_t FlightRecorder::eventCount() const { return 0; }
uint64_t FlightRecorder::anomalyCount() const { return 0; }
void FlightRecorder::clear() {}

#endif  // JROUTE_NO_TELEMETRY

FlightRecorder& flightRecorder() { return FlightRecorder::instance(); }

}  // namespace jrobs
