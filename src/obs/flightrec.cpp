#include "obs/flightrec.h"

#include "obs/jsonutil.h"
#include "obs/metrics.h"

#ifndef JROUTE_NO_TELEMETRY
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/sync.h"
#endif

namespace jrobs {

#ifndef JROUTE_NO_TELEMETRY

namespace {

std::string u64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

struct FlightMetrics {
  Counter& anomalies = registry().counter("obs.flightrec.anomalies");
  Counter& bundles = registry().counter("obs.flightrec.bundles_written");
  Counter& notes = registry().counter("obs.flightrec.notes");
};

FlightMetrics& flightMetrics() {
  static FlightMetrics m;
  return m;
}

}  // namespace

struct FlightRecorder::Impl {
  mutable jrsync::Mutex mu;
  std::vector<FlightEvent> ring JR_GUARDED_BY(mu){kRingCapacity};
  size_t head JR_GUARDED_BY(mu) = 0;   // next write slot
  size_t count JR_GUARDED_BY(mu) = 0;  // valid entries (<= kRingCapacity)
  bool armed JR_GUARDED_BY(mu) = false;
  std::string dir JR_GUARDED_BY(mu);
  uint64_t nextSeq JR_GUARDED_BY(mu) = 1;
  uint64_t anomalies JR_GUARDED_BY(mu) = 0;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();

  uint64_t nowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
  }

  // Oldest-first walk of the ring.
  std::string eventsJson() const JR_REQUIRES(mu) {
    std::string out = "[";
    for (size_t i = 0; i < count; ++i) {
      const size_t idx = (head + kRingCapacity - count + i) % kRingCapacity;
      const FlightEvent& e = ring[idx];
      if (i > 0) out += ",";
      out += "{\"ts_ns\":" + u64(e.tsNs) + "," +
             jsonKv("cat", e.cat ? e.cat : "") + "," +
             jsonKv("name", e.name ? e.name : "") + ",\"a\":" + u64(e.a) +
             ",\"b\":" + u64(e.b) + "}";
    }
    out += "]";
    return out;
  }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {
  if (const char* dir = std::getenv("JROUTE_FLIGHT_DIR")) {
    if (dir[0] != '\0') {
      jrsync::MutexLock lock(impl_->mu);
      impl_->armed = true;
      impl_->dir = dir;
    }
  }
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked on purpose
  return *recorder;
}

void FlightRecorder::note(const char* cat, const char* name, uint64_t a,
                          uint64_t b) {
  flightMetrics().notes.add();
  jrsync::MutexLock lock(impl_->mu);
  FlightEvent& slot = impl_->ring[impl_->head];
  slot.tsNs = impl_->nowNs();
  slot.cat = cat;
  slot.name = name;
  slot.a = a;
  slot.b = b;
  impl_->head = (impl_->head + 1) % kRingCapacity;
  if (impl_->count < kRingCapacity) ++impl_->count;
}

void FlightRecorder::arm(const std::string& dir) {
  jrsync::MutexLock lock(impl_->mu);
  impl_->armed = true;
  impl_->dir = dir;
}

void FlightRecorder::disarm() {
  jrsync::MutexLock lock(impl_->mu);
  impl_->armed = false;
  impl_->dir.clear();
}

bool FlightRecorder::armed() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->armed;
}

std::string FlightRecorder::dir() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->dir;
}

std::string FlightRecorder::anomaly(const std::string& kind,
                                    const std::string& detail,
                                    const std::string& extraJson) {
  flightMetrics().anomalies.add();
  registry().counter("obs.flightrec.anomaly." + kind).add();

  {
    jrsync::MutexLock lock(impl_->mu);
    ++impl_->anomalies;
    if (!impl_->armed) return "";
  }

  // Snapshot the registry *outside* the ring lock: snapshot() takes the
  // registry mutex, and metric registration can happen on any thread.
  // Only when armed — disarmed anomalies must stay counter-cheap.
  const std::string metricsJson = registry().renderJson();

  std::string bundle;
  std::string path;
  {
    jrsync::MutexLock lock(impl_->mu);
    if (!impl_->armed) return "";  // disarmed between the checks
    const uint64_t seq = impl_->nextSeq++;
    path = impl_->dir + "/flightrec-" + u64(seq) + "-" + kind + ".json";
    bundle = "{\"flightrec\":{";
    bundle += jsonKv("kind", kind) + ",";
    bundle += jsonKv("detail", detail) + ",";
    bundle += "\"seq\":" + u64(seq) + ",";
    bundle += "\"ts_ns\":" + u64(impl_->nowNs()) + ",";
    bundle += "\"events\":" + impl_->eventsJson() + ",";
    bundle += "\"extra\":" + (extraJson.empty() ? "null" : extraJson) + ",";
    bundle += "\"metrics\":" + metricsJson;
    bundle += "}}";
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return "";
  const size_t wrote = std::fwrite(bundle.data(), 1, bundle.size(), f);
  std::fclose(f);
  if (wrote != bundle.size()) return "";
  flightMetrics().bundles.add();
  return path;
}

size_t FlightRecorder::eventCount() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->count;
}

uint64_t FlightRecorder::anomalyCount() const {
  jrsync::MutexLock lock(impl_->mu);
  return impl_->anomalies;
}

void FlightRecorder::clear() {
  jrsync::MutexLock lock(impl_->mu);
  impl_->head = 0;
  impl_->count = 0;
}

#else  // JROUTE_NO_TELEMETRY ------------------------------------------------

struct FlightRecorder::Impl {};

FlightRecorder::FlightRecorder() : impl_(nullptr) {}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // leaked on purpose
  return *recorder;
}

void FlightRecorder::note(const char*, const char*, uint64_t, uint64_t) {}
void FlightRecorder::arm(const std::string&) {}
void FlightRecorder::disarm() {}
bool FlightRecorder::armed() const { return false; }
std::string FlightRecorder::dir() const { return ""; }
std::string FlightRecorder::anomaly(const std::string&, const std::string&,
                                    const std::string&) {
  return "";
}
size_t FlightRecorder::eventCount() const { return 0; }
uint64_t FlightRecorder::anomalyCount() const { return 0; }
void FlightRecorder::clear() {}

#endif  // JROUTE_NO_TELEMETRY

FlightRecorder& flightRecorder() { return FlightRecorder::instance(); }

}  // namespace jrobs
