// Anomaly flight recorder: post-mortem bundles for routing failures.
//
// Counters tell you contention happened; a trace tells you when — but by
// the time someone goes looking, the interesting window is long gone.
// The flight recorder keeps a small ring of recent engine events (batch
// boundaries, claim conflicts, rollbacks, commits). Each thread writes
// its own single-writer ring — the same release/acquire publish protocol
// as the tracer (obs/trace.h) — so a note never takes a lock and worker
// threads never contend; rings are merged and time-sorted only when a
// bundle is dumped or the events are exported. When an anomaly fires
// (contention exception, rollback, deadline miss, paranoid-DRC
// violation) and the recorder is armed, it dumps a self-contained JSON
// bundle to a file: the anomaly, the last-N events, caller-supplied
// extra context (the offending net's provenance, the DRC report), and a
// full metrics snapshot. Anomalies are always *counted* in the registry
// (obs.flightrec.*) even when disarmed, so `stats` shows that something
// went wrong without any filesystem writes.
//
// Arming: `jrsh flightrec arm <dir>`, or set JROUTE_FLIGHT_DIR before
// startup. Bundles are named flightrec-<seq>-<kind>.json.
//
// With JROUTE_NO_TELEMETRY every member is a no-op and anomaly() returns
// an empty path; call sites never #ifdef.
#pragma once

#include <cstdint>
#include <string>

namespace jrobs {

/// One ring entry. cat/name must be string literals (the ring stores the
/// pointers, mirroring the tracer's contract); a/b are free-form payload
/// words — typically a node id, request id, or count.
struct FlightEvent {
  uint64_t tsNs = 0;  // since recorder epoch
  const char* cat = nullptr;
  const char* name = nullptr;
  uint64_t a = 0;
  uint64_t b = 0;
};

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Append an event to the calling thread's ring (overwrites that
  /// thread's oldest when full). Lock-free after the thread's first note.
  void note(const char* cat, const char* name, uint64_t a = 0,
            uint64_t b = 0);

  /// Start writing anomaly bundles into `dir` (must already exist).
  void arm(const std::string& dir);
  void disarm();
  bool armed() const;
  /// Directory bundles are written to; empty when disarmed.
  std::string dir() const;

  /// Report an anomaly. Always bumps obs.flightrec.anomalies (and the
  /// per-kind counter); when armed, also writes a bundle and returns its
  /// path. `extraJson`, when non-empty, must be a complete JSON value
  /// (e.g. `{"provenance":...,"drc":...}`) and is embedded verbatim as
  /// the bundle's "extra" field.
  std::string anomaly(const std::string& kind, const std::string& detail,
                      const std::string& extraJson = "");

  /// Events currently retained across all thread rings (each ring caps
  /// at kRingCapacity).
  size_t eventCount() const;
  /// Anomalies reported since process start (armed or not).
  uint64_t anomalyCount() const;

  /// Drop all ring events (jrsh `stats reset`). Arming state and the
  /// anomaly sequence counter are untouched.
  void clear();

  /// Per-thread ring capacity.
  static constexpr size_t kRingCapacity = 1024;

 private:
  FlightRecorder();
  ~FlightRecorder() = delete;  // process-lifetime singleton

  struct Impl;
  Impl* impl_;
};

/// Shorthand for FlightRecorder::instance().
FlightRecorder& flightRecorder();

}  // namespace jrobs
