#include "arch/device.h"

#include <array>
#include <string>

#include "common/error.h"

namespace xcvsim {
namespace {

// CLB array dimensions from the Virtex data sheet (XCV50 .. XCV1000).
constexpr std::array<DeviceSpec, 9> kFamily = {{
    {"XCV50", 16, 24},
    {"XCV100", 20, 30},
    {"XCV150", 24, 36},
    {"XCV200", 28, 42},
    {"XCV300", 32, 48},
    {"XCV400", 40, 60},
    {"XCV600", 48, 72},
    {"XCV800", 56, 84},
    {"XCV1000", 64, 96},
}};

}  // namespace

std::span<const DeviceSpec> deviceFamily() { return kFamily; }

const DeviceSpec& deviceByName(std::string_view name) {
  for (const auto& d : kFamily) {
    if (d.name == name) return d;
  }
  throw ArgumentError("unknown device: " + std::string(name));
}

const DeviceSpec& xcv50() { return kFamily[0]; }
const DeviceSpec& xcv300() { return kFamily[4]; }
const DeviceSpec& xcv1000() { return kFamily[8]; }

}  // namespace xcvsim
