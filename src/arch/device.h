// Device family table and fabric sizing constants.
//
// Models the Virtex family of the paper: CLB arrays from 16x24 (XCV50) to
// 64x96 (XCV1000), with the per-tile routing resource counts of section 2:
// 24 single-length lines per direction, hex lines spanning six tiles with
// 12 drivable per direction per tile, 12 bidirectional buffered long lines
// per row and per column accessible every 6 tiles, and 4 dedicated global
// clock nets.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "common/types.h"

namespace xcvsim {

// Fabric sizing constants (section 2 of the paper).
inline constexpr int kSinglesPerChannel = 24;  // per direction from a GRM
inline constexpr int kHexTracks = 12;          // drivable per direction
inline constexpr int kHexSpan = 6;             // tiles from BEG to END
inline constexpr int kHexMid = 3;              // tiles from BEG to MID tap
inline constexpr int kLongTracks = 12;         // per row and per column
inline constexpr int kLongAccessPeriod = 6;    // long lines tap every 6 CLBs
inline constexpr int kSliceOutputs = 8;        // S0/S1 x {X, XQ, Y, YQ}
inline constexpr int kOutWires = 8;            // OMUX outputs OUT[0..7]
inline constexpr int kClbInputs = 26;          // 13 per slice
inline constexpr int kGlobalNets = 4;          // dedicated clock nets

/// One member of the device family.
struct DeviceSpec {
  std::string_view name;
  int rows = 0;  // CLB rows
  int cols = 0;  // CLB columns

  int tiles() const { return rows * cols; }
  bool contains(RowCol rc) const {
    return rc.row >= 0 && rc.row < rows && rc.col >= 0 && rc.col < cols;
  }
};

/// The Virtex family as listed in the 1999 Programmable Logic Data Book,
/// smallest to largest. The paper quotes the 16x24 .. 64x96 range.
std::span<const DeviceSpec> deviceFamily();

/// Look up a family member by name ("XCV300"). Throws ArgumentError if the
/// name is unknown.
const DeviceSpec& deviceByName(std::string_view name);

// Convenience accessors for the sizes used throughout tests and benches.
const DeviceSpec& xcv50();    // 16x24, smallest
const DeviceSpec& xcv300();   // 32x48, the default workhorse
const DeviceSpec& xcv1000();  // 64x96, largest

}  // namespace xcvsim
