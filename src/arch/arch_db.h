// The architecture description class of the paper (section 3):
//
//   "There is a Java class in which all of the architecture information is
//    held. In this class each wire is defined by a unique integer. Also in
//    this class the possible template values are defined, along with which
//    template value each wire can be classified under. ... Also in this
//    Java class is a description of each wire, including how long it is,
//    its direction, which wires can drive it, and which wires it can
//    drive."
//
// ArchDb answers exactly those queries for one device, and additionally is
// the single source of truth for PIP existence: the routing-resource graph
// builder enumerates PIPs through forEachTilePip()/forEachDirectConnect(),
// so the graph and the description can never diverge.
#pragma once

#include <functional>
#include <vector>

#include "arch/device.h"
#include "arch/template_value.h"
#include "arch/wires.h"
#include "common/types.h"

namespace xcvsim {

/// Static description of one local wire (device-independent part).
struct WireInfo {
  WireKind kind;
  int index;   // track / pin / OUT number within its range
  int length;  // tiles spanned end to end (0 for pins, device-dep for longs)
};

class ArchDb {
 public:
  explicit ArchDb(const DeviceSpec& dev) : dev_(dev) {}

  const DeviceSpec& device() const { return dev_; }

  /// Description of a wire: kind, index, length.
  WireInfo wireInfo(LocalWire w) const;

  /// Does local name `w` denote an existing resource at tile `rc`?
  /// (Channel and hex names near device edges, and long-line names away
  /// from access tiles, do not.)
  bool existsAt(RowCol rc, LocalWire w) const;

  /// Origin tile of the hex segment named by hex alias `w` at `rc`.
  /// Precondition: wireKind(w) == Hex and existsAt(rc, w).
  RowCol hexOrigin(RowCol rc, LocalWire w) const;

  /// Enumerate every same-tile PIP at `rc` as (from, to) local-wire pairs.
  /// Direct connects (which cross tiles) are not included; see
  /// forEachDirectConnect.
  void forEachTilePip(
      RowCol rc, const std::function<void(LocalWire, LocalWire)>& cb) const;

  /// Enumerate the dedicated direct-connect PIPs whose source output pin is
  /// at `rc`: (fromLocal, destination tile, toLocal).
  void forEachDirectConnect(
      RowCol rc,
      const std::function<void(LocalWire, RowCol, LocalWire)>& cb) const;

  /// Same-tile PIP legality: may `from` drive `to` at tile `rc`?
  bool canDrive(RowCol rc, LocalWire from, LocalWire to) const;

  /// All wires `w` can drive at `rc` (same tile), the paper's
  /// "which wires it can drive".
  std::vector<LocalWire> drives(RowCol rc, LocalWire w) const;

  /// All wires that can drive `w` at `rc`, the paper's
  /// "which wires can drive it".
  std::vector<LocalWire> drivenBy(RowCol rc, LocalWire w) const;

 private:
  DeviceSpec dev_;
};

}  // namespace xcvsim
