// The per-tile local wire namespace — the integer wire ids of the paper's
// architecture description class.
//
// Every routing resource visible from a CLB tile has a small-integer local
// id (LocalWire). The same physical wire segment is visible from several
// tiles under different local names: the single track between (5,7) and
// (5,8) is SingleEast[5] at (5,7) and SingleWest[5] at (5,8), exactly as in
// the paper's routing example. The routing-resource graph (rrg module) maps
// (tile, local wire) to canonical physical segments.
//
// Layout of the local id space:
//   [0,   8)  slice outputs  S0X S0XQ S0Y S0YQ S1X S1XQ S1Y S1YQ
//   [8,  16)  OMUX outputs   OUT[0..7]
//   [16, 42)  CLB input pins S0F1..S0CLK, S1F1..S1CLK (13 per slice)
//   [42, 138) singles        4 dirs x 24 tracks
//   [138,282) hex taps       4 dirs x {BEG,MID,END} x 12 tracks
//   [282,294) horizontal long lines (12 tracks)
//   [294,306) vertical long lines   (12 tracks)
//   [306,310) global clock nets     GCLK[0..3]
//   [310,313) IOB pad inputs        IOB_I[0..2]  (boundary tiles only)
//   [313,316) IOB pad outputs       IOB_O[0..2]  (boundary tiles only)
//   [316,320) BRAM data outputs     BRAM_DO[0..3] (west/east edge columns)
//   [320,324) BRAM data inputs      BRAM_DI[0..3] (west/east edge columns)
//   [324,328) BRAM address inputs   BRAM_AD[0..3] (west/east edge columns)
//
// IOBs implement the paper's section 6 future-work item ("Virtex features
// such as IOBs ... will be supported in a future release"): each boundary
// tile carries three I/O blocks whose pad-input side drives singles of the
// tile's channels and whose pad-output side is driven by singles, exactly
// like the real Virtex I/O ring couples to the edge GRMs.
#pragma once

#include <string>

#include "common/types.h"
#include "arch/device.h"

namespace xcvsim {

/// Coarse classification of a local wire.
enum class WireKind : uint8_t {
  SliceOut,
  Omux,
  ClbIn,
  Single,
  Hex,
  Long,
  Gclk,
  IobIn,   // pad input buffer: drives the fabric
  IobOut,  // pad output buffer: driven by the fabric
  BramOut, // block-RAM data output: drives the fabric
  BramIn,  // block-RAM data/address input: driven by the fabric
};

/// Position of a hex-line tap relative to the segment's origin.
enum class HexTap : uint8_t { Beg = 0, Mid = 1, End = 2 };

// --- Range bases -----------------------------------------------------------
inline constexpr LocalWire kSliceOutBase = 0;
inline constexpr LocalWire kOmuxBase = 8;
inline constexpr LocalWire kClbInBase = 16;
inline constexpr LocalWire kSingleBase = 42;
inline constexpr LocalWire kHexBase = 138;
inline constexpr LocalWire kLongHBase = 282;
inline constexpr LocalWire kLongVBase = 294;
inline constexpr LocalWire kGclkBase = 306;
inline constexpr LocalWire kIobInBase = 310;
inline constexpr LocalWire kIobOutBase = 313;
inline constexpr LocalWire kBramDoBase = 316;
inline constexpr LocalWire kBramDiBase = 320;
inline constexpr LocalWire kBramAdBase = 324;
inline constexpr LocalWire kNumLocalWires = 328;

/// I/O blocks per boundary tile.
inline constexpr int kIobsPerTile = 3;
/// Block-RAM port pins per edge tile (per class: DO, DI, AD).
inline constexpr int kBramPinsPerTile = 4;
/// CLB rows spanned by one block-RAM block.
inline constexpr int kBramRowsPerBlock = 4;
/// Content bits per block (256 x 16).
inline constexpr int kBramBitsPerBlock = 4096;
/// BRAM columns on the device (west and east of the CLB array).
inline constexpr int kBramColumns = 2;

// --- Constructors ----------------------------------------------------------
constexpr LocalWire sliceOut(int idx) {
  return static_cast<LocalWire>(kSliceOutBase + idx);
}
constexpr LocalWire omux(int idx) {
  return static_cast<LocalWire>(kOmuxBase + idx);
}
constexpr LocalWire clbIn(int idx) {
  return static_cast<LocalWire>(kClbInBase + idx);
}
/// Single track `track` in the channel on side `d` of the tile.
constexpr LocalWire single(Dir d, int track) {
  return static_cast<LocalWire>(kSingleBase +
                                static_cast<int>(d) * kSinglesPerChannel +
                                track);
}
/// Tap `tap` of the hex line with origin direction `d`, track `track`.
/// HexTap::Beg names a hex originating at this tile; Mid one originating
/// kHexMid tiles upstream; End one originating kHexSpan tiles upstream.
constexpr LocalWire hex(Dir d, HexTap tap, int track) {
  return static_cast<LocalWire>(kHexBase +
                                static_cast<int>(d) * 3 * kHexTracks +
                                static_cast<int>(tap) * kHexTracks + track);
}
constexpr LocalWire longH(int track) {
  return static_cast<LocalWire>(kLongHBase + track);
}
constexpr LocalWire longV(int track) {
  return static_cast<LocalWire>(kLongVBase + track);
}
constexpr LocalWire gclk(int idx) {
  return static_cast<LocalWire>(kGclkBase + idx);
}
/// Pad input buffer `idx` of a boundary tile (drives the fabric).
constexpr LocalWire iobIn(int idx) {
  return static_cast<LocalWire>(kIobInBase + idx);
}
/// Pad output buffer `idx` of a boundary tile (driven by the fabric).
constexpr LocalWire iobOut(int idx) {
  return static_cast<LocalWire>(kIobOutBase + idx);
}
/// Block-RAM data output `idx` of a west/east edge tile.
constexpr LocalWire bramDo(int idx) {
  return static_cast<LocalWire>(kBramDoBase + idx);
}
/// Block-RAM data input `idx` of a west/east edge tile.
constexpr LocalWire bramDi(int idx) {
  return static_cast<LocalWire>(kBramDiBase + idx);
}
/// Block-RAM address input `idx` of a west/east edge tile.
constexpr LocalWire bramAd(int idx) {
  return static_cast<LocalWire>(kBramAdBase + idx);
}

// --- Named slice pins matching the paper's examples -------------------------
inline constexpr LocalWire S0_X = sliceOut(0);
inline constexpr LocalWire S0_XQ = sliceOut(1);
inline constexpr LocalWire S0_Y = sliceOut(2);
inline constexpr LocalWire S0_YQ = sliceOut(3);
inline constexpr LocalWire S1_X = sliceOut(4);
inline constexpr LocalWire S1_XQ = sliceOut(5);
inline constexpr LocalWire S1_Y = sliceOut(6);
inline constexpr LocalWire S1_YQ = sliceOut(7);

// CLB input pin order per slice: F1 F2 F3 F4 G1 G2 G3 G4 BX BY SR CE CLK.
inline constexpr int kPinsPerSlice = 13;
constexpr LocalWire slicePin(int slice, int pin) {
  return clbIn(slice * kPinsPerSlice + pin);
}
inline constexpr LocalWire S0F1 = slicePin(0, 0);
inline constexpr LocalWire S0F2 = slicePin(0, 1);
inline constexpr LocalWire S0F3 = slicePin(0, 2);
inline constexpr LocalWire S0F4 = slicePin(0, 3);
inline constexpr LocalWire S0G1 = slicePin(0, 4);
inline constexpr LocalWire S0G2 = slicePin(0, 5);
inline constexpr LocalWire S0G3 = slicePin(0, 6);
inline constexpr LocalWire S0G4 = slicePin(0, 7);
inline constexpr LocalWire S0BX = slicePin(0, 8);
inline constexpr LocalWire S0BY = slicePin(0, 9);
inline constexpr LocalWire S0SR = slicePin(0, 10);
inline constexpr LocalWire S0CE = slicePin(0, 11);
inline constexpr LocalWire S0CLK = slicePin(0, 12);
inline constexpr LocalWire S1F1 = slicePin(1, 0);
inline constexpr LocalWire S1F2 = slicePin(1, 1);
inline constexpr LocalWire S1F3 = slicePin(1, 2);
inline constexpr LocalWire S1F4 = slicePin(1, 3);
inline constexpr LocalWire S1G1 = slicePin(1, 4);
inline constexpr LocalWire S1G2 = slicePin(1, 5);
inline constexpr LocalWire S1G3 = slicePin(1, 6);
inline constexpr LocalWire S1G4 = slicePin(1, 7);
inline constexpr LocalWire S1BX = slicePin(1, 8);
inline constexpr LocalWire S1BY = slicePin(1, 9);
inline constexpr LocalWire S1SR = slicePin(1, 10);
inline constexpr LocalWire S1CE = slicePin(1, 11);
inline constexpr LocalWire S1CLK = slicePin(1, 12);

// --- Decomposition ----------------------------------------------------------
WireKind wireKind(LocalWire w);

/// Index within the wire's own range (track number, pin number, ...).
int wireIndex(LocalWire w);

/// Direction of a single or hex local name. Meaningless for other kinds.
Dir wireDir(LocalWire w);

/// Tap position of a hex local name. Meaningless for other kinds.
HexTap wireHexTap(LocalWire w);

/// True if this local wire names a CLK input pin (driven only by the global
/// clock nets).
bool isClockPin(LocalWire w);

/// Span in tiles of the underlying resource: 0 for logic pins and OMUX,
/// 1 for singles, kHexSpan for hexes; longs and globals report 0 (their
/// extent depends on the device, see the rrg module).
int wireLength(LocalWire w);

/// Human-readable name, e.g. "SingleEast[5]", "S1_YQ", "HexNorthMid[3]".
std::string wireName(LocalWire w);

/// True if `w` is a valid local wire id.
bool isValidWire(LocalWire w);

}  // namespace xcvsim
