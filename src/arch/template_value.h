// Template values — the paper's direction-x-resource classification.
//
// "A template value is defined as a value describing a direction and a
// resource type. For example, a template value of NORTH6 describes any hex
// wire in the north direction, a template value of NORTH1 describes any
// single wire in the north direction." (section 3)
//
// Because singles, bidirectional hexes, and long lines can be traversed in
// either direction, the template value of a *wire in use* depends on the
// direction of travel, not only on the segment itself; the rrg module
// computes it from (segment, entry tile).
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace xcvsim {

enum class TemplateValue : uint8_t {
  OUTMUX,  // an OMUX output wire OUT[i]
  CLBIN,   // a CLB input pin
  EAST1,   // single traversed eastward
  WEST1,
  NORTH1,
  SOUTH1,
  EAST6,   // hex traversed eastward
  WEST6,
  NORTH6,
  SOUTH6,
  LONGH,   // horizontal long line (either direction)
  LONGV,   // vertical long line (either direction)
  GCLKNET, // dedicated global clock net
  IOPAD,   // an I/O block buffer (pad side of the fabric)
  BRAMPORT,// a block-RAM data/address port
};

inline constexpr int kNumTemplateValues = 15;

constexpr std::string_view templateValueName(TemplateValue v) {
  switch (v) {
    case TemplateValue::OUTMUX: return "OUTMUX";
    case TemplateValue::CLBIN: return "CLBIN";
    case TemplateValue::EAST1: return "EAST1";
    case TemplateValue::WEST1: return "WEST1";
    case TemplateValue::NORTH1: return "NORTH1";
    case TemplateValue::SOUTH1: return "SOUTH1";
    case TemplateValue::EAST6: return "EAST6";
    case TemplateValue::WEST6: return "WEST6";
    case TemplateValue::NORTH6: return "NORTH6";
    case TemplateValue::SOUTH6: return "SOUTH6";
    case TemplateValue::LONGH: return "LONGH";
    case TemplateValue::LONGV: return "LONGV";
    case TemplateValue::GCLKNET: return "GCLKNET";
    case TemplateValue::IOPAD: return "IOPAD";
    case TemplateValue::BRAMPORT: return "BRAMPORT";
  }
  return "?";
}

/// Template value of a single or hex traversed in direction `d`.
constexpr TemplateValue singleValue(Dir d) {
  switch (d) {
    case Dir::East: return TemplateValue::EAST1;
    case Dir::West: return TemplateValue::WEST1;
    case Dir::North: return TemplateValue::NORTH1;
    case Dir::South: return TemplateValue::SOUTH1;
  }
  return TemplateValue::EAST1;
}
constexpr TemplateValue hexValue(Dir d) {
  switch (d) {
    case Dir::East: return TemplateValue::EAST6;
    case Dir::West: return TemplateValue::WEST6;
    case Dir::North: return TemplateValue::NORTH6;
    case Dir::South: return TemplateValue::SOUTH6;
  }
  return TemplateValue::EAST6;
}

/// Tile displacement implied by a template value when the resource is
/// traversed end to end (hex MID exits yield half of `templateSpan`).
constexpr int templateDRow(TemplateValue v) {
  switch (v) {
    case TemplateValue::NORTH1: return 1;
    case TemplateValue::SOUTH1: return -1;
    case TemplateValue::NORTH6: return 6;
    case TemplateValue::SOUTH6: return -6;
    default: return 0;
  }
}
constexpr int templateDCol(TemplateValue v) {
  switch (v) {
    case TemplateValue::EAST1: return 1;
    case TemplateValue::WEST1: return -1;
    case TemplateValue::EAST6: return 6;
    case TemplateValue::WEST6: return -6;
    default: return 0;
  }
}

}  // namespace xcvsim
