#include "arch/patterns.h"

// All patterns are constexpr in the header; this TU exists so the library
// has a stable archive member for the module and so static_asserts of the
// pattern invariants are compiled exactly once.

namespace xcvsim {
namespace {

// Every non-clock pin index must be a valid, non-clock CLB input.
static_assert(nonClockPin(0) == 0 && nonClockPin(11) == 11);
static_assert(nonClockPin(12) == 13);  // skips S0CLK
static_assert(nonClockPin(23) == 24);  // stops short of S1CLK
static_assert(kClbInputs - 2 == kSinglesPerChannel,
              "single tracks and non-clock pins are in bijection");

// OMUX pattern stays within OUT[0..7].
static_assert(omuxFromOutput(7)[2] < kOutWires);

// Singles-from-OUT covers disjoint thirds of the channel.
static_assert(singlesFromOut(7)[2] == 23);

}  // namespace
}  // namespace xcvsim
