#include "arch/wires.h"

#include <array>

#include "common/error.h"

namespace xcvsim {
namespace {

constexpr std::array<const char*, 8> kSliceOutNames = {
    "S0_X", "S0_XQ", "S0_Y", "S0_YQ", "S1_X", "S1_XQ", "S1_Y", "S1_YQ"};

constexpr std::array<const char*, 13> kPinNames = {
    "F1", "F2", "F3", "F4", "G1", "G2", "G3",
    "G4", "BX", "BY", "SR", "CE", "CLK"};

constexpr std::array<const char*, 4> kDirNames = {"East", "West", "North",
                                                  "South"};
constexpr std::array<const char*, 3> kTapNames = {"Beg", "Mid", "End"};

}  // namespace

WireKind wireKind(LocalWire w) {
  if (w < kOmuxBase) return WireKind::SliceOut;
  if (w < kClbInBase) return WireKind::Omux;
  if (w < kSingleBase) return WireKind::ClbIn;
  if (w < kHexBase) return WireKind::Single;
  if (w < kLongHBase) return WireKind::Hex;
  if (w < kGclkBase) return WireKind::Long;
  if (w < kIobInBase) return WireKind::Gclk;
  if (w < kIobOutBase) return WireKind::IobIn;
  if (w < kBramDoBase) return WireKind::IobOut;
  if (w < kBramDiBase) return WireKind::BramOut;
  if (w < kNumLocalWires) return WireKind::BramIn;
  throw ArgumentError("invalid local wire id " + std::to_string(w));
}

int wireIndex(LocalWire w) {
  switch (wireKind(w)) {
    case WireKind::SliceOut: return w - kSliceOutBase;
    case WireKind::Omux: return w - kOmuxBase;
    case WireKind::ClbIn: return w - kClbInBase;
    case WireKind::Single: return (w - kSingleBase) % kSinglesPerChannel;
    case WireKind::Hex: return (w - kHexBase) % kHexTracks;
    case WireKind::Long:
      return w < kLongVBase ? w - kLongHBase : w - kLongVBase;
    case WireKind::Gclk: return w - kGclkBase;
    case WireKind::IobIn: return w - kIobInBase;
    case WireKind::IobOut: return w - kIobOutBase;
    case WireKind::BramOut: return w - kBramDoBase;
    case WireKind::BramIn:
      return w < kBramAdBase ? w - kBramDiBase
                             : w - kBramAdBase + kBramPinsPerTile;
  }
  return -1;
}

Dir wireDir(LocalWire w) {
  switch (wireKind(w)) {
    case WireKind::Single:
      return static_cast<Dir>((w - kSingleBase) / kSinglesPerChannel);
    case WireKind::Hex:
      return static_cast<Dir>((w - kHexBase) / (3 * kHexTracks));
    default:
      throw ArgumentError("wireDir: " + wireName(w) + " has no direction");
  }
}

HexTap wireHexTap(LocalWire w) {
  if (wireKind(w) != WireKind::Hex) {
    throw ArgumentError("wireHexTap: " + wireName(w) + " is not a hex");
  }
  return static_cast<HexTap>(((w - kHexBase) / kHexTracks) % 3);
}

bool isClockPin(LocalWire w) { return w == S0CLK || w == S1CLK; }

int wireLength(LocalWire w) {
  switch (wireKind(w)) {
    case WireKind::Single: return 1;
    case WireKind::Hex: return kHexSpan;
    default: return 0;
  }
}

std::string wireName(LocalWire w) {
  switch (wireKind(w)) {
    case WireKind::SliceOut:
      return kSliceOutNames[static_cast<size_t>(wireIndex(w))];
    case WireKind::Omux:
      return "OUT[" + std::to_string(wireIndex(w)) + "]";
    case WireKind::ClbIn: {
      const int idx = w - kClbInBase;
      return std::string("S") + std::to_string(idx / kPinsPerSlice) +
             kPinNames[static_cast<size_t>(idx % kPinsPerSlice)];
    }
    case WireKind::Single:
      return std::string("Single") +
             kDirNames[static_cast<size_t>(wireDir(w))] + "[" +
             std::to_string(wireIndex(w)) + "]";
    case WireKind::Hex: {
      const HexTap tap = wireHexTap(w);
      std::string name = std::string("Hex") +
                         kDirNames[static_cast<size_t>(wireDir(w))];
      if (tap != HexTap::Beg) name += kTapNames[static_cast<size_t>(tap)];
      return name + "[" + std::to_string(wireIndex(w)) + "]";
    }
    case WireKind::Long:
      return std::string(w < kLongVBase ? "LongHoriz[" : "LongVert[") +
             std::to_string(wireIndex(w)) + "]";
    case WireKind::Gclk:
      return "GCLK[" + std::to_string(wireIndex(w)) + "]";
    case WireKind::IobIn:
      return "IOB_I[" + std::to_string(wireIndex(w)) + "]";
    case WireKind::IobOut:
      return "IOB_O[" + std::to_string(wireIndex(w)) + "]";
    case WireKind::BramOut:
      return "BRAM_DO[" + std::to_string(wireIndex(w)) + "]";
    case WireKind::BramIn: {
      const int i = wireIndex(w);
      return i < kBramPinsPerTile
                 ? "BRAM_DI[" + std::to_string(i) + "]"
                 : "BRAM_AD[" + std::to_string(i - kBramPinsPerTile) + "]";
    }
  }
  return "?";
}

bool isValidWire(LocalWire w) { return w < kNumLocalWires; }

}  // namespace xcvsim
