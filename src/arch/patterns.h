// Sparse GRM switch patterns.
//
// The real Virtex switch-box patterns are proprietary (they lived in the
// JBits device database). This module substitutes deterministic sparse
// patterns with realistic fanout that obey the paper's driver rules:
//
//   "Logic block outputs drive all length interconnects, longs can drive
//    hexes only, hexes drive singles and other hexes, and singles drive
//    logic block inputs, vertical long lines, and other singles."
//
// The patterns below are modular-offset maps. They are bijective per
// offset, so every track/pin is reachable and driver fan-in is uniform —
// the property routing quality actually depends on. Changing any constant
// here changes which PIPs exist but not the API or the invariants.
#pragma once

#include <array>

#include "arch/device.h"
#include "arch/wires.h"
#include "common/types.h"

namespace xcvsim {

/// OMUX lines driven by slice output `o` (0..7): each output reaches 4 of
/// the 8 OUT wires (a sparse crossbar rich enough that all 8 outputs of a
/// tile can drive the fabric simultaneously even under greedy first-fit
/// assignment).
constexpr std::array<int, 4> omuxFromOutput(int o) {
  return {o, (o + 2) % kOutWires, (o + 5) % kOutWires,
          (o + 7) % kOutWires};
}

/// The 24 non-clock CLB input pins, in single-track order. Index i maps the
/// i-th single track to a pin index in [0, kClbInputs); CLK pins (12, 25)
/// are excluded because only the global clock nets drive them.
constexpr int nonClockPin(int i) {
  const int n = i % (kClbInputs - 2);
  return n < 12 ? n : n + 1;  // skip S0CLK at 12
}

/// Input pins driven by a single track at one of its end GRMs (3 pins).
constexpr std::array<int, 3> clbInFromSingle(int track) {
  return {nonClockPin(track), nonClockPin((track + 7) % kSinglesPerChannel),
          nonClockPin((track + 13) % kSinglesPerChannel)};
}

/// Input pins driven by slice output `o` through the *feedback* path back
/// into the same CLB (2 pins).
constexpr std::array<int, 2> feedbackPins(int o) {
  return {nonClockPin(o * 3), nonClockPin(o * 3 + 7)};
}

/// Input pins of a horizontally adjacent CLB driven by slice output `o`
/// through the dedicated direct connects (2 pins).
constexpr std::array<int, 2> directPins(int o) {
  return {nonClockPin(o * 3 + 1), nonClockPin(o * 3 + 11)};
}

/// Single tracks (per direction) drivable from OMUX line `j` (3 tracks).
constexpr std::array<int, 3> singlesFromOut(int j) {
  return {j, j + kOutWires, j + 2 * kOutWires};
}

/// Hex tracks (per direction) drivable from OMUX line `j` (2 tracks).
constexpr std::array<int, 2> hexFromOut(int j) {
  return {j % kHexTracks, (j + 4) % kHexTracks};
}

/// Hex tracks drivable from long-line track `t` at an access point
/// (2 tracks, per direction of the matching axis).
constexpr std::array<int, 2> hexFromLong(int t) {
  return {t % kHexTracks, (t + 5) % kHexTracks};
}

/// Single tracks drivable from a hex tap, per channel direction (2 tracks).
constexpr std::array<int, 2> singleFromHex(int track) {
  return {(2 * track) % kSinglesPerChannel,
          (2 * track + 9) % kSinglesPerChannel};
}

/// Hex track continuing straight from a hex tap (same direction).
constexpr int hexStraight(int track) { return track; }

/// Hex track reachable when turning onto an orthogonal direction.
constexpr int hexTurn(int track) { return (track + 3) % kHexTracks; }

/// Single-to-single turn pattern at a GRM: tracks in the destination
/// channel drivable from track `track` of the source channel. The salt
/// makes different (from, to) channel pairs use different offsets, like the
/// rotated patterns of real switch boxes.
constexpr std::array<int, 2> singleTurn(Dir from, Dir to, int track) {
  const int salt = 5 * static_cast<int>(from) + 3 * static_cast<int>(to);
  return {(track + 1 + salt) % kSinglesPerChannel,
          (track + 13 + salt) % kSinglesPerChannel};
}

/// True when a straight-through single-to-single connection (same track id,
/// opposite channel) exists at a GRM. Every third track runs through, so a
/// signal can ripple along an axis on singles alone.
constexpr bool singleStraightThrough(int track) { return track % 3 != 2; }

/// Long-line tracks accessible at a given position along the line's axis
/// (paper: "Long lines can be accessed every 6 blocks"). Track t is
/// accessible where pos % 6 == t % 6, so 2 of the 12 tracks tap each tile.
constexpr bool longAccessibleAt(int track, int posOnAxis) {
  return posOnAxis % kLongAccessPeriod == track % kLongAccessPeriod;
}

/// Vertical long track driven by single track `track` at an access tile:
/// of the two accessible tracks (r%6 and r%6+6), even single tracks drive
/// the low one, odd tracks the high one.
constexpr int longVFromSingle(int track, int row) {
  return row % kLongAccessPeriod + (track % 2 == 0 ? 0 : kLongAccessPeriod);
}

/// Bidirectional hexes: even tracks can be driven at both BEG and END
/// ("Some hexes are bi-directional, meaning they can be driven from either
/// endpoint").
constexpr bool hexIsBidir(int track) { return track % 2 == 0; }

/// Single tracks (per adjacent channel) driven by pad input buffer `k` of
/// a boundary tile's I/O blocks.
constexpr std::array<int, 3> singlesFromIob(int k) {
  return {8 * k, 8 * k + 3, 8 * k + 6};
}

/// Single tracks (per adjacent channel) that can drive pad output buffer
/// `k`. Disjoint from singlesFromIob so a pad cannot trivially loop back.
constexpr std::array<int, 3> iobFromSingles(int k) {
  return {8 * k + 1, 8 * k + 4, 8 * k + 7};
}

/// Is this tile on the device boundary (where the I/O ring couples in)?
constexpr bool isBoundaryTile(const DeviceSpec& dev, RowCol rc) {
  return rc.row == 0 || rc.row == dev.rows - 1 || rc.col == 0 ||
         rc.col == dev.cols - 1;
}

/// Does this tile adjoin a block-RAM column (west or east CLB column)?
constexpr bool isBramTile(const DeviceSpec& dev, RowCol rc) {
  return rc.col == 0 || rc.col == dev.cols - 1;
}

/// Single tracks (per adjacent channel) driven by BRAM data output `k`.
constexpr std::array<int, 3> singlesFromBram(int k) {
  return {6 * k, 6 * k + 2, 6 * k + 4};
}

/// Single tracks (per adjacent channel) driving BRAM input pin `j`
/// (j in [0, 2*kBramPinsPerTile): data inputs then address inputs).
constexpr std::array<int, 2> bramFromSingles(int j) {
  return {(3 * j) % kSinglesPerChannel, (3 * j + 13) % kSinglesPerChannel};
}

}  // namespace xcvsim
