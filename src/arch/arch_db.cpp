#include "arch/arch_db.h"

#include <string>

#include "arch/patterns.h"
#include "common/error.h"

namespace xcvsim {
namespace {

// Directions a hex at `d` can turn onto (the two orthogonal directions).
std::array<Dir, 2> orthogonal(Dir d) {
  if (d == Dir::East || d == Dir::West) return {Dir::North, Dir::South};
  return {Dir::East, Dir::West};
}

constexpr std::array<Dir, 4> kAllDirs = {Dir::East, Dir::West, Dir::North,
                                         Dir::South};

constexpr std::array<HexTap, 3> kAllTaps = {HexTap::Beg, HexTap::Mid,
                                            HexTap::End};

int tapOffset(HexTap tap) {
  switch (tap) {
    case HexTap::Beg: return 0;
    case HexTap::Mid: return kHexMid;
    case HexTap::End: return kHexSpan;
  }
  return 0;
}

}  // namespace

WireInfo ArchDb::wireInfo(LocalWire w) const {
  WireInfo info{wireKind(w), wireIndex(w), wireLength(w)};
  if (info.kind == WireKind::Long) {
    info.length = (w < kLongVBase ? dev_.cols : dev_.rows) - 1;
  } else if (info.kind == WireKind::Gclk) {
    info.length = dev_.rows + dev_.cols;  // chip-wide tree, nominal extent
  }
  return info;
}

bool ArchDb::existsAt(RowCol rc, LocalWire w) const {
  if (!dev_.contains(rc) || !isValidWire(w)) return false;
  switch (wireKind(w)) {
    case WireKind::SliceOut:
    case WireKind::Omux:
    case WireKind::ClbIn:
    case WireKind::Gclk:
      return true;
    case WireKind::Single: {
      // The channel on side `dir` of the tile must exist.
      const Dir d = wireDir(w);
      return dev_.contains({static_cast<int16_t>(rc.row + dirDRow(d)),
                            static_cast<int16_t>(rc.col + dirDCol(d))});
    }
    case WireKind::Hex: {
      // Both the origin and the far end of the named segment must be on
      // the device; hexes are not clamped at the edges (section 4 of
      // DESIGN.md), so edge tiles simply see fewer hexes.
      const Dir d = wireDir(w);
      const int off = tapOffset(wireHexTap(w));
      const RowCol origin{static_cast<int16_t>(rc.row - off * dirDRow(d)),
                          static_cast<int16_t>(rc.col - off * dirDCol(d))};
      const RowCol end{
          static_cast<int16_t>(origin.row + kHexSpan * dirDRow(d)),
          static_cast<int16_t>(origin.col + kHexSpan * dirDCol(d))};
      return dev_.contains(origin) && dev_.contains(end);
    }
    case WireKind::Long:
      // Long lines tap the fabric every kLongAccessPeriod tiles.
      return w < kLongVBase ? longAccessibleAt(wireIndex(w), rc.col)
                            : longAccessibleAt(wireIndex(w), rc.row);
    case WireKind::IobIn:
    case WireKind::IobOut:
      // The I/O ring couples in at boundary tiles only.
      return isBoundaryTile(dev_, rc);
    case WireKind::BramOut:
    case WireKind::BramIn:
      // Block-RAM columns flank the CLB array on the west and east.
      return isBramTile(dev_, rc);
  }
  return false;
}

RowCol ArchDb::hexOrigin(RowCol rc, LocalWire w) const {
  const Dir d = wireDir(w);
  const int off = tapOffset(wireHexTap(w));
  return {static_cast<int16_t>(rc.row - off * dirDRow(d)),
          static_cast<int16_t>(rc.col - off * dirDCol(d))};
}

void ArchDb::forEachTilePip(
    RowCol rc, const std::function<void(LocalWire, LocalWire)>& cb) const {
  if (!dev_.contains(rc)) {
    throw ArgumentError("forEachTilePip: tile out of range");
  }
  const auto emit = [&](LocalWire from, LocalWire to) {
    // Degenerate self-loops (a hex "straight continuation" onto its own
    // track at the Beg tap names the same wire twice) can never carry
    // signal and are dropped here rather than at every pattern site.
    if (from == to) return;
    if (existsAt(rc, from) && existsAt(rc, to)) cb(from, to);
  };

  // Rule A/B: slice outputs drive the OMUX and their own CLB's inputs
  // (feedback path).
  for (int o = 0; o < kSliceOutputs; ++o) {
    for (int j : omuxFromOutput(o)) emit(sliceOut(o), omux(j));
    for (int p : feedbackPins(o)) emit(sliceOut(o), clbIn(p));
  }

  // Rule C/D/E: "Logic block outputs drive all length interconnects" —
  // OMUX lines drive singles, hexes, and (at access tiles) long lines.
  for (int j = 0; j < kOutWires; ++j) {
    for (Dir d : kAllDirs) {
      for (int t : singlesFromOut(j)) emit(omux(j), single(d, t));
      for (int t : hexFromOut(j)) {
        emit(omux(j), hex(d, HexTap::Beg, t));
        // Bidirectional hexes can also be driven at their far endpoint.
        if (hexIsBidir(t)) emit(omux(j), hex(d, HexTap::End, t));
      }
    }
    for (int t = 0; t < kLongTracks; ++t) {
      emit(omux(j), longH(t));  // existsAt gates on access position
      emit(omux(j), longV(t));
    }
  }

  // Rule F: "longs can drive hexes only".
  for (int t = 0; t < kLongTracks; ++t) {
    for (int h : hexFromLong(t)) {
      for (Dir d : {Dir::East, Dir::West}) {
        emit(longH(t), hex(d, HexTap::Beg, h));
        if (hexIsBidir(h)) emit(longH(t), hex(d, HexTap::End, h));
      }
      for (Dir d : {Dir::North, Dir::South}) {
        emit(longV(t), hex(d, HexTap::Beg, h));
        if (hexIsBidir(h)) emit(longV(t), hex(d, HexTap::End, h));
      }
    }
  }

  // Rule G/H: "hexes drive singles and other hexes" — at every tap.
  for (Dir d : kAllDirs) {
    for (HexTap tap : kAllTaps) {
      for (int t = 0; t < kHexTracks; ++t) {
        const LocalWire from = hex(d, tap, t);
        for (Dir sd : kAllDirs) {
          for (int s : singleFromHex(t)) emit(from, single(sd, s));
        }
        // Straight continuation in the same direction.
        emit(from, hex(d, HexTap::Beg, hexStraight(t)));
        // Turns onto the orthogonal directions.
        for (Dir od : orthogonal(d)) {
          emit(from, hex(od, HexTap::Beg, hexTurn(t)));
          if (hexIsBidir(hexTurn(t))) {
            emit(from, hex(od, HexTap::End, hexTurn(t)));
          }
        }
      }
    }
  }

  // Rule I/J/K: "singles drive logic block inputs, vertical long lines, and
  // other singles".
  for (Dir d : kAllDirs) {
    for (int s = 0; s < kSinglesPerChannel; ++s) {
      const LocalWire from = single(d, s);
      for (int p : clbInFromSingle(s)) emit(from, clbIn(p));
      for (Dir d2 : kAllDirs) {
        if (d2 == d) continue;
        if (d2 == opposite(d)) {
          if (singleStraightThrough(s)) emit(from, single(d2, s));
        } else {
          for (int s2 : singleTurn(d, d2, s)) emit(from, single(d2, s2));
        }
      }
      emit(from, longV(longVFromSingle(s, rc.row)));
    }
  }

  // Rule L: global clock nets drive the dedicated CLK pins.
  for (int k = 0; k < kGlobalNets; ++k) {
    emit(gclk(k), S0CLK);
    emit(gclk(k), S1CLK);
  }

  // Rule M: the I/O ring (boundary tiles only; existsAt gates the rest).
  // Pad inputs drive singles of the tile's channels; singles drive pad
  // outputs — the section 6 IOB extension.
  for (int k = 0; k < kIobsPerTile; ++k) {
    for (Dir d : kAllDirs) {
      for (int t : singlesFromIob(k)) emit(iobIn(k), single(d, t));
      for (int t : iobFromSingles(k)) emit(single(d, t), iobOut(k));
    }
  }

  // Rule N: block-RAM ports (west/east edge columns; existsAt gates).
  // Data outputs drive singles; singles drive data and address inputs —
  // the section 6 BRAM extension.
  for (int k = 0; k < kBramPinsPerTile; ++k) {
    for (Dir d : kAllDirs) {
      for (int t : singlesFromBram(k)) emit(bramDo(k), single(d, t));
      for (int t : bramFromSingles(k)) emit(single(d, t), bramDi(k));
      for (int t : bramFromSingles(k + kBramPinsPerTile)) {
        emit(single(d, t), bramAd(k));
      }
    }
  }
}

void ArchDb::forEachDirectConnect(
    RowCol rc,
    const std::function<void(LocalWire, RowCol, LocalWire)>& cb) const {
  if (!dev_.contains(rc)) {
    throw ArgumentError("forEachDirectConnect: tile out of range");
  }
  // "Local resources include direct connections between horizontally
  // adjacent configurable logic blocks" — each slice output reaches two
  // input pins of the east and west neighbours.
  for (Dir d : {Dir::East, Dir::West}) {
    const RowCol nb{rc.row, static_cast<int16_t>(rc.col + dirDCol(d))};
    if (!dev_.contains(nb)) continue;
    for (int o = 0; o < kSliceOutputs; ++o) {
      for (int p : directPins(o)) cb(sliceOut(o), nb, clbIn(p));
    }
  }
}

bool ArchDb::canDrive(RowCol rc, LocalWire from, LocalWire to) const {
  bool found = false;
  forEachTilePip(rc, [&](LocalWire f, LocalWire t) {
    if (f == from && t == to) found = true;
  });
  return found;
}

std::vector<LocalWire> ArchDb::drives(RowCol rc, LocalWire w) const {
  std::vector<LocalWire> out;
  forEachTilePip(rc, [&](LocalWire f, LocalWire t) {
    if (f == w) out.push_back(t);
  });
  return out;
}

std::vector<LocalWire> ArchDb::drivenBy(RowCol rc, LocalWire w) const {
  std::vector<LocalWire> out;
  forEachTilePip(rc, [&](LocalWire f, LocalWire t) {
    if (t == w) out.push_back(f);
  });
  return out;
}

}  // namespace xcvsim
