// jrplan workload linter: static semantic checks over a request stream
// before it runs. A 10^5-request jrload session or a scripted jrsh
// session can carry defects — unrouting a net that was never routed,
// claiming a sink twice, reconnecting a missing core, touching another
// session's net — that only surface as rejects deep into the run. The
// linter interprets the stream symbolically (net ownership, sink usage,
// teardown history) and reports deterministic findings in the
// DRC/jrverify house style.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "arch/device.h"
#include "plan/footprint.h"

namespace jrplan {

enum class Severity : uint8_t { kError, kWarning };

const char* severityName(Severity s);

/// One lint finding. `request` is the event index in the linted stream;
/// `entity` names the pin/net; `hint` says how to fix it.
struct Finding {
  std::string rule;
  Severity severity = Severity::kError;
  int request = -1;
  std::string entity;
  std::string message;
  std::string hint;
};

/// One event of the linted stream: a session-tagged RouteSpec plus where
/// it came from ("line 12", "event 4081") for the report.
struct LintEvent {
  std::string session;
  RouteSpec spec;
  std::string origin;
};

struct LintReport {
  std::vector<Finding> findings;
  std::vector<std::string> rulesRun;
  size_t eventsChecked = 0;

  size_t errors() const;
  size_t warnings() const;
  bool clean() const { return errors() == 0; }
  bool firedRule(const std::string& id) const;
  std::string summary() const;
  std::string json() const;
};

/// Symbolic interpreter state threaded through the stream. Rules read
/// it; the interpreter (lintEvents) updates it after each event, only
/// for the effects the service would actually accept.
class LintState {
 public:
  struct NetState {
    std::string session;
    std::vector<uint64_t> sinks;
  };

  static uint64_t pinKey(const Pin& p) {
    return (static_cast<uint64_t>(static_cast<uint16_t>(p.rc.row)) << 32) |
           (static_cast<uint64_t>(static_cast<uint16_t>(p.rc.col)) << 16) |
           p.wire;
  }

  std::unordered_map<uint64_t, NetState> live;       ///< src pin → net
  std::unordered_map<uint64_t, uint64_t> usedSinks;  ///< sink pin → src pin
  std::unordered_set<uint64_t> everRouted;           ///< src pins, all time
};

/// One lint rule, jrverify-style: a stable id, a one-liner, and a check
/// invoked per event against the pre-event state.
struct LintRule {
  const char* id;
  const char* description;
  void (*check)(const xcvsim::DeviceSpec& dev, const LintState& state,
                const LintEvent& ev, int index, LintReport& out);
};

const std::vector<const LintRule*>& allLintRules();

/// Lint a stream of events against a device. Deterministic: same input,
/// same findings in the same order.
LintReport lintEvents(const xcvsim::DeviceSpec& dev,
                      const std::vector<LintEvent>& events);

std::string pinName(const Pin& p);

}  // namespace jrplan
