#include "plan/lint.h"

#include <algorithm>
#include <sstream>

#include "arch/wires.h"
#include "obs/jsonutil.h"

namespace jrplan {

using xcvsim::DeviceSpec;
using xcvsim::kNumLocalWires;

namespace {

/// Mirrors jrverify's cap: a systemic defect in a 10^5-event stream
/// would otherwise drown the report in one rule's findings.
constexpr size_t kMaxFindingsPerRule = 8;

void addFinding(const LintRule& rule, LintReport& out, Severity sev,
                int request, std::string entity, std::string message,
                std::string hint) {
  size_t count = 0;
  for (const Finding& f : out.findings) {
    if (f.rule == rule.id) ++count;
  }
  if (count >= kMaxFindingsPerRule) return;
  out.findings.push_back(Finding{rule.id, sev, request, std::move(entity),
                                 std::move(message), std::move(hint)});
}

bool pinOk(const DeviceSpec& dev, const Pin& p) {
  return dev.contains(p.rc) && p.wire < kNumLocalWires;
}

Pin pinFromKey(uint64_t key) {
  return Pin(static_cast<int16_t>((key >> 32) & 0xFFFF),
             static_cast<int16_t>((key >> 16) & 0xFFFF),
             static_cast<xcvsim::LocalWire>(key & 0xFFFF));
}

/// The (src, sink) net pairs an event asks for, in service order.
std::vector<std::pair<Pin, Pin>> routePairs(const RouteSpec& s) {
  std::vector<std::pair<Pin, Pin>> pairs;
  switch (s.op) {
    case SpecOp::kP2P:
    case SpecOp::kFanout:
      if (s.srcs.empty()) break;
      for (const Pin& sink : s.sinks) pairs.emplace_back(s.srcs[0], sink);
      break;
    case SpecOp::kBus: {
      const size_t n = std::min(s.srcs.size(), s.sinks.size());
      for (size_t i = 0; i < n; ++i) pairs.emplace_back(s.srcs[i], s.sinks[i]);
      break;
    }
    case SpecOp::kUnroute:
      break;
    case SpecOp::kReconnect:
      if (!s.srcs.empty() && !s.sinks.empty()) {
        pairs.emplace_back(s.srcs[0], s.sinks[0]);
      }
      break;
  }
  return pairs;
}

// ---- rules ----------------------------------------------------------

extern const LintRule kMalformed;
extern const LintRule kDoubleClaim;
extern const LintRule kNotOwner;
extern const LintRule kUnrouteDead;
extern const LintRule kReconnectMissing;

void checkMalformed(const DeviceSpec& dev, const LintState&,
                    const LintEvent& ev, int idx, LintReport& out) {
  const RouteSpec& s = ev.spec;
  if (s.srcs.empty()) {
    addFinding(kMalformed, out, Severity::kError, idx, ev.origin,
               std::string(specOpName(s.op)) + " request has no source pins",
               "every request needs at least one source");
    return;
  }
  if (s.op != SpecOp::kUnroute && s.sinks.empty()) {
    addFinding(kMalformed, out, Severity::kError, idx, ev.origin,
               std::string(specOpName(s.op)) + " request has no sink pins",
               "route requests need a sink for every net");
  }
  if (s.op == SpecOp::kBus && s.srcs.size() != s.sinks.size()) {
    addFinding(kMalformed, out, Severity::kError, idx, ev.origin,
               "bus width mismatch: " + std::to_string(s.srcs.size()) +
                   " sources vs " + std::to_string(s.sinks.size()) + " sinks",
               "a bus routes srcs[i] -> sinks[i]; widths must match");
  }
  auto checkPin = [&](const Pin& p, const char* role) {
    if (!dev.contains(p.rc)) {
      addFinding(kMalformed, out, Severity::kError, idx, pinName(p),
                 std::string(role) + " pin is outside the " +
                     std::string(dev.name) + " tile grid",
                 "device is " + std::to_string(dev.rows) + "x" +
                     std::to_string(dev.cols) + " tiles");
    } else if (p.wire >= kNumLocalWires) {
      addFinding(kMalformed, out, Severity::kError, idx, pinName(p),
                 std::string(role) + " pin has an invalid local wire id",
                 "wire ids are 0.." + std::to_string(kNumLocalWires - 1));
    }
  };
  for (const Pin& p : s.srcs) checkPin(p, "source");
  for (const Pin& p : s.sinks) checkPin(p, "sink");
}

void checkDoubleClaim(const DeviceSpec& dev, const LintState& st,
                      const LintEvent& ev, int idx, LintReport& out) {
  // Claiming a sink pin that another net already drives. Same-session
  // collisions are warnings — scripts provoke them deliberately (the
  // anomaly smoke) and the service handles them with one clean reject —
  // while cross-session collisions are errors: one session's workload
  // silently degrades another's.
  std::unordered_map<uint64_t, uint64_t> localSinks;
  for (const auto& [src, sink] : routePairs(ev.spec)) {
    if (!pinOk(dev, src) || !pinOk(dev, sink)) continue;
    const uint64_t srcKey = LintState::pinKey(src);
    const uint64_t sinkKey = LintState::pinKey(sink);
    const auto used = st.usedSinks.find(sinkKey);
    if (used != st.usedSinks.end() && used->second != srcKey) {
      const auto net = st.live.find(used->second);
      const std::string owner =
          net != st.live.end() ? net->second.session : "?";
      const bool sameSession = owner == ev.session;
      addFinding(kDoubleClaim, out,
                 sameSession ? Severity::kWarning : Severity::kError, idx,
                 pinName(sink),
                 "sink is already driven by " + owner + "'s net at " +
                     pinName(pinFromKey(used->second)),
                 sameSession ? "the service will reject this route with a "
                               "contention anomaly"
                             : "pick a free sink or unroute the owner first");
    }
    const auto local = localSinks.find(sinkKey);
    if (local != localSinks.end() && local->second != srcKey) {
      addFinding(kDoubleClaim, out, Severity::kError, idx, pinName(sink),
                 "two nets of this request target the same sink",
                 "bus/fanout sinks must be distinct per net");
    }
    localSinks.emplace(sinkKey, srcKey);
  }
}

void checkNotOwner(const DeviceSpec& dev, const LintState& st,
                   const LintEvent& ev, int idx, LintReport& out) {
  auto check = [&](const Pin& src, const char* what) {
    if (!pinOk(dev, src)) return;
    const auto it = st.live.find(LintState::pinKey(src));
    if (it != st.live.end() && it->second.session != ev.session) {
      addFinding(kNotOwner, out, Severity::kError, idx, pinName(src),
                 std::string(what) + " a net owned by " + it->second.session,
                 "sessions may only touch nets they routed");
    }
  };
  switch (ev.spec.op) {
    case SpecOp::kUnroute:
      for (const Pin& src : ev.spec.srcs) check(src, "unroutes");
      break;
    case SpecOp::kReconnect:
      if (!ev.spec.srcs.empty()) check(ev.spec.srcs[0], "reconnects");
      break;
    default: {
      std::unordered_set<uint64_t> seen;
      for (const auto& pair : routePairs(ev.spec)) {
        if (pinOk(dev, pair.first) &&
            seen.insert(LintState::pinKey(pair.first)).second) {
          check(pair.first, "extends");
        }
      }
      break;
    }
  }
}

void checkUnrouteDead(const DeviceSpec& dev, const LintState& st,
                      const LintEvent& ev, int idx, LintReport& out) {
  if (ev.spec.op != SpecOp::kUnroute) return;
  for (const Pin& src : ev.spec.srcs) {
    if (!pinOk(dev, src)) continue;
    const uint64_t key = LintState::pinKey(src);
    if (st.live.count(key)) continue;
    const bool torn = st.everRouted.count(key) != 0;
    addFinding(kUnrouteDead, out, Severity::kError, idx, pinName(src),
               torn ? "unroute of a net that was already torn down"
                    : "unroute of a net that was never routed",
               torn ? "drop the duplicate unroute"
                    : "route the net before unrouting it");
  }
}

void checkReconnectMissing(const DeviceSpec& dev, const LintState& st,
                           const LintEvent& ev, int idx, LintReport& out) {
  if (ev.spec.op != SpecOp::kReconnect || ev.spec.srcs.empty()) return;
  const Pin& src = ev.spec.srcs[0];
  if (!pinOk(dev, src)) return;
  if (st.live.count(LintState::pinKey(src))) return;
  addFinding(kReconnectMissing, out, Severity::kError, idx, pinName(src),
             "reconnect of a core output that drives no net",
             "reconnect tears down and re-routes an existing net; route "
             "it first");
}

const LintRule kMalformed = {
    "lint-malformed",
    "requests are structurally valid: sources, sinks, bus widths, pins "
    "on the device",
    checkMalformed};
const LintRule kDoubleClaim = {
    "lint-double-claim",
    "no sink pin is claimed by two nets (same-session collisions warn, "
    "cross-session collisions fail)",
    checkDoubleClaim};
const LintRule kNotOwner = {
    "lint-not-owner",
    "sessions only extend, unroute, or reconnect nets they own",
    checkNotOwner};
const LintRule kUnrouteDead = {
    "lint-unroute-dead",
    "unroutes target a currently routed net",
    checkUnrouteDead};
const LintRule kReconnectMissing = {
    "lint-reconnect-missing",
    "reconnects target an existing net/core output",
    checkReconnectMissing};

/// Interpreter transition: apply only the effects the service would
/// accept, so one early defect does not cascade into spurious findings
/// downstream.
void apply(const DeviceSpec& dev, LintState& st, const LintEvent& ev) {
  auto routeOne = [&](const Pin& src, const Pin& sink) {
    if (!pinOk(dev, src) || !pinOk(dev, sink)) return;
    const uint64_t srcKey = LintState::pinKey(src);
    const uint64_t sinkKey = LintState::pinKey(sink);
    const auto owner = st.live.find(srcKey);
    if (owner != st.live.end() && owner->second.session != ev.session) return;
    const auto used = st.usedSinks.find(sinkKey);
    if (used != st.usedSinks.end()) return;  // reject or idempotent reuse
    LintState::NetState& net = st.live[srcKey];
    if (net.session.empty()) net.session = ev.session;
    net.sinks.push_back(sinkKey);
    st.usedSinks.emplace(sinkKey, srcKey);
    st.everRouted.insert(srcKey);
  };
  auto unrouteOne = [&](const Pin& src) {
    if (!pinOk(dev, src)) return;
    const auto it = st.live.find(LintState::pinKey(src));
    if (it == st.live.end() || it->second.session != ev.session) return;
    for (uint64_t sinkKey : it->second.sinks) st.usedSinks.erase(sinkKey);
    st.live.erase(it);
  };
  if (ev.spec.op == SpecOp::kUnroute) {
    for (const Pin& src : ev.spec.srcs) unrouteOne(src);
    return;
  }
  if (ev.spec.op == SpecOp::kReconnect && !ev.spec.srcs.empty()) {
    unrouteOne(ev.spec.srcs[0]);
  }
  for (const auto& [src, sink] : routePairs(ev.spec)) routeOne(src, sink);
}

}  // namespace

const char* severityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

std::string pinName(const Pin& p) {
  std::ostringstream os;
  os << '(' << p.rc.row << ',' << p.rc.col << ',';
  if (p.wire < kNumLocalWires) {
    os << xcvsim::wireName(p.wire);
  } else {
    os << 'w' << p.wire;
  }
  os << ')';
  return os.str();
}

size_t LintReport::errors() const {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(), [](const Finding& f) {
        return f.severity == Severity::kError;
      }));
}

size_t LintReport::warnings() const { return findings.size() - errors(); }

bool LintReport::firedRule(const std::string& id) const {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == id; });
}

std::string LintReport::summary() const {
  std::ostringstream os;
  os << "lint: " << eventsChecked << " event(s), " << errors()
     << " error(s), " << warnings() << " warning(s)\n";
  for (const Finding& f : findings) {
    os << "  " << severityName(f.severity) << '[' << f.rule << "] request "
       << f.request << ' ' << f.entity << ": " << f.message;
    if (!f.hint.empty()) os << " — " << f.hint;
    os << '\n';
  }
  return os.str();
}

std::string LintReport::json() const {
  using jrobs::jsonKv;
  std::ostringstream os;
  os << "{\"lint\":{\"events\":" << eventsChecked
     << ",\"errors\":" << errors() << ",\"warnings\":" << warnings()
     << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i) os << ',';
    os << '{' << jsonKv("rule", f.rule) << ','
       << jsonKv("severity", severityName(f.severity))
       << ",\"request\":" << f.request << ',' << jsonKv("entity", f.entity)
       << ',' << jsonKv("message", f.message) << ','
       << jsonKv("hint", f.hint) << '}';
  }
  os << "]}}";
  return os.str();
}

const std::vector<const LintRule*>& allLintRules() {
  static const std::vector<const LintRule*> rules = {
      &kMalformed, &kDoubleClaim, &kNotOwner, &kUnrouteDead,
      &kReconnectMissing};
  return rules;
}

LintReport lintEvents(const xcvsim::DeviceSpec& dev,
                      const std::vector<LintEvent>& events) {
  LintReport out;
  LintState st;
  for (const LintRule* r : allLintRules()) out.rulesRun.push_back(r->id);
  for (size_t i = 0; i < events.size(); ++i) {
    for (const LintRule* r : allLintRules()) {
      r->check(dev, st, events[i], static_cast<int>(i), out);
    }
    apply(dev, st, events[i]);
  }
  out.eventsChecked = events.size();
  return out;
}

}  // namespace jrplan
