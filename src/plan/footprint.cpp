#include "plan/footprint.h"

#include <algorithm>
#include <cstdlib>

#include "common/types.h"
#include "fabric/fabric.h"
#include "fabric/trace.h"
#include "lookahead/lookahead.h"
#include "router/template_lib.h"

namespace jrplan {

using xcvsim::kInvalidNode;
using xcvsim::manhattan;
using xcvsim::NodeKind;
using xcvsim::TemplateValue;

const char* specOpName(SpecOp op) {
  switch (op) {
    case SpecOp::kP2P: return "p2p";
    case SpecOp::kFanout: return "fanout";
    case SpecOp::kBus: return "bus";
    case SpecOp::kUnroute: return "unroute";
    case SpecOp::kReconnect: return "reconnect";
  }
  return "?";
}

void Footprint::addTileRect(RowCol a, RowCol b) {
  const int r0 = std::max(0, static_cast<int>(std::min(a.row, b.row)));
  const int r1 =
      std::min(grid_.rows() - 1, static_cast<int>(std::max(a.row, b.row)));
  const int c0 = std::max(0, static_cast<int>(std::min(a.col, b.col)));
  const int c1 =
      std::min(grid_.cols() - 1, static_cast<int>(std::max(a.col, b.col)));
  if (r0 > r1 || c0 > c1) return;
  // Stepping by the cell pitch hits every covered cell as long as the
  // rectangle's far edges are visited too.
  auto sampled = [](int lo, int hi) {
    std::vector<int> v;
    for (int x = lo; x < hi; x += RegionGrid::kCellTiles) v.push_back(x);
    v.push_back(hi);
    return v;
  };
  for (int r : sampled(r0, r1)) {
    for (int c : sampled(c0, c1)) {
      addTile(RowCol{static_cast<int16_t>(r), static_cast<int16_t>(c)});
    }
  }
}

bool Footprint::intersects(const Footprint& other) const {
  const size_t n = std::min(bits_.size(), other.bits_.size());
  for (size_t i = 0; i < n; ++i) {
    if (bits_[i] & other.bits_[i]) return true;
  }
  return false;
}

void Footprint::unite(const Footprint& other) {
  if (bits_.size() < other.bits_.size()) bits_.resize(other.bits_.size());
  for (size_t i = 0; i < other.bits_.size(); ++i) bits_[i] |= other.bits_[i];
  sound_ = sound_ && other.sound_;
}

size_t Footprint::cellCount() const {
  size_t n = 0;
  for (uint64_t w : bits_) n += static_cast<size_t>(__builtin_popcountll(w));
  return n;
}

std::vector<int> Footprint::cells() const {
  std::vector<int> out;
  for (size_t i = 0; i < bits_.size(); ++i) {
    uint64_t w = bits_[i];
    while (w) {
      const int bit = __builtin_ctzll(w);
      out.push_back(static_cast<int>(i * 64) + bit);
      w &= w - 1;
    }
  }
  return out;
}

FootprintExtractor::FootprintExtractor(const Graph& g,
                                       const xcvsim::Fabric& fabric,
                                       jroute::RouterOptions opts)
    : g_(&g), fabric_(&fabric), opts_(opts), grid_(g.device()) {
  hooks_.templates = [this](RowCol from, RowCol to) {
    return jroute::templatesFor(g_->device(), from, to, true, true);
  };
  hooks_.longTemplates = [this](RowCol from, RowCol to) {
    return jroute::longTemplatesFor(g_->device(), from, to, true, true);
  };
  hooks_.netNodes = [this](NodeId src) {
    std::vector<NodeId> nodes{src};
    for (const xcvsim::TraceHop& hop : xcvsim::traceForward(*fabric_, src)) {
      nodes.push_back(hop.to);
    }
    return nodes;
  };
  // A long line's representative position is its strip midpoint, which
  // can lie far outside a route's bbox. Index those cells once so any
  // pair that could plausibly ride a long can fold them in cheaply.
  longRowCells_.resize(static_cast<size_t>(grid_.rows()));
  longColCells_.resize(static_cast<size_t>(grid_.cols()));
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    const NodeKind kind = g.info(n).kind;
    if (kind != NodeKind::LongH && kind != NodeKind::LongV) continue;
    const RowCol pos = g.positionOf(n);
    const int cell = grid_.cellOf(pos);
    auto& cells = kind == NodeKind::LongH
                      ? longRowCells_[static_cast<size_t>(pos.row)]
                      : longColCells_[static_cast<size_t>(pos.col)];
    if (std::find(cells.begin(), cells.end(), cell) == cells.end()) {
      cells.push_back(cell);
    }
  }
}

void FootprintExtractor::addTemplateWalk(
    Footprint& fp, RowCol from,
    const std::vector<TemplateValue>& tmpl) const {
  // Walk the nominal tile path, marking every tile a step spans: a hex
  // segment's representative position is its midpoint (±3 tiles in), so
  // marking only step endpoints would leave the hex node outside the
  // footprint.
  int r = from.row;
  int c = from.col;
  fp.addTile(from);
  for (TemplateValue v : tmpl) {
    const int dr = xcvsim::templateDRow(v);
    const int dc = xcvsim::templateDCol(v);
    const int steps = std::abs(dr) + std::abs(dc);
    const int sr = dr > 0 ? 1 : (dr < 0 ? -1 : 0);
    const int sc = dc > 0 ? 1 : (dc < 0 ? -1 : 0);
    for (int i = 0; i < steps; ++i) {
      r += sr;
      c += sc;
      fp.addTile(RowCol{static_cast<int16_t>(r), static_cast<int16_t>(c)});
    }
  }
}

void FootprintExtractor::addRoutePair(Footprint& fp, Pin src, Pin sink) const {
  const NodeId srcNode = g_->nodeAt(src.rc, src.wire);
  const NodeId sinkNode = g_->nodeAt(sink.rc, sink.wire);
  if (srcNode == kInvalidNode || sinkNode == kInvalidNode) {
    fp.markUnsound();
    return;
  }
  // Unreachable per the admissible lookahead bound: no plan can exist,
  // so no finite footprint bounds it — leave it to arbitration, which
  // rejects it authoritatively.
  const jrla::Lookahead& la = jrla::Lookahead::forGraph(*g_);
  if (la.estimate(srcNode, sinkNode, jrla::Lookahead::Mode::kFull) >=
      jrla::Lookahead::kUnreachable) {
    fp.markUnsound();
    return;
  }

  // Anchor tiles: source, sink, and — when the source already drives a
  // net — every node of the existing tree, since a new chain may branch
  // from any of them.
  RowCol lo = src.rc;
  RowCol hi = src.rc;
  auto fold = [&lo, &hi](RowCol rc) {
    lo.row = std::min(lo.row, rc.row);
    lo.col = std::min(lo.col, rc.col);
    hi.row = std::max(hi.row, rc.row);
    hi.col = std::max(hi.col, rc.col);
  };
  fold(sink.rc);
  if (fabric_->isUsed(srcNode)) {
    for (NodeId n : hooks_.netNodes(srcNode)) fold(g_->positionOf(n));
  }

  const int margin = hooks_.corridorMargin;
  const RowCol boxLo{static_cast<int16_t>(lo.row - margin),
                     static_cast<int16_t>(lo.col - margin)};
  const RowCol boxHi{static_cast<int16_t>(hi.row + margin),
                     static_cast<int16_t>(hi.col + margin)};
  fp.addTileRect(boxLo, boxHi);

  // Template nominal paths (the exact wires a template-eligible route
  // claims, modulo the walker's per-tile wiggle the corridor absorbs).
  for (const auto& tmpl : hooks_.templates(src.rc, sink.rc)) {
    addTemplateWalk(fp, src.rc, tmpl);
  }
  const auto longTmpls = hooks_.longTemplates(src.rc, sink.rc);
  for (const auto& tmpl : longTmpls) addTemplateWalk(fp, src.rc, tmpl);

  // Long-line strips. Beyond template range the maze and the long-line
  // composer both consider longs; a composition template at moderate
  // distance does too. Either way the long node's midpoint cell must be
  // in the footprint even though it is far outside the corridor.
  const bool longsPlausible =
      opts_.useLongLines && (!longTmpls.empty() ||
                             manhattan(src.rc, sink.rc) >
                                 opts_.templateMaxDistance);
  if (longsPlausible) {
    const int r0 = std::max(0, static_cast<int>(boxLo.row));
    const int r1 = std::min(grid_.rows() - 1, static_cast<int>(boxHi.row));
    for (int r = r0; r <= r1; ++r) {
      for (int cell : longRowCells_[static_cast<size_t>(r)]) fp.addCell(cell);
    }
    const int c0 = std::max(0, static_cast<int>(boxLo.col));
    const int c1 = std::min(grid_.cols() - 1, static_cast<int>(boxHi.col));
    for (int c = c0; c <= c1; ++c) {
      for (int cell : longColCells_[static_cast<size_t>(c)]) fp.addCell(cell);
    }
  }
}

void FootprintExtractor::addNet(Footprint& fp, Pin src) const {
  const NodeId srcNode = g_->nodeAt(src.rc, src.wire);
  if (srcNode == kInvalidNode || !fabric_->isUsed(srcNode)) {
    // Unrouting a net that does not exist: the request will be rejected
    // (and the linter flags it), but no footprint can bound it.
    fp.markUnsound();
    return;
  }
  for (NodeId n : hooks_.netNodes(srcNode)) fp.addTile(g_->positionOf(n));
}

Footprint FootprintExtractor::extract(const RouteSpec& spec) const {
  Footprint fp(grid_);
  if (spec.srcs.empty()) {
    fp.markUnsound();
    return fp;
  }
  switch (spec.op) {
    case SpecOp::kP2P:
    case SpecOp::kFanout:
      if (spec.sinks.empty()) fp.markUnsound();
      for (const Pin& sink : spec.sinks) addRoutePair(fp, spec.srcs[0], sink);
      break;
    case SpecOp::kBus: {
      if (spec.srcs.size() != spec.sinks.size()) fp.markUnsound();
      const size_t n = std::min(spec.srcs.size(), spec.sinks.size());
      for (size_t i = 0; i < n; ++i) {
        addRoutePair(fp, spec.srcs[i], spec.sinks[i]);
      }
      break;
    }
    case SpecOp::kUnroute:
      for (const Pin& src : spec.srcs) addNet(fp, src);
      break;
    case SpecOp::kReconnect:
      if (spec.sinks.empty()) {
        fp.markUnsound();
        break;
      }
      addNet(fp, spec.srcs[0]);
      addRoutePair(fp, spec.srcs[0], spec.sinks[0]);
      break;
  }
  return fp;
}

Footprint FootprintExtractor::extractPair(Pin src, Pin sink) const {
  Footprint fp(grid_);
  addRoutePair(fp, src, sink);
  return fp;
}

bool paranoidEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("JROUTE_PLAN_PARANOID");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

}  // namespace jrplan
