#include "plan/lint_script.h"

#include <cctype>
#include <sstream>

#include "arch/device.h"
#include "arch/wires.h"
#include "common/error.h"

namespace jrplan {

using xcvsim::kNumLocalWires;
using xcvsim::LocalWire;

namespace {

/// Mirrors jrsh's lookupWire: numeric id or symbolic name.
bool lookupWire(const std::string& token, LocalWire& out) {
  if (!token.empty() && std::isdigit(static_cast<unsigned char>(token[0]))) {
    out = static_cast<LocalWire>(std::stoi(token));
    return true;
  }
  for (LocalWire w = 0; w < kNumLocalWires; ++w) {
    if (xcvsim::wireName(w) == token) {
      out = w;
      return true;
    }
  }
  return false;
}

bool readPin(std::istringstream& ls, Pin& out, std::string& err) {
  int r = 0;
  int c = 0;
  std::string w;
  if (!(ls >> r >> c >> w)) {
    err = "expected <row> <col> <wire>";
    return false;
  }
  LocalWire wire = xcvsim::kInvalidLocalWire;
  if (!lookupWire(w, wire)) {
    err = "unknown wire '" + w + "'";
    return false;
  }
  out = Pin(r, c, wire);
  return true;
}

}  // namespace

ScriptWorkload parseScript(std::istream& in) {
  ScriptWorkload out;
  std::string line;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd[0] == '#') continue;
    const std::string origin = "line " + std::to_string(lineNo);
    auto fail = [&](const std::string& why) {
      out.parseErrors.push_back(origin + ": " + cmd + ": " + why);
    };
    LintEvent ev;
    ev.session = "shell";
    ev.origin = origin;
    std::string err;
    if (cmd == "device") {
      ls >> out.device;
    } else if (cmd == "auto") {
      Pin src;
      Pin sink;
      if (!readPin(ls, src, err) || !readPin(ls, sink, err)) {
        fail(err);
        continue;
      }
      ev.spec.op = SpecOp::kP2P;
      ev.spec.srcs = {src};
      ev.spec.sinks = {sink};
      out.events.push_back(std::move(ev));
    } else if (cmd == "fanout") {
      Pin src;
      int n = 0;
      if (!readPin(ls, src, err) || !(ls >> n)) {
        fail(err.empty() ? "expected <n> after the source pin" : err);
        continue;
      }
      ev.spec.op = SpecOp::kFanout;
      ev.spec.srcs = {src};
      bool ok = true;
      for (int i = 0; i < n; ++i) {
        Pin sink;
        if (!readPin(ls, sink, err)) {
          fail(err);
          ok = false;
          break;
        }
        ev.spec.sinks.push_back(sink);
      }
      if (ok) out.events.push_back(std::move(ev));
    } else if (cmd == "unroute") {
      Pin src;
      if (!readPin(ls, src, err)) {
        fail(err);
        continue;
      }
      ev.spec.op = SpecOp::kUnroute;
      ev.spec.srcs = {src};
      out.events.push_back(std::move(ev));
    }
    // Every other command is net-neutral for lint purposes.
  }
  return out;
}

LintReport lintScript(std::istream& in) {
  ScriptWorkload wl = parseScript(in);
  LintReport rep;
  const xcvsim::DeviceSpec* dev = nullptr;
  try {
    dev = &xcvsim::deviceByName(wl.device.empty() ? "XCV50" : wl.device);
  } catch (const xcvsim::ArgumentError&) {
    rep.findings.push_back(Finding{"lint-malformed", Severity::kError, -1,
                                   wl.device, "unknown device",
                                   "see `device` in jrsh help"});
    return rep;
  }
  rep = lintEvents(*dev, wl.events);
  for (const std::string& err : wl.parseErrors) {
    rep.findings.push_back(Finding{"lint-malformed", Severity::kError, -1,
                                   err.substr(0, err.find(':')), err,
                                   "fix the script syntax"});
  }
  return rep;
}

}  // namespace jrplan
