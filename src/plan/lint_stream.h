// Header-only adapter from the workload generator's StreamEvents to
// lint events. Lives here (not in lint.cpp) so jr_plan never links
// jr_workload: StreamEvent is a plain struct, and only callers that
// already depend on both libraries (jrplan CLI, jrload, tests)
// instantiate this.
#pragma once

#include <string>
#include <vector>

#include "plan/lint.h"
#include "workload/session_stream.h"

namespace jrplan {

inline SpecOp specOpOf(workload::StreamOp op) {
  switch (op) {
    case workload::StreamOp::kP2P: return SpecOp::kP2P;
    case workload::StreamOp::kFanout: return SpecOp::kFanout;
    case workload::StreamOp::kBus: return SpecOp::kBus;
    case workload::StreamOp::kUnroute: return SpecOp::kUnroute;
    case workload::StreamOp::kReconnect: return SpecOp::kReconnect;
  }
  return SpecOp::kP2P;
}

inline std::vector<LintEvent> toLintEvents(
    const std::vector<workload::StreamEvent>& events) {
  std::vector<LintEvent> out;
  out.reserve(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const workload::StreamEvent& ev = events[i];
    LintEvent le;
    le.session = "session " + std::to_string(ev.session);
    le.spec.op = specOpOf(ev.op);
    le.spec.srcs = ev.srcs;
    le.spec.sinks = ev.sinks;
    le.origin = "event " + std::to_string(i);
    out.push_back(std::move(le));
  }
  return out;
}

}  // namespace jrplan
