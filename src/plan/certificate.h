// No-conflict certificates: greedy-color a batch of requests by
// footprint interference into waves whose members are pairwise
// cell-disjoint. Within one wave no two plans can claim the same node
// (node → cell is a pure function), so the service engine may plan and
// commit a certified wave with claim arbitration skipped. Requests whose
// footprint is unsound stay uncertified and take the ordinary
// arbitration path. See DESIGN.md §18.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "plan/footprint.h"

namespace jrplan {

/// One conflict-free wave: indices into the planned batch, plus the
/// union footprint (used by the paranoid cross-check and for metrics).
struct Wave {
  std::vector<size_t> members;
  Footprint unionFp;
};

/// The analyzer's verdict over one batch.
struct NoConflictCertificate {
  std::vector<Wave> waves;
  std::vector<size_t> uncertified;  ///< unsound-footprint batch indices
  std::vector<Footprint> footprints;  ///< per-request, parallel to input

  size_t certifiedCount() const;
  std::string json() const;
};

/// Greedy interference coloring: each sound request joins the first wave
/// whose union footprint it does not intersect, else opens a new wave.
/// Deterministic for a given batch order.
NoConflictCertificate planBatch(const FootprintExtractor& extractor,
                                const std::vector<RouteSpec>& specs);

/// Same coloring over pre-extracted footprints (the service computes
/// per-request footprints itself to mirror exactly how the planner will
/// decompose each request into nets).
NoConflictCertificate planBatch(const RegionGrid& grid,
                                std::vector<Footprint> footprints);

}  // namespace jrplan
