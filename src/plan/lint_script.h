// jrsh script front-end for the workload linter: parses the net-level
// commands of a `.jr` script (device / auto / fanout / unroute) into
// lint events so a scripted session can be checked before it runs.
// Non-net commands (telemetry, reports, service toggles) are ignored.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "plan/lint.h"

namespace jrplan {

struct ScriptWorkload {
  std::string device;              ///< from the `device` command, "" if none
  std::vector<LintEvent> events;   ///< net-level commands, in order
  std::vector<std::string> parseErrors;
};

/// Parse a jrsh script. Tokens that do not parse (bad wire name, short
/// argument list) are reported in parseErrors and the command skipped.
ScriptWorkload parseScript(std::istream& in);

/// Convenience: parse + lint. Parse errors surface as lint-malformed
/// findings so callers get one report.
LintReport lintScript(std::istream& in);

}  // namespace jrplan
