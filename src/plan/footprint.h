// jrplan — static claim-footprint analysis for pending routing requests.
//
// A *claim footprint* is a conservative over-approximation of every
// routing-resource node a request's plan could claim, expressed as a set
// of region-grid cells. The mapping node → cell is a pure function of the
// node (its representative position tile), so two requests with disjoint
// cell sets can never claim the same node — that is the whole soundness
// argument, and it does not depend on how tight the extraction is:
// certified planning additionally installs a NodeClaimFilter that blocks
// any node *outside* the footprint, making "routed wires ⊆ footprint"
// true by construction. Extraction tightness only affects how often a
// certified plan succeeds (failures fall back to claim arbitration),
// never whether a certificate is trustworthy. See DESIGN.md §18.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "arch/device.h"
#include "arch/template_value.h"
#include "common/types.h"
#include "core/endpoint.h"
#include "router/options.h"
#include "rrg/graph.h"

namespace xcvsim {
class Fabric;
}

namespace jrplan {

using jroute::Pin;
using xcvsim::DeviceSpec;
using xcvsim::Graph;
using xcvsim::NodeId;
using xcvsim::RowCol;

/// Fixed-pitch grid of square tile regions covering a device. The same
/// grid keys the footprint bitsets and the sharded ClaimMap, so a
/// footprint cell corresponds 1:1 to an arbitration shard.
class RegionGrid {
 public:
  static constexpr int kCellTiles = 4;  ///< region edge length, in tiles

  RegionGrid() = default;
  RegionGrid(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        cellsPerRow_((cols + kCellTiles - 1) / kCellTiles),
        cellRows_((rows + kCellTiles - 1) / kCellTiles) {}

  explicit RegionGrid(const DeviceSpec& dev) : RegionGrid(dev.rows, dev.cols) {}

  int numCells() const { return cellsPerRow_ * cellRows_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  /// Cell index of a tile. Out-of-device tiles clamp to the edge cell so
  /// callers can feed nominal template walk positions without bounds
  /// checks (the walk itself is bounds-verified elsewhere, tpl-bounds).
  int cellOf(RowCol rc) const {
    int r = rc.row < 0 ? 0 : (rc.row >= rows_ ? rows_ - 1 : rc.row);
    int c = rc.col < 0 ? 0 : (rc.col >= cols_ ? cols_ - 1 : rc.col);
    return (r / kCellTiles) * cellsPerRow_ + (c / kCellTiles);
  }

  friend bool operator==(const RegionGrid&, const RegionGrid&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  int cellsPerRow_ = 0;
  int cellRows_ = 0;
};

/// A set of region cells plus a soundness flag. `sound == false` means
/// the extractor could not bound the request (unresolvable pin,
/// lookahead-unreachable sink, unknown net) — such a request must go
/// through ordinary claim arbitration, never a certified wave.
class Footprint {
 public:
  Footprint() = default;
  explicit Footprint(const RegionGrid& grid)
      : grid_(grid), bits_((static_cast<size_t>(grid.numCells()) + 63) / 64) {}

  bool sound() const { return sound_; }
  void markUnsound() { sound_ = false; }
  const RegionGrid& grid() const { return grid_; }

  void addCell(int cell) {
    bits_[static_cast<size_t>(cell) >> 6] |= uint64_t{1} << (cell & 63);
  }
  void addTile(RowCol rc) { addCell(grid_.cellOf(rc)); }

  /// Every cell touched by the inclusive tile rectangle [a, b].
  void addTileRect(RowCol a, RowCol b);

  bool containsCell(int cell) const {
    return (bits_[static_cast<size_t>(cell) >> 6] >>
            (cell & 63)) & uint64_t{1};
  }
  bool containsTile(RowCol rc) const { return containsCell(grid_.cellOf(rc)); }

  /// Does the plan filter admit node `n`? True iff the node's
  /// representative position tile falls in a contained cell.
  bool allowsNode(const Graph& g, NodeId n) const {
    return containsTile(g.positionOf(n));
  }

  bool intersects(const Footprint& other) const;
  void unite(const Footprint& other);
  size_t cellCount() const;

  /// Sorted contained cell indices (deterministic JSON / test output).
  std::vector<int> cells() const;

 private:
  RegionGrid grid_;
  std::vector<uint64_t> bits_;
  bool sound_ = true;
};

/// Request kinds jrplan understands — mirrors the service ops plus the
/// workload stream's reconnect (unroute srcs[0], route srcs[0]→sinks[0]).
enum class SpecOp : uint8_t { kP2P, kFanout, kBus, kUnroute, kReconnect };

const char* specOpName(SpecOp op);

/// A request reduced to what footprint extraction needs: the op and the
/// physical pins. The service builds these from live Requests under the
/// fabric lock; the linter builds them from scripts and streams.
struct RouteSpec {
  SpecOp op = SpecOp::kP2P;
  std::vector<Pin> srcs;
  std::vector<Pin> sinks;
};

/// Extracts conservative claim footprints from RouteSpecs against a
/// frozen fabric. One extractor per device/graph; cheap to call per
/// request (template-library lookups + a bbox sweep).
class FootprintExtractor {
 public:
  /// Seams for the mutation-liveness tests (plan_test.cpp): each hook
  /// replaces one ingredient of extraction so a test can prove that
  /// ingredient is live (corrupting it must break the over-approximation
  /// property or the jrverify rule). Production code never overrides.
  struct Hooks {
    std::function<std::vector<std::vector<xcvsim::TemplateValue>>(
        RowCol, RowCol)> templates;
    std::function<std::vector<std::vector<xcvsim::TemplateValue>>(
        RowCol, RowCol)> longTemplates;
    std::function<std::vector<NodeId>(NodeId)> netNodes;  ///< src → tree
    int corridorMargin = 2;  ///< tiles added around the maze bbox
  };

  FootprintExtractor(const Graph& g, const xcvsim::Fabric& fabric,
                     jroute::RouterOptions opts = {});

  const RegionGrid& grid() const { return grid_; }
  Hooks& hooks() { return hooks_; }

  /// Footprint of one request. Never throws: anything unexpected flags
  /// the footprint unsound instead.
  Footprint extract(const RouteSpec& spec) const;

  /// Footprint of one source→sink pair (the jrverify
  /// template-footprint-consistent rule checks template replays against
  /// exactly this).
  Footprint extractPair(Pin src, Pin sink) const;

 private:
  void addRoutePair(Footprint& fp, Pin src, Pin sink) const;
  void addNet(Footprint& fp, Pin src) const;
  void addTemplateWalk(Footprint& fp, RowCol from,
                       const std::vector<xcvsim::TemplateValue>& tmpl) const;

  const Graph* g_;
  const xcvsim::Fabric* fabric_;
  jroute::RouterOptions opts_;
  RegionGrid grid_;
  Hooks hooks_;
  /// Cells holding long-line strip midpoints, per row / per column:
  /// positionOf(LongH) is the strip midpoint tile, which can lie far
  /// outside a route's bbox, so whenever a pair could plausibly ride a
  /// long line the footprint must include these cells.
  std::vector<std::vector<int>> longRowCells_;  // [row] → cells
  std::vector<std::vector<int>> longColCells_;  // [col] → cells
};

/// JROUTE_PLAN_PARANOID: re-run claim arbitration on certified waves and
/// hard-fail on any disagreement (mirrors JROUTE_DRC_PARANOID).
bool paranoidEnabled();

}  // namespace jrplan
