#include "plan/certificate.h"

#include <sstream>

#include "obs/jsonutil.h"

namespace jrplan {

size_t NoConflictCertificate::certifiedCount() const {
  size_t n = 0;
  for (const Wave& w : waves) n += w.members.size();
  return n;
}

std::string NoConflictCertificate::json() const {
  std::ostringstream os;
  os << "{\"waves\":[";
  for (size_t i = 0; i < waves.size(); ++i) {
    if (i) os << ',';
    os << "{\"members\":[";
    for (size_t j = 0; j < waves[i].members.size(); ++j) {
      if (j) os << ',';
      os << waves[i].members[j];
    }
    os << "],\"cells\":" << waves[i].unionFp.cellCount() << '}';
  }
  os << "],\"uncertified\":[";
  for (size_t i = 0; i < uncertified.size(); ++i) {
    if (i) os << ',';
    os << uncertified[i];
  }
  os << "],\"certified\":" << certifiedCount() << '}';
  return os.str();
}

NoConflictCertificate planBatch(const RegionGrid& grid,
                                std::vector<Footprint> footprints) {
  NoConflictCertificate cert;
  cert.footprints = std::move(footprints);
  for (size_t i = 0; i < cert.footprints.size(); ++i) {
    const Footprint& fp = cert.footprints[i];
    if (!fp.sound()) {
      cert.uncertified.push_back(i);
      continue;
    }
    Wave* home = nullptr;
    for (Wave& w : cert.waves) {
      if (!w.unionFp.intersects(fp)) {
        home = &w;
        break;
      }
    }
    if (home == nullptr) {
      cert.waves.emplace_back();
      home = &cert.waves.back();
      home->unionFp = Footprint(grid);
    }
    home->members.push_back(i);
    home->unionFp.unite(fp);
  }
  return cert;
}

NoConflictCertificate planBatch(const FootprintExtractor& extractor,
                                const std::vector<RouteSpec>& specs) {
  std::vector<Footprint> fps;
  fps.reserve(specs.size());
  for (const RouteSpec& spec : specs) fps.push_back(extractor.extract(spec));
  return planBatch(extractor.grid(), std::move(fps));
}

}  // namespace jrplan
