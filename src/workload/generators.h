// Synthetic workload generation for tests and benchmarks.
//
// The paper has no public benchmark set (RTR designs were hand-built JBits
// programs), so the experiments use seeded generators producing the
// connection patterns its prose describes: random point-to-point nets with
// bounded displacement, fanout nets, aligned buses between pipeline
// stages, and whole dataflow pipelines. All generators are deterministic
// for a given seed.
#pragma once

#include <vector>

#include "arch/device.h"
#include "baseline/pathfinder.h"
#include "common/rng.h"
#include "core/endpoint.h"
#include "rrg/graph.h"

namespace workload {

using jroute::Pin;
using xcvsim::DeviceSpec;
using xcvsim::Rng;
using xcvsim::RowCol;

/// A point-to-point connection request.
struct P2P {
  Pin src;
  Pin sink;
};

/// A fanout net: one source, several sinks.
struct FanoutNet {
  Pin src;
  std::vector<Pin> sinks;
};

/// A bus: sources[i] connects to sinks[i].
struct Bus {
  std::vector<Pin> srcs;
  std::vector<Pin> sinks;
};

/// `count` random point-to-point nets whose Manhattan displacement lies in
/// [minDist, maxDist]. Sources are distinct slice outputs, sinks distinct
/// CLB input pins; no pin is used twice across the workload.
std::vector<P2P> makeP2P(const DeviceSpec& dev, int count, int minDist,
                         int maxDist, uint64_t seed);

/// `count` fanout nets of `fanout` sinks each, sinks within a bounding box
/// of `bboxRadius` tiles around the source.
std::vector<FanoutNet> makeFanout(const DeviceSpec& dev, int count,
                                  int fanout, int bboxRadius, uint64_t seed);

/// A bus of `width` bits between two vertical strips `span` columns apart,
/// one bit per slice output going down the strip.
Bus makeBus(const DeviceSpec& dev, int width, int span, uint64_t seed);

/// A mixed design-like workload sharing ONE pin-exclusion set, so no two
/// nets ever claim the same pin (two generator calls with separate seeds
/// can collide, which would make the workload inherently unroutable).
struct Mixed {
  std::vector<P2P> p2p;
  std::vector<FanoutNet> fanout;
};
Mixed makeMixed(const DeviceSpec& dev, int p2pCount, int fanoutCount,
                int fanout, int maxDist, uint64_t seed);

/// Convert to the baseline router's net representation.
std::vector<baseline::PfNet> toPfNets(const xcvsim::Graph& g,
                                      std::span<const P2P> nets);
std::vector<baseline::PfNet> toPfNets(const xcvsim::Graph& g,
                                      std::span<const FanoutNet> nets);

}  // namespace workload
