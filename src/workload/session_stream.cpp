#include "workload/session_stream.h"

#include <cstdio>
#include <unordered_set>

#include "arch/patterns.h"
#include "arch/wires.h"
#include "common/error.h"

namespace workload {

using xcvsim::clbIn;
using xcvsim::isClockPin;
using xcvsim::kClbInputs;
using xcvsim::kSliceOutputs;
using xcvsim::LocalWire;
using xcvsim::nonClockPin;
using xcvsim::RowCol;
using xcvsim::sliceOut;

const char* streamOpName(StreamOp op) {
  switch (op) {
    case StreamOp::kP2P: return "p2p";
    case StreamOp::kFanout: return "fanout";
    case StreamOp::kBus: return "bus";
    case StreamOp::kUnroute: return "unroute";
    case StreamOp::kReconnect: return "reconnect";
  }
  return "?";
}

namespace {

uint64_t pinKey(const Pin& p) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(p.rc.row)) << 32) |
         (static_cast<uint64_t>(static_cast<uint16_t>(p.rc.col)) << 16) |
         p.wire;
}

/// Random slice-output pin at `rc` not yet claimed by any slot.
Pin pickSourceAt(RowCol rc, Rng& rng, std::unordered_set<uint64_t>& used) {
  for (int attempt = 0; attempt < kSliceOutputs * 4; ++attempt) {
    const Pin p(rc, sliceOut(rng.intIn(0, kSliceOutputs - 1)));
    if (used.insert(pinKey(p)).second) return p;
  }
  return Pin(rc, xcvsim::kInvalidLocalWire);  // tile's outputs exhausted
}

/// Random non-clock CLB input at `rc` not yet claimed.
Pin pickSinkAt(RowCol rc, Rng& rng, std::unordered_set<uint64_t>& used) {
  for (int attempt = 0; attempt < kClbInputs * 4; ++attempt) {
    const LocalWire w = clbIn(rng.intIn(0, kClbInputs - 1));
    if (isClockPin(w)) continue;
    const Pin p(rc, w);
    if (used.insert(pinKey(p)).second) return p;
  }
  return Pin(rc, xcvsim::kInvalidLocalWire);
}

}  // namespace

SessionStream::SessionStream(const DeviceSpec& dev,
                             SessionStreamOptions opts)
    : opts_(opts), rng_(opts.seed) {
  const int radius = opts_.radius;
  if (dev.rows <= 2 * radius + 1 || dev.cols <= 2 * radius + 1) {
    throw xcvsim::ArgumentError(
        "session stream: device too small for the slot radius");
  }
  // All slots across all sessions share one pin-exclusion set, so the
  // stream never scripts two nets onto the same pin (generators.h
  // documents why per-call seeds would make the workload unroutable).
  std::unordered_set<uint64_t> used;
  sessions_.resize(static_cast<size_t>(opts_.sessions));
  for (int s = 0; s < opts_.sessions; ++s) {
    auto& slots = sessions_[static_cast<size_t>(s)];
    slots.resize(static_cast<size_t>(opts_.slotsPerSession));
    for (int i = 0; i < opts_.slotsPerSession; ++i) {
      Slot& slot = slots[static_cast<size_t>(i)];
      // Mix: every session is mostly p2p with a fanout every third
      // slot; every fourth session trades its first slot for a bus.
      slot.kind = (s % 4 == 0 && i == 0) ? StreamOp::kBus
                  : (i % 3 == 2)         ? StreamOp::kFanout
                                         : StreamOp::kP2P;
      for (int attempt = 0;; ++attempt) {
        if (attempt >= 1000) {
          throw xcvsim::JRouteError(
              "session stream: device exhausted placing slots");
        }
        if (slot.kind == StreamOp::kBus) {
          // A short strip, makeBus-style: bit b drives slice output b
          // at (row, colA) into the matching non-clock input at colB.
          const int row = rng_.intIn(radius, dev.rows - 1 - radius);
          const int colA = rng_.intIn(radius, dev.cols - 1 - radius - 2);
          const int colB = colA + rng_.intIn(2, radius);
          std::vector<Pin> srcs, sinks;
          bool ok = true;
          for (int b = 0; b < opts_.busWidth && ok; ++b) {
            srcs.emplace_back(row, colA, sliceOut(b % kSliceOutputs));
            sinks.emplace_back(row, colB,
                               clbIn(nonClockPin(b % kSliceOutputs)));
            ok = used.count(pinKey(srcs.back())) == 0 &&
                 used.count(pinKey(sinks.back())) == 0;
          }
          if (!ok) continue;
          for (const Pin& p : srcs) used.insert(pinKey(p));
          for (const Pin& p : sinks) used.insert(pinKey(p));
          slot.srcs = std::move(srcs);
          slot.sinks = std::move(sinks);
          break;
        }
        const RowCol src{
            static_cast<int16_t>(rng_.intIn(radius, dev.rows - 1 - radius)),
            static_cast<int16_t>(rng_.intIn(radius, dev.cols - 1 - radius))};
        const Pin srcPin = pickSourceAt(src, rng_, used);
        if (srcPin.wire == xcvsim::kInvalidLocalWire) continue;
        // p2p slots get two candidate sinks so reconnect events have an
        // alternate port; fanout slots get their full sink set.
        const int nSinks =
            slot.kind == StreamOp::kFanout ? opts_.fanout : 2;
        std::vector<Pin> sinks;
        int guard = 0;
        while (static_cast<int>(sinks.size()) < nSinks &&
               ++guard < nSinks * 200) {
          const int r = src.row + rng_.intIn(-radius, radius);
          const int c = src.col + rng_.intIn(-radius, radius);
          if (r == src.row && c == src.col) continue;
          const Pin sink = pickSinkAt(
              {static_cast<int16_t>(r), static_cast<int16_t>(c)}, rng_,
              used);
          if (sink.wire != xcvsim::kInvalidLocalWire) sinks.push_back(sink);
        }
        if (static_cast<int>(sinks.size()) < nSinks) {
          used.erase(pinKey(srcPin));
          for (const Pin& p : sinks) used.erase(pinKey(p));
          continue;
        }
        slot.srcs = {srcPin};
        slot.sinks = std::move(sinks);
        break;
      }
    }
  }
}

StreamEvent SessionStream::next() {
  const uint32_t sess =
      static_cast<uint32_t>(produced_ % sessions_.size());
  auto& slots = sessions_[sess];
  const uint32_t si = static_cast<uint32_t>(rng_.below(slots.size()));
  Slot& slot = slots[si];

  StreamEvent ev;
  ev.session = sess;
  ev.slot = si;
  if (!slot.routed) {
    ev.op = slot.kind;
    ev.srcs = slot.srcs;
    ev.sinks = slot.kind == StreamOp::kP2P
                   ? std::vector<Pin>{slot.sinks[slot.sinkSel]}
                   : slot.sinks;
    slot.routed = true;
  } else if (slot.kind == StreamOp::kP2P && rng_.chance(0.4)) {
    // Port reconnect: same source, the other candidate sink. The driver
    // replays this as unroute-then-route, ordered per slot.
    slot.sinkSel ^= 1u;
    ev.op = StreamOp::kReconnect;
    ev.srcs = slot.srcs;
    ev.sinks = {slot.sinks[slot.sinkSel]};
  } else {
    ev.op = StreamOp::kUnroute;
    ev.srcs = slot.srcs;  // every net source of the slot (bus: one per bit)
    slot.routed = false;
  }
  ++produced_;
  return ev;
}

std::vector<StreamEvent> SessionStream::take(size_t n) {
  std::vector<StreamEvent> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

std::string SessionStream::describe(const StreamEvent& e) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "s%u/%u %s", e.session, e.slot,
                streamOpName(e.op));
  std::string out = buf;
  auto pin = [&](const Pin& p) {
    std::snprintf(buf, sizeof buf, "(%d,%d,w%u)", p.rc.row, p.rc.col,
                  static_cast<unsigned>(p.wire));
    out += buf;
  };
  out += " ";
  for (const Pin& p : e.srcs) pin(p);
  if (!e.sinks.empty()) {
    out += "->";
    for (const Pin& p : e.sinks) pin(p);
  }
  return out;
}

}  // namespace workload
