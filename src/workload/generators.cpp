#include "workload/generators.h"

#include <unordered_set>

#include "arch/patterns.h"
#include "arch/wires.h"
#include "common/error.h"

namespace workload {

using xcvsim::clbIn;
using xcvsim::isClockPin;
using xcvsim::kClbInputs;
using xcvsim::kSliceOutputs;
using xcvsim::LocalWire;
using xcvsim::sliceOut;

namespace {

uint64_t pinKey(const Pin& p) {
  return (static_cast<uint64_t>(static_cast<uint16_t>(p.rc.row)) << 32) |
         (static_cast<uint64_t>(static_cast<uint16_t>(p.rc.col)) << 16) |
         p.wire;
}

/// Pick a random slice-output pin not yet in `used`.
Pin pickSource(const DeviceSpec& dev, Rng& rng,
               std::unordered_set<uint64_t>& used) {
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const Pin p(rng.intIn(0, dev.rows - 1), rng.intIn(0, dev.cols - 1),
                sliceOut(rng.intIn(0, kSliceOutputs - 1)));
    if (used.insert(pinKey(p)).second) return p;
  }
  throw xcvsim::JRouteError("workload: device exhausted picking sources");
}

/// Pick a random non-clock CLB input pin at `rc` not yet in `used`.
Pin pickSinkAt(RowCol rc, Rng& rng, std::unordered_set<uint64_t>& used) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const LocalWire w = clbIn(rng.intIn(0, kClbInputs - 1));
    if (isClockPin(w)) continue;
    const Pin p(rc, w);
    if (used.insert(pinKey(p)).second) return p;
  }
  return Pin(rc, xcvsim::kInvalidLocalWire);  // tile full
}

}  // namespace

namespace {

std::vector<P2P> makeP2PInto(const DeviceSpec& dev, int count, int minDist,
                             int maxDist, Rng& rng,
                             std::unordered_set<uint64_t>& used) {
  std::vector<P2P> out;
  out.reserve(static_cast<size_t>(count));
  int guard = 0;
  while (static_cast<int>(out.size()) < count) {
    if (++guard > count * 1000) {
      throw xcvsim::JRouteError("workload: cannot satisfy distance bounds");
    }
    const Pin src = pickSource(dev, rng, used);
    const RowCol rc{static_cast<int16_t>(rng.intIn(0, dev.rows - 1)),
                    static_cast<int16_t>(rng.intIn(0, dev.cols - 1))};
    const int d = manhattan(src.rc, rc);
    if (d < minDist || d > maxDist) {
      used.erase(pinKey(src));
      continue;
    }
    const Pin sink = pickSinkAt(rc, rng, used);
    if (sink.wire == xcvsim::kInvalidLocalWire) {
      used.erase(pinKey(src));
      continue;
    }
    out.push_back({src, sink});
  }
  return out;
}

std::vector<FanoutNet> makeFanoutInto(const DeviceSpec& dev, int count,
                                      int fanout, int bboxRadius, Rng& rng,
                                      std::unordered_set<uint64_t>& used) {
  std::vector<FanoutNet> out;
  out.reserve(static_cast<size_t>(count));
  while (static_cast<int>(out.size()) < count) {
    FanoutNet net;
    net.src = pickSource(dev, rng, used);
    int guard = 0;
    while (static_cast<int>(net.sinks.size()) < fanout) {
      if (++guard > fanout * 1000) {
        throw xcvsim::JRouteError("workload: cannot place fanout sinks");
      }
      const int r = net.src.rc.row + rng.intIn(-bboxRadius, bboxRadius);
      const int c = net.src.rc.col + rng.intIn(-bboxRadius, bboxRadius);
      if (r < 0 || r >= dev.rows || c < 0 || c >= dev.cols) continue;
      const Pin sink = pickSinkAt(
          {static_cast<int16_t>(r), static_cast<int16_t>(c)}, rng, used);
      if (sink.wire != xcvsim::kInvalidLocalWire) net.sinks.push_back(sink);
    }
    out.push_back(std::move(net));
  }
  return out;
}

}  // namespace

std::vector<P2P> makeP2P(const DeviceSpec& dev, int count, int minDist,
                         int maxDist, uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<uint64_t> used;
  return makeP2PInto(dev, count, minDist, maxDist, rng, used);
}

std::vector<FanoutNet> makeFanout(const DeviceSpec& dev, int count,
                                  int fanout, int bboxRadius,
                                  uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<uint64_t> used;
  return makeFanoutInto(dev, count, fanout, bboxRadius, rng, used);
}

Mixed makeMixed(const DeviceSpec& dev, int p2pCount, int fanoutCount,
                int fanout, int maxDist, uint64_t seed) {
  Rng rng(seed);
  std::unordered_set<uint64_t> used;
  Mixed mixed;
  mixed.p2p = makeP2PInto(dev, p2pCount, 2, maxDist, rng, used);
  mixed.fanout =
      makeFanoutInto(dev, fanoutCount, fanout, maxDist / 3 + 2, rng, used);
  return mixed;
}

Bus makeBus(const DeviceSpec& dev, int width, int span, uint64_t seed) {
  Rng rng(seed);
  // Two vertical strips of CLBs, `span` columns apart; bit i uses slice
  // output (i % 8) of tile row0 + i/8 — dense, regular, pipeline-like.
  const int tilesNeeded = (width + kSliceOutputs - 1) / kSliceOutputs;
  if (tilesNeeded > dev.rows || span >= dev.cols) {
    throw xcvsim::ArgumentError("makeBus: bus does not fit the device");
  }
  const int row0 = rng.intIn(0, dev.rows - tilesNeeded);
  const int colA = rng.intIn(0, dev.cols - 1 - span);
  const int colB = colA + span;
  Bus bus;
  for (int i = 0; i < width; ++i) {
    const int r = row0 + i / kSliceOutputs;
    bus.srcs.emplace_back(r, colA, sliceOut(i % kSliceOutputs));
    // Sinks use the non-clock input with the same index for regularity.
    bus.sinks.emplace_back(r, colB,
                           clbIn(xcvsim::nonClockPin(i % kSliceOutputs)));
  }
  return bus;
}

namespace {

baseline::PfNet toPfNet(const xcvsim::Graph& g, const Pin& src,
                        std::span<const Pin> sinks) {
  baseline::PfNet net;
  net.source = g.nodeAt(src.rc, src.wire);
  for (const Pin& p : sinks) net.sinks.push_back(g.nodeAt(p.rc, p.wire));
  return net;
}

}  // namespace

std::vector<baseline::PfNet> toPfNets(const xcvsim::Graph& g,
                                      std::span<const P2P> nets) {
  std::vector<baseline::PfNet> out;
  out.reserve(nets.size());
  for (const P2P& n : nets) {
    out.push_back(toPfNet(g, n.src, std::span<const Pin>(&n.sink, 1)));
  }
  return out;
}

std::vector<baseline::PfNet> toPfNets(const xcvsim::Graph& g,
                                      std::span<const FanoutNet> nets) {
  std::vector<baseline::PfNet> out;
  out.reserve(nets.size());
  for (const FanoutNet& n : nets) {
    out.push_back(toPfNet(g, n.src, n.sinks));
  }
  return out;
}

}  // namespace workload
