// Seeded session streams: the on-line request mix jrload replays.
//
// The one-shot generators (generators.h) produce a static design; a
// run-time routing service is driven by *streams* — many concurrent
// clients routing, reconnecting, and tearing down connections over
// time, the on-line framing of the dynamic-reconfiguration papers. A
// SessionStream models `sessions` independent clients, each owning a
// fixed set of connection slots placed on disjoint pins at
// construction (one shared exclusion set, like makeMixed, so sessions
// never fight over a pin — contention, when it happens, is for routing
// wires, which is the interesting kind). Each slot runs a tiny state
// machine: unrouted slots get routed (p2p, fanout, or bus, per the
// slot's kind); routed slots are either torn down (unroute) or, for
// p2p slots, reconnected to their alternate sink (port reconnect —
// unroute + route under the same source).
//
// The stream is a pure function of (device, options): next() draws only
// from the stream's own Rng, never the clock, so the full event
// sequence is byte-identical for a fixed seed (the determinism test
// hashes describe() over thousands of events). Event order interleaves
// sessions round-robin; per-session order is what a real client would
// have issued, so a driver that preserves per-slot ordering replays a
// semantically consistent workload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/device.h"
#include "common/rng.h"
#include "core/endpoint.h"

namespace workload {

using jroute::Pin;
using xcvsim::DeviceSpec;
using xcvsim::Rng;

enum class StreamOp : uint8_t {
  kP2P,        // route srcs[0] -> sinks[0]
  kFanout,     // route srcs[0] -> every sink
  kBus,        // route srcs[i] -> sinks[i]
  kUnroute,    // free the net(s) driven from each src
  kReconnect,  // unroute srcs[0], then route srcs[0] -> sinks[0]
};

const char* streamOpName(StreamOp op);

/// One scripted request from one session. For kUnroute, `srcs` lists
/// every net source to free (a bus slot tears down one net per bit).
struct StreamEvent {
  uint32_t session = 0;
  uint32_t slot = 0;
  StreamOp op = StreamOp::kP2P;
  std::vector<Pin> srcs;
  std::vector<Pin> sinks;
};

struct SessionStreamOptions {
  int sessions = 100;
  int slotsPerSession = 6;
  /// Width of each bus slot (sessions divisible by 4 get one).
  int busWidth = 2;
  /// Sinks per fanout slot.
  int fanout = 3;
  /// Max tile radius from a slot's source to its sinks; small radii
  /// keep routes template-friendly and cross-session wire contention
  /// rare but nonzero.
  int radius = 4;
  uint64_t seed = 1;
};

class SessionStream {
 public:
  SessionStream(const DeviceSpec& dev, SessionStreamOptions opts);

  /// The next event of the stream (deterministic; sessions round-robin).
  StreamEvent next();
  /// Convenience: the next `n` events.
  std::vector<StreamEvent> take(size_t n);

  size_t produced() const { return produced_; }
  int sessions() const { return opts_.sessions; }

  /// Compact stable rendering ("s12/3 fanout (4,5,w17)->[(5,6,w3)...]")
  /// — the byte-identical determinism test compares these.
  static std::string describe(const StreamEvent& e);

 private:
  struct Slot {
    StreamOp kind = StreamOp::kP2P;  // kP2P, kFanout, or kBus
    std::vector<Pin> srcs;
    /// For p2p: two candidate sinks, `sinkSel` picks the live one and
    /// reconnect flips it. For fanout/bus: the full sink set.
    std::vector<Pin> sinks;
    bool routed = false;
    uint32_t sinkSel = 0;
  };

  SessionStreamOptions opts_;
  Rng rng_;
  std::vector<std::vector<Slot>> sessions_;
  size_t produced_ = 0;
};

}  // namespace workload
