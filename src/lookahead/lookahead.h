// Router lookahead: a precomputed, admissible remaining-cost map.
//
// E3 and E13 show the structural weakness of the manhattan heuristic: a
// per-tile rate is either loose (admissible but breadth-blind at long
// range) or a lie (the default 2x weighting). VTR's router_lookahead_map
// points at the fix — precompute, per device, what the segment hierarchy
// can actually deliver over a given displacement, and use *that* as the
// heuristic.
//
// The map exploits the fabric's periodic pattern structure. Every RRG
// edge u -> v is projected onto an abstract move
//
//     (class(u), class(v), pos(v) - pos(u))  at cost  kPipDelayPs + delay(v)
//
// where class is the node's NodeKind and pos its heuristic position
// (Graph::positionOf). Because the switch patterns are modular in the
// tile coordinates, the distinct moves number in the hundreds, not the
// millions: the projection collapses every translated copy of a pattern
// into one move. A single backward multi-source Dijkstra over the state
// space (class, drow, dcol) — displacement measured to the goal — then
// yields, for every wire class at every displacement, the cheapest cost
// any abstract move sequence can achieve. Every *real* path projects onto
// an equal-cost abstract path ending exactly at displacement (0,0), so
// the table is a consistent, admissible lower bound on true remaining
// route cost, independent of the goal's class and of any search-time
// restrictions (obstacles, claim filters) which only raise real costs.
//
// The chip-wide clock classes (Gclk, GclkPad) are "hubs": their heuristic
// position is a meaningless anchor, and projecting their edges positionally
// would add one distinct move per tile (the dominant cost of the whole
// build). Each hub class instead collapses to a single position-less state
// with a scalar remaining-cost bound — a quotient of the abstract graph,
// so estimates only get looser (never inadmissible) on clock paths.
//
// Two tables are built: kFull (all moves) and kNoLongs (moves into long
// lines removed), mirroring RouterOptions::useLongLines and the skew
// balancer's singles-only searches; both stay admissible for their
// restricted search. Entries are quantized to uint16 with a per-table
// quantum, rounding *down* so quantization preserves admissibility. The
// whole structure is immutable after construction and shared read-only
// across engine threads via the per-device process cache (forGraph).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "rrg/graph.h"

namespace jrla {

using xcvsim::DelayPs;
using xcvsim::Graph;
using xcvsim::NodeId;

class Lookahead {
 public:
  /// Which wire set the estimate may assume, mirroring the maze filters.
  enum class Mode : uint8_t { kFull, kNoLongs };

  /// Sentinel for "no abstract path exists": since every real path
  /// projects onto an abstract one, the real search cannot succeed either
  /// and the node can be pruned outright.
  static constexpr DelayPs kUnreachable = DelayPs{1} << 40;

  /// Build both tables for a graph (one edge sweep + two Dijkstras).
  explicit Lookahead(const Graph& g);

  /// Admissible lower bound on the remaining route cost from `from` to
  /// `to`. Returns kUnreachable when provably no path exists. The global
  /// clock classes (Gclk, GclkPad) are chip-wide: as sources they use a
  /// position-less scalar bound, as goals the estimate degrades to 0.
  DelayPs estimate(NodeId from, NodeId to, Mode mode) const;

  struct Stats {
    double buildMs = 0;       ///< wall time of the constructor
    size_t moveCount = 0;     ///< deduplicated abstract moves
    size_t states = 0;        ///< (class, drow, dcol) states per table
    size_t tableBytes = 0;    ///< both tables, quantized
    DelayPs quantumFull = 1;  ///< ps per stored unit, kFull table
    DelayPs quantumNoLongs = 1;
    DelayPs maxFiniteFull = 0;  ///< largest finite estimate, kFull
    DelayPs maxFiniteNoLongs = 0;
    int rowSpan = 0;  ///< displacement domain extent (rows)
    int colSpan = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Human/machine renderings for `jrsh lookahead [json]`.
  std::string statsText() const;
  std::string statsJson() const;

  /// Process-wide per-device cache: built once on first request, shared
  /// read-only afterwards. The graph only keys by device name; any graph
  /// of the same device yields the same table.
  static const Lookahead& forGraph(const Graph& g);

 private:
  struct Table {
    std::vector<uint16_t> cost;  ///< 0xFFFF = unreachable
    DelayPs quantum = 1;
    /// Position-less remaining-cost bound per hub (chip-wide) class.
    std::array<DelayPs, 16> hubDist{};
  };

  size_t stateIndex(int classIdx, int dRow, int dCol) const {
    return (static_cast<size_t>(classIdx) * static_cast<size_t>(rowSpan_) +
            static_cast<size_t>(dRow - minDRow_)) *
               static_cast<size_t>(colSpan_) +
           static_cast<size_t>(dCol - minDCol_);
  }
  bool inDomain(int dRow, int dCol) const {
    return dRow >= minDRow_ && dRow <= maxDRow_ && dCol >= minDCol_ &&
           dCol <= maxDCol_;
  }

  const Graph* graph_;
  std::string device_;
  // Per-node class + heuristic position, flattened for O(1) estimates.
  std::vector<uint8_t> nodeClass_;
  std::vector<int16_t> posRow_;
  std::vector<int16_t> posCol_;
  int minDRow_ = 0, maxDRow_ = 0, minDCol_ = 0, maxDCol_ = 0;
  int rowSpan_ = 0, colSpan_ = 0;
  Table full_;
  Table noLongs_;
  Stats stats_;
};

}  // namespace jrla
