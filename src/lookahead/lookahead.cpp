#include "lookahead/lookahead.h"

#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <utility>

#include "common/sync.h"
#include "fabric/timing.h"
#include "obs/metrics.h"

namespace jrla {

using xcvsim::kPipDelayPs;
using xcvsim::NodeKind;
using xcvsim::RowCol;

namespace {

constexpr int kNumClasses = 16;  // NodeKind has 15 values; round up
constexpr uint16_t kUnreachableStored = 0xFFFF;
constexpr DelayPs kInf = Lookahead::kUnreachable;

/// One translation-invariant abstract move: any real edge whose endpoint
/// classes and position delta match is an instance of it. The cost is a
/// function of the target class alone (kPipDelayPs + nodeDelay), so
/// deduplication needs no min-merge.
struct Move {
  uint8_t fromClass;
  uint8_t toClass;
  int16_t dRow;
  int16_t dCol;
  DelayPs cost;
};

bool isLongClass(uint8_t c) {
  return c == static_cast<uint8_t>(NodeKind::LongH) ||
         c == static_cast<uint8_t>(NodeKind::LongV);
}

/// Chip-wide classes with no meaningful heuristic position. Collapsed to
/// one position-less state each (see the header comment).
bool isHubClass(uint8_t c) {
  return c == static_cast<uint8_t>(NodeKind::Gclk) ||
         c == static_cast<uint8_t>(NodeKind::GclkPad);
}

}  // namespace

Lookahead::Lookahead(const Graph& g) : graph_(&g) {
  const auto t0 = std::chrono::steady_clock::now();
  device_ = std::string(g.device().name);
  const NodeId n = g.numNodes();

  // Per-node class and heuristic position, kept for O(1) estimates.
  std::vector<uint8_t> cls(n);
  std::vector<int16_t> posRow(n), posCol(n);
  int minPosRow = 0, maxPosRow = 0, minPosCol = 0, maxPosCol = 0;
  for (NodeId i = 0; i < n; ++i) {
    cls[i] = static_cast<uint8_t>(g.info(i).kind);
    const RowCol p = g.positionOf(i);
    posRow[i] = p.row;
    posCol[i] = p.col;
    if (i == 0 || p.row < minPosRow) minPosRow = p.row;
    if (i == 0 || p.row > maxPosRow) maxPosRow = p.row;
    if (i == 0 || p.col < minPosCol) minPosCol = p.col;
    if (i == 0 || p.col > maxPosCol) maxPosCol = p.col;
  }

  // The displacement domain covers every (goal - node) position pair, so
  // any real state the search can reach has an in-domain table entry.
  minDRow_ = minPosRow - maxPosRow;
  maxDRow_ = maxPosRow - minPosRow;
  minDCol_ = minPosCol - maxPosCol;
  maxDCol_ = maxPosCol - minPosCol;
  rowSpan_ = maxDRow_ - minDRow_ + 1;
  colSpan_ = maxDCol_ - minDCol_ + 1;

  // Project every edge onto its abstract move; the periodic patterns
  // collapse the millions of edges into a few hundred distinct moves.
  // Deduplication uses a flat byte map — one test-and-set per edge — since
  // a hash insert per edge is measurable on the large devices. Moves with
  // a hub endpoint drop their delta (the hub has no position) and go to a
  // separate list handled outside the Dijkstra proper.
  std::vector<Move> moves;
  std::vector<Move> hubMoves;
  const size_t dedupSpan =
      static_cast<size_t>(rowSpan_) * static_cast<size_t>(colSpan_);
  std::vector<uint8_t> seenMove(static_cast<size_t>(kNumClasses) *
                                kNumClasses * dedupSpan);
  for (NodeId u = 0; u < n; ++u) {
    for (const xcvsim::Edge& e : g.out(u)) {
      const NodeId v = e.to;
      const bool hub = isHubClass(cls[u]) || isHubClass(cls[v]);
      const int dr = hub ? 0 : posRow[v] - posRow[u];
      const int dc = hub ? 0 : posCol[v] - posCol[u];
      const size_t key =
          (static_cast<size_t>(cls[u]) * kNumClasses + cls[v]) * dedupSpan +
          static_cast<size_t>(dr - minDRow_) * static_cast<size_t>(colSpan_) +
          static_cast<size_t>(dc - minDCol_);
      if (seenMove[key]) continue;
      seenMove[key] = 1;
      (hub ? hubMoves : moves)
          .push_back({cls[u], cls[v], static_cast<int16_t>(dr),
                      static_cast<int16_t>(dc),
                      kPipDelayPs + g.nodeDelay(v)});
    }
  }
  seenMove.clear();
  seenMove.shrink_to_fit();

  const size_t states = static_cast<size_t>(kNumClasses) *
                        static_cast<size_t>(rowSpan_) *
                        static_cast<size_t>(colSpan_);

  // One backward multi-source Dijkstra per table. Targets are every
  // class at displacement (0,0) — a real path's projection lands there
  // exactly — so the result is goal-class-independent.
  const auto buildTable = [&](bool withLongs, Table& out,
                              DelayPs& maxFiniteOut) {
    std::vector<std::vector<Move>> byToClass(kNumClasses);
    for (const Move& m : moves) {
      if (!withLongs && isLongClass(m.toClass)) continue;
      byToClass[m.toClass].push_back(m);
    }
    // All edge costs share a large common step (they are delay sums), so
    // a Dial bucket queue (monotone scan, O(1) push/pop) replaces the
    // binary heap. The gcd includes hub-move costs: hub relaxations feed
    // sums of move costs back into the buckets.
    DelayPs step = 0;
    for (const Move& m : moves) step = std::gcd(step, m.cost);
    for (const Move& m : hubMoves) step = std::gcd(step, m.cost);
    if (step <= 0) step = 1;

    std::vector<DelayPs> dist(states, kInf);
    std::vector<std::vector<uint32_t>> buckets(1);
    const auto push = [&](size_t s, DelayPs d) {
      const size_t b = static_cast<size_t>(d / step);
      if (b >= buckets.size()) buckets.resize(b + 1);
      buckets[b].push_back(static_cast<uint32_t>(s));
    };
    for (int c = 0; c < kNumClasses; ++c) {
      const size_t s = stateIndex(c, 0, 0);
      dist[s] = 0;
      push(s, 0);
    }
    const size_t perClass = dedupSpan;
    const auto drain = [&] {
      for (size_t b = 0; b < buckets.size(); ++b) {
        // buckets grows during iteration; index, don't iterate by range.
        for (size_t bi = 0; bi < buckets[b].size(); ++bi) {
          const uint32_t s = buckets[b][bi];
          const DelayPs d = static_cast<DelayPs>(b) * step;
          if (d > dist[s]) continue;  // stale entry, already finalized
          const size_t classIdx = s / perClass;
          const size_t rem = s % perClass;
          const size_t cs = static_cast<size_t>(colSpan_);
          const int dRow = minDRow_ + static_cast<int>(rem / cs);
          const int dCol = minDCol_ + static_cast<int>(rem % cs);
          for (const Move& m : byToClass[classIdx]) {
            // Backward relaxation: before taking move m the signal sat
            // at class m.fromClass, one move-delta farther from goal.
            const int pr = dRow + m.dRow;
            const int pc = dCol + m.dCol;
            if (!inDomain(pr, pc)) continue;
            const size_t p = stateIndex(m.fromClass, pr, pc);
            const DelayPs nd = d + m.cost;
            if (nd < dist[p]) {
              dist[p] = nd;
              push(p, nd);
            }
          }
        }
        buckets[b].clear();
        buckets[b].shrink_to_fit();
      }
    };
    drain();

    // Hub pass. A hub reaches (and is reached from) every position, so
    // its remaining cost is a scalar: min over its outgoing moves of
    // move cost + the cheapest state of the landing class — and landing
    // anywhere includes displacement (0,0), which is 0 for every
    // non-hub class. Then states that can step INTO a hub relax against
    // hubDist + cost at every displacement; if that lowers anything the
    // Dijkstra re-drains so the improvement propagates. (On the Virtex
    // fabric nothing drives the clock hubs, so the loop runs once.)
    out.hubDist.fill(kInf);
    for (int pass = 0; pass < 4; ++pass) {
      for (int it = 0; it < 2; ++it) {  // hub->hub chains (pad -> gclk)
        for (const Move& m : hubMoves) {
          if (!isHubClass(m.fromClass)) continue;
          const DelayPs land = isHubClass(m.toClass)
                                   ? out.hubDist[m.toClass]
                                   : 0;  // dist at (0,0) is 0
          if (land >= kInf) continue;
          const DelayPs nd = land + m.cost;
          if (nd < out.hubDist[m.fromClass]) out.hubDist[m.fromClass] = nd;
        }
      }
      bool lowered = false;
      for (const Move& m : hubMoves) {
        if (isHubClass(m.fromClass) || !isHubClass(m.toClass)) continue;
        if (out.hubDist[m.toClass] >= kInf) continue;
        const DelayPs nd = out.hubDist[m.toClass] + m.cost;
        for (size_t i = 0; i < perClass; ++i) {
          const size_t s =
              static_cast<size_t>(m.fromClass) * perClass + i;
          if (nd < dist[s]) {
            dist[s] = nd;
            push(s, nd);
            lowered = true;
          }
        }
      }
      if (!lowered) break;
      drain();
    }

    DelayPs maxFinite = 0;
    for (const DelayPs d : dist) {
      if (d < kInf && d > maxFinite) maxFinite = d;
    }
    // Quantize, rounding down: stored * quantum <= dist keeps the table
    // admissible; the quantum keeps the largest finite value in 16 bits.
    out.quantum = maxFinite > 0 ? (maxFinite + 65533) / 65534 : 1;
    out.cost.resize(states);
    for (size_t i = 0; i < states; ++i) {
      out.cost[i] = dist[i] >= kInf
                        ? kUnreachableStored
                        : static_cast<uint16_t>(dist[i] / out.quantum);
    }
    maxFiniteOut = maxFinite;
  };

  // The two tables are independent; overlap them on large devices.
  auto noLongsDone = std::async(std::launch::async, [&] {
    buildTable(/*withLongs=*/false, noLongs_, stats_.maxFiniteNoLongs);
  });
  buildTable(/*withLongs=*/true, full_, stats_.maxFiniteFull);
  noLongsDone.get();

  nodeClass_ = std::move(cls);
  posRow_ = std::move(posRow);
  posCol_ = std::move(posCol);

  const auto t1 = std::chrono::steady_clock::now();
  stats_.buildMs = static_cast<double>(
                       std::chrono::duration_cast<std::chrono::microseconds>(
                           t1 - t0)
                           .count()) /
                   1e3;
  stats_.moveCount = moves.size() + hubMoves.size();
  stats_.states = states;
  stats_.tableBytes = (full_.cost.size() + noLongs_.cost.size()) *
                          sizeof(uint16_t) +
                      nodeClass_.size() * sizeof(uint8_t) +
                      (posRow_.size() + posCol_.size()) * sizeof(int16_t);
  stats_.quantumFull = full_.quantum;
  stats_.quantumNoLongs = noLongs_.quantum;
  stats_.rowSpan = rowSpan_;
  stats_.colSpan = colSpan_;

  jrobs::registry().counter("router.lookahead.builds").add();
  jrobs::registry()
      .histogram("router.lookahead.build_ms")
      .record(static_cast<uint64_t>(stats_.buildMs));
}

DelayPs Lookahead::estimate(NodeId from, NodeId to, Mode mode) const {
  const Table& t = mode == Mode::kFull ? full_ : noLongs_;
  // A hub goal sits everywhere at once: no positional bound applies.
  if (isHubClass(nodeClass_[to])) return 0;
  if (isHubClass(nodeClass_[from])) return t.hubDist[nodeClass_[from]];
  const int dRow = posRow_[to] - posRow_[from];
  const int dCol = posCol_[to] - posCol_[from];
  if (!inDomain(dRow, dCol)) return 0;  // defensive; 0 stays admissible
  const uint16_t q = t.cost[stateIndex(nodeClass_[from], dRow, dCol)];
  if (q == kUnreachableStored) return kUnreachable;
  return static_cast<DelayPs>(q) * t.quantum;
}

std::string Lookahead::statsText() const {
  std::ostringstream os;
  os << "lookahead " << device_ << ": " << stats_.moveCount
     << " abstract moves, " << stats_.states << " states ("
     << stats_.rowSpan << "x" << stats_.colSpan
     << " displacements), built in " << stats_.buildMs << " ms, "
     << stats_.tableBytes / 1024 << " KiB\n"
     << "  full:     quantum " << stats_.quantumFull << " ps, max finite "
     << stats_.maxFiniteFull << " ps\n"
     << "  no-longs: quantum " << stats_.quantumNoLongs << " ps, max finite "
     << stats_.maxFiniteNoLongs << " ps\n";
  return os.str();
}

std::string Lookahead::statsJson() const {
  std::ostringstream os;
  os << "{\"device\":\"" << device_ << "\",\"moves\":" << stats_.moveCount
     << ",\"states\":" << stats_.states << ",\"row_span\":" << stats_.rowSpan
     << ",\"col_span\":" << stats_.colSpan
     << ",\"build_ms\":" << stats_.buildMs
     << ",\"table_bytes\":" << stats_.tableBytes
     << ",\"quantum_full_ps\":" << stats_.quantumFull
     << ",\"quantum_no_longs_ps\":" << stats_.quantumNoLongs
     << ",\"max_finite_full_ps\":" << stats_.maxFiniteFull
     << ",\"max_finite_no_longs_ps\":" << stats_.maxFiniteNoLongs << "}";
  return os.str();
}

const Lookahead& Lookahead::forGraph(const Graph& g) {
  // Leaked on purpose: engine threads may consult the table during static
  // destruction. Keyed by device name — the table depends only on the
  // architecture, not on the particular Graph instance.
  static jrsync::Mutex* mu = new jrsync::Mutex("lookahead.cache");
  static std::map<std::string, std::unique_ptr<Lookahead>>* cache =
      new std::map<std::string, std::unique_ptr<Lookahead>>;
  const std::string key(g.device().name);
  jrsync::MutexLock lk(*mu);
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, std::make_unique<Lookahead>(g)).first;
  }
  return *it->second;
}

}  // namespace jrla
