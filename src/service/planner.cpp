#include "service/planner.h"

#include <algorithm>

#include "arch/wires.h"
#include "core/router.h"
#include "fabric/trace.h"
#include "lookahead/lookahead.h"
#include "router/path_engine.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/template_engine.h"
#include "router/template_lib.h"

namespace jrsvc {

using jroute::EndPoint;
using jroute::Pin;
using xcvsim::kInvalidNet;
using xcvsim::kInvalidNode;
using xcvsim::manhattan;
using xcvsim::TemplateValue;
using xcvsim::WireKind;
using xcvsim::wireKind;

namespace {

constexpr int kMaxClaimRetries = 4;

struct PlannerMetrics {
  jrobs::Counter& claimConflicts =
      jrobs::registry().counter("service.plan.claim_conflicts");
  jrobs::Counter& shapeReuseHits =
      jrobs::registry().counter("service.plan.shape_reuse_hits");
};

PlannerMetrics& plannerMetrics() {
  static PlannerMetrics m;
  return m;
}

std::string pinName(const xcvsim::Graph& g, const Pin& p) {
  const NodeId n = g.nodeAt(p.rc, p.wire);
  if (n != kInvalidNode) return g.nodeName(n);
  return "R" + std::to_string(p.rc.row) + "C" + std::to_string(p.rc.col) +
         ".wire" + std::to_string(p.wire);
}

/// A lost claim race at node `n`: count it, and locate it on the
/// conflict heatmap (jrsh `heatmap conflicts`).
void claimConflictAt(const xcvsim::Graph& g, NodeId n) {
  plannerMetrics().claimConflicts.add();
  const xcvsim::RowCol rc = g.positionOf(n);
  jrobs::claimConflictGrid().add(rc.row, rc.col);
}

}  // namespace

bool Planner::CertFilter::blocked(NodeId n) const {
  return planner->mine_.count(n) != 0 ||
         !planner->certFp_->allowsNode(planner->fabric_->graph(), n);
}

Planner::Planner(const xcvsim::Fabric& fabric, ClaimMap& claims,
                 jroute::RouterOptions opts)
    : fabric_(&fabric),
      claims_(&claims),
      view_(claims),
      opts_(opts),
      maze_(fabric.graph()) {
  indirect_.target = &view_;
  certFilter_.planner = this;
  opts_.claimFilter = &indirect_;
  // Same per-device table as the serial router: immutable, shared across
  // every planner thread.
  if (opts_.useLookahead && opts_.lookahead == nullptr) {
    opts_.lookahead = &jrla::Lookahead::forGraph(fabric.graph());
  }
}

Plan Planner::planCertified(uint32_t owner, const Request& req,
                            const jrplan::Footprint& footprint) {
  certified_ = true;
  certFp_ = &footprint;
  mine_.clear();
  indirect_.target = &certFilter_;
  Plan p = plan(owner, req);
  indirect_.target = &view_;
  certified_ = false;
  certFp_ = nullptr;
  mine_.clear();
  return p;
}

bool Planner::claimNode(NodeId n, uint32_t owner) {
  if (certified_) {
    mine_.insert(n);
    return true;
  }
  return claims_->claim(n, owner);
}

Plan Planner::plan(uint32_t owner, const Request& req) {
  JR_TRACE_SCOPE("service", "plan");
  Plan plan;
  const auto fail = [&](Reject reason, std::string detail,
                        bool authoritative) -> Plan& {
    plan.found = false;
    plan.reason = reason;
    plan.detail = std::move(detail);
    plan.authoritative = authoritative;
    return plan;
  };

  if (req.op == Op::kUnroute) {
    // Unroutes mutate an existing net; they are always serialized.
    return fail(Reject::kNone, "unroute is serial-only", false);
  }
  if (req.sources.empty() || req.sinks.empty()) {
    return fail(Reject::kBadArgument, "no endpoints", true);
  }

  if (req.op == Op::kRouteBus) {
    if (req.sources.size() != req.sinks.size()) {
      return fail(Reject::kBadArgument, "bus width mismatch", true);
    }
    // Bus regularity (same policy as the serial router): bit 0 is planned
    // first and exports its template shape; later bits of this request try
    // that shape before consulting the library or the maze. All bits of
    // one bus request run on this planner, so the hand-off is sequential
    // even inside the batch's parallel phase.
    std::vector<TemplateValue> shape, nextShape;
    for (size_t i = 0; i < req.sources.size(); ++i) {
      const auto sinkPins = req.sinks[i].resolve();
      if (!planNet(owner, plan, req.sources[i], sinkPins,
                   shape.empty() ? nullptr : &shape, &nextShape)) {
        return plan;
      }
      shape = nextShape;  // maze-shaped bits clear the hint, like the router
    }
  } else {
    // P2P and fanout: one source, every sink pin on the same net.
    std::vector<Pin> sinkPins;
    for (const EndPoint& ep : req.sinks) {
      for (const Pin& p : ep.resolve()) sinkPins.push_back(p);
    }
    if (!planNet(owner, plan, req.sources.front(), sinkPins)) return plan;
  }
  plan.found = true;
  return plan;
}

bool Planner::planNet(uint32_t owner, Plan& plan, const EndPoint& source,
                      const std::vector<Pin>& sinkPins,
                      const std::vector<TemplateValue>* hint,
                      std::vector<TemplateValue>* shapeOut) {
  const xcvsim::Graph& g = fabric_->graph();
  const auto fail = [&](Reject reason, std::string detail,
                        bool authoritative) {
    plan.reason = reason;
    plan.detail = std::move(detail);
    plan.authoritative = authoritative;
    return false;
  };

  const auto srcPins = source.resolve();
  if (srcPins.empty()) return fail(Reject::kBadArgument, "source has no pins", true);
  if (sinkPins.empty()) return fail(Reject::kBadArgument, "no sink pins", true);
  const Pin srcPin = srcPins.front();
  const NodeId srcNode = g.nodeAt(srcPin.rc, srcPin.wire);
  if (srcNode == kInvalidNode) {
    return fail(Reject::kBadArgument, "no such wire: " + pinName(g, srcPin),
                true);
  }

  PlannedNet net;
  net.srcPin = srcPin;
  net.srcNode = srcNode;
  std::vector<NodeId> treeNodes{srcNode};
  bool fresh = true;
  if (fabric_->isUsed(srcNode)) {
    // Extending a committed net: seed the search with its whole tree.
    // (Session ownership was already checked by the engine.)
    net.existing = fabric_->netOf(srcNode);
    for (const xcvsim::TraceHop& hop : traceForward(*fabric_, srcNode)) {
      treeNodes.push_back(hop.to);
    }
    fresh = treeNodes.size() == 1;
  } else {
    if (!jroute::canDriveNet(g, srcNode)) {
      return fail(Reject::kBadArgument,
                  "wire " + g.nodeName(srcNode) + " cannot drive a net", true);
    }
    if (!claimNode(srcNode, owner)) {
      // Another in-flight request wants the same source; let the
      // serialized path decide who wins.
      claimConflictAt(g, srcNode);
      plan.contendedNode = srcNode;
      return fail(Reject::kContention,
                  "source " + g.nodeName(srcNode) + " claimed concurrently",
                  false);
    }
    plan.claimed.push_back(srcNode);
  }

  // Nearest sink first, reusing the growing tree — same policy as the
  // serial router. The bus shape hint applies to every sink; only the
  // first sink's chain is exported as the next bit's shape.
  std::vector<Pin> ordered = sinkPins;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const Pin& a, const Pin& b) {
                     return manhattan(srcPin.rc, a.rc) <
                            manhattan(srcPin.rc, b.rc);
                   });
  if (shapeOut) shapeOut->clear();
  bool first = fresh;
  for (const Pin& sp : ordered) {
    if (!planSink(owner, plan, net, srcPin, sp, treeNodes, first, hint,
                  first ? shapeOut : nullptr)) {
      return false;
    }
    first = false;
  }
  plan.nets.push_back(std::move(net));
  return true;
}

bool Planner::planSink(uint32_t owner, Plan& plan, PlannedNet& net,
                       const Pin& srcPin, const Pin& sinkPin,
                       std::vector<NodeId>& treeNodes, bool tryTemplates,
                       const std::vector<TemplateValue>* hint,
                       std::vector<TemplateValue>* shapeOut) {
  const xcvsim::Graph& g = fabric_->graph();
  const auto fail = [&](Reject reason, std::string detail,
                        bool authoritative) {
    plan.reason = reason;
    plan.detail = std::move(detail);
    plan.authoritative = authoritative;
    return false;
  };

  const NodeId sinkNode = g.nodeAt(sinkPin.rc, sinkPin.wire);
  if (sinkNode == kInvalidNode) {
    return fail(Reject::kBadArgument, "no such wire: " + pinName(g, sinkPin),
                true);
  }
  if (fabric_->isUsed(sinkNode)) {
    if (net.existing != kInvalidNet && fabric_->netOf(sinkNode) == net.existing) {
      return true;  // already connected — idempotent reuse
    }
    plan.contendedNode = sinkNode;
    return fail(Reject::kContention,
                "sink " + g.nodeName(sinkNode) + " is in use by another net",
                true);
  }
  if (!certified_) {
    // No concurrent claimants exist inside a certified wave, and the
    // sink's containment is the filter's job, so this is
    // arbitration-only.
    const uint32_t sinkOwner = claims_->ownerOf(sinkNode);
    if (sinkOwner != 0 && sinkOwner != owner) {
      claimConflictAt(g, sinkNode);
      plan.contendedNode = sinkNode;
      return fail(Reject::kContention,
                  "sink " + g.nodeName(sinkNode) + " claimed concurrently",
                  false);
    }
  } else if (!certFp_->allowsNode(g, sinkNode)) {
    // The extractor under-covered this sink (it flags such footprints
    // unsound, so this is belt-and-braces): fail non-authoritatively and
    // let arbitration handle the request.
    plan.contendedNode = sinkNode;
    return fail(Reject::kContention,
                "sink " + g.nodeName(sinkNode) + " outside plan footprint",
                false);
  }

  // Selected once per sink (the choice is claim-independent); claim-race
  // retries below re-search under the same strategy.
  jroute::StrategyChoice choice;
  if (tryTemplates) {
    choice = jroute::selectStrategy(g, net.srcNode, sinkNode, opts_);
    switch (choice.strategy) {
      case jroute::Strategy::kTemplate: ++plan.selTemplate; break;
      case jroute::Strategy::kLongLine: ++plan.selLongLine; break;
      case jroute::Strategy::kMaze: ++plan.selMaze; break;
    }
  }

  const NetId searchNet =
      net.existing != kInvalidNet ? net.existing : kInvalidNet;
  for (int attempt = 0; attempt < kMaxClaimRetries; ++attempt) {
    std::vector<EdgeId> chain;
    bool found = false;
    bool viaMaze = false;
    // Bus regularity: try the previous bit's shape first.
    if (hint && !hint->empty()) {
      const jroute::TemplateResult res =
          followTemplate(*fabric_, net.srcNode, *hint, sinkNode,
                         xcvsim::kInvalidLocalWire, opts_);
      plan.visits += res.visited;
      if (res.found) {
        plannerMetrics().shapeReuseHits.add();
        ++plan.shapeReuseHits;
        chain = res.edges;
        found = true;
      }
    }
    if (!found && tryTemplates &&
        choice.strategy != jroute::Strategy::kMaze) {
      const bool srcIsOutput = wireKind(srcPin.wire) == WireKind::SliceOut;
      const bool dstIsInput = wireKind(sinkPin.wire) == WireKind::ClbIn;
      const bool longLine = choice.strategy == jroute::Strategy::kLongLine;
      const auto tmpls =
          longLine ? jroute::longTemplatesFor(fabric_->graph().device(),
                                              srcPin.rc, sinkPin.rc,
                                              srcIsOutput, dstIsInput)
                   : jroute::templatesFor(fabric_->graph().device(),
                                          srcPin.rc, sinkPin.rc, srcIsOutput,
                                          dstIsInput);
      for (const auto& tmpl : tmpls) {
        const jroute::TemplateResult res =
            followTemplate(*fabric_, net.srcNode, tmpl, sinkNode,
                           xcvsim::kInvalidLocalWire, opts_);
        plan.visits += res.visited;
        if (res.found) {
          ++plan.templateHits;
          if (longLine) ++plan.longTemplateHits;
          chain = res.edges;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      const jroute::SearchResult res =
          maze_.route(*fabric_, searchNet, treeNodes, sinkNode, opts_);
      ++plan.mazeRuns;
      plan.visits += res.visited;
      if (!res.found) {
        // Possibly starved by concurrent claims; the serialized retry is
        // authoritative for true unroutability.
        return fail(Reject::kUnroutable,
                    "no path: " + pinName(g, srcPin) + " -> " +
                        pinName(g, sinkPin),
                    false);
      }
      chain = res.edges;
      viaMaze = true;
    }
    if (!claimChain(owner, plan, chain)) {
      ++plan.retries;
      continue;  // lost a race; contested nodes are now blocked, re-search
    }
    if (shapeOut) {
      // Like the serial router: template-shaped routes make good hints
      // for the next bus bit; meandering maze paths are not propagated.
      shapeOut->clear();
      if (!viaMaze) {
        for (const EdgeId e : chain) {
          shapeOut->push_back(g.templateValueOf(g.edge(e).to, g.edge(e)));
        }
      }
    }
    for (const EdgeId e : chain) treeNodes.push_back(g.edge(e).to);
    net.edges.insert(net.edges.end(), chain.begin(), chain.end());
    return true;
  }
  return fail(Reject::kContention, "claim races exhausted", false);
}

bool Planner::claimChain(uint32_t owner, Plan& plan,
                         std::span<const EdgeId> chain) {
  const xcvsim::Graph& g = fabric_->graph();
  std::vector<NodeId> acquired;
  acquired.reserve(chain.size());
  if (certified_) {
    // Arbitration skipped: the footprint filter already confined the
    // search, so just record the nodes (for the paranoid cross-check and
    // second-driver prevention).
    for (const EdgeId e : chain) {
      const NodeId v = g.edge(e).to;
      if (mine_.insert(v).second) acquired.push_back(v);
    }
    plan.claimed.insert(plan.claimed.end(), acquired.begin(), acquired.end());
    return true;
  }
  for (const EdgeId e : chain) {
    const NodeId v = g.edge(e).to;
    if (claims_->ownerOf(v) == owner) continue;  // already ours (tree node)
    if (!claims_->claim(v, owner)) {
      claimConflictAt(g, v);
      plan.contendedNode = v;
      claims_->releaseAll(acquired, owner);
      return false;
    }
    acquired.push_back(v);
  }
  plan.claimed.insert(plan.claimed.end(), acquired.begin(), acquired.end());
  return true;
}

}  // namespace jrsvc
