// Per-node tentative ownership flags for concurrent route planning.
//
// During the batched engine's parallel phase the fabric is frozen
// (read-only): workers plan edge chains against it and arbitrate wire
// usage among themselves through this map. A node is claimed with a
// compare-and-swap, so two planners can never hold the same wire; a
// planner that loses the race re-runs its search with the contested node
// blocked (ClaimView plugs into RouterOptions::claimFilter). After the
// engine commits a plan into the fabric the claims are released — the
// fabric's own net bookkeeping takes over as the source of truth.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "plan/footprint.h"
#include "router/options.h"
#include "rrg/graph.h"

namespace jrsvc {

using xcvsim::NodeId;

/// Owner ids are request ids + 1; 0 means unclaimed.
class ClaimMap {
 public:
  explicit ClaimMap(size_t numNodes) : owner_(numNodes) {}

  /// Region-sharded layout: slots are permuted so nodes of the same
  /// region-grid cell (the cell jrplan footprints key on) are
  /// contiguous, and each shard is padded to a cache line. Concurrent
  /// planners work bbox-disjoint regions, so their CASes stop false
  /// sharing each other's lines. A pure slot permutation — claim
  /// semantics are identical to the flat layout (the regression test in
  /// plan_test.cpp holds both to the same admitted plans).
  ClaimMap(const xcvsim::Graph& g, const jrplan::RegionGrid& grid) {
    constexpr size_t kShardPad = 16;  // uint32 slots per 64-byte line
    const size_t cells = static_cast<size_t>(grid.numCells());
    std::vector<size_t> shardSize(cells, 0);
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      ++shardSize[static_cast<size_t>(grid.cellOf(g.positionOf(n)))];
    }
    std::vector<size_t> shardBase(cells, 0);
    size_t total = 0;
    for (size_t c = 0; c < cells; ++c) {
      shardBase[c] = total;
      total += (shardSize[c] + kShardPad - 1) / kShardPad * kShardPad;
    }
    slots_.resize(g.numNodes());
    std::vector<size_t> next = shardBase;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      const auto cell = static_cast<size_t>(grid.cellOf(g.positionOf(n)));
      slots_[n] = static_cast<uint32_t>(next[cell]++);
    }
    owner_ = std::vector<std::atomic<uint32_t>>(total);
  }

  /// Claim `n` for `owner`. True when the claim is held by `owner` after
  /// the call (newly acquired or already ours); false when another owner
  /// holds it.
  bool claim(NodeId n, uint32_t owner) {
    uint32_t expected = 0;
    if (owner_[slot(n)].compare_exchange_strong(expected, owner,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
      return true;
    }
    return expected == owner;
  }

  /// Current owner of `n` (0 = unclaimed).
  uint32_t ownerOf(NodeId n) const {
    return owner_[slot(n)].load(std::memory_order_acquire);
  }

  /// Release `n` if held by `owner`.
  void release(NodeId n, uint32_t owner) {
    uint32_t expected = owner;
    owner_[slot(n)].compare_exchange_strong(
        expected, 0, std::memory_order_acq_rel, std::memory_order_acquire);
  }

  void releaseAll(std::span<const NodeId> nodes, uint32_t owner) {
    for (const NodeId n : nodes) release(n, owner);
  }

  bool sharded() const { return !slots_.empty(); }

 private:
  size_t slot(NodeId n) const { return slots_.empty() ? n : slots_[n]; }

  std::vector<std::atomic<uint32_t>> owner_;
  std::vector<uint32_t> slots_;  ///< node → slot permutation; empty = flat
};

/// RouterOptions::claimFilter view: every claimed node is an obstacle,
/// including the requester's own — its already-planned tree nodes enter
/// each search as zero-cost starts, and re-entering them through another
/// PIP would create a second driver.
class ClaimView : public jroute::NodeClaimFilter {
 public:
  explicit ClaimView(const ClaimMap& map) : map_(&map) {}

  bool blocked(NodeId n) const override { return map_->ownerOf(n) != 0; }

 private:
  const ClaimMap* map_;
};

}  // namespace jrsvc
