// Per-node tentative ownership flags for concurrent route planning.
//
// During the batched engine's parallel phase the fabric is frozen
// (read-only): workers plan edge chains against it and arbitrate wire
// usage among themselves through this map. A node is claimed with a
// compare-and-swap, so two planners can never hold the same wire; a
// planner that loses the race re-runs its search with the contested node
// blocked (ClaimView plugs into RouterOptions::claimFilter). After the
// engine commits a plan into the fabric the claims are released — the
// fabric's own net bookkeeping takes over as the source of truth.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "router/options.h"

namespace jrsvc {

using xcvsim::NodeId;

/// Owner ids are request ids + 1; 0 means unclaimed.
class ClaimMap {
 public:
  explicit ClaimMap(size_t numNodes) : owner_(numNodes) {}

  /// Claim `n` for `owner`. True when the claim is held by `owner` after
  /// the call (newly acquired or already ours); false when another owner
  /// holds it.
  bool claim(NodeId n, uint32_t owner) {
    uint32_t expected = 0;
    if (owner_[n].compare_exchange_strong(expected, owner,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      return true;
    }
    return expected == owner;
  }

  /// Current owner of `n` (0 = unclaimed).
  uint32_t ownerOf(NodeId n) const {
    return owner_[n].load(std::memory_order_acquire);
  }

  /// Release `n` if held by `owner`.
  void release(NodeId n, uint32_t owner) {
    uint32_t expected = owner;
    owner_[n].compare_exchange_strong(expected, 0, std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  }

  void releaseAll(std::span<const NodeId> nodes, uint32_t owner) {
    for (const NodeId n : nodes) release(n, owner);
  }

 private:
  std::vector<std::atomic<uint32_t>> owner_;
};

/// RouterOptions::claimFilter view: every claimed node is an obstacle,
/// including the requester's own — its already-planned tree nodes enter
/// each search as zero-cost starts, and re-entering them through another
/// PIP would create a second driver.
class ClaimView : public jroute::NodeClaimFilter {
 public:
  explicit ClaimView(const ClaimMap& map) : map_(&map) {}

  bool blocked(NodeId n) const override { return map_->ownerOf(n) != 0; }

 private:
  const ClaimMap* map_;
};

}  // namespace jrsvc
