// Request/response vocabulary of the routing service.
//
// The paper's API surfaces failures as exceptions (contention, section
// 3.4; unroutable, section 3.1). A service shared by concurrent clients
// cannot let one client's exception unwind another's thread, so every
// submission resolves to a RouteResult: accepted, or rejected with a
// machine-readable reason (contention, unroutable, overloaded, deadline
// expired, not the owner, ...). Rejection is always clean — a rejected
// request leaves the fabric bit-identical to its pre-request state.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/endpoint.h"
#include "obs/spans.h"

namespace jrsvc {

using Clock = std::chrono::steady_clock;

/// What a request asks the engine to do.
enum class Op : uint8_t {
  kRouteP2P,     // sources[0] -> sinks[0]
  kRouteFanout,  // sources[0] -> every sink
  kRouteBus,     // sources[i] -> sinks[i]
  kUnroute,      // free the net driven from sources[0]
};

enum class Outcome : uint8_t { kAccepted, kRejected };

enum class Reject : uint8_t {
  kNone,             // accepted
  kContention,       // a needed wire belongs to another net (section 3.4)
  kUnroutable,       // no unused resource combination exists
  kOverloaded,       // request queue at capacity (backpressure)
  kDeadlineExpired,  // missed its deadline before execution
  kNotOwner,         // session tried to touch a net it does not own
  kBadArgument,      // unresolvable pin/port, width mismatch, ...
  kShutdown,         // service stopped
};

const char* rejectName(Reject r);
const char* opName(Op op);

struct RouteResult {
  Outcome outcome = Outcome::kRejected;
  Reject reason = Reject::kShutdown;
  std::string detail;
  /// Source node of the routed net (for later unroute/trace); only set for
  /// accepted route operations.
  xcvsim::NodeId netSource = xcvsim::kInvalidNode;
  /// True when the request was planned in the parallel phase (as opposed
  /// to the serialized conflict path).
  bool routedInParallel = false;
  /// For kContention rejections: the contested segment, when known (the
  /// flight recorder uses it to attach the owning net's provenance).
  xcvsim::NodeId contendedNode = xcvsim::kInvalidNode;

  bool ok() const { return outcome == Outcome::kAccepted; }
};

/// One queued unit of work. Owned by the queue, then by the engine; the
/// submitting client holds the matching future.
struct Request {
  Op op = Op::kRouteP2P;
  uint64_t id = 0;
  uint64_t sessionId = 0;
  std::vector<jroute::EndPoint> sources;
  std::vector<jroute::EndPoint> sinks;
  /// Absolute deadline; default-constructed time_point means none.
  Clock::time_point deadline{};
  /// Stamped by RoutingService::submit; the engine measures
  /// enqueue-to-resolution latency from it (service.request.latency_us).
  Clock::time_point enqueued{};
  /// Lifecycle stamps (enqueue, batch close, plan, arbitration, commit,
  /// reply); folded into the span aggregator when the request resolves.
  jrobs::RequestSpan span;
  std::promise<RouteResult> promise;

  bool hasDeadline() const { return deadline != Clock::time_point{}; }
  bool isRoute() const { return op != Op::kUnroute; }
};

/// Monotonic service counters (queried with RoutingService::stats()).
struct ServiceStats {
  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t overloaded = 0;  // shed at submit time, never queued
  uint64_t deadlineExpired = 0;
  uint64_t contention = 0;
  uint64_t unroutable = 0;
  uint64_t batches = 0;
  uint64_t parallelPlanned = 0;  // requests committed from the parallel phase
  uint64_t serialRouted = 0;     // requests routed on the serialized path
  uint64_t planFallbacks = 0;    // parallel plans that fell back to serial
  uint64_t claimRetries = 0;     // searches re-run after losing a claim race
  uint64_t certifiedPlanned = 0;  // requests committed from certified waves
  uint64_t certifiedWaves = 0;    // conflict-free waves executed
  uint64_t certifiedFallbacks = 0;  // certified plans that fell back
  uint64_t paranoidDisagreements = 0;  // certificate/arbitration mismatches
};

}  // namespace jrsvc
