// The concurrent routing service: sessions, transactional nets, and a
// batched request engine.
//
// The paper frames JRoute as a run-time API driven by live applications
// (BoardScope debug, RTP core replacement). This layer makes that
// multi-client: requests from any number of threads enter a bounded MPSC
// queue, and a single engine thread drains them in batches. Within a
// batch, requests whose tile bounding boxes are disjoint are planned in
// parallel by a worker pool against a frozen fabric — per-node claim
// flags (ClaimMap) arbitrate wires between concurrent planners — then the
// plans are committed serially under transactional journaling. Requests
// that genuinely conflict (overlapping regions, unroutes, lost claim
// races, plan/commit failures) run on the serialized path, which is
// authoritative. Backpressure is structural: a full queue rejects with
// kOverloaded, and per-request deadlines shed stale work before it costs
// routing effort.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/drc.h"
#include "common/sync.h"
#include "core/router.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "plan/certificate.h"
#include "service/claim_map.h"
#include "service/planner.h"
#include "service/queue.h"
#include "service/request.h"
#include "service/session.h"

namespace jrsvc {

struct ServiceOptions {
  /// Request queue capacity; a full queue rejects with kOverloaded.
  size_t queueCapacity = 1024;
  /// Maximum requests drained per batch.
  size_t batchSize = 64;
  /// Planning threads including the engine itself; 0 = use
  /// std::thread::hardware_concurrency().
  unsigned planThreads = 0;
  /// Margin (tiles) added around each request's bounding box when deciding
  /// tile-disjointness for the parallel phase. Claims make correctness
  /// independent of this value; it only tunes how often plans collide.
  int disjointMargin = 1;
  /// Manual mode: no engine thread; the owner drives pumpOnce(). Used by
  /// deterministic tests (backpressure, deadlines).
  bool manualPump = false;
  /// How long an idle engine waits for the first request of a batch.
  std::chrono::milliseconds drainWait{100};
  /// Adaptive batch close: after the first drain of a batch, keep the
  /// batch open for late arrivals until the *oldest* request's span age
  /// (now - enqueue) reaches this bound or the batch fills. 0 closes
  /// immediately (the pre-linger behavior). Lingering trades a bounded
  /// per-request latency increase for fuller batches and a better
  /// parallel-planning ratio; service.batch.linger_us records what each
  /// batch actually paid.
  uint64_t batchLingerUs = 0;
  /// Run the full static DRC (src/analysis) after every processed batch —
  /// the quiescent point where all txns have committed or rolled back and
  /// every planning claim must be released — and throw JRouteError on any
  /// violation. Defaults to the JROUTE_DRC_PARANOID environment variable,
  /// so the whole test suite and bench_service_throughput can be run with
  /// the analyzer continuously cross-checking the concurrent engine.
  /// Costly (O(fabric) per batch); a violation escaping the engine thread
  /// terminates the process, which is the point of paranoid mode.
  bool drcParanoid = jrdrc::paranoidEnabled();
  /// Certified planning (jrplan): statically extract a claim footprint
  /// per route request, greedy-color the batch into conflict-free waves,
  /// and plan each wave with CAS arbitration skipped — the footprint
  /// filter confines every search instead. Requests whose footprint is
  /// unsound (and any certified plan that fails) fall back to the
  /// ordinary arbitration/serialized machinery.
  bool certify = false;
  /// Re-run claim arbitration over every certified plan before commit
  /// and throw JRouteError on any disagreement (a disagreement means the
  /// certificate lied — that must never happen). Defaults to the
  /// JROUTE_PLAN_PARANOID environment variable.
  bool planParanoid = jrplan::paranoidEnabled();
  /// Shard the claim map by region-grid cell (jrplan's grid): nodes of a
  /// cell share cache lines, so bbox-disjoint planners stop false
  /// sharing each other's CASes. Pure layout change — admitted plans are
  /// identical to the flat map.
  bool shardClaimMap = true;
  /// Options for the underlying router and the parallel planners.
  jroute::RouterOptions router{};
};

class RoutingService {
 public:
  explicit RoutingService(xcvsim::Fabric& fabric, ServiceOptions opts = {});
  ~RoutingService();

  RoutingService(const RoutingService&) = delete;
  RoutingService& operator=(const RoutingService&) = delete;

  // --- Sessions ----------------------------------------------------------------

  Session openSession();

  /// Unroute every net the session still owns (when `unrouteOwned`) and
  /// forget the session. The handle becomes invalid.
  void closeSession(Session& session, bool unrouteOwned = true);

  // --- Requests ----------------------------------------------------------------

  /// Enqueue one request. Sessions call this through their sugar methods;
  /// it is public for custom drivers. Never blocks: a full queue resolves
  /// the future immediately with Rejected{kOverloaded}.
  std::future<RouteResult> submit(Op op, uint64_t sessionId,
                                  std::vector<jroute::EndPoint> sources,
                                  std::vector<jroute::EndPoint> sinks,
                                  Clock::time_point deadline = {});

  /// Manual-pump mode: drain and process at most one batch on the calling
  /// thread. Returns the number of requests processed.
  size_t pumpOnce();

  /// Run `fn` with exclusive access to the underlying router — for
  /// queries (trace, reports), core placement, and configuration while
  /// the engine is live. Nets created inside `fn` are not session-owned.
  /// Do not submit-and-wait from inside `fn` (the engine would deadlock
  /// against you).
  void withRouter(const std::function<void(jroute::Router&)>& fn);

  /// Stop accepting requests, drain the queue, join engine and workers.
  /// Idempotent; the destructor calls it.
  void stop();

  // --- Introspection -----------------------------------------------------------

  /// Run the static DRC over the service's full state — fabric, router
  /// connection memory, session-ownership table, and claim map — with the
  /// engine excluded (takes the fabric lock). `includeBitstream` adds the
  /// O(config) frame-decode cross-check.
  jrdrc::DrcReport runDrc(bool includeBitstream = true);

  ServiceStats stats() const;

  /// Point-in-time copy of the process-wide telemetry registry (router,
  /// service, txn, and DRC metrics), with the service's live gauges
  /// (queue depth, per-region occupancy and claim conflicts, lockcheck
  /// and SLO state, jrprof health — service.prof.{armed,locks,batches,
  /// sampler_ticks}) refreshed first. The profiler's data metrics
  /// (sync.<lock>.*, service.batch.*) are recorded live by jrprof and
  /// appear in the snapshot whenever it has been armed. Safe to call
  /// while the engine runs (briefly takes the fabric lock to read
  /// occupancy consistently).
  jrobs::MetricsSnapshot snapshotMetrics() const;

  /// Per-region count of in-use fabric nodes, consistent under the
  /// fabric lock (jrsh `heatmap`). Works in both telemetry build modes.
  jrobs::Heatmap occupancy(int cellRows = 4, int cellCols = 4) const;

  /// Per-region claim-conflict counts accumulated by the parallel
  /// planners since start/reset (jrsh `heatmap conflicts`). Empty cells
  /// with JROUTE_NO_TELEMETRY.
  jrobs::Heatmap claimConflicts() const;

  size_t queueDepth() const { return queue_.size(); }
  std::vector<NodeId> netsOf(uint64_t sessionId) const;
  const xcvsim::Fabric& fabric() const { return *fabric_; }

 private:
  struct PlanJob {
    Request* req = nullptr;
    uint32_t owner = 0;
    Plan plan;
    /// Non-null when the job belongs to a certified wave: the planner
    /// skips CAS arbitration and confines the search to this footprint.
    const jrplan::Footprint* footprint = nullptr;
  };
  /// Shared state of one parallel planning phase.
  struct PlanPhase {
    std::vector<PlanJob>* jobs = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> workersDone{0};
  };
  /// Tile-space bounding box used for the disjointness partition.
  struct Box {
    int r0 = 1 << 20, c0 = 1 << 20, r1 = -(1 << 20), c1 = -(1 << 20);
    void add(xcvsim::RowCol rc);
    void expand(int margin);
    bool intersects(const Box& o) const;
  };

  void engineLoop();
  void workerLoop();
  void runJobs(PlanPhase& phase, Planner& planner);
  void processBatch(std::vector<Request>& reqs) JR_REQUIRES(fabricMu_);
  /// Resolve + ownership/validity precheck shared by both phases. Returns
  /// a rejection, or nullopt with the request's bounding box in `box`.
  std::optional<RouteResult> precheckRoute(const Request& req, Box& box)
      JR_REQUIRES(fabricMu_);
  /// Commit a found plan. False = fall back to the serialized path.
  bool commitPlan(Request& req, PlanJob& job, RouteResult& out)
      JR_REQUIRES(fabricMu_);
  RouteResult executeSerial(Request& req) JR_REQUIRES(fabricMu_);
  RouteResult executeUnroute(Request& req) JR_REQUIRES(fabricMu_);
  /// Run `jobs` through the worker pool and commit the found plans.
  /// Failures (plan not found, commit rollback) are appended to `serial`
  /// for the serialized path unless authoritative. `certified` jobs skip
  /// arbitration (and run the paranoid cross-check when enabled).
  void planAndCommit(std::vector<PlanJob>& jobs,
                     std::vector<Request*>& serial, bool certified)
      JR_REQUIRES(fabricMu_);
  /// Conservative claim footprint of a route request, mirroring how the
  /// planner decomposes it into nets. Unsound footprint when anything
  /// cannot be resolved statically.
  jrplan::Footprint footprintOf(const Request& req) JR_REQUIRES(fabricMu_);
  /// DrcInput over the full service state; caller must hold fabricMu_ (or
  /// otherwise exclude the engine). The ownership snapshot is written into
  /// `ownersStorage`, which must outlive the returned input.
  jrdrc::DrcInput drcInput(
      bool includeBitstream,
      std::vector<std::pair<NodeId, uint64_t>>& ownersStorage) const
      JR_REQUIRES(fabricMu_);
  /// Free the whole net driven from `source` (must be a net source node).
  void unrouteNode(NodeId source) JR_REQUIRES(fabricMu_);
  void registerNet(NodeId source, uint64_t sessionId);
  void finish(Request& req, RouteResult res);
  /// Record provenance for every net the request just committed.
  /// `netSources` are the nets' source nodes; counters describe the whole
  /// request (shared by its nets). Call after txn commit, under fabricMu_.
  void recordProvenance(const Request& req, bool parallel, bool certified,
                        const std::vector<NodeId>& netSources,
                        const std::vector<size_t>& pipsPerNet,
                        uint64_t templateHits, uint64_t shapeReuseHits,
                        uint64_t mazeRuns, uint64_t visits,
                        uint64_t claimRetries, const char* selector)
      JR_REQUIRES(fabricMu_);
  /// Refresh fabric.region.* / service.claim.region.* gauges. Caller
  /// must hold fabricMu_.
  void publishCongestionGauges() const JR_REQUIRES(fabricMu_);

  xcvsim::Fabric* fabric_;
  ServiceOptions opts_;
  jroute::Router router_;
  ClaimMap claims_;
  BoundedQueue<Request> queue_;
  /// Static claim-footprint analyzer (certified planning and the sharded
  /// claim map's region grid). Engine-thread only, under fabricMu_.
  std::unique_ptr<jrplan::FootprintExtractor> extractor_;

  // Lock hierarchy (outermost first; DESIGN.md §15, enforced at run time
  // by jrcheck when armed):
  //   service.fabric -> { service.work, service.owner, service.queue,
  //                       obs.* }
  //   service.work, service.owner: leaves (take nothing underneath).
  // Serializes fabric mutation and exclusive access (withRouter) against
  // batch processing. Mutable: const introspection (snapshotMetrics,
  // occupancy) must exclude the engine too.
  mutable jrsync::Mutex fabricMu_{"service.fabric"};

  // Net ownership registry: net source node -> owning session.
  mutable jrsync::Mutex ownerMu_{"service.owner"};
  std::unordered_map<NodeId, uint64_t> netOwner_ JR_GUARDED_BY(ownerMu_);

  // Parallel planning pool. The engine participates, so `workers_` holds
  // planThreads - 1 threads.
  std::vector<std::thread> workers_;
  std::unique_ptr<Planner> enginePlanner_;
  jrsync::Mutex workMu_{"service.work"};
  std::condition_variable_any workCv_, doneCv_;
  uint64_t workGen_ JR_GUARDED_BY(workMu_) = 0;
  PlanPhase* phase_ JR_GUARDED_BY(workMu_) = nullptr;
  bool shutdownWorkers_ JR_GUARDED_BY(workMu_) = false;

  std::thread engine_;
  std::atomic<uint64_t> nextRequestId_{1};
  std::atomic<uint64_t> nextSessionId_{1};
  bool stopped_ = false;

  struct AtomicStats {
    std::atomic<uint64_t> submitted{0}, accepted{0}, rejected{0},
        overloaded{0}, deadlineExpired{0}, contention{0}, unroutable{0},
        batches{0}, parallelPlanned{0}, serialRouted{0}, planFallbacks{0},
        claimRetries{0}, certifiedPlanned{0}, certifiedWaves{0},
        certifiedFallbacks{0}, paranoidDisagreements{0};
  };
  mutable AtomicStats stats_;
};

}  // namespace jrsvc
