// Bounded multi-producer single-consumer request queue.
//
// Producers are client sessions on arbitrary threads; the consumer is the
// engine, which drains in batches. The queue enforces backpressure by
// construction: tryPush never blocks and fails when the queue is at
// capacity, which the service turns into Rejected{kOverloaded} so an
// overloaded server sheds load instead of growing an unbounded backlog.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

namespace jrsvc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : cap_(capacity) {}

  /// Enqueue without blocking. False when full or closed.
  bool tryPush(T&& item) {
    {
      std::lock_guard lk(mu_);
      if (closed_ || items_.size() >= cap_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Move up to `maxItems` into `out`. Blocks up to `wait` for the first
  /// item (zero = poll). Returns the number of items drained.
  size_t drain(std::vector<T>& out, size_t maxItems,
               std::chrono::milliseconds wait) {
    std::unique_lock lk(mu_);
    if (items_.empty() && wait.count() > 0) {
      cv_.wait_for(lk, wait, [&] { return !items_.empty() || closed_; });
    }
    size_t n = 0;
    while (n < maxItems && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    return n;
  }

  /// Stop accepting new items and wake the consumer.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  size_t cap_;
  bool closed_ = false;
};

}  // namespace jrsvc
