// Bounded multi-producer single-consumer request queue.
//
// Producers are client sessions on arbitrary threads; the consumer is the
// engine, which drains in batches. The queue enforces backpressure by
// construction: tryPush never blocks and fails when the queue is at
// capacity, which the service turns into Rejected{kOverloaded} so an
// overloaded server sheds load instead of growing an unbounded backlog.
//
// Lock protocol is annotated for clang's thread-safety analysis: every
// mutable member is guarded by mu_; the condition variable waits on the
// annotated jrsync::Mutex directly (condition_variable_any only needs
// BasicLockable).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <vector>

#include "common/sync.h"

namespace jrsvc {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : cap_(capacity) {}

  /// Enqueue without blocking. False when full or closed.
  bool tryPush(T&& item) {
    {
      jrsync::MutexLock lk(mu_);
      if (closed_ || items_.size() >= cap_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Move up to `maxItems` into `out`. Blocks up to `wait` for the first
  /// item (zero = poll). Returns the number of items drained.
  size_t drain(std::vector<T>& out, size_t maxItems,
               std::chrono::milliseconds wait) {
    jrsync::MutexLock lk(mu_);
    if (items_.empty() && wait.count() > 0) {
      cv_.wait_for(mu_, wait,
                   [&]() JR_REQUIRES(mu_) { return !items_.empty() || closed_; });
    }
    size_t n = 0;
    while (n < maxItems && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++n;
    }
    return n;
  }

  /// Keep draining into `out` until it holds `maxItems` total or
  /// `deadline` passes (absolute, steady clock) or the queue closes.
  /// Returns the number of items added. The adaptive batch-close path
  /// uses this to let a partially filled batch linger for late arrivals
  /// without ever exceeding the oldest request's age bound.
  size_t drainUntil(std::vector<T>& out, size_t maxItems,
                    std::chrono::steady_clock::time_point deadline) {
    jrsync::MutexLock lk(mu_);
    size_t added = 0;
    while (true) {
      while (out.size() < maxItems && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++added;
      }
      if (out.size() >= maxItems || closed_ ||
          std::chrono::steady_clock::now() >= deadline) {
        return added;
      }
      cv_.wait_until(mu_, deadline, [&]() JR_REQUIRES(mu_) {
        return !items_.empty() || closed_;
      });
    }
  }

  /// Stop accepting new items and wake the consumer.
  void close() {
    {
      jrsync::MutexLock lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    jrsync::MutexLock lk(mu_);
    return closed_;
  }

  size_t size() const {
    jrsync::MutexLock lk(mu_);
    return items_.size();
  }

 private:
  mutable jrsync::Mutex mu_{"service.queue"};
  std::condition_variable_any cv_;
  std::deque<T> items_ JR_GUARDED_BY(mu_);
  size_t cap_;
  bool closed_ JR_GUARDED_BY(mu_) = false;
};

}  // namespace jrsvc
