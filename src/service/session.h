// Client handle onto the routing service.
//
// Each session owns the nets it routes: the service tags every accepted
// net with the session id, and only the owning session may extend or
// unroute it — a second client touching the net gets Rejected{kNotOwner}
// instead of corrupting state it does not control. Sessions are cheap
// value handles; all state lives in the service.
#pragma once

#include <future>
#include <span>
#include <vector>

#include "service/request.h"

namespace jrsvc {

using jroute::EndPoint;

class RoutingService;

class Session {
 public:
  Session() = default;

  uint64_t id() const { return id_; }
  bool valid() const { return svc_ != nullptr; }
  RoutingService& service() const { return *svc_; }

  // --- Asynchronous submissions ----------------------------------------------
  // Enqueue and return immediately; the future resolves when the engine
  // processes the request (Rejected{kOverloaded} resolves at once).

  std::future<RouteResult> routeAsync(const EndPoint& source,
                                      const EndPoint& sink,
                                      Clock::time_point deadline = {});
  std::future<RouteResult> fanoutAsync(const EndPoint& source,
                                       std::vector<EndPoint> sinks,
                                       Clock::time_point deadline = {});
  std::future<RouteResult> busAsync(std::vector<EndPoint> sources,
                                    std::vector<EndPoint> sinks,
                                    Clock::time_point deadline = {});
  std::future<RouteResult> unrouteAsync(const EndPoint& source,
                                        Clock::time_point deadline = {});

  // --- Synchronous sugar -------------------------------------------------------

  RouteResult route(const EndPoint& source, const EndPoint& sink);
  RouteResult fanout(const EndPoint& source, std::vector<EndPoint> sinks);
  RouteResult bus(std::vector<EndPoint> sources, std::vector<EndPoint> sinks);
  RouteResult unroute(const EndPoint& source);

  /// Bus-connect with the raw router's contract: throws ContentionError /
  /// UnroutableError / JRouteError on rejection. This is what lets
  /// RtrManager route its port groups through a session unchanged.
  void connect(std::span<const EndPoint> sources,
               std::span<const EndPoint> sinks);

  /// Net sources this session currently owns.
  std::vector<xcvsim::NodeId> ownedNets() const;

 private:
  friend class RoutingService;
  Session(RoutingService& svc, uint64_t id) : svc_(&svc), id_(id) {}

  RoutingService* svc_ = nullptr;
  uint64_t id_ = 0;
};

}  // namespace jrsvc
