#include "service/txn.h"

#include <utility>

#include "analysis/drc.h"
#include "obs/flightrec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jrsvc {

namespace {

struct TxnMetrics {
  jrobs::Counter& commits = jrobs::registry().counter("txn.commits");
  jrobs::Counter& rollbacks = jrobs::registry().counter("txn.rollbacks");
  jrobs::Histogram& paranoidUs =
      jrobs::registry().histogram("txn.drc_paranoid_us");
};

TxnMetrics& txnMetrics() {
  static TxnMetrics m;
  return m;
}

/// JROUTE_DRC_PARANOID: cross-check the fabric against the static rule
/// set at every txn resolution point. The bitstream decode is skipped
/// here (it is O(config size)); the service's per-batch pass covers it.
void paranoidCheck(Router& router, const char* when) {
  if (!jrdrc::paranoidEnabled()) return;
  JR_TRACE_SCOPE("txn", "drc.paranoid");
  const uint64_t t0 = jrobs::Tracer::instance().nowNs();
  jrdrc::DrcInput in;
  in.fabric = &router.fabric();
  in.router = &router;
  in.checkBitstream = false;
  jrdrc::enforce(in, when);
  txnMetrics().paranoidUs.record(
      (jrobs::Tracer::instance().nowNs() - t0) / 1000);
}

}  // namespace

RouteTxn::RouteTxn(Router& router)
    : router_(&router),
      prev_(router.setObserver(this)),
      connMark_(router.connectionCount()) {}

RouteTxn::~RouteTxn() {
  if (active_) rollback();
}

void RouteTxn::route(const EndPoint& source, const EndPoint& sink) {
  router_->route(source, sink);
}

void RouteTxn::route(const EndPoint& source, std::span<const EndPoint> sinks) {
  router_->route(source, sinks);
}

void RouteTxn::routeBus(std::span<const EndPoint> sources,
                        std::span<const EndPoint> sinks) {
  router_->route(sources, sinks);
}

NetId RouteTxn::ensureNet(const EndPoint& source, std::string name) {
  return router_->ensureNet(source, std::move(name));
}

void RouteTxn::commitChain(std::span<const EdgeId> chain, NetId net) {
  router_->commitChain(chain, net);
}

void RouteTxn::commit() {
  detach();
  ons_.clear();
  nets_.clear();
  txnMetrics().commits.add();
  paranoidCheck(*router_, "txn commit");
}

void RouteTxn::rollback() {
  detach();
  jrobs::flightRecorder().note("txn", "rollback", ons_.size(), nets_.size());
  xcvsim::Fabric& fabric = router_->fabric();
  // Chains were applied source-side first, so reverse order is leaf-first
  // within every chain and detaches later branches before the trunks they
  // hang from.
  for (auto it = ons_.rbegin(); it != ons_.rend(); ++it) {
    fabric.turnOff(it->first);
  }
  ons_.clear();
  // With all staged PIPs off, each staged net is back to its bare source.
  for (auto it = nets_.rbegin(); it != nets_.rend(); ++it) {
    fabric.removeNet(*it);
  }
  nets_.clear();
  // Port-connection memory: forget connections recorded under this txn.
  router_->truncateConnections(connMark_);
  txnMetrics().rollbacks.add();
  paranoidCheck(*router_, "txn rollback");
}

void RouteTxn::detach() {
  if (!active_) return;
  active_ = false;
  router_->setObserver(prev_);
}

void RouteTxn::netCreated(NetId net, NodeId source) {
  nets_.push_back(net);
  if (prev_) prev_->netCreated(net, source);
}

void RouteTxn::pipTurnedOn(EdgeId e, NetId net) {
  ons_.emplace_back(e, net);
  if (prev_) prev_->pipTurnedOn(e, net);
}

size_t RouteTxn::stagedPipsFor(NetId net) const {
  size_t n = 0;
  for (const auto& [e, owner] : ons_) {
    (void)e;
    if (owner == net) ++n;
  }
  return n;
}

}  // namespace jrsvc
