// Concurrent route planning against a frozen fabric.
//
// During a batch's parallel phase the engine freezes the fabric (no
// commits happen until every planner is done), and one Planner per worker
// thread computes edge chains for its requests using the same two engines
// as the serial router — the predefined-template library and the weighted
// maze — both of which only *read* fabric state. Wire arbitration between
// concurrent planners goes through the ClaimMap: every node a plan wants
// is claimed with a CAS, a lost race blocks the node and re-runs the
// search, and a plan that cannot converge falls back to the engine's
// serialized path, which is authoritative.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "plan/footprint.h"
#include "router/search.h"
#include "service/claim_map.h"
#include "service/request.h"

namespace jrsvc {

using xcvsim::EdgeId;
using xcvsim::NetId;

/// One net a plan wants to create or extend.
struct PlannedNet {
  /// Pin addressing the net source (for commit-time ensureNet).
  jroute::Pin srcPin;
  NodeId srcNode = xcvsim::kInvalidNode;
  /// Net to extend; kInvalidNet means commit creates a fresh net.
  NetId existing = xcvsim::kInvalidNet;
  /// Edge chains in commit order (concatenated, source-side first).
  std::vector<EdgeId> edges;
};

struct Plan {
  bool found = false;
  /// True when the failure is final (bad pin, sink held by another net):
  /// the serialized path would fail identically, so the engine rejects
  /// without retrying.
  bool authoritative = false;
  Reject reason = Reject::kNone;
  std::string detail;
  std::vector<PlannedNet> nets;
  /// Every node claimed on behalf of this plan (released by the engine
  /// after commit or abandonment).
  std::vector<NodeId> claimed;
  /// Searches re-run after losing a claim race (stats).
  uint64_t retries = 0;
  /// Per-request search effort, mirrored into the committed nets'
  /// provenance records (obs/provenance.h).
  uint64_t templateHits = 0;
  uint64_t shapeReuseHits = 0;
  uint64_t mazeRuns = 0;
  uint64_t visits = 0;
  /// Subset of templateHits satisfied by a long-line composition.
  uint64_t longTemplateHits = 0;
  /// Strategy-selector decisions made while planning this request.
  uint64_t selTemplate = 0;
  uint64_t selLongLine = 0;
  uint64_t selMaze = 0;
  /// For contention failures: the contested segment, when known.
  NodeId contendedNode = xcvsim::kInvalidNode;
};

class Planner {
 public:
  /// `opts` is copied; its claimFilter is pointed at the shared claim map.
  Planner(const xcvsim::Fabric& fabric, ClaimMap& claims,
          jroute::RouterOptions opts);

  /// Plan `req` with claim owner id `owner` (request id + 1). Never
  /// touches fabric state.
  Plan plan(uint32_t owner, const Request& req);

  /// Plan under a no-conflict certificate: skip CAS arbitration entirely
  /// and instead confine the search to `footprint` via the claim filter.
  /// Sound because every member of a certified wave is confined to a
  /// pairwise-disjoint footprint, and node → footprint-cell is a pure
  /// function of the node — so two confined plans cannot want the same
  /// node no matter what their searches do. plan.claimed is still
  /// filled (nothing was CAS'd) so the paranoid cross-check can re-run
  /// arbitration over it.
  Plan planCertified(uint32_t owner, const Request& req,
                     const jrplan::Footprint& footprint);

 private:
  /// `hint`/`shapeOut` carry bus regularity between bits of one request,
  /// mirroring Router::routeSink: bit 0 exports its template shape via
  /// `shapeOut`, later bits try `hint` before the library and the maze.
  bool planNet(uint32_t owner, Plan& plan, const jroute::EndPoint& source,
               const std::vector<jroute::Pin>& sinkPins,
               const std::vector<xcvsim::TemplateValue>* hint = nullptr,
               std::vector<xcvsim::TemplateValue>* shapeOut = nullptr);
  bool planSink(uint32_t owner, Plan& plan, PlannedNet& net,
                const jroute::Pin& srcPin, const jroute::Pin& sinkPin,
                std::vector<NodeId>& treeNodes, bool tryTemplates,
                const std::vector<xcvsim::TemplateValue>* hint = nullptr,
                std::vector<xcvsim::TemplateValue>* shapeOut = nullptr);
  /// Claim `owner` on every target node of `chain`; on a lost race,
  /// releases this call's acquisitions and returns false. In certified
  /// mode there is no race to lose: nodes are recorded in `mine_`
  /// instead of CAS'd, and the call always succeeds.
  bool claimChain(uint32_t owner, Plan& plan, std::span<const EdgeId> chain);
  /// Certified-mode source claim / ClaimMap CAS, one seam for both.
  bool claimNode(NodeId n, uint32_t owner);

  /// Swappable RouterOptions::claimFilter target: ClaimView during
  /// arbitration, the footprint filter during certified planning.
  struct IndirectFilter : jroute::NodeClaimFilter {
    const jroute::NodeClaimFilter* target = nullptr;
    bool blocked(NodeId n) const override { return target->blocked(n); }
  };
  /// Certified-mode filter: everything outside the footprint is an
  /// obstacle (that containment IS the certificate's soundness), and so
  /// are this plan's own nodes (second-driver prevention, the job
  /// ClaimView's self-claims do in arbitration mode).
  struct CertFilter : jroute::NodeClaimFilter {
    const Planner* planner = nullptr;
    bool blocked(NodeId n) const override;
  };

  const xcvsim::Fabric* fabric_;
  ClaimMap* claims_;
  ClaimView view_;
  IndirectFilter indirect_;
  CertFilter certFilter_;
  bool certified_ = false;
  const jrplan::Footprint* certFp_ = nullptr;
  std::unordered_set<NodeId> mine_;
  jroute::RouterOptions opts_;
  jroute::MazeRouter maze_;
};

}  // namespace jrsvc
