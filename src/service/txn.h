// Transactional net operations.
//
// A RouteTxn turns the paper's exception-on-contention model (section 3.4)
// into all-or-nothing semantics: route calls staged through the txn apply
// to the fabric immediately, but every durable effect (PIPs turned on,
// nets created) is journaled via the router's RouteObserver hook, and
// rollback() replays the journal backwards. A fanout that fails on its
// fourth sink therefore leaves the fabric bit-identical to the pre-txn
// state instead of half-routed — the property the service relies on to
// return clean Rejected outcomes, and that users of the raw API get by
// wrapping multi-step routes themselves.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/router.h"

namespace jrsvc {

using jroute::EndPoint;
using jroute::Router;
using xcvsim::EdgeId;
using xcvsim::NetId;
using xcvsim::NodeId;

class RouteTxn : public jroute::RouteObserver {
 public:
  /// Installs itself as the router's observer; chains to (and restores) any
  /// previously installed observer.
  explicit RouteTxn(Router& router);

  /// An open txn rolls back on destruction.
  ~RouteTxn() override;

  RouteTxn(const RouteTxn&) = delete;
  RouteTxn& operator=(const RouteTxn&) = delete;

  // --- Staged operations -----------------------------------------------------
  // Exceptions from the router propagate unchanged; already-staged effects
  // stay staged, so the caller may retry, commit the partial work, or roll
  // everything back.

  void route(const EndPoint& source, const EndPoint& sink);
  void route(const EndPoint& source, std::span<const EndPoint> sinks);
  void routeBus(std::span<const EndPoint> sources,
                std::span<const EndPoint> sinks);

  /// Net for `source`, created with `name` (journaled) when new.
  NetId ensureNet(const EndPoint& source, std::string name = {});

  /// Turn on a pre-planned edge chain as part of `net` (service commit
  /// path; the chain must start on a node of `net`).
  void commitChain(std::span<const EdgeId> chain, NetId net);

  // --- Resolution -------------------------------------------------------------

  /// Keep everything staged and detach from the router.
  void commit();

  /// Undo everything staged (reverse order) and detach from the router.
  void rollback();

  bool active() const { return active_; }
  size_t stagedPips() const { return ons_.size(); }
  size_t stagedNets() const { return nets_.size(); }

  /// The staged journal, for provenance assembly: (edge, net) in
  /// application order, and created nets in creation order. Valid only
  /// while the txn is open — commit() and rollback() clear it, so callers
  /// building provenance records must read (or copy) it first.
  const std::vector<std::pair<EdgeId, NetId>>& stagedOns() const {
    return ons_;
  }
  const std::vector<NetId>& stagedNetIds() const { return nets_; }

  /// PIPs staged for `net` so far (provenance per-net pip counts).
  size_t stagedPipsFor(NetId net) const;

  // --- RouteObserver ----------------------------------------------------------

  void netCreated(NetId net, NodeId source) override;
  void pipTurnedOn(EdgeId e, NetId net) override;

 private:
  void detach();

  Router* router_;
  jroute::RouteObserver* prev_;
  /// (edge, owning net) in application order. The net id rides along so
  /// provenance can attribute staged PIPs per net without re-tracing.
  std::vector<std::pair<EdgeId, NetId>> ons_;
  std::vector<NetId> nets_;   // in creation order
  /// Router::connectionCount() at txn open. Staged routes may append
  /// port-connection memory; rollback truncates back to this mark so a
  /// rolled-back port route leaves no remembered connection behind.
  size_t connMark_;
  bool active_ = true;
};

}  // namespace jrsvc
