#include "service/session.h"

#include <utility>

#include "common/error.h"
#include "service/service.h"

namespace jrsvc {

std::future<RouteResult> Session::routeAsync(const EndPoint& source,
                                             const EndPoint& sink,
                                             Clock::time_point deadline) {
  return svc_->submit(Op::kRouteP2P, id_, {source}, {sink}, deadline);
}

std::future<RouteResult> Session::fanoutAsync(const EndPoint& source,
                                              std::vector<EndPoint> sinks,
                                              Clock::time_point deadline) {
  return svc_->submit(Op::kRouteFanout, id_, {source}, std::move(sinks),
                      deadline);
}

std::future<RouteResult> Session::busAsync(std::vector<EndPoint> sources,
                                           std::vector<EndPoint> sinks,
                                           Clock::time_point deadline) {
  return svc_->submit(Op::kRouteBus, id_, std::move(sources),
                      std::move(sinks), deadline);
}

std::future<RouteResult> Session::unrouteAsync(const EndPoint& source,
                                               Clock::time_point deadline) {
  return svc_->submit(Op::kUnroute, id_, {source}, {}, deadline);
}

RouteResult Session::route(const EndPoint& source, const EndPoint& sink) {
  return routeAsync(source, sink).get();
}

RouteResult Session::fanout(const EndPoint& source,
                            std::vector<EndPoint> sinks) {
  return fanoutAsync(source, std::move(sinks)).get();
}

RouteResult Session::bus(std::vector<EndPoint> sources,
                         std::vector<EndPoint> sinks) {
  return busAsync(std::move(sources), std::move(sinks)).get();
}

RouteResult Session::unroute(const EndPoint& source) {
  return unrouteAsync(source).get();
}

void Session::connect(std::span<const EndPoint> sources,
                      std::span<const EndPoint> sinks) {
  const RouteResult res =
      bus(std::vector<EndPoint>(sources.begin(), sources.end()),
          std::vector<EndPoint>(sinks.begin(), sinks.end()));
  if (res.ok()) return;
  switch (res.reason) {
    case Reject::kContention:
      throw xcvsim::ContentionError(res.detail, xcvsim::kInvalidNode);
    case Reject::kUnroutable:
      throw xcvsim::UnroutableError(res.detail);
    default:
      throw xcvsim::JRouteError("service rejected bus (" +
                                std::string(rejectName(res.reason)) +
                                "): " + res.detail);
  }
}

std::vector<xcvsim::NodeId> Session::ownedNets() const {
  return svc_->netsOf(id_);
}

}  // namespace jrsvc
