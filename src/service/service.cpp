#include "service/service.h"

#include <algorithm>
#include <string>
#include <utility>

#include "analysis/congestion.h"
#include "check/lockcheck.h"
#include "common/error.h"
#include "fabric/trace.h"
#include "obs/flightrec.h"
#include "obs/prof.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/spans.h"
#include "obs/trace.h"
#include "service/txn.h"

namespace jrsvc {

using jroute::EndPoint;
using jroute::Pin;
using xcvsim::ArgumentError;
using xcvsim::ContentionError;
using xcvsim::JRouteError;
using xcvsim::kInvalidNet;
using xcvsim::kInvalidNode;
using xcvsim::NetId;
using xcvsim::RowCol;
using xcvsim::UnroutableError;

const char* opName(Op op) {
  switch (op) {
    case Op::kRouteP2P: return "p2p";
    case Op::kRouteFanout: return "fanout";
    case Op::kRouteBus: return "bus";
    case Op::kUnroute: return "unroute";
  }
  return "?";
}

const char* rejectName(Reject r) {
  switch (r) {
    case Reject::kNone: return "none";
    case Reject::kContention: return "contention";
    case Reject::kUnroutable: return "unroutable";
    case Reject::kOverloaded: return "overloaded";
    case Reject::kDeadlineExpired: return "deadline-expired";
    case Reject::kNotOwner: return "not-owner";
    case Reject::kBadArgument: return "bad-argument";
    case Reject::kShutdown: return "shutdown";
  }
  return "?";
}

namespace {

RouteResult accepted(NodeId netSource, bool parallel) {
  RouteResult r;
  r.outcome = Outcome::kAccepted;
  r.reason = Reject::kNone;
  r.netSource = netSource;
  r.routedInParallel = parallel;
  return r;
}

RouteResult rejected(Reject reason, std::string detail) {
  RouteResult r;
  r.outcome = Outcome::kRejected;
  r.reason = reason;
  r.detail = std::move(detail);
  return r;
}

/// Engine telemetry (registry mirror of AtomicStats plus the
/// distributions AtomicStats cannot hold). One resolution per process.
struct EngineMetrics {
  jrobs::Counter& accepted = jrobs::registry().counter("service.accepted");
  jrobs::Counter& rejected = jrobs::registry().counter("service.rejected");
  jrobs::Counter& overloaded =
      jrobs::registry().counter("service.rejected.overloaded");
  jrobs::Counter& deadline =
      jrobs::registry().counter("service.rejected.deadline");
  jrobs::Counter& contention =
      jrobs::registry().counter("service.rejected.contention");
  jrobs::Counter& unroutable =
      jrobs::registry().counter("service.rejected.unroutable");
  jrobs::Counter& batches = jrobs::registry().counter("service.batches");
  jrobs::Counter& parallelPlanned =
      jrobs::registry().counter("service.parallel_planned");
  jrobs::Counter& serialRouted =
      jrobs::registry().counter("service.serial_routed");
  jrobs::Counter& planFallbacks =
      jrobs::registry().counter("service.plan_fallbacks");
  jrobs::Counter& claimRetries =
      jrobs::registry().counter("service.plan.claim_retries");
  jrobs::Counter& certifiedRequests =
      jrobs::registry().counter("service.plan.certified.requests");
  jrobs::Counter& certifiedWaves =
      jrobs::registry().counter("service.plan.certified.waves");
  jrobs::Counter& certifiedFallbacks =
      jrobs::registry().counter("service.plan.certified.fallbacks");
  jrobs::Counter& paranoidChecks =
      jrobs::registry().counter("service.plan.certified.paranoid_checks");
  jrobs::Counter& paranoidDisagreements = jrobs::registry().counter(
      "service.plan.certified.paranoid_disagreements");
  jrobs::Gauge& queueDepth =
      jrobs::registry().gauge("service.queue.depth");
  jrobs::Histogram& batchSize =
      jrobs::registry().histogram("service.batch.size");
  jrobs::Histogram& requestLatencyUs =
      jrobs::registry().histogram("service.request.latency_us");
  jrobs::Histogram& batchDrcUs =
      jrobs::registry().histogram("service.batch.drc_us");
  /// Adaptive batch close: age of the oldest request when its batch
  /// closed, and how many late arrivals lingering picked up.
  jrobs::Histogram& batchLingerUs =
      jrobs::registry().histogram("service.batch.linger_us");
  jrobs::Counter& lingerAdded =
      jrobs::registry().counter("service.batch.linger_added");
};

EngineMetrics& metrics() {
  static EngineMetrics m;
  return m;
}

// Batch-profile collection (jrprof). processBatch points these at its
// stack vectors for the duration of one batch; finish() — always called
// on the same engine thread for batch requests — appends the folded
// span. Submit-path rejections run on producer threads, where the
// pointers are null, and are correctly excluded: they never entered the
// batch.
thread_local std::vector<jrprof::BatchRequestSample>* t_batchSamples =
    nullptr;
thread_local std::vector<jrobs::SpanRecord>* t_batchSpans = nullptr;

}  // namespace

// --- Box ------------------------------------------------------------------------

void RoutingService::Box::add(RowCol rc) {
  r0 = std::min<int>(r0, rc.row);
  c0 = std::min<int>(c0, rc.col);
  r1 = std::max<int>(r1, rc.row);
  c1 = std::max<int>(c1, rc.col);
}

void RoutingService::Box::expand(int margin) {
  r0 -= margin;
  c0 -= margin;
  r1 += margin;
  c1 += margin;
}

bool RoutingService::Box::intersects(const Box& o) const {
  return r0 <= o.r1 && o.r0 <= r1 && c0 <= o.c1 && o.c0 <= c1;
}

// --- Lifecycle --------------------------------------------------------------------

RoutingService::RoutingService(xcvsim::Fabric& fabric, ServiceOptions opts)
    : fabric_(&fabric),
      opts_(opts),
      router_(fabric, opts.router),
      claims_(opts.shardClaimMap
                  ? ClaimMap(fabric.graph(),
                             jrplan::RegionGrid(fabric.graph().device()))
                  : ClaimMap(fabric.graph().numNodes())),
      queue_(opts.queueCapacity) {
  extractor_ = std::make_unique<jrplan::FootprintExtractor>(
      fabric.graph(), fabric, opts_.router);
  // Lock-order checking opts in via JROUTE_LOCKCHECK, contention
  // profiling via JROUTE_PROF — both before the engine or any worker
  // takes its first instrumented lock.
  jrcheck::maybeArmFromEnv();
  jrprof::maybeArmFromEnv();
  // Spatial claim-conflict accounting (jrsh `heatmap conflicts`): same
  // device geometry, same cells, across every service on this fabric.
  const auto& dev = fabric.graph().device();
  jrobs::claimConflictGrid().configure(dev.rows, dev.cols);
  unsigned planThreads = opts_.planThreads != 0
                             ? opts_.planThreads
                             : std::max(1u, std::thread::hardware_concurrency());
  enginePlanner_ =
      std::make_unique<Planner>(*fabric_, claims_, opts_.router);
  for (unsigned i = 1; i < planThreads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
  if (!opts_.manualPump) {
    engine_ = std::thread([this] { engineLoop(); });
  }
}

RoutingService::~RoutingService() { stop(); }

void RoutingService::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  if (engine_.joinable()) {
    engine_.join();
  } else {
    // Manual-pump mode: drain whatever is still queued.
    while (pumpOnce() > 0) {
    }
  }
  {
    jrsync::MutexLock lk(workMu_);
    shutdownWorkers_ = true;
  }
  workCv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

// --- Sessions ---------------------------------------------------------------------

Session RoutingService::openSession() {
  return Session(*this, nextSessionId_.fetch_add(1));
}

void RoutingService::closeSession(Session& session, bool unrouteOwned) {
  if (!session.valid()) return;
  const uint64_t id = session.id();
  if (unrouteOwned) {
    std::vector<NodeId> owned = netsOf(id);
    jrsync::MutexLock lk(fabricMu_);
    for (const NodeId src : owned) {
      if (fabric_->isUsed(src)) unrouteNode(src);
    }
  }
  {
    jrsync::MutexLock lk(ownerMu_);
    std::erase_if(netOwner_,
                  [&](const auto& kv) { return kv.second == id; });
  }
  session.svc_ = nullptr;
  session.id_ = 0;
}

std::vector<NodeId> RoutingService::netsOf(uint64_t sessionId) const {
  jrsync::MutexLock lk(ownerMu_);
  std::vector<NodeId> out;
  for (const auto& [src, owner] : netOwner_) {
    if (owner == sessionId) out.push_back(src);
  }
  return out;
}

void RoutingService::registerNet(NodeId source, uint64_t sessionId) {
  jrsync::MutexLock lk(ownerMu_);
  netOwner_[source] = sessionId;
}

// --- Submission -------------------------------------------------------------------

std::future<RouteResult> RoutingService::submit(
    Op op, uint64_t sessionId, std::vector<EndPoint> sources,
    std::vector<EndPoint> sinks, Clock::time_point deadline) {
  Request req;
  req.op = op;
  req.id = nextRequestId_.fetch_add(1);
  req.sessionId = sessionId;
  req.sources = std::move(sources);
  req.sinks = std::move(sinks);
  req.deadline = deadline;
  req.enqueued = Clock::now();
  req.span.stamp(jrobs::SpanStage::kEnqueue);
  std::future<RouteResult> fut = req.promise.get_future();
  stats_.submitted.fetch_add(1);
  if (!queue_.tryPush(std::move(req))) {
    // tryPush does not consume the request on failure.
    const bool closed = queue_.closed();
    if (!closed) {
      stats_.overloaded.fetch_add(1);
      metrics().overloaded.add();
    }
    stats_.rejected.fetch_add(1);
    metrics().rejected.add();
    req.promise.set_value(rejected(
        closed ? Reject::kShutdown : Reject::kOverloaded,
        closed ? "service stopped" : "request queue at capacity"));
  }
  return fut;
}

void RoutingService::withRouter(
    const std::function<void(jroute::Router&)>& fn) {
  jrsync::MutexLock lk(fabricMu_);
  fn(router_);
}

// --- Engine -----------------------------------------------------------------------

void RoutingService::engineLoop() {
  std::vector<Request> batch;
  while (true) {
    batch.clear();
    {
      // Stage beacon: everything up to the fabric lock is queue time.
      jrprof::StageScope stage(jrprof::Stage::kQueue);
      queue_.drain(batch, opts_.batchSize, opts_.drainWait);
      if (batch.empty()) {
        if (queue_.closed() && queue_.size() == 0) return;
        continue;
      }
      for (Request& req : batch) {
        req.span.stamp(jrobs::SpanStage::kBatchClose);
      }
      if (opts_.batchLingerUs > 0 && batch.size() < opts_.batchSize) {
        // Adaptive close: hold the batch open for late arrivals until the
        // oldest request has aged batchLingerUs since enqueue. The bound
        // is on the *request's* age, not the linger itself, so a request
        // that already waited in the queue gets proportionally less.
        const size_t before = batch.size();
        queue_.drainUntil(
            batch, opts_.batchSize,
            batch.front().enqueued +
                std::chrono::microseconds(opts_.batchLingerUs));
        for (size_t i = before; i < batch.size(); ++i) {
          batch[i].span.stamp(jrobs::SpanStage::kBatchClose);
        }
        metrics().lingerAdded.add(batch.size() - before);
      }
      metrics().batchLingerUs.record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - batch.front().enqueued)
              .count()));
    }
    jrsync::MutexLock lk(fabricMu_);
    processBatch(batch);
  }
}

size_t RoutingService::pumpOnce() {
  std::vector<Request> batch;
  queue_.drain(batch, opts_.batchSize, std::chrono::milliseconds(0));
  if (batch.empty()) return 0;
  for (Request& req : batch) {
    req.span.stamp(jrobs::SpanStage::kBatchClose);
  }
  jrsync::MutexLock lk(fabricMu_);
  processBatch(batch);
  return batch.size();
}

void RoutingService::finish(Request& req, RouteResult res) {
  EngineMetrics& m = metrics();
  // Fold the lifecycle span first: the record rides along in any
  // anomaly bundle this resolution fires, and the SLO monitor judges
  // the request by the span's end-to-end time (identical by
  // construction to the sum of its segments).
  req.span.stamp(jrobs::SpanStage::kReply);
  const jrobs::SpanRecord srec = jrobs::spanAggregator().fold(
      req.span, req.id, req.sessionId, opName(req.op),
      res.ok() ? "accepted" : rejectName(res.reason), res.routedInParallel);
  jrobs::sloMonitor().observe(srec.e2eUs, res.ok());
  if (t_batchSamples != nullptr) {
    t_batchSamples->push_back(jrprof::BatchRequestSample{
        srec.segUs[2], srec.segUs[3], srec.segUs[4],
        res.routedInParallel});
    t_batchSpans->push_back(srec);
  }
  if (res.ok()) {
    stats_.accepted.fetch_add(1);
    m.accepted.add();
  } else {
    stats_.rejected.fetch_add(1);
    m.rejected.add();
    switch (res.reason) {
      case Reject::kContention:
        stats_.contention.fetch_add(1);
        m.contention.add();
        break;
      case Reject::kUnroutable:
        stats_.unroutable.fetch_add(1);
        m.unroutable.add();
        break;
      case Reject::kDeadlineExpired:
        stats_.deadlineExpired.fetch_add(1);
        m.deadline.add();
        break;
      default: break;
    }
    if (res.reason == Reject::kContention ||
        res.reason == Reject::kDeadlineExpired) {
      // Post-mortem hook. Counters are always bumped inside anomaly();
      // the bundle context is only assembled when a dump will be written.
      jrobs::FlightRecorder& fr = jrobs::flightRecorder();
      const char* kind =
          res.reason == Reject::kContention ? "contention" : "deadline";
      fr.note("service", kind, req.id, res.contendedNode);
      std::string extra;
      if (fr.armed()) {
        extra = "{\"request_id\":" + std::to_string(req.id) +
                ",\"session_id\":" + std::to_string(req.sessionId) +
                ",\"op\":\"" + opName(req.op) + "\",\"provenance\":";
        // The most useful context for a contention dump is the record of
        // the net that already holds the contested wire.
        std::optional<jrobs::NetProvenance> holder;
        if (res.contendedNode != kInvalidNode &&
            fabric_->isUsed(res.contendedNode)) {
          holder = jrobs::provenance().find(
              fabric_->netSource(fabric_->netOf(res.contendedNode)));
        }
        extra += holder ? holder->json() : "null";
        extra += ",\"span\":" + srec.json();
        extra += "}";
      }
      fr.anomaly(kind, res.detail, extra);
    }
  }
  if (req.enqueued != Clock::time_point{}) {
    m.requestLatencyUs.record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - req.enqueued)
            .count()));
  }
  req.promise.set_value(std::move(res));
}

std::optional<RouteResult> RoutingService::precheckRoute(const Request& req,
                                                         Box& box) {
  const xcvsim::Graph& g = fabric_->graph();
  if (req.sources.empty() || req.sinks.empty()) {
    return rejected(Reject::kBadArgument, "no endpoints");
  }
  if (req.op == Op::kRouteBus && req.sources.size() != req.sinks.size()) {
    return rejected(Reject::kBadArgument, "bus width mismatch");
  }
  const size_t numNets = req.op == Op::kRouteBus ? req.sources.size() : 1;
  for (size_t i = 0; i < numNets; ++i) {
    const auto pins = req.sources[i].resolve();
    if (pins.empty()) {
      return rejected(Reject::kBadArgument, "source has no bound pins");
    }
    for (const Pin& p : pins) box.add(p.rc);
    const NodeId n = g.nodeAt(pins.front().rc, pins.front().wire);
    if (n == kInvalidNode) {
      return rejected(Reject::kBadArgument, "source pin names no wire");
    }
    if (fabric_->isUsed(n)) {
      // Extending an existing net requires owning it.
      const NodeId netSrc = fabric_->netSource(fabric_->netOf(n));
      jrsync::MutexLock lk(ownerMu_);
      const auto it = netOwner_.find(netSrc);
      if (it == netOwner_.end() || it->second != req.sessionId) {
        return rejected(Reject::kNotOwner,
                        "net '" + fabric_->netName(fabric_->netOf(n)) +
                            "' is not owned by this session");
      }
    }
  }
  for (const EndPoint& ep : req.sinks) {
    for (const Pin& p : ep.resolve()) box.add(p.rc);
  }
  return std::nullopt;
}

void RoutingService::processBatch(std::vector<Request>& reqs) {
  JR_TRACE_SCOPE("service", "batch");
  stats_.batches.fetch_add(1);
  metrics().batches.add();
  metrics().batchSize.record(reqs.size());
  jrobs::flightRecorder().note("service", "batch", reqs.size(), queue_.size());
  metrics().queueDepth.set(static_cast<int64_t>(queue_.size()));
  const auto now = Clock::now();

  // Batch critical-path profiling (jrprof): collect every resolution's
  // folded span via finish(), time the batch wall, and fold the profile
  // into service.batch.* after the serialized phase.
  const bool profiling = jrprof::armed() && jrobs::compiledIn();
  const uint64_t profT0 =
      profiling ? jrobs::Tracer::instance().nowNs() : 0;
  std::vector<jrprof::BatchRequestSample> profSamples;
  std::vector<jrobs::SpanRecord> profSpans;
  if (profiling) {
    profSamples.reserve(reqs.size());
    profSpans.reserve(reqs.size());
    t_batchSamples = &profSamples;
    t_batchSpans = &profSpans;
  }

  std::vector<PlanJob> jobs;
  std::vector<Request*> serial;
  std::vector<Box> boxes;  // parallel to jobs in certify mode
  std::vector<Box> taken;
  jobs.reserve(reqs.size());
  {
    jrprof::StageScope stage(jrprof::Stage::kArbitrate);
    for (Request& req : reqs) {
      if (req.hasDeadline() && now > req.deadline) {
        finish(req, rejected(Reject::kDeadlineExpired,
                             "expired before execution"));
        continue;
      }
      if (!req.isRoute()) {
        serial.push_back(&req);
        continue;
      }
      Box box;
      if (auto rej = precheckRoute(req, box)) {
        finish(req, std::move(*rej));
        continue;
      }
      box.expand(opts_.disjointMargin);
      // Certify mode: every route request joins the batch jobs — the
      // certificate's interference coloring (cell-exact, finer than
      // boxes) decides concurrency, with the bbox partition kept only
      // for the unsound-footprint leftovers.
      if (opts_.certify) {
        PlanJob job;
        job.req = &req;
        job.owner = static_cast<uint32_t>(req.id % 0xFFFFFFFFu) + 1;
        jobs.push_back(std::move(job));
        boxes.push_back(box);
        continue;
      }
      const bool overlaps =
          std::any_of(taken.begin(), taken.end(),
                      [&](const Box& b) { return b.intersects(box); });
      if (overlaps) {
        serial.push_back(&req);
      } else {
        taken.push_back(box);
        PlanJob job;
        job.req = &req;
        job.owner = static_cast<uint32_t>(req.id % 0xFFFFFFFFu) + 1;
        jobs.push_back(std::move(job));
      }
    }
  }

  if (opts_.certify && !jobs.empty()) {
    // Certified phase: extract per-request claim footprints, greedy-color
    // the batch into conflict-free waves, and run each wave with claim
    // arbitration skipped. Unsound footprints fall through to the
    // ordinary bbox-partitioned arbitration phase below.
    JR_TRACE_SCOPE("service", "plan.certify");
    std::vector<jrplan::Footprint> fps;
    fps.reserve(jobs.size());
    {
      jrprof::StageScope stage(jrprof::Stage::kArbitrate);
      for (const PlanJob& job : jobs) fps.push_back(footprintOf(*job.req));
    }
    const jrplan::NoConflictCertificate cert =
        jrplan::planBatch(extractor_->grid(), std::move(fps));
    for (const jrplan::Wave& wave : cert.waves) {
      std::vector<PlanJob> waveJobs;
      waveJobs.reserve(wave.members.size());
      for (const size_t m : wave.members) {
        jobs[m].footprint = &cert.footprints[m];
        waveJobs.push_back(std::move(jobs[m]));
      }
      stats_.certifiedWaves.fetch_add(1);
      metrics().certifiedWaves.add();
      planAndCommit(waveJobs, serial, /*certified=*/true);
    }
    // Bbox-partition the uncertified leftovers among themselves; they
    // plan with arbitration against the post-wave fabric.
    std::vector<PlanJob> rest;
    rest.reserve(cert.uncertified.size());
    taken.clear();
    for (const size_t m : cert.uncertified) {
      const bool overlaps =
          std::any_of(taken.begin(), taken.end(),
                      [&](const Box& b) { return b.intersects(boxes[m]); });
      if (overlaps) {
        serial.push_back(jobs[m].req);
      } else {
        taken.push_back(boxes[m]);
        rest.push_back(std::move(jobs[m]));
      }
    }
    jobs = std::move(rest);
  }

  planAndCommit(jobs, serial, /*certified=*/false);

  // Serialized phase: conflicting, fallen-back, and unroute requests, in
  // arrival order, against the post-commit fabric.
  if (!serial.empty()) {
    JR_TRACE_SCOPE("service", "serial");
    jrprof::StageScope stage(jrprof::Stage::kCommit);
    for (Request* req : serial) {
      finish(*req, executeSerial(*req));
    }
  }

  if (profiling) {
    t_batchSamples = nullptr;
    t_batchSpans = nullptr;
    const uint64_t wallUs =
        (jrobs::Tracer::instance().nowNs() - profT0) / 1000;
    const jrprof::BatchProfile bp = jrprof::profileBatch(
        profSamples, wallUs,
        static_cast<unsigned>(workers_.size()) + 1);
    if (jrprof::recordBatch(bp)) {
      // New-worst low-efficiency batch: bundle its profile and worst
      // spans so the page names the requests that serialized it.
      std::sort(profSpans.begin(), profSpans.end(),
                [](const jrobs::SpanRecord& a, const jrobs::SpanRecord& b) {
                  return a.e2eUs > b.e2eUs;
                });
      std::string extra = "{\"batch\":" + bp.json() + ",\"spans\":[";
      const size_t worst = std::min<size_t>(profSpans.size(), 3);
      for (size_t i = 0; i < worst; ++i) {
        if (i > 0) extra += ",";
        extra += profSpans[i].json();
      }
      extra += "]}";
      jrobs::flightRecorder().anomaly(
          jrprof::kLowEfficiency,
          "batch parallel efficiency " +
              std::to_string(static_cast<int>(bp.efficiency * 100.0)) +
              "% across " + std::to_string(bp.requests) + " requests",
          extra);
    }
  }

  // Paranoid oracle: the batch is quiescent — every txn has committed or
  // rolled back and every planning claim must have been released — so the
  // full static rule set must hold. The per-batch pass includes the
  // bitstream decode the per-txn checks skip.
  if (opts_.drcParanoid) {
    JR_TRACE_SCOPE("service", "drc.batch");
    jrprof::StageScope stage(jrprof::Stage::kCommit);
    const uint64_t t0 = jrobs::Tracer::instance().nowNs();
    std::vector<std::pair<NodeId, uint64_t>> owners;
    jrdrc::enforce(drcInput(/*includeBitstream=*/true, owners), "batch");
    metrics().batchDrcUs.record(
        (jrobs::Tracer::instance().nowNs() - t0) / 1000);
  }
}

void RoutingService::planAndCommit(std::vector<PlanJob>& jobs,
                                   std::vector<Request*>& serial,
                                   bool certified) {
  if (jobs.empty()) return;
  {
    // Parallel phase: fabric frozen, workers + engine plan concurrently.
    JR_TRACE_SCOPE("service", "plan.parallel");
    jrprof::StageScope planStage(jrprof::Stage::kPlan);
    PlanPhase phase;
    phase.jobs = &jobs;
    const size_t numWorkers = workers_.size();
    if (numWorkers > 0) {
      {
        jrsync::MutexLock lk(workMu_);
        phase_ = &phase;
        ++workGen_;
      }
      workCv_.notify_all();
    }
    runJobs(phase, *enginePlanner_);
    if (numWorkers > 0) {
      jrsync::MutexLock lk(workMu_);
      doneCv_.wait(workMu_, [&]() JR_REQUIRES(workMu_) {
        return phase.workersDone.load(std::memory_order_acquire) ==
               numWorkers;
      });
      phase_ = nullptr;
    }
  }

  if (certified && opts_.planParanoid) {
    // Paranoid cross-check: certified plans skipped CAS arbitration, so
    // re-run it now over every node each plan would claim, plus the
    // footprint-containment invariant ("routed wires ⊆ footprint"). Any
    // failure means the certificate lied; that must never happen, so it
    // escapes the engine thread and terminates the process (mirroring
    // JROUTE_DRC_PARANOID). Successful claims are released by the commit
    // loop's releaseAll below.
    for (PlanJob& job : jobs) {
      if (!job.plan.found) continue;
      metrics().paranoidChecks.add();
      for (const NodeId n : job.plan.claimed) {
        const bool contained =
            job.footprint->allowsNode(fabric_->graph(), n);
        if (!contained || !claims_.claim(n, job.owner)) {
          stats_.paranoidDisagreements.fetch_add(1);
          metrics().paranoidDisagreements.add();
          throw JRouteError(
              std::string("certified plan disagreement: node ") +
              fabric_->graph().nodeName(n) +
              (contained ? " lost arbitration within a certified wave"
                         : " escaped its plan footprint") +
              " (request " + std::to_string(job.req->id) + ")");
        }
      }
    }
  }

  // Commit phase: apply plans serially, in submission order.
  JR_TRACE_SCOPE("service", "commit");
  jrprof::StageScope commitStage(jrprof::Stage::kCommit);
  for (PlanJob& job : jobs) {
    stats_.claimRetries.fetch_add(job.plan.retries);
    metrics().claimRetries.add(job.plan.retries);
    job.req->span.stamp(jrobs::SpanStage::kArbitration);
    if (job.plan.found) {
      RouteResult res;
      if (commitPlan(*job.req, job, res)) {
        claims_.releaseAll(job.plan.claimed, job.owner);
        finish(*job.req, std::move(res));
        continue;
      }
    }
    claims_.releaseAll(job.plan.claimed, job.owner);
    if (job.plan.authoritative) {
      RouteResult rej = rejected(job.plan.reason, job.plan.detail);
      rej.contendedNode = job.plan.contendedNode;
      finish(*job.req, std::move(rej));
    } else {
      stats_.planFallbacks.fetch_add(1);
      metrics().planFallbacks.add();
      if (certified) {
        stats_.certifiedFallbacks.fetch_add(1);
        metrics().certifiedFallbacks.add();
      }
      serial.push_back(job.req);
    }
  }
}

jrplan::Footprint RoutingService::footprintOf(const Request& req) {
  // Mirror the planner's request → nets decomposition: p2p/fanout build
  // one net from the source's first pin to every resolved sink pin; a
  // bus is the union of its per-bit nets. Conservative in sink choice —
  // the planner may pick any resolved pin, so all of them enter.
  jrplan::Footprint fp(extractor_->grid());
  const size_t numNets = req.op == Op::kRouteBus ? req.sources.size() : 1;
  bool first = true;
  for (size_t i = 0; i < numNets; ++i) {
    jrplan::RouteSpec spec;
    spec.op = jrplan::SpecOp::kFanout;
    const auto srcPins = req.sources[i].resolve();
    if (srcPins.empty()) {
      fp.markUnsound();
      return fp;
    }
    spec.srcs.push_back(srcPins.front());
    if (req.op == Op::kRouteBus) {
      for (const Pin& p : req.sinks[i].resolve()) spec.sinks.push_back(p);
    } else {
      for (const EndPoint& ep : req.sinks) {
        for (const Pin& p : ep.resolve()) spec.sinks.push_back(p);
      }
    }
    jrplan::Footprint one = extractor_->extract(spec);
    if (first) {
      fp = std::move(one);
      first = false;
    } else {
      fp.unite(one);  // unite ANDs soundness: one unsound bit poisons all
    }
  }
  return fp;
}

void RoutingService::workerLoop() {
  Planner planner(*fabric_, claims_, opts_.router);
  uint64_t seen = 0;
  while (true) {
    PlanPhase* phase = nullptr;
    {
      jrsync::MutexLock lk(workMu_);
      workCv_.wait(workMu_, [&]() JR_REQUIRES(workMu_) {
        return shutdownWorkers_ || workGen_ != seen;
      });
      if (shutdownWorkers_) return;
      seen = workGen_;
      phase = phase_;
    }
    if (phase != nullptr) runJobs(*phase, planner);
    {
      jrsync::MutexLock lk(workMu_);
      if (phase != nullptr) {
        phase->workersDone.fetch_add(1, std::memory_order_release);
      }
    }
    doneCv_.notify_all();
  }
}

void RoutingService::runJobs(PlanPhase& phase, Planner& planner) {
  jrprof::StageScope stage(jrprof::Stage::kPlan);
  while (true) {
    const size_t i = phase.next.fetch_add(1);
    if (i >= phase.jobs->size()) return;
    PlanJob& job = (*phase.jobs)[i];
    // The planning thread owns this request's span until the engine
    // observes workersDone (release/acquire), so the cross-thread
    // stamps are ordered like the plan itself.
    job.req->span.stamp(jrobs::SpanStage::kPlanStart);
    job.plan = job.footprint != nullptr
                   ? planner.planCertified(job.owner, *job.req,
                                           *job.footprint)
                   : planner.plan(job.owner, *job.req);
    job.req->span.stamp(jrobs::SpanStage::kPlanEnd);
  }
}

// --- Commit and serialized execution ---------------------------------------------

bool RoutingService::commitPlan(Request& req, PlanJob& job,
                                RouteResult& out) {
  const bool certified = job.footprint != nullptr;
  RouteTxn txn(router_);
  NodeId firstSrc = kInvalidNode;
  try {
    std::vector<NodeId> newlyOwned;
    std::vector<NodeId> netSources;
    std::vector<size_t> pipsPerNet;
    for (const PlannedNet& pn : job.plan.nets) {
      NetId net = pn.existing;
      if (net == kInvalidNet) {
        net = txn.ensureNet(EndPoint(pn.srcPin),
                            "s" + std::to_string(req.sessionId) + ":" +
                                fabric_->graph().nodeName(pn.srcNode));
        newlyOwned.push_back(pn.srcNode);
      }
      txn.commitChain(pn.edges, net);
      netSources.push_back(pn.srcNode);
      pipsPerNet.push_back(pn.edges.size());
      if (firstSrc == kInvalidNode) firstSrc = pn.srcNode;
    }
    txn.commit();
    req.span.stamp(jrobs::SpanStage::kCommit);
    for (const NodeId src : newlyOwned) registerNet(src, req.sessionId);
    recordProvenance(req, /*parallel=*/true, certified, netSources,
                     pipsPerNet, job.plan.templateHits,
                     job.plan.shapeReuseHits, job.plan.mazeRuns,
                     job.plan.visits, job.plan.retries,
                     jrobs::classifySelector(job.plan.selTemplate,
                                             job.plan.selLongLine,
                                             job.plan.selMaze));
    stats_.parallelPlanned.fetch_add(1);
    metrics().parallelPlanned.add();
    if (certified) {
      stats_.certifiedPlanned.fetch_add(1);
      metrics().certifiedRequests.add();
    }
    out = accepted(firstSrc, /*parallel=*/true);
    return true;
  } catch (const JRouteError& e) {
    // A plan that does not apply cleanly (should be rare: claims make
    // plans disjoint) is retried on the authoritative serialized path.
    txn.rollback();
    jrobs::flightRecorder().anomaly(
        "rollback", std::string("parallel plan failed to apply: ") + e.what(),
        "{\"request_id\":" + std::to_string(req.id) + "}");
    return false;
  }
}

RouteResult RoutingService::executeSerial(Request& req) {
  if (req.hasDeadline() && Clock::now() > req.deadline) {
    return rejected(Reject::kDeadlineExpired, "expired before execution");
  }
  if (req.op == Op::kUnroute) return executeUnroute(req);

  // Serialized execution re-stamps plan/arbitration/commit: after a
  // parallel fallback these overwrite the abandoned attempt's stamps,
  // so the span attributes the time the authoritative path spent.
  req.span.stamp(jrobs::SpanStage::kPlanStart);

  // The fabric may have changed since the batch was classified; re-check.
  Box box;
  if (auto rej = precheckRoute(req, box)) return std::move(*rej);

  const xcvsim::Graph& g = fabric_->graph();
  RouteTxn txn(router_);
  // Per-request search-effort deltas for provenance: the router's
  // cumulative counters bracket this txn (the engine serializes fabric
  // access, so no other request advances them in between).
  const jroute::RouteStats before = router_.stats();
  try {
    const size_t numNets = req.op == Op::kRouteBus ? req.sources.size() : 1;
    std::vector<NodeId> srcNodes;
    std::vector<NodeId> newlyOwned;
    for (size_t i = 0; i < numNets; ++i) {
      const Pin p = req.sources[i].resolve().front();
      const NodeId n = g.nodeAt(p.rc, p.wire);
      srcNodes.push_back(n);
      if (!fabric_->isUsed(n)) {
        txn.ensureNet(req.sources[i], "s" + std::to_string(req.sessionId) +
                                          ":" + g.nodeName(n));
        newlyOwned.push_back(n);
      }
    }
    if (req.op == Op::kRouteBus) {
      txn.routeBus(req.sources, req.sinks);
    } else {
      txn.route(req.sources.front(), req.sinks);
    }
    // The journal dies with commit(); count each net's staged PIPs first.
    std::vector<size_t> pipsPerNet;
    pipsPerNet.reserve(srcNodes.size());
    for (const NodeId src : srcNodes) {
      pipsPerNet.push_back(
          fabric_->isUsed(src) ? txn.stagedPipsFor(fabric_->netOf(src)) : 0);
    }
    req.span.stamp(jrobs::SpanStage::kPlanEnd);
    req.span.stamp(jrobs::SpanStage::kArbitration);
    txn.commit();
    req.span.stamp(jrobs::SpanStage::kCommit);
    for (const NodeId src : newlyOwned) registerNet(src, req.sessionId);
    const jroute::RouteStats after = router_.stats();
    recordProvenance(req, /*parallel=*/false, /*certified=*/false,
                     srcNodes, pipsPerNet,
                     after.templateHits - before.templateHits,
                     after.shapeReuseHits - before.shapeReuseHits,
                     after.mazeRuns - before.mazeRuns,
                     (after.templateVisits - before.templateVisits) +
                         (after.mazeVisits - before.mazeVisits),
                     /*claimRetries=*/0,
                     jrobs::classifySelector(
                         after.selTemplate - before.selTemplate,
                         after.selLongLine - before.selLongLine,
                         after.selMaze - before.selMaze));
    stats_.serialRouted.fetch_add(1);
    metrics().serialRouted.add();
    return accepted(srcNodes.front(), /*parallel=*/false);
  } catch (const ContentionError& e) {
    txn.rollback();
    RouteResult rej = rejected(Reject::kContention, e.what());
    rej.contendedNode = e.node();
    return rej;
  } catch (const UnroutableError& e) {
    txn.rollback();
    return rejected(Reject::kUnroutable, e.what());
  } catch (const JRouteError& e) {
    txn.rollback();
    return rejected(Reject::kBadArgument, e.what());
  }
}

RouteResult RoutingService::executeUnroute(Request& req) {
  const xcvsim::Graph& g = fabric_->graph();
  if (req.sources.empty()) {
    return rejected(Reject::kBadArgument, "no source to unroute");
  }
  const auto pins = req.sources.front().resolve();
  if (pins.empty()) {
    return rejected(Reject::kBadArgument, "source has no bound pins");
  }
  const NodeId n = g.nodeAt(pins.front().rc, pins.front().wire);
  if (n == kInvalidNode) {
    return rejected(Reject::kBadArgument, "source pin names no wire");
  }
  if (!fabric_->isUsed(n)) {
    return rejected(Reject::kBadArgument,
                    g.nodeName(n) + " is not routed");
  }
  const NetId net = fabric_->netOf(n);
  const NodeId netSrc = fabric_->netSource(net);
  {
    jrsync::MutexLock lk(ownerMu_);
    const auto it = netOwner_.find(netSrc);
    if (it == netOwner_.end() || it->second != req.sessionId) {
      return rejected(Reject::kNotOwner,
                      "net '" + fabric_->netName(net) +
                          "' is not owned by this session");
    }
  }
  unrouteNode(netSrc);
  req.span.stamp(jrobs::SpanStage::kCommit);
  {
    jrsync::MutexLock lk(ownerMu_);
    netOwner_.erase(netSrc);
  }
  stats_.serialRouted.fetch_add(1);
  metrics().serialRouted.add();
  return accepted(netSrc, /*parallel=*/false);
}

void RoutingService::unrouteNode(NodeId source) {
  const NetId net = fabric_->netOf(source);
  const auto hops = traceForward(*fabric_, source);
  // Leaf-side first keeps the fabric consistent at every step.
  for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
    fabric_->turnOff(it->edge);
  }
  if (fabric_->netSource(net) == source) fabric_->removeNet(net);
  // The net is gone; its provenance record goes with it ("rolled-back or
  // unrouted nets have none").
  jrobs::provenance().forget(source);
  jrobs::flightRecorder().note("service", "unroute", source, net);
}

void RoutingService::recordProvenance(
    const Request& req, bool parallel, bool certified,
    const std::vector<NodeId>& netSources,
    const std::vector<size_t>& pipsPerNet, uint64_t templateHits,
    uint64_t shapeReuseHits, uint64_t mazeRuns, uint64_t visits,
    uint64_t claimRetries, const char* selector) {
  if (!jrobs::compiledIn()) return;  // compile-time: the stub build pays 0
  uint64_t latencyUs = 0;
  if (req.enqueued != Clock::time_point{}) {
    latencyUs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - req.enqueued)
            .count());
  }
  const char* algo =
      jrobs::classifyAlgorithm(templateHits, mazeRuns, shapeReuseHits);
  // Bus bits are one net per source/sink pair; p2p/fanout put every sink
  // on the single net.
  const uint64_t sinksPerNet =
      req.op == Op::kRouteBus ? 1 : static_cast<uint64_t>(req.sinks.size());
  for (size_t i = 0; i < netSources.size(); ++i) {
    const NodeId src = netSources[i];
    jrobs::NetProvenance rec;
    rec.netSource = src;
    if (fabric_->isUsed(src)) rec.netName = fabric_->netName(fabric_->netOf(src));
    rec.requestId = req.id;
    rec.sessionId = req.sessionId;
    rec.op = opName(req.op);
    rec.algorithm = algo;
    rec.selector = selector;
    rec.parallel = parallel;
    rec.certified = certified;
    rec.pips = i < pipsPerNet.size() ? pipsPerNet[i] : 0;
    rec.sinks = sinksPerNet;
    rec.searchVisits = visits;
    rec.claimRetries = claimRetries;
    rec.latencyUs = latencyUs;
    rec.txn = "committed";
    // The committing txn ran the paranoid rule set and did not throw.
    rec.drc = jrdrc::paranoidEnabled() ? "pass" : "unchecked";
    jrobs::provenance().record(std::move(rec));
    jrobs::flightRecorder().note("service", "commit", req.id, src);
  }
}

jrdrc::DrcInput RoutingService::drcInput(
    bool includeBitstream,
    std::vector<std::pair<NodeId, uint64_t>>& ownersStorage) const {
  jrdrc::DrcInput in;
  in.fabric = fabric_;
  in.router = &router_;
  in.claimOwner = [this](NodeId n) { return claims_.ownerOf(n); };
  in.checkBitstream = includeBitstream;
  {
    jrsync::MutexLock lk(ownerMu_);
    ownersStorage.assign(netOwner_.begin(), netOwner_.end());
  }
  in.netOwners = &ownersStorage;
  return in;
}

jrdrc::DrcReport RoutingService::runDrc(bool includeBitstream) {
  jrsync::MutexLock lk(fabricMu_);
  std::vector<std::pair<NodeId, uint64_t>> owners;
  return jrdrc::runDrc(drcInput(includeBitstream, owners));
}

jrobs::MetricsSnapshot RoutingService::snapshotMetrics() const {
  metrics().queueDepth.set(static_cast<int64_t>(queue_.size()));
  if (jrobs::compiledIn()) {
    {
      jrsync::MutexLock lk(fabricMu_);
      publishCongestionGauges();
    }
    // Concurrency-checker health: mostly zeros when disarmed, the live
    // acquisition/edge/finding counts when JROUTE_LOCKCHECK armed it.
    jrcheck::Checker& chk = jrcheck::activeChecker();
    const jrcheck::CheckStats cs = chk.statsSnapshot();
    jrobs::registry().gauge("service.lockcheck.armed").set(chk.armed() ? 1 : 0);
    jrobs::registry()
        .gauge("service.lockcheck.locks")
        .set(static_cast<int64_t>(cs.locksRegistered));
    jrobs::registry()
        .gauge("service.lockcheck.acquires")
        .set(static_cast<int64_t>(cs.acquires));
    jrobs::registry()
        .gauge("service.lockcheck.order_edges")
        .set(static_cast<int64_t>(cs.orderEdges));
    jrobs::registry()
        .gauge("service.lockcheck.findings")
        .set(static_cast<int64_t>(cs.findings));
    jrobs::registry()
        .gauge("service.lockcheck.perturbations")
        .set(static_cast<int64_t>(cs.perturbations));
    // SLO state as gauges, so one `stats` snapshot carries objective,
    // rolling burn rates (x1000 — gauges are integers), and breaches.
    const jrobs::SloReport slo = jrobs::sloMonitor().report();
    jrobs::registry().gauge("service.slo.enabled").set(slo.config.enabled);
    jrobs::registry()
        .gauge("service.slo.latency_objective_us")
        .set(static_cast<int64_t>(slo.config.latencyUs));
    jrobs::registry()
        .gauge("service.slo.target_ppm")
        .set(static_cast<int64_t>(slo.config.target * 1e6));
    jrobs::registry()
        .gauge("service.slo.observed")
        .set(static_cast<int64_t>(slo.observed));
    jrobs::registry()
        .gauge("service.slo.good")
        .set(static_cast<int64_t>(slo.good));
    jrobs::registry()
        .gauge("service.slo.breaches")
        .set(static_cast<int64_t>(slo.breaches));
    for (const jrobs::SloWindow& w : slo.windows) {
      jrobs::registry()
          .gauge("service.slo.burn_" + std::to_string(w.seconds) +
                 "s_milli")
          .set(static_cast<int64_t>(w.burn * 1000.0));
    }
    // Profiler health: armed flag, locks with profiled acquisitions,
    // batches profiled, sampler progress. The data itself lives in the
    // sync.<name>.* and service.batch.* metrics jrprof records.
    const jrprof::ProfReport prof = jrprof::report();
    jrobs::registry().gauge("service.prof.armed").set(prof.armed ? 1 : 0);
    jrobs::registry()
        .gauge("service.prof.locks")
        .set(static_cast<int64_t>(prof.locks.locks.size()));
    jrobs::registry()
        .gauge("service.prof.batches")
        .set(static_cast<int64_t>(prof.batches));
    jrobs::registry()
        .gauge("service.prof.sampler_ticks")
        .set(static_cast<int64_t>(prof.stages.ticks));
  }
  return jrobs::registry().snapshot();
}

void RoutingService::publishCongestionGauges() const {
  // Per-region congestion gauges, named by grid cell. Gauge registration
  // is idempotent and the cell count is small (a few dozen), so the
  // registry holds one gauge per region after the first snapshot.
  const jrobs::Heatmap occ = jrdrc::occupancyHeatmap(*fabric_);
  for (int r = 0; r < occ.gridRows; ++r) {
    for (int c = 0; c < occ.gridCols; ++c) {
      jrobs::registry()
          .gauge("fabric.region.r" + std::to_string(r) + "c" +
                 std::to_string(c) + ".occupancy")
          .set(static_cast<int64_t>(occ.at(r, c)));
    }
  }
  const jrobs::Heatmap conf = jrobs::claimConflictGrid().snapshot("");
  for (int r = 0; r < conf.gridRows; ++r) {
    for (int c = 0; c < conf.gridCols; ++c) {
      jrobs::registry()
          .gauge("service.claim.region.r" + std::to_string(r) + "c" +
                 std::to_string(c) + ".conflicts")
          .set(static_cast<int64_t>(conf.at(r, c)));
    }
  }
}

jrobs::Heatmap RoutingService::occupancy(int cellRows, int cellCols) const {
  jrsync::MutexLock lk(fabricMu_);
  return jrdrc::occupancyHeatmap(*fabric_, cellRows, cellCols);
}

jrobs::Heatmap RoutingService::claimConflicts() const {
  return jrobs::claimConflictGrid().snapshot("claim conflicts");
}

ServiceStats RoutingService::stats() const {
  ServiceStats s;
  s.submitted = stats_.submitted.load();
  s.accepted = stats_.accepted.load();
  s.rejected = stats_.rejected.load();
  s.overloaded = stats_.overloaded.load();
  s.deadlineExpired = stats_.deadlineExpired.load();
  s.contention = stats_.contention.load();
  s.unroutable = stats_.unroutable.load();
  s.batches = stats_.batches.load();
  s.parallelPlanned = stats_.parallelPlanned.load();
  s.serialRouted = stats_.serialRouted.load();
  s.planFallbacks = stats_.planFallbacks.load();
  s.claimRetries = stats_.claimRetries.load();
  s.certifiedPlanned = stats_.certifiedPlanned.load();
  s.certifiedWaves = stats_.certifiedWaves.load();
  s.certifiedFallbacks = stats_.certifiedFallbacks.load();
  s.paranoidDisagreements = stats_.paranoidDisagreements.load();
  return s;
}

}  // namespace jrsvc
