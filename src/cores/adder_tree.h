// Adder tree: a two-level reduction of four operand buses through three
// child ConstAdder cores — the deepest hierarchical core in the library
// ("cores can contain cores", section 3.2), with all inter-child wiring
// done port-to-port through the bus call.
#pragma once

#include <memory>

#include "cores/const_adder.h"

namespace jroute {

class AdderTree : public RtpCore {
 public:
  explicit AdderTree(int width);

  int width() const { return width_; }

  /// Ports: groups "a0".."a3" (the four operand buses, aliased onto the
  /// leaf adders' inputs) and "sum" (the root adder's outputs).
  static constexpr const char* kOutGroup = "sum";

 protected:
  void doBuild(Router& router) override;
  void doRemove(Router& router) override;

 private:
  int width_;
  ConstAdder left_;
  ConstAdder right_;
  ConstAdder root_;
};

}  // namespace jroute
