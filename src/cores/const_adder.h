// Constant adder: out = in + K, one result bit per slice, two per tile,
// laid out as a vertical strip. Sum LUTs are programmed from the constant
// (run-time parameterizable), and the carry chain is built with JRoute
// auto-routing between adjacent slices — a core designed exactly per the
// section 3.2 guidelines (grouped ports, router call per port, getPorts).
#pragma once

#include "cores/rtp_core.h"

namespace jroute {

class ConstAdder : public RtpCore {
 public:
  ConstAdder(int width, uint32_t constant);

  int width() const { return width_; }
  uint32_t constant() const { return constant_; }

  /// Change the constant. If the core is placed, the LUTs are rewritten in
  /// place (pure bitstream update — no rerouting needed).
  void setConstant(Router& router, uint32_t constant);

  /// Ports: group "a" (inputs, width bits), group "sum" (outputs).
  static constexpr const char* kInGroup = "a";
  static constexpr const char* kOutGroup = "sum";

 protected:
  void doBuild(Router& router) override;

 private:
  void programLuts(Router& router);

  int width_;
  uint32_t constant_;
};

}  // namespace jroute
