#include "cores/block_ram.h"

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::ArgumentError;
using xcvsim::bramAd;
using xcvsim::bramDi;
using xcvsim::bramDo;
using xcvsim::kBramBitsPerBlock;
using xcvsim::kBramPinsPerTile;
using xcvsim::kBramRowsPerBlock;

BlockRam::BlockRam(BramSide side, int blockIndex)
    : RtpCore("BlockRam" + std::to_string(blockIndex) +
                  (side == BramSide::West ? "W" : "E"),
              kBramRowsPerBlock, 1),
      side_(side),
      blockIndex_(blockIndex) {
  if (blockIndex < 0) {
    throw ArgumentError("BlockRam: negative block index");
  }
  for (int i = 0; i < kBramRowsPerBlock * kBramPinsPerTile; ++i) {
    definePort("do[" + std::to_string(i) + "]", PortDir::Output, kOutGroup);
    definePort("di[" + std::to_string(i) + "]", PortDir::Input, kInGroup);
    definePort("addr[" + std::to_string(i) + "]", PortDir::Input,
               kAddrGroup);
  }
}

RowCol BlockRam::expectedOrigin(const xcvsim::DeviceSpec& dev) const {
  return {static_cast<int16_t>(blockIndex_ * kBramRowsPerBlock),
          static_cast<int16_t>(side_ == BramSide::West ? 0 : dev.cols - 1)};
}

void BlockRam::doBuild(Router& router) {
  const auto& dev = router.fabric().graph().device();
  if (blockIndex_ >=
      router.fabric().jbits().bitstream().bramBlocksPerColumn()) {
    throw ArgumentError("BlockRam: block index beyond the column");
  }
  // BRAM blocks have fixed positions: the core must be placed exactly on
  // its block's CLB strip.
  if (origin() != expectedOrigin(dev)) {
    throw ArgumentError("BlockRam: block " + std::to_string(blockIndex_) +
                        " must be placed at its fixed position");
  }
  const auto doP = getPorts(kOutGroup);
  const auto diP = getPorts(kInGroup);
  const auto adP = getPorts(kAddrGroup);
  for (int r = 0; r < kBramRowsPerBlock; ++r) {
    for (int k = 0; k < kBramPinsPerTile; ++k) {
      const auto idx = static_cast<size_t>(r * kBramPinsPerTile + k);
      doP[idx]->bindPin(at(r, 0, bramDo(k)));
      diP[idx]->bindPin(at(r, 0, bramDi(k)));
      adP[idx]->bindPin(at(r, 0, bramAd(k)));
    }
  }
}

void BlockRam::doRemove(Router& router) {
  // Wipe the block's contents, like LUTs are wiped for CLB cores. placed_
  // is still true at this point of the teardown.
  auto& bs = router.fabric().jbits().bitstream();
  for (int bit = 0; bit < kBramBitsPerBlock; ++bit) {
    bs.setBramBit(static_cast<int>(side_), blockIndex_, bit, false);
  }
}

void BlockRam::writeWord(Router& router, int addr, uint16_t value) {
  if (!placed()) throw ArgumentError("BlockRam: place the core first");
  if (addr < 0 || addr >= kBramBitsPerBlock / 16) {
    throw ArgumentError("BlockRam: address out of range");
  }
  auto& bs = router.fabric().jbits().bitstream();
  for (int b = 0; b < 16; ++b) {
    bs.setBramBit(static_cast<int>(side_), blockIndex_, addr * 16 + b,
                  (value >> b) & 1);
  }
}

uint16_t BlockRam::readWord(const Router& router, int addr) const {
  if (!placed()) throw ArgumentError("BlockRam: place the core first");
  if (addr < 0 || addr >= kBramBitsPerBlock / 16) {
    throw ArgumentError("BlockRam: address out of range");
  }
  const auto& bs = router.fabric().jbits().bitstream();
  uint16_t v = 0;
  for (int b = 0; b < 16; ++b) {
    if (bs.getBramBit(static_cast<int>(side_), blockIndex_,
                      addr * 16 + b)) {
      v = static_cast<uint16_t>(v | (1u << b));
    }
  }
  return v;
}

void BlockRam::load(Router& router, std::span<const uint16_t> words) {
  if (words.size() > static_cast<size_t>(kBramBitsPerBlock / 16)) {
    throw ArgumentError("BlockRam: load exceeds block capacity");
  }
  for (size_t a = 0; a < words.size(); ++a) {
    writeWord(router, static_cast<int>(a), words[a]);
  }
}

}  // namespace jroute
