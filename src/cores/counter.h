// Counter built from a constant adder with the output fed back — the
// paper's own composition example (section 4): "a counter can be made from
// a constant adder with the output fed back to one input ports and the
// other input set to a value of one." Demonstrates hierarchical cores:
// the child adder is placed inside this core's footprint and the feedback
// bus is routed port-to-port through the JRoute bus call.
#pragma once

#include "cores/const_adder.h"

namespace jroute {

class Counter : public RtpCore {
 public:
  explicit Counter(int width, uint32_t step = 1);

  int width() const { return width_; }

  /// Ports: group "q" — the count outputs (aliases of the adder's sums).
  static constexpr const char* kOutGroup = "q";

 protected:
  void doBuild(Router& router) override;
  void doRemove(Router& router) override;

 private:
  int width_;
  ConstAdder adder_;
};

}  // namespace jroute
