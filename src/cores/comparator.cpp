#include "cores/comparator.h"

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::slicePin;
using xcvsim::sliceOut;

Comparator::Comparator(int width)
    : RtpCore("Comparator" + std::to_string(width), (width + 1) / 2, 1),
      width_(width) {
  if (width < 1 || width > 32) {
    throw xcvsim::ArgumentError("Comparator width must be 1..32");
  }
  for (int i = 0; i < width; ++i) {
    definePort("a[" + std::to_string(i) + "]", PortDir::Input, kAGroup);
    definePort("b[" + std::to_string(i) + "]", PortDir::Input, kBGroup);
  }
  definePort("eq", PortDir::Output, kOutGroup);
}

void Comparator::doBuild(Router& router) {
  const auto a = getPorts(kAGroup);
  const auto b = getPorts(kBGroup);
  for (int i = 0; i < width_; ++i) {
    const int tile = i / 2;
    const int s = i % 2;
    // XNOR of the bit pair in the F-LUT (F1 = a, F2 = b), AND-chain in G.
    setLut(router, tile, 0, s * 2, 0x9999);
    setLut(router, tile, 0, s * 2 + 1, 0x8888);
    a[static_cast<size_t>(i)]->bindPin(at(tile, 0, slicePin(s, 0)));
    b[static_cast<size_t>(i)]->bindPin(at(tile, 0, slicePin(s, 1)));
  }
  // AND-reduction: each slice's X (xnor result) feeds the next slice's G1.
  for (int i = 0; i + 1 < width_; ++i) {
    const Pin from = at(i / 2, 0, sliceOut((i % 2) * 4));
    const Pin to = at((i + 1) / 2, 0, slicePin((i + 1) % 2, 4));
    router.route(EndPoint(from), EndPoint(to));
  }
  // Result leaves on the last slice's Y output.
  getPorts(kOutGroup)[0]->bindPin(
      at((width_ - 1) / 2, 0, sliceOut(((width_ - 1) % 2) * 4 + 2)));
}

}  // namespace jroute
