#include "cores/lfsr.h"

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::slicePin;
using xcvsim::sliceOut;

Lfsr::Lfsr(int width, uint32_t taps)
    : RtpCore("Lfsr" + std::to_string(width), (width + 1) / 2, 1),
      width_(width),
      taps_(taps) {
  if (width < 2 || width > 32) {
    throw xcvsim::ArgumentError("Lfsr width must be 2..32");
  }
  if (taps == 0) {
    throw xcvsim::ArgumentError("Lfsr needs at least one feedback tap");
  }
  for (int i = 0; i < width; ++i) {
    definePort("q[" + std::to_string(i) + "]", PortDir::Output, kOutGroup);
  }
}

Pin Lfsr::stageOut(int stage) const {
  return at(stage / 2, 0, sliceOut((stage % 2) * 4 + 1));  // XQ
}

void Lfsr::routeTaps(Router& router) {
  // Tapped stage outputs feed the feedback-XOR LUT inputs on slice 0 of
  // the first tile: up to four taps on G1..G4 (pins 4..7).
  int slot = 4;
  for (int i = 0; i < width_ && slot < 8; ++i) {
    if (!((taps_ >> i) & 1)) continue;
    router.route(EndPoint(stageOut(i)), EndPoint(at(0, 0, slicePin(0, slot))));
    ++slot;
  }
}

void Lfsr::doBuild(Router& router) {
  // Shift chain LUTs (identity into FF) and the feedback XOR LUT.
  for (int i = 0; i < width_; ++i) {
    setLut(router, i / 2, 0, (i % 2) * 2, 0xAAAA);
  }
  setLut(router, 0, 0, 0, 0x6996);  // 4-input parity for the XOR stage

  const auto q = getPorts(kOutGroup);
  for (int i = 0; i < width_; ++i) {
    q[static_cast<size_t>(i)]->bindPin(stageOut(i));
  }

  // Shift connections stage i -> stage i+1.
  for (int i = 0; i + 1 < width_; ++i) {
    router.route(EndPoint(stageOut(i)),
                 EndPoint(at((i + 1) / 2, 0, slicePin((i + 1) % 2, 0))));
  }
  routeTaps(router);
}

void Lfsr::setTaps(Router& router, uint32_t taps) {
  if (taps == 0) {
    throw xcvsim::ArgumentError("Lfsr needs at least one feedback tap");
  }
  if (!placed()) {
    taps_ = taps;
    return;
  }
  // Unroute the old tap nets: every tapped stage output drives a net that
  // also carries the shift chain, so unroute and rebuild the whole core's
  // internal nets — cheapest expressed as remove+place at the same spot.
  const RowCol where = origin();
  remove(router);
  taps_ = taps;
  place(router, where);
}

}  // namespace jroute
