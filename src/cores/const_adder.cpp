#include "cores/const_adder.h"

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::slicePin;
using xcvsim::sliceOut;

namespace {

/// Truth table of the sum LUT for one bit: sum = a ^ cin ^ k, with the
/// constant bit folded in (inputs: F1 = a, F2 = cin).
uint16_t sumLut(bool kBit) { return kBit ? 0x9999 : 0x6666; }

int tileOf(int bit) { return bit / 2; }
int sliceOf(int bit) { return bit % 2; }

}  // namespace

ConstAdder::ConstAdder(int width, uint32_t constant)
    : RtpCore("ConstAdder" + std::to_string(width), (width + 1) / 2, 1),
      width_(width),
      constant_(constant) {
  if (width < 1 || width > 32) {
    throw xcvsim::ArgumentError("ConstAdder width must be 1..32");
  }
  for (int i = 0; i < width; ++i) {
    definePort("a[" + std::to_string(i) + "]", PortDir::Input, kInGroup);
    definePort("sum[" + std::to_string(i) + "]", PortDir::Output, kOutGroup);
  }
}

void ConstAdder::programLuts(Router& router) {
  for (int i = 0; i < width_; ++i) {
    const bool kBit = (constant_ >> i) & 1;
    // LUT index: slice 0 F-LUT = 0, slice 1 F-LUT = 2.
    setLut(router, tileOf(i), 0, sliceOf(i) * 2, sumLut(kBit));
  }
}

void ConstAdder::doBuild(Router& router) {
  programLuts(router);

  const auto in = getPorts(kInGroup);
  const auto out = getPorts(kOutGroup);
  for (int i = 0; i < width_; ++i) {
    const int s = sliceOf(i);
    // Operand bit arrives on the slice's F1 pin; the sum leaves on X.
    in[static_cast<size_t>(i)]->bindPin(at(tileOf(i), 0, slicePin(s, 0)));
    out[static_cast<size_t>(i)]->bindPin(at(tileOf(i), 0, sliceOut(s * 4)));
  }

  // Carry chain: Y output of each slice feeds F2 of the next bit's slice.
  // Built with the auto-router — same-tile hops use the feedback PIPs,
  // tile-to-tile hops the direct connects or singles.
  for (int i = 0; i + 1 < width_; ++i) {
    const Pin carryOut = at(tileOf(i), 0, sliceOut(sliceOf(i) * 4 + 2));
    const Pin carryIn = at(tileOf(i + 1), 0, slicePin(sliceOf(i + 1), 1));
    router.route(EndPoint(carryOut), EndPoint(carryIn));
  }
}

void ConstAdder::setConstant(Router& router, uint32_t constant) {
  constant_ = constant;
  if (placed()) programLuts(router);
}

}  // namespace jroute
