// Block RAM: the last section 6 future-work item ("Block RAM will be
// supported in a future release of JRoute"), supported.
//
// The simulated device carries one BRAM column on each side of the CLB
// array. A block spans kBramRowsPerBlock CLB rows and exposes data-out,
// data-in, and address pins on each adjacent edge tile (4 of each per
// tile, so a 4-row block offers 16-bit ports). Contents (256 x 16) live
// in the BRAM frame columns of the bitstream, so loading or updating a
// RAM is partial reconfiguration like everything else.
//
// BlockRam is an RtpCore whose footprint is the adjacent CLB strip: its
// ports route through the ordinary fabric, and remove() detaches them
// like any core.
#pragma once

#include "cores/rtp_core.h"

namespace jroute {

/// Which BRAM column the block sits in.
enum class BramSide : uint8_t { West = 0, East = 1 };

class BlockRam : public RtpCore {
 public:
  /// Block `blockIndex` of the `side` column (blocks stack bottom-up,
  /// each spanning kBramRowsPerBlock CLB rows).
  BlockRam(BramSide side, int blockIndex);

  BramSide side() const { return side_; }
  int blockIndex() const { return blockIndex_; }

  /// Content access: 256 words of 16 bits, stored in the BRAM frames.
  /// Requires the core to be placed (the bitstream belongs to the fabric).
  void writeWord(Router& router, int addr, uint16_t value);
  uint16_t readWord(const Router& router, int addr) const;

  /// Fill the whole block from a span (up to 256 words).
  void load(Router& router, std::span<const uint16_t> words);

  /// Ports: "do" (16 data outputs), "di" (16 data inputs), "addr" (16
  /// address inputs).
  static constexpr const char* kOutGroup = "do";
  static constexpr const char* kInGroup = "di";
  static constexpr const char* kAddrGroup = "addr";

 protected:
  void doBuild(Router& router) override;
  void doRemove(Router& router) override;

 private:
  RowCol expectedOrigin(const xcvsim::DeviceSpec& dev) const;

  BramSide side_;
  int blockIndex_;
};

}  // namespace jroute
