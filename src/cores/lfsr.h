// Linear feedback shift register: `width` stages with XOR feedback taps —
// the classic run-time parameterizable pseudo-random source. The taps are
// a constructor parameter, so reseeding/re-polynomial-ing at run time is a
// LUT rewrite plus (when taps move) a reroute of the feedback net.
#pragma once

#include "cores/rtp_core.h"

namespace jroute {

class Lfsr : public RtpCore {
 public:
  /// `taps` is a bitmask over stages feeding the XOR (bit i = stage i).
  Lfsr(int width, uint32_t taps);

  int width() const { return width_; }
  uint32_t taps() const { return taps_; }

  /// Re-tap the polynomial at run time: unroutes the old tap nets,
  /// rewrites the feedback LUT, and routes the new taps.
  void setTaps(Router& router, uint32_t taps);

  /// Ports: group "q" — the register outputs.
  static constexpr const char* kOutGroup = "q";

 protected:
  void doBuild(Router& router) override;

 private:
  void routeTaps(Router& router);
  Pin stageOut(int stage) const;

  int width_;
  uint32_t taps_;
};

}  // namespace jroute
