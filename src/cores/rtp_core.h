// Run-time parameterizable (RTP) core framework — section 3.2's rules:
//
//   "With JRoute, a core can define ports. Ports are virtual pins that
//    provide input or output points to the core. ... There are routing
//    guidelines that need to be followed when designing a core. First,
//    each port needs to be in a group. ... Second, the router needs to be
//    called for each port defined. ... Finally, a getPorts() method must
//    be defined for each group, which returns the array of Ports
//    associated with that group."
//
// An RtpCore owns its ports for its whole lifetime (so the router's
// remembered connections stay valid across replace/relocate), configures
// its logic through JBits, and builds its internal routes through the
// JRoute API itself. place()/remove() are the RTR lifecycle: remove
// unroutes every net sourced inside the core, detaches incoming branches
// at the core's input pins, and wipes the logic configuration — after
// which the core can be re-placed anywhere and reconnected from the
// router's memory.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/endpoint.h"
#include "core/router.h"

namespace jroute {

class RtpCore {
 public:
  RtpCore(std::string name, int rows, int cols);
  virtual ~RtpCore() = default;

  RtpCore(const RtpCore&) = delete;
  RtpCore& operator=(const RtpCore&) = delete;

  const std::string& name() const { return name_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool placed() const { return placed_; }
  RowCol origin() const { return origin_; }

  /// Configure the core's logic and internal routing at `origin`.
  /// Throws ArgumentError when the footprint does not fit the device.
  void place(Router& router, RowCol origin);

  /// Undo place(): unroute internally sourced nets, detach incoming
  /// branches at this core's input pins, clear the logic configuration,
  /// and unbind the ports. Remembered port connections survive in the
  /// router (section 3.3).
  void remove(Router& router);

  /// The paper's getPorts(): the ports of one group, in definition order.
  std::vector<Port*> getPorts(std::string_view group) const;

  /// Same ports wrapped as EndPoints, ready for routing calls.
  std::vector<EndPoint> endPoints(std::string_view group) const;

  /// All group names, in first-definition order.
  std::vector<std::string> groups() const;

 protected:
  /// Subclass hook: bind ports, program LUTs, build internal routes.
  /// Called by place() with the origin already set; use at() for
  /// footprint-relative pins.
  virtual void doBuild(Router& router) = 0;

  /// Subclass hook for extra teardown (e.g. removing child cores). Runs
  /// after the standard unroute/wipe of remove(); unrouting is idempotent
  /// there because every step checks live usage first.
  virtual void doRemove(Router& router) { (void)router; }

  /// Define a port (constructor-time; the set of ports is fixed for the
  /// core's lifetime, only their pin bindings change).
  Port& definePort(std::string name, PortDir dir, std::string group);

  /// Footprint-relative pin. Precondition: placed().
  Pin at(int dRow, int dCol, LocalWire wire) const;

  /// Program a LUT of a footprint tile (0..3: S0F, S0G, S1F, S1G).
  void setLut(Router& router, int dRow, int dCol, int lut, uint16_t truth);

 private:
  std::string name_;
  int rows_;
  int cols_;
  bool placed_ = false;
  RowCol origin_{};
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace jroute
