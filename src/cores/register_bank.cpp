#include "cores/register_bank.h"

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::gclk;
using xcvsim::S0CLK;
using xcvsim::S1CLK;
using xcvsim::slicePin;
using xcvsim::sliceOut;

RegisterBank::RegisterBank(int width)
    : RtpCore("RegisterBank" + std::to_string(width), (width + 1) / 2, 1),
      width_(width) {
  if (width < 1 || width > 64) {
    throw xcvsim::ArgumentError("RegisterBank width must be 1..64");
  }
  for (int i = 0; i < width; ++i) {
    definePort("d[" + std::to_string(i) + "]", PortDir::Input, kInGroup);
    definePort("q[" + std::to_string(i) + "]", PortDir::Output, kOutGroup);
  }
}

void RegisterBank::doBuild(Router& router) {
  const auto d = getPorts(kInGroup);
  const auto q = getPorts(kOutGroup);
  for (int i = 0; i < width_; ++i) {
    const int tile = i / 2;
    const int s = i % 2;
    // Identity LUT in front of the flip-flop; FF-enable mode bit on.
    setLut(router, tile, 0, s * 2, 0xAAAA);
    router.fabric().jbits().setMiscBit(
        {static_cast<int16_t>(origin().row + tile), origin().col}, s, true);
    d[static_cast<size_t>(i)]->bindPin(at(tile, 0, slicePin(s, 0)));
    // Registered output is the XQ pin.
    q[static_cast<size_t>(i)]->bindPin(at(tile, 0, sliceOut(s * 4 + 1)));
  }
}

void RegisterBank::clockFrom(Router& router, int gclkIndex) {
  if (!placed()) {
    throw xcvsim::ArgumentError("RegisterBank: place the core first");
  }
  std::vector<EndPoint> sinks;
  for (int t = 0; t < rows(); ++t) {
    sinks.push_back(EndPoint(at(t, 0, S0CLK)));
    if (t * 2 + 1 < width_) sinks.push_back(EndPoint(at(t, 0, S1CLK)));
  }
  // The global net is addressable from any tile; use the bank's origin.
  router.route(EndPoint(at(0, 0, gclk(gclkIndex))),
               std::span<const EndPoint>(sinks));
}

}  // namespace jroute
