#include "cores/rtp_core.h"

#include "arch/wires.h"
#include "bitstream/pip_table.h"
#include "common/error.h"

namespace jroute {

using xcvsim::ArgumentError;
using xcvsim::kLutsPerTile;
using xcvsim::kMiscLogicBits;
using xcvsim::kSliceOutputs;
using xcvsim::S0CLK;
using xcvsim::S1CLK;
using xcvsim::sliceOut;

RtpCore::RtpCore(std::string name, int rows, int cols)
    : name_(std::move(name)), rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0) {
    throw ArgumentError("core '" + name_ + "' has an empty footprint");
  }
}

Port& RtpCore::definePort(std::string name, PortDir dir, std::string group) {
  ports_.push_back(
      std::make_unique<Port>(std::move(name), dir, std::move(group)));
  return *ports_.back();
}

Pin RtpCore::at(int dRow, int dCol, LocalWire wire) const {
  if (!placed_) {
    throw ArgumentError("core '" + name_ + "' is not placed");
  }
  return Pin(origin_.row + dRow, origin_.col + dCol, wire);
}

void RtpCore::setLut(Router& router, int dRow, int dCol, int lut,
                     uint16_t truth) {
  router.fabric().jbits().setLut(
      {static_cast<int16_t>(origin_.row + dRow),
       static_cast<int16_t>(origin_.col + dCol)},
      lut, truth);
}

void RtpCore::place(Router& router, RowCol origin) {
  if (placed_) {
    throw ArgumentError("core '" + name_ + "' is already placed");
  }
  const auto& dev = router.fabric().graph().device();
  if (origin.row < 0 || origin.col < 0 || origin.row + rows_ > dev.rows ||
      origin.col + cols_ > dev.cols) {
    throw ArgumentError("core '" + name_ + "' does not fit at R" +
                        std::to_string(origin.row) + "C" +
                        std::to_string(origin.col));
  }
  origin_ = origin;
  placed_ = true;
  for (auto& p : ports_) p->clearPins();
  try {
    doBuild(router);
  } catch (...) {
    placed_ = false;
    throw;
  }
}

void RtpCore::remove(Router& router) {
  if (!placed_) {
    throw ArgumentError("core '" + name_ + "' is not placed");
  }
  auto& fabric = router.fabric();
  // 1. Unroute every net sourced at a slice output inside the footprint
  //    (internal nets and outgoing port connections alike).
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const RowCol rc{static_cast<int16_t>(origin_.row + r),
                      static_cast<int16_t>(origin_.col + c)};
      for (int o = 0; o < kSliceOutputs; ++o) {
        const auto n = fabric.graph().nodeAt(rc, sliceOut(o));
        if (fabric.isUsed(n)) {
          router.unroute(EndPoint(Pin(rc, sliceOut(o))));
        }
      }
    }
  }
  // 1b. Nets sourced at output-port pins that are not slice outputs
  //     (BRAM data outputs, pad inputs bound to ports).
  for (const auto& p : ports_) {
    if (p->dir() != PortDir::Output) continue;
    for (const Pin& pin : p->pins()) {
      const auto n = fabric.graph().nodeAt(pin.rc, pin.wire);
      if (n != xcvsim::kInvalidNode && fabric.isUsed(n) &&
          fabric.driverOf(n) == xcvsim::kInvalidEdge) {
        router.unroute(EndPoint(pin));
      }
    }
  }
  // 2. Detach incoming branches: input-port pins and clock pins fed by
  //    nets whose sources live outside this core.
  const auto detach = [&](const Pin& pin) {
    const auto n = fabric.graph().nodeAt(pin.rc, pin.wire);
    if (n != xcvsim::kInvalidNode && fabric.isUsed(n) &&
        fabric.onOutCount(n) == 0) {
      router.reverseUnroute(EndPoint(pin));
    }
  };
  for (const auto& p : ports_) {
    if (p->dir() == PortDir::Input) {
      for (const Pin& pin : p->pins()) detach(pin);
    }
  }
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const RowCol rc{static_cast<int16_t>(origin_.row + r),
                      static_cast<int16_t>(origin_.col + c)};
      detach(Pin(rc, S0CLK));
      detach(Pin(rc, S1CLK));
      // 3. Wipe the logic configuration.
      auto& jbits = fabric.jbits();
      for (int lut = 0; lut < kLutsPerTile; ++lut) jbits.setLut(rc, lut, 0);
      for (int b = 0; b < kMiscLogicBits; ++b) jbits.setMiscBit(rc, b, false);
    }
  }
  doRemove(router);
  for (auto& p : ports_) p->clearPins();
  placed_ = false;
}

std::vector<Port*> RtpCore::getPorts(std::string_view group) const {
  std::vector<Port*> out;
  for (const auto& p : ports_) {
    if (p->group() == group) out.push_back(p.get());
  }
  return out;
}

std::vector<EndPoint> RtpCore::endPoints(std::string_view group) const {
  std::vector<EndPoint> out;
  for (Port* p : getPorts(group)) out.push_back(EndPoint(*p));
  return out;
}

std::vector<std::string> RtpCore::groups() const {
  std::vector<std::string> out;
  for (const auto& p : ports_) {
    bool seen = false;
    for (const auto& g : out) seen = seen || g == p->group();
    if (!seen) out.push_back(p->group());
  }
  return out;
}

}  // namespace jroute
