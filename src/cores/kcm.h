// Constant-coefficient multiplier (KCM): p = x * K, LUT-based partial
// products with an accumulation chain. The paper's RTR showcase
// (section 3.3): "consider a constant multiplier. The system connects it
// to the circuit and later requires a new constant. The core can be
// removed, unrouted, and replaced with a new constant multiplier without
// having to specify connections again." setConstant() supports the faster
// variant too — a pure LUT rewrite with all routing left in place.
#pragma once

#include "cores/rtp_core.h"

namespace jroute {

class Kcm : public RtpCore {
 public:
  Kcm(int width, uint32_t constant);

  int width() const { return width_; }
  uint32_t constant() const { return constant_; }

  /// Rewrite the partial-product LUTs for a new constant (placed cores
  /// update in place; no rerouting).
  void setConstant(Router& router, uint32_t constant);

  /// Ports: group "x" (multiplicand in), group "p" (product out).
  static constexpr const char* kInGroup = "x";
  static constexpr const char* kOutGroup = "p";

 protected:
  void doBuild(Router& router) override;

 private:
  void programLuts(Router& router);

  int width_;
  uint32_t constant_;
};

}  // namespace jroute
