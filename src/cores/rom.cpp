#include "cores/rom.h"

#include <algorithm>

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::slicePin;
using xcvsim::sliceOut;

Rom::Rom(int width, std::span<const uint16_t> contents)
    : RtpCore("Rom" + std::to_string(width), (width + 1) / 2, 1),
      width_(width) {
  if (width < 1 || width > 16) {
    throw xcvsim::ArgumentError("Rom width must be 1..16");
  }
  if (contents.size() > contents_.size()) {
    throw xcvsim::ArgumentError("Rom holds at most 16 words");
  }
  std::copy(contents.begin(), contents.end(), contents_.begin());
  for (int a = 0; a < 4; ++a) {
    definePort("addr[" + std::to_string(a) + "]", PortDir::Input,
               kAddrGroup);
  }
  for (int i = 0; i < width; ++i) {
    definePort("data[" + std::to_string(i) + "]", PortDir::Output,
               kOutGroup);
  }
}

void Rom::programLuts(Router& router) {
  // Bit plane i: LUT input x (the 4-bit address) looks up bit i of word x.
  for (int i = 0; i < width_; ++i) {
    uint16_t truth = 0;
    for (int a = 0; a < 16; ++a) {
      if ((contents_[static_cast<size_t>(a)] >> i) & 1) {
        truth = static_cast<uint16_t>(truth | (1u << a));
      }
    }
    setLut(router, i / 2, 0, (i % 2) * 2, truth);
  }
}

void Rom::doBuild(Router& router) {
  programLuts(router);
  const auto addr = getPorts(kAddrGroup);
  const auto data = getPorts(kOutGroup);
  // Every bit plane consumes the same 4 address lines: the address ports
  // bind the F1..F4 pins of EVERY slice in the strip (a multi-pin port —
  // the router expands it to all pins, section 3.2).
  for (int i = 0; i < width_; ++i) {
    const int tile = i / 2;
    const int s = i % 2;
    for (int a = 0; a < 4; ++a) {
      addr[static_cast<size_t>(a)]->bindPin(at(tile, 0, slicePin(s, a)));
    }
    data[static_cast<size_t>(i)]->bindPin(at(tile, 0, sliceOut(s * 4)));
  }
}

void Rom::setWord(Router& router, int addr, uint16_t value) {
  if (addr < 0 || addr >= 16) {
    throw xcvsim::ArgumentError("Rom address out of range");
  }
  contents_[static_cast<size_t>(addr)] = value;
  if (placed()) programLuts(router);
}

}  // namespace jroute
