#include "cores/kcm.h"

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::slicePin;
using xcvsim::sliceOut;

namespace {

/// Partial-product LUT: a 4-input slice of the constant multiplied by the
/// LUT's input nibble. The truth table folds the constant's bits in, so a
/// new constant means new tables and nothing else.
uint16_t ppLut(uint32_t constant, int bit) {
  uint16_t t = 0;
  for (int x = 0; x < 16; ++x) {
    const uint32_t prod = static_cast<uint32_t>(x) * constant;
    if ((prod >> bit) & 1u) t = static_cast<uint16_t>(t | (1u << x));
  }
  return t;
}

int tileOf(int bit) { return bit / 2; }
int sliceOf(int bit) { return bit % 2; }

}  // namespace

Kcm::Kcm(int width, uint32_t constant)
    : RtpCore("Kcm" + std::to_string(width), (width + 1) / 2, 1),
      width_(width),
      constant_(constant) {
  if (width < 1 || width > 32) {
    throw xcvsim::ArgumentError("Kcm width must be 1..32");
  }
  for (int i = 0; i < width; ++i) {
    definePort("x[" + std::to_string(i) + "]", PortDir::Input, kInGroup);
    definePort("p[" + std::to_string(i) + "]", PortDir::Output, kOutGroup);
  }
}

void Kcm::programLuts(Router& router) {
  for (int i = 0; i < width_; ++i) {
    // F-LUT holds the partial product, G-LUT the accumulate stage.
    setLut(router, tileOf(i), 0, sliceOf(i) * 2, ppLut(constant_, i));
    setLut(router, tileOf(i), 0, sliceOf(i) * 2 + 1, 0x6666);  // xor-accum
  }
}

void Kcm::doBuild(Router& router) {
  programLuts(router);

  const auto in = getPorts(kInGroup);
  const auto out = getPorts(kOutGroup);
  for (int i = 0; i < width_; ++i) {
    const int s = sliceOf(i);
    in[static_cast<size_t>(i)]->bindPin(at(tileOf(i), 0, slicePin(s, 0)));
    // Product bit leaves on the slice's Y output (the G accumulate LUT).
    out[static_cast<size_t>(i)]->bindPin(
        at(tileOf(i), 0, sliceOut(s * 4 + 2)));
  }

  // Accumulation chain: each partial product (X output) feeds the next
  // bit's G1 accumulate input.
  for (int i = 0; i + 1 < width_; ++i) {
    const Pin pp = at(tileOf(i), 0, sliceOut(sliceOf(i) * 4));
    const Pin acc = at(tileOf(i + 1), 0, slicePin(sliceOf(i + 1), 4));
    router.route(EndPoint(pp), EndPoint(acc));
  }
}

void Kcm::setConstant(Router& router, uint32_t constant) {
  constant_ = constant;
  if (placed()) programLuts(router);
}

}  // namespace jroute
