// Equality comparator: eq = (a == b), one bit pair per slice with an
// AND-reduction chain down the strip.
#pragma once

#include "cores/rtp_core.h"

namespace jroute {

class Comparator : public RtpCore {
 public:
  explicit Comparator(int width);

  int width() const { return width_; }

  /// Ports: groups "a" and "b" (operands), group "eq" (1-bit result).
  static constexpr const char* kAGroup = "a";
  static constexpr const char* kBGroup = "b";
  static constexpr const char* kOutGroup = "eq";

 protected:
  void doBuild(Router& router) override;

 private:
  int width_;
};

}  // namespace jroute
