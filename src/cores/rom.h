// LUT ROM: a 16-entry by `width`-bit read-only table, one output bit per
// LUT. Run-time parameterizable contents — updating the table is a pure
// bitstream operation (the JBits layer rewrites truth tables in place).
#pragma once

#include <array>
#include <span>

#include "cores/rtp_core.h"

namespace jroute {

class Rom : public RtpCore {
 public:
  /// 16 words of up to 16 bits; `width` selects how many bits are used.
  Rom(int width, std::span<const uint16_t> contents);

  int width() const { return width_; }
  uint16_t word(int addr) const { return contents_[static_cast<size_t>(addr)]; }

  /// Rewrite one word at run time (LUT-only partial reconfiguration).
  void setWord(Router& router, int addr, uint16_t value);

  /// Ports: group "addr" (4 shared address lines per output bit block),
  /// group "data" (width output bits).
  static constexpr const char* kAddrGroup = "addr";
  static constexpr const char* kOutGroup = "data";

 protected:
  void doBuild(Router& router) override;

 private:
  void programLuts(Router& router);

  int width_;
  std::array<uint16_t, 16> contents_{};
};

}  // namespace jroute
