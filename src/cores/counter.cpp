#include "cores/counter.h"

namespace jroute {

Counter::Counter(int width, uint32_t step)
    : RtpCore("Counter" + std::to_string(width), (width + 1) / 2, 1),
      width_(width),
      adder_(width, step) {
  for (int i = 0; i < width; ++i) {
    definePort("q[" + std::to_string(i) + "]", PortDir::Output, kOutGroup);
  }
}

void Counter::doRemove(Router& router) {
  if (adder_.placed()) adder_.remove(router);
}

void Counter::doBuild(Router& router) {
  // Hierarchical placement: the child adder occupies this core's strip.
  if (adder_.placed()) adder_.remove(router);
  adder_.place(router, origin());

  // Feedback bus: sum -> a, port-to-port, one JRoute call for the whole
  // bus (the convenience section 3.1 advertises).
  const auto sums = adder_.endPoints(ConstAdder::kOutGroup);
  const auto ins = adder_.endPoints(ConstAdder::kInGroup);
  router.route(std::span<const EndPoint>(sums),
               std::span<const EndPoint>(ins));

  // This core's q ports alias the adder's sum pins.
  const auto q = getPorts(kOutGroup);
  const auto sumPorts = adder_.getPorts(ConstAdder::kOutGroup);
  for (int i = 0; i < width_; ++i) {
    for (const Pin& p : sumPorts[static_cast<size_t>(i)]->pins()) {
      q[static_cast<size_t>(i)]->bindPin(p);
    }
  }
}

}  // namespace jroute
