// Serial shift register: `depth` stages, two per tile, chained with
// auto-routed stage-to-stage connections.
#pragma once

#include "cores/rtp_core.h"

namespace jroute {

class ShiftReg : public RtpCore {
 public:
  explicit ShiftReg(int depth);

  int depth() const { return depth_; }

  /// Ports: group "si" (serial in, 1 bit), group "so" (serial out, 1 bit).
  static constexpr const char* kInGroup = "si";
  static constexpr const char* kOutGroup = "so";

 protected:
  void doBuild(Router& router) override;

 private:
  int depth_;
};

}  // namespace jroute
