#include "cores/shift_reg.h"

#include "arch/wires.h"
#include "common/error.h"

namespace jroute {

using xcvsim::slicePin;
using xcvsim::sliceOut;

ShiftReg::ShiftReg(int depth)
    : RtpCore("ShiftReg" + std::to_string(depth), (depth + 1) / 2, 1),
      depth_(depth) {
  if (depth < 2 || depth > 64) {
    throw xcvsim::ArgumentError("ShiftReg depth must be 2..64");
  }
  definePort("si", PortDir::Input, kInGroup);
  definePort("so", PortDir::Output, kOutGroup);
}

void ShiftReg::doBuild(Router& router) {
  for (int i = 0; i < depth_; ++i) {
    setLut(router, i / 2, 0, (i % 2) * 2, 0xAAAA);  // pass-through + FF
  }
  getPorts(kInGroup)[0]->bindPin(at(0, 0, slicePin(0, 0)));
  getPorts(kOutGroup)[0]->bindPin(
      at((depth_ - 1) / 2, 0, sliceOut(((depth_ - 1) % 2) * 4 + 1)));

  // Chain: stage i's XQ output into stage i+1's F1 input.
  for (int i = 0; i + 1 < depth_; ++i) {
    const Pin from = at(i / 2, 0, sliceOut((i % 2) * 4 + 1));
    const Pin to = at((i + 1) / 2, 0, slicePin((i + 1) % 2, 0));
    router.route(EndPoint(from), EndPoint(to));
  }
}

}  // namespace jroute
