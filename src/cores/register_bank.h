// Register bank: width flip-flops, two per tile, with a global-clock
// distribution helper. Exercises the dedicated clock network (GCLK nets
// drive only the CLK pins) and the FF mode bits of the logic config.
#pragma once

#include "cores/rtp_core.h"

namespace jroute {

class RegisterBank : public RtpCore {
 public:
  explicit RegisterBank(int width);

  int width() const { return width_; }

  /// Route global clock net `gclkIndex` to every CLK pin of the bank.
  void clockFrom(Router& router, int gclkIndex);

  /// Ports: group "d" (inputs), group "q" (registered outputs).
  static constexpr const char* kInGroup = "d";
  static constexpr const char* kOutGroup = "q";

 protected:
  void doBuild(Router& router) override;

 private:
  int width_;
};

}  // namespace jroute
