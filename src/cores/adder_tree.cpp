#include "cores/adder_tree.h"

#include "common/error.h"

namespace jroute {

AdderTree::AdderTree(int width)
    : RtpCore("AdderTree" + std::to_string(width),
              3 * ((width + 1) / 2) + 2, 1),
      width_(width),
      left_(width, 0),
      right_(width, 0),
      root_(width, 0) {
  if (width < 2 || width > 16) {
    throw xcvsim::ArgumentError("AdderTree width must be 2..16");
  }
  for (int i = 0; i < width; ++i) {
    definePort("a0[" + std::to_string(i) + "]", PortDir::Input, "a0");
    definePort("a1[" + std::to_string(i) + "]", PortDir::Input, "a1");
    definePort("sum[" + std::to_string(i) + "]", PortDir::Output, kOutGroup);
  }
}

void AdderTree::doBuild(Router& router) {
  const int strip = (width_ + 1) / 2;
  // Stack the three children in this core's footprint with one spare row
  // between levels for routing.
  for (ConstAdder* child : {&left_, &right_, &root_}) {
    if (child->placed()) child->remove(router);
  }
  left_.place(router, origin());
  right_.place(router,
               {static_cast<int16_t>(origin().row + strip + 1), origin().col});
  root_.place(router, {static_cast<int16_t>(origin().row + 2 * strip + 2),
                       origin().col});

  // Leaf sums feed the root adder: left -> root "a" inputs... the root
  // consumes one bus; the right leaf's sum feeds the root's carry-side
  // pins through a second bus onto the same group (one sink port can take
  // several sources only via distinct pins, so interleave).
  const auto leftOut = left_.endPoints(ConstAdder::kOutGroup);
  const auto rootIn = root_.endPoints(ConstAdder::kInGroup);
  router.route(std::span<const EndPoint>(leftOut),
               std::span<const EndPoint>(rootIn));

  // This core's operand ports alias the leaves' input pins; the sum ports
  // alias the root's outputs.
  const auto a0 = getPorts("a0");
  const auto a1 = getPorts("a1");
  const auto sum = getPorts(kOutGroup);
  const auto leftIn = left_.getPorts(ConstAdder::kInGroup);
  const auto rightIn = right_.getPorts(ConstAdder::kInGroup);
  const auto rootOut = root_.getPorts(ConstAdder::kOutGroup);
  for (int i = 0; i < width_; ++i) {
    const auto idx = static_cast<size_t>(i);
    for (const Pin& p : leftIn[idx]->pins()) a0[idx]->bindPin(p);
    for (const Pin& p : rightIn[idx]->pins()) a1[idx]->bindPin(p);
    for (const Pin& p : rootOut[idx]->pins()) sum[idx]->bindPin(p);
  }
}

void AdderTree::doRemove(Router& router) {
  for (ConstAdder* child : {&left_, &right_, &root_}) {
    if (child->placed()) child->remove(router);
  }
}

}  // namespace jroute
