#include "router/search.h"

#include <algorithm>
#include <queue>

#include "fabric/timing.h"
#include "lookahead/lookahead.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jroute {

using xcvsim::Graph;
using xcvsim::kInvalidEdge;
using xcvsim::kInvalidNet;
using xcvsim::kPipDelayPs;
using xcvsim::NodeKind;
using xcvsim::RowCol;

namespace {

bool isLong(const Graph& g, NodeId n) {
  const NodeKind k = g.info(n).kind;
  return k == NodeKind::LongH || k == NodeKind::LongV;
}

/// Per-tile distance rate for the heuristic: a full-span hex progresses at
/// ~126 ps/tile. A chip-spanning long line can beat that (~13 ps/tile),
/// so with long lines enabled this is technically inadmissible for
/// extreme-distance nets — but the router is deliberately a weighted
/// (bounded-suboptimality) search anyway (RouterOptions::heuristicWeight),
/// and the hex rate is what keeps the search focused.
DelayPs perTileBound(bool /*useLongLines*/) { return 120; }

/// Search-effort telemetry, shared by the serial router and every
/// concurrent planner thread (counters are relaxed atomics). Resolved
/// once; hot paths pay one atomic add per *search*, not per node.
struct MazeMetrics {
  jrobs::Counter& runs = jrobs::registry().counter("router.maze.runs");
  jrobs::Counter& visits = jrobs::registry().counter("router.maze.visits");
  jrobs::Counter& found = jrobs::registry().counter("router.maze.found");
  jrobs::Counter& failed = jrobs::registry().counter("router.maze.failed");
  jrobs::Counter& laSearches =
      jrobs::registry().counter("router.lookahead.searches");
  jrobs::Counter& laVisits =
      jrobs::registry().counter("router.lookahead.visits");
  jrobs::Counter& laPruned =
      jrobs::registry().counter("router.lookahead.pruned_nodes");
};

MazeMetrics& mazeMetrics() {
  static MazeMetrics m;
  return m;
}

}  // namespace

MazeRouter::MazeRouter(const Graph& graph) : graph_(&graph) {
  epochSeen_.assign(graph.numNodes(), 0);
  gCost_.assign(graph.numNodes(), 0);
  parent_.assign(graph.numNodes(), kInvalidEdge);
  closed_.assign(graph.numNodes(), 0);
}

SearchResult MazeRouter::route(const Fabric& fabric, NetId net,
                               std::span<const NodeId> starts, NodeId goal,
                               const RouterOptions& opts) {
  (void)net;  // same-net segments are exactly the start set
  // Telemetry stays in this thin wrapper: putting objects with cleanups
  // (the trace scope, a metrics recorder) into the frame that holds the
  // A* loop costs ~8% on maze-heavy workloads — the unwind paths bloat
  // the loop's codegen. Out here they cost one add per search.
  JR_TRACE_SCOPE("router", "maze");
  const SearchResult result = search(fabric, starts, goal, opts);
  MazeMetrics& m = mazeMetrics();
  m.runs.add();
  m.visits.add(result.visited);
  (result.found ? m.found : m.failed).add();
  if (result.usedLookahead) {
    m.laSearches.add();
    m.laVisits.add(result.visited);
    m.laPruned.add(result.pruned);
  }
  return result;
}

SearchResult MazeRouter::search(const Fabric& fabric,
                                std::span<const NodeId> starts, NodeId goal,
                                const RouterOptions& opts) {
  const Graph& g = *graph_;
  SearchResult result;
  ++epoch_;

  // Heuristic: the precomputed lookahead when available (admissible at
  // weight 1.0, and a prune oracle — abstract-unreachable implies real-
  // unreachable), otherwise the legacy weighted manhattan rate.
  const jrla::Lookahead* la = opts.useLookahead ? opts.lookahead : nullptr;
  result.usedLookahead = la != nullptr;
  const jrla::Lookahead::Mode laMode =
      (!opts.useLongLines || opts.mazeSinglesOnly)
          ? jrla::Lookahead::Mode::kNoLongs
          : jrla::Lookahead::Mode::kFull;

  const RowCol goalPos = g.positionOf(goal);
  const DelayPs tileBound = static_cast<DelayPs>(
      static_cast<double>(perTileBound(opts.useLongLines)) *
      opts.heuristicWeight);
  const auto h = [&](NodeId n) -> DelayPs {
    if (la) {
      const DelayPs est = la->estimate(n, goal, laMode);
      if (est >= jrla::Lookahead::kUnreachable) return est;
      DelayPs weighted = static_cast<DelayPs>(static_cast<double>(est) *
                                              opts.lookaheadWeight);
      if (opts.lookaheadWeight > 1.0) {
        // Greedy floor. Far from the goal the admissible estimate is
        // long-line-dominated (~13 ps/tile) — so flat that even a weighted
        // search expands near-breadth-first. The legacy per-tile rate keeps
        // the frontier goal-directed out there; close in, the weighted
        // estimate rises above the floor and its exact knowledge of the
        // wire hierarchy takes over. Weight 1.0 skips the floor and stays
        // strictly admissible (delay-optimal paths, the jrverify proof).
        const DelayPs floor =
            static_cast<DelayPs>(manhattan(g.positionOf(n), goalPos)) *
            tileBound;
        if (floor > weighted) weighted = floor;
      }
      return weighted;
    }
    return static_cast<DelayPs>(manhattan(g.positionOf(n), goalPos)) *
           tileBound;
  };

  using QItem = std::pair<DelayPs, NodeId>;  // (f, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;

  for (NodeId s : starts) {
    if (s == goal) {
      result.found = true;  // sink already on the net tree
      return result;
    }
    const DelayPs hs = h(s);
    if (hs >= jrla::Lookahead::kUnreachable) {
      ++result.pruned;  // provably cannot reach the goal from here
      continue;
    }
    epochSeen_[s] = epoch_;
    gCost_[s] = 0;
    parent_[s] = kInvalidEdge;
    closed_[s] = 0;
    open.emplace(hs, s);
  }

  while (!open.empty()) {
    const auto [f, n] = open.top();
    open.pop();
    if (closed_[n] && epochSeen_[n] == epoch_) continue;
    closed_[n] = 1;
    ++result.visited;
    if (n == goal) {
      // Reconstruct source-side-first edge chain.
      NodeId cur = goal;
      while (parent_[cur] != kInvalidEdge) {
        const EdgeId e = parent_[cur];
        result.edges.push_back(e);
        cur = g.edgeSource(e);
      }
      std::reverse(result.edges.begin(), result.edges.end());
      result.found = true;
      return result;
    }
    if (result.visited > opts.maxMazeVisits) break;

    for (const xcvsim::Edge& ed : g.out(n)) {
      const NodeId v = ed.to;
      if (!opts.useLongLines && isLong(g, v)) continue;
      if (opts.mazeSinglesOnly) {
        const NodeKind k = g.info(v).kind;
        if (k != NodeKind::SingleH && k != NodeKind::SingleV &&
            k != NodeKind::Logic && v != goal) {
          continue;
        }
      }
      // Nodes claimed by any net are obstacles; the net's own segments are
      // only usable as starts (re-entering them would add a second driver).
      if (fabric.isUsed(v) && v != goal) continue;
      if (fabric.isUsed(goal) && v == goal) continue;
      // Nodes tentatively claimed by a concurrent planner are obstacles
      // exactly like committed nets.
      if (opts.claimFilter && opts.claimFilter->blocked(v)) continue;
      const DelayPs ng = gCost_[n] + kPipDelayPs + g.nodeDelay(v);
      if (epochSeen_[v] == epoch_ && gCost_[v] <= ng) continue;
      const DelayPs hv = h(v);
      if (hv >= jrla::Lookahead::kUnreachable) {
        ++result.pruned;  // hard A* prune: no path from v to goal exists
        continue;
      }
      epochSeen_[v] = epoch_;
      gCost_[v] = ng;
      closed_[v] = 0;
      parent_[v] = static_cast<EdgeId>(&ed - &g.edge(0));
      open.emplace(ng + hv, v);
    }
  }
  return result;  // not found (or visit budget exhausted)
}

}  // namespace jroute
