// Router configuration and statistics.
//
// The paper stresses that "the JRoute API is independent of the algorithms
// used to implement it"; these options select between the initial
// algorithms it describes (predefined templates with a maze fallback,
// greedy distance-ordered fanout) and expose the knobs the experiments
// ablate (long-line usage for E8, template-first for E3).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace jrla {
class Lookahead;
}

namespace jroute {

/// Extra per-node availability veto consulted by the route engines on top
/// of the fabric's own in-use checks. The routing service points this at
/// its claim map so concurrent planners working against a frozen fabric
/// snapshot treat each other's tentatively claimed wires as obstacles.
/// Implementations must be safe to call from multiple threads.
class NodeClaimFilter {
 public:
  virtual ~NodeClaimFilter() = default;
  /// True when `n` must not be used by the current search.
  virtual bool blocked(xcvsim::NodeId n) const = 0;
};

struct RouterOptions {
  /// Allow the maze router to use long lines (experiment E8 ablates this).
  bool useLongLines = true;
  /// Auto point-to-point tries a small library of predefined templates
  /// before falling back to the maze router (experiment E3 ablates this).
  bool templateFirst = true;
  /// Manhattan distance beyond which the template library is skipped:
  /// long templates rarely fit intact (every wire along the exact shape
  /// must be free), and a failed attempt costs more than the weighted
  /// maze — experiment E3 locates the crossover near 16 tiles.
  int templateMaxDistance = 16;
  /// Node-visit budget for one template-following attempt. A template
  /// that actually fits is satisfied greedily in a few hundred visits;
  /// a larger budget only makes doomed attempts thrash longer before the
  /// maze fallback takes over.
  size_t maxTemplateVisits = 2500;
  /// Node-visit budget for one maze search before declaring unroutable.
  size_t maxMazeVisits = 2000000;
  /// Restrict the maze to single-length lines (no hexes or longs). Used
  /// by the skew balancer, whose delay-padding detours must add a
  /// predictable ~410 ps per tile.
  bool mazeSinglesOnly = false;
  /// Claim veto for concurrent planning (see NodeClaimFilter). Null means
  /// no extra filtering; the fabric's in-use checks always apply.
  const NodeClaimFilter* claimFilter = nullptr;
  /// Weight on the A* distance heuristic. 1.0 is admissible (shortest
  /// delay path); larger values trade bounded path-quality loss for much
  /// less search — the right trade for a run-time router. The admissible
  /// bound is loose (a chip-spanning long line costs ~13 ps/tile), so
  /// weighting recovers most of the wasted exploration.
  ///
  /// Consulted by the legacy manhattan heuristic (useLookahead off) and as
  /// the per-tile rate of the weighted lookahead's greedy floor (below).
  double heuristicWeight = 2.0;
  /// Use the precomputed per-device lookahead table (src/lookahead) as the
  /// maze heuristic and for per-request strategy selection. The Router
  /// and Planner resolve `lookahead` from the process-wide per-device
  /// cache when this is set and the pointer is null.
  bool useLookahead = true;
  /// Resolved lookahead table; read-only, shared across threads. Null
  /// with useLookahead set means "resolve lazily via forGraph".
  const jrla::Lookahead* lookahead = nullptr;
  /// Weight on the lookahead heuristic. The table is admissible, so 1.0
  /// gives delay-optimal paths; the default trades bounded suboptimality
  /// for speed, like heuristicWeight does for the legacy heuristic. Any
  /// weight above 1.0 also enables a greedy floor — max(weighted estimate,
  /// legacy manhattan rate) — because the admissible estimate for far
  /// goals is long-line-dominated and too flat to focus the search alone.
  double lookaheadWeight = 2.0;
};

/// Which mechanism satisfied the most recent routing call.
enum class RouteMethod : uint8_t {
  None,
  DirectPip,     // route(row, col, from, to)
  Path,          // route(Path)
  UserTemplate,  // route(pin, endWire, template)
  LibTemplate,   // auto route satisfied by a predefined template
  Maze,          // auto route satisfied by the maze fallback
  Reuse,         // sink was already connected to the net
};

/// Cumulative counters, reset with RouteStats{} assignment.
struct RouteStats {
  uint64_t pipsTurnedOn = 0;
  uint64_t pipsTurnedOff = 0;
  uint64_t routesCompleted = 0;
  uint64_t routesFailed = 0;
  uint64_t templateAttempts = 0;
  uint64_t templateHits = 0;
  /// Subset of templateHits satisfied by a bus shape hint (the previous
  /// bit's shape refit, Router::routeSink) rather than the library.
  uint64_t shapeReuseHits = 0;
  uint64_t templateVisits = 0;
  uint64_t mazeRuns = 0;
  uint64_t mazeVisits = 0;
  /// Subset of templateHits satisfied by a long-line composition template
  /// (strategy selector picked the long-line path and it fit).
  uint64_t longTemplateHits = 0;
  /// Strategy-selector decisions (lookahead-driven pre-search choice).
  uint64_t selTemplate = 0;
  uint64_t selLongLine = 0;
  uint64_t selMaze = 0;
  RouteMethod lastMethod = RouteMethod::None;
};

}  // namespace jroute
