// A*-based maze router over the routing-resource graph.
//
// "One possibility is to use a maze router" (section 3.1) — this is the
// fallback behind the auto-routing calls, and the workhorse of the greedy
// fanout router: it accepts a *set* of start nodes (the already-routed net
// tree, at cost 0) so each additional sink reuses the existing tree as
// much as possible. Delay-weighted costs make it prefer the fast resource
// mix (hexes over chains of singles, long lines over chains of hexes).
#pragma once

#include <span>
#include <vector>

#include "fabric/fabric.h"
#include "router/options.h"

namespace jroute {

using xcvsim::DelayPs;
using xcvsim::EdgeId;
using xcvsim::Fabric;
using xcvsim::NetId;
using xcvsim::NodeId;

struct SearchResult {
  bool found = false;
  /// Edges source-side first, ending on the goal. Empty when the goal was
  /// already part of the start set.
  std::vector<EdgeId> edges;
  size_t visited = 0;
  /// Neighbors skipped outright because the lookahead proved them
  /// unreachable-to-goal (abstract-unreachable implies real-unreachable).
  size_t pruned = 0;
  /// True when the search ran with the lookahead heuristic.
  bool usedLookahead = false;
};

/// Reusable scratch space; one instance per Router, sized to the graph.
class MazeRouter {
 public:
  explicit MazeRouter(const xcvsim::Graph& graph);

  /// Search from any of `starts` (cost 0; they must belong to `net` or be
  /// free) to `goal`. Nodes used by other nets are obstacles; nodes of
  /// `net` itself are only usable as starts. The result's edge chain is
  /// NOT turned on — the caller owns fabric mutation.
  SearchResult route(const Fabric& fabric, NetId net,
                     std::span<const NodeId> starts, NodeId goal,
                     const RouterOptions& opts);

 private:
  /// The search proper, free of telemetry: the trace scope and metric
  /// objects live in route()'s frame, not here — their cleanups in the
  /// same function as the A* loop measurably pessimize its codegen.
  SearchResult search(const Fabric& fabric, std::span<const NodeId> starts,
                      NodeId goal, const RouterOptions& opts);

  const xcvsim::Graph* graph_;
  std::vector<uint32_t> epochSeen_;
  std::vector<DelayPs> gCost_;
  std::vector<EdgeId> parent_;
  std::vector<uint8_t> closed_;
  uint32_t epoch_ = 0;
};

}  // namespace jroute
