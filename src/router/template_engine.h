// The recursive template follower of section 3.1:
//
//   "The router begins at the start wire, then goes through each wire that
//    it drives, as defined in the architecture class, and checks first if
//    the wire's template value matches the template value specified by the
//    user. If so, then it checks to make sure the wire is not already in
//    use. A recursive call is made with the new wire as the starting point
//    and the first element of the template removed. The call would fail if
//    there is no combination of resources that are available that follow
//    the template."
//
// Two termination modes are supported: the paper's signature constrains
// only the final *wire id* (any location the template reaches), while the
// auto-router constrains the exact target node.
#pragma once

#include <span>
#include <vector>

#include "fabric/fabric.h"
#include "router/options.h"

namespace jroute {

using xcvsim::EdgeId;
using xcvsim::Fabric;
using xcvsim::LocalWire;
using xcvsim::NodeId;
using xcvsim::TemplateValue;

struct TemplateResult {
  bool found = false;
  std::vector<EdgeId> edges;  // source-side first
  NodeId finalNode = xcvsim::kInvalidNode;
  size_t visited = 0;
};

/// Does node `n` answer to local wire name `w` at any of its tap tiles?
bool nodeMatchesWire(const xcvsim::Graph& g, NodeId n, LocalWire w);

/// Follow `tmpl` from `start` (which belongs to `net`). Every intermediate
/// wire must be completely unused. Exactly one of the two constraints is
/// applied: when `requiredTarget` is valid the walk must end on that node;
/// otherwise, when `requiredEndWire` is valid the final node must answer
/// to that wire name somewhere.
TemplateResult followTemplate(const Fabric& fabric, NodeId start,
                              std::span<const TemplateValue> tmpl,
                              NodeId requiredTarget,
                              LocalWire requiredEndWire,
                              const RouterOptions& opts);

}  // namespace jroute
