#include "router/template_engine.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"

namespace jroute {

using xcvsim::Edge;
using xcvsim::Graph;
using xcvsim::kInvalidLocalWire;
using xcvsim::kInvalidNode;

bool nodeMatchesWire(const Graph& g, NodeId n, LocalWire w) {
  for (const xcvsim::RowCol rc : g.tapsOf(n)) {
    if (g.aliasAt(n, rc) == w) return true;
  }
  // Globals have no finite tap list; compare canonical alias at (0, 0).
  if (g.info(n).kind == xcvsim::NodeKind::Gclk) {
    return g.aliasAt(n, {0, 0}) == w;
  }
  return false;
}

namespace {

/// Walk-effort telemetry, shared by the serial router and the concurrent
/// planners. One atomic add per walk, not per step.
struct TemplateMetrics {
  jrobs::Counter& walks = jrobs::registry().counter("router.template.walks");
  jrobs::Counter& visits =
      jrobs::registry().counter("router.template.visits");
  jrobs::Counter& hits = jrobs::registry().counter("router.template.hits");
};

TemplateMetrics& templateMetrics() {
  static TemplateMetrics m;
  return m;
}

struct Walk {
  const Fabric& fabric;
  const Graph& g;
  std::span<const TemplateValue> tmpl;
  NodeId requiredTarget;
  LocalWire requiredEndWire;
  const RouterOptions& opts;
  xcvsim::NetId net;                     // net of the start node
  std::unordered_set<uint64_t> visited;  // (node, depth) pairs
  std::unordered_set<NodeId> onPath;     // nodes of the current chain
  TemplateResult result;

  bool accept(NodeId node) const {
    if (requiredTarget != kInvalidNode) return node == requiredTarget;
    if (requiredEndWire != kInvalidLocalWire) {
      return nodeMatchesWire(g, node, requiredEndWire);
    }
    return true;
  }

  /// Directional wires must make progress: after entering a single or hex
  /// at tile `entry`, the walk may only leave it at a *different* tap —
  /// exiting where it came in would mean the wire contributed no movement
  /// and its template value (EAST1, NORTH6, ...) was a lie.
  static bool directional(xcvsim::NodeKind k) {
    return k == xcvsim::NodeKind::SingleH || k == xcvsim::NodeKind::SingleV ||
           k == xcvsim::NodeKind::HexE || k == xcvsim::NodeKind::HexW ||
           k == xcvsim::NodeKind::HexN || k == xcvsim::NodeKind::HexS;
  }

  // Depth-first, first-fit; edges accumulate in result.edges on success.
  // `entry` is the tile through which `node` was entered (source tile for
  // the walk's start).
  bool step(NodeId node, xcvsim::RowCol entry, size_t depth) {
    if (depth == tmpl.size()) return accept(node);
    if (result.visited > opts.maxTemplateVisits) return false;
    const uint64_t key = (static_cast<uint64_t>(node) << 8) | depth;
    if (!visited.insert(key).second) return false;

    const bool mustAdvance = directional(g.info(node).kind);
    onPath.insert(node);
    for (const Edge& ed : g.out(node)) {
      const xcvsim::RowCol tile{static_cast<int16_t>(ed.tileRow),
                                static_cast<int16_t>(ed.tileCol)};
      if (mustAdvance && tile == entry) continue;
      if (g.templateValueOf(ed.to, ed) != tmpl[depth]) continue;
      // "...it checks to make sure the wire is not already in use" — by
      // another net, or by an earlier hop of this very walk (looping
      // templates would otherwise double-drive their own wires). Wires of
      // the walk's OWN net are fine when entered through the exact PIP
      // that already drives them: turning that PIP on again is the
      // idempotent tree-reuse case, not contention.
      if (onPath.count(ed.to)) continue;
      // Wires tentatively claimed by a concurrent planner count as in use.
      if (opts.claimFilter && opts.claimFilter->blocked(ed.to)) continue;
      if (fabric.isUsed(ed.to)) {
        const EdgeId eid = static_cast<EdgeId>(&ed - &g.edge(0));
        const bool ownChain = fabric.netOf(ed.to) == net &&
                              fabric.driverOf(ed.to) == eid;
        if (!ownChain) continue;
      }
      ++result.visited;
      if (step(ed.to, tile, depth + 1)) {
        result.edges.push_back(static_cast<EdgeId>(&ed - &g.edge(0)));
        onPath.erase(node);
        return true;
      }
    }
    onPath.erase(node);
    return false;
  }
};

}  // namespace

TemplateResult followTemplate(const Fabric& fabric, NodeId start,
                              std::span<const TemplateValue> tmpl,
                              NodeId requiredTarget,
                              LocalWire requiredEndWire,
                              const RouterOptions& opts) {
  Walk walk{fabric,
            fabric.graph(),
            tmpl,
            requiredTarget,
            requiredEndWire,
            opts,
            fabric.netOf(start),
            {},
            {},
            {}};
  if (walk.step(start, fabric.graph().info(start).tile, 0)) {
    walk.result.found = true;
    std::reverse(walk.result.edges.begin(), walk.result.edges.end());
    walk.result.finalNode = walk.result.edges.empty()
                                ? start
                                : walk.g.edge(walk.result.edges.back()).to;
  }
  TemplateMetrics& m = templateMetrics();
  m.walks.add();
  m.visits.add(walk.result.visited);
  if (walk.result.found) m.hits.add();
  return walk.result;
}

}  // namespace jroute
