// Explicit-path resolution: turn a user Path (start tile + local wire
// sequence, section 3.1) into the concrete PIP chain it denotes.
//
// The cursor starts at the path's location; after each wire is driven, the
// cursor may sit at any tap of that segment (a single's far end, a hex's
// MID or END), and the next wire in the list disambiguates: the connection
// is made at whichever tap of the current segment exposes both wires with
// a PIP between them.
#pragma once

#include <vector>

#include "rrg/graph.h"

namespace jroute {

using xcvsim::EdgeId;
using xcvsim::LocalWire;
using xcvsim::RowCol;

/// The PIP chain (source-side first) a path denotes. Throws ArgumentError
/// when a wire does not exist at the cursor, or when no PIP connects two
/// consecutive wires anywhere along the current segment.
std::vector<EdgeId> resolvePath(const xcvsim::Graph& g, RowCol start,
                                const std::vector<LocalWire>& wires);

}  // namespace jroute
