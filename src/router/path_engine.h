// Explicit-path resolution: turn a user Path (start tile + local wire
// sequence, section 3.1) into the concrete PIP chain it denotes.
//
// The cursor starts at the path's location; after each wire is driven, the
// cursor may sit at any tap of that segment (a single's far end, a hex's
// MID or END), and the next wire in the list disambiguates: the connection
// is made at whichever tap of the current segment exposes both wires with
// a PIP between them.
#pragma once

#include <vector>

#include "router/options.h"
#include "rrg/graph.h"

namespace jroute {

using xcvsim::DelayPs;
using xcvsim::EdgeId;
using xcvsim::LocalWire;
using xcvsim::NodeId;
using xcvsim::RowCol;

/// The PIP chain (source-side first) a path denotes. Throws ArgumentError
/// when a wire does not exist at the cursor, or when no PIP connects two
/// consecutive wires anywhere along the current segment.
std::vector<EdgeId> resolvePath(const xcvsim::Graph& g, RowCol start,
                                const std::vector<LocalWire>& wires);

/// How the engines should attempt a point-to-point request.
enum class Strategy : uint8_t {
  kTemplate,  // library templates first, maze fallback
  kLongLine,  // long-line composition templates first, maze fallback
  kMaze,      // straight to the maze
};

/// A selector decision plus the signals it was derived from.
struct StrategyChoice {
  Strategy strategy = Strategy::kMaze;
  int distance = 0;            ///< manhattan tiles, source to sink
  DelayPs estimate = 0;        ///< lookahead bound, all wires (kFull)
  DelayPs estimateNoLongs = 0; ///< lookahead bound without long lines
};

/// Pick the routing strategy for one source/sink pair before searching.
///
/// With a lookahead table resolved, the choice is cost-driven: short
/// requests (within templateMaxDistance) go to the template library; past
/// that, a strictly better kFull than kNoLongs bound means long lines buy
/// delay over this displacement, so a long-line composition template is
/// worth attempting before the maze. Without a lookahead the legacy fixed
/// ordering applies (templates inside templateMaxDistance, else maze).
/// Bumps the router.lookahead.select.* counters.
StrategyChoice selectStrategy(const xcvsim::Graph& g, NodeId src,
                              NodeId sink, const RouterOptions& opts);

}  // namespace jroute
