#include "router/template_lib.h"

#include <set>
#include <utility>

namespace jroute {

using xcvsim::DeviceSpec;
using xcvsim::Dir;
using xcvsim::hexValue;
using xcvsim::kHexSpan;
using xcvsim::opposite;
using xcvsim::singleValue;
using xcvsim::templateDCol;
using xcvsim::templateDRow;

namespace {

using Seq = std::vector<TemplateValue>;

/// One axis decomposed into `hexes` hex steps plus `singles` single steps.
struct AxisPlan {
  TemplateValue hexStep;
  TemplateValue singleStep;
  int hexes = 0;
  int singles = 0;
};

/// Decompositions of a 1-D displacement into hex/single steps: the exact
/// split, and (when the remainder is large) an overshoot-and-come-back
/// variant that trades singles for one extra hex.
std::vector<AxisPlan> axisPlans(int delta, Dir fwd, Dir back) {
  std::vector<AxisPlan> plans;
  const int mag = delta < 0 ? -delta : delta;
  const Dir dir = delta >= 0 ? fwd : back;
  const Dir rev = delta >= 0 ? back : fwd;
  plans.push_back(
      {hexValue(dir), singleValue(dir), mag / kHexSpan, mag % kHexSpan});
  if (mag % kHexSpan >= 4) {
    AxisPlan over{hexValue(dir), singleValue(rev), mag / kHexSpan + 1,
                  kHexSpan - mag % kHexSpan};
    plans.push_back(over);
  }
  return plans;
}

void appendHexes(Seq& seq, const AxisPlan& plan) {
  for (int i = 0; i < plan.hexes; ++i) seq.push_back(plan.hexStep);
}

void appendSingles(Seq& seq, const AxisPlan& plan) {
  for (int i = 0; i < plan.singles; ++i) seq.push_back(plan.singleStep);
}

bool isHexStep(TemplateValue v) {
  switch (v) {
    case TemplateValue::EAST6:
    case TemplateValue::WEST6:
    case TemplateValue::NORTH6:
    case TemplateValue::SOUTH6:
      return true;
    default:
      return false;
  }
}

/// A zero-displacement rectangle of four singles around `at`, oriented so
/// every corner stays inside the device. Used both for same-tile detours
/// and to step a terminal hex down to the single layer (hexes cannot
/// drive CLB inputs directly).
Seq cornerLoop(const DeviceSpec& dev, RowCol at, bool verticalFirst) {
  const Dir hd = at.col + 1 < dev.cols ? Dir::East : Dir::West;
  const Dir vd = at.row + 1 < dev.rows ? Dir::North : Dir::South;
  if (verticalFirst) {
    return {singleValue(vd), singleValue(hd), singleValue(opposite(vd)),
            singleValue(opposite(hd))};
  }
  return {singleValue(hd), singleValue(vd), singleValue(opposite(hd)),
          singleValue(opposite(vd))};
}

/// Walk the body's nominal tile positions from `from`; false if any step
/// lands outside the device (overshoot hexes can poke past the edge).
bool staysInBounds(const DeviceSpec& dev, RowCol from, const Seq& body) {
  int r = from.row;
  int c = from.col;
  for (TemplateValue v : body) {
    r += templateDRow(v);
    c += templateDCol(v);
    if (r < 0 || r >= dev.rows || c < 0 || c >= dev.cols) return false;
  }
  return true;
}

}  // namespace

std::vector<Seq> longTemplatesFor(const DeviceSpec& dev, RowCol from,
                                  RowCol to, bool srcIsOutput,
                                  bool dstIsInput) {
  const int dr = to.row - from.row;
  const int dc = to.col - from.col;
  std::vector<Seq> out;
  std::set<Seq> seen;

  // One axis rides the long; the other is decomposed as usual. `axisDelta`
  // is the long-axis displacement, `crossDelta` the other one.
  const auto compose = [&](TemplateValue longStep, int axisDelta,
                           int crossDelta, Dir axisFwd, Dir axisBack,
                           Dir crossFwd, Dir crossBack) {
    // Exit tiles of a long are congruent to the entry tile modulo the
    // access period, so the suffix's long-axis share is the residual of
    // axisDelta — and it must *start* with a hex (longs drive only
    // hexes), which forces the overshoot shape: one same-axis hex past
    // the sink, singles back. Both overshoot directions are candidates;
    // the walker's exit exploration picks whichever tap exists.
    const int r0 =
        ((axisDelta % xcvsim::kLongAccessPeriod) + xcvsim::kLongAccessPeriod) %
        xcvsim::kLongAccessPeriod;
    struct AxisSuffix {
      int residual;    // long-axis tiles covered by the suffix
      AxisPlan plan;   // always hexes >= 1
    };
    std::vector<AxisSuffix> suffixes;
    if (r0 == 0) {
      suffixes.push_back({kHexSpan, {hexValue(axisFwd), singleValue(axisFwd),
                                     1, 0}});
      suffixes.push_back(
          {-kHexSpan, {hexValue(axisBack), singleValue(axisBack), 1, 0}});
    } else {
      suffixes.push_back(
          {r0, {hexValue(axisFwd), singleValue(axisBack), 1, kHexSpan - r0}});
      suffixes.push_back(
          {r0 - kHexSpan, {hexValue(axisBack), singleValue(axisFwd), 1, r0}});
    }
    const auto crossPlans = axisPlans(crossDelta, crossFwd, crossBack);
    for (const AxisSuffix& sfx : suffixes) {
      // Nominal exit tile: the long keeps the cross coordinate of the
      // entry tile; on its own axis it exits sink-minus-residual, which
      // is congruent to the entry (mod access period) by construction.
      const bool horizontal = longStep == TemplateValue::LONGH;
      const int exitRow = horizontal ? from.row : to.row - sfx.residual;
      const int exitCol = horizontal ? to.col - sfx.residual : from.col;
      for (const AxisPlan& cp : crossPlans) {
        Seq body{longStep};
        appendHexes(body, sfx.plan);   // same-axis hex leads off the long
        appendHexes(body, cp);
        appendSingles(body, sfx.plan);
        appendSingles(body, cp);
        if (dstIsInput && !body.empty() && isHexStep(body.back())) {
          const Seq loop = cornerLoop(dev, to, false);
          body.insert(body.end(), loop.begin(), loop.end());
        }
        // Bounds: walk the post-long steps from the nominal exit tile
        // (the long itself has no nominal displacement).
        const RowCol exit{static_cast<int16_t>(exitRow),
                          static_cast<int16_t>(exitCol)};
        if (exitRow < 0 || exitRow >= dev.rows || exitCol < 0 ||
            exitCol >= dev.cols) {
          continue;
        }
        if (!staysInBounds(dev, exit, Seq(body.begin() + 1, body.end()))) {
          continue;
        }
        Seq t;
        if (srcIsOutput) t.push_back(TemplateValue::OUTMUX);
        t.insert(t.end(), body.begin(), body.end());
        if (dstIsInput) t.push_back(TemplateValue::CLBIN);
        if (seen.insert(t).second) out.push_back(std::move(t));
      }
    }
  };

  // A long only pays off when it replaces at least a hex chain on its
  // axis; the cross axis rides the ordinary decomposition.
  if (dc > kHexSpan || dc < -kHexSpan) {
    compose(TemplateValue::LONGH, dc, dr, Dir::East, Dir::West, Dir::North,
            Dir::South);
  }
  if (dr > kHexSpan || dr < -kHexSpan) {
    compose(TemplateValue::LONGV, dr, dc, Dir::North, Dir::South, Dir::East,
            Dir::West);
  }
  return out;
}

std::vector<Seq> templatesFor(const DeviceSpec& dev, RowCol from, RowCol to,
                              bool srcIsOutput, bool dstIsInput) {
  const int dr = to.row - from.row;
  const int dc = to.col - from.col;
  std::vector<Seq> bodies;

  if (dr == 0 && dc == 0 && srcIsOutput && dstIsInput) {
    // Same-tile: the dedicated feedback PIP is a single hop to CLBIN.
    bodies.push_back({});
    // Or out and back around a rectangle of singles. A straight U-turn in
    // the same channel is not a legal PIP pattern, so the detour has area.
    bodies.push_back(cornerLoop(dev, from, false));
    bodies.push_back(cornerLoop(dev, from, true));
  } else if (dr == 0 && (dc == 1 || dc == -1) && srcIsOutput && dstIsInput) {
    // Horizontal neighbours: the dedicated direct connect, single hop.
    bodies.push_back({});
  }

  const auto rowPlans = axisPlans(dr, Dir::North, Dir::South);
  const auto colPlans = axisPlans(dc, Dir::East, Dir::West);
  for (const AxisPlan& rp : rowPlans) {
    for (const AxisPlan& cp : colPlans) {
      // Hexes lead in every ordering: singles cannot drive hexes, so a
      // hex step after the first single step would never replay.
      Seq colFirst;
      appendHexes(colFirst, cp);
      appendHexes(colFirst, rp);
      appendSingles(colFirst, cp);
      appendSingles(colFirst, rp);
      bodies.push_back(std::move(colFirst));
      if (dr != 0 && dc != 0) {
        Seq rowFirst;
        appendHexes(rowFirst, rp);
        appendHexes(rowFirst, cp);
        appendSingles(rowFirst, rp);
        appendSingles(rowFirst, cp);
        bodies.push_back(std::move(rowFirst));
      }
    }
  }

  std::vector<Seq> out;
  std::set<Seq> seen;
  out.reserve(bodies.size());
  for (Seq& body : bodies) {
    // Hexes cannot drive CLB inputs: step a terminal hex down to the
    // single layer with a zero-displacement loop around the sink tile.
    if (dstIsInput && !body.empty() && isHexStep(body.back())) {
      const Seq loop = cornerLoop(dev, to, false);
      body.insert(body.end(), loop.begin(), loop.end());
    }
    if (!staysInBounds(dev, from, body)) continue;
    Seq t;
    // Suppress OUTMUX for the zero-length bodies: those rely on the
    // dedicated feedback / direct-connect PIPs straight off the output.
    if (srcIsOutput && !body.empty()) t.push_back(TemplateValue::OUTMUX);
    t.insert(t.end(), body.begin(), body.end());
    if (dstIsInput) t.push_back(TemplateValue::CLBIN);
    if (t.empty()) continue;
    if (!seen.insert(t).second) continue;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace jroute
