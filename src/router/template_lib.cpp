#include "router/template_lib.h"

#include <set>
#include <utility>

namespace jroute {

using xcvsim::DeviceSpec;
using xcvsim::Dir;
using xcvsim::hexValue;
using xcvsim::kHexSpan;
using xcvsim::opposite;
using xcvsim::singleValue;
using xcvsim::templateDCol;
using xcvsim::templateDRow;

namespace {

using Seq = std::vector<TemplateValue>;

/// One axis decomposed into `hexes` hex steps plus `singles` single steps.
struct AxisPlan {
  TemplateValue hexStep;
  TemplateValue singleStep;
  int hexes = 0;
  int singles = 0;
};

/// Decompositions of a 1-D displacement into hex/single steps: the exact
/// split, and (when the remainder is large) an overshoot-and-come-back
/// variant that trades singles for one extra hex.
std::vector<AxisPlan> axisPlans(int delta, Dir fwd, Dir back) {
  std::vector<AxisPlan> plans;
  const int mag = delta < 0 ? -delta : delta;
  const Dir dir = delta >= 0 ? fwd : back;
  const Dir rev = delta >= 0 ? back : fwd;
  plans.push_back(
      {hexValue(dir), singleValue(dir), mag / kHexSpan, mag % kHexSpan});
  if (mag % kHexSpan >= 4) {
    AxisPlan over{hexValue(dir), singleValue(rev), mag / kHexSpan + 1,
                  kHexSpan - mag % kHexSpan};
    plans.push_back(over);
  }
  return plans;
}

void appendHexes(Seq& seq, const AxisPlan& plan) {
  for (int i = 0; i < plan.hexes; ++i) seq.push_back(plan.hexStep);
}

void appendSingles(Seq& seq, const AxisPlan& plan) {
  for (int i = 0; i < plan.singles; ++i) seq.push_back(plan.singleStep);
}

bool isHexStep(TemplateValue v) {
  switch (v) {
    case TemplateValue::EAST6:
    case TemplateValue::WEST6:
    case TemplateValue::NORTH6:
    case TemplateValue::SOUTH6:
      return true;
    default:
      return false;
  }
}

/// A zero-displacement rectangle of four singles around `at`, oriented so
/// every corner stays inside the device. Used both for same-tile detours
/// and to step a terminal hex down to the single layer (hexes cannot
/// drive CLB inputs directly).
Seq cornerLoop(const DeviceSpec& dev, RowCol at, bool verticalFirst) {
  const Dir hd = at.col + 1 < dev.cols ? Dir::East : Dir::West;
  const Dir vd = at.row + 1 < dev.rows ? Dir::North : Dir::South;
  if (verticalFirst) {
    return {singleValue(vd), singleValue(hd), singleValue(opposite(vd)),
            singleValue(opposite(hd))};
  }
  return {singleValue(hd), singleValue(vd), singleValue(opposite(hd)),
          singleValue(opposite(vd))};
}

/// Walk the body's nominal tile positions from `from`; false if any step
/// lands outside the device (overshoot hexes can poke past the edge).
bool staysInBounds(const DeviceSpec& dev, RowCol from, const Seq& body) {
  int r = from.row;
  int c = from.col;
  for (TemplateValue v : body) {
    r += templateDRow(v);
    c += templateDCol(v);
    if (r < 0 || r >= dev.rows || c < 0 || c >= dev.cols) return false;
  }
  return true;
}

}  // namespace

std::vector<Seq> templatesFor(const DeviceSpec& dev, RowCol from, RowCol to,
                              bool srcIsOutput, bool dstIsInput) {
  const int dr = to.row - from.row;
  const int dc = to.col - from.col;
  std::vector<Seq> bodies;

  if (dr == 0 && dc == 0 && srcIsOutput && dstIsInput) {
    // Same-tile: the dedicated feedback PIP is a single hop to CLBIN.
    bodies.push_back({});
    // Or out and back around a rectangle of singles. A straight U-turn in
    // the same channel is not a legal PIP pattern, so the detour has area.
    bodies.push_back(cornerLoop(dev, from, false));
    bodies.push_back(cornerLoop(dev, from, true));
  } else if (dr == 0 && (dc == 1 || dc == -1) && srcIsOutput && dstIsInput) {
    // Horizontal neighbours: the dedicated direct connect, single hop.
    bodies.push_back({});
  }

  const auto rowPlans = axisPlans(dr, Dir::North, Dir::South);
  const auto colPlans = axisPlans(dc, Dir::East, Dir::West);
  for (const AxisPlan& rp : rowPlans) {
    for (const AxisPlan& cp : colPlans) {
      // Hexes lead in every ordering: singles cannot drive hexes, so a
      // hex step after the first single step would never replay.
      Seq colFirst;
      appendHexes(colFirst, cp);
      appendHexes(colFirst, rp);
      appendSingles(colFirst, cp);
      appendSingles(colFirst, rp);
      bodies.push_back(std::move(colFirst));
      if (dr != 0 && dc != 0) {
        Seq rowFirst;
        appendHexes(rowFirst, rp);
        appendHexes(rowFirst, cp);
        appendSingles(rowFirst, rp);
        appendSingles(rowFirst, cp);
        bodies.push_back(std::move(rowFirst));
      }
    }
  }

  std::vector<Seq> out;
  std::set<Seq> seen;
  out.reserve(bodies.size());
  for (Seq& body : bodies) {
    // Hexes cannot drive CLB inputs: step a terminal hex down to the
    // single layer with a zero-displacement loop around the sink tile.
    if (dstIsInput && !body.empty() && isHexStep(body.back())) {
      const Seq loop = cornerLoop(dev, to, false);
      body.insert(body.end(), loop.begin(), loop.end());
    }
    if (!staysInBounds(dev, from, body)) continue;
    Seq t;
    // Suppress OUTMUX for the zero-length bodies: those rely on the
    // dedicated feedback / direct-connect PIPs straight off the output.
    if (srcIsOutput && !body.empty()) t.push_back(TemplateValue::OUTMUX);
    t.insert(t.end(), body.begin(), body.end());
    if (dstIsInput) t.push_back(TemplateValue::CLBIN);
    if (t.empty()) continue;
    if (!seen.insert(t).second) continue;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace jroute
