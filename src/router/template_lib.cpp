#include "router/template_lib.h"

#include <array>

#include "arch/device.h"

namespace jroute {

using xcvsim::Dir;
using xcvsim::hexValue;
using xcvsim::kHexSpan;
using xcvsim::singleValue;

namespace {

using Seq = std::vector<TemplateValue>;

/// One axis decomposed into `hexes` hex steps plus `singles` single steps.
struct AxisPlan {
  TemplateValue hexStep;
  TemplateValue singleStep;
  int hexes = 0;
  int singles = 0;
};

/// Decompositions of a 1-D displacement into hex/single steps: the exact
/// split, and (when the remainder is large) an overshoot-and-come-back
/// variant that trades singles for one extra hex.
std::vector<AxisPlan> axisPlans(int delta, Dir fwd, Dir back) {
  std::vector<AxisPlan> plans;
  const int mag = delta < 0 ? -delta : delta;
  const Dir dir = delta >= 0 ? fwd : back;
  const Dir rev = delta >= 0 ? back : fwd;
  plans.push_back(
      {hexValue(dir), singleValue(dir), mag / kHexSpan, mag % kHexSpan});
  if (mag % kHexSpan >= 4) {
    AxisPlan over{hexValue(dir), singleValue(rev), mag / kHexSpan + 1,
                  kHexSpan - mag % kHexSpan};
    plans.push_back(over);
  }
  return plans;
}

void appendAxis(Seq& seq, const AxisPlan& plan) {
  for (int i = 0; i < plan.hexes; ++i) seq.push_back(plan.hexStep);
  for (int i = 0; i < plan.singles; ++i) seq.push_back(plan.singleStep);
}

}  // namespace

std::vector<Seq> templatesFor(RowCol from, RowCol to, bool srcIsOutput,
                              bool dstIsInput) {
  const int dr = to.row - from.row;
  const int dc = to.col - from.col;
  std::vector<Seq> bodies;

  if (dr == 0 && dc == 0 && srcIsOutput && dstIsInput) {
    // Same-tile: the dedicated feedback PIP is a single hop to CLBIN.
    bodies.push_back({});
    // Or out on a single and back on the opposite one (out-and-return).
    bodies.push_back({singleValue(Dir::East), singleValue(Dir::West)});
    bodies.push_back({singleValue(Dir::North), singleValue(Dir::South)});
  } else if (dr == 0 && (dc == 1 || dc == -1) && srcIsOutput && dstIsInput) {
    // Horizontal neighbours: the dedicated direct connect, single hop.
    bodies.push_back({});
    bodies.push_back({singleValue(dc > 0 ? Dir::East : Dir::West)});
  }

  const auto rowPlans = axisPlans(dr, Dir::North, Dir::South);
  const auto colPlans = axisPlans(dc, Dir::East, Dir::West);
  for (const AxisPlan& rp : rowPlans) {
    for (const AxisPlan& cp : colPlans) {
      Seq colFirst;
      appendAxis(colFirst, cp);
      appendAxis(colFirst, rp);
      bodies.push_back(colFirst);
      if (dr != 0 && dc != 0) {
        Seq rowFirst;
        appendAxis(rowFirst, rp);
        appendAxis(rowFirst, cp);
        bodies.push_back(rowFirst);
      }
    }
  }

  std::vector<Seq> out;
  out.reserve(bodies.size());
  for (Seq& body : bodies) {
    Seq t;
    // Suppress OUTMUX for the zero-length bodies: those rely on the
    // dedicated feedback / direct-connect PIPs straight off the output.
    if (srcIsOutput && !body.empty()) t.push_back(TemplateValue::OUTMUX);
    t.insert(t.end(), body.begin(), body.end());
    if (dstIsInput) t.push_back(TemplateValue::CLBIN);
    if (t.empty()) continue;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace jroute
