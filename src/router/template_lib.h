// Predefined template generation for auto point-to-point routing.
//
// "Another possibility that would potentially be faster is to define a set
//  of unique and predefined templates that would get from the source to
//  the sink and try each one. If all of them fail then the router could
//  fall back on a maze algorithm. The benefit of defining the template
//  would be to reduce the search space." (section 3.1)
//
// Templates decompose the tile displacement into hex (6-tile) and single
// (1-tile) steps in a few orderings, bracketed by OUTMUX on the source
// side and CLBIN on the sink side when the endpoints are logic pins.
// Long lines are deliberately absent here (their exit point is data-
// dependent, so fixed templates cannot target an exact sink); the maze
// fallback exploits them instead.
#pragma once

#include <vector>

#include "arch/template_value.h"
#include "common/types.h"

namespace jroute {

using xcvsim::RowCol;
using xcvsim::TemplateValue;

/// Candidate templates for routing from tile `from` to tile `to`.
/// `srcIsOutput`: prepend OUTMUX (source is a slice output pin).
/// `dstIsInput`: append CLBIN (sink is a CLB input pin).
std::vector<std::vector<TemplateValue>> templatesFor(RowCol from, RowCol to,
                                                     bool srcIsOutput,
                                                     bool dstIsInput);

}  // namespace jroute
