// Predefined template generation for auto point-to-point routing.
//
// "Another possibility that would potentially be faster is to define a set
//  of unique and predefined templates that would get from the source to
//  the sink and try each one. If all of them fail then the router could
//  fall back on a maze algorithm. The benefit of defining the template
//  would be to reduce the search space." (section 3.1)
//
// Templates decompose the tile displacement into hex (6-tile) and single
// (1-tile) steps, bracketed by OUTMUX on the source side and CLBIN on the
// sink side when the endpoints are logic pins. Three structural rules of
// the switch matrix shape every generated sequence (jrverify's tpl-replay
// rule holds the generator to them):
//   - singles never drive hexes, so all hex steps precede the first
//     single step in every ordering;
//   - hexes never drive CLB inputs, so a body that would end on a hex is
//     extended with a zero-displacement rectangle of four singles around
//     the sink tile (oriented to stay inside the device);
//   - a single cannot drive the opposite single in its own channel, so
//     the same-tile out-and-return detours are rectangles, not U-turns.
// Overshoot variants (one extra hex, then singles back) can poke past the
// device edge; bodies whose nominal tile walk leaves the device are
// dropped, which is why generation needs the DeviceSpec. Long lines are
// deliberately absent here (their exit point is data-dependent, so fixed
// templates cannot target an exact sink); the maze fallback exploits them
// instead.
#pragma once

#include <vector>

#include "arch/device.h"
#include "arch/template_value.h"
#include "common/types.h"

namespace jroute {

using xcvsim::RowCol;
using xcvsim::TemplateValue;

/// Candidate templates for routing from tile `from` to tile `to` on `dev`.
/// `srcIsOutput`: prepend OUTMUX (source is a slice output pin).
/// `dstIsInput`: append CLBIN (sink is a CLB input pin).
std::vector<std::vector<TemplateValue>> templatesFor(
    const xcvsim::DeviceSpec& dev, RowCol from, RowCol to, bool srcIsOutput,
    bool dstIsInput);

/// Long-line composition templates: OUTMUX onto a long line, a hex off it,
/// then hex/single cleanup to the sink. The regular library omits longs
/// because a long's exit point is data-dependent — but the template
/// *walker* explores every exit of a matched segment, so a composition
/// template only has to fix the residual suffix: the long contributes a
/// whole displacement class (entry and exit tiles are congruent mod the
/// long access period), and the suffix absorbs the remainder. The first
/// step after the long is always a same-axis hex (longs drive only hexes),
/// so suffixes are overshoot-shaped: one hex past the sink column/row,
/// singles back. Only generated for displacements a long can plausibly
/// beat hexes over (the strategy selector gates callers further).
std::vector<std::vector<TemplateValue>> longTemplatesFor(
    const xcvsim::DeviceSpec& dev, RowCol from, RowCol to, bool srcIsOutput,
    bool dstIsInput);

}  // namespace jroute
