#include "router/path_engine.h"

#include <algorithm>
#include <string>

#include "common/error.h"
#include "lookahead/lookahead.h"
#include "obs/metrics.h"

namespace jroute {

using xcvsim::ArgumentError;
using xcvsim::Graph;
using xcvsim::kInvalidEdge;
using xcvsim::kInvalidNode;
using xcvsim::NodeId;

std::vector<EdgeId> resolvePath(const Graph& g, RowCol start,
                                const std::vector<LocalWire>& wires) {
  if (wires.size() < 2) {
    throw ArgumentError("a path needs at least two wires");
  }
  NodeId cur = g.nodeAt(start, wires[0]);
  if (cur == kInvalidNode) {
    throw ArgumentError("path start wire " + xcvsim::wireName(wires[0]) +
                        " does not exist at R" + std::to_string(start.row) +
                        "C" + std::to_string(start.col));
  }
  std::vector<EdgeId> chain;
  chain.reserve(wires.size() - 1);
  RowCol entry = start;  // tile through which `cur` was entered
  for (size_t i = 1; i < wires.size(); ++i) {
    const LocalWire next = wires[i];
    EdgeId found = kInvalidEdge;
    // The cursor advances along each wire: try the taps of the current
    // segment farthest from its entry tile first, so a single exits at its
    // far end and a hex at END before MID (the paper's example semantics).
    std::vector<RowCol> taps = g.tapsOf(cur);
    std::stable_sort(taps.begin(), taps.end(),
                     [&](const RowCol a, const RowCol b) {
                       return manhattan(a, entry) > manhattan(b, entry);
                     });
    for (const RowCol tap : taps) {
      const NodeId cand = g.nodeAt(tap, next);
      if (cand == kInvalidNode) continue;
      const EdgeId e = g.findEdge(cur, cand, tap);
      if (e != kInvalidEdge) {
        found = e;
        entry = tap;
        break;
      }
    }
    if (found == kInvalidEdge) {
      throw ArgumentError("path step " + std::to_string(i) + ": no PIP " +
                          g.nodeName(cur) + " -> " + xcvsim::wireName(next));
    }
    chain.push_back(found);
    cur = g.edge(found).to;
  }
  return chain;
}

namespace {

struct SelectorMetrics {
  jrobs::Counter& tmpl =
      jrobs::registry().counter("router.lookahead.select.template");
  jrobs::Counter& longLine =
      jrobs::registry().counter("router.lookahead.select.long_line");
  jrobs::Counter& maze =
      jrobs::registry().counter("router.lookahead.select.maze");
};

SelectorMetrics& selectorMetrics() {
  static SelectorMetrics m;
  return m;
}

/// Is the displacement shaped so a long-line composition walk is cheap?
/// Long templates are axis compositions: the walk is a near-constant-work
/// hit when the request hugs one axis (cross-axis ≤ 1 tile) and the major
/// displacement sits on the long-access lattice (no residual suffix to
/// wander through). Off-lattice requests multiply the walker's exit
/// subtrees until the attempt costs more than an entire maze search.
bool longLatticeAligned(const Graph& g, NodeId src, NodeId sink) {
  const RowCol a = g.positionOf(src);
  const RowCol b = g.positionOf(sink);
  const int dr = a.row > b.row ? a.row - b.row : b.row - a.row;
  const int dc = a.col > b.col ? a.col - b.col : b.col - a.col;
  const int major = dr > dc ? dr : dc;
  const int minor = dr > dc ? dc : dr;
  return minor <= 1 && major % xcvsim::kLongAccessPeriod == 0;
}

}  // namespace

StrategyChoice selectStrategy(const Graph& g, NodeId src, NodeId sink,
                              const RouterOptions& opts) {
  StrategyChoice choice;
  choice.distance = manhattan(g.positionOf(src), g.positionOf(sink));

  const jrla::Lookahead* la = opts.useLookahead ? opts.lookahead : nullptr;
  if (la == nullptr) {
    // Legacy fixed ordering: templates inside the distance cap, else maze.
    choice.strategy = (opts.templateFirst &&
                       choice.distance <= opts.templateMaxDistance)
                          ? Strategy::kTemplate
                          : Strategy::kMaze;
    return choice;
  }

  choice.estimate =
      la->estimate(src, sink, jrla::Lookahead::Mode::kFull);
  choice.estimateNoLongs =
      la->estimate(src, sink, jrla::Lookahead::Mode::kNoLongs);

  SelectorMetrics& m = selectorMetrics();
  if (opts.templateFirst && choice.distance < opts.templateMaxDistance) {
    // Strictly inside the template cap. E3 locates the template/maze
    // crossover near the cap itself, where a template attempt averages
    // break-even at best — so unlike the legacy inclusive ordering, the
    // selector gives boundary-distance requests to the guided maze.
    choice.strategy = Strategy::kTemplate;
    m.tmpl.add();
  } else if (opts.templateFirst && opts.useLongLines &&
             choice.estimate < choice.estimateNoLongs &&
             longLatticeAligned(g, src, sink)) {
    // Long lines strictly improve the best achievable delay over this
    // displacement AND the shape makes the composition walk cheap — worth
    // attempting before surrendering the request to the maze. Everything
    // else goes to the lookahead-guided maze, which routes an arbitrary
    // far net in less time than one speculative long-template walk.
    choice.strategy = Strategy::kLongLine;
    m.longLine.add();
  } else {
    choice.strategy = Strategy::kMaze;
    m.maze.add();
  }
  return choice;
}

}  // namespace jroute
