#include "router/path_engine.h"

#include <algorithm>
#include <string>

#include "common/error.h"

namespace jroute {

using xcvsim::ArgumentError;
using xcvsim::Graph;
using xcvsim::kInvalidEdge;
using xcvsim::kInvalidNode;
using xcvsim::NodeId;

std::vector<EdgeId> resolvePath(const Graph& g, RowCol start,
                                const std::vector<LocalWire>& wires) {
  if (wires.size() < 2) {
    throw ArgumentError("a path needs at least two wires");
  }
  NodeId cur = g.nodeAt(start, wires[0]);
  if (cur == kInvalidNode) {
    throw ArgumentError("path start wire " + xcvsim::wireName(wires[0]) +
                        " does not exist at R" + std::to_string(start.row) +
                        "C" + std::to_string(start.col));
  }
  std::vector<EdgeId> chain;
  chain.reserve(wires.size() - 1);
  RowCol entry = start;  // tile through which `cur` was entered
  for (size_t i = 1; i < wires.size(); ++i) {
    const LocalWire next = wires[i];
    EdgeId found = kInvalidEdge;
    // The cursor advances along each wire: try the taps of the current
    // segment farthest from its entry tile first, so a single exits at its
    // far end and a hex at END before MID (the paper's example semantics).
    std::vector<RowCol> taps = g.tapsOf(cur);
    std::stable_sort(taps.begin(), taps.end(),
                     [&](const RowCol a, const RowCol b) {
                       return manhattan(a, entry) > manhattan(b, entry);
                     });
    for (const RowCol tap : taps) {
      const NodeId cand = g.nodeAt(tap, next);
      if (cand == kInvalidNode) continue;
      const EdgeId e = g.findEdge(cur, cand, tap);
      if (e != kInvalidEdge) {
        found = e;
        entry = tap;
        break;
      }
    }
    if (found == kInvalidEdge) {
      throw ArgumentError("path step " + std::to_string(i) + ": no PIP " +
                          g.nodeName(cur) + " -> " + xcvsim::wireName(next));
    }
    chain.push_back(found);
    cur = g.edge(found).to;
  }
  return chain;
}

}  // namespace jroute
