// Template-library rules: every generated template must be an honest,
// replayable plan — exact displacement, in-bounds, and executable on a
// clean fabric. This is the layer that catches a generator emitting
// sequences the switch matrix cannot legally step through (hex after
// single, hex directly into CLBIN, same-channel U-turns).
#include <utility>

#include "arch/wires.h"
#include "router/options.h"
#include "router/template_engine.h"
#include "verify/rules.h"

namespace jrverify {
namespace {

using xcvsim::clbIn;
using xcvsim::isClockPin;
using xcvsim::kClbInputs;
using xcvsim::kInvalidLocalWire;
using xcvsim::kInvalidNode;
using xcvsim::sliceOut;
using xcvsim::templateDCol;
using xcvsim::templateDRow;
using xcvsim::templateValueName;

/// Displacements probed per device: interior decompositions (pure hex,
/// overshoot, mixed) plus corner/edge pairs where the nominal path would
/// poke past the array if the generator forgot to clip.
std::vector<std::pair<RowCol, RowCol>> probePairs(const DeviceSpec& dev) {
  const auto rc = [](int r, int c) {
    return RowCol{static_cast<int16_t>(r), static_cast<int16_t>(c)};
  };
  const int mr = dev.rows / 2;
  const int mc = dev.cols / 2;
  const int lr = dev.rows - 1;
  const int lc = dev.cols - 1;
  return {
      {rc(mr, mc), rc(mr, mc)},          // same tile (feedback + detours)
      {rc(mr, mc), rc(mr, mc + 1)},      // direct connect east
      {rc(mr, mc), rc(mr, mc - 1)},      // direct connect west
      {rc(mr, mc), rc(mr + 1, mc)},      // one single north
      {rc(mr, mc), rc(mr, mc + 6)},      // pure hex: terminal-hex step-down
      {rc(mr, mc), rc(mr + 6, mc + 6)},  // two-axis pure hex
      {rc(mr, mc), rc(mr + 2, mc + 5)},  // overshoot on the column axis
      {rc(mr, mc), rc(mr - 3, mc + 4)},  // mixed exact/overshoot
      {rc(0, 0), rc(0, 5)},              // overshoot from the SW corner
      {rc(0, lc - 5), rc(0, lc)},        // overshoot toward the SE corner
      {rc(lr, lc), rc(lr, lc - 6)},      // pure hex out of the NE corner
      {rc(lr, 0), rc(lr - 6, 0)},        // pure hex down the west edge
  };
}

/// tpl-displacement — every template nets the exact displacement and is
/// bracketed by OUTMUX/CLBIN (the bare feedback/direct variant excepted).
class DisplacementRule final : public Rule {
 public:
  const char* id() const override { return "tpl-displacement"; }
  Layer layer() const override { return Layer::kTemplate; }
  const char* description() const override {
    return "templates net the exact tile displacement, OUTMUX..CLBIN";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    for (const auto& [from, to] : probePairs(*m.dev)) {
      for (const auto& tmpl : m.templates(from, to)) {
        ++out.templatesChecked;
        int dr = 0, dc = 0;
        bool directional = false;
        for (const TemplateValue v : tmpl) {
          dr += templateDRow(v);
          dc += templateDCol(v);
          directional =
              directional || templateDRow(v) != 0 || templateDCol(v) != 0;
        }
        if (!directional) continue;  // displacement rides a dedicated pip
        if (dr != to.row - from.row || dc != to.col - from.col) {
          addFinding(*this, out, entity(from, to, tmpl),
                     "nets (" + std::to_string(dr) + "," +
                         std::to_string(dc) + ") instead of the tile delta",
                     "the axis decomposition in template_lib.cpp no longer "
                     "sums to the displacement");
        }
        if (tmpl.front() != TemplateValue::OUTMUX ||
            tmpl.back() != TemplateValue::CLBIN) {
          addFinding(*this, out, entity(from, to, tmpl),
                     "pin-to-pin template is not OUTMUX-led and CLBIN-ended",
                     "templatesFor(srcIsOutput=true, dstIsInput=true) must "
                     "bracket every directional body");
        }
      }
    }
  }

 private:
  static std::string entity(RowCol from, RowCol to,
                            const std::vector<TemplateValue>& tmpl) {
    std::string s = tileName(from) + "->" + tileName(to) + " [";
    for (size_t i = 0; i < tmpl.size(); ++i) {
      if (i > 0) s += ' ';
      s += templateValueName(tmpl[i]);
    }
    return s + "]";
  }
};

/// tpl-bounds — the nominal tile walk of every template stays inside the
/// device (overshoot variants must be clipped at edges).
class BoundsRule final : public Rule {
 public:
  const char* id() const override { return "tpl-bounds"; }
  Layer layer() const override { return Layer::kTemplate; }
  const char* description() const override {
    return "template walks never leave the device array";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    for (const auto& [from, to] : probePairs(*m.dev)) {
      for (const auto& tmpl : m.templates(from, to)) {
        ++out.templatesChecked;
        int r = from.row, c = from.col;
        for (const TemplateValue v : tmpl) {
          r += templateDRow(v);
          c += templateDCol(v);
          if (r < 0 || r >= m.dev->rows || c < 0 || c >= m.dev->cols) {
            addFinding(
                *this, out,
                tileName(from) + "->" + tileName(to) + " via " +
                    std::string(templateValueName(v)),
                "walk reaches (" + std::to_string(r) + "," +
                    std::to_string(c) + ") outside the array",
                "templatesFor must drop bodies whose nominal positions "
                "leave the device (overshoot near an edge)");
            break;
          }
        }
      }
    }
  }
};

/// tpl-replay — every template replays to a legal, contention-free path
/// on a clean fabric: the follower must reach some non-clock input pin of
/// the destination tile. A template that cannot replay anywhere is dead
/// weight that silently shunts every route to the maze fallback.
class ReplayRule final : public Rule {
 public:
  const char* id() const override { return "tpl-replay"; }
  Layer layer() const override { return Layer::kTemplate; }
  const char* description() const override {
    return "every template replays on a clean fabric to a real sink pin";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const xcvsim::Graph& g = *m.graph;
    const jroute::RouterOptions opts;
    for (const auto& [from, to] : probePairs(*m.dev)) {
      const NodeId src = g.nodeAt(from, sliceOut(0));
      if (src == kInvalidNode) continue;
      for (const auto& tmpl : m.templates(from, to)) {
        ++out.templatesChecked;
        bool found = false;
        // Probe concrete sink pins: with no required target the follower
        // accepts any full-depth node, which can sit at the wrong tile
        // after a mid-tap hex exit — not a replay proof.
        for (int pin = 0; pin < kClbInputs && !found; ++pin) {
          if (isClockPin(clbIn(pin))) continue;
          const NodeId sink = g.nodeAt(to, clbIn(pin));
          if (sink == kInvalidNode) continue;
          found = jroute::followTemplate(*m.fabric, src, tmpl, sink,
                                         kInvalidLocalWire, opts)
                      .found;
        }
        if (!found) {
          std::string seq;
          for (const TemplateValue v : tmpl) {
            if (!seq.empty()) seq += ' ';
            seq += templateValueName(v);
          }
          addFinding(*this, out,
                     tileName(from) + "->" + tileName(to) + " [" + seq + "]",
                     "template cannot replay to any input pin of the "
                     "destination tile",
                     "the sequence violates a switch-matrix driver rule "
                     "(singles never drive hexes, hexes never drive CLBIN, "
                     "no same-channel U-turn) or was clipped wrongly");
        }
      }
    }
  }
};

/// template-footprint-consistent — every wire a template replay actually
/// steps through lies inside jrplan's extracted claim footprint for that
/// src→sink pin pair. An extractor that under-covers its own templates
/// would make certified planning reject every template route (a silent
/// throughput cliff), so the analyzer's coverage is verified against the
/// replays themselves.
class FootprintRule final : public Rule {
 public:
  const char* id() const override { return "template-footprint-consistent"; }
  Layer layer() const override { return Layer::kTemplate; }
  const char* description() const override {
    return "template replay wire sets stay inside jrplan footprints";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const xcvsim::Graph& g = *m.graph;
    const jroute::RouterOptions opts;
    for (const auto& [from, to] : probePairs(*m.dev)) {
      const NodeId src = g.nodeAt(from, sliceOut(0));
      if (src == kInvalidNode) continue;
      for (const auto& tmpl : m.templates(from, to)) {
        ++out.templatesChecked;
        for (int pin = 0; pin < kClbInputs; ++pin) {
          if (isClockPin(clbIn(pin))) continue;
          const NodeId sink = g.nodeAt(to, clbIn(pin));
          if (sink == kInvalidNode) continue;
          const jroute::TemplateResult res = jroute::followTemplate(
              *m.fabric, src, tmpl, sink, kInvalidLocalWire, opts);
          if (!res.found) continue;
          const jrplan::Footprint fp =
              m.footprint(jroute::Pin{from, sliceOut(0)},
                          jroute::Pin{to, clbIn(pin)});
          if (!fp.sound()) {
            addFinding(*this, out,
                       tileName(from) + "->" + tileName(to),
                       "footprint of a template-replayable pair is unsound",
                       "FootprintExtractor::extractPair must bound every "
                       "pair the template library can serve");
            continue;
          }
          for (const xcvsim::EdgeId e : res.edges) {
            const NodeId n = g.edge(e).to;
            if (!fp.allowsNode(g, n)) {
              addFinding(
                  *this, out,
                  tileName(from) + "->" + tileName(to) + " node " +
                      g.nodeName(n),
                  "replayed template wire escapes the extracted footprint",
                  "addTemplateWalk/long-line strip indexing in "
                  "footprint.cpp no longer covers this step");
              break;
            }
          }
        }
      }
    }
  }
};

}  // namespace

std::vector<const Rule*> templateRules() {
  static const DisplacementRule displacement;
  static const BoundsRule bounds;
  static const ReplayRule replay;
  static const FootprintRule footprint;
  return {&displacement, &bounds, &replay, &footprint};
}

}  // namespace jrverify
