// Bitstream-layer rules: the PIP-to-configuration-bit table must be a
// faithful, collision-free inverse pair with the architecture, and an
// encode of known pips must decode back to exactly that set. These rules
// guard the boundary the hardware actually sees — a wrong slot here means
// a silently mis-programmed device, not a routing failure.
#include <map>
#include <set>
#include <tuple>

#include "arch/wires.h"
#include "bitstream/bitstream.h"
#include "verify/rules.h"

namespace jrverify {
namespace {

using xcvsim::Bitstream;
using xcvsim::DecodedPip;
using xcvsim::kFramesPerColumn;
using xcvsim::kGlobalNets;
using xcvsim::kInvalidLocalWire;
using xcvsim::PipKey;
using xcvsim::PipKeyKind;
using xcvsim::wireName;

const char* kindName(PipKeyKind k) {
  switch (k) {
    case PipKeyKind::TilePip: return "TilePip";
    case PipKeyKind::DirectE: return "DirectE";
    case PipKeyKind::DirectW: return "DirectW";
    case PipKeyKind::GlobalPad: return "GlobalPad";
  }
  return "?";
}

std::string keyName(const PipKey& key) {
  std::string s = kindName(key.kind);
  s += ' ';
  s += key.from == kInvalidLocalWire ? std::string("-") : wireName(key.from);
  s += " -> ";
  s += key.to == kInvalidLocalWire ? std::string("-")
                                   : (key.kind == PipKeyKind::GlobalPad
                                          ? "pad" + std::to_string(key.to)
                                          : wireName(key.to));
  return s;
}

/// Lossless identity for dedup maps. PipKey::packed() is a lossy XOR hash
/// (fine for the table's unordered_map, wrong for uniqueness proofs).
using KeyId = std::tuple<int, LocalWire, LocalWire>;
KeyId keyId(const PipKey& k) {
  return {static_cast<int>(k.kind), k.from, k.to};
}

/// bit-slot-roundtrip — slotOf(keyAt(s)) == s for every PIP slot.
class SlotRoundtripRule final : public Rule {
 public:
  const char* id() const override { return "bit-slot-roundtrip"; }
  Layer layer() const override { return Layer::kBitstream; }
  const char* description() const override {
    return "slotOf and keyAt are inverse over every PIP slot";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const int n = m.table->numPipSlots();
    for (int s = 0; s < n; ++s) {
      ++out.slotsChecked;
      const PipKey& key = m.keyAt(s);
      const int back = m.slotOf(key);
      if (back != s) {
        addFinding(*this, out,
                   "slot " + std::to_string(s) + " (" + keyName(key) + ")",
                   "slotOf(keyAt(slot)) returns " + std::to_string(back),
                   "the slot->key vector and key->slot map in PipTable "
                   "disagree; rebuild both from the same sorted enumeration");
      }
    }
  }
};

/// bit-key-coverage — every pip the architecture enumerates at the sampled
/// tiles (tile pips, directs, global pads) owns a slot in the table.
class KeyCoverageRule final : public Rule {
 public:
  const char* id() const override { return "bit-key-coverage"; }
  Layer layer() const override { return Layer::kBitstream; }
  const char* description() const override {
    return "every enumerated arch pip has a configuration slot";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      m.tilePips(rc, [&](LocalWire from, LocalWire to) {
        ++out.pipsChecked;
        check(m, out, rc, PipKey{PipKeyKind::TilePip, from, to});
      });
      m.directs(rc, [&](LocalWire from, RowCol dst, LocalWire to) {
        ++out.pipsChecked;
        const PipKeyKind kind =
            dst.col > rc.col ? PipKeyKind::DirectE : PipKeyKind::DirectW;
        check(m, out, rc, PipKey{kind, from, to});
      });
    }
    for (int k = 0; k < kGlobalNets; ++k) {
      ++out.pipsChecked;
      check(m, out, RowCol{0, 0},
            PipKey{PipKeyKind::GlobalPad, kInvalidLocalWire,
                   static_cast<LocalWire>(k)});
    }
  }

 private:
  void check(const ModelView& m, VerifyReport& out, RowCol rc,
             const PipKey& key) const {
    if (m.slotOf(key) >= 0) return;
    addFinding(*this, out, tileName(rc) + " " + keyName(key),
               "arch pip has no configuration slot",
               "PipTable's pattern sweep missed this key; the sweep must "
               "cover a full long-access period plus the edge variants");
  }
};

/// bit-no-aliasing — distinct slots never share a key, and a tile's config
/// block fits its column's frames (two slots must never share a bit).
class NoAliasingRule final : public Rule {
 public:
  const char* id() const override { return "bit-no-aliasing"; }
  Layer layer() const override { return Layer::kBitstream; }
  const char* description() const override {
    return "slots are key-unique and the tile block fits its frames";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const int n = m.table->numPipSlots();
    std::map<KeyId, int> firstSlot;
    for (int s = 0; s < n; ++s) {
      ++out.slotsChecked;
      const PipKey& key = m.keyAt(s);
      auto [it, fresh] = firstSlot.emplace(keyId(key), s);
      if (!fresh) {
        addFinding(*this, out,
                   "slots " + std::to_string(it->second) + " and " +
                       std::to_string(s),
                   "both map the same key (" + keyName(key) + ")",
                   "duplicate keys make slotOf ambiguous and decode would "
                   "double-report; dedup the enumeration before sorting");
      }
    }
    const int capacity = kFramesPerColumn * m.bitsPerTileRow();
    if (m.table->slotsPerTile() > capacity) {
      addFinding(*this, out,
                 "slotsPerTile=" + std::to_string(m.table->slotsPerTile()) +
                     " capacity=" + std::to_string(capacity),
                 "tile config block overflows its column's frames",
                 "two slots would share a configuration bit; bitsPerTileRow "
                 "must satisfy slotsPerTile <= kFramesPerColumn * bits");
    }
  }
};

/// bit-encode-decode — setting a known pip set through the slot mapping and
/// decoding the frames recovers exactly that set, nothing more or less.
class EncodeDecodeRule final : public Rule {
 public:
  const char* id() const override { return "bit-encode-decode"; }
  Layer layer() const override { return Layer::kBitstream; }
  const char* description() const override {
    return "decode(encode(pips)) is the identity on a known pip set";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    Bitstream bs(*m.dev, *m.table);
    // (row, col, kind, from, to) — lossless identity for the comparison.
    using Entry = std::tuple<int, int, int, LocalWire, LocalWire>;
    std::set<Entry> expected;
    const auto plant = [&](RowCol rc, const PipKey& key) {
      const int slot = m.slotOf(key);
      if (slot < 0) return;  // coverage rule reports missing keys
      const Entry entry{rc.row, rc.col, static_cast<int>(key.kind), key.from,
                        key.to};
      if (!expected.insert(entry).second) return;
      bs.setSlot(rc, slot, true);
    };
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      int tilePips = 0;
      m.tilePips(rc, [&](LocalWire from, LocalWire to) {
        if (tilePips >= 3) return;
        ++tilePips;
        plant(rc, PipKey{PipKeyKind::TilePip, from, to});
      });
      bool haveDirect = false;
      m.directs(rc, [&](LocalWire from, RowCol dst, LocalWire to) {
        if (haveDirect) return;
        haveDirect = true;
        const PipKeyKind kind =
            dst.col > rc.col ? PipKeyKind::DirectE : PipKeyKind::DirectW;
        plant(rc, PipKey{kind, from, to});
      });
    }
    plant(RowCol{0, 0},
          PipKey{PipKeyKind::GlobalPad, kInvalidLocalWire, 0});
    out.pipsChecked += expected.size();

    std::set<Entry> decoded;
    bool decodeDup = false;
    for (const DecodedPip& p : m.decode(bs)) {
      const Entry entry{p.tile.row, p.tile.col, static_cast<int>(p.key.kind),
                        p.key.from, p.key.to};
      decodeDup = !decoded.insert(entry).second || decodeDup;
    }
    if (decodeDup) {
      addFinding(*this, out, "decodePips", "decode reported a pip twice",
                 "the decoder must visit each (tile, slot) bit exactly once");
    }
    for (const Entry& e : expected) {
      if (decoded.count(e)) continue;
      report(m, out, e, "planted pip missing after decode",
             "the slot's frame/bit address differs between setSlot and the "
             "decoder's sweep");
    }
    for (const Entry& e : decoded) {
      if (expected.count(e)) continue;
      report(m, out, e, "decode reports a pip that was never planted",
             "a stray bit aliases into another slot; check bitIndex maths");
    }
  }

 private:
  template <typename Entry>
  void report(const ModelView&, VerifyReport& out, const Entry& e,
              const char* message, const char* hint) const {
    PipKey key{static_cast<PipKeyKind>(std::get<2>(e)), std::get<3>(e),
               std::get<4>(e)};
    addFinding(*this, out,
               tileName(RowCol{static_cast<int16_t>(std::get<0>(e)),
                               static_cast<int16_t>(std::get<1>(e))}) +
                   " " + keyName(key),
               message, hint);
  }
};

}  // namespace

std::vector<const Rule*> bitstreamRules() {
  static const SlotRoundtripRule roundtrip;
  static const KeyCoverageRule coverage;
  static const NoAliasingRule aliasing;
  static const EncodeDecodeRule encodeDecode;
  return {&roundtrip, &coverage, &aliasing, &encodeDecode};
}

}  // namespace jrverify
