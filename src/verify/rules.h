// Internal glue between the rule catalogue files and the registry.
#pragma once

#include <string>
#include <vector>

#include "verify/verify.h"

namespace jrverify {

std::vector<const Rule*> archRules();
std::vector<const Rule*> rrgRules();
std::vector<const Rule*> templateRules();
std::vector<const Rule*> bitstreamRules();
std::vector<const Rule*> lookaheadRules();

/// Findings reported per rule are capped so one systemic breakage does not
/// drown the report (the exit code still counts every *reported* finding).
inline constexpr size_t kMaxFindingsPerRule = 8;

/// Append a finding unless the rule already hit its cap.
void addFinding(const Rule& rule, VerifyReport& out, std::string entity,
                std::string message, std::string hint);

/// "(r,c)" anchor fragment for entity strings.
std::string tileName(RowCol rc);

/// Is this graph edge live under the view's (optional) edge filter?
inline bool edgeLive(const ModelView& m, EdgeId e) {
  return !m.edgeEnabled || m.edgeEnabled(e);
}

}  // namespace jrverify
