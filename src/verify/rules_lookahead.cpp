// Lookahead-layer rule: the router's precomputed cost map must be an
// admissible heuristic. The A*-pruned maze (router/search.cpp) treats an
// estimate as a *lower bound* on the delay still ahead — an estimate that
// overshoots makes weight-1.0 searches return sub-optimal paths, and a
// spurious "unreachable" verdict makes the hard prune drop routable
// sinks. The rule replays a stratified sample of (source, goal) pairs:
// one true-shortest-path Dijkstra per source over live graph edges (same
// edge cost as the maze: kPipDelayPs + nodeDelay(target)), then every
// sampled goal's estimate is checked against the exact distance.
#include <algorithm>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "fabric/timing.h"
#include "lookahead/lookahead.h"
#include "verify/rules.h"

namespace jrverify {
namespace {

using xcvsim::Edge;
using xcvsim::Graph;
using xcvsim::kPipDelayPs;
using xcvsim::NodeInfo;
using xcvsim::NodeKind;

constexpr DelayPs kInf = jrla::Lookahead::kUnreachable;

/// Up to two representative nodes per wire class, spread across the
/// device (first and last in node-id order): the stratification mirrors
/// the lookahead's own (class, displacement) state space.
std::vector<NodeId> classStratifiedNodes(const Graph& g) {
  constexpr size_t kNumKinds = 16;
  std::vector<NodeId> first(kNumKinds, xcvsim::kInvalidNode);
  std::vector<NodeId> last(kNumKinds, xcvsim::kInvalidNode);
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    const auto k = static_cast<size_t>(g.info(n).kind);
    if (k >= kNumKinds) continue;
    if (first[k] == xcvsim::kInvalidNode) first[k] = n;
    last[k] = n;
  }
  std::vector<NodeId> out;
  for (size_t k = 0; k < kNumKinds; ++k) {
    if (first[k] != xcvsim::kInvalidNode) out.push_back(first[k]);
    if (last[k] != xcvsim::kInvalidNode && last[k] != first[k]) {
      out.push_back(last[k]);
    }
  }
  return out;
}

/// Exact shortest delay from `src` over live edges, to every node that is
/// no farther than the last of `goals`: once every sampled goal has
/// settled, the remaining frontier can only confirm admissibility (their
/// distances exceed every settled one), so the search stops there.
std::vector<DelayPs> dijkstraFrom(const ModelView& m, NodeId src,
                                  std::span<const NodeId> goals,
                                  VerifyReport& out) {
  const Graph& g = *m.graph;
  std::vector<DelayPs> dist(g.numNodes(), kInf);
  std::vector<uint8_t> settled(g.numNodes(), 0);
  std::vector<uint8_t> isGoal(g.numNodes(), 0);
  size_t goalsLeft = 0;
  for (const NodeId goal : goals) {
    if (goal != src && isGoal[goal] == 0) {
      isGoal[goal] = 1;
      ++goalsLeft;
    }
  }
  using Entry = std::pair<DelayPs, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> open;
  dist[src] = 0;
  open.emplace(0, src);
  while (!open.empty() && goalsLeft > 0) {
    const auto [d, n] = open.top();
    open.pop();
    if (d > dist[n] || settled[n] != 0) continue;
    settled[n] = 1;
    goalsLeft -= isGoal[n];
    for (const Edge& e : g.out(n)) {
      if (!edgeLive(m, g.edgeIdOf(n, e))) continue;
      ++out.edgesChecked;
      const DelayPs nd = d + kPipDelayPs + g.nodeDelay(e.to);
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        open.emplace(nd, e.to);
      }
    }
  }
  return dist;
}

/// lookahead-admissible — for a stratified sample of sources, the cost
/// map never estimates more than the true shortest-path delay to any
/// sampled goal, and never calls a reachable goal unreachable.
class AdmissibleRule final : public Rule {
 public:
  const char* id() const override { return "lookahead-admissible"; }
  Layer layer() const override { return Layer::kLookahead; }
  const char* description() const override {
    return "cost-map estimates lower-bound true shortest-path delay";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const Graph& g = *m.graph;
    const std::vector<NodeId> goals = classStratifiedNodes(g);
    // Sources: nodes of every routing-wire class (signals originate on
    // logic/pad outputs but the estimate must hold mid-search from any
    // expanded node, so every class should source a Dijkstra). Each
    // source costs one full-graph Dijkstra, so like the per-tile rules
    // (DESIGN.md §13) the sample thins on large devices to keep the
    // tier-1 gate inside its E17 budget: a fixed node-work allowance,
    // strided over the stratified list to preserve class spread.
    std::vector<NodeId> sources = classStratifiedNodes(g);
    constexpr size_t kNodeWorkBudget = 6'000'000;
    const size_t cap =
        std::max<size_t>(3, kNodeWorkBudget / std::max<size_t>(g.numNodes(), 1));
    if (sources.size() > cap) {
      std::vector<NodeId> thinned;
      thinned.reserve(cap);
      for (size_t i = 0; i < cap; ++i) {
        thinned.push_back(sources[i * sources.size() / cap]);
      }
      sources = std::move(thinned);
    }
    for (const NodeId src : sources) {
      const std::vector<DelayPs> dist = dijkstraFrom(m, src, goals, out);
      for (const NodeId goal : goals) {
        if (dist[goal] >= kInf) continue;  // estimate free to say anything
        ++out.nodesChecked;
        const DelayPs est = m.lookaheadEstimate(src, goal);
        if (est <= dist[goal]) continue;
        const NodeInfo si = g.info(src);
        const NodeInfo gi = g.info(goal);
        addFinding(
            *this, out,
            tileName(si.tile) + " " + g.nodeName(src) + " -> " +
                tileName(gi.tile) + " " + g.nodeName(goal),
            est >= kInf
                ? "cost map calls a reachable goal unreachable (true delay " +
                      std::to_string(dist[goal]) + " ps)"
                : "estimate " + std::to_string(est) +
                      " ps exceeds true shortest-path delay " +
                      std::to_string(dist[goal]) + " ps",
            "the lookahead must lower-bound real delay: check the move "
            "projection and the floor quantization in jrla::Lookahead");
      }
    }
  }
};

}  // namespace

std::vector<const Rule*> lookaheadRules() {
  static const AdmissibleRule admissible;
  return {&admissible};
}

}  // namespace jrverify
