#include "verify/verify.h"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "lookahead/lookahead.h"
#include "obs/jsonutil.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "router/template_lib.h"
#include "verify/rules.h"

namespace jrverify {

using xcvsim::ArchDb;
using xcvsim::Bitstream;
using xcvsim::DecodedPip;
using xcvsim::Edge;
using xcvsim::Fabric;
using xcvsim::Graph;
using xcvsim::PipKey;
using xcvsim::PipTable;
using xcvsim::WireInfo;

const char* layerName(Layer layer) {
  switch (layer) {
    case Layer::kArch: return "arch";
    case Layer::kRrg: return "rrg";
    case Layer::kTemplate: return "template";
    case Layer::kBitstream: return "bitstream";
    case Layer::kLookahead: return "lookahead";
  }
  return "?";
}

void addFinding(const Rule& rule, VerifyReport& out, std::string entity,
                std::string message, std::string hint) {
  size_t already = 0;
  for (const Finding& f : out.findings) {
    if (f.rule == rule.id()) ++already;
  }
  if (already >= kMaxFindingsPerRule) return;
  Finding f;
  f.rule = rule.id();
  f.layer = rule.layer();
  f.entity = std::move(entity);
  f.message = std::move(message);
  f.hint = std::move(hint);
  out.findings.push_back(std::move(f));
}

std::string tileName(RowCol rc) {
  return "(" + std::to_string(rc.row) + "," + std::to_string(rc.col) + ")";
}

std::vector<RowCol> sampleTiles(const DeviceSpec& dev) {
  const auto rc = [](int r, int c) {
    return RowCol{static_cast<int16_t>(r), static_cast<int16_t>(c)};
  };
  const int lr = dev.rows - 1;
  const int lc = dev.cols - 1;
  const std::vector<RowCol> wanted = {
      // Corners and the inner ring next to them: edge-gated resources.
      rc(0, 0), rc(0, lc), rc(lr, 0), rc(lr, lc), rc(1, 1), rc(lr - 1, lc - 1),
      // Edge midpoints: the IOB ring couples in here.
      rc(0, dev.cols / 2), rc(lr, dev.cols / 2), rc(dev.rows / 2, 0),
      rc(dev.rows / 2, lc),
      // Interior block.
      rc(dev.rows / 2, dev.cols / 2), rc(dev.rows / 2 + 1, dev.cols / 2 + 1),
      // Both phases of the long-line access period.
      rc(6, 6), rc(6, 7), rc(7, 6), rc(9, 11),
  };
  std::vector<RowCol> out;
  for (const RowCol t : wanted) {
    if (!dev.contains(t)) continue;
    bool dup = false;
    for (const RowCol have : out) dup = dup || have == t;
    if (!dup) out.push_back(t);
  }
  return out;
}

ModelView makeModelView(const Graph& graph, const PipTable& table,
                        Fabric& fabric) {
  ModelView m;
  m.dev = &graph.device();
  m.graph = &graph;
  m.table = &table;
  m.fabric = &fabric;
  const ArchDb* arch = &graph.arch();
  const Graph* g = &graph;
  const PipTable* t = &table;
  const DeviceSpec* dev = m.dev;

  m.wireInfo = [arch](LocalWire w) { return arch->wireInfo(w); };
  m.existsAt = [arch](RowCol rc, LocalWire w) { return arch->existsAt(rc, w); };
  m.tilePips = [arch](RowCol rc,
                      const std::function<void(LocalWire, LocalWire)>& cb) {
    arch->forEachTilePip(rc, cb);
  };
  m.directs = [arch](RowCol rc,
                     const std::function<void(LocalWire, RowCol, LocalWire)>&
                         cb) { arch->forEachDirectConnect(rc, cb); };
  m.drives = [arch](RowCol rc, LocalWire w) { return arch->drives(rc, w); };
  m.drivenBy = [arch](RowCol rc, LocalWire w) {
    return arch->drivenBy(rc, w);
  };
  m.canDrive = [arch](RowCol rc, LocalWire from, LocalWire to) {
    return arch->canDrive(rc, from, to);
  };
  m.nodeAt = [g](RowCol rc, LocalWire w) { return g->nodeAt(rc, w); };
  m.aliasAt = [g](NodeId n, RowCol rc) { return g->aliasAt(n, rc); };
  m.templateValue = [g](NodeId n, const Edge& e) {
    return g->templateValueOf(n, e);
  };
  m.templates = [dev](RowCol from, RowCol to) {
    return jroute::templatesFor(*dev, from, to, true, true);
  };
  // The extractor outlives the view through the shared capture.
  auto fx = std::make_shared<jrplan::FootprintExtractor>(graph, fabric);
  m.footprint = [fx](jroute::Pin src, jroute::Pin sink) {
    return fx->extractPair(src, sink);
  };
  const jrla::Lookahead* la = &jrla::Lookahead::forGraph(graph);
  m.lookaheadEstimate = [la](NodeId from, NodeId to) {
    return la->estimate(from, to, jrla::Lookahead::Mode::kFull);
  };
  m.slotOf = [t](const PipKey& key) { return t->slotOf(key); };
  m.keyAt = [t](int slot) { return t->keyAt(slot); };
  m.bitsPerTileRow = [t]() { return t->bitsPerTileRow(); };
  m.decode = [](const Bitstream& bs) { return xcvsim::decodePips(bs); };
  return m;
}

const std::vector<const Rule*>& allRules() {
  static const std::vector<const Rule*> rules = [] {
    std::vector<const Rule*> all;
    for (const auto& layer : {archRules(), rrgRules(), templateRules(),
                              bitstreamRules(), lookaheadRules()}) {
      all.insert(all.end(), layer.begin(), layer.end());
    }
    return all;
  }();
  return rules;
}

const Rule* ruleById(std::string_view id) {
  for (const Rule* r : allRules()) {
    if (id == r->id()) return r;
  }
  return nullptr;
}

VerifyReport runVerify(const ModelView& m) {
  if (m.dev == nullptr || m.graph == nullptr || m.table == nullptr ||
      m.fabric == nullptr) {
    throw xcvsim::ArgumentError("runVerify: incomplete model view");
  }
  JR_TRACE_SCOPE("verify", "run");
  jrobs::registry().counter("verify.runs").add();
  VerifyReport report;
  report.device = std::string(m.dev->name);
  const auto t0 = std::chrono::steady_clock::now();
  for (const Rule* r : allRules()) {
    report.rulesRun.push_back(r->id());
    const size_t before = report.findings.size();
    const uint64_t r0 = jrobs::Tracer::instance().nowNs();
    r->run(m, report);
    const uint64_t r1 = jrobs::Tracer::instance().nowNs();
    const std::string rule = std::string("verify.rule.") + r->id();
    jrobs::registry().histogram(rule + ".runtime_us").record((r1 - r0) / 1000);
    jrobs::registry()
        .counter(rule + ".findings")
        .add(report.findings.size() - before);
  }
  const auto t1 = std::chrono::steady_clock::now();
  report.verifyUs =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  return report;
}

VerifyReport verifyDevice(const DeviceSpec& dev) {
  const auto t0 = std::chrono::steady_clock::now();
  const Graph graph(dev);
  const PipTable table(graph.arch());
  Fabric fabric(graph, table);
  const auto t1 = std::chrono::steady_clock::now();
  const ModelView m = makeModelView(graph, table, fabric);
  VerifyReport report = runVerify(m);
  report.buildUs =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count();
  return report;
}

bool VerifyReport::firedRule(std::string_view id) const {
  for (const Finding& f : findings) {
    if (f.rule == id) return true;
  }
  return false;
}

std::string VerifyReport::summary() const {
  std::ostringstream os;
  os << "jrverify " << device << ": " << rulesRun.size() << " rules over "
     << tilesSampled << " tiles, " << wiresChecked << " wires, "
     << pipsChecked << " pips, " << nodesChecked << " nodes, "
     << edgesChecked << " edges, " << templatesChecked << " templates, "
     << slotsChecked << " slots: ";
  if (findings.empty()) {
    os << "clean\n";
    return os.str();
  }
  os << findings.size() << " finding(s)\n";
  for (const Finding& f : findings) {
    os << "  [" << layerName(f.layer) << "] " << f.rule << " @ " << f.entity
       << ": " << f.message << "\n      hint: " << f.hint << "\n";
  }
  return os.str();
}

std::string VerifyReport::json() const {
  std::ostringstream os;
  os << "{" << jrobs::jsonKv("device", device)
     << ",\"clean\":" << (clean() ? "true" : "false")
     << ",\"findings_total\":" << findings.size() << ",\"rules\":[";
  for (size_t i = 0; i < rulesRun.size(); ++i) {
    if (i > 0) os << ',';
    os << '"' << jrobs::jsonEscape(rulesRun[i]) << '"';
  }
  os << "],\"checked\":{\"tiles\":" << tilesSampled
     << ",\"wires\":" << wiresChecked << ",\"pips\":" << pipsChecked
     << ",\"nodes\":" << nodesChecked << ",\"edges\":" << edgesChecked
     << ",\"templates\":" << templatesChecked << ",\"slots\":" << slotsChecked
     << "},\"build_us\":" << buildUs << ",\"verify_us\":" << verifyUs
     << ",\"findings\":[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) os << ',';
    os << "{" << jrobs::jsonKv("rule", f.rule) << ','
       << jrobs::jsonKv("layer", layerName(f.layer)) << ','
       << jrobs::jsonKv("entity", f.entity) << ','
       << jrobs::jsonKv("message", f.message) << ','
       << jrobs::jsonKv("hint", f.hint) << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace jrverify
