// jrverify: a static analyzer for the routing *model*.
//
// The paper's architecture-independence story rests on the correctness of
// the architecture description class — wire ids, lengths, directions,
// drives/driven-by relations, template values — yet a corrupt wire table
// or an illegal template-library entry would otherwise only surface as a
// mysterious maze-search failure deep in the service. The runtime DRC
// (src/analysis) audits fabric *state* after routing; this module is its
// compile-time counterpart, the way VTR's check_rr_graph validates the
// routing-resource graph before any router runs. It checks five layers:
//
//   arch       the description class is self-consistent (pip symmetry,
//              wire geometry, pattern ranges, the paper's driver-class
//              matrix, template-value classification)
//   rrg        the graph is bijective with the description, every sink is
//              reachable, no node is orphaned
//   template   every generated template replays to a legal contention-free
//              path on a clean fabric and stays in-bounds at device edges
//   bitstream  the PIP table round-trips through encode/decode and no two
//              logical PIPs share a configuration bit
//   lookahead  the router's precomputed cost map (src/lookahead) is an
//              admissible lower bound on true shortest-path delay
//
// Rules run against a ModelView — a bundle of hookable accessors that
// default to the real model. The mutation harness (tests/verify_test.cpp)
// overrides exactly one hook per rule to prove the rule live, mirroring
// the FabricMutator pattern of the runtime DRC tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "arch/arch_db.h"
#include "arch/device.h"
#include "bitstream/bitstream.h"
#include "bitstream/decoder.h"
#include "bitstream/pip_table.h"
#include "common/types.h"
#include "core/endpoint.h"
#include "fabric/fabric.h"
#include "plan/footprint.h"
#include "rrg/graph.h"

namespace jrverify {

using xcvsim::DelayPs;
using xcvsim::DeviceSpec;
using xcvsim::EdgeId;
using xcvsim::LocalWire;
using xcvsim::NodeId;
using xcvsim::RowCol;
using xcvsim::TemplateValue;

enum class Layer : uint8_t { kArch, kRrg, kTemplate, kBitstream, kLookahead };

const char* layerName(Layer layer);

/// One model inconsistency, anchored to the entity that violates it.
struct Finding {
  std::string rule;    // id of the rule that fired
  Layer layer = Layer::kArch;
  std::string entity;  // offending entity ("(3,4) SingleEast[5]", "slot 17")
  std::string message; // what is inconsistent
  std::string hint;    // fix-it hint: where to look / what to restore
};

/// Deterministic result of one verification run over one device.
struct VerifyReport {
  std::string device;
  std::vector<Finding> findings;
  std::vector<std::string> rulesRun;

  // Coverage counters (what the sampled rules actually touched).
  size_t tilesSampled = 0;
  size_t wiresChecked = 0;
  size_t pipsChecked = 0;
  size_t nodesChecked = 0;
  size_t edgesChecked = 0;
  size_t templatesChecked = 0;
  size_t slotsChecked = 0;

  int64_t buildUs = 0;   // graph + pip-table construction (verifyDevice)
  int64_t verifyUs = 0;  // rule execution

  bool clean() const { return findings.empty(); }
  bool firedRule(std::string_view id) const;

  /// Human-readable multi-line report.
  std::string summary() const;
  /// Machine-readable single-object JSON.
  std::string json() const;
};

/// The model under verification: backing objects plus hookable accessors.
/// Defaults (makeModelView) delegate to the real model; the mutation
/// harness replaces one hook to seed a corruption.
struct ModelView {
  const DeviceSpec* dev = nullptr;
  const xcvsim::Graph* graph = nullptr;
  const xcvsim::PipTable* table = nullptr;
  xcvsim::Fabric* fabric = nullptr;  // clean scratch fabric for replay

  // --- arch layer ---
  std::function<xcvsim::WireInfo(LocalWire)> wireInfo;
  std::function<bool(RowCol, LocalWire)> existsAt;
  std::function<void(RowCol, const std::function<void(LocalWire, LocalWire)>&)>
      tilePips;
  std::function<void(RowCol,
                     const std::function<void(LocalWire, RowCol, LocalWire)>&)>
      directs;
  std::function<std::vector<LocalWire>(RowCol, LocalWire)> drives;
  std::function<std::vector<LocalWire>(RowCol, LocalWire)> drivenBy;
  std::function<bool(RowCol, LocalWire, LocalWire)> canDrive;

  // --- rrg layer ---
  std::function<NodeId(RowCol, LocalWire)> nodeAt;
  std::function<LocalWire(NodeId, RowCol)> aliasAt;
  std::function<TemplateValue(NodeId, const xcvsim::Edge&)> templateValue;
  /// Null means "every graph edge is live" (the fast path); the mutation
  /// harness installs a filter to sever edges without rebuilding a graph.
  std::function<bool(EdgeId)> edgeEnabled;

  // --- template layer ---
  std::function<std::vector<std::vector<TemplateValue>>(RowCol, RowCol)>
      templates;
  /// jrplan's claim footprint for one src→sink pin pair (defaults to
  /// FootprintExtractor::extractPair). template-footprint-consistent
  /// checks every template replay's wire set against exactly this.
  std::function<jrplan::Footprint(jroute::Pin, jroute::Pin)> footprint;

  // --- lookahead layer ---
  /// Remaining-delay estimate from node to node (defaults to the shared
  /// per-device jrla::Lookahead in full mode).
  std::function<DelayPs(NodeId, NodeId)> lookaheadEstimate;

  // --- bitstream layer ---
  std::function<int(const xcvsim::PipKey&)> slotOf;
  std::function<xcvsim::PipKey(int)> keyAt;
  std::function<int()> bitsPerTileRow;
  std::function<std::vector<xcvsim::DecodedPip>(const xcvsim::Bitstream&)>
      decode;
};

/// View with every hook bound to the real model objects.
ModelView makeModelView(const xcvsim::Graph& graph,
                        const xcvsim::PipTable& table,
                        xcvsim::Fabric& fabric);

/// Representative tiles for the sampled rules: all four corners, edge
/// midpoints, an interior block, and tiles at both phases of the long-line
/// access period. Deterministic for a given device.
std::vector<RowCol> sampleTiles(const DeviceSpec& dev);

/// One model rule. Rules are stateless singletons; run() appends findings.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* id() const = 0;
  virtual Layer layer() const = 0;
  virtual const char* description() const = 0;
  virtual void run(const ModelView& m, VerifyReport& out) const = 0;
};

/// The rule registry, in catalogue order (arch, rrg, template, bitstream,
/// lookahead).
const std::vector<const Rule*>& allRules();
const Rule* ruleById(std::string_view id);

/// Run every rule over the view.
VerifyReport runVerify(const ModelView& m);

/// Build graph/table/fabric for `dev` and verify it. Records build and
/// verify wall-times separately in the report.
VerifyReport verifyDevice(const DeviceSpec& dev);

}  // namespace jrverify
