// RRG-layer rules: the routing-resource graph must be bijective with the
// architecture description and structurally usable (no orphans, every
// sink reachable from some signal source).
#include <map>
#include <tuple>
#include <vector>

#include "arch/wires.h"
#include "verify/rules.h"

namespace jrverify {
namespace {

using xcvsim::Edge;
using xcvsim::Graph;
using xcvsim::kInvalidLocalWire;
using xcvsim::kInvalidNode;
using xcvsim::kNumLocalWires;
using xcvsim::NodeInfo;
using xcvsim::NodeKind;
using xcvsim::wireName;

/// Pip identity used for the bijection multiset: source local, tile the
/// target pin lives at (differs from the pip tile only for directs), and
/// target local.
using PipSig = std::tuple<LocalWire, int, int, LocalWire>;

/// rrg-edge-bijection — at every sampled tile, the multiset of graph edges
/// equals the multiset of arch pips (tile pips + direct connects).
class EdgeBijectionRule final : public Rule {
 public:
  const char* id() const override { return "rrg-edge-bijection"; }
  Layer layer() const override { return Layer::kRrg; }
  const char* description() const override {
    return "graph edges and arch pips are the same multiset per tile";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const Graph& g = *m.graph;
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      std::map<PipSig, int> want;
      m.tilePips(rc, [&](LocalWire from, LocalWire to) {
        ++want[{from, rc.row, rc.col, to}];
        ++out.pipsChecked;
      });
      m.directs(rc, [&](LocalWire from, RowCol dst, LocalWire to) {
        ++want[{from, dst.row, dst.col, to}];
        ++out.pipsChecked;
      });
      for (LocalWire w = 0; w < kNumLocalWires; ++w) {
        if (!m.existsAt(rc, w)) continue;
        const NodeId n = m.nodeAt(rc, w);
        if (n == kInvalidNode) continue;  // alias rule reports this
        for (const Edge& e : g.out(n)) {
          if (e.tileRow != rc.row || e.tileCol != rc.col) continue;
          if (e.fromLocal != w) continue;
          ++out.edgesChecked;
          // Direct connects are the only pips whose target pin lives at
          // another tile; logic targets carry their exact tile.
          RowCol dst = rc;
          const NodeInfo ti = g.info(e.to);
          if (ti.kind == NodeKind::Logic && !(ti.tile == rc)) dst = ti.tile;
          const PipSig sig{e.fromLocal, dst.row, dst.col, e.toLocal};
          auto it = want.find(sig);
          if (it == want.end() || it->second == 0) {
            addFinding(*this, out,
                       tileName(rc) + " " + wireName(e.fromLocal) + " -> " +
                           wireName(e.toLocal),
                       "graph edge has no matching arch pip",
                       "Graph::buildEdges emitted an edge the ArchDb does "
                       "not advertise; the enumeration is the single "
                       "source of truth");
          } else {
            --it->second;
          }
        }
      }
      for (const auto& [sig, count] : want) {
        if (count == 0) continue;
        addFinding(*this, out,
                   tileName(rc) + " " + wireName(std::get<0>(sig)) + " -> " +
                       wireName(std::get<3>(sig)),
                   "arch pip has no matching graph edge (" +
                       std::to_string(count) + " missing)",
                   "the graph builder dropped a pip the ArchDb enumerates; "
                   "check the node-resolution path in buildEdges");
      }
    }
  }
};

/// rrg-alias-roundtrip — (tile, local) -> node -> alias is the identity
/// wherever the arch says the name exists, and resolves to nothing where
/// it does not.
class AliasRoundtripRule final : public Rule {
 public:
  const char* id() const override { return "rrg-alias-roundtrip"; }
  Layer layer() const override { return Layer::kRrg; }
  const char* description() const override {
    return "nodeAt/aliasAt round-trip wherever existsAt says a name lives";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      for (LocalWire w = 0; w < kNumLocalWires; ++w) {
        ++out.wiresChecked;
        const NodeId n = m.nodeAt(rc, w);
        if (!m.existsAt(rc, w)) {
          if (n != kInvalidNode) {
            addFinding(*this, out, tileName(rc) + " " + wireName(w),
                       "name resolves to a node but existsAt denies it",
                       "Graph::nodeAt must gate on ArchDb::existsAt");
          }
          continue;
        }
        if (n == kInvalidNode) {
          addFinding(*this, out, tileName(rc) + " " + wireName(w),
                     "existing name does not resolve to a node",
                     "Graph::nodeAt dropped a wire the ArchDb advertises");
          continue;
        }
        const LocalWire back = m.aliasAt(n, rc);
        if (back != w) {
          addFinding(*this, out, tileName(rc) + " " + wireName(w),
                     "aliasAt returns " +
                         (back == kInvalidLocalWire ? std::string("nothing")
                                                    : wireName(back)) +
                         " for the node this name resolves to",
                     "nodeAt and aliasAt must be inverse at every tap tile");
        }
      }
    }
  }
};

/// True for nodes that inject signals into the fabric.
bool isSource(const NodeInfo& info) {
  return (info.kind == NodeKind::Logic && info.local < xcvsim::kOmuxBase) ||
         info.kind == NodeKind::GclkPad || info.kind == NodeKind::IobIn ||
         info.kind == NodeKind::BramOut;
}

/// True for nodes that consume signals (routing must be able to end here).
bool isSink(const NodeInfo& info) {
  return (info.kind == NodeKind::Logic && info.local >= xcvsim::kClbInBase &&
          info.local < xcvsim::kSingleBase) ||
         info.kind == NodeKind::IobOut || info.kind == NodeKind::BramIn;
}

/// rrg-sink-reachable — every sink pin is reachable from at least one
/// signal source over live edges (full-graph BFS, not sampled).
class SinkReachableRule final : public Rule {
 public:
  const char* id() const override { return "rrg-sink-reachable"; }
  Layer layer() const override { return Layer::kRrg; }
  const char* description() const override {
    return "every input pin is reachable from some source";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const Graph& g = *m.graph;
    out.nodesChecked += g.numNodes();
    std::vector<uint8_t> seen(g.numNodes(), 0);
    std::vector<NodeId> queue;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      if (isSource(g.info(n))) {
        seen[n] = 1;
        queue.push_back(n);
      }
    }
    size_t head = 0;
    while (head < queue.size()) {
      const NodeId n = queue[head++];
      for (const Edge& e : g.out(n)) {
        if (seen[e.to]) continue;
        if (m.edgeEnabled && !m.edgeEnabled(g.edgeIdOf(n, e))) continue;
        seen[e.to] = 1;
        queue.push_back(e.to);
      }
    }
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      const NodeInfo info = g.info(n);
      if (!isSink(info) || seen[n]) continue;
      addFinding(*this, out, tileName(info.tile) + " " + g.nodeName(n),
                 "sink pin unreachable from every source",
                 "a missing pip chain isolates this pin; inspect the "
                 "patterns feeding its wire class");
    }
  }
};

/// rrg-orphan-node — no node is disconnected on both sides.
class OrphanNodeRule final : public Rule {
 public:
  const char* id() const override { return "rrg-orphan-node"; }
  Layer layer() const override { return Layer::kRrg; }
  const char* description() const override {
    return "no node has zero live in-edges and zero live out-edges";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const Graph& g = *m.graph;
    out.nodesChecked += g.numNodes();
    if (!m.edgeEnabled) {
      for (NodeId n = 0; n < g.numNodes(); ++n) {
        if (g.out(n).empty() && g.in(n).empty()) report(m, out, n);
      }
      return;
    }
    // Filtered path: count live degrees in one edge sweep.
    std::vector<uint32_t> degree(g.numNodes(), 0);
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      for (const Edge& e : g.out(n)) {
        if (!m.edgeEnabled(g.edgeIdOf(n, e))) continue;
        ++degree[n];
        ++degree[e.to];
      }
    }
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      if (degree[n] == 0) report(m, out, n);
    }
  }

 private:
  void report(const ModelView& m, VerifyReport& out, NodeId n) const {
    const NodeInfo info = m.graph->info(n);
    addFinding(*this, out, tileName(info.tile) + " " + m.graph->nodeName(n),
               "node has no edges in either direction",
               "an orphan wastes a routing resource and usually means a "
               "pattern was gated out asymmetrically");
  }
};

}  // namespace

std::vector<const Rule*> rrgRules() {
  static const EdgeBijectionRule bijection;
  static const AliasRoundtripRule alias;
  static const SinkReachableRule reachable;
  static const OrphanNodeRule orphan;
  return {&bijection, &alias, &reachable, &orphan};
}

}  // namespace jrverify
