// Arch-layer rules: the architecture description class is checked against
// itself — its enumeration, query, and classification views must agree.
#include <algorithm>
#include <map>
#include <set>

#include "arch/wires.h"
#include "verify/rules.h"

namespace jrverify {
namespace {

using xcvsim::Dir;
using xcvsim::Edge;
using xcvsim::hexValue;
using xcvsim::isClockPin;
using xcvsim::isValidWire;
using xcvsim::kHexSpan;
using xcvsim::kNumLocalWires;
using xcvsim::singleValue;
using xcvsim::WireInfo;
using xcvsim::WireKind;
using xcvsim::wireKind;
using xcvsim::wireName;

/// Wires sampled per tile for the O(wires x enumeration) symmetry rule:
/// a stratified slice of every kind (full coverage would re-enumerate the
/// ~2900 tile pips once per wire and blow the <2s budget on XCV1000).
std::vector<LocalWire> sampleWires(const ModelView& m, RowCol rc) {
  using namespace xcvsim;
  const LocalWire wanted[] = {
      sliceOut(0), sliceOut(5), omux(0),   omux(3),
      clbIn(0),    clbIn(13),   single(Dir::East, 0),
      single(Dir::West, 5),     single(Dir::North, 11),
      single(Dir::South, 23),   hex(Dir::East, HexTap::Beg, 4),
      hex(Dir::East, HexTap::Mid, 3),     hex(Dir::West, HexTap::End, 2),
      hex(Dir::North, HexTap::Beg, 7),    hex(Dir::South, HexTap::Mid, 11),
      longH(3),    longV(8),    gclk(1),   iobIn(1),
      iobOut(2),   bramDo(1),   bramDi(2), bramAd(3),
  };
  std::vector<LocalWire> out;
  for (const LocalWire w : wanted) {
    if (m.existsAt(rc, w)) out.push_back(w);
  }
  return out;
}

/// arch-pip-symmetry — drives()/drivenBy() must be the exact forward and
/// reverse adjacency of forEachTilePip(), and canDrive() must agree.
class PipSymmetryRule final : public Rule {
 public:
  const char* id() const override { return "arch-pip-symmetry"; }
  Layer layer() const override { return Layer::kArch; }
  const char* description() const override {
    return "drives/drivenBy/canDrive agree with the tile-pip enumeration";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      std::map<LocalWire, std::vector<LocalWire>> fwd, rev;
      m.tilePips(rc, [&](LocalWire from, LocalWire to) {
        fwd[from].push_back(to);
        rev[to].push_back(from);
        ++out.pipsChecked;
      });
      int canDriveBudget = 8;
      for (const LocalWire w : sampleWires(m, rc)) {
        ++out.wiresChecked;
        auto got = m.drives(rc, w);
        auto want = fwd[w];
        std::sort(got.begin(), got.end());
        std::sort(want.begin(), want.end());
        if (got != want) {
          addFinding(*this, out, tileName(rc) + " " + wireName(w),
                     "drives() lists " + std::to_string(got.size()) +
                         " targets but the pip enumeration has " +
                         std::to_string(want.size()),
                     "ArchDb::drives must mirror forEachTilePip exactly; "
                     "check the pattern rules in arch_db.cpp");
        }
        auto gotIn = m.drivenBy(rc, w);
        auto wantIn = rev[w];
        std::sort(gotIn.begin(), gotIn.end());
        std::sort(wantIn.begin(), wantIn.end());
        if (gotIn != wantIn) {
          addFinding(*this, out, tileName(rc) + " " + wireName(w),
                     "drivenBy() lists " + std::to_string(gotIn.size()) +
                         " drivers but the pip enumeration has " +
                         std::to_string(wantIn.size()),
                     "ArchDb::drivenBy must mirror forEachTilePip exactly; "
                     "check the pattern rules in arch_db.cpp");
        }
        for (const LocalWire to : want) {
          if (canDriveBudget-- <= 0) break;
          if (!m.canDrive(rc, w, to)) {
            addFinding(*this, out, tileName(rc) + " " + wireName(w),
                       "canDrive denies the enumerated pip -> " + wireName(to),
                       "ArchDb::canDrive must accept every pip that "
                       "forEachTilePip emits");
          }
        }
      }
    }
  }
};

/// arch-wire-geometry — every wire's kind/index/length description matches
/// the structural layout of the local id space.
class WireGeometryRule final : public Rule {
 public:
  const char* id() const override { return "arch-wire-geometry"; }
  Layer layer() const override { return Layer::kArch; }
  const char* description() const override {
    return "wire kind/index/length descriptions match the id-space layout";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const DeviceSpec& dev = *m.dev;
    for (LocalWire w = 0; w < kNumLocalWires; ++w) {
      ++out.wiresChecked;
      const WireInfo info = m.wireInfo(w);
      const WireKind kind = wireKind(w);
      if (info.kind != kind) {
        addFinding(*this, out, wireName(w),
                   "wireInfo reports the wrong kind",
                   "wireInfo(w).kind must equal wireKind(w)");
        continue;
      }
      if (info.index != xcvsim::wireIndex(w)) {
        addFinding(*this, out, wireName(w),
                   "wireInfo index " + std::to_string(info.index) +
                       " disagrees with wireIndex " +
                       std::to_string(xcvsim::wireIndex(w)),
                   "wireInfo(w).index must equal wireIndex(w)");
      }
      int wantLength = 0;
      switch (kind) {
        case WireKind::Single: wantLength = 1; break;
        case WireKind::Hex: wantLength = kHexSpan; break;
        case WireKind::Long:
          wantLength = (w < xcvsim::kLongVBase ? dev.cols : dev.rows) - 1;
          break;
        case WireKind::Gclk: wantLength = dev.rows + dev.cols; break;
        default: wantLength = 0; break;  // pins, OMUX, IOB, BRAM ports
      }
      if (info.length != wantLength) {
        addFinding(*this, out, wireName(w),
                   "length " + std::to_string(info.length) + " should be " +
                       std::to_string(wantLength),
                   "singles span 1 tile, hexes kHexSpan, longs the full "
                   "row/column, pins 0; fix ArchDb::wireInfo");
      }
    }
  }
};

/// arch-pattern-range — every pip the patterns emit uses valid wire ids
/// that exist at the tiles involved (no dangling ids in patterns.cpp).
class PatternRangeRule final : public Rule {
 public:
  const char* id() const override { return "arch-pattern-range"; }
  Layer layer() const override { return Layer::kArch; }
  const char* description() const override {
    return "pattern-emitted pips reference wires that exist at their tiles";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      m.tilePips(rc, [&](LocalWire from, LocalWire to) {
        ++out.pipsChecked;
        if (!isValidWire(from) || !isValidWire(to)) {
          addFinding(*this, out,
                     tileName(rc) + " pip " + std::to_string(from) + " -> " +
                         std::to_string(to),
                     "pip references an out-of-range wire id",
                     "a pattern in patterns.cpp emits an id outside "
                     "[0, kNumLocalWires)");
          return;
        }
        if (from == to) {
          addFinding(*this, out, tileName(rc) + " " + wireName(from),
                     "self-loop pip", "a pattern maps a wire onto itself");
        }
        for (const LocalWire w : {from, to}) {
          if (!m.existsAt(rc, w)) {
            addFinding(*this, out, tileName(rc) + " " + wireName(w),
                       "pip references a wire that does not exist here",
                       "the pattern must be gated on ArchDb::existsAt "
                       "(edge channels and long access tiles)");
          }
        }
      });
      m.directs(rc, [&](LocalWire from, RowCol dst, LocalWire to) {
        ++out.pipsChecked;
        if (!m.dev->contains(dst)) {
          addFinding(*this, out, tileName(rc) + " direct -> " + tileName(dst),
                     "direct connect targets a tile outside the device",
                     "forEachDirectConnect must clip at the array edge");
          return;
        }
        if (!m.existsAt(rc, from) || !m.existsAt(dst, to)) {
          addFinding(*this, out,
                     tileName(rc) + " " + wireName(from) + " -> " +
                         tileName(dst) + " " + wireName(to),
                     "direct connect references a missing wire",
                     "direct connects join slice outputs to neighbour "
                     "CLB inputs; both pins must exist");
        }
      });
    }
  }
};

/// arch-driver-class — every pip obeys the paper's driver-class matrix
/// ("logic block outputs drive all length interconnects, longs can drive
/// hexes only, hexes drive singles and other hexes, ...").
class DriverClassRule final : public Rule {
 public:
  const char* id() const override { return "arch-driver-class"; }
  Layer layer() const override { return Layer::kArch; }
  const char* description() const override {
    return "every pip obeys the paper's wire-class driver matrix";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      m.tilePips(rc, [&](LocalWire from, LocalWire to) {
        ++out.pipsChecked;
        if (!isValidWire(from) || !isValidWire(to)) return;  // range rule
        if (allowed(wireKind(from), wireKind(to), to)) return;
        addFinding(*this, out,
                   tileName(rc) + " " + wireName(from) + " -> " + wireName(to),
                   "pip crosses wire classes the switch matrix never joins",
                   "section 2's driver rules; compare against the "
                   "rule table in arch_db.cpp");
      });
    }
  }

 private:
  static bool allowed(WireKind from, WireKind to, LocalWire toWire) {
    switch (from) {
      case WireKind::SliceOut:
        return to == WireKind::Omux || to == WireKind::ClbIn;  // feedback
      case WireKind::Omux:
        return to == WireKind::Single || to == WireKind::Hex ||
               to == WireKind::Long;
      case WireKind::Long:
        return to == WireKind::Hex;
      case WireKind::Hex:
        return to == WireKind::Single || to == WireKind::Hex;
      case WireKind::Single:
        return to == WireKind::ClbIn || to == WireKind::Single ||
               to == WireKind::Long || to == WireKind::IobOut ||
               to == WireKind::BramIn;
      case WireKind::Gclk:
        return to == WireKind::ClbIn && isClockPin(toWire);
      case WireKind::IobIn:
      case WireKind::BramOut:
        return to == WireKind::Single;
      default:
        return false;  // ClbIn, IobOut, BramIn never drive anything
    }
  }
};

/// arch-template-class — the template value advertised for every graph
/// edge resolves to the class and travel direction of the target wire.
class TemplateClassRule final : public Rule {
 public:
  const char* id() const override { return "arch-template-class"; }
  Layer layer() const override { return Layer::kArch; }
  const char* description() const override {
    return "edge template values match the target wire's class + direction";
  }
  void run(const ModelView& m, VerifyReport& out) const override {
    const xcvsim::Graph& g = *m.graph;
    for (const RowCol rc : sampleTiles(*m.dev)) {
      ++out.tilesSampled;
      for (LocalWire w = 0; w < kNumLocalWires; ++w) {
        if (!m.existsAt(rc, w)) continue;
        const NodeId n = m.nodeAt(rc, w);
        if (n == xcvsim::kInvalidNode) continue;  // alias rule's business
        for (const Edge& e : g.out(n)) {
          if (e.tileRow != rc.row || e.tileCol != rc.col) continue;
          ++out.edgesChecked;
          const TemplateValue tv = m.templateValue(e.to, e);
          const TemplateValue want = expected(g, rc, e);
          if (tv != want) {
            addFinding(
                *this, out,
                tileName(rc) + " " + wireName(e.fromLocal) + " -> " +
                    wireName(e.toLocal),
                std::string("template value ") +
                    std::string(xcvsim::templateValueName(tv)) +
                    " should be " +
                    std::string(xcvsim::templateValueName(want)),
                "Graph::templateValueOf must classify by target wire kind "
                "with travel direction resolved from the driving tile");
          }
        }
      }
    }
  }

 private:
  static TemplateValue expected(const xcvsim::Graph& g, RowCol rc,
                                const Edge& e) {
    switch (wireKind(e.toLocal)) {
      case WireKind::Omux: return TemplateValue::OUTMUX;
      case WireKind::ClbIn: return TemplateValue::CLBIN;
      case WireKind::Single: return singleValue(g.travelDir(e.to, rc));
      case WireKind::Hex: return hexValue(g.travelDir(e.to, rc));
      case WireKind::Long:
        return e.toLocal < xcvsim::kLongVBase ? TemplateValue::LONGH
                                              : TemplateValue::LONGV;
      case WireKind::Gclk: return TemplateValue::GCLKNET;
      case WireKind::IobOut: return TemplateValue::IOPAD;
      case WireKind::BramIn: return TemplateValue::BRAMPORT;
      default: return TemplateValue::OUTMUX;  // unreachable as a target
    }
  }
};

}  // namespace

std::vector<const Rule*> archRules() {
  static const PipSymmetryRule symmetry;
  static const WireGeometryRule geometry;
  static const PatternRangeRule range;
  static const DriverClassRule driverClass;
  static const TemplateClassRule templateClass;
  return {&symmetry, &geometry, &range, &driverClass, &templateClass};
}

}  // namespace jrverify
