// The PIP-to-configuration-bit mapping table.
//
// The real Virtex device database (shipped inside JBits) assigns every
// programmable point a position in the configuration frames of its column.
// That database is proprietary, so we build an equivalent one: enumerate
// every connection pattern that can occur at any tile (PIP patterns repeat
// with the long-line access period, so a kLongAccessPeriod-square block of
// interior tiles covers all variants), sort them, and assign each a stable
// slot. A tile's configuration occupies kFramesPerColumn frames x
// bitsPerTileRow() bits; slot s of tile (r,c) lives in column c, frame
// s / bitsPerTileRow(), bit r * bitsPerTileRow() + s % bitsPerTileRow().
//
// Logic (LUT truth tables and per-slice mode bits) gets a reserved slot
// region after the PIPs so cores can be configured through the same frames.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/arch_db.h"
#include "common/types.h"

namespace xcvsim {

/// Number of configuration frames per CLB column (matches Virtex).
inline constexpr int kFramesPerColumn = 48;

/// Kinds of configurable points addressed by a PipKey.
enum class PipKeyKind : uint8_t {
  TilePip,   // same-tile PIP (from, to local wires)
  DirectE,   // direct connect from this tile's output to the EAST neighbour
  DirectW,   // ... to the WEST neighbour
  GlobalPad, // global clock pad driver k (addressed at tile (0,0))
};

/// Identity of one configurable point, relative to a tile.
struct PipKey {
  PipKeyKind kind = PipKeyKind::TilePip;
  LocalWire from = kInvalidLocalWire;
  LocalWire to = kInvalidLocalWire;

  uint32_t packed() const {
    return (static_cast<uint32_t>(kind) << 24) ^
           (static_cast<uint32_t>(from) << 12) ^ to;
  }
  friend bool operator==(const PipKey&, const PipKey&) = default;
};

/// LUTs per tile (2 slices x F/G) and bits per LUT truth table.
inline constexpr int kLutsPerTile = 4;
inline constexpr int kLutBits = 16;
/// Per-tile miscellaneous logic configuration bits (FF modes, muxes...).
inline constexpr int kMiscLogicBits = 16;

class PipTable {
 public:
  explicit PipTable(const ArchDb& arch);

  /// Slot of a configurable point within its tile's config block, or -1 if
  /// the key names no existing pattern.
  int slotOf(const PipKey& key) const;

  /// Key stored at a slot (inverse of slotOf); only valid for PIP slots.
  const PipKey& keyAt(int slot) const { return keys_[static_cast<size_t>(slot)]; }

  /// Number of PIP slots (keys).
  int numPipSlots() const { return static_cast<int>(keys_.size()); }

  /// First slot of the logic-configuration region.
  int logicSlotBase() const { return numPipSlots(); }

  /// Slot of LUT `lut` bit `bit` within a tile.
  int lutSlot(int lut, int bit) const {
    return logicSlotBase() + lut * kLutBits + bit;
  }
  /// Slot of miscellaneous logic bit `bit` within a tile.
  int miscSlot(int bit) const {
    return logicSlotBase() + kLutsPerTile * kLutBits + bit;
  }

  /// Total slots per tile (PIPs + logic), the tile config block size.
  int slotsPerTile() const {
    return logicSlotBase() + kLutsPerTile * kLutBits + kMiscLogicBits;
  }

  /// Bits each tile contributes to one frame of its column.
  int bitsPerTileRow() const { return bitsPerTileRow_; }

 private:
  struct KeyHash {
    size_t operator()(const PipKey& k) const { return k.packed(); }
  };

  std::vector<PipKey> keys_;  // slot -> key, sorted for determinism
  std::unordered_map<PipKey, int, KeyHash> slots_;
  int bitsPerTileRow_ = 0;
};

}  // namespace xcvsim
