#include "bitstream/crc32.h"

#include <array>

namespace xcvsim {
namespace {

std::array<uint32_t, 256> makeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& table() {
  static const auto t = makeTable();
  return t;
}

}  // namespace

void Crc32::update(std::span<const uint8_t> data) {
  uint32_t c = state_;
  for (uint8_t b : data) {
    c = table()[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

void Crc32::update(uint32_t word) {
  const uint8_t bytes[4] = {
      static_cast<uint8_t>(word), static_cast<uint8_t>(word >> 8),
      static_cast<uint8_t>(word >> 16), static_cast<uint8_t>(word >> 24)};
  update(bytes);
}

uint32_t crc32(std::span<const uint8_t> data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace xcvsim
