#include "bitstream/pip_table.h"

#include <algorithm>

#include "common/error.h"

namespace xcvsim {

PipTable::PipTable(const ArchDb& arch) {
  const DeviceSpec& dev = arch.device();
  // Union the PIP patterns over every tile of the device. Patterns repeat
  // with the long-line access period, so interior tiles contribute mostly
  // duplicates, but taking the full union guarantees coverage for any
  // device geometry (including the smallest family members, whose rows are
  // shorter than three access periods).
  std::unordered_map<PipKey, int, KeyHash> seen;
  const auto add = [&](const PipKey& key) { seen.emplace(key, 0); };
  for (int16_t r = 0; r < dev.rows; ++r) {
    for (int16_t c = 0; c < dev.cols; ++c) {
      const RowCol rc{r, c};
      arch.forEachTilePip(rc, [&](LocalWire f, LocalWire t) {
        add({PipKeyKind::TilePip, f, t});
      });
      arch.forEachDirectConnect(rc, [&](LocalWire f, RowCol dst,
                                        LocalWire t) {
        add({dst.col > rc.col ? PipKeyKind::DirectE : PipKeyKind::DirectW, f,
             t});
      });
    }
  }
  for (int k = 0; k < kGlobalNets; ++k) {
    add({PipKeyKind::GlobalPad, kInvalidLocalWire, static_cast<LocalWire>(k)});
  }

  std::vector<PipKey> all;
  all.reserve(seen.size());
  for (const auto& [key, unused] : seen) all.push_back(key);
  std::sort(all.begin(), all.end(), [](const PipKey& a, const PipKey& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });

  keys_ = std::move(all);
  slots_.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    slots_.emplace(keys_[i], static_cast<int>(i));
  }

  const int total = slotsPerTile();
  bitsPerTileRow_ = (total + kFramesPerColumn - 1) / kFramesPerColumn;
}

int PipTable::slotOf(const PipKey& key) const {
  const auto it = slots_.find(key);
  return it == slots_.end() ? -1 : it->second;
}

}  // namespace xcvsim
