#include "bitstream/bitfile.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "bitstream/crc32.h"
#include "common/error.h"

namespace xcvsim {
namespace {

constexpr uint32_t kMagic = 0x4A425354u;  // "JBST"
constexpr uint32_t kVersion = 1;
constexpr uint32_t kEndMarker = 0xFFFFFFFFu;

void putU32(std::ostream& os, uint32_t v, Crc32* crc) {
  const uint8_t b[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                        static_cast<uint8_t>(v >> 16),
                        static_cast<uint8_t>(v >> 24)};
  os.write(reinterpret_cast<const char*>(b), 4);
  if (crc) crc->update(b);
}

uint32_t getU32(std::istream& is, Crc32* crc) {
  uint8_t b[4];
  is.read(reinterpret_cast<char*>(b), 4);
  if (!is) throw BitstreamError("bitfile truncated");
  if (crc) crc->update(b);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

void putString(std::ostream& os, std::string_view s, Crc32* crc) {
  putU32(os, static_cast<uint32_t>(s.size()), crc);
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  if (crc) {
    crc->update({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }
}

std::string getString(std::istream& is, Crc32* crc) {
  const uint32_t len = getU32(is, crc);
  if (len > 4096) throw BitstreamError("bitfile string too long");
  std::string s(len, '\0');
  is.read(s.data(), len);
  if (!is) throw BitstreamError("bitfile truncated in string");
  if (crc) {
    crc->update({reinterpret_cast<const uint8_t*>(s.data()), s.size()});
  }
  return s;
}

void writeHeaderAndPackets(std::ostream& os, const DeviceSpec& dev,
                           uint32_t frameWords,
                           std::span<const Packet> packets,
                           std::string_view designName) {
  Crc32 crc;
  putU32(os, kMagic, &crc);
  putU32(os, kVersion, &crc);
  putString(os, designName, &crc);
  putString(os, dev.name, &crc);
  putU32(os, static_cast<uint32_t>(dev.rows), &crc);
  putU32(os, static_cast<uint32_t>(dev.cols), &crc);
  putU32(os, frameWords, &crc);
  putU32(os, static_cast<uint32_t>(packets.size()), &crc);
  for (const Packet& p : packets) {
    putU32(os, p.frameAddr, &crc);
    putU32(os, static_cast<uint32_t>(p.data.size()), &crc);
    for (uint64_t w : p.data) {
      putU32(os, static_cast<uint32_t>(w), &crc);
      putU32(os, static_cast<uint32_t>(w >> 32), &crc);
    }
    putU32(os, p.crc, &crc);
  }
  putU32(os, kEndMarker, &crc);
  putU32(os, crc.value(), nullptr);
}

BitfileHeader readHeader(std::istream& is, Crc32& crc) {
  if (getU32(is, &crc) != kMagic) {
    throw BitstreamError("not a bitfile (bad magic)");
  }
  if (getU32(is, &crc) != kVersion) {
    throw BitstreamError("unsupported bitfile version");
  }
  BitfileHeader h;
  h.design = getString(is, &crc);
  h.device = getString(is, &crc);
  h.rows = static_cast<int>(getU32(is, &crc));
  h.cols = static_cast<int>(getU32(is, &crc));
  h.frameWords = getU32(is, &crc);
  h.packetCount = getU32(is, &crc);
  return h;
}

}  // namespace

void writeBitfile(std::ostream& os, const Bitstream& bs,
                  std::string_view designName) {
  // Collect non-zero frames only.
  std::vector<Packet> packets;
  for (int col = 0; col < bs.numColumns(); ++col) {
    for (int f = 0; f < kFramesPerColumn; ++f) {
      const FrameAddr fa{col, f};
      const auto words = bs.frameWords(fa);
      const bool zero =
          std::all_of(words.begin(), words.end(),
                      [](uint64_t w) { return w == 0; });
      if (!zero) packets.push_back(makeFramePacket(bs, fa));
    }
  }
  const auto anyFrame = bs.frameWords(FrameAddr{0, 0});
  writeHeaderAndPackets(os, bs.device(),
                        static_cast<uint32_t>(anyFrame.size()), packets,
                        designName);
}

void writePartialBitfile(std::ostream& os, const DeviceSpec& dev,
                         std::span<const Packet> packets,
                         std::string_view designName) {
  const uint32_t frameWords =
      packets.empty() ? 0 : static_cast<uint32_t>(packets[0].data.size());
  writeHeaderAndPackets(os, dev, frameWords, packets, designName);
}

BitfileHeader readBitfileHeader(std::istream& is) {
  Crc32 crc;
  return readHeader(is, crc);
}

std::vector<Packet> readBitfilePackets(std::istream& is,
                                       BitfileHeader* header) {
  Crc32 crc;
  const BitfileHeader h = readHeader(is, crc);
  std::vector<Packet> packets;
  packets.reserve(h.packetCount);
  for (uint32_t i = 0; i < h.packetCount; ++i) {
    Packet p;
    p.frameAddr = getU32(is, &crc);
    const uint32_t words = getU32(is, &crc);
    if (words > (1u << 20)) throw BitstreamError("bitfile frame too large");
    p.data.resize(words);
    for (uint32_t w = 0; w < words; ++w) {
      const uint64_t lo = getU32(is, &crc);
      const uint64_t hi = getU32(is, &crc);
      p.data[w] = lo | (hi << 32);
    }
    p.crc = getU32(is, &crc);
    packets.push_back(std::move(p));
  }
  if (getU32(is, &crc) != kEndMarker) {
    throw BitstreamError("bitfile missing end marker");
  }
  const uint32_t expected = crc.value();
  if (getU32(is, nullptr) != expected) {
    throw BitstreamError("bitfile stream CRC mismatch");
  }
  if (header) *header = h;
  return packets;
}

BitfileHeader readBitfile(std::istream& is, Bitstream& bs) {
  BitfileHeader h;
  const auto packets = readBitfilePackets(is, &h);
  if (h.device != bs.device().name || h.rows != bs.device().rows ||
      h.cols != bs.device().cols) {
    throw BitstreamError("bitfile targets device " + h.device +
                         ", not " + std::string(bs.device().name));
  }
  applyPackets(bs, packets);
  return h;
}

}  // namespace xcvsim
