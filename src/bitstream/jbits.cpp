#include "bitstream/jbits.h"

#include <string>

#include "arch/wires.h"
#include "common/error.h"

namespace xcvsim {

int JBits::requireSlot(const PipKey& key) const {
  const int slot = table_->slotOf(key);
  if (slot < 0) {
    throw BitstreamError(
        "no configurable point for " +
        (key.from == kInvalidLocalWire ? std::string("<pad>")
                                       : wireName(key.from)) +
        " -> " + wireName(key.to));
  }
  return slot;
}

void JBits::setPip(RowCol rc, LocalWire from, LocalWire to, bool on) {
  bits_.setSlot(rc, requireSlot({PipKeyKind::TilePip, from, to}), on);
}

bool JBits::getPip(RowCol rc, LocalWire from, LocalWire to) const {
  return bits_.getSlot(rc, requireSlot({PipKeyKind::TilePip, from, to}));
}

void JBits::setDirect(RowCol rc, Dir toward, LocalWire from, LocalWire to,
                      bool on) {
  const PipKeyKind kind =
      toward == Dir::East ? PipKeyKind::DirectE : PipKeyKind::DirectW;
  bits_.setSlot(rc, requireSlot({kind, from, to}), on);
}

bool JBits::getDirect(RowCol rc, Dir toward, LocalWire from,
                      LocalWire to) const {
  const PipKeyKind kind =
      toward == Dir::East ? PipKeyKind::DirectE : PipKeyKind::DirectW;
  return bits_.getSlot(rc, requireSlot({kind, from, to}));
}

void JBits::setGlobalPad(int k, bool on) {
  bits_.setSlot({0, 0}, requireSlot({PipKeyKind::GlobalPad,
                                     kInvalidLocalWire,
                                     static_cast<LocalWire>(k)}),
                on);
}

bool JBits::getGlobalPad(int k) const {
  return bits_.getSlot({0, 0}, requireSlot({PipKeyKind::GlobalPad,
                                            kInvalidLocalWire,
                                            static_cast<LocalWire>(k)}));
}

void JBits::setLut(RowCol rc, int lut, uint16_t truth) {
  if (lut < 0 || lut >= kLutsPerTile) {
    throw BitstreamError("LUT index out of range");
  }
  for (int b = 0; b < kLutBits; ++b) {
    bits_.setSlot(rc, table_->lutSlot(lut, b), (truth >> b) & 1);
  }
}

uint16_t JBits::getLut(RowCol rc, int lut) const {
  if (lut < 0 || lut >= kLutsPerTile) {
    throw BitstreamError("LUT index out of range");
  }
  uint16_t truth = 0;
  for (int b = 0; b < kLutBits; ++b) {
    if (bits_.getSlot(rc, table_->lutSlot(lut, b))) {
      truth = static_cast<uint16_t>(truth | (1u << b));
    }
  }
  return truth;
}

void JBits::setMiscBit(RowCol rc, int bit, bool on) {
  if (bit < 0 || bit >= kMiscLogicBits) {
    throw BitstreamError("misc bit out of range");
  }
  bits_.setSlot(rc, table_->miscSlot(bit), on);
}

bool JBits::getMiscBit(RowCol rc, int bit) const {
  if (bit < 0 || bit >= kMiscLogicBits) {
    throw BitstreamError("misc bit out of range");
  }
  return bits_.getSlot(rc, table_->miscSlot(bit));
}

}  // namespace xcvsim
