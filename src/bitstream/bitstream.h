// Frame-addressed configuration memory.
//
// Virtex configuration is organised as columns of frames; a frame is the
// atomic unit of (re)configuration and readback. We model one block column
// per CLB column with kFramesPerColumn frames each; every tile contributes
// bitsPerTileRow bits to each frame of its column. Partial run-time
// reconfiguration then falls out naturally: touching one tile dirties only
// the frames of its column, and the packets module turns dirty frames into
// a config packet stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/device.h"
#include "bitstream/pip_table.h"
#include "common/types.h"

namespace xcvsim {

/// Address of one frame: block column plus frame index within the column.
struct FrameAddr {
  int col = 0;
  int frame = 0;

  uint32_t packed() const {
    return static_cast<uint32_t>(col * kFramesPerColumn + frame);
  }
  static FrameAddr unpack(uint32_t v) {
    return {static_cast<int>(v) / kFramesPerColumn,
            static_cast<int>(v) % kFramesPerColumn};
  }
  friend bool operator==(const FrameAddr&, const FrameAddr&) = default;
};

class Bitstream {
 public:
  Bitstream(const DeviceSpec& dev, const PipTable& table);

  const DeviceSpec& device() const { return dev_; }
  const PipTable& table() const { return *table_; }

  /// Bits in one frame (rows x bitsPerTileRow, rounded up to words).
  int frameBits() const { return frameBits_; }
  /// Frame columns: one per CLB column plus the two BRAM content columns.
  int numColumns() const { return dev_.cols + kBramColumns; }
  /// Total frames in the device (CLB and BRAM columns alike).
  int numFrames() const { return numColumns() * kFramesPerColumn; }
  /// Total configuration size in bytes.
  size_t configBytes() const { return words_.size() * sizeof(uint64_t); }

  /// Set/get the configuration bit for slot `slot` of tile `rc`.
  void setSlot(RowCol rc, int slot, bool value);
  bool getSlot(RowCol rc, int slot) const;

  /// Set/get one block-RAM content bit: column side (0 = west, 1 = east),
  /// block index along the column, bit within the block's 4096-bit array.
  /// BRAM contents live in their own frame columns after the CLB columns,
  /// so partial reconfiguration and bitfiles carry them like any frame.
  void setBramBit(int side, int block, int bit, bool value);
  bool getBramBit(int side, int block, int bit) const;
  /// Blocks per BRAM column on this device.
  int bramBlocksPerColumn() const { return dev_.rows / kBramRowsPerBlock; }

  /// Raw frame payload for readback and packet construction.
  std::span<const uint64_t> frameWords(FrameAddr fa) const;
  std::span<uint64_t> frameWords(FrameAddr fa);

  /// Frames written since the last clearDirty() (for partial reconfig).
  std::vector<FrameAddr> dirtyFrames() const;
  void clearDirty();

  /// Number of 1 bits in the whole configuration.
  size_t popcount() const;

  friend bool operator==(const Bitstream& a, const Bitstream& b) {
    return a.words_ == b.words_;
  }

 private:
  size_t bitIndex(RowCol rc, int slot) const;
  size_t bramBitIndex(int side, int block, int bit) const;

  DeviceSpec dev_;
  const PipTable* table_;
  int frameBits_ = 0;
  int frameWords_ = 0;
  std::vector<uint64_t> words_;
  std::vector<bool> dirty_;  // per frame
};

}  // namespace xcvsim
