#include "bitstream/bitstream.h"

#include <bit>
#include <string>

#include "common/error.h"

namespace xcvsim {

Bitstream::Bitstream(const DeviceSpec& dev, const PipTable& table)
    : dev_(dev), table_(&table) {
  frameBits_ = dev.rows * table.bitsPerTileRow();
  frameWords_ = (frameBits_ + 63) / 64;
  words_.assign(static_cast<size_t>(numFrames()) *
                    static_cast<size_t>(frameWords_),
                0);
  dirty_.assign(static_cast<size_t>(numFrames()), false);
}

size_t Bitstream::bitIndex(RowCol rc, int slot) const {
  if (!dev_.contains(rc) || slot < 0 || slot >= table_->slotsPerTile()) {
    throw BitstreamError("bit address out of range: tile R" +
                         std::to_string(rc.row) + "C" +
                         std::to_string(rc.col) + " slot " +
                         std::to_string(slot));
  }
  const int bpr = table_->bitsPerTileRow();
  const int frame = slot / bpr;
  const int offset = rc.row * bpr + slot % bpr;
  const size_t frameIdx = FrameAddr{rc.col, frame}.packed();
  return frameIdx * static_cast<size_t>(frameWords_) * 64 +
         static_cast<size_t>(offset);
}

size_t Bitstream::bramBitIndex(int side, int block, int bit) const {
  if (side < 0 || side >= kBramColumns || block < 0 ||
      block >= bramBlocksPerColumn() || bit < 0 ||
      bit >= kBramBitsPerBlock) {
    throw BitstreamError("BRAM content address out of range");
  }
  const int linear = block * kBramBitsPerBlock + bit;
  const int frame = linear / frameBits_;
  const int offset = linear % frameBits_;
  if (frame >= kFramesPerColumn) {
    throw BitstreamError("BRAM content exceeds column capacity");
  }
  const size_t frameIdx = FrameAddr{dev_.cols + side, frame}.packed();
  return frameIdx * static_cast<size_t>(frameWords_) * 64 +
         static_cast<size_t>(offset);
}

void Bitstream::setBramBit(int side, int block, int bit, bool value) {
  const size_t b = bramBitIndex(side, block, bit);
  uint64_t& w = words_[b / 64];
  const uint64_t mask = uint64_t{1} << (b % 64);
  w = value ? (w | mask) : (w & ~mask);
  dirty_[b / 64 / static_cast<size_t>(frameWords_)] = true;
}

bool Bitstream::getBramBit(int side, int block, int bit) const {
  const size_t b = bramBitIndex(side, block, bit);
  return (words_[b / 64] >> (b % 64)) & 1;
}

void Bitstream::setSlot(RowCol rc, int slot, bool value) {
  const size_t bit = bitIndex(rc, slot);
  uint64_t& w = words_[bit / 64];
  const uint64_t mask = uint64_t{1} << (bit % 64);
  w = value ? (w | mask) : (w & ~mask);
  dirty_[bit / 64 / static_cast<size_t>(frameWords_)] = true;
}

bool Bitstream::getSlot(RowCol rc, int slot) const {
  const size_t bit = bitIndex(rc, slot);
  return (words_[bit / 64] >> (bit % 64)) & 1;
}

std::span<const uint64_t> Bitstream::frameWords(FrameAddr fa) const {
  if (fa.col < 0 || fa.col >= numColumns() || fa.frame < 0 ||
      fa.frame >= kFramesPerColumn) {
    throw BitstreamError("frame address out of range");
  }
  return {words_.data() + fa.packed() * static_cast<size_t>(frameWords_),
          static_cast<size_t>(frameWords_)};
}

std::span<uint64_t> Bitstream::frameWords(FrameAddr fa) {
  const auto c =
      static_cast<const Bitstream*>(this)->frameWords(fa);
  return {const_cast<uint64_t*>(c.data()), c.size()};
}

std::vector<FrameAddr> Bitstream::dirtyFrames() const {
  std::vector<FrameAddr> out;
  for (size_t i = 0; i < dirty_.size(); ++i) {
    if (dirty_[i]) out.push_back(FrameAddr::unpack(static_cast<uint32_t>(i)));
  }
  return out;
}

void Bitstream::clearDirty() {
  dirty_.assign(dirty_.size(), false);
}

size_t Bitstream::popcount() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

}  // namespace xcvsim
