// Configuration bitstream files.
//
// JBits-era tooling exchanges designs as bitstream files; this module
// defines an equivalent container for the simulated device. The format
// mirrors the structure of a Virtex .bit configuration: a header naming
// the design and the target device, then a stream of frame packets (the
// same Packet unit the partial-reconfiguration path uses, each CRC
// protected), and a final end-marker with a whole-stream CRC. Full writes
// skip all-zero frames, so a sparse design serialises compactly; partial
// files carry any packet subset and replay through applyPackets().
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bitstream/bitstream.h"
#include "bitstream/packets.h"

namespace xcvsim {

/// Metadata recovered from a bitfile header.
struct BitfileHeader {
  std::string design;
  std::string device;
  int rows = 0;
  int cols = 0;
  uint32_t frameWords = 0;
  uint32_t packetCount = 0;
};

/// Serialise the full configuration (all-zero frames omitted).
void writeBitfile(std::ostream& os, const Bitstream& bs,
                  std::string_view designName);

/// Serialise an explicit packet list (a partial-reconfiguration file).
void writePartialBitfile(std::ostream& os, const DeviceSpec& dev,
                         std::span<const Packet> packets,
                         std::string_view designName);

/// Parse only the header (cheap peek at design/device identity).
BitfileHeader readBitfileHeader(std::istream& is);

/// Parse a bitfile and apply its packets to `bs`. Throws BitstreamError on
/// bad magic, device mismatch, packet CRC failure, or stream-CRC failure.
/// Returns the header for caller inspection.
BitfileHeader readBitfile(std::istream& is, Bitstream& bs);

/// Parse a bitfile into its packet list without applying it.
std::vector<Packet> readBitfilePackets(std::istream& is,
                                       BitfileHeader* header = nullptr);

}  // namespace xcvsim
