#include "bitstream/packets.h"

#include <algorithm>
#include <cstring>

#include "bitstream/crc32.h"
#include "common/error.h"

namespace xcvsim {

uint32_t packetCrc(uint32_t frameAddr, std::span<const uint64_t> data) {
  Crc32 crc;
  crc.update(frameAddr);
  for (uint64_t w : data) {
    crc.update(static_cast<uint32_t>(w));
    crc.update(static_cast<uint32_t>(w >> 32));
  }
  return crc.value();
}

Packet makeFramePacket(const Bitstream& bs, FrameAddr fa) {
  Packet p;
  p.frameAddr = fa.packed();
  const auto words = bs.frameWords(fa);
  p.data.assign(words.begin(), words.end());
  p.crc = packetCrc(p.frameAddr, p.data);
  return p;
}

std::vector<Packet> diffPackets(const Bitstream& from, const Bitstream& to) {
  if (!(from.device().rows == to.device().rows &&
        from.device().cols == to.device().cols)) {
    throw BitstreamError("diffPackets: device mismatch");
  }
  std::vector<Packet> out;
  for (int col = 0; col < to.numColumns(); ++col) {
    for (int f = 0; f < kFramesPerColumn; ++f) {
      const FrameAddr fa{col, f};
      const auto a = from.frameWords(fa);
      const auto b = to.frameWords(fa);
      if (!std::equal(a.begin(), a.end(), b.begin())) {
        out.push_back(makeFramePacket(to, fa));
      }
    }
  }
  return out;
}

std::vector<Packet> dirtyPackets(const Bitstream& bs) {
  std::vector<Packet> out;
  for (FrameAddr fa : bs.dirtyFrames()) {
    out.push_back(makeFramePacket(bs, fa));
  }
  return out;
}

void applyPackets(Bitstream& bs, std::span<const Packet> packets) {
  for (const Packet& p : packets) {
    if (packetCrc(p.frameAddr, p.data) != p.crc) {
      throw BitstreamError("packet CRC mismatch at frame " +
                           std::to_string(p.frameAddr));
    }
    const FrameAddr fa = FrameAddr::unpack(p.frameAddr);
    const auto dst = bs.frameWords(fa);
    if (p.data.size() != dst.size()) {
      throw BitstreamError("packet length mismatch at frame " +
                           std::to_string(p.frameAddr));
    }
    std::copy(p.data.begin(), p.data.end(), dst.begin());
  }
}

}  // namespace xcvsim
