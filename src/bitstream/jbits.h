// The JBits-equivalent low-level configuration interface.
//
// "Built on JBits, the JRoute API provides access to routing resources" —
// JBits itself is the layer that reads and writes individual configuration
// points in the bitstream. This facade exposes exactly that: turn a PIP on
// or off, program a LUT truth table, poke a logic mode bit. The JRoute
// router writes through this interface, so every routing action is
// faithfully reflected in the frame data (and the decoder can prove it).
#pragma once

#include "bitstream/bitstream.h"
#include "bitstream/pip_table.h"

namespace xcvsim {

class JBits {
 public:
  JBits(const DeviceSpec& dev, const PipTable& table)
      : bits_(dev, table), table_(&table) {}

  Bitstream& bitstream() { return bits_; }
  const Bitstream& bitstream() const { return bits_; }
  const DeviceSpec& device() const { return bits_.device(); }

  /// Turn a same-tile PIP on/off. Throws BitstreamError when (from, to)
  /// is not a configurable point of the fabric.
  void setPip(RowCol rc, LocalWire from, LocalWire to, bool on);
  bool getPip(RowCol rc, LocalWire from, LocalWire to) const;

  /// Direct-connect PIPs (output of `rc` to an input of the east/west
  /// neighbour).
  void setDirect(RowCol rc, Dir toward, LocalWire from, LocalWire to,
                 bool on);
  bool getDirect(RowCol rc, Dir toward, LocalWire from, LocalWire to) const;

  /// Global clock pad driver k on/off.
  void setGlobalPad(int k, bool on);
  bool getGlobalPad(int k) const;

  /// Program the 16-bit truth table of LUT `lut` (0..3: S0F, S0G, S1F,
  /// S1G) of tile `rc`.
  void setLut(RowCol rc, int lut, uint16_t truth);
  uint16_t getLut(RowCol rc, int lut) const;

  /// Miscellaneous per-tile logic configuration bit.
  void setMiscBit(RowCol rc, int bit, bool on);
  bool getMiscBit(RowCol rc, int bit) const;

 private:
  int requireSlot(const PipKey& key) const;

  Bitstream bits_;
  const PipTable* table_;
};

}  // namespace xcvsim
