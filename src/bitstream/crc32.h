// CRC-32 (IEEE 802.3 polynomial), used to protect partial-reconfiguration
// packet payloads the way the Virtex configuration logic checks CRC before
// committing frames.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace xcvsim {

/// Incremental CRC-32 accumulator.
class Crc32 {
 public:
  void update(std::span<const uint8_t> data);
  void update(uint32_t word);

  /// Final value (can keep updating afterwards; value() is pure).
  uint32_t value() const { return ~state_; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot convenience.
uint32_t crc32(std::span<const uint8_t> data);

}  // namespace xcvsim
