#include "bitstream/decoder.h"

namespace xcvsim {

std::vector<DecodedPip> decodePips(const Bitstream& bs) {
  std::vector<DecodedPip> out;
  const PipTable& table = bs.table();
  const DeviceSpec& dev = bs.device();
  const int pipSlots = table.numPipSlots();
  for (int16_t r = 0; r < dev.rows; ++r) {
    for (int16_t c = 0; c < dev.cols; ++c) {
      const RowCol rc{r, c};
      for (int s = 0; s < pipSlots; ++s) {
        if (bs.getSlot(rc, s)) {
          out.push_back({rc, table.keyAt(s)});
        }
      }
    }
  }
  return out;
}

size_t countEnabledPips(const Bitstream& bs) {
  size_t n = 0;
  const PipTable& table = bs.table();
  const DeviceSpec& dev = bs.device();
  const int pipSlots = table.numPipSlots();
  for (int16_t r = 0; r < dev.rows; ++r) {
    for (int16_t c = 0; c < dev.cols; ++c) {
      for (int s = 0; s < pipSlots; ++s) {
        if (bs.getSlot({r, c}, s)) ++n;
      }
    }
  }
  return n;
}

}  // namespace xcvsim
