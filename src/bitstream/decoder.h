// Configuration decoder: recover the set of enabled PIPs from raw frame
// data. This is the readback direction of the JBits layer — BoardScope-
// style debug tools work from exactly this information — and it lets tests
// prove the router's write-through is faithful: decode(bitstream) must
// equal the fabric's on-PIP set after any sequence of route/unroute calls.
#pragma once

#include <vector>

#include "bitstream/bitstream.h"
#include "bitstream/pip_table.h"

namespace xcvsim {

/// One enabled configurable point found in a bitstream.
struct DecodedPip {
  RowCol tile;
  PipKey key;

  friend bool operator==(const DecodedPip&, const DecodedPip&) = default;
};

/// All enabled PIPs (TilePip, DirectE/W, GlobalPad) in the configuration,
/// in deterministic tile-major, slot-minor order. LUT and misc logic bits
/// are not PIPs and are not reported.
std::vector<DecodedPip> decodePips(const Bitstream& bs);

/// Count of enabled PIPs without materialising the list.
size_t countEnabledPips(const Bitstream& bs);

}  // namespace xcvsim
