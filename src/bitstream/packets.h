// Partial-reconfiguration packet stream.
//
// Run-time reconfiguration on Virtex writes whole frames through the
// configuration port: a frame-address register (FAR) write followed by the
// frame data (FDRI) and a CRC check. We model exactly that unit: a packet
// carries one frame's payload, its address, and a CRC-32; applyPackets
// verifies each CRC before committing, like the device's configuration
// logic. diffPackets() produces the minimal frame set that transforms one
// configuration into another — the core primitive behind the paper's
// "cores can be removed or replaced at run-time without having to
// reconfigure the entire design".
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstream/bitstream.h"

namespace xcvsim {

struct Packet {
  uint32_t frameAddr = 0;           // FrameAddr::packed()
  std::vector<uint64_t> data;       // one frame payload
  uint32_t crc = 0;                 // CRC-32 over address + payload
};

/// CRC over a packet's address and payload.
uint32_t packetCrc(uint32_t frameAddr, std::span<const uint64_t> data);

/// Build a packet for one frame of `bs`.
Packet makeFramePacket(const Bitstream& bs, FrameAddr fa);

/// Packets for every frame that differs between `from` and `to`
/// (the minimal partial-reconfiguration stream).
std::vector<Packet> diffPackets(const Bitstream& from, const Bitstream& to);

/// Packets for every frame dirtied since the bitstream's last clearDirty().
std::vector<Packet> dirtyPackets(const Bitstream& bs);

/// Apply packets to a configuration. Throws BitstreamError when a CRC does
/// not match or a frame address is invalid; on throw, no further packets
/// are applied (frames already committed stay, as on the real device).
void applyPackets(Bitstream& bs, std::span<const Packet> packets);

}  // namespace xcvsim
