// Interconnect timing model.
//
// Delay accumulates along the driver chain: each segment contributes its
// intrinsic delay (single < hex < long, per Graph::nodeDelay) and each PIP
// a fixed switching delay. The model supports the paper's future-work
// items — skew analysis for fanout nets and the long-line ablation of
// experiment E8 — with relative magnitudes that mirror Virtex reality.
#pragma once

#include <vector>

#include "fabric/fabric.h"

namespace xcvsim {

/// Fixed delay of one PIP (pass transistor + buffer).
inline constexpr DelayPs kPipDelayPs = 60;

struct SinkDelay {
  NodeId sink = kInvalidNode;
  DelayPs delay = 0;
};

struct NetTiming {
  std::vector<SinkDelay> sinks;
  DelayPs maxDelay = 0;
  DelayPs minDelay = 0;

  /// Clock skew across the net's sinks.
  DelayPs skew() const { return maxDelay - minDelay; }
};

/// Arrival time at every sink of the net rooted at `source`.
NetTiming computeNetTiming(const Fabric& fabric, NodeId source);

/// Arrival time at one node of a routed net (sums its driver chain).
DelayPs arrivalAt(const Fabric& fabric, NodeId node);

}  // namespace xcvsim
