#include "fabric/fabric.h"

#include <queue>

namespace xcvsim {

Fabric::Fabric(const Graph& graph, const PipTable& table)
    : graph_(&graph), jbits_(graph.device(), table) {
  nodeNet_.assign(graph.numNodes(), kInvalidNet);
  nodeDriver_.assign(graph.numNodes(), kInvalidEdge);
  onOut_.assign(graph.numNodes(), 0);
  onBits_.assign((graph.numEdges() + 63) / 64, 0);
}

NetId Fabric::createNet(NodeId source, std::string name) {
  if (source >= graph_->numNodes()) {
    throw ArgumentError("createNet: invalid source node");
  }
  if (nodeNet_[source] != kInvalidNet) {
    throw ContentionError("createNet: source segment already in use", source);
  }
  const NetId id = static_cast<NetId>(nets_.size());
  nets_.push_back({source, std::move(name), 1, true});
  nodeNet_[source] = id;
  ++usedNodes_;
  ++liveNets_;
  return id;
}

void Fabric::removeNet(NetId net) {
  if (!netExists(net)) throw ArgumentError("removeNet: unknown net");
  NetInfo& info = nets_[net];
  if (info.nodes != 1 || onOut_[info.source] != 0) {
    throw JRouteError("removeNet: net '" + info.name +
                      "' is still routed; unroute it first");
  }
  nodeNet_[info.source] = kInvalidNet;
  --usedNodes_;
  info.live = false;
  info.nodes = 0;
  --liveNets_;
}

bool Fabric::netExists(NetId net) const {
  return net < nets_.size() && nets_[net].live;
}

NodeId Fabric::netSource(NetId net) const {
  if (!netExists(net)) throw ArgumentError("netSource: unknown net");
  return nets_[net].source;
}

const std::string& Fabric::netName(NetId net) const {
  if (!netExists(net)) throw ArgumentError("netName: unknown net");
  return nets_[net].name;
}

size_t Fabric::netSize(NetId net) const {
  if (!netExists(net)) throw ArgumentError("netSize: unknown net");
  return nets_[net].nodes;
}

void Fabric::writeThrough(EdgeId e, bool on) {
  const Edge& ed = graph_->edge(e);
  const RowCol rc{static_cast<int16_t>(ed.tileRow),
                  static_cast<int16_t>(ed.tileCol)};
  if (ed.fromLocal == kInvalidLocalWire) {
    // Global clock pad driver.
    jbits_.setGlobalPad(graph_->info(ed.to).track, on);
    return;
  }
  if (graph_->nodeAt(rc, ed.toLocal) != ed.to) {
    // Direct connect: the target pin belongs to a horizontal neighbour.
    const NodeInfo ti = graph_->info(ed.to);
    const Dir toward = ti.tile.col > rc.col ? Dir::East : Dir::West;
    jbits_.setDirect(rc, toward, ed.fromLocal, ed.toLocal, on);
    return;
  }
  jbits_.setPip(rc, ed.fromLocal, ed.toLocal, on);
}

void Fabric::turnOn(EdgeId e, NetId net) {
  if (e >= graph_->numEdges()) throw ArgumentError("turnOn: invalid edge");
  if (!netExists(net)) throw ArgumentError("turnOn: unknown net");
  const Edge& ed = graph_->edge(e);
  const NodeId u = graph_->edgeSource(e);
  const NodeId v = ed.to;

  if (nodeNet_[u] != net) {
    throw ArgumentError("turnOn: PIP source segment " + graph_->nodeName(u) +
                        " is not part of the net");
  }
  if (edgeOn(e)) return;  // idempotent within the net

  if (nodeNet_[v] != kInvalidNet && nodeNet_[v] != net) {
    throw ContentionError("segment " + graph_->nodeName(v) +
                              " is already in use by net '" +
                              nets_[nodeNet_[v]].name + "'",
                          v);
  }
  if (nodeDriver_[v] != kInvalidEdge) {
    throw ContentionError("segment " + graph_->nodeName(v) +
                              " already has a driver (bidirectional "
                              "contention)",
                          v);
  }
  if (v == nets_[net].source) {
    throw ContentionError("segment " + graph_->nodeName(v) +
                              " is the net source and cannot be driven",
                          v);
  }

  if (nodeNet_[v] == kInvalidNet) {
    nodeNet_[v] = net;
    ++nets_[net].nodes;
    ++usedNodes_;
  }
  nodeDriver_[v] = e;
  onBits_[e >> 6] |= uint64_t{1} << (e & 63);
  ++onOut_[u];
  ++onEdges_;
  writeThrough(e, true);
}

void Fabric::releaseIfIdle(NodeId n) {
  if (nodeNet_[n] == kInvalidNet) return;
  const NetId net = nodeNet_[n];
  if (n == nets_[net].source) return;  // sources persist until removeNet
  if (nodeDriver_[n] == kInvalidEdge && onOut_[n] == 0) {
    nodeNet_[n] = kInvalidNet;
    --nets_[net].nodes;
    --usedNodes_;
  }
}

void Fabric::turnOff(EdgeId e) {
  if (e >= graph_->numEdges()) throw ArgumentError("turnOff: invalid edge");
  if (!edgeOn(e)) {
    throw ArgumentError("turnOff: PIP is not on");
  }
  const NodeId u = graph_->edgeSource(e);
  const NodeId v = graph_->edge(e).to;
  onBits_[e >> 6] &= ~(uint64_t{1} << (e & 63));
  --onEdges_;
  --onOut_[u];
  nodeDriver_[v] = kInvalidEdge;
  writeThrough(e, false);
  releaseIfIdle(v);
  releaseIfIdle(u);
}

void Fabric::checkConsistency() const {
  // Recount nodes/edges and verify tree structure per live net.
  size_t used = 0, on = 0;
  for (NodeId n = 0; n < graph_->numNodes(); ++n) {
    if (nodeNet_[n] != kInvalidNet) ++used;
    const EdgeId d = nodeDriver_[n];
    if (d != kInvalidEdge) {
      if (!edgeOn(d) || graph_->edge(d).to != n) {
        throw JRouteError("driver bookkeeping corrupt at " +
                          graph_->nodeName(n));
      }
    }
    int outCount = 0;
    const auto edges = graph_->out(n);
    for (const Edge& ed : edges) {
      const EdgeId id = static_cast<EdgeId>(&ed - &graph_->edge(0));
      if (edgeOn(id)) {
        ++outCount;
        ++on;
        if (nodeNet_[ed.to] != nodeNet_[n]) {
          throw JRouteError("on-edge crosses nets at " + graph_->nodeName(n));
        }
      }
    }
    if (outCount != onOut_[n]) {
      throw JRouteError("fanout count corrupt at " + graph_->nodeName(n));
    }
  }
  if (used != usedNodes_ || on != onEdges_) {
    throw JRouteError("fabric usage counters corrupt");
  }
  // Reachability: every claimed node reachable from its net's source.
  std::vector<uint8_t> seen(graph_->numNodes(), 0);
  for (NetId id = 0; id < nets_.size(); ++id) {
    if (!nets_[id].live) continue;
    std::queue<NodeId> q;
    q.push(nets_[id].source);
    seen[nets_[id].source] = 1;
    size_t visited = 0;
    while (!q.empty()) {
      const NodeId n = q.front();
      q.pop();
      ++visited;
      const auto edges = graph_->out(n);
      for (const Edge& ed : edges) {
        const EdgeId eid = static_cast<EdgeId>(&ed - &graph_->edge(0));
        if (edgeOn(eid) && !seen[ed.to]) {
          seen[ed.to] = 1;
          q.push(ed.to);
        }
      }
    }
    if (visited != nets_[id].nodes) {
      throw JRouteError("net '" + nets_[id].name +
                        "' has segments unreachable from its source");
    }
  }
}

void Fabric::clear() {
  for (NodeId n = 0; n < graph_->numNodes(); ++n) {
    nodeNet_[n] = kInvalidNet;
    nodeDriver_[n] = kInvalidEdge;
    onOut_[n] = 0;
  }
  // Turn every on-PIP off in the bitstream as well.
  for (EdgeId e = 0; e < graph_->numEdges(); ++e) {
    if (edgeOn(e)) writeThrough(e, false);
  }
  onBits_.assign(onBits_.size(), 0);
  nets_.clear();
  usedNodes_ = 0;
  onEdges_ = 0;
  liveNets_ = 0;
}

}  // namespace xcvsim
