// Net tracing over live fabric state — the substrate for the paper's
// trace()/reverseTrace() debugging calls (section 3.5) and for the
// unrouter (section 3.3).
#pragma once

#include <vector>

#include "fabric/fabric.h"

namespace xcvsim {

/// One hop of a traced net.
struct TraceHop {
  EdgeId edge = kInvalidEdge;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
};

/// Forward trace: every on-PIP reachable from `start` within its net, in
/// DFS preorder. "A JRoute call traces a source to all of its sinks. The
/// entire net is returned for the trace."
std::vector<TraceHop> traceForward(const Fabric& fabric, NodeId start);

/// Reverse trace: the driver chain from `sink` back to the net source, in
/// source-to-sink order. "A sink is traced back to its source. Only the
/// net that leads to the sink is returned."
std::vector<TraceHop> traceBack(const Fabric& fabric, NodeId sink);

/// Leaves of the net tree rooted at `start` (nodes with no on out-edges) —
/// the sinks of the net.
std::vector<NodeId> netSinks(const Fabric& fabric, NodeId start);

}  // namespace xcvsim
