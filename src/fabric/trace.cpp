#include "fabric/trace.h"

#include <algorithm>

namespace xcvsim {

std::vector<TraceHop> traceForward(const Fabric& fabric, NodeId start) {
  const Graph& g = fabric.graph();
  std::vector<TraceHop> hops;
  std::vector<NodeId> stack{start};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const Edge& ed : g.out(n)) {
      const EdgeId eid = static_cast<EdgeId>(&ed - &g.edge(0));
      if (fabric.edgeOn(eid)) {
        hops.push_back({eid, n, ed.to});
        stack.push_back(ed.to);
      }
    }
  }
  return hops;
}

std::vector<TraceHop> traceBack(const Fabric& fabric, NodeId sink) {
  const Graph& g = fabric.graph();
  std::vector<TraceHop> hops;
  NodeId n = sink;
  while (true) {
    const EdgeId d = fabric.driverOf(n);
    if (d == kInvalidEdge) break;
    const NodeId src = g.edgeSource(d);
    hops.push_back({d, src, n});
    n = src;
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

std::vector<NodeId> netSinks(const Fabric& fabric, NodeId start) {
  std::vector<NodeId> sinks;
  if (fabric.onOutCount(start) == 0) {
    return sinks;  // a bare source has no sinks yet
  }
  for (const TraceHop& hop : traceForward(fabric, start)) {
    if (fabric.onOutCount(hop.to) == 0) sinks.push_back(hop.to);
  }
  return sinks;
}

}  // namespace xcvsim
