// Live device state: which segments belong to which net, which PIPs are
// on, and who drives what.
//
// This is the layer that implements the paper's section 3.4 guarantee:
//
//   "The Virtex architecture has bi-directional routing resources. This
//    means that the track can be driven at either end, leading to the
//    possibility of contention. The router makes sure that this situation
//    does not occur, and therefore protects the device. An exception is
//    thrown in cases where the user tries to make connections that create
//    contention."
//
// Every turnOn() is validated: the driven segment must be free (or an
// undriven member of the same net), and a segment can never acquire a
// second driver — which is exactly the both-ends-driven hazard on
// bidirectional singles, hexes, and long lines. Every state change is
// written through the JBits layer into the configuration frames, so the
// bitstream always reflects the fabric.
#pragma once

#include <string>
#include <vector>

#include "bitstream/jbits.h"
#include "common/error.h"
#include "rrg/graph.h"

namespace xcvsim {

class Fabric {
 public:
  Fabric(const Graph& graph, const PipTable& table);

  const Graph& graph() const { return *graph_; }
  JBits& jbits() { return jbits_; }
  const JBits& jbits() const { return jbits_; }

  // --- Net lifecycle --------------------------------------------------------

  /// Register a new net driven from `source` (a slice output pin or a
  /// global clock pad). The source node is claimed for the net.
  NetId createNet(NodeId source, std::string name = {});

  /// Remove a fully unrouted net (only its source node may remain claimed).
  void removeNet(NetId net);

  bool netExists(NetId net) const;
  NodeId netSource(NetId net) const;
  const std::string& netName(NetId net) const;
  /// Number of segments currently claimed by the net (including source).
  size_t netSize(NetId net) const;

  // --- PIP switching --------------------------------------------------------

  /// Turn on a PIP as part of `net`. Throws ContentionError when the driven
  /// segment is in use by another net, already has a driver, or is a net
  /// source; throws ArgumentError when the edge's own source segment does
  /// not belong to `net`. Idempotent for an already-on edge of the net.
  void turnOn(EdgeId e, NetId net);

  /// Turn off an on PIP. The driven segment loses its driver; each
  /// endpoint is released from its net once it has neither driver nor
  /// remaining on out-edges (net sources are never released).
  void turnOff(EdgeId e);

  // --- Queries --------------------------------------------------------------

  bool edgeOn(EdgeId e) const {
    return (onBits_[e >> 6] >> (e & 63)) & 1;
  }
  /// The paper's ison(row, col, wire): is this segment in use by any net?
  bool isUsed(NodeId n) const { return nodeNet_[n] != kInvalidNet; }
  NetId netOf(NodeId n) const { return nodeNet_[n]; }
  /// Incoming on-edge driving `n`; kInvalidEdge for free nodes and sources.
  EdgeId driverOf(NodeId n) const { return nodeDriver_[n]; }
  /// Number of on out-edges of `n` (its fanout within its net).
  int onOutCount(NodeId n) const { return onOut_[n]; }

  size_t usedNodeCount() const { return usedNodes_; }
  size_t onEdgeCount() const { return onEdges_; }
  size_t liveNetCount() const { return liveNets_; }
  /// Exclusive upper bound of net ids ever created. Ids below it may name
  /// dead nets — filter with netExists(). Lets offline analysis iterate
  /// the net database without a separate registry.
  size_t netCount() const { return nets_.size(); }

  /// Structural invariant check (tests): every claimed node is reachable
  /// from its net source over on-edges of the same net; driver bookkeeping
  /// matches the on-edge set. Throws JRouteError on violation.
  void checkConsistency() const;

  /// Reset to a blank device (all nets gone, bitstream cleared).
  void clear();

 private:
  struct NetInfo {
    NodeId source = kInvalidNode;
    std::string name;
    size_t nodes = 0;
    bool live = false;
  };

  // Test-only backdoor (see below). Production code never mutates fabric
  // state except through turnOn/turnOff/createNet/removeNet.
  friend class FabricMutator;

  void writeThrough(EdgeId e, bool on);
  void releaseIfIdle(NodeId n);

  const Graph* graph_;
  JBits jbits_;
  std::vector<NetId> nodeNet_;
  std::vector<EdgeId> nodeDriver_;
  std::vector<uint16_t> onOut_;
  std::vector<uint64_t> onBits_;
  std::vector<NetInfo> nets_;
  size_t usedNodes_ = 0;
  size_t onEdges_ = 0;
  size_t liveNets_ = 0;
};

/// TEST-ONLY raw access to fabric internals, used by the DRC mutation
/// harness (tests/drc_test.cpp) to seed invariant violations the public
/// API is designed to make impossible — an analyzer that has never seen a
/// violation proves nothing. None of these maintain bookkeeping or write
/// through to the bitstream; that is the point.
class FabricMutator {
 public:
  explicit FabricMutator(Fabric& f) : f_(&f) {}

  /// Flip the raw on-bit of an edge; no counters, no write-through.
  void setEdgeOnBit(EdgeId e, bool on) {
    if (on) {
      f_->onBits_[e >> 6] |= uint64_t{1} << (e & 63);
    } else {
      f_->onBits_[e >> 6] &= ~(uint64_t{1} << (e & 63));
    }
  }
  void setNodeNet(NodeId n, NetId net) { f_->nodeNet_[n] = net; }
  void setNodeDriver(NodeId n, EdgeId e) { f_->nodeDriver_[n] = e; }
  void setOnOut(NodeId n, uint16_t count) { f_->onOut_[n] = count; }
  void setUsedNodes(size_t v) { f_->usedNodes_ = v; }
  void setOnEdges(size_t v) { f_->onEdges_ = v; }
  void setNetNodes(NetId net, size_t v) { f_->nets_[net].nodes = v; }
  size_t usedNodes() const { return f_->usedNodes_; }
  size_t onEdges() const { return f_->onEdges_; }
  size_t netNodes(NetId net) const { return f_->nets_[net].nodes; }

 private:
  Fabric* f_;
};

}  // namespace xcvsim
