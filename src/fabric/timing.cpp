#include "fabric/timing.h"

#include <limits>

#include "fabric/trace.h"

namespace xcvsim {

DelayPs arrivalAt(const Fabric& fabric, NodeId node) {
  const Graph& g = fabric.graph();
  DelayPs total = g.nodeDelay(node);
  NodeId n = node;
  while (true) {
    const EdgeId d = fabric.driverOf(n);
    if (d == kInvalidEdge) break;
    n = g.edgeSource(d);
    total += kPipDelayPs + g.nodeDelay(n);
  }
  return total;
}

NetTiming computeNetTiming(const Fabric& fabric, NodeId source) {
  const Graph& g = fabric.graph();
  NetTiming timing;
  timing.minDelay = std::numeric_limits<DelayPs>::max();

  // DFS accumulating delay; a node is a sink when it has no on out-edges.
  struct Item {
    NodeId node;
    DelayPs delay;
  };
  std::vector<Item> stack{{source, g.nodeDelay(source)}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    bool leaf = true;
    for (const Edge& ed : g.out(item.node)) {
      const EdgeId eid = static_cast<EdgeId>(&ed - &g.edge(0));
      if (fabric.edgeOn(eid)) {
        leaf = false;
        stack.push_back(
            {ed.to, item.delay + kPipDelayPs + g.nodeDelay(ed.to)});
      }
    }
    if (leaf && item.node != source) {
      timing.sinks.push_back({item.node, item.delay});
      timing.maxDelay = std::max(timing.maxDelay, item.delay);
      timing.minDelay = std::min(timing.minDelay, item.delay);
    }
  }
  if (timing.sinks.empty()) timing.minDelay = 0;
  return timing;
}

}  // namespace xcvsim
