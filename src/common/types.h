// Fundamental value types shared by every layer of the JRoute reproduction.
//
// The substrate (architecture model, routing-resource graph, bitstream,
// fabric state) lives in namespace `xcvsim`; the JRoute API and everything
// above it lives in namespace `jroute`. Both use the ids defined here.
#pragma once

#include <cstdint>
#include <compare>
#include <functional>
#include <limits>
#include <string>

// Clang thread-safety analysis annotations. They compile to nothing on
// other compilers (the container builds with gcc), but when clang++ is
// available, scripts/lint.sh runs a -Wthread-safety pass over the
// concurrency-bearing layers and these make lock protocols checkable:
// which mutex guards which member, which functions expect it held.
// Applied to jrsync::Mutex (common/sync.h), the service queue, and the
// obs stores with internal locking.
#if defined(__clang__)
#define JR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define JR_THREAD_ANNOTATION(x)
#endif

#define JR_CAPABILITY(x) JR_THREAD_ANNOTATION(capability(x))
#define JR_SCOPED_CAPABILITY JR_THREAD_ANNOTATION(scoped_lockable)
#define JR_GUARDED_BY(x) JR_THREAD_ANNOTATION(guarded_by(x))
#define JR_PT_GUARDED_BY(x) JR_THREAD_ANNOTATION(pt_guarded_by(x))
#define JR_REQUIRES(...) JR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define JR_ACQUIRE(...) JR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define JR_RELEASE(...) JR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define JR_TRY_ACQUIRE(...) \
  JR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define JR_EXCLUDES(...) JR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define JR_NO_THREAD_SAFETY_ANALYSIS \
  JR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace xcvsim {

/// Row/column coordinate of a CLB tile. Row 0 is the south edge, column 0
/// the west edge; "north" increases the row index.
struct RowCol {
  int16_t row = 0;
  int16_t col = 0;

  friend auto operator<=>(const RowCol&, const RowCol&) = default;
};

/// Manhattan distance between two tiles.
inline int manhattan(RowCol a, RowCol b) {
  const int dr = a.row - b.row;
  const int dc = a.col - b.col;
  return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
}

/// Compass direction of a routing resource as seen from a tile.
enum class Dir : uint8_t { East = 0, West = 1, North = 2, South = 3 };

inline constexpr int kNumDirs = 4;

/// Unit displacement of a direction: East/West move the column, North/South
/// the row.
inline constexpr int dirDRow(Dir d) {
  return d == Dir::North ? 1 : (d == Dir::South ? -1 : 0);
}
inline constexpr int dirDCol(Dir d) {
  return d == Dir::East ? 1 : (d == Dir::West ? -1 : 0);
}
inline constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::East: return Dir::West;
    case Dir::West: return Dir::East;
    case Dir::North: return Dir::South;
    case Dir::South: return Dir::North;
  }
  return Dir::East;
}
const char* dirName(Dir d);

/// Local wire id within one CLB tile's namespace (the integer wire ids of
/// the paper's architecture description class).
using LocalWire = uint16_t;
inline constexpr LocalWire kInvalidLocalWire =
    std::numeric_limits<LocalWire>::max();

/// Global node id in the routing-resource graph (one id per physical wire
/// segment or logic pin).
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Global directed-edge (PIP) id in the routing-resource graph.
using EdgeId = uint32_t;
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Identifier of a routed net in the fabric's net database.
using NetId = uint32_t;
inline constexpr NetId kInvalidNet = std::numeric_limits<NetId>::max();

/// Routing delay in picoseconds (the fabric timing model's unit).
using DelayPs = int64_t;

}  // namespace xcvsim

template <>
struct std::hash<xcvsim::RowCol> {
  size_t operator()(const xcvsim::RowCol& rc) const noexcept {
    return (static_cast<size_t>(static_cast<uint16_t>(rc.row)) << 16) |
           static_cast<uint16_t>(rc.col);
  }
};
