#include "common/rng.h"

namespace xcvsim {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

uint64_t Rng::below(uint64_t bound) {
  // Debiased modulo via rejection on the top of the range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = next();
    if (r >= threshold) return r % bound;
  }
}

int Rng::intIn(int lo, int hi) {
  return lo + static_cast<int>(below(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::unit() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return unit() < p; }

}  // namespace xcvsim
