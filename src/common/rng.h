// Deterministic pseudo-random number generation for workloads and tests.
//
// Benchmarks and property tests must be reproducible across runs and
// platforms, so we carry our own splitmix64/xoshiro256** implementation
// rather than relying on unspecified standard-library engines.
#pragma once

#include <cstdint>

namespace xcvsim {

/// xoshiro256** seeded via splitmix64. Deterministic for a given seed on
/// every platform.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, bound). bound must be nonzero.
  uint64_t below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int intIn(int lo, int hi);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli trial with probability p.
  bool chance(double p);

 private:
  uint64_t s_[4];
};

}  // namespace xcvsim
