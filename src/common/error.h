// Exception hierarchy of the JRoute reproduction.
//
// The paper specifies that the router "protects the device" by throwing an
// exception when a user call would create contention on a bidirectional
// track (section 3.4), and that template/auto routing calls fail when no
// unused resource combination exists (section 3.1). Those two failure modes
// get dedicated types; everything else (bad arguments, malformed paths,
// bitstream addressing errors) derives from JRouteError.
#pragma once

#include <stdexcept>
#include <string>

#include "common/types.h"

namespace xcvsim {

/// Base class of every error thrown by this library.
class JRouteError : public std::runtime_error {
 public:
  explicit JRouteError(const std::string& what) : std::runtime_error(what) {}
};

/// A call names a tile, wire, or net that does not exist on this device.
class ArgumentError : public JRouteError {
 public:
  explicit ArgumentError(const std::string& what) : JRouteError(what) {}
};

/// Turning on the requested connection would drive a track that already has
/// a different driver (the bidirectional-contention hazard of section 3.4).
class ContentionError : public JRouteError {
 public:
  ContentionError(const std::string& what, NodeId node)
      : JRouteError(what), node_(node) {}

  NodeId node() const { return node_; }

 private:
  NodeId node_;
};

/// A routing call could not find an unused combination of resources
/// (template mismatch, maze failure, exhausted tracks). Per the paper this
/// requires user action, so it surfaces as an exception rather than being
/// retried internally.
class UnroutableError : public JRouteError {
 public:
  explicit UnroutableError(const std::string& what) : JRouteError(what) {}
};

/// Bitstream frame addressing or packet decoding failed.
class BitstreamError : public JRouteError {
 public:
  explicit BitstreamError(const std::string& what) : JRouteError(what) {}
};

}  // namespace xcvsim
