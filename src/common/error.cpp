#include "common/error.h"

// The exception hierarchy is header-only; this translation unit pins the
// vtables so every user of jr_common shares one copy.

namespace xcvsim {

const char* dirName(Dir d) {
  switch (d) {
    case Dir::East: return "East";
    case Dir::West: return "West";
    case Dir::North: return "North";
    case Dir::South: return "South";
  }
  return "?";
}

}  // namespace xcvsim
