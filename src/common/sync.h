// Annotated, instrumented synchronisation primitives.
//
// libstdc++'s std::mutex carries no clang capability attribute, so code
// that wants -Wthread-safety checking needs this thin wrapper: the same
// std::mutex underneath, but declared as a capability so JR_GUARDED_BY /
// JR_REQUIRES relationships are enforceable. MutexLock is the RAII guard
// (std::lock_guard is likewise unannotated in libstdc++).
//
// Every Mutex is also a *named, registry-backed* lock for jrcheck
// (src/check), the run-time lock-order checker: when the checker is armed
// it observes every acquisition and release through the hooks declared
// below, builds the per-thread acquisition-order graph, and reports
// potential deadlocks (cycles) without one ever having to fire. Disarmed
// — the default — each hook is a single relaxed atomic load and a
// never-taken branch, so the hot path pays effectively nothing; the
// checker library defines the hooks, this header only declares them.
//
// A second armable consumer shares the same named-mutex registry: jrprof
// (src/obs/prof.h), the lock-contention profiler. Where jrcheck asks "can
// these locks deadlock?", jrprof asks "which lock is the batch engine
// actually waiting on, and for how long?". Armed, lock() classifies each
// acquisition as contended (the inner try_lock failed) or uncontended,
// times the wait and the hold, and feeds per-mutex histograms; disarmed
// it is the same single relaxed load and never-taken branch as jrcheck.
//
// Mutex satisfies BasicLockable, so std::condition_variable_any can wait
// on it directly.
#pragma once

#include <atomic>
#include <chrono>
#include <mutex>

#include "common/types.h"

namespace jrsync {
class Mutex;
}  // namespace jrsync

namespace jrprof::detail {

/// Nonzero while the profiler is armed. Defined in src/obs/prof.cpp;
/// declared here so the disarmed fast-path test inlines to one load.
extern std::atomic<uint32_t> armedFlag;

// Instrumentation hooks, defined by src/obs/prof.cpp. `locked` runs
// after the underlying lock succeeds (waitNs = 0 and contended = false
// when the speculative try_lock won); `unlocking` runs before the
// unlock, closing the hold interval.
void locked(jrsync::Mutex& mu, uint64_t waitNs, bool contended);
void unlocking(jrsync::Mutex& mu);

}  // namespace jrprof::detail

namespace jrprof {

/// Is the lock-contention profiler armed? (Relaxed, like jrcheck::armed:
/// arming mid-flight may miss or misattribute a few events; the disarmed
/// hot path stays one load + one branch.)
inline bool armed() {
  return detail::armedFlag.load(std::memory_order_relaxed) != 0;
}

}  // namespace jrprof

namespace jrcheck::detail {

/// Nonzero while any checker (global or test-scoped) is armed. Defined in
/// src/check/lockcheck.cpp; declared here so the fast-path test inlines.
extern std::atomic<uint32_t> armedFlag;

// Instrumentation hooks, defined by src/check. `acquiring` runs before
// the underlying lock (the wait-for edge and the schedule-perturbation
// point), `acquired` after it succeeds, `released` before the unlock.
void acquiring(jrsync::Mutex& mu);
void acquired(jrsync::Mutex& mu);
void released(jrsync::Mutex& mu);

}  // namespace jrcheck::detail

namespace jrcheck {

/// Is any lock checker currently armed? (Relaxed: arming mid-flight may
/// miss a few events; the disarmed hot path stays one load + one branch.)
inline bool armed() {
  return detail::armedFlag.load(std::memory_order_relaxed) != 0;
}

}  // namespace jrcheck

namespace jrsync {

class JR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` must outlive the mutex (string literals in practice); it is
  /// what jrcheck reports show for this lock.
  explicit Mutex(const char* name) : name_(name) {}

  void lock() JR_ACQUIRE() {
    if (jrcheck::armed()) jrcheck::detail::acquiring(*this);
    if (jrprof::armed()) {
      lockProfiled();
    } else {
      mu_.lock();
    }
    if (jrcheck::armed()) jrcheck::detail::acquired(*this);
  }
  void unlock() JR_RELEASE() {
    if (jrcheck::armed()) jrcheck::detail::released(*this);
    if (jrprof::armed()) jrprof::detail::unlocking(*this);
    mu_.unlock();
  }
  bool try_lock() JR_TRY_ACQUIRE(true) {
    // A failed try_lock cannot block, so it records no wait-for edge;
    // a successful one still joins the held stack.
    const bool got = mu_.try_lock();
    if (got && jrcheck::armed()) jrcheck::detail::acquired(*this);
    if (got && jrprof::armed()) jrprof::detail::locked(*this, 0, false);
    return got;
  }

  const char* name() const { return name_; }

  /// jrcheck registry slot (0 = not yet registered). Assigned once, by
  /// the checker, on first armed acquisition.
  std::atomic<uint32_t>& checkSlot() { return slot_; }

 private:
  // Armed-profiler acquisition: a speculative try_lock gives the exact
  // contended/uncontended split — a blocking lock() alone cannot tell a
  // zero-wait acquisition from a short one. Only the contended path pays
  // for clock reads.
  void lockProfiled() {
    if (mu_.try_lock()) {
      jrprof::detail::locked(*this, 0, false);
      return;
    }
    const auto t0 = std::chrono::steady_clock::now();
    mu_.lock();
    const auto waitNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    jrprof::detail::locked(*this, static_cast<uint64_t>(waitNs), true);
  }

  const char* name_ = "mutex";
  std::atomic<uint32_t> slot_{0};
  std::mutex mu_;
};

/// RAII guard over Mutex, visible to the analysis as a scoped capability.
class JR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) JR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() JR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace jrsync
