// Annotated synchronisation primitives.
//
// libstdc++'s std::mutex carries no clang capability attribute, so code
// that wants -Wthread-safety checking needs this thin wrapper: the same
// std::mutex underneath, but declared as a capability so JR_GUARDED_BY /
// JR_REQUIRES relationships are enforceable. MutexLock is the RAII guard
// (std::lock_guard is likewise unannotated in libstdc++).
//
// Mutex satisfies BasicLockable, so std::condition_variable_any can wait
// on it directly.
#pragma once

#include <mutex>

#include "common/types.h"

namespace jrsync {

class JR_CAPABILITY("mutex") Mutex {
 public:
  void lock() JR_ACQUIRE() { mu_.lock(); }
  void unlock() JR_RELEASE() { mu_.unlock(); }
  bool try_lock() JR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII guard over Mutex, visible to the analysis as a scoped capability.
class JR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) JR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() JR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace jrsync
