// Annotated, instrumented synchronisation primitives.
//
// libstdc++'s std::mutex carries no clang capability attribute, so code
// that wants -Wthread-safety checking needs this thin wrapper: the same
// std::mutex underneath, but declared as a capability so JR_GUARDED_BY /
// JR_REQUIRES relationships are enforceable. MutexLock is the RAII guard
// (std::lock_guard is likewise unannotated in libstdc++).
//
// Every Mutex is also a *named, registry-backed* lock for jrcheck
// (src/check), the run-time lock-order checker: when the checker is armed
// it observes every acquisition and release through the hooks declared
// below, builds the per-thread acquisition-order graph, and reports
// potential deadlocks (cycles) without one ever having to fire. Disarmed
// — the default — each hook is a single relaxed atomic load and a
// never-taken branch, so the hot path pays effectively nothing; the
// checker library defines the hooks, this header only declares them.
//
// Mutex satisfies BasicLockable, so std::condition_variable_any can wait
// on it directly.
#pragma once

#include <atomic>
#include <mutex>

#include "common/types.h"

namespace jrsync {
class Mutex;
}  // namespace jrsync

namespace jrcheck::detail {

/// Nonzero while any checker (global or test-scoped) is armed. Defined in
/// src/check/lockcheck.cpp; declared here so the fast-path test inlines.
extern std::atomic<uint32_t> armedFlag;

// Instrumentation hooks, defined by src/check. `acquiring` runs before
// the underlying lock (the wait-for edge and the schedule-perturbation
// point), `acquired` after it succeeds, `released` before the unlock.
void acquiring(jrsync::Mutex& mu);
void acquired(jrsync::Mutex& mu);
void released(jrsync::Mutex& mu);

}  // namespace jrcheck::detail

namespace jrcheck {

/// Is any lock checker currently armed? (Relaxed: arming mid-flight may
/// miss a few events; the disarmed hot path stays one load + one branch.)
inline bool armed() {
  return detail::armedFlag.load(std::memory_order_relaxed) != 0;
}

}  // namespace jrcheck

namespace jrsync {

class JR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// `name` must outlive the mutex (string literals in practice); it is
  /// what jrcheck reports show for this lock.
  explicit Mutex(const char* name) : name_(name) {}

  void lock() JR_ACQUIRE() {
    if (jrcheck::armed()) jrcheck::detail::acquiring(*this);
    mu_.lock();
    if (jrcheck::armed()) jrcheck::detail::acquired(*this);
  }
  void unlock() JR_RELEASE() {
    if (jrcheck::armed()) jrcheck::detail::released(*this);
    mu_.unlock();
  }
  bool try_lock() JR_TRY_ACQUIRE(true) {
    // A failed try_lock cannot block, so it records no wait-for edge;
    // a successful one still joins the held stack.
    const bool got = mu_.try_lock();
    if (got && jrcheck::armed()) jrcheck::detail::acquired(*this);
    return got;
  }

  const char* name() const { return name_; }

  /// jrcheck registry slot (0 = not yet registered). Assigned once, by
  /// the checker, on first armed acquisition.
  std::atomic<uint32_t>& checkSlot() { return slot_; }

 private:
  const char* name_ = "mutex";
  std::atomic<uint32_t> slot_{0};
  std::mutex mu_;
};

/// RAII guard over Mutex, visible to the analysis as a scoped capability.
class JR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) JR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() JR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace jrsync
