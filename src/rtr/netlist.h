// Routed-netlist export/import — an XDL-flavoured text interchange format
// for routed designs.
//
// The paper positions JRoute as a base "to build tools" on (section 1);
// a human-readable dump of every net's PIP chain is the classic such
// tool: it diffs, it replays onto a blank device, and it documents a
// routed design independent of the binary configuration. Each line is:
//
//   net <name> <row> <col> <wireId>          # source pin
//   pip <row> <col> <fromWireId> <toWireId>  # one enabled PIP
//   pipx <row> <col> <fromWireId> <row2> <col2> <toWireId>  # direct conn.
//   end
//
// Wire names appear as trailing comments for readability; only the
// numeric fields are parsed.
#pragma once

#include <iosfwd>
#include <string>

#include "core/router.h"

namespace jroute {

/// Dump every live net of the fabric in source-to-sink PIP order.
std::string exportNetlist(const Fabric& fabric);

/// Replay a netlist onto a fabric (which may already hold other nets).
/// Returns the number of nets created. Throws ArgumentError on malformed
/// input and ContentionError if the design collides with existing nets.
int importNetlist(Fabric& fabric, std::istream& is);

}  // namespace jroute
