#include "rtr/boardscope.h"

#include <map>

#include "fabric/timing.h"
#include "fabric/trace.h"

namespace jroute {

using xcvsim::Graph;
using xcvsim::NodeId;
using xcvsim::RowCol;

std::string renderUsageMap(const Fabric& fabric) {
  const Graph& g = fabric.graph();
  const auto& dev = g.device();
  std::vector<int> counts(static_cast<size_t>(dev.tiles()), 0);
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    if (!fabric.isUsed(n)) continue;
    const RowCol rc = g.positionOf(n);
    if (dev.contains(rc)) {
      ++counts[static_cast<size_t>(rc.row * dev.cols + rc.col)];
    }
  }
  std::string out;
  out.reserve(static_cast<size_t>((dev.cols + 1) * dev.rows));
  // Row 0 is the south edge; print north side first like a floorplan.
  for (int r = dev.rows - 1; r >= 0; --r) {
    for (int c = 0; c < dev.cols; ++c) {
      const int n = counts[static_cast<size_t>(r * dev.cols + c)];
      out += n == 0 ? '.' : (n <= 9 ? static_cast<char>('0' + n) : '#');
    }
    out += '\n';
  }
  return out;
}

std::string renderNet(const Router& router, const EndPoint& source) {
  const Fabric& fabric = router.fabric();
  const Graph& g = fabric.graph();
  const NetTrace t = router.trace(source);
  std::string out = "net from " + g.nodeName(t.source) + " (" +
                    std::to_string(t.hops.size()) + " PIPs, " +
                    std::to_string(t.sinks.size()) + " sinks)\n";
  for (const auto& hop : t.hops) {
    out += "  " + g.nodeName(hop.from) + " -> " + g.nodeName(hop.to) + "\n";
  }
  const xcvsim::NetTiming timing = computeNetTiming(fabric, t.source);
  for (const auto& sd : timing.sinks) {
    out += "  sink " + g.nodeName(sd.sink) + " @ " +
           std::to_string(sd.delay) + " ps\n";
  }
  out += "  skew " + std::to_string(timing.skew()) + " ps\n";
  return out;
}

std::string netSummary(const Fabric& fabric) {
  const Graph& g = fabric.graph();
  // Collect per-net segment counts by scanning node ownership.
  std::map<xcvsim::NetId, size_t> sizes;
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    if (fabric.isUsed(n)) ++sizes[fabric.netOf(n)];
  }
  std::string out;
  for (const auto& [net, size] : sizes) {
    const NodeId src = fabric.netSource(net);
    out += fabric.netName(net) + ": " + std::to_string(size) +
           " segments, " +
           std::to_string(netSinks(fabric, src).size()) + " sinks\n";
  }
  return out;
}

}  // namespace jroute
