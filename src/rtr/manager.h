// Run-time reconfiguration manager: the system-level choreography of
// section 3.3 — install cores, wire their ports, and later replace,
// reparameterize, or relocate them with all port connections restored
// from the router's memory:
//
//   "A core may be replaced with the same type of core having different
//    parameters. In this case the user can unroute the core then replace
//    it. The port connections are removed, but are remembered. If the
//    ports are reused, then they will be automatically connected to the
//    new core. ... Core relocation is handled in a similar way."
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "cores/rtp_core.h"

namespace jroute {

class RtrManager {
 public:
  /// Routes a port-group bus (sources[i] -> sinks[i]); throws
  /// ContentionError / UnroutableError / JRouteError like Router::route.
  using BusConnector = std::function<void(std::span<const EndPoint>,
                                          std::span<const EndPoint>)>;

  explicit RtrManager(Router& router) : router_(&router) {}

  Router& router() { return *router_; }

  /// Route port connections through `fn` instead of the raw router — e.g.
  /// a jrsvc::Session, so the manager's nets are session-owned and go
  /// through the service's batching and transactional machinery. Pass an
  /// empty function to restore direct routing.
  void setConnector(BusConnector fn) { connector_ = std::move(fn); }

  /// Place a core and start tracking it.
  void install(RtpCore& core, RowCol origin);

  /// Remove a core from the fabric (port connections stay remembered).
  void remove(RtpCore& core);

  /// Connect two port groups as a bus (sources[i] -> sinks[i]).
  void connect(std::span<Port* const> sources, std::span<Port* const> sinks);
  void connect(const RtpCore& from, std::string_view fromGroup,
               const RtpCore& to, std::string_view toGroup);

  /// Rebuild a core in place (after a parameter change that altered its
  /// structure) and reconnect every remembered port connection.
  void reconfigure(RtpCore& core);

  /// Move a core to a new origin and reconnect its ports.
  void relocate(RtpCore& core, RowCol newOrigin);

  const std::vector<RtpCore*>& installed() const { return cores_; }

 private:
  void reconnect(RtpCore& core);

  Router* router_;
  BusConnector connector_;
  std::vector<RtpCore*> cores_;
};

}  // namespace jroute
