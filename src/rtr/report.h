// Fabric utilization reporting: per-resource-class usage and a per-column
// congestion profile — the dashboard a run-time system watches to decide
// where the next core still fits.
#pragma once

#include <string>
#include <vector>

#include "fabric/fabric.h"

namespace jroute {

struct ResourceUsage {
  size_t total = 0;
  size_t used = 0;

  double percent() const {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(used) /
                            static_cast<double>(total);
  }
};

struct UtilizationReport {
  ResourceUsage singles;
  ResourceUsage hexes;
  ResourceUsage longs;
  ResourceUsage logic;    // slice outputs, OMUX lines, CLB inputs
  ResourceUsage globals;  // GCLK nets
  ResourceUsage iobs;     // pad buffers
  ResourceUsage brams;    // block-RAM port pins
  /// Used-segment count per device column (congestion profile).
  std::vector<size_t> perColumn;

  /// Render as an aligned text table.
  std::string toString() const;
};

UtilizationReport computeUtilization(const xcvsim::Fabric& fabric);

}  // namespace jroute
