#include "rtr/netlist.h"

#include <istream>
#include <map>
#include <sstream>

#include "common/error.h"
#include "fabric/trace.h"

namespace jroute {

using xcvsim::ArgumentError;
using xcvsim::Edge;
using xcvsim::EdgeId;
using xcvsim::Graph;
using xcvsim::kInvalidLocalWire;
using xcvsim::kInvalidNode;
using xcvsim::NetId;
using xcvsim::NodeId;
using xcvsim::RowCol;

std::string exportNetlist(const Fabric& fabric) {
  const Graph& g = fabric.graph();
  std::ostringstream os;

  // Enumerate live nets deterministically by scanning node ownership for
  // sources (a source is a used node with no driver).
  std::map<NetId, NodeId> sources;
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    if (fabric.isUsed(n) && fabric.driverOf(n) == xcvsim::kInvalidEdge) {
      sources.emplace(fabric.netOf(n), n);
    }
  }

  for (const auto& [net, src] : sources) {
    const auto srcInfo = g.info(src);
    if (srcInfo.kind == xcvsim::NodeKind::GclkPad) {
      // Global clock pads have no (row, col, wire) address.
      os << "netpad " << fabric.netName(net) << " " << srcInfo.track
         << "  # " << g.nodeName(src) << "\n";
    } else {
      const xcvsim::LocalWire srcWire = g.aliasAt(src, srcInfo.tile);
      os << "net " << fabric.netName(net) << " " << srcInfo.tile.row << " "
         << srcInfo.tile.col << " " << srcWire << "  # "
         << g.nodeName(src) << "\n";
    }
    for (const xcvsim::TraceHop& hop : traceForward(fabric, src)) {
      const Edge& e = g.edge(hop.edge);
      const RowCol rc{static_cast<int16_t>(e.tileRow),
                      static_cast<int16_t>(e.tileCol)};
      if (e.fromLocal == kInvalidLocalWire) {
        // Global pad driver: re-encode as a pip on the net's pad.
        os << "pad " << g.info(hop.to).track << "\n";
      } else if (g.nodeAt(rc, e.toLocal) != e.to) {
        // Direct connect: destination pin lives in the neighbour tile.
        const auto ti = g.info(e.to);
        os << "pipx " << rc.row << " " << rc.col << " " << e.fromLocal
           << " " << ti.tile.row << " " << ti.tile.col << " " << e.toLocal
           << "  # " << g.nodeName(hop.from) << " -> "
           << g.nodeName(hop.to) << "\n";
      } else {
        os << "pip " << rc.row << " " << rc.col << " " << e.fromLocal
           << " " << e.toLocal << "  # " << g.nodeName(hop.from) << " -> "
           << g.nodeName(hop.to) << "\n";
      }
    }
    os << "end\n";
  }
  return os.str();
}

int importNetlist(Fabric& fabric, std::istream& is) {
  const Graph& g = fabric.graph();
  int netsCreated = 0;
  NetId current = xcvsim::kInvalidNet;
  std::string line;
  int lineNo = 0;

  const auto fail = [&](const std::string& what) {
    throw ArgumentError("netlist line " + std::to_string(lineNo) + ": " +
                        what);
  };

  while (std::getline(is, line)) {
    ++lineNo;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd)) continue;  // blank line

    if (cmd == "net") {
      std::string name;
      int row, col, wire;
      if (!(ls >> name >> row >> col >> wire)) fail("malformed net");
      const NodeId src = g.nodeAt(
          {static_cast<int16_t>(row), static_cast<int16_t>(col)},
          static_cast<xcvsim::LocalWire>(wire));
      if (src == kInvalidNode) fail("bad source pin");
      current = fabric.createNet(src, name);
      ++netsCreated;
    } else if (cmd == "netpad") {
      std::string name;
      int k;
      if (!(ls >> name >> k) || k < 0 || k >= xcvsim::kGlobalNets) {
        fail("malformed netpad");
      }
      current = fabric.createNet(g.gclkPad(k), name);
      ++netsCreated;
    } else if (cmd == "pip" || cmd == "pipx") {
      if (current == xcvsim::kInvalidNet) fail("pip outside a net");
      int row, col, from, row2, col2, to;
      if (cmd == "pip") {
        if (!(ls >> row >> col >> from >> to)) fail("malformed pip");
        row2 = row;
        col2 = col;
      } else {
        if (!(ls >> row >> col >> from >> row2 >> col2 >> to)) {
          fail("malformed pipx");
        }
      }
      const RowCol rc{static_cast<int16_t>(row), static_cast<int16_t>(col)};
      const NodeId u =
          g.nodeAt(rc, static_cast<xcvsim::LocalWire>(from));
      const NodeId v = g.nodeAt(
          {static_cast<int16_t>(row2), static_cast<int16_t>(col2)},
          static_cast<xcvsim::LocalWire>(to));
      if (u == kInvalidNode || v == kInvalidNode) fail("bad pip wires");
      const EdgeId e = g.findEdge(u, v, rc);
      if (e == xcvsim::kInvalidEdge) fail("no such PIP in the fabric");
      fabric.turnOn(e, current);
    } else if (cmd == "pad") {
      if (current == xcvsim::kInvalidNet) fail("pad outside a net");
      int k;
      if (!(ls >> k)) fail("malformed pad");
      const EdgeId e = g.findEdge(g.gclkPad(k), g.gclkNet(k));
      if (e == xcvsim::kInvalidEdge) fail("bad pad index");
      fabric.turnOn(e, current);
    } else if (cmd == "end") {
      current = xcvsim::kInvalidNet;
    } else {
      fail("unknown directive '" + cmd + "'");
    }
  }
  return netsCreated;
}

}  // namespace jroute
