// BoardScope-equivalent debug views (section 3.5): the paper's trace()
// and reverseTrace() exist so that "debugging tools, such as BoardScope,
// can use this to view each sink" — this module is that consumer, built
// entirely on the public trace API and the fabric timing model.
#pragma once

#include <string>

#include "core/router.h"

namespace jroute {

/// ASCII tile map of routing usage: '.' for idle tiles, digits/'#' scaled
/// by the number of used segments anchored at each tile.
std::string renderUsageMap(const Fabric& fabric);

/// Human-readable dump of the net driven from `source`: every hop with
/// canonical wire names, each sink with its accumulated delay, and the
/// net's skew.
std::string renderNet(const Router& router, const EndPoint& source);

/// One-line-per-net summary of all live nets (name, segments, sinks).
std::string netSummary(const Fabric& fabric);

}  // namespace jroute
