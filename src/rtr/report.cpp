#include "rtr/report.h"

#include <cstdio>

namespace jroute {

using xcvsim::Graph;
using xcvsim::NodeId;
using xcvsim::NodeKind;

UtilizationReport computeUtilization(const xcvsim::Fabric& fabric) {
  const Graph& g = fabric.graph();
  UtilizationReport rep;
  rep.perColumn.assign(static_cast<size_t>(g.device().cols), 0);

  for (NodeId n = 0; n < g.numNodes(); ++n) {
    const auto inf = g.info(n);
    ResourceUsage* bucket = nullptr;
    switch (inf.kind) {
      case NodeKind::SingleH:
      case NodeKind::SingleV: bucket = &rep.singles; break;
      case NodeKind::HexE:
      case NodeKind::HexW:
      case NodeKind::HexN:
      case NodeKind::HexS: bucket = &rep.hexes; break;
      case NodeKind::LongH:
      case NodeKind::LongV: bucket = &rep.longs; break;
      case NodeKind::Logic: bucket = &rep.logic; break;
      case NodeKind::Gclk:
      case NodeKind::GclkPad: bucket = &rep.globals; break;
      case NodeKind::IobIn:
      case NodeKind::IobOut: bucket = &rep.iobs; break;
      case NodeKind::BramOut:
      case NodeKind::BramIn: bucket = &rep.brams; break;
    }
    if (!bucket) continue;
    ++bucket->total;
    if (fabric.isUsed(n)) {
      ++bucket->used;
      const auto pos = g.positionOf(n);
      if (g.device().contains(pos)) {
        ++rep.perColumn[static_cast<size_t>(pos.col)];
      }
    }
  }
  return rep;
}

std::string UtilizationReport::toString() const {
  char buf[128];
  std::string out = "resource utilization\n";
  const auto line = [&](const char* name, const ResourceUsage& u) {
    std::snprintf(buf, sizeof(buf), "  %-8s %8zu / %8zu  (%5.2f%%)\n", name,
                  u.used, u.total, u.percent());
    out += buf;
  };
  line("singles", singles);
  line("hexes", hexes);
  line("longs", longs);
  line("logic", logic);
  line("globals", globals);
  line("iobs", iobs);
  line("brams", brams);
  out += "  per-column:";
  for (size_t c = 0; c < perColumn.size(); ++c) {
    if (c % 8 == 0) out += "\n   ";
    std::snprintf(buf, sizeof(buf), " %5zu", perColumn[c]);
    out += buf;
  }
  out += "\n";
  return out;
}

}  // namespace jroute
