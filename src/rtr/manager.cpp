#include "rtr/manager.h"

#include <algorithm>

#include "common/error.h"

namespace jroute {

void RtrManager::install(RtpCore& core, RowCol origin) {
  core.place(*router_, origin);
  if (std::find(cores_.begin(), cores_.end(), &core) == cores_.end()) {
    cores_.push_back(&core);
  }
}

void RtrManager::remove(RtpCore& core) {
  core.remove(*router_);
  std::erase(cores_, &core);
}

void RtrManager::connect(std::span<Port* const> sources,
                         std::span<Port* const> sinks) {
  if (sources.size() != sinks.size()) {
    throw xcvsim::ArgumentError("connect: port group width mismatch");
  }
  std::vector<EndPoint> src, dst;
  src.reserve(sources.size());
  dst.reserve(sinks.size());
  for (Port* p : sources) src.push_back(EndPoint(*p));
  for (Port* p : sinks) dst.push_back(EndPoint(*p));
  if (connector_) {
    connector_(std::span<const EndPoint>(src),
               std::span<const EndPoint>(dst));
    // The router still remembers the connection for reconfigure/relocate
    // (the connector routed it, so remember without routing again).
    for (size_t i = 0; i < src.size(); ++i) {
      router_->rememberConnection(src[i], dst[i]);
    }
  } else {
    router_->route(std::span<const EndPoint>(src),
                   std::span<const EndPoint>(dst));
  }
}

void RtrManager::connect(const RtpCore& from, std::string_view fromGroup,
                         const RtpCore& to, std::string_view toGroup) {
  const auto src = from.getPorts(fromGroup);
  const auto dst = to.getPorts(toGroup);
  connect(src, dst);
}

void RtrManager::reconnect(RtpCore& core) {
  for (const std::string& g : core.groups()) {
    for (Port* p : core.getPorts(g)) {
      router_->rerouteConnectionsOf(*p);
    }
  }
}

void RtrManager::reconfigure(RtpCore& core) {
  const RowCol origin = core.origin();
  core.remove(*router_);
  core.place(*router_, origin);
  reconnect(core);
}

void RtrManager::relocate(RtpCore& core, RowCol newOrigin) {
  core.remove(*router_);
  core.place(*router_, newOrigin);
  reconnect(core);
}

}  // namespace jroute
