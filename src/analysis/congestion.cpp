#include "analysis/congestion.h"

namespace jrdrc {

using xcvsim::Fabric;
using xcvsim::NodeId;
using xcvsim::RowCol;

jrobs::Heatmap occupancyHeatmap(const Fabric& fabric, int cellRows,
                                int cellCols) {
  if (cellRows <= 0) cellRows = 1;
  if (cellCols <= 0) cellCols = 1;
  const auto& graph = fabric.graph();
  const auto& dev = graph.device();

  jrobs::Heatmap h;
  h.title = "fabric occupancy";
  h.cellRows = cellRows;
  h.cellCols = cellCols;
  h.gridRows = (dev.rows + cellRows - 1) / cellRows;
  h.gridCols = (dev.cols + cellCols - 1) / cellCols;
  h.values.assign(
      static_cast<size_t>(h.gridRows) * static_cast<size_t>(h.gridCols), 0);

  const NodeId numNodes = graph.numNodes();
  for (NodeId n = 0; n < numNodes; ++n) {
    if (!fabric.isUsed(n)) continue;
    const RowCol rc = graph.positionOf(n);
    int r = rc.row, c = rc.col;
    // positionOf clamps to the device for real segments; be defensive
    // about synthetic nodes (globals report tile 0,0 anyway).
    if (r < 0) r = 0;
    if (c < 0) c = 0;
    if (r >= dev.rows) r = dev.rows - 1;
    if (c >= dev.cols) c = dev.cols - 1;
    ++h.values[static_cast<size_t>(r / cellRows) *
                   static_cast<size_t>(h.gridCols) +
               static_cast<size_t>(c / cellCols)];
  }
  return h;
}

}  // namespace jrdrc
