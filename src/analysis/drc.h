// Fabric DRC: a static invariant analyzer for routed designs.
//
// The paper's API makes run-time promises in prose — "a track is never
// driven from both ends" (section 3.4), "unroute leaves no residue"
// (section 3.3) — and the fabric/router/service layers each enforce their
// slice of them inline. This module is the offline counterpart: it takes a
// frozen Fabric (plus, optionally, the router's port-connection memory,
// the service's session-ownership table, and a claim-map probe) and
// verifies the full invariant set after the fact, the way a commercial
// flow leans on static design-rule checking to validate a router's output
// rather than trusting its bookkeeping.
//
// Structure: every rule is a Checker with a stable id, a severity, and a
// one-line description; checkers append Violations (tile coords + wire
// names, so a failure is actionable) to a DrcReport that renders as text
// or JSON. runDrc() executes the registry; enforce() throws on errors and
// is what the JROUTE_DRC_PARANOID mode calls after every transaction
// commit/rollback and after every engine batch, turning the whole test
// suite and bench_service_throughput into a continuous cross-check of the
// concurrent engine against the rules.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/router.h"
#include "fabric/fabric.h"

namespace jrdrc {

using xcvsim::EdgeId;
using xcvsim::Fabric;
using xcvsim::NetId;
using xcvsim::NodeId;
using xcvsim::RowCol;

enum class Severity : uint8_t { kError, kWarning };

const char* severityName(Severity s);

/// One rule failure, anchored to the fabric location that violates it.
struct Violation {
  std::string checker;  // id of the rule that fired
  Severity severity = Severity::kError;
  std::string message;
  NodeId node = xcvsim::kInvalidNode;  // offending segment, if any
  EdgeId edge = xcvsim::kInvalidEdge;  // offending PIP, if any
  NetId net = xcvsim::kInvalidNet;     // net involved, if any
  RowCol tile{};                       // anchor tile of node/edge
  std::string wire;                    // debug name of the anchor wire
};

/// Everything a DRC run may inspect. Only `fabric` is required; the other
/// views widen the rule set when present (the service supplies all of
/// them, the raw-router path supplies fabric + router).
struct DrcInput {
  const Fabric* fabric = nullptr;
  /// Port-connection memory to cross-check against routed state.
  const jroute::Router* router = nullptr;
  /// Session-ownership table: net source node -> owning session id.
  const std::vector<std::pair<NodeId, uint64_t>>* netOwners = nullptr;
  /// Claim-map probe (0 = unclaimed). At engine quiescence every node
  /// must be unclaimed; non-null enables the claim-residue rule.
  std::function<uint32_t(NodeId)> claimOwner;
  /// Decode the configuration frames and cross-check them against the
  /// on-PIP set. O(config size); the paranoid per-txn path disables it
  /// and leaves it to the per-batch pass.
  bool checkBitstream = true;
};

struct DrcReport {
  std::vector<Violation> violations;
  std::vector<std::string> checkersRun;
  size_t nodesScanned = 0;
  size_t edgesScanned = 0;
  size_t netsScanned = 0;

  size_t errorCount() const;
  size_t warningCount() const;
  /// No error-severity violations (warnings do not fail a design).
  bool clean() const { return errorCount() == 0; }
  bool firedChecker(std::string_view id) const;

  /// Human-readable multi-line report.
  std::string summary() const;
  /// Machine-readable single-object JSON.
  std::string json() const;
};

/// One design rule. Checkers are stateless singletons; run() appends any
/// violations it finds to the report.
class Checker {
 public:
  virtual ~Checker() = default;
  virtual const char* id() const = 0;
  virtual Severity severity() const = 0;
  virtual const char* description() const = 0;
  /// Does this rule apply given the views present in `in`?
  virtual bool applicable(const DrcInput& in) const {
    (void)in;
    return true;
  }
  virtual void run(const DrcInput& in, DrcReport& out) const = 0;
};

/// The rule registry, in catalogue order.
const std::vector<const Checker*>& allCheckers();
const Checker* checkerById(std::string_view id);

/// Run every applicable checker over `in`.
DrcReport runDrc(const DrcInput& in);
/// Fabric-only convenience (no router/ownership/claim rules).
DrcReport runDrc(const Fabric& fabric);

/// True when the JROUTE_DRC_PARANOID environment variable is set to a
/// non-empty value other than "0". Read once per process.
bool paranoidEnabled();

/// Run the DRC and throw xcvsim::JRouteError naming `when` if any
/// error-severity violation is found. The paranoid-mode hook.
void enforce(const DrcInput& in, const char* when);

}  // namespace jrdrc
