#include "analysis/drc.h"

#include <cstdlib>
#include <queue>
#include <sstream>
#include <string>

#include "bitstream/decoder.h"
#include "common/error.h"
#include "obs/flightrec.h"
#include "obs/jsonutil.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jrdrc {

using xcvsim::Edge;
using xcvsim::Graph;
using xcvsim::kInvalidEdge;
using xcvsim::kInvalidNet;
using xcvsim::kInvalidNode;

const char* severityName(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

namespace {

/// Build a violation anchored at `node` (preferred) or at `edge`'s target.
Violation violation(const Checker& c, const Graph& g, std::string message,
                    NodeId node = kInvalidNode, EdgeId edge = kInvalidEdge,
                    NetId net = kInvalidNet) {
  Violation v;
  v.checker = c.id();
  v.severity = c.severity();
  v.message = std::move(message);
  v.node = node;
  v.edge = edge;
  v.net = net;
  NodeId anchor = node;
  if (anchor == kInvalidNode && edge != kInvalidEdge) {
    anchor = g.edge(edge).to;
  }
  if (anchor != kInvalidNode) {
    v.tile = g.info(anchor).tile;
    v.wire = g.nodeName(anchor);
  }
  return v;
}

/// Rule 1 — the paper's section 3.4 guarantee, checked structurally: no
/// segment has more than one ON incoming PIP, and the fabric's recorded
/// driver agrees with the ON in-edge set (net sources have none).
class DoubleDriveChecker final : public Checker {
 public:
  const char* id() const override { return "double-drive"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "no bidirectional track is driven from both ends; recorded "
           "drivers match the on-PIP set";
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      int drivers = 0;
      EdgeId firstOn = kInvalidEdge;
      for (const EdgeId e : g.in(n)) {
        if (!f.edgeOn(e)) continue;
        ++drivers;
        if (firstOn == kInvalidEdge) {
          firstOn = e;
        } else {
          out.violations.push_back(violation(
              *this, g,
              "segment has " + std::to_string(drivers) +
                  " simultaneous drivers (bidirectional contention)",
              n, e, f.netOf(n)));
        }
      }
      const EdgeId rec = f.driverOf(n);
      if (rec != kInvalidEdge && (!f.edgeOn(rec) || g.edge(rec).to != n)) {
        out.violations.push_back(violation(
            *this, g, "recorded driver is not an on-PIP into this segment",
            n, rec, f.netOf(n)));
      } else if (drivers == 1 && rec != firstOn) {
        out.violations.push_back(violation(
            *this, g, "recorded driver disagrees with the on in-PIP", n,
            firstOn, f.netOf(n)));
      } else if (drivers == 0 && rec != kInvalidEdge) {
        out.violations.push_back(violation(
            *this, g, "segment records a driver but no in-PIP is on", n,
            rec, f.netOf(n)));
      }
      if (f.isUsed(n) && f.netExists(f.netOf(n)) &&
          f.netSource(f.netOf(n)) == n && rec != kInvalidEdge) {
        out.violations.push_back(violation(
            *this, g, "net source segment must never acquire a driver", n,
            rec, f.netOf(n)));
      }
    }
  }
};

/// Rule 2 — every live net's PIP set forms a tree reachable from its
/// source endpoint: BFS over on-edges from the source must visit exactly
/// the net's claimed segments, all tagged with the net's id.
class NetTreeChecker final : public Checker {
 public:
  const char* id() const override { return "net-tree"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "every net is a tree of on-PIPs reachable from its source";
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    for (NetId id = 0; id < f.netCount(); ++id) {
      if (!f.netExists(id)) continue;
      const NodeId src = f.netSource(id);
      if (f.netOf(src) != id) {
        out.violations.push_back(violation(
            *this, g, "net source segment is not claimed by its net", src,
            kInvalidEdge, id));
        continue;
      }
      std::vector<uint8_t> seen(g.numNodes(), 0);
      std::queue<NodeId> q;
      q.push(src);
      seen[src] = 1;
      size_t visited = 0;
      while (!q.empty()) {
        const NodeId n = q.front();
        q.pop();
        ++visited;
        if (f.netOf(n) != id) {
          out.violations.push_back(violation(
              *this, g,
              "segment reachable from net '" + f.netName(id) +
                  "' is claimed by a different net",
              n, kInvalidEdge, id));
        }
        for (const Edge& ed : g.out(n)) {
          const EdgeId eid = g.edgeIdOf(n, ed);
          if (f.edgeOn(eid) && !seen[ed.to]) {
            seen[ed.to] = 1;
            q.push(ed.to);
          }
        }
      }
      if (visited != f.netSize(id)) {
        out.violations.push_back(violation(
            *this, g,
            "net '" + f.netName(id) + "' claims " +
                std::to_string(f.netSize(id)) + " segments but only " +
                std::to_string(visited) + " are reachable from its source",
            src, kInvalidEdge, id));
      }
    }
  }
};

/// Rule 3 — no antenna/stub wires: an ON PIP whose endpoints are not both
/// claimed by one live net is a switch the net database cannot see —
/// exactly the kind of silent residue a buggy unroute or rollback leaves.
class AntennaChecker final : public Checker {
 public:
  const char* id() const override { return "antenna"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "no on-PIP hangs outside the net database (antenna/stub wires)";
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      if (!f.edgeOn(e)) continue;
      const NodeId u = g.edgeSource(e);
      const NodeId v = g.edge(e).to;
      if (!f.isUsed(u) || !f.isUsed(v)) {
        out.violations.push_back(violation(
            *this, g, "on-PIP touches a segment no net claims (antenna)",
            f.isUsed(u) ? v : u, e));
      } else if (f.netOf(u) != f.netOf(v)) {
        out.violations.push_back(violation(
            *this, g, "on-PIP crosses from one net into another", v, e,
            f.netOf(u)));
      } else if (!f.netExists(f.netOf(u))) {
        out.violations.push_back(violation(
            *this, g, "on-PIP belongs to a dead net (unroute residue)", u,
            e, f.netOf(u)));
      }
    }
  }
};

/// Rule 4 — no orphaned claims: a segment marked in-use must be its net's
/// source, be driven, or drive something; and its net must be live. A
/// claimed-but-idle segment is residue from an incomplete unroute or
/// rollback.
class OrphanNodeChecker final : public Checker {
 public:
  const char* id() const override { return "orphan-node"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "unroute/rollback leaves no idle claimed segments behind";
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      if (!f.isUsed(n)) continue;
      const NetId net = f.netOf(n);
      if (!f.netExists(net)) {
        out.violations.push_back(violation(
            *this, g, "segment claimed by a dead net", n, kInvalidEdge,
            net));
        continue;
      }
      if (f.netSource(net) == n) continue;  // sources persist by design
      if (f.driverOf(n) == kInvalidEdge && f.onOutCount(n) == 0) {
        out.violations.push_back(violation(
            *this, g,
            "claimed segment has neither driver nor on out-PIPs (orphan)",
            n, kInvalidEdge, net));
      }
    }
  }
};

/// Rule 5 — the fabric's O(1) counters (used nodes, on edges, per-node
/// fanout, per-net size, live nets) must match a full recount.
class CounterChecker final : public Checker {
 public:
  const char* id() const override { return "counters"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "cached usage counters match a full recount";
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    size_t used = 0, on = 0, live = 0;
    std::vector<size_t> perNet(f.netCount(), 0);
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      if (f.isUsed(n)) {
        ++used;
        if (f.netOf(n) < perNet.size()) ++perNet[f.netOf(n)];
      }
      int outCount = 0;
      for (const Edge& ed : g.out(n)) {
        if (f.edgeOn(g.edgeIdOf(n, ed))) {
          ++outCount;
          ++on;
        }
      }
      if (outCount != f.onOutCount(n)) {
        out.violations.push_back(violation(
            *this, g,
            "fanout counter says " + std::to_string(f.onOutCount(n)) +
                " but " + std::to_string(outCount) + " out-PIPs are on",
            n, kInvalidEdge, f.netOf(n)));
      }
    }
    for (NetId id = 0; id < f.netCount(); ++id) {
      if (!f.netExists(id)) continue;
      ++live;
      if (perNet[id] != f.netSize(id)) {
        out.violations.push_back(violation(
            *this, g,
            "net '" + f.netName(id) + "' size counter says " +
                std::to_string(f.netSize(id)) + " but " +
                std::to_string(perNet[id]) + " segments carry its id",
            f.netSource(id), kInvalidEdge, id));
      }
    }
    if (used != f.usedNodeCount()) {
      out.violations.push_back(violation(
          *this, g,
          "used-node counter says " + std::to_string(f.usedNodeCount()) +
              " but " + std::to_string(used) + " segments are claimed"));
    }
    if (on != f.onEdgeCount()) {
      out.violations.push_back(violation(
          *this, g,
          "on-edge counter says " + std::to_string(f.onEdgeCount()) +
              " but " + std::to_string(on) + " PIPs are on"));
    }
    if (live != f.liveNetCount()) {
      out.violations.push_back(violation(
          *this, g,
          "live-net counter says " + std::to_string(f.liveNetCount()) +
              " but " + std::to_string(live) + " nets exist"));
    }
  }
};

/// Rule 6 — the configuration frames decode back to exactly the on-PIP
/// set: the bitstream always reflects the fabric (write-through fidelity).
class BitstreamChecker final : public Checker {
 public:
  const char* id() const override { return "bitstream"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "decoded configuration frames equal the fabric's on-PIP set";
  }
  bool applicable(const DrcInput& in) const override {
    return in.checkBitstream;
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    const auto pips = xcvsim::decodePips(f.jbits().bitstream());
    if (pips.size() != f.onEdgeCount()) {
      out.violations.push_back(violation(
          *this, g,
          "bitstream encodes " + std::to_string(pips.size()) +
              " PIPs but the fabric has " +
              std::to_string(f.onEdgeCount()) + " on"));
    }
    for (const auto& d : pips) {
      if (d.key.kind == xcvsim::PipKeyKind::GlobalPad) continue;
      NodeId u = kInvalidNode, v = kInvalidNode;
      if (d.key.kind == xcvsim::PipKeyKind::TilePip) {
        u = g.nodeAt(d.tile, d.key.from);
        v = g.nodeAt(d.tile, d.key.to);
      } else {
        const int dc = d.key.kind == xcvsim::PipKeyKind::DirectE ? 1 : -1;
        u = g.nodeAt(d.tile, d.key.from);
        v = g.nodeAt({d.tile.row, static_cast<int16_t>(d.tile.col + dc)},
                     d.key.to);
      }
      const EdgeId e = (u == kInvalidNode || v == kInvalidNode)
                           ? kInvalidEdge
                           : g.findEdge(u, v, d.tile);
      if (e == kInvalidEdge) {
        Violation viol = violation(
            *this, g, "bitstream enables a PIP no graph edge describes", u);
        viol.tile = d.tile;
        out.violations.push_back(std::move(viol));
      } else if (!f.edgeOn(e)) {
        out.violations.push_back(violation(
            *this, g,
            "bitstream enables a PIP the fabric believes is off", v, e,
            f.netOf(u)));
      }
    }
  }
};

/// Rule 7 — claim-map residue must be zero at engine quiescence: claims
/// are planning-time scaffolding, released after commit or abandonment.
class ClaimResidueChecker final : public Checker {
 public:
  const char* id() const override { return "claim-residue"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "no planning claims survive engine quiescence";
  }
  bool applicable(const DrcInput& in) const override {
    return static_cast<bool>(in.claimOwner);
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      const uint32_t owner = in.claimOwner(n);
      if (owner != 0) {
        out.violations.push_back(violation(
            *this, g,
            "segment still claimed by planner owner " +
                std::to_string(owner) + " after quiescence",
            n, kInvalidEdge, f.netOf(n)));
      }
    }
  }
};

/// Rule 8 — the session-ownership table must agree with the net database:
/// every entry names the source segment of a live net.
class SessionOwnershipChecker final : public Checker {
 public:
  const char* id() const override { return "session-ownership"; }
  Severity severity() const override { return Severity::kError; }
  const char* description() const override {
    return "session ownership entries name live net sources";
  }
  bool applicable(const DrcInput& in) const override {
    return in.netOwners != nullptr;
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    for (const auto& [src, session] : *in.netOwners) {
      if (src >= g.numNodes() || !f.isUsed(src)) {
        out.violations.push_back(violation(
            *this, g,
            "session " + std::to_string(session) +
                " owns a net whose source segment is not in use",
            src < g.numNodes() ? src : kInvalidNode));
        continue;
      }
      const NetId net = f.netOf(src);
      if (!f.netExists(net) || f.netSource(net) != src) {
        out.violations.push_back(violation(
            *this, g,
            "session " + std::to_string(session) +
                " ownership entry does not name a live net's source",
            src, kInvalidEdge, net));
      }
    }
  }
};

/// Rule 9 — the router's port-connection memory should describe routes
/// that exist: a remembered connection whose source is not routed is
/// either rollback residue (a bug; see RouteTxn's connection journal) or
/// a stale entry after a manual unroute (legitimate, hence a warning).
class ConnectionMemoryChecker final : public Checker {
 public:
  const char* id() const override { return "connection-memory"; }
  Severity severity() const override { return Severity::kWarning; }
  const char* description() const override {
    return "remembered port connections correspond to routed sources";
  }
  bool applicable(const DrcInput& in) const override {
    return in.router != nullptr;
  }
  void run(const DrcInput& in, DrcReport& out) const override {
    const Fabric& f = *in.fabric;
    const Graph& g = f.graph();
    for (const auto& conn : in.router->connections()) {
      const auto pins = conn.source.resolve();
      if (pins.empty()) {
        out.violations.push_back(violation(
            *this, g,
            "remembered connection's source port has no bound pins"));
        continue;
      }
      const NodeId n = g.nodeAt(pins.front().rc, pins.front().wire);
      if (n == kInvalidNode || !f.isUsed(n)) {
        Violation v = violation(
            *this, g,
            "remembered connection's source is not routed (stale entry "
            "or rollback residue)",
            n);
        if (n == kInvalidNode) v.tile = pins.front().rc;
        out.violations.push_back(std::move(v));
      }
    }
  }
};

}  // namespace

const std::vector<const Checker*>& allCheckers() {
  static const DoubleDriveChecker doubleDrive;
  static const NetTreeChecker netTree;
  static const AntennaChecker antenna;
  static const OrphanNodeChecker orphanNode;
  static const CounterChecker counters;
  static const BitstreamChecker bitstream;
  static const ClaimResidueChecker claimResidue;
  static const SessionOwnershipChecker sessionOwnership;
  static const ConnectionMemoryChecker connectionMemory;
  static const std::vector<const Checker*> registry{
      &doubleDrive,   &netTree,      &antenna,
      &orphanNode,    &counters,     &bitstream,
      &claimResidue,  &sessionOwnership, &connectionMemory};
  return registry;
}

const Checker* checkerById(std::string_view id) {
  for (const Checker* c : allCheckers()) {
    if (id == c->id()) return c;
  }
  return nullptr;
}

DrcReport runDrc(const DrcInput& in) {
  if (in.fabric == nullptr) {
    throw xcvsim::ArgumentError("runDrc: no fabric to analyze");
  }
  JR_TRACE_SCOPE("drc", "run");
  jrobs::registry().counter("drc.runs").add();
  DrcReport report;
  const Graph& g = in.fabric->graph();
  report.nodesScanned = g.numNodes();
  report.edgesScanned = g.numEdges();
  report.netsScanned = in.fabric->liveNetCount();
  for (const Checker* c : allCheckers()) {
    if (!c->applicable(in)) continue;
    report.checkersRun.push_back(c->id());
    const size_t before = report.violations.size();
    const uint64_t t0 = jrobs::Tracer::instance().nowNs();
    c->run(in, report);
    const uint64_t t1 = jrobs::Tracer::instance().nowNs();
    const std::string rule = std::string("drc.rule.") + c->id();
    jrobs::registry().histogram(rule + ".runtime_us").record((t1 - t0) / 1000);
    jrobs::registry()
        .counter(rule + ".violations")
        .add(report.violations.size() - before);
  }
  return report;
}

DrcReport runDrc(const Fabric& fabric) {
  DrcInput in;
  in.fabric = &fabric;
  return runDrc(in);
}

size_t DrcReport::errorCount() const {
  size_t n = 0;
  for (const Violation& v : violations) {
    if (v.severity == Severity::kError) ++n;
  }
  return n;
}

size_t DrcReport::warningCount() const {
  return violations.size() - errorCount();
}

bool DrcReport::firedChecker(std::string_view id) const {
  for (const Violation& v : violations) {
    if (v.checker == id) return true;
  }
  return false;
}

std::string DrcReport::summary() const {
  std::ostringstream os;
  os << "DRC: " << checkersRun.size() << " rules over " << netsScanned
     << " nets, " << nodesScanned << " wires, " << edgesScanned
     << " PIPs: ";
  if (violations.empty()) {
    os << "clean\n";
    return os.str();
  }
  os << errorCount() << " error(s), " << warningCount() << " warning(s)\n";
  for (const Violation& v : violations) {
    os << "  [" << severityName(v.severity) << "] " << v.checker << " @ R"
       << v.tile.row << "C" << v.tile.col;
    if (!v.wire.empty()) os << " " << v.wire;
    os << ": " << v.message << "\n";
  }
  return os.str();
}

namespace {

// Shared RFC 8259 escaping from the obs layer; this wrapper only adds the
// surrounding quotes that DrcReport's hand-rolled emitter expects.
void jsonEscape(std::ostringstream& os, const std::string& s) {
  os << '"' << jrobs::jsonEscape(s) << '"';
}

}  // namespace

std::string DrcReport::json() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false")
     << ",\"errors\":" << errorCount()
     << ",\"warnings\":" << warningCount() << ",\"scanned\":{\"nets\":"
     << netsScanned << ",\"nodes\":" << nodesScanned
     << ",\"edges\":" << edgesScanned << "},\"checkers\":[";
  for (size_t i = 0; i < checkersRun.size(); ++i) {
    if (i > 0) os << ',';
    jsonEscape(os, checkersRun[i]);
  }
  os << "],\"violations\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    const Violation& v = violations[i];
    if (i > 0) os << ',';
    os << "{\"checker\":";
    jsonEscape(os, v.checker);
    os << ",\"severity\":\"" << severityName(v.severity) << "\",\"tile\":["
       << v.tile.row << ',' << v.tile.col << ']';
    if (v.node != kInvalidNode) os << ",\"node\":" << v.node;
    if (v.edge != kInvalidEdge) os << ",\"edge\":" << v.edge;
    if (v.net != kInvalidNet) os << ",\"net\":" << v.net;
    if (!v.wire.empty()) {
      os << ",\"wire\":";
      jsonEscape(os, v.wire);
    }
    os << ",\"message\":";
    jsonEscape(os, v.message);
    os << '}';
  }
  os << "]}";
  return os.str();
}

bool paranoidEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("JROUTE_DRC_PARANOID");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return enabled;
}

void enforce(const DrcInput& in, const char* when) {
  const DrcReport report = runDrc(in);
  if (report.clean()) return;
  // Dump the post-mortem bundle before throwing: a paranoid-DRC violation
  // escaping the engine thread terminates the process, so this is the last
  // chance to capture the report, recent events, and a metrics snapshot.
  jrobs::flightRecorder().anomaly("drc",
                                  "DRC failed after " + std::string(when),
                                  "{\"drc\":" + report.json() + "}");
  throw xcvsim::JRouteError("DRC failed after " + std::string(when) + ":\n" +
                            report.summary());
}

}  // namespace jrdrc
