// Fabric occupancy heatmaps: where is the routed design dense?
//
// The claim-conflict grid (obs/heatmap.h) shows where parallel planning
// *fought*; this module shows where the committed design *lives*. It
// walks a frozen Fabric, maps every in-use segment to its representative
// tile (Graph::positionOf — segment midpoint, same heuristic the maze
// cost function uses), and buckets the counts into a Heatmap. Long lines
// and globals thus count once, at their midpoint, rather than smearing
// across their whole span — the map answers "which switch-box regions
// are crowded", not "how many tiles can see a wire".
//
// Not telemetry: this is an offline analysis over fabric state, like the
// DRC, so it works identically with JROUTE_NO_TELEMETRY. jrsh `heatmap`
// renders it; RoutingService::snapshotMetrics() publishes per-region
// occupancy gauges from it (those gauges ARE telemetry and vanish in the
// stub build).
#pragma once

#include "fabric/fabric.h"
#include "obs/heatmap.h"

namespace jrdrc {

/// Per-region count of in-use RRG nodes, cells of cellRows x cellCols
/// tiles. Deterministic for a given fabric state.
jrobs::Heatmap occupancyHeatmap(const xcvsim::Fabric& fabric,
                                int cellRows = 4, int cellCols = 4);

}  // namespace jrdrc
