#include "baseline/pathfinder.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/error.h"
#include "fabric/timing.h"

namespace baseline {

using xcvsim::Edge;
using xcvsim::kInvalidEdge;
using xcvsim::kPipDelayPs;
using xcvsim::RowCol;

PathFinderRouter::PathFinderRouter(const Graph& graph) : graph_(&graph) {
  occupancy_.assign(graph.numNodes(), 0);
  history_.assign(graph.numNodes(), 0.0f);
  epochSeen_.assign(graph.numNodes(), 0);
  gCost_.assign(graph.numNodes(), 0.0);
  parent_.assign(graph.numNodes(), kInvalidEdge);
  closed_.assign(graph.numNodes(), 0);
}

double PathFinderRouter::nodeCost(NodeId n, double presentFactor) const {
  const double base = static_cast<double>(graph_->nodeDelay(n) + kPipDelayPs);
  const double hist = 1.0 + history_[n];
  const double present =
      1.0 + presentFactor * static_cast<double>(occupancy_[n]);
  return base * hist * present;
}

bool PathFinderRouter::routeSink(const std::vector<NodeId>& treeNodes,
                                 NodeId goal, const PathFinderOptions& opts,
                                 std::vector<EdgeId>& out, size_t& visits) {
  const Graph& g = *graph_;
  ++epoch_;
  const RowCol goalPos = g.positionOf(goal);
  const auto h = [&](NodeId n) {
    // Weak admissible heuristic in delay units (long lines ~13 ps/tile).
    return 13.0 * manhattan(g.positionOf(n), goalPos);
  };
  using QItem = std::pair<double, NodeId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> open;
  for (NodeId s : treeNodes) {
    if (s == goal) return true;
    epochSeen_[s] = epoch_;
    gCost_[s] = 0.0;
    parent_[s] = kInvalidEdge;
    closed_[s] = 0;
    open.emplace(h(s), s);
  }
  size_t local = 0;
  while (!open.empty()) {
    const auto [f, n] = open.top();
    open.pop();
    if (closed_[n] && epochSeen_[n] == epoch_) continue;
    closed_[n] = 1;
    ++local;
    ++visits;
    if (n == goal) {
      NodeId cur = goal;
      while (parent_[cur] != kInvalidEdge) {
        out.push_back(parent_[cur]);
        cur = g.edgeSource(parent_[cur]);
      }
      std::reverse(out.begin(), out.end());
      return true;
    }
    if (local > opts.maxVisitsPerSink) return false;
    for (const Edge& ed : g.out(n)) {
      const NodeId v = ed.to;
      const double ng = gCost_[n] + nodeCost(v, presentFactor_);
      if (epochSeen_[v] == epoch_ && gCost_[v] <= ng) continue;
      epochSeen_[v] = epoch_;
      gCost_[v] = ng;
      closed_[v] = 0;
      parent_[v] = static_cast<EdgeId>(&ed - &g.edge(0));
      open.emplace(ng + h(v), v);
    }
  }
  return false;
}

PathFinderResult PathFinderRouter::routeAll(std::span<const PfNet> nets,
                                            const PathFinderOptions& opts) {
  const Graph& g = *graph_;
  PathFinderResult result;
  trees_.assign(nets.size(), {});
  std::fill(occupancy_.begin(), occupancy_.end(), 0);
  std::fill(history_.begin(), history_.end(), 0.0f);
  presentFactor_ = opts.presentFactor;

  // Sources count as permanently occupied by their own net.
  std::vector<std::vector<NodeId>> netNodes(nets.size());

  for (int iter = 1; iter <= opts.maxIterations; ++iter) {
    result.iterations = iter;
    for (size_t i = 0; i < nets.size(); ++i) {
      // Rip up this net (negotiated congestion re-routes every net each
      // iteration under the current cost landscape).
      for (NodeId n : netNodes[i]) --occupancy_[n];
      netNodes[i].clear();
      trees_[i].clear();

      std::vector<NodeId> treeNodes{nets[i].source};
      // Nearest sink first, as the JRoute fanout router does.
      std::vector<NodeId> sinks(nets[i].sinks.begin(), nets[i].sinks.end());
      const RowCol srcPos = g.positionOf(nets[i].source);
      std::stable_sort(sinks.begin(), sinks.end(), [&](NodeId a, NodeId b) {
        return manhattan(g.positionOf(a), srcPos) <
               manhattan(g.positionOf(b), srcPos);
      });
      for (NodeId sink : sinks) {
        std::vector<EdgeId> chain;
        if (!routeSink(treeNodes, sink, opts, chain, result.totalVisits)) {
          // Under negotiated congestion a sink is only unreachable when
          // the graph truly has no path: report failure.
          result.success = false;
          return result;
        }
        for (EdgeId e : chain) treeNodes.push_back(g.edge(e).to);
        trees_[i].insert(trees_[i].end(), chain.begin(), chain.end());
      }

      // Deduplicate tree nodes (branches share prefixes).
      std::unordered_set<NodeId> uniq(treeNodes.begin(), treeNodes.end());
      netNodes[i].assign(uniq.begin(), uniq.end());
      for (NodeId n : netNodes[i]) ++occupancy_[n];
    }

    // Count overuse and raise history costs on shared nodes.
    size_t overused = 0;
    for (NodeId n = 0; n < g.numNodes(); ++n) {
      if (occupancy_[n] > 1) {
        ++overused;
        history_[n] += static_cast<float>(opts.historyIncrement);
      }
    }
    result.overusedNodes = overused;
    if (overused == 0) {
      result.success = true;
      break;
    }
    presentFactor_ *= opts.presentGrowth;
  }

  if (result.success) {
    for (size_t i = 0; i < nets.size(); ++i) {
      result.wirelength += netNodes[i].size();
      // Per-net max sink delay: accumulate along each tree path.
      // (Approximate: sum of node delays over the tree's longest chain is
      // expensive to recover here; use the tree size-weighted delay.)
      for (NodeId n : netNodes[i]) {
        result.totalDelay += g.nodeDelay(n) + kPipDelayPs;
      }
    }
  }
  return result;
}

}  // namespace baseline
