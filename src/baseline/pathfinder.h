// PathFinder-style negotiated-congestion router — the "traditional"
// quality-driven batch router JRoute positions itself against:
//
//   "In an RTR environment traditional routing algorithms require too much
//    time. ... Also, in an RTR environment, global routing followed by
//    detailed routing would not be efficient." (section 3.1)
//
// This is the standard iterative rip-up-and-reroute scheme (Ebeling/
// McMurchie, as used by VPR and the routability-driven router of the
// paper's reference [6]): all nets are routed allowing overuse, then
// present- and history-congestion costs are raised until no wire is
// shared. It produces better wirelength than the greedy JRoute algorithms
// but pays for it with multiple whole-design iterations — exactly the
// trade-off experiment E6 measures.
#pragma once

#include <span>
#include <vector>

#include "rrg/graph.h"

namespace baseline {

using xcvsim::DelayPs;
using xcvsim::EdgeId;
using xcvsim::Graph;
using xcvsim::NodeId;

/// One net to route: a source and its sinks (already resolved to nodes).
struct PfNet {
  NodeId source = xcvsim::kInvalidNode;
  std::vector<NodeId> sinks;
};

struct PathFinderOptions {
  int maxIterations = 40;
  /// Present-congestion penalty factor, multiplied each iteration.
  double presentFactor = 0.6;
  double presentGrowth = 1.5;
  /// History increment for overused nodes after each iteration.
  double historyIncrement = 0.4;
  /// Node-visit budget per sink search.
  size_t maxVisitsPerSink = 4000000;
};

struct PathFinderResult {
  bool success = false;
  int iterations = 0;
  size_t overusedNodes = 0;   // remaining shared nodes (0 on success)
  size_t wirelength = 0;      // total segments used across all nets
  DelayPs totalDelay = 0;     // sum of per-net max sink delays
  size_t totalVisits = 0;     // search effort across all iterations
};

class PathFinderRouter {
 public:
  explicit PathFinderRouter(const Graph& graph);

  /// Route all nets to mutual congestion-freedom. The router owns its own
  /// occupancy state (it is a batch compile-time tool, not a fabric
  /// editor); use netEdges() to inspect or commit the final trees.
  PathFinderResult routeAll(std::span<const PfNet> nets,
                            const PathFinderOptions& opts = {});

  /// Final tree of net i (edge ids), valid after routeAll.
  const std::vector<EdgeId>& netEdges(size_t i) const { return trees_[i]; }

 private:
  /// A* for one sink from the net's current tree under congestion costs.
  bool routeSink(const std::vector<NodeId>& treeNodes, NodeId goal,
                 const PathFinderOptions& opts, std::vector<EdgeId>& out,
                 size_t& visits);
  double nodeCost(NodeId n, double presentFactor) const;

  const Graph* graph_;
  std::vector<uint16_t> occupancy_;
  std::vector<float> history_;
  double presentFactor_ = 0;
  std::vector<std::vector<EdgeId>> trees_;

  // A* scratch.
  std::vector<uint32_t> epochSeen_;
  std::vector<double> gCost_;
  std::vector<EdgeId> parent_;
  std::vector<uint8_t> closed_;
  uint32_t epoch_ = 0;
};

}  // namespace baseline
