// Tests for jrplan: the claim-footprint over-approximation property on
// two device sizes, no-conflict certificates (wave disjointness,
// determinism), the certified service path (arbitration skipped, paranoid
// cross-check, equivalence with the arbitrated engine), the sharded
// claim map (pure permutation of the flat layout), and the workload
// linter with a mutation harness proving every rule and extractor hook
// live.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/wires.h"
#include "json_validator.h"
#include "plan/certificate.h"
#include "plan/footprint.h"
#include "plan/lint.h"
#include "plan/lint_script.h"
#include "service/claim_map.h"
#include "service/service.h"

namespace jrplan {
namespace {

using jroute::EndPoint;
using jroute::Pin;
using jroute::Router;
using xcvsim::clbIn;
using xcvsim::Fabric;
using xcvsim::Graph;
using xcvsim::NodeId;
using xcvsim::PipTable;
using xcvsim::RowCol;
using xcvsim::S0_YQ;
using xcvsim::S1_YQ;
using xcvsim::TemplateValue;

/// Graph + pip table per device, built once per process (the XCV1000
/// model is expensive enough that per-test construction would dominate).
struct Kit {
  const Graph& graph;
  const PipTable& table;
};

const Kit& kitFor(const std::string& device) {
  if (device == "XCV50") {
    static Graph g{xcvsim::xcv50()};
    static PipTable t{xcvsim::ArchDb{xcvsim::xcv50()}};
    static Kit k{g, t};
    return k;
  }
  if (device == "XCV300") {
    static Graph g{xcvsim::xcv300()};
    static PipTable t{xcvsim::ArchDb{xcvsim::xcv300()}};
    static Kit k{g, t};
    return k;
  }
  static Graph g{xcvsim::xcv1000()};
  static PipTable t{xcvsim::ArchDb{xcvsim::xcv1000()}};
  static Kit k{g, t};
  return k;
}

/// Every node the net driven from `src` occupies, source included.
std::vector<NodeId> netNodes(const Router& router, const Graph& g, Pin src) {
  std::vector<NodeId> nodes{g.nodeAt(src.rc, src.wire)};
  for (const xcvsim::TraceHop& hop : router.trace(EndPoint(src)).hops) {
    nodes.push_back(hop.to);
  }
  return nodes;
}

/// The over-approximation property: every node the route actually
/// occupies must fall inside the statically extracted footprint.
void expectContained(const Graph& g, const Footprint& fp,
                     const std::vector<NodeId>& nodes, const char* what) {
  ASSERT_TRUE(fp.sound()) << what;
  for (NodeId n : nodes) {
    EXPECT_TRUE(fp.allowsNode(g, n))
        << what << ": node " << n << " at (" << g.positionOf(n).row << ","
        << g.positionOf(n).col << ") escaped the footprint";
  }
}

// --- RegionGrid / Footprint mechanics -------------------------------------------

TEST(PlanFootprintTest, GridCellsPartitionTiles) {
  const RegionGrid grid(16, 24);
  // Tiles of one 4x4 block share a cell; crossing the pitch changes it.
  EXPECT_EQ(grid.cellOf(RowCol{0, 0}), grid.cellOf(RowCol{3, 3}));
  EXPECT_NE(grid.cellOf(RowCol{3, 3}), grid.cellOf(RowCol{4, 3}));
  EXPECT_NE(grid.cellOf(RowCol{3, 3}), grid.cellOf(RowCol{3, 4}));
  // Out-of-device tiles clamp instead of indexing out of range.
  EXPECT_EQ(grid.cellOf(RowCol{-5, -5}), grid.cellOf(RowCol{0, 0}));
  EXPECT_EQ(grid.cellOf(RowCol{100, 100}), grid.cellOf(RowCol{15, 23}));
  EXPECT_EQ(grid.numCells(), 4 * 6);
}

TEST(PlanFootprintTest, TileRectCoversEveryCellInTheRectangle) {
  const RegionGrid grid(16, 24);
  Footprint fp(grid);
  fp.addTileRect(RowCol{2, 2}, RowCol{9, 13});
  for (int r = 2; r <= 9; ++r) {
    for (int c = 2; c <= 13; ++c) {
      EXPECT_TRUE(
          fp.containsTile(RowCol{static_cast<int16_t>(r),
                                 static_cast<int16_t>(c)}))
          << r << "," << c;
    }
  }
  // A tile whose cell lies wholly outside the rectangle stays out.
  EXPECT_FALSE(fp.containsTile(RowCol{14, 20}));
}

TEST(PlanFootprintTest, UniteAndIntersectSemantics) {
  const RegionGrid grid(16, 24);
  Footprint a(grid), b(grid), c(grid);
  a.addTile(RowCol{2, 2});
  b.addTile(RowCol{2, 3});   // same 4x4 cell as (2,2)
  c.addTile(RowCol{12, 20});
  EXPECT_TRUE(a.intersects(b));
  EXPECT_TRUE(b.intersects(a));
  EXPECT_FALSE(a.intersects(c));

  // unite() is a union of cells and an AND of soundness.
  c.markUnsound();
  a.unite(c);
  EXPECT_TRUE(a.containsTile(RowCol{12, 20}));
  EXPECT_FALSE(a.sound());
  EXPECT_EQ(a.cellCount(), 2u);
}

// --- Over-approximation property on both device sizes ---------------------------

class PlanFootprintDeviceTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(PlanFootprintDeviceTest, RoutedWiresStayInsideExtractedFootprints) {
  const Kit& kit = kitFor(GetParam());
  const Graph& g = kit.graph;
  Fabric fabric(g, kit.table);
  Router router(fabric);
  const FootprintExtractor fx(g, fabric);
  const int rows = g.device().rows;
  const int cols = g.device().cols;

  // p2p, short and device-diagonal (the long route exercises hexes and
  // long lines on the XCV1000).
  const Pin shortSrc(3, 3, S1_YQ);
  const Pin shortSink(4, 5, clbIn(2));
  const RouteSpec shortSpec{SpecOp::kP2P, {shortSrc}, {shortSink}};
  const Footprint shortFp = fx.extract(shortSpec);
  router.route(EndPoint(shortSrc), EndPoint(shortSink));
  expectContained(g, shortFp, netNodes(router, g, shortSrc), "p2p short");

  const Pin farSrc(2, 2, S0_YQ);
  const Pin farSink(static_cast<int16_t>(rows - 3),
                    static_cast<int16_t>(cols - 3), clbIn(1));
  const RouteSpec farSpec{SpecOp::kP2P, {farSrc}, {farSink}};
  const Footprint farFp = fx.extract(farSpec);
  router.route(EndPoint(farSrc), EndPoint(farSink));
  expectContained(g, farFp, netNodes(router, g, farSrc), "p2p far");

  // fanout: one source, three sinks fanned across the middle rows.
  const Pin fanSrc(static_cast<int16_t>(rows / 2), 4, S1_YQ);
  const std::vector<Pin> fanSinks{
      Pin(static_cast<int16_t>(rows / 2 - 2), 8, clbIn(0)),
      Pin(static_cast<int16_t>(rows / 2), 10, clbIn(1)),
      Pin(static_cast<int16_t>(rows / 2 + 3), 7, clbIn(2))};
  const RouteSpec fanSpec{SpecOp::kFanout, {fanSrc}, fanSinks};
  const Footprint fanFp = fx.extract(fanSpec);
  std::vector<EndPoint> fanEps;
  for (const Pin& p : fanSinks) fanEps.emplace_back(p);
  router.route(EndPoint(fanSrc), std::span<const EndPoint>(fanEps));
  expectContained(g, fanFp, netNodes(router, g, fanSrc), "fanout");

  // bus: four bits, one row each.
  RouteSpec busSpec{SpecOp::kBus, {}, {}};
  std::vector<EndPoint> busSrcs, busSinks;
  for (int i = 0; i < 4; ++i) {
    const Pin s(static_cast<int16_t>(6 + i), static_cast<int16_t>(cols / 2),
                S1_YQ);
    const Pin k(static_cast<int16_t>(6 + i),
                static_cast<int16_t>(cols / 2 + 5), clbIn(2));
    busSpec.srcs.push_back(s);
    busSpec.sinks.push_back(k);
    busSrcs.emplace_back(s);
    busSinks.emplace_back(k);
  }
  const Footprint busFp = fx.extract(busSpec);
  router.route(std::span<const EndPoint>(busSrcs),
               std::span<const EndPoint>(busSinks));
  for (const Pin& s : busSpec.srcs) {
    expectContained(g, busFp, netNodes(router, g, s), "bus bit");
  }

  // unroute: the footprint of tearing down the fanout net is exactly the
  // cells its tree occupies — every live node must be covered.
  const RouteSpec unSpec{SpecOp::kUnroute, {fanSrc}, {}};
  const Footprint unFp = fx.extract(unSpec);
  expectContained(g, unFp, netNodes(router, g, fanSrc), "unroute");

  // reconnect: teardown of the short net plus a route to a new sink.
  const Pin newSink(5, 7, clbIn(3));
  const RouteSpec reSpec{SpecOp::kReconnect, {shortSrc}, {newSink}};
  const Footprint reFp = fx.extract(reSpec);
  expectContained(g, reFp, netNodes(router, g, shortSrc), "reconnect old");
  router.unroute(EndPoint(shortSrc));
  router.route(EndPoint(shortSrc), EndPoint(newSink));
  expectContained(g, reFp, netNodes(router, g, shortSrc), "reconnect new");
}

INSTANTIATE_TEST_SUITE_P(Devices, PlanFootprintDeviceTest,
                         ::testing::Values("XCV50", "XCV1000"));

TEST(PlanFootprintTest, UnboundableRequestsAreUnsoundNotWrong) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  const FootprintExtractor fx(kit.graph, fabric);

  // No sources at all.
  EXPECT_FALSE(fx.extract(RouteSpec{SpecOp::kP2P, {}, {}}).sound());
  // Route with no sinks.
  EXPECT_FALSE(
      fx.extract(RouteSpec{SpecOp::kP2P, {Pin(3, 3, S1_YQ)}, {}}).sound());
  // Unroute of a net that does not exist: nothing to bound.
  EXPECT_FALSE(
      fx.extract(RouteSpec{SpecOp::kUnroute, {Pin(3, 3, S1_YQ)}, {}}).sound());
  // Bus width mismatch.
  EXPECT_FALSE(fx.extract(RouteSpec{SpecOp::kBus,
                                    {Pin(3, 3, S1_YQ), Pin(4, 3, S1_YQ)},
                                    {Pin(3, 6, clbIn(1))}})
                   .sound());
  // A resolvable pair stays sound.
  EXPECT_TRUE(fx.extract(RouteSpec{SpecOp::kP2P,
                                   {Pin(3, 3, S1_YQ)},
                                   {Pin(4, 5, clbIn(2))}})
                  .sound());
}

// --- Extractor hook liveness (mutation harness) ---------------------------------

TEST(PlanExtractorMutationTest, NetNodesHookIsLive) {
  const Kit& kit = kitFor("XCV50");
  const Graph& g = kit.graph;
  Fabric fabric(g, kit.table);
  Router router(fabric);
  // A net spanning several region cells.
  const Pin src(3, 3, S1_YQ);
  router.route(EndPoint(src), EndPoint(Pin(3, 14, clbIn(2))));

  FootprintExtractor fx(g, fabric);
  const RouteSpec unSpec{SpecOp::kUnroute, {src}, {}};
  const Footprint honest = fx.extract(unSpec);
  expectContained(g, honest, netNodes(router, g, src), "honest unroute");

  // Corrupt the tree walk to report only the source: the footprint must
  // now miss live nodes — proof the extractor really consumes the hook.
  fx.hooks().netNodes = [&g, &src](NodeId) {
    return std::vector<NodeId>{g.nodeAt(src.rc, src.wire)};
  };
  const Footprint blinded = fx.extract(unSpec);
  bool missed = false;
  for (NodeId n : netNodes(router, g, src)) {
    if (!blinded.allowsNode(g, n)) missed = true;
  }
  EXPECT_TRUE(missed) << "blinding netNodes did not shrink the footprint";
}

TEST(PlanExtractorMutationTest, TemplateHookIsLive) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  FootprintExtractor fx(kit.graph, fabric);
  const RouteSpec spec{SpecOp::kP2P, {Pin(8, 8, S1_YQ)}, {Pin(8, 10, clbIn(2))}};
  const Footprint honest = fx.extract(spec);

  // Inject a fake nominal walk far outside the corridor: its tiles must
  // show up in the footprint, or the hook is dead code.
  fx.hooks().templates = [](RowCol, RowCol) {
    return std::vector<std::vector<TemplateValue>>{
        {TemplateValue::NORTH6, TemplateValue::NORTH6}};
  };
  const Footprint injected = fx.extract(spec);
  const std::vector<int> before = honest.cells();
  bool gained = false;
  for (int cell : injected.cells()) {
    if (std::find(before.begin(), before.end(), cell) == before.end()) {
      gained = true;
    }
  }
  EXPECT_TRUE(gained) << "templates hook output never reached the footprint";
}

TEST(PlanExtractorMutationTest, LongTemplateHookIsLive) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  FootprintExtractor fx(kit.graph, fabric);
  const RouteSpec spec{SpecOp::kP2P, {Pin(8, 8, S1_YQ)}, {Pin(8, 10, clbIn(2))}};
  const Footprint honest = fx.extract(spec);
  fx.hooks().longTemplates = [](RowCol, RowCol) {
    return std::vector<std::vector<TemplateValue>>{
        {TemplateValue::SOUTH6, TemplateValue::SOUTH6}};
  };
  const Footprint injected = fx.extract(spec);
  const std::vector<int> before = honest.cells();
  bool gained = false;
  for (int cell : injected.cells()) {
    if (std::find(before.begin(), before.end(), cell) == before.end()) {
      gained = true;
    }
  }
  EXPECT_TRUE(gained);
}

TEST(PlanExtractorMutationTest, CorridorMarginIsLive) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  FootprintExtractor fx(kit.graph, fabric);
  const RouteSpec spec{SpecOp::kP2P, {Pin(8, 8, S1_YQ)}, {Pin(9, 10, clbIn(2))}};
  const size_t withMargin = fx.extract(spec).cellCount();
  fx.hooks().corridorMargin = 0;
  const size_t withoutMargin = fx.extract(spec).cellCount();
  EXPECT_LT(withoutMargin, withMargin);
}

// --- No-conflict certificates ----------------------------------------------------

std::vector<RouteSpec> scatteredBatch() {
  // Eight requests: pairs 0..5 live in three well-separated bands (but
  // 0/1, 2/3, 4/5 overlap within their band), 6 is malformed (unsound),
  // 7 collides with 0.
  std::vector<RouteSpec> specs;
  auto p2p = [&specs](int r0, int c0, int r1, int c1) {
    specs.push_back(RouteSpec{SpecOp::kP2P,
                              {Pin(r0, c0, S1_YQ)},
                              {Pin(r1, c1, clbIn(2))}});
  };
  p2p(2, 2, 3, 4);
  p2p(3, 3, 2, 5);    // overlaps 0
  p2p(2, 14, 3, 16);
  p2p(3, 15, 2, 17);  // overlaps 2
  p2p(12, 2, 13, 4);
  p2p(13, 3, 12, 5);  // overlaps 4
  specs.push_back(RouteSpec{SpecOp::kP2P, {}, {}});  // unsound
  p2p(2, 3, 3, 5);    // overlaps 0 and 1
  return specs;
}

TEST(PlanCertificateTest, WavesArePairwiseDisjointAndCoverSoundRequests) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  const FootprintExtractor fx(kit.graph, fabric);
  const std::vector<RouteSpec> specs = scatteredBatch();
  const NoConflictCertificate cert = planBatch(fx, specs);

  ASSERT_EQ(cert.footprints.size(), specs.size());
  EXPECT_EQ(cert.uncertified, std::vector<size_t>{6});
  EXPECT_EQ(cert.certifiedCount(), specs.size() - 1);

  // Within a wave, all member footprints are pairwise disjoint.
  std::set<size_t> seen;
  for (const Wave& w : cert.waves) {
    for (size_t i = 0; i < w.members.size(); ++i) {
      EXPECT_TRUE(seen.insert(w.members[i]).second);
      for (size_t j = i + 1; j < w.members.size(); ++j) {
        EXPECT_FALSE(cert.footprints[w.members[i]].intersects(
            cert.footprints[w.members[j]]))
            << "wave members " << w.members[i] << " and " << w.members[j]
            << " interfere";
      }
    }
  }
  EXPECT_EQ(seen.size(), cert.certifiedCount());
  EXPECT_EQ(seen.count(6), 0u);

  // The three separated bands can share a wave; the overlapping partners
  // cannot, so at least two waves exist.
  EXPECT_GE(cert.waves.size(), 2u);
}

TEST(PlanCertificateTest, ColoringIsDeterministic) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  const FootprintExtractor fx(kit.graph, fabric);
  const NoConflictCertificate a = planBatch(fx, scatteredBatch());
  const NoConflictCertificate b = planBatch(fx, scatteredBatch());
  ASSERT_EQ(a.waves.size(), b.waves.size());
  for (size_t i = 0; i < a.waves.size(); ++i) {
    EXPECT_EQ(a.waves[i].members, b.waves[i].members);
  }
  EXPECT_EQ(a.uncertified, b.uncertified);
  EXPECT_EQ(a.json(), b.json());
}

TEST(PlanCertificateTest, JsonIsValid) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  const FootprintExtractor fx(kit.graph, fabric);
  const NoConflictCertificate cert = planBatch(fx, scatteredBatch());
  EXPECT_TRUE(jrtest::validJson(cert.json())) << cert.json();
}

// --- Certified service path ------------------------------------------------------

TEST(PlanServiceTest, CertifiedBatchSkipsArbitrationCleanly) {
  const Kit& kit = kitFor("XCV50");
  Fabric fabric(kit.graph, kit.table);
  jrsvc::ServiceOptions opts;
  opts.manualPump = true;
  opts.planThreads = 1;
  opts.certify = true;
  opts.planParanoid = true;  // re-arbitrate every certified wave
  opts.drcParanoid = true;
  jrsvc::RoutingService svc(fabric, opts);
  jrsvc::Session s = svc.openSession();

  std::vector<std::future<jrsvc::RouteResult>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(s.routeAsync(
        EndPoint(Pin(static_cast<int16_t>(2 + 2 * i), 4, S1_YQ)),
        EndPoint(Pin(static_cast<int16_t>(3 + 2 * i), 6, clbIn(2)))));
  }
  svc.pumpOnce();
  for (auto& f : futs) EXPECT_TRUE(f.get().ok());

  const jrsvc::ServiceStats st = svc.stats();
  EXPECT_EQ(st.certifiedPlanned, 6u);
  EXPECT_GE(st.certifiedWaves, 1u);
  EXPECT_EQ(st.certifiedFallbacks, 0u);
  EXPECT_EQ(st.paranoidDisagreements, 0u);
  // Certified waves plan with arbitration skipped: no claim races exist
  // to lose.
  EXPECT_EQ(st.claimRetries, 0u);
  EXPECT_TRUE(svc.runDrc().clean());
}

TEST(PlanServiceTest, CertifiedEngineMatchesArbitratedOutcomes) {
  // The same workload — disjoint routes plus one contested sink — must
  // resolve identically whether the engine certifies or arbitrates.
  auto run = [](bool certify) {
    const Kit& kit = kitFor("XCV50");
    Fabric fabric(kit.graph, kit.table);
    jrsvc::ServiceOptions opts;
    opts.manualPump = true;
    opts.planThreads = 1;
    opts.certify = certify;
    opts.planParanoid = certify;
    opts.drcParanoid = true;
    jrsvc::RoutingService svc(fabric, opts);
    jrsvc::Session s = svc.openSession();

    std::vector<std::future<jrsvc::RouteResult>> futs;
    for (int i = 0; i < 4; ++i) {
      futs.push_back(s.routeAsync(
          EndPoint(Pin(static_cast<int16_t>(2 + 3 * i), 3, S1_YQ)),
          EndPoint(Pin(static_cast<int16_t>(3 + 3 * i), 5, clbIn(2)))));
    }
    // Two rivals for one sink: exactly one may win.
    futs.push_back(s.routeAsync(EndPoint(Pin(4, 12, S1_YQ)),
                                EndPoint(Pin(5, 14, clbIn(1)))));
    futs.push_back(s.routeAsync(EndPoint(Pin(6, 12, S0_YQ)),
                                EndPoint(Pin(5, 14, clbIn(1)))));
    svc.pumpOnce();

    std::vector<bool> outcomes;
    for (auto& f : futs) outcomes.push_back(f.get().ok());
    EXPECT_EQ(svc.stats().paranoidDisagreements, 0u);
    EXPECT_TRUE(svc.runDrc().clean());
    return outcomes;
  };

  const std::vector<bool> arbitrated = run(false);
  const std::vector<bool> certified = run(true);
  EXPECT_EQ(arbitrated, certified);
  // The four disjoint routes all landed; the contested pair has one winner.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(certified[static_cast<size_t>(i)]);
  EXPECT_NE(certified[4], certified[5]);
}

TEST(PlanServiceConcurrencyTest, CertifiedThreadedRunStaysClean) {
  // Concurrent clients against the certified engine with the paranoid
  // cross-check armed — the TSAN/perturb tier-1 passes run this to hunt
  // races between wave planning and the claim machinery.
  const Kit& kit = kitFor("XCV300");
  Fabric fabric(kit.graph, kit.table);
  jrsvc::ServiceOptions opts;
  opts.batchSize = 16;
  opts.certify = true;
  opts.planParanoid = true;
  opts.drcParanoid = true;
  jrsvc::RoutingService svc(fabric, opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 6;
  std::vector<jrsvc::Session> sessions;
  for (int t = 0; t < kThreads; ++t) sessions.push_back(svc.openSession());

  std::atomic<int> escapes{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      try {
        for (int k = 0; k < kPerThread; ++k) {
          const jrsvc::RouteResult r = sessions[static_cast<size_t>(t)].route(
              EndPoint(Pin(static_cast<int16_t>(2 + t * 7),
                           static_cast<int16_t>(4 + k * 3), S1_YQ)),
              EndPoint(Pin(static_cast<int16_t>(3 + t * 7),
                           static_cast<int16_t>(6 + k * 3), clbIn(2))));
          if (r.ok()) accepted.fetch_add(1);
        }
      } catch (...) {
        escapes.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  svc.stop();

  EXPECT_EQ(escapes.load(), 0);
  EXPECT_EQ(accepted.load(), kThreads * kPerThread);
  EXPECT_EQ(static_cast<size_t>(accepted.load()), fabric.liveNetCount());
  const jrsvc::ServiceStats st = svc.stats();
  EXPECT_EQ(st.paranoidDisagreements, 0u);
  EXPECT_GT(st.certifiedPlanned, 0u);
  EXPECT_TRUE(svc.runDrc().clean());
  fabric.checkConsistency();
}

// --- Sharded claim map -----------------------------------------------------------

TEST(PlanClaimMapTest, ShardedLayoutIsAPurePermutationOfFlat) {
  const Kit& kit = kitFor("XCV50");
  const Graph& g = kit.graph;
  jrsvc::ClaimMap flat(g.numNodes());
  jrsvc::ClaimMap sharded(g, RegionGrid(g.device()));
  EXPECT_FALSE(flat.sharded());
  EXPECT_TRUE(sharded.sharded());

  // A deterministic churn of claims/releases must agree verbatim.
  uint64_t lcg = 0x243F6A8885A308D3ull;
  auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  for (int step = 0; step < 20000; ++step) {
    const NodeId n = static_cast<NodeId>(next() % g.numNodes());
    const uint32_t owner = static_cast<uint32_t>(next() % 5) + 1;
    switch (next() % 3) {
      case 0:
        EXPECT_EQ(flat.claim(n, owner), sharded.claim(n, owner));
        break;
      case 1:
        flat.release(n, owner);
        sharded.release(n, owner);
        break;
      default:
        EXPECT_EQ(flat.ownerOf(n), sharded.ownerOf(n));
        break;
    }
  }
  for (NodeId n = 0; n < g.numNodes(); ++n) {
    ASSERT_EQ(flat.ownerOf(n), sharded.ownerOf(n)) << "node " << n;
  }
}

TEST(PlanClaimMapTest, ShardedServiceAdmitsTheSamePlans) {
  // End-to-end regression: a deterministic engine run admits exactly the
  // same requests with the sharded map as with the flat one.
  auto run = [](bool shard) {
    const Kit& kit = kitFor("XCV50");
    Fabric fabric(kit.graph, kit.table);
    jrsvc::ServiceOptions opts;
    opts.manualPump = true;
    opts.planThreads = 1;
    opts.shardClaimMap = shard;
    opts.drcParanoid = true;
    jrsvc::RoutingService svc(fabric, opts);
    jrsvc::Session s = svc.openSession();
    std::vector<std::future<jrsvc::RouteResult>> futs;
    for (int i = 0; i < 5; ++i) {
      futs.push_back(s.routeAsync(
          EndPoint(Pin(static_cast<int16_t>(2 + 2 * i), 3, S1_YQ)),
          EndPoint(Pin(static_cast<int16_t>(3 + 2 * i), 6, clbIn(2)))));
    }
    futs.push_back(s.routeAsync(EndPoint(Pin(4, 12, S1_YQ)),
                                EndPoint(Pin(3, 6, clbIn(2)))));  // contested
    svc.pumpOnce();
    std::vector<bool> outcomes;
    for (auto& f : futs) outcomes.push_back(f.get().ok());
    return outcomes;
  };
  EXPECT_EQ(run(false), run(true));
}

// --- Workload linter -------------------------------------------------------------

LintEvent mkEvent(std::string session, SpecOp op, std::vector<Pin> srcs,
                  std::vector<Pin> sinks, std::string origin = "t") {
  LintEvent ev;
  ev.session = std::move(session);
  ev.origin = std::move(origin);
  ev.spec.op = op;
  ev.spec.srcs = std::move(srcs);
  ev.spec.sinks = std::move(sinks);
  return ev;
}

const xcvsim::DeviceSpec& dev50() { return xcvsim::xcv50(); }

TEST(PlanLintTest, CleanStreamHasNoFindings) {
  const std::vector<LintEvent> events{
      mkEvent("a", SpecOp::kP2P, {Pin(3, 3, S1_YQ)}, {Pin(4, 5, clbIn(2))}),
      mkEvent("a", SpecOp::kFanout, {Pin(6, 6, S1_YQ)},
              {Pin(7, 8, clbIn(1)), Pin(5, 7, clbIn(2))}),
      mkEvent("b", SpecOp::kBus, {Pin(10, 3, S1_YQ), Pin(11, 3, S1_YQ)},
              {Pin(10, 6, clbIn(2)), Pin(11, 6, clbIn(2))}),
      mkEvent("a", SpecOp::kReconnect, {Pin(3, 3, S1_YQ)},
              {Pin(4, 6, clbIn(3))}),
      mkEvent("a", SpecOp::kUnroute, {Pin(3, 3, S1_YQ)}, {}),
  };
  const LintReport rep = lintEvents(dev50(), events);
  EXPECT_TRUE(rep.findings.empty()) << rep.summary();
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.eventsChecked, events.size());
  EXPECT_EQ(rep.rulesRun.size(), allLintRules().size());
}

TEST(PlanLintMutationTest, MalformedFires) {
  const std::vector<LintEvent> events{
      mkEvent("a", SpecOp::kP2P, {}, {Pin(4, 5, clbIn(2))}),
      mkEvent("a", SpecOp::kP2P, {Pin(3, 3, S1_YQ)}, {}),
      mkEvent("a", SpecOp::kBus, {Pin(3, 3, S1_YQ), Pin(4, 3, S1_YQ)},
              {Pin(3, 6, clbIn(1))}),
      mkEvent("a", SpecOp::kP2P, {Pin(99, 99, S1_YQ)},
              {Pin(4, 5, clbIn(2))}),
  };
  const LintReport rep = lintEvents(dev50(), events);
  EXPECT_TRUE(rep.firedRule("lint-malformed"));
  EXPECT_GE(rep.errors(), 4u);
}

TEST(PlanLintMutationTest, DoubleClaimFires) {
  const Pin sink(4, 5, clbIn(2));
  const std::vector<LintEvent> events{
      mkEvent("a", SpecOp::kP2P, {Pin(3, 3, S1_YQ)}, {sink}),
      // Same session: warning (the anomaly-smoke pattern).
      mkEvent("a", SpecOp::kP2P, {Pin(6, 6, S1_YQ)}, {sink}),
      // Cross-session: error.
      mkEvent("b", SpecOp::kP2P, {Pin(8, 8, S1_YQ)}, {sink}),
  };
  const LintReport rep = lintEvents(dev50(), events);
  EXPECT_TRUE(rep.firedRule("lint-double-claim"));
  EXPECT_EQ(rep.warnings(), 1u);
  EXPECT_EQ(rep.errors(), 1u);
}

TEST(PlanLintMutationTest, NotOwnerFires) {
  const std::vector<LintEvent> events{
      mkEvent("a", SpecOp::kP2P, {Pin(3, 3, S1_YQ)}, {Pin(4, 5, clbIn(2))}),
      mkEvent("b", SpecOp::kUnroute, {Pin(3, 3, S1_YQ)}, {}),
      mkEvent("b", SpecOp::kFanout, {Pin(3, 3, S1_YQ)},
              {Pin(5, 6, clbIn(3))}),
  };
  const LintReport rep = lintEvents(dev50(), events);
  EXPECT_TRUE(rep.firedRule("lint-not-owner"));
  EXPECT_GE(rep.errors(), 2u);
}

TEST(PlanLintMutationTest, UnrouteDeadFires) {
  const std::vector<LintEvent> events{
      // Never routed.
      mkEvent("a", SpecOp::kUnroute, {Pin(3, 3, S1_YQ)}, {}),
      // Routed, torn down, then unrouted again.
      mkEvent("a", SpecOp::kP2P, {Pin(6, 6, S1_YQ)}, {Pin(7, 8, clbIn(1))}),
      mkEvent("a", SpecOp::kUnroute, {Pin(6, 6, S1_YQ)}, {}),
      mkEvent("a", SpecOp::kUnroute, {Pin(6, 6, S1_YQ)}, {}),
  };
  const LintReport rep = lintEvents(dev50(), events);
  EXPECT_TRUE(rep.firedRule("lint-unroute-dead"));
  EXPECT_EQ(rep.errors(), 2u);
}

TEST(PlanLintMutationTest, ReconnectMissingFires) {
  const std::vector<LintEvent> events{
      mkEvent("a", SpecOp::kReconnect, {Pin(3, 3, S1_YQ)},
              {Pin(4, 5, clbIn(2))}),
  };
  const LintReport rep = lintEvents(dev50(), events);
  EXPECT_TRUE(rep.firedRule("lint-reconnect-missing"));
  EXPECT_EQ(rep.errors(), 1u);
}

TEST(PlanLintMutationTest, EveryLintRuleHasALivenessProof) {
  // Meta-check on this file, mirroring the jrverify harness: the
  // mutation tests above must cover every rule in the catalogue.
  const std::set<std::string> proven = {
      "lint-malformed",    "lint-double-claim",      "lint-not-owner",
      "lint-unroute-dead", "lint-reconnect-missing",
  };
  for (const LintRule* r : allLintRules()) {
    EXPECT_TRUE(proven.count(r->id))
        << "lint rule " << r->id << " has no mutation test";
  }
}

TEST(PlanLintTest, FindingsArePerRuleCapped) {
  std::vector<LintEvent> events;
  for (int i = 0; i < 20; ++i) {
    events.push_back(mkEvent("a", SpecOp::kP2P, {}, {Pin(4, 5, clbIn(2))}));
  }
  const LintReport rep = lintEvents(dev50(), events);
  size_t malformed = 0;
  for (const Finding& f : rep.findings) {
    if (f.rule == "lint-malformed") ++malformed;
  }
  EXPECT_EQ(malformed, 8u);  // kMaxFindingsPerRule
}

TEST(PlanLintTest, GoldenJsonRendersExactlyAndValidates) {
  const std::vector<LintEvent> events{
      mkEvent("a", SpecOp::kUnroute, {Pin(3, 3, S1_YQ)}, {}),
  };
  const LintReport rep = lintEvents(dev50(), events);
  const std::string expected =
      "{\"lint\":{\"events\":1,\"errors\":1,\"warnings\":0,\"findings\":["
      "{\"rule\":\"lint-unroute-dead\",\"severity\":\"error\","
      "\"request\":0,\"entity\":\"(3,3,S1_YQ)\","
      "\"message\":\"unroute of a net that was never routed\","
      "\"hint\":\"route the net before unrouting it\"}]}}";
  EXPECT_EQ(rep.json(), expected);
  EXPECT_TRUE(jrtest::validJson(rep.json()));
  // Same stream, same report — the linter is deterministic.
  EXPECT_EQ(lintEvents(dev50(), events).json(), rep.json());
}

// --- Script front-end ------------------------------------------------------------

TEST(PlanLintScriptTest, ParsesNetCommandsAndIgnoresTheRest) {
  std::istringstream in(
      "# comment\n"
      "device XCV50\n"
      "stats\n"
      "auto 3 3 S1_YQ 4 5 S0F3\n"
      "fanout 6 6 S1_YQ 2 7 8 S0F2 5 7 S0F3\n"
      "unroute 3 3 S1_YQ\n");
  const ScriptWorkload wl = parseScript(in);
  EXPECT_EQ(wl.device, "XCV50");
  EXPECT_TRUE(wl.parseErrors.empty());
  ASSERT_EQ(wl.events.size(), 3u);
  EXPECT_EQ(wl.events[0].spec.op, SpecOp::kP2P);
  EXPECT_EQ(wl.events[1].spec.op, SpecOp::kFanout);
  EXPECT_EQ(wl.events[1].spec.sinks.size(), 2u);
  EXPECT_EQ(wl.events[2].spec.op, SpecOp::kUnroute);
  EXPECT_EQ(wl.events[0].origin, "line 4");
}

TEST(PlanLintScriptTest, ParseErrorSurfacesAsMalformedFinding) {
  std::istringstream in("auto 3 3 NO_SUCH_WIRE 4 5 S0F3\n");
  const LintReport rep = lintScript(in);
  EXPECT_TRUE(rep.firedRule("lint-malformed"));
  EXPECT_GE(rep.errors(), 1u);
}

TEST(PlanLintScriptTest, UnknownDeviceIsMalformed) {
  std::istringstream in("device XCV9999\nauto 3 3 S1_YQ 4 5 S0F3\n");
  const LintReport rep = lintScript(in);
  EXPECT_TRUE(rep.firedRule("lint-malformed"));
  EXPECT_FALSE(rep.clean());
}

TEST(PlanLintScriptTest, CleanScriptLintsClean) {
  std::istringstream in(
      "device XCV50\n"
      "auto 3 3 S1_YQ 4 5 S0F3\n"
      "unroute 3 3 S1_YQ\n");
  const LintReport rep = lintScript(in);
  EXPECT_TRUE(rep.clean()) << rep.summary();
  EXPECT_TRUE(rep.findings.empty());
}

}  // namespace
}  // namespace jrplan
