// Observability PR tests: per-net provenance, congestion heatmaps, and
// the anomaly flight recorder.
//
// Three layers are covered. (1) The pure data layer — NetProvenance
// renderers, the bounded ProvenanceStore, Heatmap ASCII/JSON — is tested
// with exact golden strings: jrsh `why` and `heatmap json` print these
// verbatim, so their format is contract, not incident. (2) The service
// wiring — every net committed through the engine leaves exactly one
// record, updated on extension and forgotten on unroute — including a
// multi-threaded submission test that tier-1 runs under TSAN ("Obs" in
// the suite names keeps these inside the sanitizer ctest filters).
// (3) The flight recorder — a forced contention rejection must dump a
// self-contained JSON bundle that round-trips the RFC 8259 validator.
// Everything degrades per the JROUTE_NO_TELEMETRY contract: stores and
// grids go empty, renderers keep working, nothing crashes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/congestion.h"
#include "arch/wires.h"
#include "json_validator.h"
#include "obs/flightrec.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "service/service.h"

namespace jrsvc {
namespace {

using jrobs::CongestionGrid;
using jrobs::FlightRecorder;
using jrobs::Heatmap;
using jrobs::NetProvenance;
using jrobs::ProvenanceStore;
using jroute::EndPoint;
using jroute::Pin;
using jrtest::validJson;
using xcvsim::clbIn;
using xcvsim::Fabric;
using xcvsim::Graph;
using xcvsim::kInvalidNode;
using xcvsim::NodeId;
using xcvsim::PipTable;
using xcvsim::S0_Y;
using xcvsim::S0_YQ;
using xcvsim::S0F1;
using xcvsim::S1_YQ;

// --- Renderers: golden output ----------------------------------------------
// jrsh prints these verbatim; the exact strings are the interface.

NetProvenance sampleRecord() {
  NetProvenance rec;
  rec.netSource = 1234;
  rec.netName = "net_7";
  rec.requestId = 42;
  rec.sessionId = 3;
  rec.op = "p2p";
  rec.algorithm = "template";
  rec.selector = "mixed";
  rec.parallel = true;
  rec.pips = 6;
  rec.sinks = 1;
  rec.searchVisits = 44;
  rec.claimRetries = 0;
  rec.latencyUs = 120;
  rec.txn = "committed";
  rec.drc = "pass";
  rec.updates = 1;
  rec.seq = 9;
  return rec;
}

TEST(ObsProvenanceGolden, WhyTextRendersExactly) {
  EXPECT_EQ(sampleRecord().text(),
            "net net_7 (source node 1234)\n"
            "  request   #42 session 3 op p2p\n"
            "  algorithm template (parallel plan), selector mixed\n"
            "  effort    44 nodes visited, 0 claim retries\n"
            "  result    6 pips across 1 sink(s), latency 120 us\n"
            "  outcome   txn committed, drc pass, updated 1x (seq 9)\n");

  // The serialized / never-updated variant drops its optional clauses.
  NetProvenance plain = sampleRecord();
  plain.parallel = false;
  plain.updates = 0;
  EXPECT_NE(
      plain.text().find("  algorithm template (serialized), selector mixed\n"),
      std::string::npos);
  EXPECT_EQ(plain.text().find("updated"), std::string::npos);
}

TEST(ObsProvenanceGolden, JsonRendersExactlyAndValidates) {
  const std::string json = sampleRecord().json();
  EXPECT_EQ(json,
            "{\"net_source\":1234,\"net_name\":\"net_7\",\"request_id\":42,"
            "\"session_id\":3,\"op\":\"p2p\",\"algorithm\":\"template\","
            "\"selector\":\"mixed\",\"parallel\":true,"
            "\"certified\":false,\"pips\":6,"
            "\"sinks\":1,\"search_visits\":44,"
            "\"claim_retries\":0,\"latency_us\":120,\"txn\":\"committed\","
            "\"drc\":\"pass\",\"updates\":1,\"seq\":9}");
  EXPECT_TRUE(validJson(json));
}

TEST(ObsHeatmapGolden, AsciiAndJsonRenderExactly) {
  Heatmap h;
  h.title = "t";
  h.gridRows = 2;
  h.gridCols = 3;
  h.cellRows = 4;
  h.cellCols = 4;
  h.values = {0, 1, 2, 0, 0, 4};
  EXPECT_EQ(h.maxValue(), 4u);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.ascii(),
            "t (2x3 cells of 4x4 tiles, max=4, total=7)\n"
            "   .-\n"
            "    #\n"
            "  legend: ' '=0 '@'<=4\n");
  const std::string json = h.json();
  EXPECT_EQ(json,
            "{\"heatmap\":{\"title\":\"t\",\"grid_rows\":2,\"grid_cols\":3,"
            "\"cell_rows\":4,\"cell_cols\":4,\"max\":4,\"total\":7,"
            "\"cells\":[[0,1,2],[0,0,4]]}}");
  EXPECT_TRUE(validJson(json));
}

TEST(ObsProvenanceGolden, AlgorithmClassification) {
  using jrobs::classifyAlgorithm;
  EXPECT_STREQ(classifyAlgorithm(0, 0, 0), "reuse");
  EXPECT_STREQ(classifyAlgorithm(2, 0, 0), "template");
  EXPECT_STREQ(classifyAlgorithm(0, 0, 3), "shape-hint");
  EXPECT_STREQ(classifyAlgorithm(0, 1, 0), "maze");
  EXPECT_STREQ(classifyAlgorithm(1, 1, 0), "mixed");
  EXPECT_STREQ(classifyAlgorithm(0, 1, 1), "mixed");
}

// --- ProvenanceStore --------------------------------------------------------

TEST(ObsProvenanceStore, RecordFindLastForget) {
  ProvenanceStore store(8);
  NetProvenance a;
  a.netSource = 10;
  a.netName = "a";
  NetProvenance b;
  b.netSource = 20;
  b.netName = "b";
  store.record(a);
  store.record(b);
  EXPECT_TRUE(validJson(store.json()));
  if (!jrobs::compiledIn()) {
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.find(10).has_value());
    EXPECT_FALSE(store.last().has_value());
    return;
  }
  EXPECT_EQ(store.size(), 2u);
  ASSERT_TRUE(store.find(10).has_value());
  EXPECT_EQ(store.find(10)->netName, "a");
  EXPECT_EQ(store.find(10)->seq, 1u);  // the store stamps commit order
  ASSERT_TRUE(store.last().has_value());
  EXPECT_EQ(store.last()->netName, "b");
  store.forget(10);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.find(10).has_value());
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.json(), "{\"provenance\":[]}");
}

TEST(ObsProvenanceStore, ReRecordMergesAndBumpsUpdates) {
  if (!jrobs::compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  ProvenanceStore store(8);
  NetProvenance rec;
  rec.netSource = 10;
  rec.op = "p2p";
  store.record(rec);
  rec.op = "fanout";  // a later request extends the same net
  store.record(rec);
  EXPECT_EQ(store.size(), 1u);
  ASSERT_TRUE(store.find(10).has_value());
  EXPECT_EQ(store.find(10)->op, "fanout");  // new request's view wins...
  EXPECT_EQ(store.find(10)->updates, 1u);   // ...with the history counted
  EXPECT_EQ(store.find(10)->seq, 2u);
}

TEST(ObsProvenanceStore, BoundedEvictionIsOldestFirst) {
  if (!jrobs::compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  ProvenanceStore store(2);
  for (uint64_t src : {10u, 20u, 30u}) {
    NetProvenance rec;
    rec.netSource = src;
    store.record(rec);
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.find(10).has_value());  // oldest commit evicted
  EXPECT_TRUE(store.find(20).has_value());
  EXPECT_TRUE(store.find(30).has_value());
}

// --- CongestionGrid ---------------------------------------------------------

TEST(ObsCongestionGrid, AccumulatesResetsAndReconfigures) {
  CongestionGrid grid;
  EXPECT_FALSE(grid.configured());
  grid.add(0, 0);  // pre-configure adds are dropped, not UB
  grid.configure(16, 24, 4, 4);
  if (!jrobs::compiledIn()) {
    EXPECT_FALSE(grid.configured());
    EXPECT_TRUE(grid.snapshot("x").values.empty());
    return;
  }
  ASSERT_TRUE(grid.configured());
  grid.add(0, 0);
  grid.add(3, 3);    // same 4x4 cell as (0,0)
  grid.add(4, 0);    // next cell row
  grid.add(15, 23, 5);
  grid.add(-1, 0);   // out of range: ignored
  grid.add(16, 0);
  const Heatmap snap = grid.snapshot("claims");
  EXPECT_EQ(snap.gridRows, 4);
  EXPECT_EQ(snap.gridCols, 6);
  EXPECT_EQ(snap.at(0, 0), 2u);
  EXPECT_EQ(snap.at(1, 0), 1u);
  EXPECT_EQ(snap.at(3, 5), 5u);
  EXPECT_EQ(snap.total(), 8u);
  EXPECT_TRUE(validJson(snap.json()));

  grid.reset();
  EXPECT_EQ(grid.snapshot("claims").total(), 0u);

  // Same geometry re-configure zeroes; a new geometry swaps the array.
  grid.add(0, 0);
  grid.configure(16, 24, 4, 4);
  EXPECT_EQ(grid.snapshot("claims").total(), 0u);
  grid.configure(8, 8, 2, 2);
  const Heatmap re = grid.snapshot("claims");
  EXPECT_EQ(re.gridRows, 4);
  EXPECT_EQ(re.gridCols, 4);
  EXPECT_EQ(re.total(), 0u);
}

// --- Service wiring ---------------------------------------------------------

class ObsServiceTest : public ::testing::Test {
 protected:
  static const Graph& graph() {
    static Graph g{xcvsim::xcv50()};
    return g;
  }
  static const PipTable& table() {
    static PipTable t{xcvsim::ArchDb{xcvsim::xcv50()}};
    return t;
  }

  ObsServiceTest() : fabric_(graph(), table()) {
    jrobs::provenance().clear();  // the store is process-global
  }

  Fabric fabric_;
};

TEST_F(ObsServiceTest, CommittedNetsLeaveOneRecordUpdatedAndForgotten) {
  ServiceOptions opts;
  opts.manualPump = true;
  opts.planThreads = 1;
  RoutingService svc(fabric_, opts);
  Session s = svc.openSession();

  auto routed = s.routeAsync(EndPoint(Pin(3, 3, S1_YQ)),
                             EndPoint(Pin(4, 5, clbIn(2))));
  svc.pumpOnce();
  const RouteResult res = routed.get();
  ASSERT_TRUE(res.ok());
  ASSERT_NE(res.netSource, kInvalidNode);

  if (!jrobs::compiledIn()) {
    EXPECT_FALSE(jrobs::provenance().find(res.netSource).has_value());
    return;
  }

  auto rec = jrobs::provenance().find(res.netSource);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->netSource, res.netSource);
  EXPECT_GT(rec->requestId, 0u);
  EXPECT_EQ(rec->sessionId, s.id());
  EXPECT_EQ(rec->op, "p2p");
  EXPECT_EQ(rec->txn, "committed");
  EXPECT_GT(rec->pips, 0u);
  EXPECT_EQ(rec->sinks, 1u);
  EXPECT_EQ(rec->updates, 0u);
  const std::set<std::string> algos{"template", "shape-hint", "maze", "mixed",
                                    "reuse"};
  EXPECT_TRUE(algos.count(rec->algorithm)) << rec->algorithm;
  EXPECT_TRUE(validJson(rec->json()));
  ASSERT_TRUE(jrobs::provenance().last().has_value());
  EXPECT_EQ(jrobs::provenance().last()->netSource, res.netSource);

  // Extending the net replaces the record (exactly one per net) and
  // bumps `updates`; the newest request's view wins.
  auto grew = s.fanoutAsync(EndPoint(Pin(3, 3, S1_YQ)),
                            {EndPoint(Pin(5, 6, clbIn(3)))});
  svc.pumpOnce();
  ASSERT_TRUE(grew.get().ok());
  rec = jrobs::provenance().find(res.netSource);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->op, "fanout");
  EXPECT_EQ(rec->updates, 1u);

  // Unrouting forgets: `why` on a freed net must not explain stale state.
  auto freed = s.unrouteAsync(EndPoint(Pin(3, 3, S1_YQ)));
  svc.pumpOnce();
  ASSERT_TRUE(freed.get().ok());
  EXPECT_FALSE(jrobs::provenance().find(res.netSource).has_value());
}

TEST_F(ObsServiceTest, OccupancyHeatmapMatchesFabricUsage) {
  ServiceOptions opts;
  opts.manualPump = true;
  opts.planThreads = 1;
  RoutingService svc(fabric_, opts);
  Session s = svc.openSession();
  auto routed = s.routeAsync(EndPoint(Pin(3, 3, S1_YQ)),
                             EndPoint(Pin(4, 5, clbIn(2))));
  svc.pumpOnce();
  ASSERT_TRUE(routed.get().ok());

  // Occupancy is a fabric read, not telemetry: it works in both build
  // modes and its total is exactly the number of in-use nodes.
  const Heatmap occ = svc.occupancy();
  EXPECT_EQ(occ.gridRows, 4);  // xcv50: 16x24 tiles in 4x4 cells
  EXPECT_EQ(occ.gridCols, 6);
  EXPECT_EQ(occ.total(), fabric_.usedNodeCount());
  EXPECT_GT(occ.total(), 0u);
  EXPECT_TRUE(validJson(occ.json()));

  const Heatmap conflicts = svc.claimConflicts();
  EXPECT_TRUE(validJson(conflicts.json()));
  if (jrobs::compiledIn()) {
    EXPECT_EQ(conflicts.gridRows, 4);
    EXPECT_EQ(conflicts.gridCols, 6);
  }
}

TEST_F(ObsServiceTest, ConcurrentSubmissionsLeaveExactlyOneRecordPerNet) {
  // The TSAN target: client threads race the engine thread and the
  // parallel planners; afterwards every committed net has exactly one
  // provenance record and every rejected request left none.
  ServiceOptions opts;
  opts.planThreads = 2;
  RoutingService svc(fabric_, opts);

  constexpr int kThreads = 4;
  constexpr int kReqs = 6;
  std::vector<Session> sessions;
  for (int t = 0; t < kThreads; ++t) sessions.push_back(svc.openSession());

  std::vector<std::vector<std::future<RouteResult>>> futs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto ti = static_cast<size_t>(t);
      for (int i = 0; i < kReqs; ++i) {
        const int row = 2 + 3 * t;
        const int col = 2 + 3 * i;
        futs[ti].push_back(
            sessions[ti].routeAsync(EndPoint(Pin(row, col, S1_YQ)),
                                    EndPoint(Pin(row + 1, col + 1, clbIn(1)))));
      }
    });
  }
  // Two deliberately conflicting requests racing for the same sink:
  // exactly one can win, and the loser's rollback must leave no record.
  auto war0 = sessions[0].routeAsync(EndPoint(Pin(14, 21, S0_Y)),
                                     EndPoint(Pin(15, 22, S0F1)));
  auto war1 = sessions[1].routeAsync(EndPoint(Pin(14, 22, S1_YQ)),
                                     EndPoint(Pin(15, 22, S0F1)));
  for (std::thread& th : threads) th.join();

  std::set<NodeId> committed;
  std::vector<NodeId> rejectedSources;
  for (size_t t = 0; t < kThreads; ++t) {
    for (auto& f : futs[t]) {
      const RouteResult r = f.get();
      ASSERT_TRUE(r.ok()) << r.detail;  // disjoint tiles: all must land
      committed.insert(r.netSource);
    }
  }
  const RouteResult w0 = war0.get();
  const RouteResult w1 = war1.get();
  EXPECT_EQ((w0.ok() ? 1 : 0) + (w1.ok() ? 1 : 0), 1)
      << w0.detail << " / " << w1.detail;
  if (w0.ok()) {
    committed.insert(w0.netSource);
    rejectedSources.push_back(graph().nodeAt({14, 22}, S1_YQ));
  } else {
    committed.insert(w1.netSource);
    rejectedSources.push_back(graph().nodeAt({14, 21}, S0_Y));
  }
  ASSERT_EQ(committed.size(), static_cast<size_t>(kThreads * kReqs + 1));

  if (!jrobs::compiledIn()) return;
  for (const NodeId src : committed) {
    auto rec = jrobs::provenance().find(src);
    ASSERT_TRUE(rec.has_value()) << "net source " << src;
    EXPECT_EQ(rec->netSource, src);
    EXPECT_EQ(rec->op, "p2p");
    EXPECT_EQ(rec->txn, "committed");
    EXPECT_EQ(rec->updates, 0u);  // one committing request per net
  }
  for (const NodeId src : rejectedSources) {
    EXPECT_FALSE(jrobs::provenance().find(src).has_value());
    EXPECT_FALSE(fabric_.isUsed(src));  // rollback left no residue either
  }
  EXPECT_EQ(jrobs::provenance().size(), committed.size());
}

// --- Flight recorder --------------------------------------------------------

std::string freshDumpDir(const char* leaf) {
  const std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string slurp(const std::filesystem::path& p) {
  std::ifstream is(p);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

TEST(ObsFlightRecorder, DisarmedAnomaliesAreCountedButNotDumped) {
  FlightRecorder& fr = jrobs::flightRecorder();
  fr.disarm();
  const uint64_t before = fr.anomalyCount();
  EXPECT_EQ(fr.anomaly("test-disarmed", "nothing to see"), "");
  if (jrobs::compiledIn()) {
    EXPECT_EQ(fr.anomalyCount(), before + 1);
  }
}

TEST(ObsFlightRecorder, ArmedAnomalyDumpsSelfContainedBundle) {
  if (!jrobs::compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  FlightRecorder& fr = jrobs::flightRecorder();
  const std::string dir = freshDumpDir("jr_flightrec_direct");
  fr.arm(dir);
  fr.note("test", "step", 7, 8);
  const std::string path =
      fr.anomaly("test-kind", "forced by test", "{\"x\":1}");
  fr.disarm();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(std::filesystem::path(path).parent_path().string(), dir);

  const std::string bundle = slurp(path);
  EXPECT_TRUE(validJson(bundle)) << bundle.substr(0, 400);
  EXPECT_NE(bundle.find("\"kind\":\"test-kind\""), std::string::npos);
  EXPECT_NE(bundle.find("\"detail\":\"forced by test\""), std::string::npos);
  EXPECT_NE(bundle.find("\"name\":\"step\""), std::string::npos);  // the ring
  EXPECT_NE(bundle.find("\"extra\":{\"x\":1}"), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics\":{"), std::string::npos);

  fr.clear();
  EXPECT_EQ(fr.eventCount(), 0u);
}

TEST(ObsFlightRecorder, PerThreadRingsMergeIntoOneTimeOrderedView) {
  if (!jrobs::compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  FlightRecorder& fr = jrobs::flightRecorder();
  fr.clear();
  constexpr int kThreads = 4;
  constexpr int kNotes = 25;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fr, t] {
      for (int i = 0; i < kNotes; ++i) {
        fr.note("test", "mt-note", static_cast<uint64_t>(t),
                static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  // Each writer filled its own ring: nothing below capacity is dropped,
  // and eventCount sums across every thread's ring.
  EXPECT_EQ(fr.eventCount(), static_cast<size_t>(kThreads * kNotes));

  // A bundle merges the rings into one chronologically sorted event list.
  const std::string dir = freshDumpDir("jr_flightrec_mt");
  fr.arm(dir);
  const std::string path = fr.anomaly("test-mt", "per-thread merge");
  fr.disarm();
  ASSERT_FALSE(path.empty());
  const std::string bundle = slurp(path);
  EXPECT_TRUE(validJson(bundle)) << bundle.substr(0, 400);
  const size_t evStart = bundle.find("\"events\":[");
  const size_t evEnd = bundle.find("],\"extra\"");
  ASSERT_NE(evStart, std::string::npos);
  ASSERT_NE(evEnd, std::string::npos);
  const std::string events = bundle.substr(evStart, evEnd - evStart);
  size_t seen = 0;
  for (size_t pos = events.find("\"name\":\"mt-note\"");
       pos != std::string::npos;
       pos = events.find("\"name\":\"mt-note\"", pos + 1)) {
    ++seen;
  }
  EXPECT_EQ(seen, static_cast<size_t>(kThreads * kNotes));
  uint64_t prevTs = 0;
  for (size_t pos = events.find("\"ts_ns\":"); pos != std::string::npos;
       pos = events.find("\"ts_ns\":", pos + 1)) {
    const uint64_t ts = std::stoull(events.substr(pos + 8));
    EXPECT_GE(ts, prevTs) << "events not time-sorted";
    prevTs = ts;
  }
  fr.clear();
  EXPECT_EQ(fr.eventCount(), 0u);
}

TEST_F(ObsServiceTest, ContentionRejectionDumpsFlightRecorderBundle) {
  // The acceptance path: forced fabric contention through the real
  // engine must produce a bundle that validates and embeds the holding
  // net's provenance.
  if (!jrobs::compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  FlightRecorder& fr = jrobs::flightRecorder();
  const std::string dir = freshDumpDir("jr_flightrec_service");
  fr.arm(dir);

  ServiceOptions opts;
  opts.manualPump = true;
  opts.planThreads = 1;
  RoutingService svc(fabric_, opts);
  Session s = svc.openSession();
  auto holder = s.routeAsync(EndPoint(Pin(3, 3, S0_Y)),
                             EndPoint(Pin(5, 5, S0F1)));
  svc.pumpOnce();
  ASSERT_TRUE(holder.get().ok());
  auto loser = s.routeAsync(EndPoint(Pin(3, 4, S1_YQ)),
                            EndPoint(Pin(5, 5, S0F1)));  // sink is taken
  svc.pumpOnce();
  const RouteResult rej = loser.get();
  fr.disarm();
  ASSERT_FALSE(rej.ok());
  EXPECT_EQ(rej.reason, Reject::kContention);

  std::vector<std::filesystem::path> bundles;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    bundles.push_back(e.path());
  }
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_NE(bundles[0].filename().string().find("contention"),
            std::string::npos);
  const std::string bundle = slurp(bundles[0]);
  EXPECT_TRUE(validJson(bundle)) << bundle.substr(0, 400);
  EXPECT_NE(bundle.find("\"kind\":\"contention\""), std::string::npos);
  EXPECT_NE(bundle.find("\"events\":["), std::string::npos);
  EXPECT_NE(bundle.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(bundle.find("\"request_id\""), std::string::npos);
  // The bundle explains the *other* party: the winning net's record.
  EXPECT_NE(bundle.find("\"provenance\":{\"net_source\""), std::string::npos);
}

}  // namespace
}  // namespace jrsvc
