// Telemetry subsystem (src/obs): metrics registry and event tracer.
//
// The concurrency tests are the point — counters, histograms, and the
// tracer are documented lock-free on their hot paths, and this file is
// included in the tier-1 TSAN pass (scripts/tier1.sh runs -R 'Obs') so
// those claims are checked, not assumed. The JSON emitted by both the
// registry and the tracer round-trips through a small recursive-descent
// validator: Chrome/Perfetto and scripts consume it, so "mostly JSON" is
// a bug. Every test also passes with JROUTE_NO_TELEMETRY (stub
// instruments record nothing); assertions on recorded values are gated
// on jrobs::compiledIn().
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "json_validator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace jrobs {
namespace {

// RFC 8259 validator shared with provenance_test.cpp.
using jrtest::validJson;

TEST(ObsJsonValidator, SelfTest) {
  EXPECT_TRUE(validJson("{}"));
  EXPECT_TRUE(validJson(R"({"a":[1,2.5,-3e2],"b":{"c":"x\"y"},"d":null})"));
  EXPECT_FALSE(validJson("{"));
  EXPECT_FALSE(validJson(R"({"a":1,})"));
  EXPECT_FALSE(validJson(R"({"a":1} extra)"));
  EXPECT_FALSE(validJson(R"({"a":})"));
}

// --- Counters and gauges ----------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  Counter c;
  c.add();
  c.add(9);
  Gauge g;
  g.set(5);
  g.add(2);
  g.sub(3);
  if (compiledIn()) {
    EXPECT_EQ(c.value(), 10u);
    EXPECT_EQ(g.value(), 4);
  } else {
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
  }
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, CounterConcurrentAdds) {
  constexpr int kThreads = 4;
  constexpr int kAdds = 20000;
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (std::thread& th : threads) th.join();
  if (compiledIn()) {
    EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kAdds);
  }
}

// --- Histograms -------------------------------------------------------------

TEST(ObsMetrics, HistogramBucketRoundTrip) {
  // The log-bucket mapping must be monotone and tight: every value lands
  // in a bucket whose lower bound is <= the value and whose width bounds
  // the relative error by 1/16 (kSubBits = 4).
  uint32_t prev = 0;
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{15}, uint64_t{16}, uint64_t{17},
        uint64_t{100}, uint64_t{1000}, uint64_t{123456}, uint64_t{1} << 40,
        ~uint64_t{0}}) {
    const uint32_t b = Histogram::bucketOf(v);
    EXPECT_LT(b, Histogram::kNumBuckets) << v;
    EXPECT_GE(b, prev) << v;  // monotone in v (the list is ascending)
    prev = b;
    const uint64_t lo = Histogram::bucketLowerBound(b);
    EXPECT_LE(lo, v);
    if (v >= 16) {
      EXPECT_GE(static_cast<double>(lo), static_cast<double>(v) * (1 - 1.0 / 8))
          << v;
    }
  }
}

TEST(ObsMetrics, HistogramPercentiles) {
  if (!compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  // Log buckets with 16 sub-buckets: ~6% relative error, test at 10%.
  EXPECT_NEAR(h.percentile(50), 500.0, 50.0);
  EXPECT_NEAR(h.percentile(95), 950.0, 95.0);
  EXPECT_NEAR(h.percentile(99), 990.0, 99.0);
  EXPECT_LE(h.percentile(0), h.percentile(100));
}

TEST(ObsMetrics, HistogramConcurrentRecords) {
  constexpr int kThreads = 4;
  constexpr int kRecords = 10000;
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h.record(static_cast<uint64_t>(t * kRecords + i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  if (compiledIn()) {
    EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kRecords);
  }
}

// --- Registry ---------------------------------------------------------------

TEST(ObsRegistry, InstrumentsAreStableAndShared) {
  MetricsRegistry reg;
  Counter& a = reg.counter("test.reg.hits");
  Counter& b = reg.counter("test.reg.hits");
  EXPECT_EQ(&a, &b);  // same name, same instrument
  a.add(3);
  reg.gauge("test.reg.depth").set(7);
  reg.histogram("test.reg.lat_us").record(250);

  const MetricsSnapshot snap = reg.snapshot();
  if (compiledIn()) {
    ASSERT_NE(snap.find("test.reg.hits"), nullptr);
    EXPECT_EQ(snap.value("test.reg.hits"), 3);
    EXPECT_EQ(snap.value("test.reg.depth"), 7);
    EXPECT_EQ(snap.value("test.reg.lat_us"), 1);  // histogram count
    EXPECT_EQ(snap.find("test.reg.lat_us")->kind, MetricKind::kHistogram);
  }
  EXPECT_EQ(snap.value("test.reg.absent"), 0);
  EXPECT_EQ(snap.find("test.reg.absent"), nullptr);
}

TEST(ObsRegistry, SnapshotRendersValidJsonAndText) {
  MetricsRegistry reg;
  reg.counter("test.json.count").add(42);
  reg.histogram("test.json.hist").record(99);
  const MetricsSnapshot snap = reg.snapshot();
  const std::string json = snap.json();
  EXPECT_TRUE(validJson(json)) << json;
  if (compiledIn()) {
    EXPECT_NE(json.find("\"test.json.count\""), std::string::npos);
    EXPECT_NE(snap.text().find("test.json.count"), std::string::npos);
  }
}

TEST(ObsRegistry, ResetZeroesEverything) {
  MetricsRegistry reg;
  reg.counter("test.reset.c").add(5);
  reg.histogram("test.reset.h").record(5);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("test.reset.c"), 0);
  EXPECT_EQ(snap.value("test.reset.h"), 0);
}

TEST(ObsRegistry, GlobalRegistryIsAProcessSingleton) {
  Counter& a = registry().counter("test.global.c");
  a.add();
  EXPECT_EQ(&registry().counter("test.global.c"), &a);
}

TEST(ObsRegistry, ConcurrentRegistrationAndUse) {
  // First-lookup registration takes a lock; concurrent callers racing on
  // the same names must agree on the instruments and lose no counts.
  MetricsRegistry reg;
  constexpr int kThreads = 4;
  constexpr int kAdds = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kAdds; ++i) {
        reg.counter("test.race.c").add();
        reg.histogram("test.race.h").record(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  if (compiledIn()) {
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.value("test.race.c"), kThreads * kAdds);
    EXPECT_EQ(snap.value("test.race.h"), kThreads * kAdds);
  }
}

// --- Tracer -----------------------------------------------------------------

TEST(ObsTrace, DisabledByDefaultAndCheap) {
  EXPECT_FALSE(Tracer::instance().enabled());
  // Recording while disabled is a no-op, not an error.
  JR_TRACE_SCOPE("test", "disabled");
  JR_TRACE_INSTANT("test", "disabled.instant");
}

TEST(ObsTrace, CapturesConcurrentScopesAsValidChromeJson) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  constexpr int kThreads = 4;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        JR_TRACE_SCOPE("test", "span");
        JR_TRACE_INSTANT("test", "tick");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  tracer.stop();

  const std::string json = tracer.exportJson();
  EXPECT_TRUE(validJson(json)) << json.substr(0, 400);
  if (compiledIn()) {
    EXPECT_EQ(tracer.eventCount(),
              static_cast<size_t>(kThreads) * kSpans * 2);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  }
}

TEST(ObsTrace, RingOverflowIsCountedNotSilent) {
  if (!compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  Tracer& tracer = Tracer::instance();
  tracer.start();
  for (size_t i = 0; i < Tracer::kRingCapacity + 100; ++i) {
    JR_TRACE_INSTANT("test", "flood");
  }
  tracer.stop();
  EXPECT_GT(tracer.droppedCount(), 0u);
  const std::string json = tracer.exportJson();
  EXPECT_TRUE(validJson(json));
  EXPECT_NE(json.find("droppedEvents"), std::string::npos);
}

TEST(ObsTrace, StartClearsPreviousCapture) {
  if (!compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  Tracer& tracer = Tracer::instance();
  tracer.start();
  JR_TRACE_INSTANT("test", "old");
  tracer.stop();
  ASSERT_GT(tracer.eventCount(), 0u);
  tracer.start();
  tracer.stop();
  EXPECT_EQ(tracer.eventCount(), 0u);
  EXPECT_EQ(tracer.droppedCount(), 0u);
}

TEST(ObsTrace, ClearDropsBufferedEventsButKeepsEnableState) {
  // jrsh `stats reset` calls this: buffered events vanish, but an active
  // capture stays active (reset is about counters, not instrumentation
  // on/off state).
  if (!compiledIn()) GTEST_SKIP() << "telemetry compiled out";
  Tracer& tracer = Tracer::instance();
  tracer.start();
  JR_TRACE_INSTANT("test", "pre-clear");
  ASSERT_GT(tracer.eventCount(), 0u);
  tracer.clear();
  EXPECT_EQ(tracer.eventCount(), 0u);
  EXPECT_TRUE(tracer.enabled());  // clear() is not stop()
  JR_TRACE_INSTANT("test", "post-clear");
  EXPECT_EQ(tracer.eventCount(), 1u);
  tracer.stop();
  EXPECT_TRUE(validJson(tracer.exportJson()));
}

TEST(ObsTrace, DumpTraceWritesLoadableFile) {
  Tracer& tracer = Tracer::instance();
  tracer.start();
  { JR_TRACE_SCOPE("test", "dumped"); }
  tracer.stop();

  const std::string path =
      testing::TempDir() + "obs_test_trace.json";
  std::string err;
  ASSERT_TRUE(dumpTrace(path, &err)) << err;
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  EXPECT_TRUE(validJson(ss.str()));
  EXPECT_NE(ss.str().find("traceEvents"), std::string::npos);
  std::remove(path.c_str());

  std::string err2;
  EXPECT_FALSE(dumpTrace("/nonexistent-dir/trace.json", &err2));
  EXPECT_FALSE(err2.empty());
}

// --- Bench run-record log ---------------------------------------------------

TEST(ObsBenchRecord, RecordedJsonlLinesAreValid) {
  // scripts/tier1.sh runs the record-producing benches into a fresh
  // BENCH log, then re-runs this test with JROUTE_BENCH_JSONL pointing
  // at it: every line must be one standalone RFC 8259 object carrying a
  // timestamp (jrbench::appendRunRecord's contract). Without the env
  // var there is nothing to check — plain ctest runs skip.
  const char* path = std::getenv("JROUTE_BENCH_JSONL");
  if (path == nullptr || path[0] == '\0') {
    GTEST_SKIP() << "JROUTE_BENCH_JSONL not set";
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "cannot open " << path;
  size_t records = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++records;
    EXPECT_TRUE(validJson(line)) << "line " << records << ": " << line;
    EXPECT_EQ(line.front(), '{') << "line " << records;
    EXPECT_NE(line.find("\"timestamp\""), std::string::npos)
        << "line " << records;
  }
  EXPECT_GT(records, 0u) << path << " is empty";
}

}  // namespace
}  // namespace jrobs
