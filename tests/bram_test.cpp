// Tests for the Block RAM extension: port wires on the edge columns,
// routing to/from BRAM ports, content frames, and the BlockRam core.
#include <gtest/gtest.h>

#include <sstream>

#include "arch/patterns.h"
#include "bitstream/bitfile.h"
#include "cores/block_ram.h"
#include "core/router.h"

namespace jroute {
namespace {

using xcvsim::bramAd;
using xcvsim::bramDi;
using xcvsim::bramDo;
using xcvsim::Graph;
using xcvsim::kBramPinsPerTile;
using xcvsim::PipTable;
using xcvsim::RowCol;
using xcvsim::WireKind;
using xcvsim::wireKind;
using xcvsim::wireName;

class BramTest : public ::testing::Test {
 protected:
  static const Graph& graph() {
    static Graph g{xcvsim::xcv50()};
    return g;
  }
  static const PipTable& table() {
    static PipTable t{xcvsim::ArchDb{xcvsim::xcv50()}};
    return t;
  }
  BramTest() : fabric_(graph(), table()), router_(fabric_) {}

  xcvsim::Fabric fabric_;
  Router router_;
};

TEST_F(BramTest, WireNamespace) {
  EXPECT_EQ(wireKind(bramDo(0)), WireKind::BramOut);
  EXPECT_EQ(wireKind(bramDi(3)), WireKind::BramIn);
  EXPECT_EQ(wireKind(bramAd(0)), WireKind::BramIn);
  EXPECT_EQ(wireName(bramDo(1)), "BRAM_DO[1]");
  EXPECT_EQ(wireName(bramDi(2)), "BRAM_DI[2]");
  EXPECT_EQ(wireName(bramAd(3)), "BRAM_AD[3]");
  EXPECT_EQ(xcvsim::wireIndex(bramAd(3)), 3 + kBramPinsPerTile);
}

TEST_F(BramTest, PortsExistOnlyOnEdgeColumns) {
  const xcvsim::ArchDb db{xcvsim::xcv50()};
  EXPECT_TRUE(db.existsAt({5, 0}, bramDo(0)));
  EXPECT_TRUE(db.existsAt({5, 23}, bramDi(3)));
  EXPECT_FALSE(db.existsAt({5, 1}, bramDo(0)));
  EXPECT_FALSE(db.existsAt({5, 12}, bramAd(2)));
  // Node identity round trip.
  const auto n = graph().nodeAt({5, 0}, bramDo(2));
  ASSERT_NE(n, xcvsim::kInvalidNode);
  const auto inf = graph().info(n);
  EXPECT_EQ(inf.kind, xcvsim::NodeKind::BramOut);
  EXPECT_EQ(inf.tile, (RowCol{5, 0}));
  EXPECT_EQ(graph().aliasAt(n, {5, 0}), bramDo(2));
  EXPECT_EQ(graph().nodeAt({5, 1}, bramDo(2)), xcvsim::kInvalidNode);
}

TEST_F(BramTest, RouteFromAndToBramPorts) {
  // BRAM data out feeds a CLB three columns in.
  router_.route(EndPoint(Pin(5, 0, bramDo(0))),
                EndPoint(Pin(6, 3, xcvsim::S0F2)));
  EXPECT_TRUE(router_.isOn(6, 3, xcvsim::S0F2));
  // A CLB output feeds the BRAM address port on the east column.
  router_.route(EndPoint(Pin(8, 21, xcvsim::S1_YQ)),
                EndPoint(Pin(8, 23, bramAd(1))));
  EXPECT_TRUE(router_.isOn(8, 23, bramAd(1)));
  fabric_.checkConsistency();
}

TEST_F(BramTest, ContentBitsLiveInBramFrames) {
  auto& bs = fabric_.jbits().bitstream();
  EXPECT_EQ(bs.bramBlocksPerColumn(), 4);  // 16 rows / 4
  bs.clearDirty();
  bs.setBramBit(0, 2, 1234, true);
  EXPECT_TRUE(bs.getBramBit(0, 2, 1234));
  EXPECT_FALSE(bs.getBramBit(0, 2, 1235));
  EXPECT_FALSE(bs.getBramBit(1, 2, 1234));
  // The dirty frame is in a BRAM column (beyond the CLB columns).
  const auto dirty = bs.dirtyFrames();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_GE(dirty[0].col, xcvsim::xcv50().cols);
  EXPECT_THROW(bs.setBramBit(0, 99, 0, true), xcvsim::BitstreamError);
  EXPECT_THROW(bs.setBramBit(2, 0, 0, true), xcvsim::BitstreamError);
}

TEST_F(BramTest, BlockRamCoreLifecycle) {
  BlockRam ram(BramSide::West, 1);
  ram.place(router_, {4, 0});  // block 1 = rows 4..7 of the west column
  const auto doPorts = ram.getPorts(BlockRam::kOutGroup);
  ASSERT_EQ(doPorts.size(), 16u);
  EXPECT_EQ(doPorts[0]->pins().size(), 1u);

  // Wrong position is rejected.
  BlockRam misplaced(BramSide::West, 0);
  EXPECT_THROW(misplaced.place(router_, {4, 0}), xcvsim::ArgumentError);

  // Wire a data-out bit into the fabric, then remove the core: the
  // connection detaches like any core's.
  router_.route(EndPoint(*doPorts[0]), EndPoint(Pin(5, 4, xcvsim::S0G2)));
  EXPECT_TRUE(router_.isOn(5, 4, xcvsim::S0G2));
  ram.remove(router_);
  EXPECT_EQ(fabric_.onEdgeCount(), 0u);
}

TEST_F(BramTest, ContentsAndBitfileRoundTrip) {
  BlockRam ram(BramSide::East, 0);
  ram.place(router_, {0, 23});
  const uint16_t words[] = {0xDEAD, 0xBEEF, 0x1234, 0x0000, 0xFFFF};
  ram.load(router_, words);
  EXPECT_EQ(ram.readWord(router_, 0), 0xDEAD);
  EXPECT_EQ(ram.readWord(router_, 1), 0xBEEF);
  EXPECT_EQ(ram.readWord(router_, 4), 0xFFFF);
  EXPECT_EQ(ram.readWord(router_, 5), 0x0000);
  EXPECT_THROW(ram.writeWord(router_, 256, 1), xcvsim::ArgumentError);

  // BRAM contents travel in bitfiles like any configuration frame.
  std::stringstream file;
  writeBitfile(file, fabric_.jbits().bitstream(), "ramtest");
  xcvsim::Bitstream other(graph().device(), table());
  readBitfile(file, other);
  EXPECT_TRUE(other == fabric_.jbits().bitstream());
  EXPECT_TRUE(other.getBramBit(1, 0, 0));  // bit 0 of 0xDEAD... is 1
}

}  // namespace
}  // namespace jroute
