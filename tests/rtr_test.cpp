// Tests for the run-time reconfiguration manager and the BoardScope-style
// debug views — the paper's section 3.3 scenarios end to end.
#include <gtest/gtest.h>

#include "cores/const_adder.h"
#include "cores/kcm.h"
#include "rtr/boardscope.h"
#include "rtr/manager.h"
#include "rtr/report.h"

namespace jroute {
namespace {

using xcvsim::Graph;
using xcvsim::PipTable;

class RtrTest : public ::testing::Test {
 protected:
  static const Graph& graph() {
    static Graph g{xcvsim::xcv50()};
    return g;
  }
  static const PipTable& table() {
    static PipTable t{xcvsim::ArchDb{xcvsim::xcv50()}};
    return t;
  }

  RtrTest() : fabric_(graph(), table()), router_(fabric_), mgr_(router_) {}

  xcvsim::Fabric fabric_;
  Router router_;
  RtrManager mgr_;
};

TEST_F(RtrTest, InstallConnectAndTrackCores) {
  Kcm mult(8, 3);
  ConstAdder adder(8, 1);
  mgr_.install(mult, {4, 4});
  mgr_.install(adder, {4, 9});
  EXPECT_EQ(mgr_.installed().size(), 2u);

  mgr_.connect(mult, Kcm::kOutGroup, adder, ConstAdder::kInGroup);
  for (Port* p : adder.getPorts(ConstAdder::kInGroup)) {
    const Pin& pin = p->pins()[0];
    EXPECT_TRUE(router_.isOn(pin.rc.row, pin.rc.col, pin.wire));
  }
  mgr_.remove(mult);
  EXPECT_EQ(mgr_.installed().size(), 1u);
}

TEST_F(RtrTest, ConnectWidthMismatchThrows) {
  Kcm mult(8, 3);
  ConstAdder adder(4, 1);
  mgr_.install(mult, {4, 4});
  mgr_.install(adder, {4, 9});
  EXPECT_THROW(mgr_.connect(mult, Kcm::kOutGroup, adder,
                            ConstAdder::kInGroup),
               xcvsim::ArgumentError);
}

TEST_F(RtrTest, PaperScenarioReplaceConstantMultiplier) {
  // "consider a constant multiplier. The system connects it to the
  //  circuit and later requires a new constant. The core can be removed,
  //  unrouted, and replaced ... without having to specify connections
  //  again."
  Kcm mult(8, 3);
  ConstAdder adder(8, 1);
  mgr_.install(mult, {4, 4});
  mgr_.install(adder, {4, 9});
  mgr_.connect(mult, Kcm::kOutGroup, adder, ConstAdder::kInGroup);
  const size_t edgesBefore = fabric_.onEdgeCount();

  // Structural replacement: remove, change parameter, rebuild, reconnect
  // from the router's memory — no connect() call repeated.
  mult.setConstant(router_, 7);
  mgr_.reconfigure(mult);

  EXPECT_EQ(mult.constant(), 7u);
  for (Port* p : adder.getPorts(ConstAdder::kInGroup)) {
    const Pin& pin = p->pins()[0];
    EXPECT_TRUE(router_.isOn(pin.rc.row, pin.rc.col, pin.wire));
  }
  // Same connectivity shape as before the swap.
  EXPECT_EQ(fabric_.onEdgeCount(), edgesBefore);
  fabric_.checkConsistency();
}

TEST_F(RtrTest, RelocationReconnectsPorts) {
  Kcm mult(8, 3);
  ConstAdder adder(8, 1);
  mgr_.install(mult, {4, 4});
  mgr_.install(adder, {4, 9});
  mgr_.connect(mult, Kcm::kOutGroup, adder, ConstAdder::kInGroup);

  mgr_.relocate(mult, {10, 4});
  EXPECT_EQ(mult.origin(), (RowCol{10, 4}));
  // The adder inputs are still fed — now from the new location.
  for (Port* p : adder.getPorts(ConstAdder::kInGroup)) {
    const Pin& pin = p->pins()[0];
    EXPECT_TRUE(router_.isOn(pin.rc.row, pin.rc.col, pin.wire));
    const auto back = router_.reverseTrace(EndPoint(pin));
    const auto srcTile = graph().info(back.front().from).tile;
    EXPECT_GE(srcTile.row, 10);  // driven from the relocated multiplier
  }
  fabric_.checkConsistency();
}

TEST_F(RtrTest, UsageMapShowsOccupiedRegion) {
  ConstAdder adder(8, 1);
  mgr_.install(adder, {4, 4});
  router_.route(EndPoint(*adder.getPorts(ConstAdder::kOutGroup)[0]),
                EndPoint(Pin(4, 8, xcvsim::S0F3)));
  const std::string map = renderUsageMap(fabric_);
  // 16 rows of 24 tiles plus newlines.
  EXPECT_EQ(map.size(), 16u * 25u);
  EXPECT_NE(map.find_first_of("123456789#"), std::string::npos);
}

TEST_F(RtrTest, RenderNetListsSinksAndSkew) {
  ConstAdder adder(8, 1);
  mgr_.install(adder, {4, 4});
  Port* out = adder.getPorts(ConstAdder::kOutGroup)[7];
  router_.route(EndPoint(*out), EndPoint(Pin(6, 8, xcvsim::S0F3)));
  const std::string dump = renderNet(router_, EndPoint(*out));
  EXPECT_NE(dump.find("net from"), std::string::npos);
  EXPECT_NE(dump.find("sink"), std::string::npos);
  EXPECT_NE(dump.find("skew"), std::string::npos);
}

TEST_F(RtrTest, UtilizationReportCountsResources) {
  const UtilizationReport blank = computeUtilization(fabric_);
  EXPECT_EQ(blank.singles.used, 0u);
  // XCV50: 16*23*24 horizontal + 15*24*24 vertical singles.
  EXPECT_EQ(blank.singles.total, 17472u);
  EXPECT_EQ(blank.longs.total,
            static_cast<size_t>((16 + 24) * xcvsim::kLongTracks));
  EXPECT_EQ(blank.perColumn.size(), 24u);

  ConstAdder adder(8, 1);
  mgr_.install(adder, {4, 4});
  const UtilizationReport rep = computeUtilization(fabric_);
  EXPECT_GT(rep.logic.used, 0u);
  // All activity concentrates in the adder's column (plus a neighbour for
  // channel segments).
  EXPECT_GT(rep.perColumn[4], 0u);
  EXPECT_EQ(rep.perColumn[20], 0u);
  const std::string text = rep.toString();
  EXPECT_NE(text.find("singles"), std::string::npos);
  EXPECT_NE(text.find("per-column"), std::string::npos);
}

TEST_F(RtrTest, NetSummaryListsLiveNets) {
  ConstAdder adder(4, 1);
  mgr_.install(adder, {4, 4});
  const std::string summary = netSummary(fabric_);
  // 3 carry nets exist; each line mentions segments.
  EXPECT_NE(summary.find("segments"), std::string::npos);
}

}  // namespace
}  // namespace jroute
