// Tests for the common module: deterministic RNG, coordinates, errors.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/types.h"

namespace xcvsim {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    differs = differs || va != c.next();
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndCoversIt) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues appear
}

TEST(Rng, IntInIsInclusive) {
  Rng rng(9);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 3000; ++i) {
    const int v = rng.intIn(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo = sawLo || v == -3;
    sawHi = sawHi || v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, UnitAndChance) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    hits += rng.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits, 2500, 250);  // ~25% within loose bounds
}

TEST(Types, ManhattanAndDirections) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({5, 5}, {5, 5}), 0);
  EXPECT_EQ(manhattan({2, 9}, {7, 1}), 13);
  EXPECT_EQ(opposite(Dir::East), Dir::West);
  EXPECT_EQ(opposite(Dir::North), Dir::South);
  EXPECT_EQ(dirDRow(Dir::North), 1);
  EXPECT_EQ(dirDCol(Dir::West), -1);
  EXPECT_STREQ(dirName(Dir::South), "South");
}

TEST(Errors, HierarchyAndPayload) {
  const ContentionError ce("boom", 42);
  EXPECT_EQ(ce.node(), 42u);
  const JRouteError* base = &ce;
  EXPECT_STREQ(base->what(), "boom");
  // Every error kind is catchable as JRouteError.
  EXPECT_THROW(throw ArgumentError("a"), JRouteError);
  EXPECT_THROW(throw UnroutableError("u"), JRouteError);
  EXPECT_THROW(throw BitstreamError("b"), JRouteError);
}

}  // namespace
}  // namespace xcvsim
